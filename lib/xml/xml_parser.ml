(* A from-scratch, non-validating XML parser producing an event stream.
   Supports elements, attributes, namespaces (xmlns / xmlns:p), text
   with predefined and character entities, CDATA sections, comments,
   processing instructions; skips the XML declaration and DOCTYPE.
   Errors carry line/column positions. *)

open Sedna_util

type options = {
  strip_boundary_whitespace : bool;
      (* drop text nodes that are pure whitespace between markup, the
         common setting for data-oriented documents *)
  namespaces : bool; (* resolve prefixes to URIs via xmlns bindings *)
}

let default_options = { strip_boundary_whitespace = true; namespaces = true }

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  opts : options;
  (* namespace environment: stack of binding frames, innermost first *)
  mutable ns_stack : (string * string) list list;
  (* element name stack for well-formedness of end tags *)
  mutable open_elems : (string * Xname.t) list; (* raw qname, resolved *)
  mutable emitted_start : bool;
  mutable done_ : bool;
  mutable pending : Xml_event.t list;
}

let fail st fmt =
  Format.kasprintf
    (fun msg ->
      Error.raise_error Error.Xml_parse "%s at line %d, column %d" msg st.line
        st.col)
    fmt

let create ?(options = default_options) src =
  {
    src;
    pos = 0;
    line = 1;
    col = 1;
    opts = options;
    ns_stack = [ [ ("xml", "http://www.w3.org/XML/1998/namespace") ] ];
    open_elems = [];
    emitted_start = false;
    done_ = false;
    pending = [];
  }

let eof st = st.pos >= String.length st.src

let peek st = if eof st then '\000' else st.src.[st.pos]

let _peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  if not (eof st) then begin
    (if st.src.[st.pos] = '\n' then begin
       st.line <- st.line + 1;
       st.col <- 1
     end
     else st.col <- st.col + 1);
    st.pos <- st.pos + 1
  end

let expect st c =
  if peek st = c then advance st else fail st "expected %C, found %C" c (peek st)

let expect_str st s =
  String.iter (fun c -> expect st c) s

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_space st = while (not (eof st)) && is_space (peek st) do advance st done

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let read_until st stop =
  (* returns text up to (not including) the delimiter string [stop],
     consuming the delimiter *)
  let start = st.pos in
  let rec go () =
    if eof st then fail st "unterminated construct (expected %S)" stop
    else if looking_at st stop then begin
      let text = String.sub st.src start (st.pos - start) in
      String.iter (fun _ -> advance st) stop;
      text
    end
    else begin
      advance st;
      go ()
    end
  in
  go ()

let read_name st =
  let start = st.pos in
  if not (Xname.is_name_start (peek st) || peek st = ':') then
    fail st "expected a name, found %C" (peek st);
  while
    (not (eof st)) && (Xname.is_name_char (peek st) || peek st = ':')
  do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let expand_entities st s =
  if not (String.contains s '&') then s
  else begin
    let b = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '&' then begin
        match String.index_from_opt s !i ';' with
        | None -> fail st "unterminated entity reference"
        | Some j ->
          let name = String.sub s (!i + 1) (j - !i - 1) in
          (match Escape.expand_entity name with
           | Some text -> Buffer.add_string b text
           | None -> fail st "unknown entity &%s;" name);
          i := j + 1
      end
      else begin
        Buffer.add_char b s.[!i];
        incr i
      end
    done;
    Buffer.contents b
  end

let lookup_ns st prefix =
  let rec find = function
    | [] -> None
    | frame :: rest -> (
      match List.assoc_opt prefix frame with
      | Some uri -> Some uri
      | None -> find rest)
  in
  find st.ns_stack

let split_qname raw =
  match String.index_opt raw ':' with
  | None -> ("", raw)
  | Some i ->
    (String.sub raw 0 i, String.sub raw (i + 1) (String.length raw - i - 1))

let resolve_element_name st raw =
  let prefix, local = split_qname raw in
  if not st.opts.namespaces then Xname.make ~prefix local
  else
    let uri =
      if prefix = "" then Option.value (lookup_ns st "") ~default:""
      else
        match lookup_ns st prefix with
        | Some uri -> uri
        | None -> fail st "undeclared namespace prefix %S" prefix
    in
    Xname.make ~prefix ~uri local

let resolve_attr_name st raw =
  (* unprefixed attributes are in no namespace *)
  let prefix, local = split_qname raw in
  if (not st.opts.namespaces) || prefix = "" then Xname.make ~prefix local
  else
    match lookup_ns st prefix with
    | Some uri -> Xname.make ~prefix ~uri local
    | None -> fail st "undeclared namespace prefix %S" prefix

let read_attribute st =
  let raw = read_name st in
  skip_space st;
  expect st '=';
  skip_space st;
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected attribute value";
  advance st;
  let start = st.pos in
  while (not (eof st)) && peek st <> quote do
    if peek st = '<' then fail st "'<' in attribute value";
    advance st
  done;
  if eof st then fail st "unterminated attribute value";
  let value = String.sub st.src start (st.pos - start) in
  advance st;
  (* XML attribute-value normalization: literal whitespace characters
     become spaces.  This runs before entity expansion, so characters
     written as references (&#13;, &#10;, &#9;) are exempt — which is
     exactly why the serializer emits them that way. *)
  let value = String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) value in
  (raw, expand_entities st value)

(* Parse an element open tag; returns the corresponding event and
   pushes namespace/element frames.  Self-closing tags queue the
   End_element event. *)
let parse_open_tag st =
  let raw = read_name st in
  let rec atts acc =
    skip_space st;
    match peek st with
    | '>' | '/' -> List.rev acc
    | c when Xname.is_name_start c -> atts (read_attribute st :: acc)
    | c -> fail st "unexpected %C in tag" c
  in
  let raw_atts = atts [] in
  (* collect namespace declarations into a new frame *)
  let frame =
    List.filter_map
      (fun (name, value) ->
        if name = "xmlns" then Some ("", value)
        else
          match split_qname name with
          | "xmlns", local -> Some (local, value)
          | _ -> None)
      raw_atts
  in
  if st.opts.namespaces then st.ns_stack <- frame :: st.ns_stack
  else st.ns_stack <- [] :: st.ns_stack;
  let name = resolve_element_name st raw in
  let attributes =
    List.filter_map
      (fun (araw, value) ->
        if araw = "xmlns" || String.length araw > 5 && String.sub araw 0 6 = "xmlns:"
        then None
        else Some { Xml_event.name = resolve_attr_name st araw; value })
      raw_atts
  in
  (* reject duplicate attributes *)
  let rec dup_check = function
    | [] -> ()
    | { Xml_event.name; _ } :: rest ->
      if List.exists (fun a -> Xname.equal a.Xml_event.name name) rest then
        fail st "duplicate attribute %s" (Xname.to_string name);
      dup_check rest
  in
  dup_check attributes;
  st.open_elems <- (raw, name) :: st.open_elems;
  let self_closing =
    if peek st = '/' then begin
      advance st;
      true
    end
    else false
  in
  expect st '>';
  if self_closing then begin
    st.pending <- [ Xml_event.End_element ];
    (match st.open_elems with
     | _ :: rest -> st.open_elems <- rest
     | [] -> assert false);
    (match st.ns_stack with
     | _ :: rest -> st.ns_stack <- rest
     | [] -> assert false)
  end;
  Xml_event.Start_element (name, attributes)

let parse_close_tag st =
  let raw = read_name st in
  skip_space st;
  expect st '>';
  (match st.open_elems with
   | (open_raw, _) :: rest ->
     if open_raw <> raw then
       fail st "mismatched end tag </%s>, expected </%s>" raw open_raw;
     st.open_elems <- rest
   | [] -> fail st "unexpected end tag </%s>" raw);
  (match st.ns_stack with
   | _ :: rest -> st.ns_stack <- rest
   | [] -> assert false);
  Xml_event.End_element

let is_all_space s =
  let ok = ref true in
  String.iter (fun c -> if not (is_space c) then ok := false) s;
  !ok

(* The driver: next event, or None at end of input. *)
let rec next st : Xml_event.t option =
  match st.pending with
  | e :: rest ->
    st.pending <- rest;
    Some e
  | [] ->
    if st.done_ then None
    else if not st.emitted_start then begin
      st.emitted_start <- true;
      Some Xml_event.Start_document
    end
    else if eof st then begin
      (match st.open_elems with
       | (raw, _) :: _ -> fail st "unexpected end of input inside <%s>" raw
       | [] -> ());
      st.done_ <- true;
      Some Xml_event.End_document
    end
    else if peek st = '<' then begin
      advance st;
      match peek st with
      | '?' ->
        advance st;
        let target = read_name st in
        skip_space st;
        let data = read_until st "?>" in
        if String.lowercase_ascii target = "xml" then next st
        else Some (Xml_event.Processing_instruction (target, data))
      | '!' ->
        advance st;
        if looking_at st "--" then begin
          expect_str st "--";
          let text = read_until st "-->" in
          if st.open_elems = [] && st.opts.strip_boundary_whitespace then
            (* comments outside the root are kept too *)
            Some (Xml_event.Comment text)
          else Some (Xml_event.Comment text)
        end
        else if looking_at st "[CDATA[" then begin
          expect_str st "[CDATA[";
          let text = read_until st "]]>" in
          Some (Xml_event.Text text)
        end
        else if looking_at st "DOCTYPE" then begin
          (* skip to matching '>' accounting for internal subset *)
          let depth = ref 0 in
          let stop = ref false in
          while not !stop do
            if eof st then fail st "unterminated DOCTYPE";
            (match peek st with
             | '[' | '<' -> incr depth
             | ']' -> decr depth
             | '>' -> if !depth <= 0 then stop := true else decr depth
             | _ -> ());
            advance st
          done;
          next st
        end
        else fail st "unrecognized markup declaration"
      | '/' ->
        advance st;
        Some (parse_close_tag st)
      | c when Xname.is_name_start c || c = ':' -> Some (parse_open_tag st)
      | c -> fail st "unexpected %C after '<'" c
    end
    else begin
      (* character data up to next '<' *)
      let start = st.pos in
      while (not (eof st)) && peek st <> '<' do
        advance st
      done;
      let raw = String.sub st.src start (st.pos - start) in
      if st.open_elems = [] then
        if is_all_space raw then next st
        else fail st "character data outside the document element"
      else
        let text = expand_entities st raw in
        if st.opts.strip_boundary_whitespace && is_all_space text then next st
        else Some (Xml_event.Text text)
    end

let events ?options src =
  let st = create ?options src in
  let rec collect acc =
    match next st with None -> List.rev acc | Some e -> collect (e :: acc)
  in
  collect []

(* A simple in-memory tree, useful for tests and for query-constructed
   temporary documents. *)
type tree =
  | Element of Xname.t * Xml_event.attribute list * tree list
  | Tree_text of string
  | Tree_comment of string
  | Tree_pi of string * string

let parse_tree ?options src =
  let st = create ?options src in
  let rec content acc =
    match next st with
    | None | Some Xml_event.End_document -> (List.rev acc, `Eof)
    | Some (Xml_event.Start_element (name, atts)) ->
      let children, _ = content [] in
      content (Element (name, atts, children) :: acc)
    | Some Xml_event.End_element -> (List.rev acc, `End)
    | Some (Xml_event.Text s) -> content (Tree_text s :: acc)
    | Some (Xml_event.Comment s) -> content (Tree_comment s :: acc)
    | Some (Xml_event.Processing_instruction (t, d)) ->
      content (Tree_pi (t, d) :: acc)
    | Some Xml_event.Start_document -> content acc
  in
  match content [] with
  | roots, `Eof -> roots
  | _, `End -> Error.raise_error Error.Xml_parse "dangling end tag"
