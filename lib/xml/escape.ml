(* Character and entity escaping for XML content. *)

let predefined = [ ("lt", "<"); ("gt", ">"); ("amp", "&"); ("apos", "'"); ("quot", "\"") ]

let expand_entity name =
  match List.assoc_opt name predefined with
  | Some s -> Some s
  | None ->
    (* Character references: &#ddd; and &#xhhh; — emitted as UTF-8. *)
    let utf8_of_code code =
      let b = Buffer.create 4 in
      (if code < 0x80 then Buffer.add_char b (Char.chr code)
       else if code < 0x800 then begin
         Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
         Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
       end
       else if code < 0x10000 then begin
         Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
         Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
         Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
       end
       else begin
         Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
         Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
         Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
         Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
       end);
      Buffer.contents b
    in
    if String.length name > 1 && name.[0] = '#' then
      let body = String.sub name 1 (String.length name - 1) in
      let code =
        if String.length body > 1 && (body.[0] = 'x' || body.[0] = 'X') then
          int_of_string_opt ("0x" ^ String.sub body 1 (String.length body - 1))
        else int_of_string_opt body
      in
      Option.map utf8_of_code code
    else None

(* A literal CR in serialized output does not survive re-parsing (XML
   line-end handling turns it into LF, and attribute-value
   normalization into a space), so both text and attribute content
   emit it as the &#13; character reference. *)

let escape_text s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '&' -> Buffer.add_string b "&amp;"
      | '\r' -> Buffer.add_string b "&#13;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_attribute s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string b "&lt;"
      | '&' -> Buffer.add_string b "&amp;"
      | '"' -> Buffer.add_string b "&quot;"
      | '\n' -> Buffer.add_string b "&#10;"
      | '\t' -> Buffer.add_string b "&#9;"
      | '\r' -> Buffer.add_string b "&#13;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b
