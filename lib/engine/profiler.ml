(* Operator-level profiling for the Volcano executor — the engine's
   EXPLAIN ANALYZE.

   [instrument] walks a rewritten expression once, before execution,
   and builds a tree of [op] stat nodes mirroring the interesting
   operators (paths and their steps, schema paths, index probes,
   filters, FLWORs, DDOs, function calls, constructors, set ops).  The
   nodes are keyed by *physical identity* of the AST node, so the
   executor can look its current expression up in O(1) without any
   change to the tree itself.

   The executor's [eval] consults the profiler only when a profile
   context is present in [ctx]; with profiling off the only cost is a
   [match] on an option.  When on, each operator's lazy sequence is
   wrapped so we record:

   - open time: building the sequence (eager work like DDO sorts lands
     here);
   - next time: forcing each element;
   - rows produced;
   - storage counter deltas around each of those windows (buffer hits
     and faults, xptr dereferences, index probes) read from the
     pre-resolved {!Counters} hot cells.

   Times and counter deltas are *inclusive*: a parent's window contains
   its children's work, like EXPLAIN ANALYZE's per-node totals.  An
   operator evaluated repeatedly (a predicate, a FLWOR body)
   accumulates across evaluations. *)

open Sedna_util
module Ast = Sedna_xquery.Xq_ast
module Pp = Sedna_xquery.Xq_pp

type op = {
  label : string;
  mutable rows : int;
  mutable time_s : float; (* inclusive: open + per-row forcing *)
  mutable hits : int; (* buffer.hit delta *)
  mutable faults : int; (* buffer.fault delta *)
  mutable derefs : int; (* xptr.deref delta *)
  mutable probes : int; (* index.probe delta *)
  mutable children : op list; (* plan order *)
}

(* AST nodes are acyclic immutable trees: structural hashing is a sound
   (and GC-move-stable) hash for a physical-equality table — equal
   pointers hash equal, and [==] disambiguates structural twins. *)
module Expr_tbl = Hashtbl.Make (struct
  type t = Ast.expr

  let equal = ( == )
  let hash = Hashtbl.hash
end)

module Step_tbl = Hashtbl.Make (struct
  type t = Ast.step

  let equal = ( == )
  let hash = Hashtbl.hash
end)

type t = {
  exprs : op Expr_tbl.t;
  steps : op Step_tbl.t;
  probe_cell : int ref;
}

let mk label =
  {
    label;
    rows = 0;
    time_s = 0.;
    hits = 0;
    faults = 0;
    derefs = 0;
    probes = 0;
    children = [];
  }

(* ------------------------------------------------- building the tree *)

let probe_mode_name = function
  | Ast.Probe_eq -> "eq"
  | Ast.Probe_ge -> "ge"
  | Ast.Probe_le -> "le"
  | Ast.Probe_gt -> "gt"
  | Ast.Probe_lt -> "lt"

let step_label (s : Ast.step) =
  let base = Printf.sprintf "step %s::%s" (Pp.axis_name s.Ast.axis) (Pp.test_name s.Ast.test) in
  match List.length s.Ast.preds with
  | 0 -> base
  | n -> Printf.sprintf "%s [%d pred%s]" base n (if n = 1 then "" else "s")

(* Operators worth a stat node of their own; anything else (literals,
   arithmetic, comparisons...) folds into its nearest labelled
   ancestor. *)
let label_of (e : Ast.expr) : string option =
  match e with
  | Ast.Path _ -> Some "path"
  | Ast.Schema_path (doc, steps) ->
    Some
      (Printf.sprintf "schema-path doc(%S)%s" doc
         (String.concat ""
            (List.map
               (fun (a, n) ->
                 Printf.sprintf "/%s::%s" (Pp.axis_name a) (Xname.to_string n))
               steps)))
  | Ast.Index_probe p ->
    Some (Printf.sprintf "index-probe %S %s" p.Ast.ip_index (probe_mode_name p.Ast.ip_mode))
  | Ast.Filter _ -> Some "filter"
  | Ast.Flwor _ -> Some "flwor"
  | Ast.Quantified (Ast.Some_q, _, _) -> Some "some"
  | Ast.Quantified (Ast.Every_q, _, _) -> Some "every"
  | Ast.Ddo _ -> Some "ddo (sort + dedup)"
  | Ast.Call (n, args) ->
    Some (Printf.sprintf "fn:%s/%d" (Xname.to_string n) (List.length args))
  | Ast.Binop (Ast.Union, _, _) -> Some "union"
  | Ast.Binop (Ast.Intersect, _, _) -> Some "intersect"
  | Ast.Binop (Ast.Except, _, _) -> Some "except"
  | Ast.Elem_constr (n, _, _) ->
    Some (Printf.sprintf "element <%s>" (Xname.to_string n))
  | Ast.Comp_elem _ -> Some "computed-element"
  | Ast.Virtual_constr _ -> Some "virtual-constructor"
  | Ast.If _ -> Some "if"
  | _ -> None

let subexprs (e : Ast.expr) : Ast.expr list =
  match e with
  | Ast.Int_lit _ | Ast.Dbl_lit _ | Ast.Str_lit _ | Ast.Empty_seq
  | Ast.Context_item | Ast.Var _ | Ast.Schema_path _ ->
    []
  | Ast.Sequence es -> es
  | Ast.Range (a, b)
  | Ast.Binop (_, a, b)
  | Ast.And (a, b)
  | Ast.Or (a, b)
  | Ast.Comp_elem (a, b)
  | Ast.Comp_attr (a, b)
  | Ast.Comp_pi (a, b) ->
    [ a; b ]
  | Ast.Neg a
  | Ast.Not a
  | Ast.Ddo a
  | Ast.Ordered a
  | Ast.Unordered a
  | Ast.Comp_text a
  | Ast.Comp_comment a
  | Ast.Virtual_constr a
  | Ast.Castable (a, _)
  | Ast.Cast (a, _)
  | Ast.Instance_of (a, _)
  | Ast.Treat_as (a, _) ->
    [ a ]
  | Ast.If (c, t, f) -> [ c; t; f ]
  | Ast.Index_probe p -> [ p.Ast.ip_key; p.Ast.ip_residual; p.Ast.ip_fallback ]
  | Ast.Path (init, steps) ->
    init :: List.concat_map (fun (s : Ast.step) -> s.Ast.preds) steps
  | Ast.Filter (p, preds) -> p :: preds
  | Ast.Call (_, args) -> args
  | Ast.Quantified (_, binds, cond) -> List.map snd binds @ [ cond ]
  | Ast.Elem_constr (_, atts, content) ->
    List.concat_map (fun (a : Ast.attr_constr) -> a.Ast.attr_value) atts @ content
  | Ast.Flwor (clauses, ret) ->
    List.concat_map
      (function
        | Ast.For binds -> List.map (fun (_, _, e) -> e) binds
        | Ast.Let binds -> List.map snd binds
        | Ast.Where c -> [ c ]
        | Ast.Order_by keys -> List.map fst keys)
      clauses
    @ [ ret ]

(* Returns the labelled roots of [e]'s subtree at this nesting level,
   registering every labelled node (and every path step) on the way. *)
let rec build p (e : Ast.expr) : op list =
  match label_of e with
  | Some label ->
    let node = mk label in
    Expr_tbl.replace p.exprs e node;
    node.children <- build_children p e;
    [ node ]
  | None -> build_children p e

and build_children p (e : Ast.expr) : op list =
  match e with
  | Ast.Path (init, steps) ->
    (* a path's children are its input followed by one node per step,
       in evaluation order; predicate subtrees hang off their step *)
    build p init
    @ List.map
        (fun (s : Ast.step) ->
          let node = mk (step_label s) in
          Step_tbl.replace p.steps s node;
          node.children <- List.concat_map (build p) s.Ast.preds;
          node)
        steps
  | e -> List.concat_map (build p) (subexprs e)

let instrument (e : Ast.expr) : t * op =
  let p =
    {
      exprs = Expr_tbl.create 64;
      steps = Step_tbl.create 16;
      probe_cell = Counters.cell Counters.index_probe;
    }
  in
  let tops = build p e in
  match tops with
  | [ root ] when Expr_tbl.mem p.exprs e -> (p, root)
  | tops ->
    (* top expression isn't itself an operator (a literal, an
       arithmetic expression over paths...): give the profile a
       synthetic root so the root row count is still the result
       cardinality *)
    let root = mk "result" in
    root.children <- tops;
    Expr_tbl.replace p.exprs e root;
    (p, root)

let find_expr p e = Expr_tbl.find_opt p.exprs e
let find_step p s = Step_tbl.find_opt p.steps s

(* ------------------------------------------------------ wrapping *)

type grab = int * int * int * int

(* "hits" = pages found in memory, whether through the VAS fast path or
   the frame table; "faults" = pages that had to be installed. *)
let grab p : grab =
  ( !Counters.buffer_hit_cell + !Counters.vas_fast_hit_cell,
    !Counters.buffer_fault_cell,
    !Counters.deref_cell,
    !(p.probe_cell) )

let settle p node ((h0, f0, d0, p0) : grab) t0 =
  node.time_s <- node.time_s +. (Metrics.now () -. t0);
  node.hits <-
    node.hits + (!Counters.buffer_hit_cell + !Counters.vas_fast_hit_cell - h0);
  node.faults <- node.faults + (!Counters.buffer_fault_cell - f0);
  node.derefs <- node.derefs + (!Counters.deref_cell - d0);
  node.probes <- node.probes + (!(p.probe_cell) - p0)

(* Wrap an already-built lazy sequence: counts rows and attributes the
   per-element forcing cost. *)
let wrap_seq p node (s : 'a Seq.t) : 'a Seq.t =
  let rec go s () =
    let c0 = grab p in
    let t0 = Metrics.now () in
    match s () with
    | Seq.Nil ->
      settle p node c0 t0;
      Seq.Nil
    | Seq.Cons (x, rest) ->
      settle p node c0 t0;
      node.rows <- node.rows + 1;
      Seq.Cons (x, go rest)
  in
  go s

(* Wrap an operator evaluation: times the sequence construction (open)
   and then every forcing step. *)
let wrap_eval p node (f : unit -> 'a Seq.t) : 'a Seq.t =
  let c0 = grab p in
  let t0 = Metrics.now () in
  let s = f () in
  settle p node c0 t0;
  wrap_seq p node s

(* ------------------------------------------------------ rendering *)

let rec tree_rows indent node acc =
  let label_w = (2 * indent) + String.length node.label in
  let acc = (indent, node, label_w) :: acc in
  List.fold_left (fun acc c -> tree_rows (indent + 1) c acc) acc node.children

let ms s = s *. 1000.

let render root =
  let rows = List.rev (tree_rows 0 root []) in
  let w =
    List.fold_left (fun w (_, _, lw) -> max w lw) (String.length "operator") rows
  in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%-*s %10s %10s %8s %8s %8s %8s\n" w "operator" "rows"
       "time_ms" "hits" "faults" "derefs" "probes");
  List.iter
    (fun (indent, node, _) ->
      Buffer.add_string b
        (Printf.sprintf "%s%-*s %10d %10.3f %8d %8d %8d %8d\n"
           (String.make (2 * indent) ' ')
           (w - (2 * indent))
           node.label node.rows (ms node.time_s) node.hits node.faults
           node.derefs node.probes))
    rows;
  Buffer.add_string b
    "(times and counters are inclusive of children; operators evaluated\n\
    \ repeatedly accumulate across evaluations)";
  Buffer.contents b

let rec to_json node =
  Metrics.Obj
    [
      ("op", Metrics.Str node.label);
      ("rows", Metrics.Int node.rows);
      ("time_ms", Metrics.Float (ms node.time_s));
      ("buffer_hits", Metrics.Int node.hits);
      ("buffer_faults", Metrics.Int node.faults);
      ("xptr_derefs", Metrics.Int node.derefs);
      ("index_probes", Metrics.Int node.probes);
      ("children", Metrics.List (List.map to_json node.children));
    ]
