(** Operator-level profiling for the Volcano executor (EXPLAIN
    ANALYZE).

    {!instrument} pre-builds a tree of stat nodes mirroring the
    interesting operators of a rewritten expression, keyed by physical
    identity of the AST nodes; the executor looks up its current
    expression on each [eval] only when a profile context is active and
    wraps the operator's lazy sequence to record open/next time, rows
    produced and storage counter deltas (buffer hits/faults, xptr
    dereferences, index probes).

    Times and counters are inclusive of children; operators evaluated
    repeatedly (predicates, FLWOR bodies) accumulate. *)

type op = {
  label : string;
  mutable rows : int;
  mutable time_s : float;
  mutable hits : int;
  mutable faults : int;
  mutable derefs : int;
  mutable probes : int;
  mutable children : op list;
}

type t

val instrument : Sedna_xquery.Xq_ast.expr -> t * op
(** Build the stat tree for a (rewritten) query body.  Returns the
    profile context and the root node; the root's [rows] after
    execution equals the query's result cardinality. *)

val find_expr : t -> Sedna_xquery.Xq_ast.expr -> op option
val find_step : t -> Sedna_xquery.Xq_ast.step -> op option

val wrap_eval : t -> op -> (unit -> 'a Seq.t) -> 'a Seq.t
(** Time the construction of the sequence (open) and then each forcing
    step (next), attributing rows and counter deltas to [op]. *)

val wrap_seq : t -> op -> 'a Seq.t -> 'a Seq.t
(** Like {!wrap_eval} for a sequence that already exists: forcing cost
    and row counts only. *)

val render : op -> string
(** The annotated plan tree, one operator per line. *)

val to_json : op -> Sedna_util.Metrics.json
