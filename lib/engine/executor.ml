(* The executor (paper §5.2): a demand-driven evaluator over lazy item
   sequences.  OCaml's [Seq.t] provides the open-next-close pipeline:
   building a sequence is "open", forcing a cell is "next", dropping it
   is "close"; no intermediate result is materialized unless an
   operator requires it (DDO, sorting, last()).

   Schema_path expressions — structural paths extracted by the
   rewriter — are resolved against the descriptive schema and turn into
   merged block-chain scans, never touching non-matching nodes. *)

open Sedna_util
open Sedna_core
open Xdm
module Ast = Sedna_xquery.Xq_ast

type ctx = {
  st : Store.t;
  vars : (string * value) list;
  funcs : (string * Ast.fun_def) list;
  item : item option;
  pos : int;
  size : int Lazy.t;
  virtual_ok : bool;
  prof : Profiler.t option;
}

let initial_ctx ?(vars = []) ?(funcs = []) (st : Store.t) =
  {
    st;
    vars;
    funcs;
    item = None;
    pos = 0;
    size = lazy 0;
    virtual_ok = false;
    prof = None;
  }

let dynamic_error fmt = Error.raise_error Error.Xquery_dynamic fmt
let type_error fmt = Error.raise_error Error.Xquery_type fmt

let context_item ctx =
  match ctx.item with
  | Some i -> i
  | None -> dynamic_error "context item is undefined"

let context_node ctx =
  match context_item ctx with
  | N n -> n
  | A _ -> type_error "context item is not a node"

(* ---- node tests ---------------------------------------------------------- *)

let name_matches (want : Xname.t) (got : Xname.t option) =
  match got with
  | Some g ->
    String.equal (Xname.local want) (Xname.local g)
    && (Xname.uri want = "" || String.equal (Xname.uri want) (Xname.uri g))
  | None -> false

let test_matches ctx (test : Ast.node_test) (n : node) : bool =
  let st = ctx.st in
  let kind = node_kind st n in
  match test with
  | Ast.Kind_any -> true
  | Ast.Wildcard -> kind = Catalog.Element
  | Ast.Name_test want -> kind = Catalog.Element && name_matches want (node_name st n)
  | Ast.Kind_text -> kind = Catalog.Text
  | Ast.Kind_comment -> kind = Catalog.Comment
  | Ast.Kind_pi None -> kind = Catalog.Pi
  | Ast.Kind_pi (Some target) ->
    kind = Catalog.Pi
    && (match node_name st n with
        | Some nm -> String.equal (Xname.local nm) target
        | None -> false)
  | Ast.Kind_element None -> kind = Catalog.Element
  | Ast.Kind_element (Some want) ->
    kind = Catalog.Element && name_matches want (node_name st n)
  | Ast.Kind_attribute None -> kind = Catalog.Attribute
  | Ast.Kind_attribute (Some want) ->
    kind = Catalog.Attribute && name_matches want (node_name st n)
  | Ast.Kind_document -> kind = Catalog.Document

(* convert an AST test into a schema-level test for the schema-driven
   descendant evaluation *)
let traverse_test_of (test : Ast.node_test) : Traverse.test option =
  match test with
  | Ast.Name_test n | Ast.Kind_element (Some n) ->
    Some { Traverse.t_kind = Some Catalog.Element; t_name = Some n }
  | Ast.Wildcard | Ast.Kind_element None ->
    Some { Traverse.t_kind = Some Catalog.Element; t_name = None }
  | Ast.Kind_text -> Some { Traverse.t_kind = Some Catalog.Text; t_name = None }
  | Ast.Kind_comment ->
    Some { Traverse.t_kind = Some Catalog.Comment; t_name = None }
  | Ast.Kind_any -> Some Traverse.any_test
  | _ -> None

(* Traverse.test name matching uses Xname.equal (uri+local).  Queries
   usually use unprefixed names against documents without namespaces;
   when the test has an empty uri we match by local name. *)

(* ---- axes over XDM nodes --------------------------------------------------- *)

let temp_descendants st (t : tnode) : node Seq.t =
  let rec go n () =
    match n with
    | Temp tn ->
      let kids =
        List.filter (fun c -> node_kind st c <> Catalog.Attribute) tn.t_children
      in
      (Seq.concat_map (fun c -> Seq.cons c (go c)) (List.to_seq kids)) ()
    | Stored d ->
      (Seq.map (fun x -> Stored x) (Traverse.descendants_walk st d)) ()
  in
  go (Temp t)

let axis_seq ctx (axis : Ast.axis) (n : node) : node Seq.t =
  let st = ctx.st in
  match (axis, n) with
  | Ast.Child, Stored d -> Seq.map (fun x -> Stored x) (Traverse.children st d)
  | Ast.Child, Temp t ->
    List.to_seq
      (List.filter (fun c -> node_kind st c <> Catalog.Attribute) t.t_children)
  | Ast.Attribute_axis, Stored d ->
    Seq.map (fun x -> Stored x) (Traverse.attributes st d)
  | Ast.Attribute_axis, Temp t -> List.to_seq (node_attributes st (Temp t))
  | Ast.Self, n -> Seq.return n
  | Ast.Parent, n -> (
    match node_parent st n with None -> Seq.empty | Some p -> Seq.return p)
  | Ast.Ancestor, Stored d -> Seq.map (fun x -> Stored x) (Traverse.ancestors st d)
  | Ast.Ancestor, Temp _ ->
    let rec up n () =
      match node_parent st n with
      | None -> Seq.Nil
      | Some p -> Seq.Cons (p, up p)
    in
    up n
  | Ast.Ancestor_or_self, n ->
    let rec up n () =
      match node_parent st n with
      | None -> Seq.Nil
      | Some p -> Seq.Cons (p, up p)
    in
    Seq.cons n (up n)
  | Ast.Descendant, Stored d ->
    Seq.map (fun x -> Stored x) (Traverse.descendants_walk st d)
  | Ast.Descendant, Temp t -> temp_descendants st t
  | Ast.Descendant_or_self, n -> (
    match n with
    | Stored d ->
      Seq.cons n (Seq.map (fun x -> Stored x) (Traverse.descendants_walk st d))
    | Temp t -> Seq.cons n (temp_descendants st t))
  | Ast.Following_sibling, Stored d ->
    Seq.map (fun x -> Stored x) (Traverse.following_siblings st d)
  | Ast.Preceding_sibling, Stored d ->
    Seq.map (fun x -> Stored x) (Traverse.preceding_siblings st d)
  | Ast.Following, Stored d -> Seq.map (fun x -> Stored x) (Traverse.following st d)
  | Ast.Preceding, Stored d -> Seq.map (fun x -> Stored x) (Traverse.preceding st d)
  | (Ast.Following_sibling | Ast.Preceding_sibling | Ast.Following | Ast.Preceding),
    Temp t -> (
    match t.t_parent with
    | None -> Seq.empty
    | Some p ->
      let sibs =
        List.filter
          (fun c -> node_kind st c <> Catalog.Attribute)
          p.t_children
      in
      let rec split before after = function
        | [] -> (List.rev before, List.rev after)
        | c :: rest ->
          if is_same_node st c (Temp t) then (List.rev before, rest)
          else split (c :: before) after rest
      in
      let before, after = split [] [] sibs in
      (match axis with
       | Ast.Following_sibling | Ast.Following -> List.to_seq after
       | _ -> List.to_seq (List.rev before)))

(* schema-driven descendant when the context node is stored and the
   test maps to schema nodes (the paper's fast path) *)
let descendant_step ctx (test : Ast.node_test) (n : node) : node Seq.t =
  match (n, traverse_test_of test) with
  | Stored d, Some tt ->
    Seq.map (fun x -> Stored x) (Traverse.descendants_schema ctx.st ~test:tt d)
  | _ ->
    Seq.filter (test_matches ctx test) (axis_seq ctx Ast.Descendant n)

(* ---- DDO ------------------------------------------------------------------- *)

let ddo ctx (items : item Seq.t) : item Seq.t =
  let nodes =
    List.of_seq
      (Seq.map
         (function
           | N n -> n
           | A _ -> type_error "distinct-document-order over atomic values")
         items)
  in
  let sorted = List.stable_sort (node_compare ctx.st) nodes in
  let rec dedup = function
    | a :: b :: rest when is_same_node ctx.st a b -> dedup (b :: rest)
    | a :: rest -> a :: dedup rest
    | [] -> []
  in
  List.to_seq (List.map (fun n -> N n) (dedup sorted))

(* ---- helpers ---------------------------------------------------------------- *)

let singleton_atomic ctx (e_items : item Seq.t) : atomic option =
  match e_items () with
  | Seq.Nil -> None
  | Seq.Cons (x, rest) -> (
    match rest () with
    | Seq.Nil -> Some (atomize ctx.st x)
    | Seq.Cons _ -> type_error "a singleton sequence was expected")

let numeric_binop op (a : atomic) (b : atomic) : atomic =
  let fa = float_of_atomic a and fb = float_of_atomic b in
  let both_int =
    match (a, b) with
    | (AInt _ | AUntyped _), (AInt _ | AUntyped _) -> (
      (* untyped atomics promote to double per spec; keep ints only for
         true integers *)
      match (a, b) with AInt _, AInt _ -> true | _ -> false)
    | _ -> false
  in
  match op with
  | Ast.Add -> if both_int then AInt (int_of_float fa + int_of_float fb) else ADbl (fa +. fb)
  | Ast.Sub -> if both_int then AInt (int_of_float fa - int_of_float fb) else ADbl (fa -. fb)
  | Ast.Mul -> if both_int then AInt (int_of_float fa * int_of_float fb) else ADbl (fa *. fb)
  | Ast.Div ->
    if fb = 0.0 && both_int then dynamic_error "division by zero"
    else ADbl (fa /. fb)
  | Ast.Idiv ->
    if fb = 0.0 then dynamic_error "integer division by zero"
    else AInt (int_of_float (Float.trunc (fa /. fb)))
  | Ast.Mod ->
    if fb = 0.0 then
      if both_int then dynamic_error "modulo by zero" else ADbl Float.nan
    else if both_int then AInt (int_of_float fa mod int_of_float fb)
    else ADbl (Float.rem fa fb)
  | _ -> assert false

(* ---- the evaluator ------------------------------------------------------------ *)

(* [eval] dispatches through the profiler when one is attached to the
   context; the only cost with profiling off is the option match.
   [eval_core] is the evaluator proper. *)
let rec eval (ctx : ctx) (e : Ast.expr) : item Seq.t =
  match ctx.prof with
  | None -> eval_core ctx e
  | Some p -> (
    match Profiler.find_expr p e with
    | Some node -> Profiler.wrap_eval p node (fun () -> eval_core ctx e)
    | None -> eval_core ctx e)

and eval_core (ctx : ctx) (e : Ast.expr) : item Seq.t =
  Deadline.check ();
  match e with
  | Ast.Int_lit i -> Seq.return (A (AInt i))
  | Ast.Dbl_lit f -> Seq.return (A (ADbl f))
  | Ast.Str_lit s -> Seq.return (A (AStr s))
  | Ast.Empty_seq -> Seq.empty
  | Ast.Context_item -> Seq.return (context_item ctx)
  | Ast.Var v -> (
    match List.assoc_opt v ctx.vars with
    | Some value -> List.to_seq value
    | None -> dynamic_error "unbound variable $%s" v)
  | Ast.Sequence es -> Seq.concat_map (eval ctx) (List.to_seq es)
  | Ast.Range (a, b) -> (
    match (singleton_atomic ctx (eval ctx a), singleton_atomic ctx (eval ctx b)) with
    | Some x, Some y ->
      let lo = int_of_float (float_of_atomic x)
      and hi = int_of_float (float_of_atomic y) in
      if lo > hi then Seq.empty
      else Seq.map (fun i -> A (AInt i)) (Seq.ints lo |> Seq.take (hi - lo + 1))
    | _ -> Seq.empty)
  | Ast.Neg a -> (
    match singleton_atomic ctx (eval ctx a) with
    | None -> Seq.empty
    | Some (AInt i) -> Seq.return (A (AInt (-i)))
    | Some x -> Seq.return (A (ADbl (-.float_of_atomic x))))
  | Ast.Binop (op, a, b) -> eval_binop ctx op a b
  | Ast.And (a, b) ->
    Seq.return
      (A (ABool (ebv ctx.st (eval ctx a) && ebv ctx.st (eval ctx b))))
  | Ast.Or (a, b) ->
    Seq.return
      (A (ABool (ebv ctx.st (eval ctx a) || ebv ctx.st (eval ctx b))))
  | Ast.Not a -> Seq.return (A (ABool (not (ebv ctx.st (eval ctx a)))))
  | Ast.If (c, t, f) -> if ebv ctx.st (eval ctx c) then eval ctx t else eval ctx f
  | Ast.Ddo a -> ddo ctx (eval ctx a)
  | Ast.Ordered a | Ast.Unordered a -> eval ctx a
  | Ast.Path (init, steps) ->
    let start = eval ctx init in
    List.fold_left
      (fun seq step ->
        let nodes =
          Seq.map
            (function
              | N n -> n
              | A _ -> type_error "path step applied to an atomic value")
            seq
        in
        let out = Seq.concat_map (fun n -> eval_step ctx step n) nodes in
        match ctx.prof with
        | None -> out
        | Some p -> (
          match Profiler.find_step p step with
          | Some node -> Profiler.wrap_seq p node out
          | None -> out))
      start steps
  | Ast.Schema_path (doc, steps) -> eval_schema_path ctx doc steps
  | Ast.Index_probe p -> eval_index_probe ctx p
  | Ast.Filter (p, preds) ->
    List.fold_left (fun seq pred -> apply_predicate ctx pred seq) (eval ctx p) preds
  | Ast.Flwor (clauses, ret) -> eval_flwor ctx clauses ret
  | Ast.Quantified (q, binds, cond) ->
    let rec go ctx = function
      | [] -> ebv ctx.st (eval ctx cond)
      | (v, e') :: rest ->
        let items = eval ctx e' in
        let test item = go { ctx with vars = (v, [ item ]) :: ctx.vars } rest in
        (match q with
         | Ast.Some_q -> Seq.exists test items
         | Ast.Every_q -> Seq.for_all test items)
    in
    Seq.return (A (ABool (go ctx binds)))
  | Ast.Call (n, args) -> eval_call ctx n args
  | Ast.Elem_constr (name, atts, content) ->
    Seq.return (N (Temp (build_element ctx name atts content)))
  | Ast.Virtual_constr inner -> eval { ctx with virtual_ok = true } inner
  | Ast.Comp_elem (name_e, content_e) ->
    let name =
      match singleton_atomic ctx (eval ctx name_e) with
      | Some a -> Xname.of_string (string_of_atomic a)
      | None -> type_error "element constructor needs a name"
    in
    let t = new_tnode ~kind:Catalog.Element ~name:(Some name) ~value:"" in
    fill_content ctx t (eval ctx content_e);
    Seq.return (N (Temp t))
  | Ast.Comp_attr (name_e, value_e) ->
    let name =
      match singleton_atomic ctx (eval ctx name_e) with
      | Some a -> Xname.of_string (string_of_atomic a)
      | None -> type_error "attribute constructor needs a name"
    in
    let v =
      String.concat " "
        (List.map (item_string ctx.st) (List.of_seq (eval ctx value_e)))
    in
    Seq.return
      (N (Temp (new_tnode ~kind:Catalog.Attribute ~name:(Some name) ~value:v)))
  | Ast.Comp_text e' ->
    let v =
      String.concat " "
        (List.map (item_string ctx.st) (List.of_seq (eval ctx e')))
    in
    Seq.return (N (Temp (new_tnode ~kind:Catalog.Text ~name:None ~value:v)))
  | Ast.Comp_comment e' ->
    let v =
      String.concat " "
        (List.map (item_string ctx.st) (List.of_seq (eval ctx e')))
    in
    Seq.return (N (Temp (new_tnode ~kind:Catalog.Comment ~name:None ~value:v)))
  | Ast.Comp_pi (t_e, d_e) ->
    let target =
      match singleton_atomic ctx (eval ctx t_e) with
      | Some a -> string_of_atomic a
      | None -> type_error "processing-instruction constructor needs a target"
    in
    let v =
      String.concat " "
        (List.map (item_string ctx.st) (List.of_seq (eval ctx d_e)))
    in
    Seq.return
      (N (Temp (new_tnode ~kind:Catalog.Pi ~name:(Some (Xname.make target)) ~value:v)))
  | Ast.Cast (e', ty) -> eval_cast ctx e' ty
  | Ast.Castable (e', ty) ->
    let ok =
      try
        ignore (List.of_seq (eval_cast ctx e' ty));
        true
      with _ -> false
    in
    Seq.return (A (ABool ok))
  | Ast.Instance_of (e', ty) ->
    (* coarse dynamic check over the supported types *)
    let items = List.of_seq (eval ctx e') in
    let base = String.concat "" (String.split_on_char '?' ty) in
    let base = String.concat "" (String.split_on_char '*' base) in
    let card_ok =
      if String.contains ty '*' then true
      else if String.contains ty '?' then List.length items <= 1
      else List.length items = 1
    in
    let item_ok (i : item) =
      match (i, base) with
      | A (AInt _), ("xs:integer" | "xs:decimal" | "xs:double" | "item()") -> true
      | A (ADbl _), ("xs:double" | "xs:decimal" | "item()") -> true
      | A (AStr _), ("xs:string" | "item()") -> true
      | A (ABool _), ("xs:boolean" | "item()") -> true
      | A (AUntyped _), ("xs:untypedAtomic" | "item()") -> true
      | N _, ("node()" | "item()") -> true
      | N n, "element()" -> node_kind ctx.st n = Catalog.Element
      | N n, "attribute()" -> node_kind ctx.st n = Catalog.Attribute
      | N n, "text()" -> node_kind ctx.st n = Catalog.Text
      | _ -> false
    in
    Seq.return (A (ABool (card_ok && List.for_all item_ok items)))
  | Ast.Treat_as (e', _) -> eval ctx e'

and eval_cast ctx e' ty : item Seq.t =
  let v = singleton_atomic ctx (eval ctx e') in
  match v with
  | None ->
    if String.length ty > 0 && ty.[String.length ty - 1] = '?' then Seq.empty
    else type_error "cast of an empty sequence"
  | Some a -> (
    let base =
      match String.index_opt ty '?' with
      | Some i -> String.sub ty 0 i
      | None -> ty
    in
    match base with
    | "xs:integer" | "xs:int" | "xs:long" -> (
      match number_opt a with
      | Some f -> Seq.return (A (AInt (int_of_float f)))
      | None -> dynamic_error "cannot cast %S to xs:integer" (string_of_atomic a))
    | "xs:double" | "xs:decimal" | "xs:float" -> (
      match number_opt a with
      | Some f -> Seq.return (A (ADbl f))
      | None -> dynamic_error "cannot cast %S to xs:double" (string_of_atomic a))
    | "xs:string" -> Seq.return (A (AStr (string_of_atomic a)))
    | "xs:boolean" -> (
      match string_of_atomic a with
      | "true" | "1" -> Seq.return (A (ABool true))
      | "false" | "0" -> Seq.return (A (ABool false))
      | s -> dynamic_error "cannot cast %S to xs:boolean" s)
    | "xs:untypedAtomic" -> Seq.return (A (AUntyped (string_of_atomic a)))
    | t -> Error.raise_error Error.Unsupported "unsupported cast target %s" t)

(* ---- steps and predicates ------------------------------------------------------ *)

and eval_step ctx (step : Ast.step) (n : node) : item Seq.t =
  let raw =
    match step.Ast.axis with
    | Ast.Descendant -> descendant_step ctx step.Ast.test n
    | Ast.Descendant_or_self ->
      if test_matches ctx step.Ast.test n then
        Seq.cons n (descendant_step ctx step.Ast.test n)
      else descendant_step ctx step.Ast.test n
    | axis -> Seq.filter (test_matches ctx step.Ast.test) (axis_seq ctx axis n)
  in
  let items = Seq.map (fun n -> N n) raw in
  List.fold_left (fun seq pred -> apply_predicate ctx pred seq) items step.Ast.preds

(* Predicate semantics: numeric value selects by position; otherwise
   effective boolean value with context item/position/size bound. *)
and apply_predicate ctx (pred : Ast.expr) (items : item Seq.t) : item Seq.t =
  if Sedna_xquery.Rewriter.uses_position pred then begin
    (* positional: materialize to know size *)
    let lst = List.of_seq items in
    let size = lazy (List.length lst) in
    List.to_seq lst
    |> Seq.mapi (fun i it -> (i + 1, it))
    |> Seq.filter_map (fun (pos, it) ->
           let ctx' = { ctx with item = Some it; pos; size } in
           if pred_holds ctx' pred then Some it else None)
  end
  else
    (* not statically positional, but a predicate may still evaluate to
       a number: track position lazily (size stays unavailable, which
       is fine — last() would have been detected) *)
    Seq.mapi (fun i it -> (i + 1, it)) items
    |> Seq.filter_map (fun (pos, it) ->
           let ctx' = { ctx with item = Some it; pos; size = lazy 0 } in
           if pred_holds ctx' pred then Some it else None)

and pred_holds ctx (pred : Ast.expr) : bool =
  let res = eval ctx pred in
  (* a numeric predicate value selects the item at that position *)
  match res () with
  | Seq.Nil -> false
  | Seq.Cons (A ((AInt _ | ADbl _) as a), rest) -> (
    match rest () with
    | Seq.Nil -> float_of_atomic a = float_of_int ctx.pos
    | Seq.Cons _ -> ebv ctx.st res)
  | _ -> ebv ctx.st res

(* ---- schema-resolved structural paths ------------------------------------------- *)

and eval_schema_path ctx (doc_name : string) (steps : (Ast.axis * Xname.t) list)
    : item Seq.t =
  let st = ctx.st in
  let doc = Catalog.get_document st.Store.cat doc_name in
  let root_snode = Catalog.snode_by_id st.Store.cat doc.Catalog.schema_root_id in
  (* resolve the step names against the schema tree: this happens in
     main memory, no data block is touched (paper §5.1.4) *)
  let final =
    Catalog.resolve_steps st.Store.cat ~root:root_snode
      (List.map (fun (axis, name) -> (axis = Ast.Descendant, name)) steps)
  in
  let seqs = List.map (fun s -> Traverse.scan_snode st s) final in
  let merged =
    match seqs with
    | [] -> Seq.empty
    | [ one ] -> one
    | seqs -> Traverse.merge_by_doc_order st seqs
  in
  Seq.map (fun d -> N (Stored d)) merged

(* ---- automatic index selection: the physical probe ------------------------------- *)

(* Evaluate a probe produced by the rewriter: look the key(s) up in the
   B-tree, then re-apply the original predicate to every candidate (it
   filters index false positives and enforces strict bounds).  When the
   index is unusable at run time — dropped since compilation, or the
   key is of an atomic kind whose comparison order differs from the
   index's key order — fall back to the unrewritten path. *)
and eval_index_probe ctx (p : Ast.index_probe) : item Seq.t =
  let st = ctx.st in
  match Catalog.find_index st.Store.cat p.Ast.ip_index with
  | None -> eval ctx p.Ast.ip_fallback
  | Some def ->
    let keys = List.map (atomize st) (List.of_seq (eval ctx p.Ast.ip_key)) in
    let compatible (a : atomic) =
      match (def.Catalog.idx_kind, a) with
      | Catalog.Number_index, (AInt _ | ADbl _) -> true
      | Catalog.String_index, (AStr _ | AUntyped _) -> true
      | _ -> false
    in
    if not (List.for_all compatible keys) then eval ctx p.Ast.ip_fallback
    else begin
      Counters.bump Counters.index_probe;
      let handles_for (a : atomic) =
        match def.Catalog.idx_kind with
        | Catalog.Number_index -> (
          let f = float_of_atomic a in
          (* XQuery: every comparison against NaN is false, so a NaN key
             matches nothing — the B-tree's own float order would
             otherwise return an arbitrary, wrong answer *)
          if Float.is_nan f then []
          else
          match p.Ast.ip_mode with
          | Ast.Probe_eq -> Index_mgr.lookup_number st def f
          | Ast.Probe_ge | Ast.Probe_gt -> Index_mgr.range_number st def ~lo:f ()
          | Ast.Probe_le | Ast.Probe_lt -> Index_mgr.range_number st def ~hi:f ())
        | Catalog.String_index -> (
          let s = string_of_atomic a in
          match p.Ast.ip_mode with
          | Ast.Probe_eq -> Index_mgr.lookup_string st def s
          | Ast.Probe_ge | Ast.Probe_gt -> Index_mgr.range_string st def ~lo:s ()
          | Ast.Probe_le | Ast.Probe_lt -> Index_mgr.range_string st def ~hi:s ())
      in
      (* multi-key probes (general comparison against a sequence) may hit
         the same node through several keys: collapse before the residual
         runs; a surviving DDO above restores document order *)
      let handles = List.sort_uniq compare (List.concat_map handles_for keys) in
      List.to_seq handles
      |> Seq.map (fun h -> Indirection.get st.Store.bm h)
      |> Seq.filter (fun d ->
             let ctx' =
               { ctx with item = Some (N (Stored d)); pos = 1; size = lazy 1 }
             in
             pred_holds ctx' p.Ast.ip_residual)
      |> Seq.map (fun d -> N (Stored d))
    end

(* ---- FLWOR ------------------------------------------------------------------------ *)

and eval_clauses ctx (clauses : Ast.clause list) : ctx Seq.t =
  match clauses with
  | [] -> Seq.return ctx
  | Ast.For binds :: rest ->
    let rec expand ctx = function
      | [] -> Seq.return ctx
      | (v, pos_var, e') :: more ->
        let items = eval ctx e' in
        let indexed = Seq.mapi (fun i it -> (i + 1, it)) items in
        Seq.concat_map
          (fun (i, it) ->
            let vars = (v, [ it ]) :: ctx.vars in
            let vars =
              match pos_var with
              | Some pv -> (pv, [ A (AInt i) ]) :: vars
              | None -> vars
            in
            expand { ctx with vars } more)
          indexed
    in
    Seq.concat_map (fun ctx' -> eval_clauses ctx' rest) (expand ctx binds)
  | Ast.Let binds :: rest ->
    let ctx' =
      List.fold_left
        (fun ctx (v, e') ->
          (* let-bound sequences are materialized once (the lazy
             evaluation of §5.1.3) *)
          { ctx with vars = (v, List.of_seq (eval ctx e')) :: ctx.vars })
        ctx binds
    in
    eval_clauses ctx' rest
  | Ast.Where cond :: rest ->
    Seq.concat_map
      (fun ctx' -> eval_clauses ctx' rest)
      (Seq.filter (fun ctx' -> ebv ctx'.st (eval ctx' cond)) (Seq.return ctx))
  | Ast.Order_by keys :: rest ->
    (* ordering is a blocking operator: materialize the tuple stream
       produced so far.  The clause list layout guarantees Order_by is
       applied to the tuples of the preceding clauses because
       eval_clauses is invoked per tuple; to sort globally we intercept
       here: collect continuations. *)
    ignore keys;
    ignore rest;
    assert false (* handled by eval_flwor_ordered below *)

(* FLWORs with order-by need the whole tuple stream: restructure. *)
and eval_flwor ctx (clauses : Ast.clause list) (ret : Ast.expr) : item Seq.t =
  (* split at the first Order_by *)
  let rec split acc = function
    | Ast.Order_by keys :: rest -> Some (List.rev acc, keys, rest)
    | c :: rest -> split (c :: acc) rest
    | [] -> None
  in
  match split [] clauses with
  | None ->
    Seq.concat_map (fun ctx' -> eval ctx' ret) (eval_clauses ctx clauses)
  | Some (before, keys, after) ->
    let tuples = List.of_seq (eval_clauses ctx before) in
    let keyed =
      List.map
        (fun ctx' ->
          let ks =
            List.map
              (fun (k, dir) -> (singleton_atomic ctx' (eval ctx' k), dir))
              keys
          in
          (ks, ctx'))
        tuples
    in
    let cmp_atomic a b =
      match (a, b) with
      | None, None -> 0
      | None, Some _ -> -1 (* empty least *)
      | Some _, None -> 1
      | Some x, Some y -> (
        match general_pair_compare x y with
        | Some c -> c
        | None -> String.compare (string_of_atomic x) (string_of_atomic y))
    in
    let rec cmp_keys ks1 ks2 =
      match (ks1, ks2) with
      | [], [] -> 0
      | (a, dir) :: r1, (b, _) :: r2 ->
        let c = cmp_atomic a b in
        let c = match dir with Ast.Ascending -> c | Ast.Descending -> -c in
        if c <> 0 then c else cmp_keys r1 r2
      | _ -> 0
    in
    let sorted = List.stable_sort (fun (k1, _) (k2, _) -> cmp_keys k1 k2) keyed in
    Seq.concat_map
      (fun (_, ctx') -> eval_flwor ctx' after ret)
      (List.to_seq sorted)

(* ---- binary operators ----------------------------------------------------------- *)

and eval_binop ctx op a b : item Seq.t =
  match op with
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Idiv | Ast.Mod -> (
    match
      (singleton_atomic ctx (eval ctx a), singleton_atomic ctx (eval ctx b))
    with
    | Some x, Some y -> Seq.return (A (numeric_binop op x y))
    | _ -> Seq.empty)
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
    match
      (singleton_atomic ctx (eval ctx a), singleton_atomic ctx (eval ctx b))
    with
    | Some x, Some y when nan_pair x y ->
      (* IEEE 754: every ordered comparison with NaN is false; 'ne' is
         not(eq), so it alone is true *)
      Seq.return (A (ABool (op = Ast.Ne)))
    | Some x, Some y -> (
      match value_compare x y with
      | None ->
        type_error "values %S and %S are not comparable" (string_of_atomic x)
          (string_of_atomic y)
      | Some c ->
        let r =
          match op with
          | Ast.Eq -> c = 0
          | Ast.Ne -> c <> 0
          | Ast.Lt -> c < 0
          | Ast.Le -> c <= 0
          | Ast.Gt -> c > 0
          | Ast.Ge -> c >= 0
          | _ -> assert false
        in
        Seq.return (A (ABool r)))
    | _ -> Seq.empty)
  | Ast.Gen_eq | Ast.Gen_ne | Ast.Gen_lt | Ast.Gen_le | Ast.Gen_gt | Ast.Gen_ge ->
    let xs = List.of_seq (Seq.map (atomize ctx.st) (eval ctx a)) in
    let ys = List.of_seq (Seq.map (atomize ctx.st) (eval ctx b)) in
    let holds x y =
      match general_pair_compare x y with
      | None -> op = Ast.Gen_ne && nan_pair x y
      | Some c -> (
        match op with
        | Ast.Gen_eq -> c = 0
        | Ast.Gen_ne -> c <> 0
        | Ast.Gen_lt -> c < 0
        | Ast.Gen_le -> c <= 0
        | Ast.Gen_gt -> c > 0
        | Ast.Gen_ge -> c >= 0
        | _ -> assert false)
    in
    Seq.return (A (ABool (List.exists (fun x -> List.exists (holds x) ys) xs)))
  | Ast.Is | Ast.Precedes | Ast.Follows -> (
    let node_of e' =
      match (eval ctx e') () with
      | Seq.Nil -> None
      | Seq.Cons (N n, _) -> Some n
      | Seq.Cons (A _, _) -> type_error "node comparison over atomic values"
    in
    match (node_of a, node_of b) with
    | Some x, Some y ->
      let r =
        match op with
        | Ast.Is -> is_same_node ctx.st x y
        | Ast.Precedes -> node_compare ctx.st x y < 0
        | Ast.Follows -> node_compare ctx.st x y > 0
        | _ -> assert false
      in
      Seq.return (A (ABool r))
    | _ -> Seq.empty)
  | Ast.Union ->
    ddo ctx (Seq.append (eval ctx a) (eval ctx b))
  | Ast.Intersect ->
    let ys = List.of_seq (eval ctx b) in
    let mem n =
      List.exists
        (function N m -> is_same_node ctx.st n m | A _ -> false)
        ys
    in
    ddo ctx
      (Seq.filter (function N n -> mem n | A _ -> false) (eval ctx a))
  | Ast.Except ->
    let ys = List.of_seq (eval ctx b) in
    let mem n =
      List.exists
        (function N m -> is_same_node ctx.st n m | A _ -> false)
        ys
    in
    ddo ctx
      (Seq.filter (function N n -> not (mem n) | A _ -> true) (eval ctx a))

(* ---- constructors ------------------------------------------------------------------ *)

and build_element ctx (name : Xname.t) (atts : Ast.attr_constr list)
    (content : Ast.expr list) : tnode =
  let t = new_tnode ~kind:Catalog.Element ~name:(Some name) ~value:"" in
  let att_nodes =
    List.map
      (fun (a : Ast.attr_constr) ->
        let v =
          String.concat ""
            (List.map
               (fun part ->
                 match part with
                 | Ast.Str_lit s -> s
                 | e' ->
                   String.concat " "
                     (List.map (item_string ctx.st) (List.of_seq (eval ctx e'))))
               a.Ast.attr_value)
        in
        let an =
          new_tnode ~kind:Catalog.Attribute ~name:(Some a.Ast.attr_name) ~value:v
        in
        an.t_parent <- Some t;
        Temp an)
      atts
  in
  t.t_children <- att_nodes;
  (* literal text parts join without separators; atomics within ONE
     enclosed expression are space-separated (XQuery 3.7.1.3) *)
  List.iter
    (fun part ->
      match part with
      | Ast.Str_lit s -> append_literal_text t s
      | e' -> fill_content ctx t (eval ctx e'))
    content;
  t

(* merge literal text with a preceding text node, never adding spaces *)
and append_literal_text (t : tnode) (s : string) : unit =
  match List.rev t.t_children with
  | Temp last :: _ when last.t_kind = Catalog.Text ->
    last.t_value <- last.t_value ^ s
  | _ ->
    let tx = new_tnode ~kind:Catalog.Text ~name:None ~value:s in
    tx.t_parent <- Some t;
    t.t_children <- t.t_children @ [ Temp tx ]

(* Append evaluated content items to a constructed element, applying
   the §5.2.1 copy rules: adjacent atomics join into one text node;
   stored nodes are deep-copied unless the constructor is virtual;
   freshly constructed (parentless) temp nodes are adopted directly —
   the "embedded constructors" optimization. *)
and fill_content ctx (t : tnode) (items : item Seq.t) : unit =
  let pending = Buffer.create 16 in
  let have_pending = ref false in
  let flush () =
    if !have_pending then begin
      let tx = new_tnode ~kind:Catalog.Text ~name:None ~value:(Buffer.contents pending) in
      tx.t_parent <- Some t;
      t.t_children <- t.t_children @ [ Temp tx ];
      Buffer.clear pending;
      have_pending := false
    end
  in
  Seq.iter
    (fun it ->
      match it with
      | A a ->
        if !have_pending then Buffer.add_char pending ' ';
        Buffer.add_string pending (string_of_atomic a);
        have_pending := true
      | N (Stored d) ->
        flush ();
        if ctx.virtual_ok then begin
          Counters.bump "constructor.virtual";
          t.t_children <- t.t_children @ [ Stored d ]
        end
        else begin
          let c = deep_copy_stored ctx.st d in
          c.t_parent <- Some t;
          t.t_children <- t.t_children @ [ Temp c ]
        end
      | N (Temp src) ->
        flush ();
        if src.t_parent = None then begin
          (* embedded constructor: set the parent, no copy *)
          Counters.bump "constructor.embedded";
          src.t_parent <- Some t;
          t.t_children <- t.t_children @ [ Temp src ]
        end
        else begin
          let c = deep_copy_temp src in
          c.t_parent <- Some t;
          t.t_children <- t.t_children @ [ Temp c ]
        end)
    items;
  flush ()

(* ---- function calls ------------------------------------------------------------------ *)

and eval_call ctx (n : Xname.t) (args : Ast.expr list) : item Seq.t =
  let local = Xname.local n in
  (* user-declared functions shadow nothing: builtin names win *)
  match (local, args) with
  | "doc", [ a ] | "document", [ a ] -> (
    match singleton_atomic ctx (eval ctx a) with
    | Some name ->
      let doc = Catalog.get_document ctx.st.Store.cat (string_of_atomic name) in
      Seq.return (N (Stored (Indirection.get ctx.st.Store.bm doc.Catalog.doc_indir)))
    | None -> Seq.empty)
  | "doc-available", [ a ] -> (
    match singleton_atomic ctx (eval ctx a) with
    | Some name ->
      Seq.return
        (A (ABool (Catalog.find_document ctx.st.Store.cat (string_of_atomic name) <> None)))
    | None -> Seq.return (A (ABool false)))
  | "collection", [ a ] -> (
    match singleton_atomic ctx (eval ctx a) with
    | Some name ->
      let docs =
        Catalog.collection_documents ctx.st.Store.cat (string_of_atomic name)
      in
      List.to_seq docs
      |> Seq.map (fun d ->
             let doc = Catalog.get_document ctx.st.Store.cat d in
             N (Stored (Indirection.get ctx.st.Store.bm doc.Catalog.doc_indir)))
    | None -> Seq.empty)
  | "root", [] | "root", [ _ ] ->
    let n0 =
      match args with
      | [] -> context_node ctx
      | [ a ] -> (
        match (eval ctx a) () with
        | Seq.Cons (N n, _) -> n
        | _ -> type_error "fn:root needs a node")
      | _ -> assert false
    in
    let rec up n =
      match node_parent ctx.st n with None -> n | Some p -> up p
    in
    Seq.return (N (up n0))
  | "count", [ a ] ->
    Seq.return (A (AInt (Seq.length (eval ctx a))))
  | "empty", [ a ] -> Seq.return (A (ABool (Seq.is_empty (eval ctx a))))
  | "exists", [ a ] -> Seq.return (A (ABool (not (Seq.is_empty (eval ctx a)))))
  | "boolean", [ a ] -> Seq.return (A (ABool (ebv ctx.st (eval ctx a))))
  | "true", [] -> Seq.return (A (ABool true))
  | "false", [] -> Seq.return (A (ABool false))
  | ("sum" | "avg" | "min" | "max"), [ a ] -> eval_aggregate ctx local a
  | "string", [] -> Seq.return (A (AStr (item_string ctx.st (context_item ctx))))
  | "string", [ a ] -> (
    match (eval ctx a) () with
    | Seq.Nil -> Seq.return (A (AStr ""))
    | Seq.Cons (x, _) -> Seq.return (A (AStr (item_string ctx.st x))))
  | "data", [ a ] -> Seq.map (fun i -> A (atomize ctx.st i)) (eval ctx a)
  | "number", [] ->
    Seq.return (A (ADbl (float_of_atomic (atomize ctx.st (context_item ctx)))))
  | "number", [ a ] -> (
    match singleton_atomic ctx (eval ctx a) with
    | Some x -> Seq.return (A (ADbl (float_of_atomic x)))
    | None -> Seq.return (A (ADbl Float.nan)))
  | "string-length", _ ->
    let s =
      match args with
      | [] -> item_string ctx.st (context_item ctx)
      | [ a ] -> (
        match (eval ctx a) () with
        | Seq.Nil -> ""
        | Seq.Cons (x, _) -> item_string ctx.st x)
      | _ -> assert false
    in
    Seq.return (A (AInt (String.length s)))
  | "normalize-space", _ ->
    let s =
      match args with
      | [] -> item_string ctx.st (context_item ctx)
      | [ a ] -> (
        match (eval ctx a) () with
        | Seq.Nil -> ""
        | Seq.Cons (x, _) -> item_string ctx.st x)
      | _ -> assert false
    in
    let parts =
      String.split_on_char ' ' (String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s)
      |> List.filter (fun p -> p <> "")
    in
    Seq.return (A (AStr (String.concat " " parts)))
  | "upper-case", [ a ] ->
    Seq.return (A (AStr (String.uppercase_ascii (arg_string ctx a))))
  | "lower-case", [ a ] ->
    Seq.return (A (AStr (String.lowercase_ascii (arg_string ctx a))))
  | "concat", args when List.length args >= 2 ->
    Seq.return
      (A (AStr (String.concat "" (List.map (fun a -> arg_string ctx a) args))))
  | "contains", [ a; b ] ->
    let hay = arg_string ctx a and needle = arg_string ctx b in
    Seq.return (A (ABool (contains_sub hay needle)))
  | "starts-with", [ a; b ] ->
    let hay = arg_string ctx a and p = arg_string ctx b in
    Seq.return
      (A (ABool (String.length hay >= String.length p && String.sub hay 0 (String.length p) = p)))
  | "ends-with", [ a; b ] ->
    let hay = arg_string ctx a and p = arg_string ctx b in
    let lh = String.length hay and lp = String.length p in
    Seq.return (A (ABool (lh >= lp && String.sub hay (lh - lp) lp = p)))
  | "substring", [ a; b ] ->
    let s = arg_string ctx a in
    let start = int_of_float (arg_number ctx b) in
    let i = max 0 (start - 1) in
    let r = if i >= String.length s then "" else String.sub s i (String.length s - i) in
    Seq.return (A (AStr r))
  | "substring", [ a; b; c ] ->
    let s = arg_string ctx a in
    let start = int_of_float (arg_number ctx b) in
    let len = int_of_float (arg_number ctx c) in
    let i = max 0 (start - 1) in
    let j = min (String.length s) (max 0 (start - 1 + len)) in
    let r = if i >= j then "" else String.sub s i (j - i) in
    Seq.return (A (AStr r))
  | "substring-before", [ a; b ] ->
    let s = arg_string ctx a and m = arg_string ctx b in
    Seq.return
      (A (AStr (match find_sub s m with Some i -> String.sub s 0 i | None -> "")))
  | "substring-after", [ a; b ] ->
    let s = arg_string ctx a and m = arg_string ctx b in
    Seq.return
      (A (AStr
            (match find_sub s m with
             | Some i ->
               String.sub s (i + String.length m) (String.length s - i - String.length m)
             | None -> "")))
  | "string-join", [ a; b ] ->
    let parts = List.map (item_string ctx.st) (List.of_seq (eval ctx a)) in
    Seq.return (A (AStr (String.concat (arg_string ctx b) parts)))
  | "translate", [ a; b; c ] ->
    let s = arg_string ctx a and from = arg_string ctx b and to_ = arg_string ctx c in
    let buf = Buffer.create (String.length s) in
    String.iter
      (fun ch ->
        match String.index_opt from ch with
        | Some i -> if i < String.length to_ then Buffer.add_char buf to_.[i]
        | None -> Buffer.add_char buf ch)
      s;
    Seq.return (A (AStr (Buffer.contents buf)))
  | "position", [] -> Seq.return (A (AInt ctx.pos))
  | "last", [] -> Seq.return (A (AInt (Lazy.force ctx.size)))
  | ("name" | "local-name" | "namespace-uri"), _ ->
    let node =
      match args with
      | [] -> Some (context_node ctx)
      | [ a ] -> (
        match (eval ctx a) () with
        | Seq.Nil -> None
        | Seq.Cons (N n, _) -> Some n
        | Seq.Cons (A _, _) -> type_error "fn:%s needs a node" local)
      | _ -> assert false
    in
    let s =
      match node with
      | None -> ""
      | Some n -> (
        match node_name ctx.st n with
        | None -> ""
        | Some nm -> (
          match local with
          | "name" -> Xname.to_string nm
          | "local-name" -> Xname.local nm
          | _ -> Xname.uri nm))
    in
    Seq.return (A (AStr s))
  | "node-name", [ a ] -> (
    match (eval ctx a) () with
    | Seq.Cons (N n, _) -> (
      match node_name ctx.st n with
      | Some nm -> Seq.return (A (AStr (Xname.to_string nm)))
      | None -> Seq.empty)
    | _ -> Seq.empty)
  | "distinct-values", [ a ] ->
    let seen = Hashtbl.create 16 in
    Seq.filter_map
      (fun i ->
        let a' = atomize ctx.st i in
        let key =
          match a' with
          | AInt v -> "n" ^ string_of_float (float_of_int v)
          | ADbl v -> "n" ^ string_of_float v
          | ABool b -> "b" ^ string_of_bool b
          | AStr s | AUntyped s -> "s" ^ s
        in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.add seen key ();
          Some (A a')
        end)
      (eval ctx a)
  | "reverse", [ a ] -> List.to_seq (List.rev (List.of_seq (eval ctx a)))
  | "subsequence", [ a; b ] ->
    let start = int_of_float (arg_number ctx b) in
    Seq.mapi (fun i it -> (i + 1, it)) (eval ctx a)
    |> Seq.filter_map (fun (i, it) -> if i >= start then Some it else None)
  | "subsequence", [ a; b; c ] ->
    let start = int_of_float (arg_number ctx b) in
    let len = int_of_float (arg_number ctx c) in
    Seq.mapi (fun i it -> (i + 1, it)) (eval ctx a)
    |> Seq.filter_map (fun (i, it) ->
           if i >= start && i < start + len then Some it else None)
  | "insert-before", [ a; b; c ] ->
    let lst = List.of_seq (eval ctx a) in
    let pos = max 1 (int_of_float (arg_number ctx b)) in
    let ins = List.of_seq (eval ctx c) in
    let rec go i = function
      | [] -> ins
      | x :: rest -> if i = pos then ins @ (x :: rest) else x :: go (i + 1) rest
    in
    List.to_seq (go 1 lst)
  | "remove", [ a; b ] ->
    let pos = int_of_float (arg_number ctx b) in
    Seq.mapi (fun i it -> (i + 1, it)) (eval ctx a)
    |> Seq.filter_map (fun (i, it) -> if i = pos then None else Some it)
  | "index-of", [ a; b ] -> (
    match singleton_atomic ctx (eval ctx b) with
    | None -> Seq.empty
    | Some target ->
      Seq.mapi (fun i it -> (i + 1, atomize ctx.st it)) (eval ctx a)
      |> Seq.filter_map (fun (i, a') ->
             match general_pair_compare a' target with
             | Some 0 -> Some (A (AInt i))
             | _ -> None))
  | "floor", [ a ] -> Seq.return (A (ADbl (Float.floor (arg_number ctx a))))
  | "ceiling", [ a ] -> Seq.return (A (ADbl (Float.ceil (arg_number ctx a))))
  | "round", [ a ] -> Seq.return (A (ADbl (Float.round (arg_number ctx a))))
  | "abs", [ a ] -> Seq.return (A (ADbl (Float.abs (arg_number ctx a))))
  | "zero-or-one", [ a ] ->
    let lst = List.of_seq (eval ctx a) in
    if List.length lst > 1 then type_error "fn:zero-or-one got %d items" (List.length lst)
    else List.to_seq lst
  | "exactly-one", [ a ] ->
    let lst = List.of_seq (eval ctx a) in
    if List.length lst <> 1 then type_error "fn:exactly-one got %d items" (List.length lst)
    else List.to_seq lst
  | "one-or-more", [ a ] ->
    let lst = List.of_seq (eval ctx a) in
    if lst = [] then type_error "fn:one-or-more got an empty sequence"
    else List.to_seq lst
  | "matches", [ a; b ] ->
    Seq.return
      (A (ABool (Rx.matches ~pattern:(arg_string ctx b) (arg_string ctx a))))
  | "replace", [ a; b; c ] ->
    Seq.return
      (A (AStr
            (Rx.replace ~pattern:(arg_string ctx b)
               ~replacement:(arg_string ctx c) (arg_string ctx a))))
  | "tokenize", [ a; b ] ->
    List.to_seq
      (List.map
         (fun s -> A (AStr s))
         (Rx.tokenize ~pattern:(arg_string ctx b) (arg_string ctx a)))
  | "deep-equal", [ a; b ] ->
    let sa = serialize ctx.st (eval ctx a) and sb = serialize ctx.st (eval ctx b) in
    Seq.return (A (ABool (String.equal sa sb)))
  | "index-scan", args -> eval_index_scan ctx args
  | "statistics", [] ->
    (* Sedna extension: database statistics as XML *)
    let cat = ctx.st.Store.cat in
    let attr name v =
      let a = new_tnode ~kind:Catalog.Attribute ~name:(Some (Xname.make name)) ~value:v in
      a
    in
    let root = new_tnode ~kind:Catalog.Element ~name:(Some (Xname.make "statistics")) ~value:"" in
    let docs =
      Catalog.document_names cat
      |> List.map (fun name ->
             let doc = Catalog.get_document cat name in
             let sroot = Catalog.snode_by_id cat doc.Catalog.schema_root_id in
             let all = sroot :: Catalog.schema_descendants sroot in
             let nodes =
               List.fold_left (fun a s -> a + s.Catalog.node_count) 0 all
             in
             let blocks =
               List.fold_left (fun a s -> a + s.Catalog.block_count) 0 all
             in
             let d =
               new_tnode ~kind:Catalog.Element
                 ~name:(Some (Xname.make "document")) ~value:""
             in
             let atts =
               [ attr "name" name;
                 attr "nodes" (string_of_int nodes);
                 attr "blocks" (string_of_int blocks);
                 attr "schema-nodes" (string_of_int (List.length all)) ]
             in
             List.iter (fun a -> a.t_parent <- Some d) atts;
             d.t_children <- List.map (fun a -> Temp a) atts;
             d.t_parent <- Some root;
             Temp d)
    in
    let idx =
      Hashtbl.fold
        (fun _ (def : Catalog.index_def) acc ->
          let d =
            new_tnode ~kind:Catalog.Element ~name:(Some (Xname.make "index"))
              ~value:""
          in
          let atts =
            [ attr "name" def.Catalog.idx_name; attr "document" def.Catalog.idx_doc ]
          in
          List.iter (fun a -> a.t_parent <- Some d) atts;
          d.t_children <- List.map (fun a -> Temp a) atts;
          d.t_parent <- Some root;
          Temp d :: acc)
        cat.Catalog.indexes []
    in
    root.t_children <- docs @ idx;
    Seq.return (N (Temp root))
  | "schema", [ a ] -> (
    (* Sedna extension: the document's descriptive schema as XML *)
    match singleton_atomic ctx (eval ctx a) with
    | None -> Seq.empty
    | Some name ->
      let doc =
        Catalog.get_document ctx.st.Store.cat (string_of_atomic name)
      in
      let rec tnode_of (s : Catalog.snode) : tnode =
        let t =
          new_tnode ~kind:Catalog.Element
            ~name:(Some (Xname.make (Catalog.kind_name s.Catalog.kind)))
            ~value:""
        in
        let atts =
          (match s.Catalog.name with
           | Some n ->
             [ new_tnode ~kind:Catalog.Attribute ~name:(Some (Xname.make "name"))
                 ~value:(Xname.to_string n) ]
           | None -> [])
          @ [ new_tnode ~kind:Catalog.Attribute
                ~name:(Some (Xname.make "count"))
                ~value:(string_of_int s.Catalog.node_count);
              new_tnode ~kind:Catalog.Attribute
                ~name:(Some (Xname.make "blocks"))
                ~value:(string_of_int s.Catalog.block_count) ]
        in
        List.iter (fun a' -> a'.t_parent <- Some t) atts;
        let kids = List.map tnode_of s.Catalog.children in
        List.iter (fun k -> k.t_parent <- Some t) kids;
        t.t_children <-
          List.map (fun a' -> Temp a') atts @ List.map (fun k -> Temp k) kids;
        t
      in
      let root =
        Catalog.snode_by_id ctx.st.Store.cat doc.Catalog.schema_root_id
      in
      Seq.return (N (Temp (tnode_of root))))
  | _ -> (
    (* xs: constructor functions *)
    if Xname.prefix n = "xs" && List.length args = 1 then
      eval_cast ctx (List.hd args) ("xs:" ^ local)
    else
      (* user-declared function *)
      match List.assoc_opt local ctx.funcs with
      | Some f when List.length f.Ast.fn_params = List.length args ->
        let bound =
          List.map2 (fun p a -> (p, List.of_seq (eval ctx a))) f.Ast.fn_params args
        in
        eval { ctx with vars = bound @ ctx.vars; item = None } f.Ast.fn_body
      | _ ->
        Error.raise_error Error.Xquery_static "unknown function %s#%d"
          (Xname.to_string n) (List.length args))

and arg_string ctx (a : Ast.expr) : string =
  match (eval ctx a) () with
  | Seq.Nil -> ""
  | Seq.Cons (x, _) -> item_string ctx.st x

and arg_number ctx (a : Ast.expr) : float =
  match singleton_atomic ctx (eval ctx a) with
  | Some x -> float_of_atomic x
  | None -> Float.nan

and contains_sub hay needle =
  find_sub hay needle <> None

and find_sub hay needle : int option =
  let nh = String.length hay and nn = String.length needle in
  if nn = 0 then Some 0
  else
    let rec go i =
      if i + nn > nh then None
      else if String.sub hay i nn = needle then Some i
      else go (i + 1)
    in
    go 0

and eval_aggregate ctx (which : string) (a : Ast.expr) : item Seq.t =
  let values = List.map (atomize ctx.st) (List.of_seq (eval ctx a)) in
  match values with
  | [] -> Seq.empty
  | _ -> (
    match which with
    | "sum" ->
      let s = List.fold_left (fun acc v -> acc +. float_of_atomic v) 0.0 values in
      if List.for_all (function AInt _ -> true | _ -> false) values then
        Seq.return (A (AInt (int_of_float s)))
      else Seq.return (A (ADbl s))
    | "avg" ->
      let s = List.fold_left (fun acc v -> acc +. float_of_atomic v) 0.0 values in
      Seq.return (A (ADbl (s /. float_of_int (List.length values))))
    | "min" | "max" ->
      let better =
        if which = "min" then fun c -> c < 0 else fun c -> c > 0
      in
      let all_numeric =
        List.for_all (fun v -> number_opt v <> None) values
      in
      let pick a b =
        let c =
          if all_numeric then compare (float_of_atomic a) (float_of_atomic b)
          else String.compare (string_of_atomic a) (string_of_atomic b)
        in
        if better c then a else b
      in
      let m = List.fold_left pick (List.hd values) (List.tl values) in
      let m = if all_numeric && not (List.for_all (function AInt _ -> true | _ -> false) values) then ADbl (float_of_atomic m) else m in
      Seq.return (A m)
    | _ -> assert false)

(* Sedna extension: index-scan("name", key [, "GE"|"LE"|"EQ"]) *)
and eval_index_scan ctx (args : Ast.expr list) : item Seq.t =
  match args with
  | name_e :: key_e :: rest ->
    let name =
      match singleton_atomic ctx (eval ctx name_e) with
      | Some a -> string_of_atomic a
      | None -> dynamic_error "index-scan needs an index name"
    in
    let def = Catalog.get_index ctx.st.Store.cat name in
    let mode =
      match rest with
      | [ m ] -> (
        match singleton_atomic ctx (eval ctx m) with
        | Some a -> String.uppercase_ascii (string_of_atomic a)
        | None -> "EQ")
      | _ -> "EQ"
    in
    (match mode with
     | "EQ" | "GE" | "LE" -> ()
     | m -> dynamic_error "index-scan: unknown mode %S (expected EQ, GE or LE)" m);
    let key = singleton_atomic ctx (eval ctx key_e) in
    let handles =
      match (def.Catalog.idx_kind, key) with
      | _, None -> []
      | Catalog.Number_index, Some k -> (
        let f = float_of_atomic k in
        if Float.is_nan f then []
        else
          match mode with
          | "GE" -> Index_mgr.range_number ctx.st def ~lo:f ()
          | "LE" -> Index_mgr.range_number ctx.st def ~hi:f ()
          | _ -> Index_mgr.lookup_number ctx.st def f)
      | Catalog.String_index, Some k -> (
        let s = string_of_atomic k in
        match mode with
        | "GE" -> Index_mgr.range_string ctx.st def ~lo:s ()
        | "LE" -> Index_mgr.range_string ctx.st def ~hi:s ()
        | _ -> Index_mgr.lookup_string ctx.st def s)
    in
    List.to_seq handles
    |> Seq.map (fun h -> N (Stored (Indirection.get ctx.st.Store.bm h)))
  | _ -> dynamic_error "index-scan needs at least 2 arguments"

(* ---- top-level entry -------------------------------------------------------------- *)

(* Fix the Flwor dispatch: route through eval_flwor so order-by works. *)
let eval_top (ctx : ctx) (e : Ast.expr) : item Seq.t = eval ctx e
