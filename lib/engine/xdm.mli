(** The XQuery data model as seen by the executor: items are nodes or
    atomic values; nodes are stored (descriptors in the page store) or
    temporary (constructed, in memory).

    A temporary element's children may be direct references to stored
    nodes — the virtual-constructor representation of paper §5.2.1:
    serialization follows the reference, no deep copy is made.  Deep
    copies, when they happen, bump [Counters.deep_copies]. *)

type tnode = {
  t_id : int;  (** creation order: identity and order among temps *)
  t_kind : Sedna_core.Catalog.kind;
  t_name : Sedna_util.Xname.t option;
  mutable t_value : string;
  mutable t_children : node list;  (** attributes first *)
  mutable t_parent : tnode option;
}

and node = Stored of Sedna_core.Node.desc | Temp of tnode

type atomic =
  | AInt of int
  | ADbl of float
  | AStr of string
  | ABool of bool
  | AUntyped of string

type item = N of node | A of atomic

type value = item list
(** Materialized sequences: variable bindings, function arguments. *)

val new_tnode :
  kind:Sedna_core.Catalog.kind ->
  name:Sedna_util.Xname.t option ->
  value:string ->
  tnode

(** {1 Node accessors, polymorphic over stored/temp} *)

val node_kind : Sedna_core.Store.t -> node -> Sedna_core.Catalog.kind
val node_name : Sedna_core.Store.t -> node -> Sedna_util.Xname.t option
val node_children : Sedna_core.Store.t -> node -> node list
val node_attributes : Sedna_core.Store.t -> node -> node list
val node_parent : Sedna_core.Store.t -> node -> node option
val node_string_value : Sedna_core.Store.t -> node -> string

val is_same_node : Sedna_core.Store.t -> node -> node -> bool
(** Node identity: handle equality for stored, creation id for temp. *)

val node_compare : Sedna_core.Store.t -> node -> node -> int
(** Document order: labels for stored nodes (handle tie-break across
    documents), creation order for temps, stored before temp. *)

(** {1 Atomic values} *)

val atomize : Sedna_core.Store.t -> item -> atomic
val string_of_atomic : atomic -> string
val float_of_atomic : atomic -> float
val number_opt : atomic -> float option
val item_string : Sedna_core.Store.t -> item -> string

val ebv : Sedna_core.Store.t -> item Seq.t -> bool
(** Effective boolean value, per the spec (raises on multi-item atomic
    sequences). *)

val value_compare : atomic -> atomic -> int option
(** Typed comparison for [eq lt ...]; [None] = incomparable (including
    any comparison involving NaN, which is unordered). *)

val nan_pair : atomic -> atomic -> bool
(** One side is a numeric NaN and the other is numeric (or numeric
    untyped): unordered in the IEEE sense rather than ill-typed. *)

val bool_of_untyped : string -> bool
(** xs:untypedAtomic -> xs:boolean cast; raises FORG0001 outside the
    boolean lexical space ("true"/"1"/"false"/"0"). *)

val general_pair_compare : atomic -> atomic -> int option
(** The general-comparison pairwise rule (untyped adapts to the other
    operand). *)

(** {1 Copying (constructor semantics)} *)

val deep_copy_stored : Sedna_core.Store.t -> Sedna_core.Node.desc -> tnode
(** Counts one deep copy per stored node copied. *)

val deep_copy_temp : tnode -> tnode

(** {1 Serialization} *)

val events_of_node : Sedna_core.Store.t -> node -> Sedna_xml.Xml_event.t list

val serialize : Sedna_core.Store.t -> item Seq.t -> string
(** Query-shell style: nodes as XML, atomics space-separated. *)
