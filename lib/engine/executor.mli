(** The executor (paper §5.2): a demand-driven evaluator over lazy item
    sequences — OCaml's [Seq.t] provides the open-next-close pipeline
    of the Volcano design the paper cites.  Blocking operators (DDO,
    sorting, [last()]) materialize; everything else streams.

    [Schema_path] expressions — structural paths extracted by the
    rewriter (§5.1.4) — resolve against the descriptive schema in main
    memory and become merged block-chain scans. *)

type ctx = {
  st : Sedna_core.Store.t;
  vars : (string * Xdm.value) list;
  funcs : (string * Sedna_xquery.Xq_ast.fun_def) list;
  item : Xdm.item option;  (** the context item *)
  pos : int;  (** context position, for [position()] *)
  size : int Lazy.t;  (** context size, for [last()] *)
  virtual_ok : bool;
      (** inside a [Virtual_constr]: constructors may reference stored
          content instead of deep-copying it (paper §5.2.1) *)
  prof : Profiler.t option;
      (** operator-level profiling context ([Session.profile]); [None]
          keeps evaluation on the unobserved path *)
}

val initial_ctx :
  ?vars:(string * Xdm.value) list ->
  ?funcs:(string * Sedna_xquery.Xq_ast.fun_def) list ->
  Sedna_core.Store.t ->
  ctx

val eval : ctx -> Sedna_xquery.Xq_ast.expr -> Xdm.item Seq.t
(** Evaluate an expression (after static analysis and rewriting). *)

val ddo : ctx -> Xdm.item Seq.t -> Xdm.item Seq.t
(** Distinct-document-order: sort by document order, drop duplicate
    nodes; the blocking operator the rewriter tries to remove. *)

val test_matches : ctx -> Sedna_xquery.Xq_ast.node_test -> Xdm.node -> bool

val eval_top : ctx -> Sedna_xquery.Xq_ast.expr -> Xdm.item Seq.t
