(* The XQuery data model as seen by the executor: items are nodes or
   atomic values; nodes are either stored (descriptors in the page
   store) or temporary (constructed by element constructors, held in
   memory).

   A temporary element's children may be direct references to stored
   nodes — the "virtual element constructor" representation of
   paper §5.2.1: no deep copy is made and serialization follows the
   reference.  Deep copies, when they do happen, are counted. *)

open Sedna_util
open Sedna_core

type tnode = {
  t_id : int; (* creation order: identity and document order for temps *)
  t_kind : Catalog.kind;
  t_name : Xname.t option;
  mutable t_value : string; (* text / attribute / comment / pi value *)
  mutable t_children : node list; (* attributes first, then content *)
  mutable t_parent : tnode option;
}

and node = Stored of Node.desc | Temp of tnode

type atomic =
  | AInt of int
  | ADbl of float
  | AStr of string
  | ABool of bool
  | AUntyped of string

type item = N of node | A of atomic

type value = item list
(* materialized sequence: variable bindings, function arguments *)

let temp_counter = ref 0

let new_tnode ~kind ~name ~value =
  incr temp_counter;
  {
    t_id = !temp_counter;
    t_kind = kind;
    t_name = name;
    t_value = value;
    t_children = [];
    t_parent = None;
  }

(* ---- node accessors (polymorphic over stored/temp) -------------------- *)

let node_kind st = function
  | Stored d -> Node.kind st d
  | Temp t -> t.t_kind

let node_name st = function
  | Stored d -> Node.name st d
  | Temp t -> t.t_name

let node_children st = function
  | Stored d -> List.map (fun c -> Stored c) (Node.children st d)
  | Temp t ->
    List.filter
      (fun c -> node_kind st c <> Catalog.Attribute)
      t.t_children

let node_attributes st = function
  | Stored d -> List.map (fun c -> Stored c) (Node.attributes st d)
  | Temp t ->
    List.filter (fun c -> node_kind st c = Catalog.Attribute) t.t_children

let node_parent st = function
  | Stored d -> Option.map (fun p -> Stored p) (Node.parent st d)
  | Temp t -> Option.map (fun p -> Temp p) t.t_parent

let rec node_string_value st = function
  | Stored d -> Node_ser.string_value st d
  | Temp t -> (
    match t.t_kind with
    | Catalog.Text | Catalog.Attribute | Catalog.Comment | Catalog.Pi ->
      t.t_value
    | Catalog.Element | Catalog.Document ->
      t.t_children
      |> List.filter (fun c -> node_kind st c <> Catalog.Attribute)
      |> List.map (node_string_value st)
      |> String.concat "")

let is_same_node st a b =
  match (a, b) with
  | Stored x, Stored y -> Xptr.equal (Node.handle st x) (Node.handle st y)
  | Temp x, Temp y -> x.t_id = y.t_id
  | _ -> false

(* Document order: stored nodes by label (handle as tie-break across
   documents); temporary nodes by creation id; stored before temp
   (implementation-defined inter-tree order, as the spec allows). *)
let node_compare st a b =
  match (a, b) with
  | Stored x, Stored y ->
    let c = Sedna_nid.Nid.compare (Node.label st x) (Node.label st y) in
    if c <> 0 then c
    else Xptr.compare (Node.handle st x) (Node.handle st y)
  | Temp x, Temp y -> compare x.t_id y.t_id
  | Stored _, Temp _ -> -1
  | Temp _, Stored _ -> 1

(* ---- atomics ------------------------------------------------------------ *)

let atomic_of_node st n : atomic = AUntyped (node_string_value st n)

let atomize st (i : item) : atomic =
  match i with N n -> atomic_of_node st n | A a -> a

let string_of_atomic = function
  | AInt i -> string_of_int i
  | ADbl f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      (* serialize 2.0 as "2", per the usual double canonicalization of
         integral values in query results *)
      Printf.sprintf "%.0f" f
    else if Float.is_nan f then "NaN"
    else if f = Float.infinity then "INF"
    else if f = Float.neg_infinity then "-INF"
    else
      let s = Printf.sprintf "%.12g" f in
      s
  | AStr s -> s
  | ABool b -> if b then "true" else "false"
  | AUntyped s -> s

let float_of_atomic = function
  | AInt i -> float_of_int i
  | ADbl f -> f
  | ABool b -> if b then 1.0 else 0.0
  | AStr s | AUntyped s -> (
    match float_of_string_opt (String.trim s) with
    | Some f -> f
    | None -> Float.nan)

let number_opt = function
  | AInt i -> Some (float_of_int i)
  | ADbl f -> Some f
  | AStr s | AUntyped s -> float_of_string_opt (String.trim s)
  | ABool _ -> None

let item_string st (i : item) : string =
  match i with
  | N n -> node_string_value st n
  | A a -> string_of_atomic a

(* ---- effective boolean value --------------------------------------------- *)

let ebv _st (items : item Seq.t) : bool =
  match items () with
  | Seq.Nil -> false
  | Seq.Cons (first, rest) -> (
    match first with
    | N _ -> true
    | A a -> (
      match rest () with
      | Seq.Cons _ ->
        Error.raise_error Error.Xquery_type
          "effective boolean value of a multi-item atomic sequence"
      | Seq.Nil -> (
        match a with
        | ABool b -> b
        | AStr s | AUntyped s -> String.length s > 0
        | AInt i -> i <> 0
        | ADbl f -> (not (Float.is_nan f)) && f <> 0.0)))

(* ---- comparisons ----------------------------------------------------------- *)

(* Numeric comparison with XQuery NaN semantics: every value/general
   comparison involving NaN is false, which [None] encodes — the
   polymorphic [compare] would instead order NaN below everything and
   make [NaN eq NaN] true. *)
let float_compare_opt (x : float) (y : float) : int option =
  if Float.is_nan x || Float.is_nan y then None else Some (compare x y)

(* One side is a numeric NaN and the other is numeric (or an untyped
   value that promotes to a number): the pair is unordered in the IEEE
   sense, as opposed to ill-typed — callers decide between "false" and
   a type error on that distinction. *)
let nan_pair (a : atomic) (b : atomic) : bool =
  let is_nan = function ADbl f -> Float.is_nan f | _ -> false in
  let numericish = function
    | AInt _ | ADbl _ -> true
    | AUntyped s -> float_of_string_opt (String.trim s) <> None
    | _ -> false
  in
  (is_nan a && numericish b) || (is_nan b && numericish a)

let value_compare (a : atomic) (b : atomic) : int option =
  (* typed comparison for 'eq lt ...'; None = incomparable *)
  match (a, b) with
  | AInt x, AInt y -> Some (compare x y)
  | (AInt _ | ADbl _), (AInt _ | ADbl _) ->
    float_compare_opt (float_of_atomic a) (float_of_atomic b)
  | ABool x, ABool y -> Some (compare x y)
  | (AStr x | AUntyped x), (AStr y | AUntyped y) -> Some (String.compare x y)
  | (AInt _ | ADbl _), AUntyped s | AUntyped s, (AInt _ | ADbl _) -> (
    match float_of_string_opt (String.trim s) with
    | Some _ -> float_compare_opt (float_of_atomic a) (float_of_atomic b)
    | None -> None)
  | _ -> None

(* xs:untypedAtomic -> xs:boolean cast (XQuery casting rules): the
   lexical space is "true"/"1" and "false"/"0"; anything else is a
   dynamic error, not silently false. *)
let bool_of_untyped (s : string) : bool =
  match String.trim s with
  | "true" | "1" -> true
  | "false" | "0" -> false
  | other ->
    Error.raise_error Error.Xquery_dynamic
      "cannot cast untyped value %S to xs:boolean" other

(* general-comparison pairwise rule: untyped adapts to the other side *)
let general_pair_compare (a : atomic) (b : atomic) : int option =
  match (a, b) with
  | AUntyped x, (AInt _ | ADbl _) ->
    float_compare_opt (float_of_atomic (AUntyped x)) (float_of_atomic b)
  | (AInt _ | ADbl _), AUntyped y ->
    float_compare_opt (float_of_atomic a) (float_of_atomic (AUntyped y))
  | AUntyped x, ABool _ -> value_compare (ABool (bool_of_untyped x)) b
  | ABool _, AUntyped y -> value_compare a (ABool (bool_of_untyped y))
  | AUntyped x, AStr y | AUntyped x, AUntyped y -> Some (String.compare x y)
  | AStr x, AUntyped y -> Some (String.compare x y)
  | _ -> value_compare a b

(* ---- deep copy of stored / temp content (constructors) -------------------- *)

let rec deep_copy_stored st (d : Node.desc) : tnode =
  Counters.bump Counters.deep_copies;
  let kind = Node.kind st d in
  let t =
    new_tnode ~kind ~name:(Node.name st d)
      ~value:
        (match kind with
         | Catalog.Element | Catalog.Document -> ""
         | _ -> Node.text_value st d)
  in
  (match kind with
   | Catalog.Element | Catalog.Document ->
     let atts =
       List.map
         (fun a ->
           let c = deep_copy_stored st a in
           c.t_parent <- Some t;
           Temp c)
         (Node.attributes st d)
     in
     let kids =
       List.map
         (fun c ->
           let c' = deep_copy_stored st c in
           c'.t_parent <- Some t;
           Temp c')
         (Node.children st d)
     in
     t.t_children <- atts @ kids
   | _ -> ());
  t

let rec deep_copy_temp (src : tnode) : tnode =
  let t = new_tnode ~kind:src.t_kind ~name:src.t_name ~value:src.t_value in
  t.t_children <-
    List.map
      (function
        | Temp c ->
          let c' = deep_copy_temp c in
          c'.t_parent <- Some t;
          Temp c'
        | Stored d -> Stored d (* virtual reference is preserved *))
      src.t_children;
  t

(* ---- serialization ---------------------------------------------------------- *)

let rec events_of_tnode st (t : tnode) : Sedna_xml.Xml_event.t list =
  match t.t_kind with
  | Catalog.Document ->
    List.concat_map (events_of_node st)
      (List.filter (fun c -> node_kind st c <> Catalog.Attribute) t.t_children)
  | Catalog.Element ->
    let name = match t.t_name with Some n -> n | None -> Xname.make "unnamed" in
    let atts =
      List.filter_map
        (fun c ->
          match c with
          | Temp a when a.t_kind = Catalog.Attribute ->
            Some
              {
                Sedna_xml.Xml_event.name =
                  (match a.t_name with Some n -> n | None -> Xname.make "a");
                value = a.t_value;
              }
          | Stored d when Node.kind st d = Catalog.Attribute ->
            Some
              {
                Sedna_xml.Xml_event.name =
                  (match Node.name st d with
                   | Some n -> n
                   | None -> Xname.make "a");
                value = Node.text_value st d;
              }
          | _ -> None)
        t.t_children
    in
    (Sedna_xml.Xml_event.Start_element (name, atts)
     :: List.concat_map (events_of_node st)
          (List.filter (fun c -> node_kind st c <> Catalog.Attribute) t.t_children))
    @ [ Sedna_xml.Xml_event.End_element ]
  | Catalog.Text -> [ Sedna_xml.Xml_event.Text t.t_value ]
  | Catalog.Comment -> [ Sedna_xml.Xml_event.Comment t.t_value ]
  | Catalog.Pi ->
    [ Sedna_xml.Xml_event.Processing_instruction
        ((match t.t_name with Some n -> Xname.local n | None -> "pi"), t.t_value) ]
  | Catalog.Attribute -> [ Sedna_xml.Xml_event.Text t.t_value ]

and events_of_node st (n : node) : Sedna_xml.Xml_event.t list =
  match n with
  | Stored d -> Node_ser.events_of_node st d
  | Temp t -> events_of_tnode st t

(* Serialize a result sequence the way a query shell does: nodes as
   XML, atomics as text separated by spaces. *)
let serialize st (items : item Seq.t) : string =
  let buf = Buffer.create 256 in
  let prev_atomic = ref false in
  Seq.iter
    (fun i ->
      match i with
      | N n ->
        prev_atomic := false;
        Buffer.add_string buf (Sedna_xml.Serializer.to_string (events_of_node st n))
      | A a ->
        if !prev_atomic then Buffer.add_char buf ' ';
        prev_atomic := true;
        Buffer.add_string buf (string_of_atomic a))
    items;
  Buffer.contents buf
