(* Node-level update operations (paper §4.1).

   The data organization is designed so that each update touches a
   constant number of fields per affected node:

   - fixed-size descriptors within a block make free-space management
     trivial (slot free lists);
   - the indirect parent pointer makes descriptor relocation O(1) in
     the node's fan-out;
   - partial ordering (unordered within a block) means an insertion
     never shifts other descriptors.

   Block splits and schema widening relocate descriptors through
   {!Node.relocate_desc}, which updates exactly: the indirection cell,
   the two sibling neighbours, and at most one parent child-slot. *)

open Sedna_util

(* ---- schema widening --------------------------------------------------- *)

(* Ensure the descriptor of [d] lives in a block with at least
   [need_slots] child slots.  If its block is too narrow, a new block
   with the schema's current width is inserted right after it and [d]
   plus its in-block order successors move there, preserving the
   partial order of the block chain.  Returns the (possibly new)
   descriptor address of [d]. *)
let ensure_child_slots (st : Store.t) (d : Node.desc) ~need_slots : Node.desc =
  let bm = st.Store.bm in
  let block = Node_block.block_of_desc d in
  if Node_block.child_slots bm block >= need_slots then d
  else begin
    let s = Node.snode st d in
    let width = max need_slots (List.length s.Catalog.children) in
    let my_handle = Node.handle st d in
    (* collect [d] and its in-block successors, in order *)
    let rec successors acc cur =
      match Node_block.next_in_block bm cur with
      | Some slot -> successors (slot :: acc) (Node_block.desc_addr bm block slot)
      | None -> List.rev acc
    in
    let to_move = Node_block.slot_of_desc bm d :: successors [] d in
    (* wider descriptors fit fewer per block: chain as many new blocks
       as the move needs, preserving the partial order *)
    let cur_block =
      ref
        (Node_block.create_block bm st.Store.cat s ~child_slots:width
           ~after:(Some block))
    in
    let last_new = ref None in
    List.iter
      (fun slot ->
        if not (Node_block.has_room bm !cur_block) then begin
          cur_block :=
            Node_block.create_block bm st.Store.cat s ~child_slots:width
              ~after:(Some !cur_block);
          last_new := None
        end;
        let src = Node_block.desc_addr bm block slot in
        Node_block.unlink_in_order bm block slot;
        let dst =
          Node.relocate_desc st ~src ~dst_block:!cur_block ~order_after:!last_new
        in
        Node_block.free_slot bm block slot;
        last_new := Some (Node_block.slot_of_desc bm dst))
      to_move;
    if Node_block.count bm block = 0 then
      Node_block.destroy_block bm st.Store.cat s block;
    Indirection.get bm my_handle
  end

(* ---- block split ------------------------------------------------------- *)

(* Split [block]: move the upper half of its order chain into a fresh
   block inserted right after it.  Returns the new block. *)
let split_block (st : Store.t) (snode : Catalog.snode) (block : Xptr.t) : Xptr.t =
  let bm = st.Store.bm in
  let cs = Node_block.child_slots bm block in
  let nb = Node_block.create_block bm st.Store.cat snode ~child_slots:cs
      ~after:(Some block) in
  let n = Node_block.count bm block in
  let keep = n / 2 in
  (* walk the order chain to the first descriptor that moves *)
  let rec nth_desc i cur =
    if i = 0 then cur
    else
      match Node_block.next_in_block bm cur with
      | Some slot -> nth_desc (i - 1) (Node_block.desc_addr bm block slot)
      | None -> cur
  in
  (match Node_block.first_slot bm block with
   | None -> ()
   | Some s0 ->
     let first_moved = nth_desc keep (Node_block.desc_addr bm block s0) in
     let rec slots acc cur =
       let acc = Node_block.slot_of_desc bm cur :: acc in
       match Node_block.next_in_block bm cur with
       | Some slot -> slots acc (Node_block.desc_addr bm block slot)
       | None -> List.rev acc
     in
     let to_move = slots [] first_moved in
     let last_new = ref None in
     List.iter
       (fun slot ->
         let src = Node_block.desc_addr bm block slot in
         Node_block.unlink_in_order bm block slot;
         let dst =
           Node.relocate_desc st ~src ~dst_block:nb ~order_after:!last_new
         in
         Node_block.free_slot bm block slot;
         last_new := Some (Node_block.slot_of_desc bm dst))
       to_move);
  nb

(* ---- locating the insertion position ----------------------------------- *)

(* Find, within [snode]'s block chain, the descriptor with the greatest
   label strictly below [lbl]: the in-chain predecessor of the node
   being inserted.  Returns [None] when [lbl] precedes every node. *)
let locate_predecessor (st : Store.t) (snode : Catalog.snode) (lbl : Sedna_nid.Nid.t)
    : Node.desc option =
  let bm = st.Store.bm in
  let before d = Sedna_nid.Nid.compare (Node.label st d) lbl < 0 in
  let rec scan_blocks block best =
    if Xptr.is_null block then best
    else begin
      Counters.bump Counters.block_touch;
      match Node_block.first_slot bm block with
      | None -> scan_blocks (Node_block.next_block bm block) best
      | Some s0 ->
        let first = Node_block.desc_addr bm block s0 in
        if not (before first) then best
        else begin
          (* the predecessor is in this block or a later one *)
          let last =
            match Node_block.last_slot bm block with
            | Some s -> Node_block.desc_addr bm block s
            | None -> first
          in
          if before last then scan_blocks (Node_block.next_block bm block) (Some last)
          else begin
            (* strictly inside this block: walk the order chain *)
            let rec walk cur =
              match Node_block.next_in_block bm cur with
              | Some slot ->
                let n = Node_block.desc_addr bm block slot in
                if before n then walk n else cur
              | None -> cur
            in
            Some (walk first)
          end
        end
    end
  in
  scan_blocks snode.Catalog.first_block None

(* ---- descriptor initialization ----------------------------------------- *)

let write_fresh_desc (st : Store.t) ~(snode : Catalog.snode) ~(block : Xptr.t)
    ~(order_after : int option) ~(lbl : Sedna_nid.Nid.t)
    ~(parent_handle : Xptr.t) ~(value : string option) : Node.desc =
  let bm = st.Store.bm in
  let slot = Node_block.alloc_slot bm block in
  let d = Node_block.desc_addr bm block slot in
  Node_block.set_label bm st.Store.cat d lbl;
  let cell = Indirection.alloc bm st.Store.cat in
  Indirection.set bm cell d;
  Node_block.set_indir bm d cell;
  Node_block.set_parent_indir bm d parent_handle;
  (match snode.Catalog.kind with
   | Catalog.Element | Catalog.Document -> ()
   | Catalog.Attribute | Catalog.Text | Catalog.Comment | Catalog.Pi ->
     (match value with
      | Some v when v <> "" ->
        let r = Text_store.insert bm st.Store.cat v in
        Node_block.set_text_ref bm d r;
        Node_block.set_text_len bm d (String.length v)
      | _ ->
        Node_block.set_text_ref bm d Xptr.null;
        Node_block.set_text_len bm d 0));
  Node_block.link_in_order bm block ~slot ~after:order_after;
  snode.Catalog.node_count <- snode.Catalog.node_count + 1;
  (* Cached plans bake in cardinality decisions (the index-pushdown
     gate) keyed by the catalog epoch, and same-shape inserts don't
     change the schema.  Bump the epoch when a population crosses a
     power-of-two boundary so a growing document re-evaluates those
     decisions at O(log n) cost instead of waiting for unrelated DDL. *)
  let c = snode.Catalog.node_count in
  if c land (c - 1) = 0 then Catalog.bump_epoch st.Store.cat
  else Catalog.mark_dirty st.Store.cat;
  d

(* Wire the new node into the sibling chain between [left] and [right]
   (descriptor addresses, either may be absent). *)
let link_siblings (st : Store.t) (d : Node.desc) ~(left : Node.desc option)
    ~(right : Node.desc option) =
  let bm = st.Store.bm in
  (match left with
   | Some l ->
     Node_block.set_left_sibling bm d l;
     Node_block.set_right_sibling bm l d
   | None -> Node_block.set_left_sibling bm d Xptr.null);
  match right with
  | Some r ->
    Node_block.set_right_sibling bm d r;
    Node_block.set_left_sibling bm r d
  | None -> Node_block.set_right_sibling bm d Xptr.null

(* Update the parent's per-schema first-child pointer if the new node
   now precedes the current first child of its schema (or none was
   set).  May widen the parent's block; returns nothing — the caller
   must re-derive the parent descriptor from its handle afterwards. *)
let update_parent_child_ptr (st : Store.t) ~(parent_handle : Xptr.t)
    ~(snode : Catalog.snode) (d : Node.desc) =
  if not (Xptr.is_null parent_handle) then begin
    let bm = st.Store.bm in
    let pd = Indirection.get bm parent_handle in
    let k = snode.Catalog.child_slot in
    let pd = ensure_child_slots st pd ~need_slots:(k + 1) in
    let cur = Node_block.child bm pd k in
    if Xptr.is_null cur
       || Sedna_nid.Nid.compare (Node.label st d) (Node.label st cur) < 0
    then Node_block.set_child bm pd k d
  end

(* ---- the public insertion entry points ---------------------------------- *)

(* Append [kind/name/value] as the LAST child of [parent_handle], with
   [prev_handle] the current last child (bulk-load fast path: ordinal
   labels, no comparisons, always appends to the schema node's last
   block). *)
let append_child (st : Store.t) ~(parent_handle : Xptr.t)
    ~(prev_handle : Xptr.t option) ~(kind : Catalog.kind)
    ~(name : Xname.t option) ~(value : string option) ~(ordinal : int) :
    Xptr.t =
  let bm = st.Store.bm in
  let pd = Indirection.get bm parent_handle in
  let psnode = Node.snode st pd in
  let snode, _is_new = Catalog.find_or_add_child st.Store.cat psnode ~kind ~name in
  let parent_label = Node.label st pd in
  let lbl = Sedna_nid.Nid.ordinal_child ~parent:parent_label ordinal in
  (* target block: the schema node's last block *)
  let block =
    let last = snode.Catalog.last_block in
    if (not (Xptr.is_null last)) && Node_block.has_room bm last then last
    else
      Node_block.create_block bm st.Store.cat snode
        ~child_slots:(match kind with
          | Catalog.Element | Catalog.Document ->
            max 2 (List.length snode.Catalog.children)
          | _ -> 0)
        ~after:None
  in
  let order_after = Node_block.last_slot bm block in
  let d =
    write_fresh_desc st ~snode ~block ~order_after ~lbl
      ~parent_handle ~value
  in
  let left = Option.map (Indirection.get bm) prev_handle in
  link_siblings st d ~left ~right:None;
  update_parent_child_ptr st ~parent_handle ~snode d;
  Node.handle st d

(* General insertion: new node under [parent_handle] placed between
   sibling handles [left] and [right] (either may be [None]).  Splits
   the target block when full; never relabels any existing node. *)
let insert_child (st : Store.t) ~(parent_handle : Xptr.t)
    ~(left : Xptr.t option) ~(right : Xptr.t option) ~(kind : Catalog.kind)
    ~(name : Xname.t option) ~(value : string option) : Xptr.t =
  let bm = st.Store.bm in
  let pd = Indirection.get bm parent_handle in
  let psnode = Node.snode st pd in
  let snode, _ = Catalog.find_or_add_child st.Store.cat psnode ~kind ~name in
  let parent_label = Node.label st pd in
  (* resolve the effective neighbours FIRST: the label must be computed
     against the nodes the new one actually lands between *)
  let left_d = Option.map (Indirection.get bm) left in
  let right_d = Option.map (Indirection.get bm) right in
  let left_d, right_d =
    match (left_d, right_d) with
    | None, None ->
      (* insert as first child: right = current first child, if any *)
      (None, Node.first_child_any st pd)
    | (Some ld as l), None -> (l, Node.right_sibling st ld)
    | None, (Some rd as r) -> (Node.left_sibling st rd, r)
    | l, r -> (l, r)
  in
  let left_lbl = Option.map (Node.label st) left_d in
  let right_lbl = Option.map (Node.label st) right_d in
  let lbl =
    Sedna_nid.Nid.child_between ~parent:parent_label ~left:left_lbl
      ~right:right_lbl
  in
  (* descriptor addresses may be invalidated below (splits); keep the
     neighbours by handle *)
  let left_h = Option.map (Node.handle st) left_d in
  let right_h = Option.map (Node.handle st) right_d in
  (* position within the schema node's chain *)
  let pred = locate_predecessor st snode lbl in
  let block, order_after =
    match pred with
    | Some p ->
      let b = Node_block.block_of_desc p in
      (b, Some (Node_block.slot_of_desc bm p))
    | None ->
      let b = snode.Catalog.first_block in
      if Xptr.is_null b then
        (Node_block.create_block bm st.Store.cat snode
           ~child_slots:(match kind with
             | Catalog.Element | Catalog.Document ->
               max 2 (List.length snode.Catalog.children)
             | _ -> 0)
           ~after:None,
         None)
      else (b, None)
  in
  (* split on overflow, then recompute the position *)
  let block, order_after =
    if Node_block.has_room bm block then (block, order_after)
    else begin
      let pred_handle = Option.map (fun p -> Node.handle st p) pred in
      ignore (split_block st snode block);
      match pred_handle with
      | Some h ->
        let p = Indirection.get bm h in
        (Node_block.block_of_desc p, Some (Node_block.slot_of_desc bm p))
      | None -> (snode.Catalog.first_block, None)
    end
  in
  let d =
    write_fresh_desc st ~snode ~block ~order_after ~lbl ~parent_handle ~value
  in
  link_siblings st d
    ~left:(Option.map (Indirection.get bm) left_h)
    ~right:(Option.map (Indirection.get bm) right_h);
  update_parent_child_ptr st ~parent_handle ~snode d;
  Node.handle st d

(* ---- deletion ------------------------------------------------------------ *)

let rec delete_node (st : Store.t) (h : Xptr.t) =
  let bm = st.Store.bm in
  (* children first (including attributes) *)
  let rec kill_children () =
    match Node.first_child_any st (Indirection.get bm h) with
    | Some c ->
      delete_node st (Node.handle st c);
      kill_children ()
    | None -> ()
  in
  kill_children ();
  let d = Indirection.get bm h in
  let snode = Node.snode st d in
  (* unlink from the sibling chain *)
  let l = Node_block.left_sibling bm d and r = Node_block.right_sibling bm d in
  if not (Xptr.is_null l) then Node_block.set_right_sibling bm l r;
  if not (Xptr.is_null r) then Node_block.set_left_sibling bm r l;
  (* fix the parent's first-child pointer for this schema *)
  let p = Node_block.parent_indir bm d in
  if not (Xptr.is_null p) then begin
    let pd = Indirection.get bm p in
    let k = snode.Catalog.child_slot in
    if Xptr.equal (Node_block.child bm pd k) d then begin
      (* successor of the same schema node under the same parent *)
      let succ =
        match Node_block.next_desc bm d with
        | Some n when Xptr.equal (Node_block.parent_indir bm n) p -> n
        | _ -> Xptr.null
      in
      Node_block.set_child bm pd k succ
    end
  end;
  (* release text and label storage *)
  (match snode.Catalog.kind with
   | Catalog.Element | Catalog.Document -> ()
   | _ ->
     let r = Node_block.text_ref bm d in
     if not (Xptr.is_null r) then Text_store.delete bm st.Store.cat r);
  Node_block.release_label bm st.Store.cat d;
  (* free the slot and, when the block empties, the block *)
  let block = Node_block.block_of_desc d in
  let slot = Node_block.slot_of_desc bm d in
  Node_block.unlink_in_order bm block slot;
  Node_block.free_slot bm block slot;
  if Node_block.count bm block = 0 then
    Node_block.destroy_block bm st.Store.cat snode block;
  Indirection.free bm st.Store.cat h;
  snode.Catalog.node_count <- snode.Catalog.node_count - 1;
  Catalog.mark_dirty st.Store.cat

(* ---- value replacement ----------------------------------------------------- *)

(* Replace the string value of a text-carrying node: a constant-field
   update (the text slot may move; one descriptor field changes). *)
let set_text_value (st : Store.t) (h : Xptr.t) (v : string) =
  let bm = st.Store.bm in
  let d = Indirection.get bm h in
  let old = Node_block.text_ref bm d in
  let r =
    if Xptr.is_null old then
      if v = "" then Xptr.null else Text_store.insert bm st.Store.cat v
    else if v = "" then begin
      Text_store.delete bm st.Store.cat old;
      Xptr.null
    end
    else Text_store.update bm st.Store.cat old v
  in
  Node_block.set_text_ref bm d r;
  Node_block.set_text_len bm d (String.length v)
