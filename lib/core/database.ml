(* The database: files, buffer, WAL, versions, locks, catalog and the
   transaction table — the per-database half of Figure 1's "database
   manager" (buffer manager + transaction manager).

   On-disk layout in the database directory:
     data.sdb     pages (master page + node/text/indirection/btree blocks)
     wal.sdb      write-ahead log since the last checkpoint
     catalog.sdb  checkpointed catalog (Marshal blob)

   Opening a database runs the two-step recovery of paper §6.4: load
   the checkpointed (persistent-snapshot) state, then redo the
   committed transactions found in the WAL. *)

open Sedna_util

type t = {
  dir : string;
  fs : File_store.t;
  bm : Buffer_mgr.t;
  wal : Wal.t;
  gc : Group_commit.t; (* coalesces concurrent commit fsyncs *)
  versions : Versions.t;
  locks : Lock_mgr.t;
  mutable cat : Catalog.t;
  (* serialized catalog as of the last *completed* commit.  Readers
     deserialize their private catalog from this, never from the live
     [cat]: during a parked group commit the live catalog already holds
     the committing transaction's schema changes (block-chain heads,
     counts) while that transaction's pages are still rolled back by
     the before-image overlay — handing a reader the live catalog over
     overlaid pages is a mixed view whose block pointers can cycle. *)
  mutable cat_snapshot : string;
  mutable next_txn_id : int;
  active : (int, Txn.t) Hashtbl.t;
  mutable current : Txn.t option; (* transaction executing right now *)
  mutable standby : bool; (* hot standby: continuous redo, writes refused *)
  (* Fencing (split-brain protection): the cluster epoch is the
     promotion generation of the replication group — distinct from the
     WAL epoch, which counts checkpoint truncations of one node's log.
     Promotion mints epoch+1; a node that *observes* a higher epoch on
     any wire exchange knows another node was promoted past it and
     fences itself: writes refused with SE-FENCED until re-seeded. *)
  mutable cluster_epoch : int;
  mutable fenced : bool;
  (* Degraded read-only mode (resource exhaustion): distinct from
     fencing (split-brain) and standby (replication role).  Entered
     when a storage call site hits ENOSPC/EDQUOT/EMFILE or the
     watchdog's free-space probe fails; writes are refused with
     SE-DEGRADED while reads keep serving.  Left when the watchdog has
     seen the resource healthy for a few consecutive probes. *)
  mutable degraded : bool;
  mutable degraded_reason : string;
}

(* Group commit is on by default; SEDNA_GROUP_COMMIT=0 (or a runtime
   [set_group_commit false]) restores the per-transaction fsync under
   the engine lock — the pre-coalescing baseline the benches compare
   against.  Both paths give identical durability: commit is only
   acknowledged after an fsync covering its records. *)
let group_commit_enabled =
  ref
    (match Sys.getenv_opt "SEDNA_GROUP_COMMIT" with
     | Some ("0" | "false" | "off") -> false
     | _ -> true)

let set_group_commit b = group_commit_enabled := b
let group_commit_on () = !group_commit_enabled

let store db : Store.t = Store.create db.bm db.cat

(* refresh the committed-catalog snapshot; callers must only do this
   when the live catalog holds no uncommitted changes *)
let snapshot_catalog db =
  db.cat_snapshot <-
    Catalog.serialize db.cat ~page_count:(File_store.page_count db.fs)
      ~free_pages:[]

let catalog db = db.cat
let buffer db = db.bm
let lock_manager db = db.locks
let versions db = db.versions
let directory db = db.dir
let wal db = db.wal
let set_standby db b = db.standby <- b
let is_standby db = db.standby

(* ---- cluster epoch / fencing ---------------------------------------- *)

(* The epoch survives restarts in a tiny sidecar (durable write: a
   fenced node must not come back up believing it is current). *)
let cluster_path dir = Filename.concat dir "cluster.epoch"

let read_cluster_file dir =
  match open_in_bin (cluster_path dir) with
  | ic ->
    let v = try int_of_string (String.trim (input_line ic)) with _ -> 0 in
    close_in ic;
    v
  | exception Sys_error _ -> 0

let cluster_epoch db = db.cluster_epoch
let is_fenced db = db.fenced

let persist_cluster_epoch db e =
  db.cluster_epoch <- e;
  Counters.set Counters.cluster_epoch e;
  Sysutil.write_file_durable (cluster_path db.dir) (Printf.sprintf "%d\n" e)

(* Adopt an epoch without fencing — promotion minting its own, or a
   standby tracking its primary's. *)
let set_cluster_epoch db e =
  if e > db.cluster_epoch then persist_cluster_epoch db e

let unfence db = db.fenced <- false

(* A wire exchange carried epoch [e].  Higher than ours and we are not
   a standby (standbys track their primary's epoch; they are already
   read-only) means another node was promoted past us: demote. *)
let observe_epoch db e =
  if e > db.cluster_epoch then begin
    persist_cluster_epoch db e;
    if not db.standby && not db.fenced then begin
      db.fenced <- true;
      Counters.bump Counters.fence_demotions;
      Logs.warn (fun m ->
          m "fenced: observed cluster epoch %d above ours — demoting to read-only" e);
      Trace.emit (Trace.Repl_state { role = "primary"; state = "fenced" })
    end
  end

(* ---- degraded mode (resource exhaustion) ----------------------------- *)

let is_degraded db = db.degraded
let degraded_reason db = db.degraded_reason

let enter_degraded db reason =
  if not db.degraded then begin
    db.degraded <- true;
    db.degraded_reason <- reason;
    Counters.bump Counters.degraded_entered;
    Counters.set Counters.degraded_state 1;
    Logs.warn (fun m ->
        m "degraded: %s — shedding writes, reads keep serving" reason);
    Trace.emit (Trace.Degraded_mode { entered = true; reason })
  end

let exit_degraded db =
  if db.degraded then begin
    let reason = db.degraded_reason in
    db.degraded <- false;
    db.degraded_reason <- "";
    Counters.bump Counters.degraded_recovered;
    Counters.set Counters.degraded_state 0;
    Logs.info (fun m -> m "degraded mode cleared (was: %s) — writes resume" reason);
    Trace.emit (Trace.Degraded_mode { entered = false; reason })
  end

(* Classify an exception from a storage write/sync call site: resource
   exhaustion flips the node into degraded mode and resurfaces as
   SE-DEGRADED (a clean, retryable refusal); anything else passes
   through untouched. *)
let reraise_classified db ~what e =
  if Sysutil.is_resource_exhaustion e then begin
    Counters.bump Counters.resource_errors;
    enter_degraded db (Printf.sprintf "%s: %s" what (Printexc.to_string e));
    Error.raise_error Error.Degraded "%s hit resource exhaustion (%s): node \
                                      is degraded, writes refused"
      what (Printexc.to_string e)
  end
  else raise e

(* ---- write / read hooks ------------------------------------------------ *)

(* Every page write is attributed to the current transaction: first
   write captures the before-image and pins the page (uncommitted
   pages must not reach the data file). *)
let install_hooks db =
  Buffer_mgr.set_write_hook db.bm (fun pid ->
      match db.current with
      | Some txn when not txn.Txn.read_only ->
        if not (Txn.touched txn pid) then begin
          let img = Buffer_mgr.page_image db.bm pid in
          Txn.record_write txn ~pid ~image:img;
          Buffer_mgr.pin_pid db.bm pid
        end
      | Some txn when txn.Txn.read_only ->
        Error.raise_error Error.Txn_read_only
          "write attempted by read-only transaction %d" txn.Txn.id
      | _ -> () (* internal maintenance outside any transaction *))

(* Snapshot view for a read-only transaction: pages dirtied by an
   active updater are served from that updater's before-image; pages
   with newer committed versions come from the version store. *)
let overlay_for db (reader : Txn.t) pid : Bytes.t option =
  let uncommitted_before () =
    Hashtbl.fold
      (fun _ (txn : Txn.t) acc ->
        match acc with
        | Some _ -> acc
        | None ->
          if (not txn.Txn.read_only) && Txn.is_active txn then
            Txn.before_image txn pid
          else None)
      db.active None
  in
  match Versions.read_for_snapshot db.versions ~snapshot_ts:reader.Txn.snapshot_ts pid with
  | Some img -> Some img
  | None -> uncommitted_before ()

(* ---- lifecycle ----------------------------------------------------------- *)

let data_path dir = Filename.concat dir "data.sdb"
let wal_path dir = Filename.concat dir "wal.sdb"
let catalog_path dir = Filename.concat dir "catalog.sdb"

let write_catalog_file db =
  let blob =
    Catalog.serialize db.cat ~page_count:(File_store.page_count db.fs)
      ~free_pages:(File_store.free_list db.fs)
  in
  (* tmp + fsync + rename + dir fsync: a crash leaves the old catalog
     or the new one, never a torn blob behind an already-renamed name *)
  Sysutil.write_file_durable (catalog_path db.dir) blob

let read_catalog_file dir =
  let ic = open_in_bin (catalog_path dir) in
  let len = in_channel_length ic in
  let blob = really_input_string ic len in
  close_in ic;
  Catalog.deserialize blob

let checkpoint db =
  (* A checkpoint fixates a transaction-consistent state: all committed
     pages go to the data file, the catalog is persisted, and the log
     is truncated (paper §6.4: "a checkpoint may be created to fixate
     transaction-consistent state... we call such a state a persistent
     snapshot"). *)
  if Hashtbl.length db.active > 0 then
    Error.raise_error Error.Txn_not_active
      "checkpoint with active transactions is not supported";
  try
    let flushed = Buffer_mgr.flush_all db.bm in
    write_catalog_file db;
    Wal.reset db.wal;
    (* WAL positions restarted at 0: the group committer's notion of
       "durably synced up to" must restart with them, or a later commit
       at a small position would be treated as already synced *)
    Group_commit.note_reset db.gc;
    Wal.append db.wal Wal.Checkpoint;
    Wal.sync db.wal;
    Trace.emit (Trace.Checkpoint { pages_flushed = flushed })
  with
  | (Fault.Injected_fault _ | Fault.Injected_crash _) as e -> raise e
  | e -> reraise_classified db ~what:"checkpoint" e

let create ?(buffer_frames = 256) dir =
  if not (Sys.file_exists dir) then begin
    Unix.mkdir dir 0o755;
    (* persist the new directory entry itself *)
    Sysutil.fsync_dir (Filename.dirname dir)
  end;
  let fs = File_store.create (data_path dir) in
  let bm = Buffer_mgr.create ~frames:buffer_frames fs in
  let wal = Wal.create (wal_path dir) in
  let db =
    {
      dir;
      fs;
      bm;
      wal;
      gc = Group_commit.create wal;
      versions = Versions.create ();
      locks = Lock_mgr.create ();
      cat = Catalog.create ();
      cat_snapshot = "";
      next_txn_id = 1;
      active = Hashtbl.create 8;
      current = None;
      standby = false;
      cluster_epoch = read_cluster_file dir;
      fenced = false;
      degraded = false;
      degraded_reason = "";
    }
  in
  Counters.set Counters.cluster_epoch db.cluster_epoch;
  install_hooks db;
  checkpoint db;
  snapshot_catalog db;
  db

(* Two-step recovery (paper §6.4): step 1 restores the persistent
   snapshot (data file + checkpointed catalog); step 2 replays the
   page images of committed transactions from the WAL, in log order,
   and adopts the last committed catalog. *)
let recover db =
  let records = Wal.read_all (wal_path db.dir) in
  (* find committed transaction ids.  An Abort *after* a Commit undoes
     it: that sequence appears when the commit's fsync failed and the
     engine rolled the transaction back — it was never acknowledged, so
     replaying it would resurrect aborted state. *)
  let committed = Hashtbl.create 16 in
  List.iter
    (function
      | Wal.Commit (txn, _) -> Hashtbl.replace committed txn true
      | Wal.Abort txn -> Hashtbl.remove committed txn
      | _ -> ())
    records;
  let replayed = ref 0 in
  let skipped = ref 0 in
  let last_catalog = ref None in
  List.iter
    (function
      | Wal.Image (txn, pid, img) when Hashtbl.mem committed txn ->
        (* the data file may be shorter than the replayed page set *)
        while File_store.page_count db.fs <= pid do
          ignore (File_store.allocate db.fs)
        done;
        (* redo installs the after-image without reading the on-disk
           page: a page torn by the crash would fail its checksum, and
           its content is being replaced anyway.  Absolute images also
           make redo idempotent — a re-crash during recovery simply
           replays them again. *)
        Buffer_mgr.overwrite_page db.bm pid img;
        incr replayed
      | Wal.Image (_, _, _) -> incr skipped
      | Wal.Commit (txn, Some blob) when Hashtbl.mem committed txn ->
        last_catalog := Some blob
      | _ -> ())
    records;
  (match !last_catalog with
   | Some blob ->
     let p = Catalog.deserialize blob in
     db.cat <- p.Catalog.p_catalog;
     File_store.set_page_count db.fs p.Catalog.p_page_count;
     File_store.set_free_list db.fs p.Catalog.p_free_pages
   | None -> ());
  Counters.bump ~n:!replayed Counters.recovery_redo;
  Counters.bump ~n:!skipped Counters.recovery_skip;
  if !replayed > 0 || !skipped > 0 then
    Trace.emit (Trace.Recovery_done { redo = !replayed; skipped = !skipped });
  !replayed

let open_existing ?(buffer_frames = 256) dir =
  let fs = File_store.open_existing (data_path dir) in
  let bm = Buffer_mgr.create ~frames:buffer_frames fs in
  let wal = Wal.open_existing (wal_path dir) in
  let p = read_catalog_file dir in
  File_store.set_page_count fs p.Catalog.p_page_count;
  File_store.set_free_list fs p.Catalog.p_free_pages;
  let db =
    {
      dir;
      fs;
      bm;
      wal;
      gc = Group_commit.create wal;
      versions = Versions.create ();
      locks = Lock_mgr.create ();
      cat = p.Catalog.p_catalog;
      cat_snapshot = "";
      next_txn_id = 1;
      active = Hashtbl.create 8;
      current = None;
      standby = false;
      cluster_epoch = read_cluster_file dir;
      fenced = false;
      degraded = false;
      degraded_reason = "";
    }
  in
  Counters.set Counters.cluster_epoch db.cluster_epoch;
  install_hooks db;
  let replayed = recover db in
  if replayed > 0 then Logs.info (fun m -> m "recovery replayed %d page images" replayed);
  (* make the recovered state the new persistent snapshot *)
  checkpoint db;
  snapshot_catalog db;
  db

let close db =
  checkpoint db;
  Wal.close db.wal;
  File_store.close db.fs

(* ---- transactions --------------------------------------------------------- *)

let begin_txn ?(read_only = false) db : Txn.t =
  if db.fenced && not read_only then begin
    Counters.bump Counters.fence_rejected_writes;
    Error.raise_error Error.Fenced
      "node is fenced at cluster epoch %d: another node was promoted; writes \
       refused"
      db.cluster_epoch
  end;
  if db.degraded && not read_only then begin
    Counters.bump Counters.degraded_rejected_writes;
    Error.raise_error Error.Degraded
      "node is degraded (%s): writes refused until resources recover"
      db.degraded_reason
  end;
  if db.standby && not read_only then
    Error.raise_error Error.Standby_read_only
      "database is a hot standby: only BEGIN READ ONLY is accepted";
  let id = db.next_txn_id in
  db.next_txn_id <- id + 1;
  let snapshot_ts, reader_catalog =
    if read_only then
      let ts = Versions.acquire_snapshot db.versions in
      (* the reader's catalog is a private copy of the *last committed*
         catalog ([cat_snapshot]), which matches the reader's page view:
         the overlay serves active updaters' pages from their
         before-images, so the live catalog — already carrying those
         updaters' schema pointers — must stay invisible *)
      (ts, Some (Catalog.deserialize db.cat_snapshot).Catalog.p_catalog)
    else (0, None)
  in
  let txn =
    Txn.make ~id ~read_only ~snapshot_ts ~reader_catalog
      ~cat_backup:
        (if read_only then ""
         else
           Catalog.serialize db.cat ~page_count:(File_store.page_count db.fs)
             ~free_pages:(File_store.free_list db.fs))
      ~fs_page_count:(File_store.page_count db.fs)
      ~fs_free:(File_store.free_list db.fs)
  in
  (* append before registering: if the Begin append fails, no dead
     transaction lingers in the active table (it would block every
     later checkpoint).  Read-only transactions write nothing at
     commit either — logging their Begin would leave permanently
     unresolved transactions in a shipped log stream. *)
  if not read_only then begin
    try Wal.append db.wal (Wal.Begin id)
    with e when Sysutil.is_resource_exhaustion e ->
      reraise_classified db ~what:"WAL begin append" e
  end;
  Hashtbl.add db.active id txn;
  txn

(* Route execution through a transaction: installs the write hook
   target (updaters) or the snapshot overlay (readers). *)
let run db (txn : Txn.t) f =
  if not (Txn.is_active txn) then
    Error.raise_error Error.Txn_not_active "transaction %d is not active"
      txn.Txn.id;
  let prev = db.current in
  db.current <- Some txn;
  if txn.Txn.read_only then
    Buffer_mgr.set_read_overlay db.bm (overlay_for db txn);
  Fun.protect
    ~finally:(fun () ->
      db.current <- prev;
      if txn.Txn.read_only then Buffer_mgr.clear_read_overlay db.bm)
    f

(* The store a transaction should execute against: readers get their
   private catalog. *)
let txn_store db (txn : Txn.t) : Store.t =
  match txn.Txn.reader_catalog with
  | Some cat -> Store.create db.bm cat
  | None -> store db

let lock db (txn : Txn.t) ~doc ~mode : Lock_mgr.outcome =
  Lock_mgr.acquire db.locks ~txn:txn.Txn.id ~name:doc ~mode

(* Lock with bounded retry-and-backoff: a blocked request is retried a
   few times (the holder may release between attempts — e.g. another
   cooperative scheduler slot commits) before surfacing Lock_timeout.
   Deadlocks are never retried: the cycle can only be broken by an
   abort.

   This wait MUST stay short: it sleeps while the caller holds the
   engine lock, and a likely holder of the wanted document lock is a
   commit parked in the group fsync — which needs the engine lock back
   to complete and release.  Waiting long here waits on ourselves.
   Fail fast instead; the session layer restarts auto-commit
   statements with its pause *outside* the engine lock. *)
let lock_exn ?(retries = 3) ?(backoff_s = 0.0005) db txn ~doc ~mode =
  Span.with_span "lock.wait" (fun sp ->
      (match sp with
       | Some sp ->
         Span.annotate sp "doc" (Metrics.Str doc);
         Span.annotate sp "mode"
           (Metrics.Str
              (match mode with Lock_mgr.Shared -> "shared" | Lock_mgr.Exclusive -> "exclusive"))
       | None -> ());
      (* deterministic backoff here: lock convoys are process-local, so
         jitter buys nothing and would cost test reproducibility.
         [Retry.pause] checks the armed statement deadline around every
         sleep. *)
      let r =
        Retry.start
          (Retry.policy ~max_attempts:(retries + 1) ~base_s:backoff_s
             ~cap_s:(backoff_s *. 256.) ~jitter:false "lock")
      in
      let rec go () =
        Deadline.check_now ();
        match lock db txn ~doc ~mode with
        | Lock_mgr.Granted -> ()
        | Lock_mgr.Deadlock_detected ->
          Error.raise_error Error.Deadlock
            "deadlock detected for transaction %d on document %S" txn.Txn.id doc
        | Lock_mgr.Blocked ->
          if Retry.pause r then begin
            Counters.bump Counters.lock_retry;
            go ()
          end
          else
            Error.raise_error Error.Lock_timeout
              "transaction %d blocked on document %S (after %d retries)"
              txn.Txn.id doc retries
      in
      go ())

let commit ?(park = fun wait -> wait ()) db (txn : Txn.t) =
  if not (Txn.is_active txn) then
    Error.raise_error Error.Txn_not_active "commit of inactive transaction";
  if txn.Txn.read_only then begin
    Versions.release_snapshot db.versions txn.Txn.snapshot_ts;
    Txn.mark_committed txn;
    Hashtbl.remove db.active txn.Txn.id;
    Lock_mgr.release_all db.locks ~txn:txn.Txn.id
  end
  else begin
    (* a fence observed *after* this transaction began must still stop
       its commit: nothing may be acked past the fence point *)
    if db.fenced then begin
      Counters.bump Counters.fence_rejected_writes;
      Error.raise_error Error.Fenced
        "node fenced at cluster epoch %d while transaction %d was open: \
         commit refused"
        db.cluster_epoch txn.Txn.id
    end;
    (* same for degraded: a disk that filled while this transaction was
       open must not receive (or falsely ack) its commit group *)
    if db.degraded then begin
      Counters.bump Counters.degraded_rejected_writes;
      Error.raise_error Error.Degraded
        "node degraded (%s) while transaction %d was open: commit refused"
        db.degraded_reason txn.Txn.id
    end;
    let pages = Txn.dirty_pages txn in
    (* WAL protocol: after-images + commit record appended as one
       contiguous group under the writer cursor, then an fsync covering
       the group's end position before the commit is acknowledged.

       Under group commit the fsync wait happens *outside* the engine
       lock ([park] releases and re-takes it): while this transaction
       parks, other sessions run statements and append their own commit
       groups, and one leader fsync acknowledges them all.  The parked
       transaction still holds its document locks and keeps its dirty
       pages pinned, so to every other session it looks exactly like an
       idle open transaction. *)
    let cat_blob =
      (* ENOSPC (real or injected) anywhere in the append/group-fsync —
         including the failure a parked waiter receives when the group
         leader's covering sync died — flips the node degraded and
         surfaces SE-DEGRADED.  The session layer then aborts the
         transaction, so the client gets a clean refusal, never a false
         ack and never a dead process. *)
      try
      Span.with_span "commit.fsync" (fun sp ->
        let cat_blob =
          if Catalog.is_dirty db.cat then begin
            let blob =
              Catalog.serialize db.cat
                ~page_count:(File_store.page_count db.fs)
                ~free_pages:(File_store.free_list db.fs)
            in
            (* clear while still holding the engine lock, atomically
               with the serialization: dirt added by another session
               while this commit parks belongs to *that* session's
               commit record, not to a late clear here *)
            Catalog.clear_dirty db.cat;
            Some blob
          end
          else None
        in
        let records =
          List.rev_map
            (fun op -> Wal.Logical (txn.Txn.id, op))
            txn.Txn.logical_ops
          @ List.map
              (fun (pid, _before) ->
                Wal.Image (txn.Txn.id, pid, Buffer_mgr.page_image db.bm pid))
              pages
          @ [ Wal.Commit (txn.Txn.id, cat_blob) ]
        in
        let commit_pos = Wal.append_group db.wal records in
        (match sp with
         | Some sp ->
           Span.annotate sp "txn" (Metrics.Int txn.Txn.id);
           Span.annotate sp "pages" (Metrics.Int (List.length pages));
           (* remember the commit point so the replication sender can
              parent the standby's apply span under this fsync span.
              [commit_pos], not the current log end: a concurrent
              committer may already have appended past us. *)
           Wal.mark_trace db.wal ~pos:commit_pos ~trace:sp.Span.sp_trace
             ~span:sp.Span.sp_id
         | None -> ());
        (if group_commit_on () then
           (* the commit.fsync span stays open across the park, so its
              duration is the shared group sync this transaction actually
              waited on, not a no-op *)
           Span.with_span "commit.park" (fun psp ->
               (match psp with
                | Some p -> Span.annotate p "pos" (Metrics.Int commit_pos)
                | None -> ());
               park (fun () -> Group_commit.sync_to db.gc ~pos:commit_pos))
         else Wal.sync db.wal);
        cat_blob)
      with e when Sysutil.is_resource_exhaustion e ->
        reraise_classified db ~what:"commit append/fsync" e
    in
    (* versions: displaced images become snapshot versions if needed *)
    let commit_ts = Versions.last_commit_ts db.versions + 1 in
    Versions.install_commit db.versions ~commit_ts pages;
    (* the commit is durable: publish its catalog to new readers *)
    (match cat_blob with
     | Some blob -> db.cat_snapshot <- blob
     | None -> ());
    (* unpin so committed pages become evictable *)
    List.iter (fun (pid, _) -> Buffer_mgr.unpin_pid db.bm pid) pages;
    Txn.mark_committed txn;
    Hashtbl.remove db.active txn.Txn.id;
    Lock_mgr.release_all db.locks ~txn:txn.Txn.id
  end

let abort db (txn : Txn.t) =
  if not (Txn.is_active txn) then
    Error.raise_error Error.Txn_not_active "abort of inactive transaction";
  if not txn.Txn.read_only then begin
    (* restore page before-images *)
    List.iter
      (fun (pid, before) ->
        Buffer_mgr.set_page_image db.bm pid before;
        Buffer_mgr.unpin_pid db.bm pid)
      (Txn.dirty_pages txn);
    (* restore the catalog and the free list; pages allocated by this
       transaction go back to the free pool *)
    let p = Catalog.deserialize txn.Txn.cat_backup in
    db.cat <- p.Catalog.p_catalog;
    let allocated = ref [] in
    for pid = txn.Txn.fs_page_count to File_store.page_count db.fs - 1 do
      allocated := pid :: !allocated
    done;
    File_store.set_free_list db.fs (txn.Txn.fs_free @ !allocated);
    (* A full disk must not poison the abort path: the in-memory
       rollback above is complete, and a transaction whose Commit
       record never made a covering fsync was never acknowledged, so a
       missing Abort record cannot resurrect anything that was acked.
       Flip degraded and move on. *)
    try Wal.append db.wal (Wal.Abort txn.Txn.id)
    with e when Sysutil.is_resource_exhaustion e ->
      Counters.bump Counters.resource_errors;
      enter_degraded db
        (Printf.sprintf "abort append: %s" (Printexc.to_string e))
  end
  else Versions.release_snapshot db.versions txn.Txn.snapshot_ts;
  Txn.mark_aborted txn;
  Hashtbl.remove db.active txn.Txn.id;
  Lock_mgr.release_all db.locks ~txn:txn.Txn.id

(* Convenience bracket: BEGIN; f; COMMIT (abort on exception). *)
let with_txn ?read_only db f =
  let txn = begin_txn ?read_only db in
  match run db txn (fun () -> f txn (txn_store db txn)) with
  | v ->
    commit db txn;
    v
  | exception (Fault.Injected_crash _ as e) ->
    (* simulated process death: the database is gone, do not write an
       abort record or touch the buffer on the way out *)
    raise e
  | exception e ->
    (if Txn.is_active txn then
       try abort db txn with
       | Fault.Injected_crash _ as c -> raise c
       | _ -> ());
    raise e

(* ---- standby apply -------------------------------------------------------- *)

(* Apply one shipped committed transaction on a hot standby: install
   the page after-images (extending the data file as needed, exactly
   like recovery redo) and adopt the primary's catalog when the commit
   carried one.  Before-images of the displaced pages are pushed into
   the version store under a fresh commit timestamp, so concurrent
   BEGIN READ ONLY sessions keep reading their consistent snapshot
   while the apply overwrites pages underneath them.  Absolute images
   make this idempotent: re-applying a transaction after a lost ack
   just installs the same bytes again.

   The shipped WAL bytes themselves are appended to the standby's own
   log by the receiver *before* this runs, so ordinary recovery can
   finish the job if the standby dies mid-apply. *)
let apply_txn db ~txn_id ~images ~catalog_blob =
  let pages =
    List.map
      (fun (pid, after) ->
        while File_store.page_count db.fs <= pid do
          ignore (File_store.allocate db.fs)
        done;
        let before = Buffer_mgr.page_image db.bm pid in
        Buffer_mgr.overwrite_page db.bm pid after;
        (pid, before))
      images
  in
  (match catalog_blob with
   | Some blob ->
     let p = Catalog.deserialize blob in
     db.cat <- p.Catalog.p_catalog;
     db.cat_snapshot <- blob;
     File_store.set_page_count db.fs p.Catalog.p_page_count;
     File_store.set_free_list db.fs p.Catalog.p_free_pages
   | None -> ());
  let commit_ts = Versions.last_commit_ts db.versions + 1 in
  Versions.install_commit db.versions ~commit_ts pages;
  Counters.bump Counters.repl_txns_applied;
  Counters.bump ~n:(List.length pages) Counters.repl_pages_applied;
  Trace.emit (Trace.Repl_apply { txn = txn_id; pages = List.length pages })

(* Crash simulation for recovery tests and the fault-injection harness:
   drop all volatile state without flushing; the caller then re-opens
   the directory.  Robust against being called while the process is
   mid-write (an [Injected_crash] just unwound the stack) and against
   double teardown. *)
let crash db =
  Hashtbl.reset db.active;
  db.current <- None;
  (try Buffer_mgr.drop_all db.bm with _ -> ());
  (try Wal.close db.wal with Unix.Unix_error _ -> ());
  try File_store.close db.fs with Unix.Unix_error _ -> ()
