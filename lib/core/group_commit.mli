(** Group commit: coalesce concurrent commit fsyncs into one covering
    {!Wal.sync}.

    A committer appends its after-images and commit record under the
    WAL writer cursor ({!Wal.append_group}), releases the engine lock,
    and calls {!sync_to} with its end position: it returns once a
    single fsync covering that position has completed — run by this
    thread as the group leader, or by an earlier leader whose cursor
    already covered it.  Acknowledgement order respects sync order:
    no committer leaves {!sync_to} before a covering fsync completes,
    and committers parked behind a failed fsync share its failure (they
    abort and are never acknowledged) while later committers retry a
    fresh sync.

    Observability: each covering fsync bumps [wal.group_syncs] and
    feeds the number of committers it acknowledged into the
    [commit.group_size] histogram.  Fault site [wal.group_sync] fires
    in the leader just before the fsync. *)

type t

val create : Wal.t -> t

val sync_to : t -> pos:int -> unit
(** Block until the log is durably synced at least to [pos] (the cursor
    returned by {!Wal.append_group}).  Raises the leader's failure if
    the fsync covering [pos] failed; the caller must abort, not ack.
    Call without holding the engine lock. *)

val note_reset : t -> unit
(** The WAL was truncated (checkpoint) and positions restarted at 0;
    forget durable progress.  Only legal with no commit in flight. *)
