(** Resource watchdog: periodic write-probes of the database directory
    (there is no statvfs binding, so writing is the probe) that flip
    the database into degraded read-only mode on ENOSPC/EDQUOT/EMFILE
    and clear it with hysteresis — [recover_after] consecutive healthy
    probes — once the resource returns.  The probe passes through the
    [store.enospc] fault site so disk-full is injectable. *)

type t

val probe_dir : ?bytes:int -> string -> unit
(** One synchronous probe write (create + fill + fsync + unlink).
    Raises the underlying [Unix.Unix_error] on failure — classify with
    {!Sedna_util.Sysutil.is_resource_exhaustion}.  Hits the
    [store.enospc] fault site first. *)

val start :
  ?interval_s:float ->
  ?recover_after:int ->
  ?bytes:int ->
  dir:string ->
  get_db:(unit -> Database.t option) ->
  unit ->
  t
(** Start the poller thread.  [get_db] is consulted at each tick (the
    governor can swap the live database under a server). *)

val stop : t -> unit
