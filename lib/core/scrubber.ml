(* Online storage scrubber: walks every data page at a bounded rate,
   verifies the CRC sidecar, and repairs confirmed-corrupt pages while
   the database keeps serving.

   The scan must not pollute the buffer pool's hot set, so it never
   reads through the buffer manager: each pass opens its *own*
   read-only descriptor on the data file and compares raw page bytes
   against the sidecar CRC.  That scan is deliberately lock-free —
   a page mid-write under the engine lock can look torn to it — so a
   mismatch is only a *suspicion*.  The pass then re-checks the page
   under the engine lock ([File_store.verify_page], which sees a
   consistent page+sidecar pair because all data-file writes happen
   under that lock); only a confirmed mismatch counts as corruption.
   This two-phase check is what makes scrub-vs-group-commit
   interleaving free of false positives.

   Repair sources, in priority order (all under the engine lock):

     1. a *dirty* resident frame means the next flush will rewrite the
        on-disk page anyway — defer, the pool copy is newer than any
        after-image;
     2. a *clean* resident frame is the committed content — write it
        back through;
     3. the latest committed WAL after-image for the page (the recovery
        redo source, installed via [Buffer_mgr.repair_page] so the
        corrupt on-disk bytes are never faulted in);
     4. a standby's copy, via the caller-provided [fetch] hook (the
        replication layer wires [Wire.Page_request] underneath it;
        epoch checks live there so a fenced node never serves or
        accepts repairs).

   The scrubber sits in [sedna_core] and cannot see the governor, so
   mutual exclusion is injected: [lock] must run its closure under the
   engine lock (embedders pass [Governor.with_engine]; unit tests pass
   [fun f -> f ()]). *)

open Sedna_util

(* fault-injection sites (crash-safety harness) *)
let verify_site = Fault.site "scrub.verify"
let repair_site = Fault.site "scrub.repair"

type stats = {
  mutable checked : int;
  mutable corrupt : int;
  mutable repaired_pool : int;
  mutable repaired_wal : int;
  mutable repaired_standby : int;
  mutable deferred : int;
  mutable failed : int;
}

let fresh_stats () =
  { checked = 0; corrupt = 0; repaired_pool = 0; repaired_wal = 0;
    repaired_standby = 0; deferred = 0; failed = 0 }

type t = {
  db : Database.t;
  lock : (unit -> unit) -> unit;
  fetch : (int -> Bytes.t option) option;
  pages_per_sec : int; (* 0 = unthrottled *)
  mutable stop_flag : bool;
  mutable thread : Thread.t option;
}

let create ?(pages_per_sec = 0) ?fetch ?(lock = fun f -> f ()) db =
  { db; lock; fetch; pages_per_sec; stop_flag = false; thread = None }

(* Latest committed after-image for [pid] still present in the WAL.
   Same commit/abort discipline as recovery: an Abort *after* a Commit
   undoes it (unacked commit whose fsync failed), so its images must
   not be used as a repair source. *)
let wal_image db pid =
  let records = Wal.read_all (Filename.concat (Database.directory db) "wal.sdb") in
  let committed = Hashtbl.create 16 in
  List.iter
    (function
      | Wal.Commit (txn, _) -> Hashtbl.replace committed txn true
      | Wal.Abort txn -> Hashtbl.remove committed txn
      | _ -> ())
    records;
  List.fold_left
    (fun acc r ->
      match r with
      | Wal.Image (txn, p, img) when p = pid && Hashtbl.mem committed txn ->
        Some img
      | _ -> acc)
    None records

(* Lock-free suspicion scan of one page through the scrubber's own
   descriptor.  [true] = worth confirming under the lock.  A short read
   races a concurrent file extension: the page is brand new, skip it. *)
let suspicious fs fd buf pid =
  match Unix.lseek fd (pid * Page.page_size) Unix.SEEK_SET with
  | exception Unix.Unix_error _ -> false
  | _ ->
    let rec fill off =
      if off >= Page.page_size then true
      else
        match Unix.read fd buf off (Page.page_size - off) with
        | 0 -> false
        | n -> fill (off + n)
        | exception Unix.Unix_error _ -> false
    in
    if not (fill 0) then false
    else begin
      match File_store.stored_cksum fs pid with
      | None -> false
      | Some crc -> Bytes_util.crc32 ~len:Page.page_size buf <> crc
    end

(* Confirm and repair one suspicious page under the engine lock. *)
let confirm_and_repair t st pid =
  t.lock (fun () ->
      let bm = Database.buffer t.db in
      let fs = Buffer_mgr.store bm in
      match File_store.verify_page fs pid with
      | `Ok | `Unknown -> () (* the scan raced a legitimate write *)
      | `Corrupt ->
        st.corrupt <- st.corrupt + 1;
        Counters.bump Counters.scrub_corrupt;
        Fault.check repair_site;
        let repaired source =
          Counters.bump
            (match source with
             | "pool" -> Counters.scrub_repaired_pool
             | "wal" -> Counters.scrub_repaired_wal
             | _ -> Counters.scrub_repaired_standby);
          Trace.emit (Trace.Scrub_repair { pid; source });
          Logs.info (fun m -> m "scrub: repaired page %d from %s" pid source)
        in
        (match Buffer_mgr.residency bm pid with
         | `Dirty ->
           (* the pool holds newer content than any after-image; its
              flush will rewrite the on-disk page *)
           st.deferred <- st.deferred + 1;
           Counters.bump Counters.scrub_deferred
         | `Clean ->
           Buffer_mgr.repair_page bm pid (Buffer_mgr.page_image bm pid);
           st.repaired_pool <- st.repaired_pool + 1;
           repaired "pool"
         | `Absent ->
           let fail why =
             st.failed <- st.failed + 1;
             Counters.bump Counters.scrub_repair_failed;
             Logs.err (fun m -> m "scrub: page %d corrupt, %s" pid why)
           in
           (match wal_image t.db pid with
            | Some img ->
              Buffer_mgr.repair_page bm pid img;
              st.repaired_wal <- st.repaired_wal + 1;
              repaired "wal"
            | None -> (
              match t.fetch with
              | Some fetch -> (
                match fetch pid with
                | Some img when Bytes.length img = Page.page_size ->
                  Buffer_mgr.repair_page bm pid img;
                  st.repaired_standby <- st.repaired_standby + 1;
                  repaired "standby"
                | _ -> fail "standby fetch failed")
              | None -> fail "no repair source"))))

(* One full pass over the data file.  Raises [Injected_fault] /
   [Injected_crash] through to the caller (the crash harness classifies
   them); the background loop catches and logs them instead. *)
let run_pass t =
  let st = fresh_stats () in
  let fs = Buffer_mgr.store (Database.buffer t.db) in
  let fd = Unix.openfile (File_store.path fs) [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let buf = Bytes.create Page.page_size in
      (* rate control: work in tenth-of-a-second chunks *)
      let chunk =
        if t.pages_per_sec <= 0 then max_int else max 1 (t.pages_per_sec / 10)
      in
      let in_chunk = ref 0 in
      let pid = ref 0 in
      (* the file can grow while we scan; the pass covers the pages that
         existed when it reached them *)
      while !pid < File_store.page_count fs && not t.stop_flag do
        Fault.check verify_site;
        if suspicious fs fd buf !pid then confirm_and_repair t st !pid;
        st.checked <- st.checked + 1;
        Counters.bump Counters.scrub_pages_checked;
        Counters.set Counters.scrub_progress !pid;
        incr in_chunk;
        if !in_chunk >= chunk then begin
          in_chunk := 0;
          Thread.delay 0.1
        end;
        incr pid
      done;
      Counters.bump Counters.scrub_passes;
      Counters.set Counters.scrub_last_pass_pages st.checked;
      Counters.set Counters.scrub_progress 0;
      st)

(* ---- background thread ---------------------------------------------- *)

let rec bg_loop t =
  if not t.stop_flag then begin
    (match run_pass t with
     | (_ : stats) -> ()
     | exception Fault.Injected_crash _ -> t.stop_flag <- true
     | exception e when not t.stop_flag ->
       (* a shutdown can close the store under a pass; otherwise log and
          keep scrubbing — the scrubber must outlive transient errors *)
       Logs.warn (fun m -> m "scrub pass failed: %s" (Printexc.to_string e))
     | exception _ -> ());
    if not t.stop_flag then begin
      Thread.delay 0.2;
      bg_loop t
    end
  end

let start t =
  if t.thread = None then begin
    t.stop_flag <- false;
    t.thread <- Some (Thread.create bg_loop t)
  end

let stop t =
  t.stop_flag <- true;
  match t.thread with
  | None -> ()
  | Some th ->
    t.thread <- None;
    Thread.join th
