(* The buffer manager and the Sedna memory-management mechanism
   (paper §4.2, Figure 4).

   The 64-bit SAS is divided into layers; an address within a layer is
   mapped to the process "virtual address space" on equality basis, so
   dereferencing a database pointer costs one array load plus one
   layer-equality check — no swizzling table on the fast path.

   We emulate the VAS with [vas]: an array with one slot per in-layer
   page.  Slot [i] holds the frame currently mapped at in-layer page
   [i] together with its layer number.  A dereference whose layer
   matches is the fast path ("ordinary pointer").  A mismatch or an
   empty slot is a memory fault: the buffer manager consults the frame
   table and, if needed, reads the page from disk, evicting a victim
   chosen by the clock algorithm.

   All page access goes through the typed accessors below so that no
   raw frame ever outlives an eviction.  [with_page] pins the frame for
   the duration of a closure when a caller needs bulk access. *)

open Sedna_util

type frame = {
  mutable pid : int; (* global page id; -1 when frame is empty *)
  bytes : Bytes.t;
  mutable dirty : bool;
  mutable pins : int;
  mutable referenced : bool; (* clock bit *)
}

type t = {
  store : File_store.t;
  mutable frames : frame array;
  table : (int, int) Hashtbl.t; (* pid -> frame index *)
  vas : int array; (* in-layer page slot -> frame index, -1 empty *)
  vas_layer : int array; (* layer currently mapped at that slot *)
  mutable clock_hand : int;
  mutable write_hook : int -> unit; (* called before a page is modified *)
  mutable read_overlay : int -> Bytes.t option;
      (* snapshot view for read-only transactions: when it returns an
         image for a page id, reads are served from that image *)
  mutable use_vas : bool; (* E7 ablation: disable the equality mapping *)
}

let make_frame () =
  { pid = -1; bytes = Bytes.make Page.page_size '\000'; dirty = false; pins = 0; referenced = false }

(* fault-injection sites (crash-safety harness) *)
let flush_site = Fault.site "buffer.flush"
let evict_site = Fault.site "buffer.evict"

(* shared sentinel: physical equality detects "no overlay installed"
   so the read fast path skips the closure call *)
let no_overlay : int -> Bytes.t option = fun _ -> None

let create ?(frames = 256) store =
  {
    store;
    frames = Array.init frames (fun _ -> make_frame ());
    table = Hashtbl.create (2 * frames);
    vas = Array.make Page.pages_per_layer (-1);
    vas_layer = Array.make Page.pages_per_layer (-1);
    clock_hand = 0;
    write_hook = (fun _ -> ());
    read_overlay = no_overlay;
    use_vas = true;
  }

let set_write_hook t f = t.write_hook <- f
let set_read_overlay t f = t.read_overlay <- f
let clear_read_overlay t = t.read_overlay <- no_overlay
let set_use_vas t b = t.use_vas <- b
let frame_count t = Array.length t.frames

(* frames currently holding a page — the buffer-pool occupancy gauge *)
let occupancy t =
  Array.fold_left (fun n f -> if f.pid >= 0 then n + 1 else n) 0 t.frames

let store t = t.store

(* Unmap a frame from the VAS and the table. *)
let unmap t fi =
  let f = t.frames.(fi) in
  if f.pid >= 0 then begin
    Hashtbl.remove t.table f.pid;
    let slot = f.pid mod Page.pages_per_layer in
    if t.vas.(slot) = fi then begin
      t.vas.(slot) <- -1;
      t.vas_layer.(slot) <- -1
    end;
    f.pid <- -1;
    f.dirty <- false
  end

let flush_frame t fi =
  let f = t.frames.(fi) in
  if f.pid >= 0 && f.dirty then begin
    Fault.check flush_site;
    File_store.write_page t.store f.pid f.bytes;
    f.dirty <- false
  end

(* Clock replacement among unpinned frames; grows the pool when every
   frame is pinned (an active transaction may pin more dirty pages than
   the pool holds — correctness over strict memory bounds, counted so
   benches can report it). *)
let victim t =
  let n = Array.length t.frames in
  let rec scan steps =
    if steps > 2 * n then begin
      Counters.bump "buffer.pool_grow";
      let old = t.frames in
      t.frames <- Array.append old (Array.init n (fun _ -> make_frame ()));
      n (* first fresh frame *)
    end
    else begin
      let fi = t.clock_hand in
      t.clock_hand <- (t.clock_hand + 1) mod n;
      let f = t.frames.(fi) in
      if f.pins > 0 then scan (steps + 1)
      else if f.referenced then begin
        f.referenced <- false;
        scan (steps + 1)
      end
      else fi
    end
  in
  scan 0

(* Install page [pid] into a frame and map it.  [load] controls whether
   the page content is read from disk (false for freshly allocated
   pages). *)
let install t pid ~load =
  let fi = victim t in
  let v = t.frames.(fi) in
  if v.pid >= 0 then begin
    (* off the deref fast path: only faults that displace a resident
       page get here *)
    Counters.bump "buffer.evict";
    Trace.emit (Trace.Buffer_evict { pid = v.pid; dirty = v.dirty });
    Fault.check evict_site
  end;
  flush_frame t fi;
  unmap t fi;
  let f = t.frames.(fi) in
  f.pid <- pid;
  f.dirty <- false;
  f.referenced <- true;
  if load then File_store.read_page t.store pid f.bytes
  else Bytes.fill f.bytes 0 Page.page_size '\000';
  Hashtbl.replace t.table pid fi;
  let slot = pid mod Page.pages_per_layer in
  (* evicting the previous VAS occupant of this slot from the mapping
     (not from the pool) mirrors the paper's page replacement within a
     layer slot *)
  t.vas.(slot) <- fi;
  t.vas_layer.(slot) <- pid / Page.pages_per_layer;
  fi

(* The dereference: returns the frame index holding the page of [pid].
   Fast path = VAS slot equality check. *)
let frame_of_pid t pid =
  (* the universal choke point: every page touch passes through here,
     so an armed statement deadline is noticed even inside long scans
     that never re-enter the expression evaluator *)
  Deadline.check ();
  incr Counters.deref_cell;
  let slot = pid mod Page.pages_per_layer in
  let layer = pid / Page.pages_per_layer in
  if t.use_vas && t.vas.(slot) >= 0 && t.vas_layer.(slot) = layer then begin
    incr Counters.vas_fast_hit_cell;
    let fi = t.vas.(slot) in
    t.frames.(fi).referenced <- true;
    fi
  end
  else
    match Hashtbl.find_opt t.table pid with
    | Some fi ->
      incr Counters.buffer_hit_cell;
      let f = t.frames.(fi) in
      f.referenced <- true;
      (* remap the VAS slot to this layer's page *)
      if t.use_vas then begin
        t.vas.(slot) <- fi;
        t.vas_layer.(slot) <- layer
      end;
      fi
    | None ->
      incr Counters.buffer_fault_cell;
      install t pid ~load:true

let _frame_of_xptr t (p : Xptr.t) = frame_of_pid t (Xptr.page_id p)

(* ---- typed accessors ------------------------------------------------ *)

(* Read path: consult the snapshot overlay first, then the buffer. *)
let read_bytes t (p : Xptr.t) : Bytes.t =
  let pid = Xptr.page_id p in
  if t.read_overlay == no_overlay then t.frames.(frame_of_pid t pid).bytes
  else
    match t.read_overlay pid with
    | Some img -> img
    | None ->
      let fi = frame_of_pid t pid in
      t.frames.(fi).bytes

let read_u8 t p = Bytes_util.get_u8 (read_bytes t p) (Xptr.page_offset p)
let read_u16 t p = Bytes_util.get_u16 (read_bytes t p) (Xptr.page_offset p)
let read_i32 t p = Bytes_util.get_i32 (read_bytes t p) (Xptr.page_offset p)
let read_i64 t p = Bytes_util.get_i64 (read_bytes t p) (Xptr.page_offset p)

let read_xptr t p : Xptr.t = Xptr.of_int64 (read_i64 t p)

let read_string t p len =
  Bytes_util.get_string (read_bytes t p) (Xptr.page_offset p) len

let touch_for_write t p =
  let pid = Xptr.page_id p in
  t.write_hook pid;
  let fi = frame_of_pid t pid in
  t.frames.(fi).dirty <- true;
  fi

let write_u8 t p v =
  let fi = touch_for_write t p in
  Bytes_util.set_u8 t.frames.(fi).bytes (Xptr.page_offset p) v

let write_u16 t p v =
  let fi = touch_for_write t p in
  Bytes_util.set_u16 t.frames.(fi).bytes (Xptr.page_offset p) v

let write_i32 t p v =
  let fi = touch_for_write t p in
  Bytes_util.set_i32 t.frames.(fi).bytes (Xptr.page_offset p) v

let write_i64 t p v =
  let fi = touch_for_write t p in
  Bytes_util.set_i64 t.frames.(fi).bytes (Xptr.page_offset p) v

let write_xptr t p (v : Xptr.t) = write_i64 t p (Xptr.to_int64 v)

let write_string t p s =
  let fi = touch_for_write t p in
  Bytes_util.set_string t.frames.(fi).bytes (Xptr.page_offset p) s

(* Bulk access under a pin.  [rw] marks the page dirty. *)
let with_page ?(rw = false) t (p : Xptr.t) f =
  let pid = Xptr.page_id p in
  match (rw, t.read_overlay pid) with
  | false, Some img -> f img
  | _ ->
    if rw then t.write_hook pid;
    let fi = frame_of_pid t pid in
    let f_ = t.frames.(fi) in
    f_.pins <- f_.pins + 1;
    if rw then f_.dirty <- true;
    Fun.protect
      ~finally:(fun () -> f_.pins <- f_.pins - 1)
      (fun () -> f f_.bytes)

(* Pin management for transactions: a page dirtied by an active
   transaction must not reach disk before commit (redo-only WAL). *)
let pin_pid t pid =
  let fi = frame_of_pid t pid in
  t.frames.(fi).pins <- t.frames.(fi).pins + 1

let unpin_pid t pid =
  match Hashtbl.find_opt t.table pid with
  | Some fi when t.frames.(fi).pins > 0 ->
    t.frames.(fi).pins <- t.frames.(fi).pins - 1
  | _ -> ()

(* Snapshot of a page's current content (for before-images / WAL). *)
let page_image t pid =
  let fi = frame_of_pid t pid in
  Bytes.copy t.frames.(fi).bytes

(* Overwrite a page wholesale (version install, recovery, abort). *)
let set_page_image t pid (img : Bytes.t) =
  let fi = frame_of_pid t pid in
  Bytes.blit img 0 t.frames.(fi).bytes 0 Page.page_size;
  t.frames.(fi).dirty <- true

(* Overwrite a page WITHOUT faulting its current content in from disk
   first.  This is the recovery redo path: the on-disk page may be torn
   or checksum-stale from the crash, and its content is about to be
   replaced by the WAL after-image anyway — reading it would surface a
   spurious [Corrupt_page] (and waste a disk read). *)
let overwrite_page t pid (img : Bytes.t) =
  let fi =
    match Hashtbl.find_opt t.table pid with
    | Some fi -> fi
    | None -> install t pid ~load:false
  in
  Bytes.blit img 0 t.frames.(fi).bytes 0 Page.page_size;
  t.frames.(fi).dirty <- true

(* Pool residency of a page, without faulting it in: the scrubber picks
   its repair source from this. *)
let residency t pid =
  match Hashtbl.find_opt t.table pid with
  | None -> `Absent
  | Some fi -> if t.frames.(fi).dirty then `Dirty else `Clean

(* Scrubber repair: install a known-good image (WAL after-image or a
   standby's copy) without reading the corrupt on-disk page, write it
   straight through, and leave the frame clean — the disk now matches
   the frame, so a later flush would be redundant. *)
let repair_page t pid (img : Bytes.t) =
  let fi =
    match Hashtbl.find_opt t.table pid with
    | Some fi -> fi
    | None -> install t pid ~load:false
  in
  Bytes.blit img 0 t.frames.(fi).bytes 0 Page.page_size;
  File_store.write_page t.store pid t.frames.(fi).bytes;
  t.frames.(fi).dirty <- false

(* Allocate a fresh page: claims a page id from the file store and maps
   a zeroed frame for it without a disk read. *)
let allocate_page t =
  let pid = File_store.allocate t.store in
  ignore (install t pid ~load:false);
  Xptr.of_page_id pid

let free_page t (p : Xptr.t) =
  let pid = Xptr.page_id p in
  (match Hashtbl.find_opt t.table pid with
   | Some fi ->
     t.frames.(fi).dirty <- false;
     (* a transaction pin on a page being freed dies with the page *)
     t.frames.(fi).pins <- 0;
     unmap t fi
   | None -> ());
  File_store.free t.store pid

let flush_all t =
  let flushed = ref 0 in
  Array.iteri
    (fun fi f ->
      if f.pid >= 0 && f.dirty then incr flushed;
      flush_frame t fi)
    t.frames;
  File_store.sync t.store;
  !flushed

(* Drop every frame without writing (crash simulation in tests). *)
let drop_all t =
  Array.iteri
    (fun fi f ->
      f.pins <- 0;
      ignore fi;
      f.dirty <- false)
    t.frames;
  Array.iteri (fun fi _ -> unmap t fi) t.frames
