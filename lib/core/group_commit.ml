(* Group commit: coalesce concurrent commit fsyncs into one covering
   [Wal.sync] (leader/follower).

   A committer appends its frames under the WAL writer cursor (getting
   back its end position), then calls [sync_to] with the engine lock
   *released*: if the log is already durably synced past its position
   it returns immediately; otherwise it enrolls as a waiter and either
   parks on the condition variable or — when no sync is in flight —
   becomes the leader, reads the current log end, and runs one fsync
   that covers every committer that appended before the cursor was
   read.  Followers that appended while the leader was fsyncing form
   the next group, so under concurrency the fsync rate decouples from
   the commit rate.

   Acknowledgement order respects sync order by construction: a waiter
   leaves [sync_to] only once a covering fsync has completed
   ([synced_pos] is monotone), and a waiter parked behind a *failed*
   fsync is completed with that failure — it must abort, never ack —
   while committers that enroll afterwards are untouched and may retry
   a fresh sync (failure isolation). *)

open Sedna_util

(* Fires in the leader just before the covering fsync: a crash here
   must lose nothing that was acked and may lose everything that was
   merely parked; a fail here must refuse the whole parked group. *)
let group_sync_site = Fault.site "wal.group_sync"

type outcome = Pending | Done | Failed of exn

type waiter = {
  w_pos : int;
  mutable w_outcome : outcome;
}

type t = {
  wal : Wal.t;
  mu : Mutex.t;
  cond : Condition.t;
  (* log positions at or below this are durable (monotone except for
     [note_reset], which is only legal with no committers in flight) *)
  mutable synced_pos : int;
  mutable syncing : bool;
  mutable waiters : waiter list;
}

(* group size is a count, not a latency: explicit power-of-two buckets *)
let group_size_hist =
  Metrics.histogram
    ~buckets:[| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0 |]
    "commit.group_size"

let create wal =
  {
    wal;
    mu = Mutex.create ();
    cond = Condition.create ();
    synced_pos = 0;
    syncing = false;
    waiters = [];
  }

(* The WAL was truncated (checkpoint) or swapped; forget durable
   progress.  Only legal with no commit in flight — checkpoint already
   requires an empty active-transaction table. *)
let note_reset t =
  Mutex.lock t.mu;
  t.synced_pos <- 0;
  t.syncing <- false;
  Mutex.unlock t.mu

let run_leader t =
  (* called with t.mu held and t.syncing = true; returns with t.mu held *)
  let target = Wal.size t.wal in
  Mutex.unlock t.mu;
  let result =
    try
      Fault.check group_sync_site;
      Wal.sync t.wal;
      Ok target
    with e -> Error e
  in
  Mutex.lock t.mu;
  t.syncing <- false;
  (match result with
   | Ok target ->
     t.synced_pos <- max t.synced_pos target;
     let covered, remaining =
       List.partition (fun w -> w.w_pos <= target) t.waiters
     in
     List.iter (fun w -> w.w_outcome <- Done) covered;
     t.waiters <- remaining;
     Counters.bump Counters.wal_group_syncs;
     Metrics.observe group_size_hist (float_of_int (List.length covered))
   | Error e ->
     (* every committer parked behind this fsync shares its failure:
        the log end it covered is not durable, so none of them may be
        acknowledged.  Committers arriving later enroll into an empty
        list and retry a fresh sync. *)
     List.iter (fun w -> w.w_outcome <- Failed e) t.waiters;
     t.waiters <- []);
  Condition.broadcast t.cond

let sync_to t ~pos =
  Mutex.lock t.mu;
  if t.synced_pos >= pos then Mutex.unlock t.mu
  else begin
    let w = { w_pos = pos; w_outcome = Pending } in
    t.waiters <- w :: t.waiters;
    let rec wait () =
      match w.w_outcome with
      | Done -> Mutex.unlock t.mu
      | Failed e ->
        Mutex.unlock t.mu;
        raise e
      | Pending ->
        if t.syncing then begin
          Condition.wait t.cond t.mu;
          wait ()
        end
        else begin
          t.syncing <- true;
          run_leader t;
          wait ()
        end
    in
    wait ()
  end
