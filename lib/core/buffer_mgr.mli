(** The buffer manager and Sedna's memory-management mechanism
    (paper §4.2, Figure 4).

    The software VAS: one slot per in-layer page.  Dereferencing a
    database pointer whose layer matches the slot's current layer is
    the fast path — an array load plus an equality check, i.e. the cost
    of an ordinary pointer.  A mismatch or an empty slot is a "memory
    fault" serviced by the pool (clock replacement over the page file).

    All page access goes through typed accessors so no raw frame ever
    outlives an eviction; [with_page] pins a frame for bulk access. *)

type t

val create : ?frames:int -> File_store.t -> t
(** [frames] is the pool size (default 256 pages). *)

val store : t -> File_store.t
val frame_count : t -> int

val occupancy : t -> int
(** Frames currently holding a page (the buffer-pool occupancy
    gauge); at most {!frame_count}. *)

val set_write_hook : t -> (int -> unit) -> unit
(** Called with the page id before any modification: the transaction
    layer captures before-images here. *)

val set_read_overlay : t -> (int -> Bytes.t option) -> unit
(** Snapshot view for read-only transactions: when the overlay returns
    an image for a page id, reads are served from it. *)

val clear_read_overlay : t -> unit

val set_use_vas : t -> bool -> unit
(** Ablation switch (bench E7): [false] disables the equality mapping
    so every hit pays the hash-table lookup — the swizzling baseline. *)

(** {1 Typed page accessors}

    Each call performs one dereference (fast path or fault). *)

val read_u8 : t -> Xptr.t -> int
val read_u16 : t -> Xptr.t -> int
val read_i32 : t -> Xptr.t -> int
val read_i64 : t -> Xptr.t -> int64
val read_xptr : t -> Xptr.t -> Xptr.t
val read_string : t -> Xptr.t -> int -> string

val write_u8 : t -> Xptr.t -> int -> unit
val write_u16 : t -> Xptr.t -> int -> unit
val write_i32 : t -> Xptr.t -> int -> unit
val write_i64 : t -> Xptr.t -> int64 -> unit
val write_xptr : t -> Xptr.t -> Xptr.t -> unit
val write_string : t -> Xptr.t -> string -> unit

val with_page : ?rw:bool -> t -> Xptr.t -> (Bytes.t -> 'a) -> 'a
(** Bulk access to the page containing the pointer, pinned for the
    duration of the closure.  [rw:true] marks it dirty and fires the
    write hook. *)

(** {1 Page lifecycle} *)

val allocate_page : t -> Xptr.t
(** Claim a fresh page (zeroed, mapped, no disk read). *)

val free_page : t -> Xptr.t -> unit

val page_image : t -> int -> Bytes.t
(** Copy of the current content of a page (before/after images). *)

val set_page_image : t -> int -> Bytes.t -> unit
(** Overwrite a page wholesale (version install, abort, recovery). *)

val overwrite_page : t -> int -> Bytes.t -> unit
(** Recovery redo: install the image without faulting the on-disk page
    in first (it may be torn or checksum-stale from the crash). *)

val residency : t -> int -> [ `Absent | `Clean | `Dirty ]
(** Whether the page is resident in the pool, without faulting it in.
    The scrubber picks its repair source from this. *)

val repair_page : t -> int -> Bytes.t -> unit
(** Scrubber repair: install a known-good image without reading the
    corrupt on-disk page, write it through to the data file, and leave
    the frame clean.  Call under the engine lock. *)

(** {1 Pinning and flushing} *)

val pin_pid : t -> int -> unit
(** Transactions pin uncommitted-dirty pages: redo-only logging means
    they must never reach the data file before commit. *)

val unpin_pid : t -> int -> unit

val flush_all : t -> int
(** Write every dirty frame to the data file and sync (checkpoint);
    returns the number of frames written. *)

val drop_all : t -> unit
(** Drop all frames without writing — crash simulation in tests. *)
