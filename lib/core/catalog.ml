(* The database catalog: descriptive schemas, the document and
   collection registries, index definitions, and allocation state for
   the text store and the indirection table.

   The descriptive schema (paper §4.1) is a relaxed DataGuide: every
   path in a document has exactly one path in the schema, so the schema
   is a tree.  It is generated from data dynamically and maintained
   incrementally; every schema node points to the chain of data blocks
   storing its nodes.

   The catalog is an in-memory structure; its persistent form is a
   Marshal blob written with commit records (when the catalog changed)
   and at checkpoints, so recovery always has a catalog consistent with
   the replayed pages. *)

open Sedna_util

type kind = Document | Element | Attribute | Text | Comment | Pi

let kind_code = function
  | Document -> 0
  | Element -> 1
  | Attribute -> 2
  | Text -> 3
  | Comment -> 4
  | Pi -> 5

let kind_name = function
  | Document -> "document"
  | Element -> "element"
  | Attribute -> "attribute"
  | Text -> "text"
  | Comment -> "comment"
  | Pi -> "processing-instruction"

type snode = {
  id : int;
  kind : kind;
  name : Xname.t option;
  mutable parent_id : int; (* -1 for roots; by id to keep Marshal acyclic *)
  mutable children : snode list; (* order of first appearance *)
  mutable child_slot : int; (* this node's slot in parent descriptors *)
  mutable first_block : Xptr.t;
  mutable last_block : Xptr.t;
  mutable node_count : int;
  mutable block_count : int;
}

type index_kind = String_index | Number_index

type index_def = {
  idx_name : string;
  idx_doc : string;
  idx_path : string list; (* element-name path below the root element *)
  idx_key_path : string list; (* path from indexed node to the key value *)
  idx_kind : index_kind;
  mutable idx_root : Xptr.t; (* B-tree root *)
}

type doc = {
  doc_name : string;
  mutable in_collection : string option;
  schema_root_id : int;
  mutable doc_indir : Xptr.t; (* indirection cell of the document node *)
}

type t = {
  mutable next_snode_id : int;
  snodes : (int, snode) Hashtbl.t;
  documents : (string, doc) Hashtbl.t;
  collections : (string, string list) Hashtbl.t;
  indexes : (string, index_def) Hashtbl.t;
  (* text store allocation state: pages with known free bytes *)
  text_space : (int64, int) Hashtbl.t; (* xptr bits -> free bytes *)
  (* indirection table allocation state *)
  mutable indir_free_head : Xptr.t; (* first free cell, chained in-page *)
  mutable indir_pages : int64 list;
  mutable dirty : bool; (* changed since last persisted *)
  mutable epoch : int;
    (* bumped by every DDL-visible change (documents, collections,
       indexes, new schema paths); compiled plans are keyed by it and
       recompiled when it moves *)
}

let create () =
  {
    next_snode_id = 1;
    snodes = Hashtbl.create 64;
    documents = Hashtbl.create 16;
    collections = Hashtbl.create 8;
    indexes = Hashtbl.create 8;
    text_space = Hashtbl.create 64;
    indir_free_head = Xptr.null;
    indir_pages = [];
    dirty = false;
    epoch = 0;
  }

let mark_dirty t = t.dirty <- true
let is_dirty t = t.dirty
let clear_dirty t = t.dirty <- false

let epoch t = t.epoch

let bump_epoch t =
  t.epoch <- t.epoch + 1;
  mark_dirty t

(* ---- schema -------------------------------------------------------- *)

let snode_by_id t id =
  match Hashtbl.find_opt t.snodes id with
  | Some s -> s
  | None ->
    Error.raise_error Error.Storage_corruption "unknown schema node %d" id

let parent_snode t (s : snode) =
  if s.parent_id < 0 then None else Some (snode_by_id t s.parent_id)

let new_snode t ~parent ~kind ~name =
  let parent_id, child_slot =
    match parent with
    | None -> (-1, 0)
    | Some p -> (p.id, List.length p.children)
  in
  let s =
    {
      id = t.next_snode_id;
      kind;
      name;
      parent_id;
      children = [];
      child_slot;
      first_block = Xptr.null;
      last_block = Xptr.null;
      node_count = 0;
      block_count = 0;
    }
  in
  t.next_snode_id <- t.next_snode_id + 1;
  Hashtbl.add t.snodes s.id s;
  (match parent with
   | Some p -> p.children <- p.children @ [ s ]
   | None -> ());
  (* a new schema path changes which schema nodes a structural path
     resolves to, so plans compiled against the old schema are stale *)
  bump_epoch t;
  s

let name_matches name = function
  | None -> name = None
  | Some n -> (match name with Some m -> Xname.equal n m | None -> false)

(* The incremental maintenance step: find the child schema node for a
   (kind, name), creating it on first appearance. *)
let find_or_add_child t parent ~kind ~name =
  match
    List.find_opt
      (fun c -> c.kind = kind && name_matches name c.name)
      parent.children
  with
  | Some c -> (c, false)
  | None -> (new_snode t ~parent:(Some parent) ~kind ~name, true)

let find_child parent ~kind ~name =
  List.find_opt
    (fun c -> c.kind = kind && name_matches name c.name)
    parent.children

(* All schema descendants (excluding [s]); preorder. *)
let rec schema_descendants s =
  List.concat_map (fun c -> c :: schema_descendants c) s.children

let schema_size s = 1 + List.length (schema_descendants s)

(* Path of names from the schema root to [s] (element steps only). *)
let rec schema_path t s =
  match parent_snode t s with
  | None -> []
  | Some p ->
    schema_path t p
    @ [ (match s.name with Some n -> Xname.to_string n | None -> kind_name s.kind) ]

(* ---- documents ----------------------------------------------------- *)

let add_document t ~name ~schema_root_id =
  if Hashtbl.mem t.documents name then
    Error.raise_error Error.Document_exists "document %S already exists" name;
  let d =
    { doc_name = name; in_collection = None; schema_root_id; doc_indir = Xptr.null }
  in
  Hashtbl.add t.documents name d;
  bump_epoch t;
  d

let find_document t name = Hashtbl.find_opt t.documents name

let get_document t name =
  match find_document t name with
  | Some d -> d
  | None -> Error.raise_error Error.No_such_document "no document %S" name

let remove_document t name =
  let d = get_document t name in
  (match d.in_collection with
   | Some c ->
     let docs = Option.value (Hashtbl.find_opt t.collections c) ~default:[] in
     Hashtbl.replace t.collections c (List.filter (( <> ) name) docs)
   | None -> ());
  Hashtbl.remove t.documents name;
  bump_epoch t

let document_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.documents [] |> List.sort compare

(* ---- collections ---------------------------------------------------- *)

let add_collection t name =
  if Hashtbl.mem t.collections name then
    Error.raise_error Error.Collection_exists "collection %S already exists" name;
  Hashtbl.add t.collections name [];
  bump_epoch t

let collection_documents t name =
  match Hashtbl.find_opt t.collections name with
  | Some docs -> docs
  | None -> Error.raise_error Error.No_such_collection "no collection %S" name

let add_document_to_collection t ~collection ~doc =
  let docs = collection_documents t collection in
  Hashtbl.replace t.collections collection (docs @ [ doc ]);
  (get_document t doc).in_collection <- Some collection;
  bump_epoch t

let collection_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.collections [] |> List.sort compare

let remove_collection t name =
  List.iter (fun d -> remove_document t d) (collection_documents t name);
  Hashtbl.remove t.collections name;
  bump_epoch t

(* ---- indexes --------------------------------------------------------- *)

let add_index t def =
  if Hashtbl.mem t.indexes def.idx_name then
    Error.raise_error Error.Index_exists "index %S already exists" def.idx_name;
  Hashtbl.add t.indexes def.idx_name def;
  bump_epoch t

let find_index t name = Hashtbl.find_opt t.indexes name

let get_index t name =
  match find_index t name with
  | Some d -> d
  | None -> Error.raise_error Error.No_such_index "no index %S" name

let remove_index t name =
  ignore (get_index t name);
  Hashtbl.remove t.indexes name;
  bump_epoch t

let indexes_for_document t doc =
  Hashtbl.fold
    (fun _ d acc -> if d.idx_doc = doc then d :: acc else acc)
    t.indexes []

(* ---- schema path resolution ------------------------------------------ *)

(* Element-name matching for query-side path resolution: queries usually
   carry unprefixed names, so an empty uri matches any namespace. *)
let snode_matches_name (want : Xname.t) (s : snode) =
  s.kind = Element
  &&
  match s.name with
  | Some m ->
    String.equal (Xname.local want) (Xname.local m)
    && (Xname.uri want = "" || String.equal (Xname.uri want) (Xname.uri m))
  | None -> false

(* Resolve a structural path of element-name steps ([descendant] = true
   for a descendant step, false for a child step) against the schema
   tree.  Main-memory only — no data block is touched (paper §5.1.4).
   Result is sorted by schema-node id and duplicate-free. *)
let resolve_steps _t ~(root : snode) (steps : (bool * Xname.t) list) :
    snode list =
  List.fold_left
    (fun frontier (descendant, name) ->
      let candidates s = if descendant then schema_descendants s else s.children in
      List.concat_map
        (fun s -> List.filter (snode_matches_name name) (candidates s))
        frontier
      |> List.sort_uniq (fun a b -> compare a.id b.id))
    [ root ] steps

(* The schema nodes an index definition covers: its element path, child
   steps below the document node.  Used by the rewriter to decide
   whether an index answers exactly the nodes a query path reaches. *)
let index_target_snodes t (def : index_def) : snode list =
  match find_document t def.idx_doc with
  | None -> []
  | Some d ->
    let root = snode_by_id t d.schema_root_id in
    resolve_steps t ~root
      (List.map (fun n -> (false, Xname.of_string n)) def.idx_path)

(* ---- text / indirection allocation state ----------------------------- *)

let text_space_set t (p : Xptr.t) free =
  if free <= 0 then Hashtbl.remove t.text_space (Xptr.to_int64 p)
  else Hashtbl.replace t.text_space (Xptr.to_int64 p) free

let text_space_find t ~need =
  let found = ref None in
  (try
     Hashtbl.iter
       (fun p free ->
         if free >= need then begin
           found := Some (Xptr.of_int64 p);
           raise Exit
         end)
       t.text_space
   with Exit -> ());
  !found

(* ---- persistence ----------------------------------------------------- *)

type persistent = {
  p_catalog : t;
  p_page_count : int;
  p_free_pages : int list;
}

let serialize t ~page_count ~free_pages =
  Marshal.to_string
    { p_catalog = t; p_page_count = page_count; p_free_pages = free_pages }
    []

let deserialize (s : string) : persistent = Marshal.from_string s 0
