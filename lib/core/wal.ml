(* Write-ahead log (paper §6.4): redo-only page after-images plus
   logical records for auditing and incremental backup.  Records are
   framed as [len:u32][tag:u8][payload][cksum:u32]; a torn tail is
   detected by the checksum and ignored by recovery.

   The WAL protocol: a transaction's after-images and its commit record
   are appended and fsynced before the commit is acknowledged.  A
   checkpoint record marks a point at which all committed state has
   been flushed to the data file; recovery replays only past the last
   checkpoint. *)

open Sedna_util

type record =
  | Begin of int (* txn id *)
  | Image of int * int * Bytes.t (* txn id, page id, after-image *)
  | Commit of int * string option (* txn id, marshaled catalog if changed *)
  | Abort of int
  | Checkpoint
  | Logical of int * string (* txn id, human-readable operation *)

type t = {
  mutable fd : Unix.file_descr;
  path : string;
  mutable size : int;
  mutable epoch : int;
  (* trace marks: (position just past a traced commit's frames, trace
     id, parent span id), newest first, bounded — the replication
     sender attaches the marks covered by a batch so the standby's
     apply spans join the statement's trace.  In-memory only: marks
     are observability, not durability. *)
  mutable marks : (int * string * int) list;
  (* writer cursor: appends from concurrent committers serialize here
     so a transaction's multi-record group stays frame-contiguous *)
  mu : Mutex.t;
}

let max_marks = 256

(* fault-injection sites (crash-safety harness) *)
let append_site = Fault.site "wal.append"
let sync_site = Fault.site "wal.sync"
let reset_site = Fault.site "wal.reset"

(* The epoch (generation id) lives in a sidecar file next to the log.
   It is bumped whenever the log is created or reset (checkpoint
   truncation), so a standby streaming the log can tell "the bytes at
   position p changed identity" apart from "no new bytes yet" and
   re-seed from a fresh backup instead of applying frames from the
   wrong generation. *)
let epoch_path path = path ^ ".epoch"

let read_epoch path =
  let ep = epoch_path path in
  if not (Sys.file_exists ep) then 0
  else begin
    let ic = open_in_bin ep in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match int_of_string_opt (String.trim s) with Some n -> n | None -> 0
  end

let write_epoch path n = Sysutil.write_file_durable (epoch_path path) (string_of_int n)

let create path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (* the log file's directory entry itself must survive a crash *)
  Sysutil.fsync_dir (Filename.dirname path);
  let epoch = read_epoch path + 1 in
  write_epoch path epoch;
  { fd; path; size = 0; epoch; marks = []; mu = Mutex.create () }

let checksum (s : string) =
  (* FNV-1a over the payload, folded to 31 bits so the value survives
     an i32 round-trip without sign trouble *)
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF)
    s;
  !h land 0x7FFFFFFF

let tag_of = function
  | Begin _ -> 1
  | Image _ -> 2
  | Commit _ -> 3
  | Abort _ -> 4
  | Checkpoint -> 5
  | Logical _ -> 6

let encode_payload = function
  | Begin txn ->
    let b = Bytes.create 4 in
    Bytes_util.set_i32 b 0 txn;
    Bytes.to_string b
  | Image (txn, pid, img) ->
    let b = Bytes.create (8 + Bytes.length img) in
    Bytes_util.set_i32 b 0 txn;
    Bytes_util.set_i32 b 4 pid;
    Bytes.blit img 0 b 8 (Bytes.length img);
    Bytes.to_string b
  | Commit (txn, cat) ->
    let cs = Option.value cat ~default:"" in
    let b = Bytes.create (8 + String.length cs) in
    Bytes_util.set_i32 b 0 txn;
    Bytes_util.set_i32 b 4 (if cat = None then 0 else 1);
    Bytes.blit_string cs 0 b 8 (String.length cs);
    Bytes.to_string b
  | Abort txn ->
    let b = Bytes.create 4 in
    Bytes_util.set_i32 b 0 txn;
    Bytes.to_string b
  | Checkpoint -> ""
  | Logical (txn, s) ->
    let b = Bytes.create (4 + String.length s) in
    Bytes_util.set_i32 b 0 txn;
    Bytes.blit_string s 0 b 4 (String.length s);
    Bytes.to_string b

let decode_record tag payload =
  let b = Bytes.of_string payload in
  match tag with
  | 1 -> Some (Begin (Bytes_util.get_i32 b 0))
  | 2 ->
    let txn = Bytes_util.get_i32 b 0 and pid = Bytes_util.get_i32 b 4 in
    Some (Image (txn, pid, Bytes.sub b 8 (Bytes.length b - 8)))
  | 3 ->
    let txn = Bytes_util.get_i32 b 0 in
    let has_cat = Bytes_util.get_i32 b 4 <> 0 in
    let cat =
      if has_cat then Some (Bytes.sub_string b 8 (Bytes.length b - 8))
      else None
    in
    Some (Commit (txn, cat))
  | 4 -> Some (Abort (Bytes_util.get_i32 b 0))
  | 5 -> Some Checkpoint
  | 6 ->
    Some
      (Logical (Bytes_util.get_i32 b 0, Bytes.sub_string b 4 (Bytes.length b - 4)))
  | _ -> None

(* Hold the writer cursor for [f]; unlocks on exception too (a torn
   fault raises {!Fault.Injected_crash} mid-append). *)
let with_writer t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let append_unlocked t record =
  let payload = encode_payload record in
  let n = String.length payload in
  let frame = Bytes.create (4 + 1 + n + 4) in
  Bytes_util.set_i32 frame 0 n;
  Bytes_util.set_u8 frame 4 (tag_of record);
  Bytes.blit_string payload 0 frame 5 n;
  Bytes_util.set_i32 frame (5 + n) (checksum payload);
  let len = Bytes.length frame in
  (match Fault.hit ~len append_site with
   | Fault.Proceed -> ()
   | Fault.Short_write k ->
     (* torn append: persist only a prefix of the frame, then die; the
        checksum makes recovery drop the partial record *)
     let rec drain off =
       if off < k then drain (off + Unix.write t.fd frame off (k - off))
     in
     drain 0;
     Fault.crash append_site);
  let rec drain off =
    if off < len then drain (off + Unix.write t.fd frame off (len - off))
  in
  drain 0;
  t.size <- t.size + len;
  let tag =
    match record with
    | Begin _ -> "begin"
    | Image _ -> "image"
    | Commit _ -> "commit"
    | Abort _ -> "abort"
    | Checkpoint -> "checkpoint"
    | Logical _ -> "logical"
  in
  Trace.emit (Trace.Wal_append { tag; bytes = len })

let append t record = with_writer t (fun () -> append_unlocked t record)

(* Append a transaction's records as one contiguous run of frames and
   return the log position just past them — the position a covering
   {!sync} must reach before the commit may be acknowledged.  Holding
   the writer cursor across the whole group is what keeps interleaved
   multi-record appends from concurrent committers frame-contiguous. *)
let append_group t records =
  with_writer t (fun () ->
      List.iter (append_unlocked t) records;
      t.size)

(* The log tip as of a moment when no append is mid-frame: [size] is
   only advanced after a frame's bytes are fully written, so every byte
   at or below the returned position is in the file (though not
   necessarily fsynced).  A file copy taken *after* this read therefore
   contains every frame the position covers.  The seed path records
   this as the standby's resume position *before* copying: a commit
   racing the copy can only leave the copy ahead of the recorded
   position — harmless, since the standby replays its local log and
   re-pulls idempotently — never behind it, which would lose the
   commit on the standby forever. *)
let stable_tip t = with_writer t (fun () -> (t.epoch, t.size))

let sync t =
  Fault.check sync_site;
  Unix.fsync t.fd;
  Counters.bump Counters.wal_syncs

(* Walk the well-formed frames of [b] starting at [start]: decoded
   records each paired with the position just past their frame, plus
   the end of the valid region (everything past it is a torn tail). *)
let scan_bytes b ~start ~len =
  let rec go pos acc =
    if pos + 9 > len then (List.rev acc, pos)
    else
      let n = Bytes_util.get_i32 b pos in
      if n < 0 || pos + 9 + n > len then (List.rev acc, pos)
      else
        let tag = Bytes_util.get_u8 b (pos + 4) in
        let payload = Bytes.sub_string b (pos + 5) n in
        let ck = Bytes_util.get_i32 b (pos + 5 + n) in
        if ck <> checksum payload then (List.rev acc, pos) (* torn tail *)
        else
          match decode_record tag payload with
          | Some r -> go (pos + 9 + n) ((r, pos + 9 + n) :: acc)
          | None -> (List.rev acc, pos)
  in
  go start []

let load_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let buf = really_input_string ic len in
  close_in ic;
  (Bytes.unsafe_of_string buf, len)

(* Scan the well-formed prefix of the log file at [path]: the decoded
   records plus the byte length of that prefix (the last valid frame
   boundary). *)
let scan path =
  if not (Sys.file_exists path) then ([], 0)
  else begin
    let b, len = load_file path in
    let recs, valid = scan_bytes b ~start:0 ~len in
    (List.map fst recs, valid)
  end

(* Read all well-formed records from the log file at [path]. *)
let read_all path = fst (scan path)

(* Streaming cursor: decoded records from the frame boundary [pos]
   onward, each paired with the position just past its frame — the
   caller feeds a returned position back in to resume.  [pos] must be a
   frame boundary previously returned (or 0). *)
let read_from path pos =
  if not (Sys.file_exists path) then []
  else begin
    let b, len = load_file path in
    if pos >= len then [] else fst (scan_bytes b ~start:pos ~len)
  end

(* Raw complete frames from [pos] onward for log shipping: the verbatim
   bytes of whole checksum-valid frames (at most [max_bytes] unless a
   single frame alone exceeds it), the record count, and the position
   past the last shipped frame.  Shipping raw bytes keeps the standby's
   log byte-identical to the primary's, so positions agree on both
   sides and ordinary recovery can read the shipped log. *)
let stream_from path ~pos ~max_bytes =
  if not (Sys.file_exists path) then ("", 0, pos)
  else begin
    let b, len = load_file path in
    if pos >= len then ("", 0, pos)
    else begin
      let recs, _valid = scan_bytes b ~start:pos ~len in
      let rec take count upto = function
        | [] -> (count, upto)
        | (_, frame_end) :: rest ->
          if count > 0 && frame_end - pos > max_bytes then (count, upto)
          else take (count + 1) frame_end rest
      in
      let count, upto = take 0 pos recs in
      (Bytes.sub_string b pos (upto - pos), count, upto)
    end
  end

(* Decode a batch of raw shipped frames (as produced by
   {!stream_from}): each record with the offset just past its frame
   within the batch.  Trailing garbage is a protocol error upstream;
   here it is simply not decoded. *)
let records_of_frames s =
  let b = Bytes.unsafe_of_string s in
  fst (scan_bytes b ~start:0 ~len:(String.length s))

(* Append raw pre-framed bytes verbatim (standby side of log shipping).
   The caller syncs; checksums were validated when the frames were cut
   from the primary's log. *)
let append_raw t s =
  with_writer t (fun () ->
      let len = String.length s in
      let b = Bytes.unsafe_of_string s in
      let rec drain off =
        if off < len then drain (off + Unix.write t.fd b off (len - off))
      in
      drain 0;
      t.size <- t.size + len)

(* Open an existing log, dropping any torn tail first: without the
   truncation, records appended after recovery would sit behind the
   garbage and be unreachable on the next recovery (lost commits). *)
let open_existing path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  let _, valid = scan path in
  if valid < size then begin
    Unix.ftruncate fd valid;
    Unix.fsync fd;
    Sysutil.fsync_dir (Filename.dirname path);
    Counters.bump ~n:(size - valid) Counters.wal_truncated_bytes;
    Trace.emit (Trace.Wal_truncated { bytes = size - valid })
  end;
  ignore (Unix.lseek fd valid Unix.SEEK_SET);
  let epoch =
    match read_epoch path with
    | 0 ->
      (* legacy log without a sidecar: adopt generation 1 *)
      write_epoch path 1;
      1
    | e -> e
  in
  { fd; path; size = valid; epoch; marks = []; mu = Mutex.create () }

(* Truncate the log after a checkpoint has made it redundant.  The file
   and its directory are fsynced so a crash immediately after the
   checkpoint cannot resurrect the stale tail. *)
let reset t =
  with_writer t @@ fun () ->
  Fault.check reset_site;
  Unix.close t.fd;
  let fd = Unix.openfile t.path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Unix.fsync fd;
  Sysutil.fsync_dir (Filename.dirname t.path);
  t.fd <- fd;
  t.size <- 0;
  t.marks <- [];
  (* truncation first, epoch bump second: a crash in between leaves an
     empty log under the old epoch, which a standby still detects
     because its resume position exceeds the log size (Hole) *)
  t.epoch <- t.epoch + 1;
  write_epoch t.path t.epoch

let size t = t.size
let epoch t = t.epoch
let path t = t.path
let close t = Unix.close t.fd

(* ---- trace marks (observability, in-memory) ------------------------- *)

(* [pos] is the position just past the commit's frames — under group
   commit other committers may have appended behind it, so the caller
   passes the cursor returned by {!append_group} rather than reading
   the (possibly advanced) log end. *)
let mark_trace t ~pos ~trace ~span =
  let rec take n = function
    | x :: tl when n > 0 -> x :: take (n - 1) tl
    | _ -> []
  in
  with_writer t (fun () -> t.marks <- take max_marks ((pos, trace, span) :: t.marks))

(* marks covered by the half-open WAL range (lo, hi] — i.e. the commits
   a batch of frames [lo, hi) completes *)
let marks_between t ~lo ~hi =
  List.filter (fun (pos, _, _) -> pos > lo && pos <= hi) (List.rev t.marks)
