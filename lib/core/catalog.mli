(** The database catalog: descriptive schemas, the document and
    collection registries, index definitions, and allocation state for
    the text store and the indirection table.

    The descriptive schema (paper §4.1) is a relaxed DataGuide: every
    path in a document has exactly one path in the schema, so it is a
    tree.  It is generated from data and maintained incrementally —
    unlike a prescriptive DTD/XML-Schema it is always accurate and
    always available.  Every schema node points to the block chain that
    stores its nodes, making the schema "a naturally built index" for
    path evaluation.

    The catalog's persistent form is a Marshal blob carried by commit
    records (when it changed) and checkpoints, keeping recovery
    consistent with the replayed pages. *)

type kind = Document | Element | Attribute | Text | Comment | Pi

val kind_code : kind -> int
val kind_name : kind -> string

type snode = {
  id : int;
  kind : kind;
  name : Sedna_util.Xname.t option;
  mutable parent_id : int;  (** -1 for document roots *)
  mutable children : snode list;  (** order of first appearance *)
  mutable child_slot : int;
      (** this node's slot index in its parent's element descriptors *)
  mutable first_block : Xptr.t;
  mutable last_block : Xptr.t;
  mutable node_count : int;
  mutable block_count : int;
}

type index_kind = String_index | Number_index

type index_def = {
  idx_name : string;
  idx_doc : string;
  idx_path : string list;  (** element path below the root element *)
  idx_key_path : string list;  (** path from indexed node to the key *)
  idx_kind : index_kind;
  mutable idx_root : Xptr.t;  (** B-tree root *)
}

type doc = {
  doc_name : string;
  mutable in_collection : string option;
  schema_root_id : int;
  mutable doc_indir : Xptr.t;  (** the document node's handle *)
}

type t = {
  mutable next_snode_id : int;
  snodes : (int, snode) Hashtbl.t;
  documents : (string, doc) Hashtbl.t;
  collections : (string, string list) Hashtbl.t;
  indexes : (string, index_def) Hashtbl.t;
  text_space : (int64, int) Hashtbl.t;
  mutable indir_free_head : Xptr.t;
  mutable indir_pages : int64 list;
  mutable dirty : bool;
  mutable epoch : int;
}

val create : unit -> t

val mark_dirty : t -> unit
val is_dirty : t -> bool
val clear_dirty : t -> unit

val epoch : t -> int
(** The catalog epoch: bumped by every DDL-visible change (document
    load/drop, collection changes, index create/drop, and first
    appearance of a new schema path).  Compiled plans are keyed by it
    and recompiled when it moves. *)

val bump_epoch : t -> unit

(** {1 Schema} *)

val snode_by_id : t -> int -> snode
val parent_snode : t -> snode -> snode option

val new_snode :
  t -> parent:snode option -> kind:kind -> name:Sedna_util.Xname.t option ->
  snode

val find_or_add_child :
  t -> snode -> kind:kind -> name:Sedna_util.Xname.t option -> snode * bool
(** The incremental maintenance step: the child schema node for a
    (kind, name), created on first appearance ([true] = new). *)

val find_child :
  snode -> kind:kind -> name:Sedna_util.Xname.t option -> snode option

val schema_descendants : snode -> snode list
(** Preorder, excluding the node itself. *)

val schema_size : snode -> int
val schema_path : t -> snode -> string list

(** {1 Documents and collections} *)

val add_document : t -> name:string -> schema_root_id:int -> doc
val find_document : t -> string -> doc option
val get_document : t -> string -> doc
(** Raises [No_such_document]. *)

val remove_document : t -> string -> unit
val document_names : t -> string list

val add_collection : t -> string -> unit
val collection_documents : t -> string -> string list
val add_document_to_collection : t -> collection:string -> doc:string -> unit
val collection_names : t -> string list
val remove_collection : t -> string -> unit

(** {1 Indexes} *)

val add_index : t -> index_def -> unit
val find_index : t -> string -> index_def option
val get_index : t -> string -> index_def
val remove_index : t -> string -> unit
val indexes_for_document : t -> string -> index_def list

(** {1 Schema path resolution} *)

val snode_matches_name : Sedna_util.Xname.t -> snode -> bool
(** Element-name match with query-side namespace leniency: an empty uri
    on the wanted name matches any namespace. *)

val resolve_steps :
  t -> root:snode -> (bool * Sedna_util.Xname.t) list -> snode list
(** Resolve a structural path against the schema tree ([true] = a
    descendant step, [false] = a child step).  Main-memory only; result
    sorted by schema-node id, duplicate-free. *)

val index_target_snodes : t -> index_def -> snode list
(** The schema nodes an index's element path covers (empty if the
    indexed document does not exist). *)

(** {1 Allocation state} *)

val text_space_set : t -> Xptr.t -> int -> unit
val text_space_find : t -> need:int -> Xptr.t option

(** {1 Persistence} *)

type persistent = {
  p_catalog : t;
  p_page_count : int;
  p_free_pages : int list;
}

val serialize : t -> page_count:int -> free_pages:int list -> string
val deserialize : string -> persistent
