(** The database data file: a flat array of pages addressed by global
    page id.  Page 0 is the master page.  The free list lives in memory
    and is persisted with the catalog at checkpoints. *)

type t

val create : string -> t
(** Create/truncate; materializes the master page. *)

val open_existing : string -> t

val page_count : t -> int
(** Pages ever allocated, master included; freed pages still count. *)

val path : t -> string
(** Filesystem path of the data file (the scrubber opens its own
    read-only descriptor on it to scan without disturbing the store). *)

val stored_cksum : t -> int -> int option
(** Recorded sidecar CRC-32 for a page; [None] if out of range or not
    yet known (pre-checksum file before first read). *)

val verify_page : t -> int -> [ `Ok | `Corrupt | `Unknown ]
(** Re-read the page from disk and compare against the sidecar CRC.
    Never adopts and never raises [Corrupt_page] — this is the
    scrubber's authoritative confirm step.  Call under the engine
    lock. *)

val read_page : t -> int -> Bytes.t -> unit
(** Fill the buffer with page content.  Raises [Page_out_of_bounds]
    beyond {!page_count}. *)

val write_page : t -> int -> Bytes.t -> unit

val allocate : t -> int
(** Recycle a freed page or extend the file by one zeroed page. *)

val free : t -> int -> unit

val free_list : t -> int list
val set_free_list : t -> int list -> unit
val set_page_count : t -> int -> unit
(** Recovery: adopt the checkpointed count when larger. *)

val sync : t -> unit
val close : t -> unit
