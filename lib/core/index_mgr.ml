(* Value indexes: CREATE INDEX maps a path of element names (below the
   document's root element) to a B-tree keyed by the string or numeric
   value reachable by a second path.  Entries point to node handles,
   which survive descriptor relocation (paper §4.1.2). *)

open Sedna_util

let encode_key (def : Catalog.index_def) (raw : string) : string option =
  match def.Catalog.idx_kind with
  | Catalog.String_index -> Some raw
  | Catalog.Number_index -> (
    match float_of_string_opt (String.trim raw) with
    | Some f -> Some (Btree.encode_number f)
    | None -> None (* non-numeric values are not indexed *))

(* nodes reached from [d] by a path of child element names; a step of
   the form "@name" selects attributes and must be last *)
let rec walk_path (st : Store.t) (d : Node.desc) (path : string list) :
    Node.desc list =
  match path with
  | [] -> [ d ]
  | name :: rest when String.length name > 0 && name.[0] = '@' ->
    if rest <> [] then []
    else
      let want = Xname.of_string (String.sub name 1 (String.length name - 1)) in
      Traverse.attributes st d
      |> Seq.filter (fun a ->
             match Node.name st a with
             | Some n -> String.equal (Xname.local n) (Xname.local want)
             | None -> false)
      |> List.of_seq
  | name :: rest ->
    let test = Traverse.element_test (Some (Xname.of_string name)) in
    Traverse.children st d
    |> Seq.filter (Traverse.node_matches st test)
    |> Seq.fold_left (fun acc c -> acc @ walk_path st c rest) []

(* (key, handle) pairs contributed by the subtree rooted at the
   document node [doc_desc].  Every key node below a target contributes
   an entry (general-comparison semantics are existential); duplicate
   (key, handle) pairs are collapsed so maintenance stays symmetric. *)
let entries_for (st : Store.t) (def : Catalog.index_def) (doc_desc : Node.desc)
    : (string * Xptr.t) list =
  let targets = walk_path st doc_desc def.Catalog.idx_path in
  List.concat_map
    (fun target ->
      walk_path st target def.Catalog.idx_key_path
      |> List.filter_map (fun k ->
             let raw = Node_ser.string_value st k in
             Option.map
               (fun key -> (key, Node.handle st target))
               (encode_key def raw)))
    targets
  |> List.sort_uniq compare

(* Build (or rebuild) the index for its document. *)
let build (st : Store.t) (def : Catalog.index_def) =
  let doc = Catalog.get_document st.Store.cat def.Catalog.idx_doc in
  let doc_desc = Indirection.get st.Store.bm doc.Catalog.doc_indir in
  let bt = Btree.create st.Store.bm in
  List.iter
    (fun (key, h) -> Btree.insert bt ~key ~value:h)
    (entries_for st def doc_desc);
  def.Catalog.idx_root <- Btree.root bt;
  Catalog.mark_dirty st.Store.cat

let create (st : Store.t) ~name ~doc ~path ~key_path ~kind =
  let def =
    {
      Catalog.idx_name = name;
      idx_doc = doc;
      idx_path = path;
      idx_key_path = key_path;
      idx_kind = kind;
      idx_root = Xptr.null;
    }
  in
  Catalog.add_index st.Store.cat def;
  build st def;
  def

let drop (st : Store.t) ~name = Catalog.remove_index st.Store.cat name

(* point lookup: handles of indexed nodes with the given key *)
let lookup_string (st : Store.t) (def : Catalog.index_def) (key : string) :
    Xptr.t list =
  match encode_key def key with
  | None -> []
  | Some k -> Btree.lookup (Btree.of_root st.Store.bm def.Catalog.idx_root) k

let lookup_number (st : Store.t) (def : Catalog.index_def) (f : float) :
    Xptr.t list =
  Btree.lookup
    (Btree.of_root st.Store.bm def.Catalog.idx_root)
    (Btree.encode_number f)

let range_number (st : Store.t) (def : Catalog.index_def) ?lo ?hi () :
    Xptr.t list =
  let enc = Option.map Btree.encode_number in
  Btree.range
    (Btree.of_root st.Store.bm def.Catalog.idx_root)
    ?lo:(enc lo) ?hi:(enc hi) ()
  |> List.map snd

let range_string (st : Store.t) (def : Catalog.index_def) ?lo ?hi () :
    Xptr.t list =
  (* string keys are stored raw, so the B-tree's lexicographic key order
     is the comparison order *)
  Btree.range (Btree.of_root st.Store.bm def.Catalog.idx_root) ?lo ?hi ()
  |> List.map snd

(* Incremental maintenance: called by the update executor around
   structural updates on a document that has indexes. *)
let subtree_entries (st : Store.t) (def : Catalog.index_def)
    (subtree : Node.desc) : (string * Xptr.t) list =
  (* index entries affected by a change at [subtree]: entries whose
     target is inside it, plus entries on its ancestors (whose key
     value may be derived from the changed subtree) *)
  let doc = Catalog.get_document st.Store.cat def.Catalog.idx_doc in
  let doc_desc = Indirection.get st.Store.bm doc.Catalog.doc_indir in
  let anchor = Node.label st subtree in
  entries_for st def doc_desc
  |> List.filter (fun (_, h) ->
         let d = Indirection.get st.Store.bm h in
         let l = Node.label st d in
         Sedna_nid.Nid.is_descendant_or_self ~ancestor:anchor l
         || Sedna_nid.Nid.is_ancestor ~ancestor:l anchor)

let on_subtree_removed (st : Store.t) ~doc_name (subtree : Node.desc) =
  List.iter
    (fun def ->
      let bt = Btree.of_root st.Store.bm def.Catalog.idx_root in
      List.iter
        (fun (key, h) -> ignore (Btree.delete bt ~key ~value:h))
        (subtree_entries st def subtree);
      def.Catalog.idx_root <- Btree.root bt)
    (Catalog.indexes_for_document st.Store.cat doc_name)

let on_subtree_added (st : Store.t) ~doc_name (subtree : Node.desc) =
  List.iter
    (fun def ->
      let bt = Btree.of_root st.Store.bm def.Catalog.idx_root in
      List.iter
        (fun (key, h) -> Btree.insert bt ~key ~value:h)
        (subtree_entries st def subtree);
      def.Catalog.idx_root <- Btree.root bt)
    (Catalog.indexes_for_document st.Store.cat doc_name)
