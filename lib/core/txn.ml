(* Transaction state (paper §6).  Each statement executes within a
   transaction; a transaction provides ACID over the page store:

   - atomicity: before-images restore the buffer (and the catalog) on
     abort;
   - durability: after-images + commit record reach the WAL (fsynced)
     before commit returns;
   - isolation: strict 2PL on documents for updaters; read-only
     transactions read a snapshot without locking (§6.3);
   - consistency: single-threaded statement execution plus the above.

   The [dirty] map doubles as the version source for snapshot readers:
   the before-image of a page captured at first write IS the last
   committed version while the writer is active. *)

type status = Active | Committed | Aborted

type t = {
  id : int;
  read_only : bool;
  snapshot_ts : int; (* meaningful for read-only transactions *)
  reader_catalog : Catalog.t option; (* private catalog copy at snapshot *)
  mutable status : status;
  dirty : (int, Bytes.t) Hashtbl.t; (* pid -> before-image *)
  mutable logical_ops : string list; (* audit records for the WAL *)
  cat_backup : string; (* catalog + free-list state at begin *)
  fs_page_count : int;
  fs_free : int list;
}

let is_active t = t.status = Active

let touched t pid = Hashtbl.mem t.dirty pid

let before_image t pid = Hashtbl.find_opt t.dirty pid

let record_write t ~pid ~image =
  if not (Hashtbl.mem t.dirty pid) then Hashtbl.add t.dirty pid image

let log_op t op = t.logical_ops <- op :: t.logical_ops

let dirty_pages t = Hashtbl.fold (fun pid img acc -> (pid, img) :: acc) t.dirty []

(* Lifecycle: [make] and the [mark_*] transitions are the single places
   a transaction changes status, so they double as the trace emission
   points for txn begin/commit/rollback. *)

let make ~id ~read_only ~snapshot_ts ~reader_catalog ~cat_backup ~fs_page_count
    ~fs_free =
  Sedna_util.Trace.emit (Sedna_util.Trace.Txn_begin { txn = id; read_only });
  {
    id;
    read_only;
    snapshot_ts;
    reader_catalog;
    status = Active;
    dirty = Hashtbl.create 16;
    logical_ops = [];
    cat_backup;
    fs_page_count;
    fs_free;
  }

let mark_committed t =
  t.status <- Committed;
  Sedna_util.Trace.emit
    (Sedna_util.Trace.Txn_commit { txn = t.id; dirty_pages = Hashtbl.length t.dirty })

let mark_aborted t =
  t.status <- Aborted;
  Sedna_util.Trace.emit (Sedna_util.Trace.Txn_rollback { txn = t.id })
