(* Hot backup (paper §6.5).

   A full hot backup copies the data file, then fixates and copies the
   log, then the configuration (catalog) — in that order, while the
   database keeps serving requests.  The "split-block" problem (a page
   torn by a concurrent write during the copy) is solved by the log:
   restore replays the WAL over the copied data file, so any page the
   copy caught mid-change is rewritten from its logged after-image.

   An incremental backup copies only the log and the catalog; restore
   applies increments over the last full backup, giving point-in-time
   recovery at increment granularity. *)

open Sedna_util

(* fault-injection site: one hit per copied chunk, so a crash can land
   mid-file and leave a torn backup copy (healed by the log on restore) *)
let copy_site = Fault.site "backup.copy"

let copy_file src dst =
  let ic = open_in_bin src in
  let oc = open_out_bin dst in
  let buf = Bytes.create 65536 in
  let rec go () =
    let n = input ic buf 0 (Bytes.length buf) in
    if n > 0 then begin
      (match Fault.hit ~len:n copy_site with
       | Fault.Proceed -> output oc buf 0 n
       | Fault.Short_write k ->
         output oc buf 0 k;
         flush oc;
         Fault.crash copy_site);
      go ()
    end
  in
  go ();
  close_in ic;
  close_out oc

let copy_if_exists src dst = if Sys.file_exists src then copy_file src dst

let ensure_dir d = if not (Sys.file_exists d) then Unix.mkdir d 0o755

(* Full hot backup into [dest].  The WAL epoch at backup time is
   recorded alongside the copied log: increments are only meaningful
   while the live log is still the same one the base copy fixated. *)
let full db ~dest =
  ensure_dir dest;
  let dir = Database.directory db in
  (* 1. data file (may be torn w.r.t. in-flight commits: fixed by log) *)
  copy_file (Filename.concat dir "data.sdb") (Filename.concat dest "data.sdb");
  copy_if_exists
    (Filename.concat dir "data.sdb.cksum")
    (Filename.concat dest "data.sdb.cksum");
  (* 2. fixate and copy the log *)
  copy_file (Filename.concat dir "wal.sdb") (Filename.concat dest "wal.sdb");
  Sysutil.write_file_durable
    (Filename.concat dest "wal.sdb.epoch")
    (string_of_int (Wal.epoch (Database.wal db)));
  (* 3. additional files: the checkpointed catalog *)
  copy_file (Filename.concat dir "catalog.sdb")
    (Filename.concat dest "catalog.sdb")

(* Incremental hot backup: only the log (and catalog) since the base
   backup.  Increment [n] is stored as wal.<n>.sdb in the backup dir. *)
let incremental db ~dest ~seq =
  if not (Sys.file_exists dest) then
    Error.raise_error Error.Recovery_failure
      "incremental backup requires an existing full backup at %s" dest;
  let base_epoch =
    Wal.read_epoch (Filename.concat dest "wal.sdb")
  in
  if base_epoch <> 0 && Wal.epoch (Database.wal db) <> base_epoch then
    Error.raise_error Error.Recovery_failure
      "a checkpoint truncated the log since the base backup (epoch %d, now \
       %d): increments would miss committed work — take a fresh full backup"
      base_epoch
      (Wal.epoch (Database.wal db));
  let dir = Database.directory db in
  copy_file (Filename.concat dir "wal.sdb")
    (Filename.concat dest (Printf.sprintf "wal.%d.sdb" seq));
  copy_file (Filename.concat dir "catalog.sdb")
    (Filename.concat dest (Printf.sprintf "catalog.%d.sdb" seq))

(* Restore a backup into a fresh database directory.  [up_to] selects
   how many increments to apply ("point-in-time" at increment
   granularity); [None] applies all of them. *)
let restore ~src ~dest ?up_to () =
  ensure_dir dest;
  copy_file (Filename.concat src "data.sdb") (Filename.concat dest "data.sdb");
  copy_if_exists
    (Filename.concat src "data.sdb.cksum")
    (Filename.concat dest "data.sdb.cksum");
  copy_file (Filename.concat src "catalog.sdb")
    (Filename.concat dest "catalog.sdb");
  copy_file (Filename.concat src "wal.sdb") (Filename.concat dest "wal.sdb");
  (* apply increments: each increment's log replaces the WAL; opening
     the database replays it.  Increments are cumulative since the full
     backup (the base checkpoint), so applying the newest requested one
     is enough. *)
  let rec last_increment best n =
    let w = Filename.concat src (Printf.sprintf "wal.%d.sdb" n) in
    if Sys.file_exists w
       && (match up_to with None -> true | Some k -> n <= k)
    then last_increment (Some n) (n + 1)
    else best
  in
  (match last_increment None 1 with
   | Some n ->
     copy_file
       (Filename.concat src (Printf.sprintf "wal.%d.sdb" n))
       (Filename.concat dest "wal.sdb");
     copy_file
       (Filename.concat src (Printf.sprintf "catalog.%d.sdb" n))
       (Filename.concat dest "catalog.sdb")
   | None -> ());
  (* opening runs recovery: catalog + WAL redo *)
  Database.open_existing dest
