(* Strict two-phase locking at document granularity (paper §6.2).

   Transactions acquire S or X locks on document names and hold them to
   commit/abort.  Conflicts are reported to the caller, which may
   enqueue the request; a wait-for graph detects deadlocks.  The engine
   is single-process, so "waiting" is cooperative: the scheduler in the
   tests/benches retries blocked transactions. *)

type mode = Shared | Exclusive

type entry = {
  mutable holders : (int * mode) list; (* txn id, mode *)
  mutable queue : (int * mode) list; (* FIFO of waiters *)
}

type t = {
  table : (string, entry) Hashtbl.t;
  wait_for : (int, int list) Hashtbl.t; (* waiter -> holders it waits on *)
}

type outcome = Granted | Blocked | Deadlock_detected

let create () = { table = Hashtbl.create 16; wait_for = Hashtbl.create 16 }

let entry t name =
  match Hashtbl.find_opt t.table name with
  | Some e -> e
  | None ->
    let e = { holders = []; queue = [] } in
    Hashtbl.add t.table name e;
    e

let compatible requested holders ~requester =
  List.for_all
    (fun (txn, mode) ->
      txn = requester
      || match (requested, mode) with Shared, Shared -> true | _ -> false)
    holders

(* Would granting [txn] create a cycle in the wait-for graph? *)
let creates_cycle t ~waiter ~blockers =
  let rec reachable seen from target =
    if from = target then true
    else if List.mem from seen then false
    else
      let next = Option.value (Hashtbl.find_opt t.wait_for from) ~default:[] in
      List.exists (fun n -> reachable (from :: seen) n target) next
  in
  List.exists (fun b -> reachable [] b waiter) blockers

let holds t name txn =
  match Hashtbl.find_opt t.table name with
  | None -> None
  | Some e -> List.assoc_opt txn e.holders

let acquire_locked t ~txn ~name ~mode : outcome =
  let e = entry t name in
  match List.assoc_opt txn e.holders with
  | Some Exclusive -> Granted (* already strongest *)
  | Some Shared when mode = Shared -> Granted
  | Some Shared ->
    (* upgrade S -> X: grantable iff sole holder *)
    if List.for_all (fun (h, _) -> h = txn) e.holders then begin
      e.holders <- [ (txn, Exclusive) ];
      Granted
    end
    else begin
      let blockers =
        List.filter_map (fun (h, _) -> if h <> txn then Some h else None)
          e.holders
      in
      if creates_cycle t ~waiter:txn ~blockers then Deadlock_detected
      else begin
        Hashtbl.replace t.wait_for txn blockers;
        if not (List.mem_assoc txn e.queue) then e.queue <- e.queue @ [ (txn, mode) ];
        Blocked
      end
    end
  | None ->
    if compatible mode e.holders ~requester:txn && e.queue = [] then begin
      e.holders <- (txn, mode) :: e.holders;
      Granted
    end
    else begin
      let blockers = List.map fst e.holders in
      if creates_cycle t ~waiter:txn ~blockers then Deadlock_detected
      else begin
        Hashtbl.replace t.wait_for txn blockers;
        if not (List.mem_assoc txn e.queue) then e.queue <- e.queue @ [ (txn, mode) ];
        Blocked
      end
    end

let acquire t ~txn ~name ~mode : outcome =
  let outcome = acquire_locked t ~txn ~name ~mode in
  Sedna_util.Trace.emit
    (Sedna_util.Trace.Lock_acquire
       {
         txn;
         doc = name;
         mode = (match mode with Shared -> "shared" | Exclusive -> "exclusive");
         outcome =
           (match outcome with
           | Granted -> "granted"
           | Blocked -> "blocked"
           | Deadlock_detected -> "deadlock");
       });
  outcome

(* Release everything held or queued by [txn]; then promote waiters. *)
let release_all t ~txn =
  let held =
    Hashtbl.fold
      (fun _ e acc -> if List.mem_assoc txn e.holders then acc + 1 else acc)
      t.table 0
  in
  if held > 0 then
    Sedna_util.Trace.emit (Sedna_util.Trace.Lock_release { txn; count = held });
  Hashtbl.remove t.wait_for txn;
  Hashtbl.iter
    (fun _ e ->
      e.holders <- List.filter (fun (h, _) -> h <> txn) e.holders;
      e.queue <- List.filter (fun (h, _) -> h <> txn) e.queue)
    t.table;
  (* grant queued requests that have become compatible, FIFO *)
  Hashtbl.iter
    (fun _ e ->
      let rec promote () =
        match e.queue with
        | (w, m) :: rest when compatible m e.holders ~requester:w ->
          (* an upgrade waiter replaces its shared hold *)
          e.holders <- (w, m) :: List.filter (fun (h, _) -> h <> w) e.holders;
          e.queue <- rest;
          Hashtbl.remove t.wait_for w;
          promote ()
        | _ -> ()
      in
      promote ())
    t.table

(* For diagnostics and tests. *)
let holders t name =
  match Hashtbl.find_opt t.table name with
  | None -> []
  | Some e -> e.holders

let waiters t name =
  match Hashtbl.find_opt t.table name with
  | None -> []
  | Some e -> e.queue

let pp_mode ppf = function
  | Shared -> Format.pp_print_string ppf "S"
  | Exclusive -> Format.pp_print_string ppf "X"
