(** The database: files, buffer, WAL, versions, locks, catalog and the
    transaction table — the "database manager" of the paper's Figure 1.

    Directory layout: [data.sdb] (pages), [wal.sdb] (log since the last
    checkpoint), [catalog.sdb] (checkpointed catalog).  Opening runs
    the two-step recovery of §6.4. *)

type t

val create : ?buffer_frames:int -> string -> t
(** Create a fresh database in (a possibly new) directory. *)

val open_existing : ?buffer_frames:int -> string -> t
(** Open and recover: load the checkpointed state, then redo the
    committed transactions found in the WAL. *)

val close : t -> unit
(** Checkpoint and close the files. *)

val crash : t -> unit
(** Drop all volatile state without flushing — crash simulation for
    recovery tests; re-open with {!open_existing}. *)

val checkpoint : t -> unit
(** Fixate a transaction-consistent persistent state and truncate the
    log (no active transactions allowed). *)

val store : t -> Store.t
val catalog : t -> Catalog.t
val buffer : t -> Buffer_mgr.t
val lock_manager : t -> Lock_mgr.t
val versions : t -> Versions.t
val directory : t -> string
val wal : t -> Wal.t

(** {1 Hot standby} *)

val set_standby : t -> bool -> unit
(** Toggle standby mode.  While set, {!begin_txn} refuses
    [read_only:false] with [SE-READ-ONLY]; the replication receiver
    keeps the database current via {!apply_txn}. *)

val is_standby : t -> bool

(** {1 Cluster epoch and fencing (split-brain protection)}

    The cluster epoch is the promotion generation of the replication
    group — distinct from the WAL epoch, which counts checkpoint
    truncations of one node's log.  It is persisted durably in a
    [cluster.epoch] sidecar and gossiped on every wire exchange; a
    non-standby node observing a higher epoch demotes itself: both
    {!begin_txn} and {!commit} then refuse writes with [SE-FENCED]. *)

val cluster_epoch : t -> int

val set_cluster_epoch : t -> int -> unit
(** Adopt a (higher) epoch without fencing: promotion minting its own,
    or a standby tracking its primary's.  Persists durably. *)

val observe_epoch : t -> int -> unit
(** An epoch seen on the wire.  Higher than ours on a non-standby node
    means another node was promoted past us: persist it and fence. *)

val is_fenced : t -> bool

val unfence : t -> unit
(** Clear the fence — only promotion (with a freshly minted epoch) or a
    re-seed may do this. *)

(** {1 Degraded read-only mode (resource exhaustion)}

    Orthogonal to fencing and to the standby role.  Entered when a
    storage write/sync site hits ENOSPC/EDQUOT/EMFILE (real or
    injected) or the {!Watchdog} free-space probe fails; {!begin_txn}
    and {!commit} then refuse writes with [SE-DEGRADED] while reads
    keep serving.  The watchdog clears it with hysteresis once the
    resource has been healthy for several consecutive probes. *)

val is_degraded : t -> bool
val degraded_reason : t -> string

val enter_degraded : t -> string -> unit
(** Flip into degraded mode (idempotent); [string] is the operator-
    visible reason. *)

val exit_degraded : t -> unit
(** Clear degraded mode (idempotent).  Callers are expected to apply
    hysteresis — see {!Watchdog}. *)

val apply_txn :
  t -> txn_id:int -> images:(int * Bytes.t) list -> catalog_blob:string option -> unit
(** Standby redo of one shipped committed transaction: install the page
    after-images, adopt the catalog when present, and version the
    displaced pages so concurrent read-only snapshots stay consistent.
    Idempotent (absolute images).  Call with no write transaction
    active, under the same exclusion as statement execution. *)

(** {1 Transactions} *)

val begin_txn : ?read_only:bool -> t -> Txn.t
(** Read-only transactions acquire a snapshot and a private catalog
    copy; they never lock (paper §6.3). *)

val run : t -> Txn.t -> (unit -> 'a) -> 'a
(** Route execution through the transaction: installs the write hook
    (updaters) or the snapshot read overlay (readers). *)

val txn_store : t -> Txn.t -> Store.t
(** The store a transaction must execute against (readers get their
    snapshot catalog). *)

val lock : t -> Txn.t -> doc:string -> mode:Lock_mgr.mode -> Lock_mgr.outcome
val lock_exn :
  ?retries:int ->
  ?backoff_s:float ->
  t ->
  Txn.t ->
  doc:string ->
  mode:Lock_mgr.mode ->
  unit
(** Raises [Lock_timeout] on block, [Deadlock] on a detected cycle. *)

val commit : ?park:((unit -> unit) -> unit) -> t -> Txn.t -> unit
(** WAL protocol: logical records, page after-images and the commit
    record (with the catalog when changed) appended as one contiguous
    group under the WAL writer cursor, then an fsync covering the
    group before the commit is acknowledged; then version installation
    and lock release.

    Under group commit the covering fsync is shared: this transaction
    parks until a leader's sync reaches its position.  [park wait] runs
    the blocking [wait] and is the caller's chance to release the
    engine lock around it (see [Governor.without_engine]); the default
    runs [wait] inline.  A failed covering sync raises out of [commit]
    — the caller must abort, and the abort record supersedes the
    commit record exactly as with a failed private fsync. *)

val set_group_commit : bool -> unit
(** Toggle fsync coalescing at runtime (process-wide).  Defaults to on;
    the environment variable [SEDNA_GROUP_COMMIT=0] starts it off.
    Durability is identical either way. *)

val group_commit_on : unit -> bool

val abort : t -> Txn.t -> unit
(** Restore before-images, the catalog and the free list; release
    locks. *)

val with_txn : ?read_only:bool -> t -> (Txn.t -> Store.t -> 'a) -> 'a
(** BEGIN; run; COMMIT — aborting on exceptions. *)
