(* Resource watchdog: a free-space poller that flips the database into
   degraded read-only mode when the disk under the database directory
   stops accepting writes, and clears it with hysteresis once writes
   succeed again.

   There is no statvfs binding in this tree, so the probe *is* a write:
   create, fill, fsync and unlink a small probe file in the database
   directory.  That is also more honest than a free-space number — it
   fails on quota (EDQUOT) and fd exhaustion (EMFILE) too, and it goes
   through a fault site ([store.enospc]) so the harnesses can inject
   disk-full deterministically. *)

open Sedna_util

let enospc_site = Fault.site "store.enospc"

let probe_name = ".sedna.probe"

(* One probe write.  Raises the underlying error on failure (callers
   classify with [Sysutil.is_resource_exhaustion]); [Injected_fault] /
   [Injected_crash] from the site escape untouched for the harness. *)
let probe_dir ?(bytes = 8192) dir =
  Fault.check enospc_site;
  let path = Filename.concat dir probe_name in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let buf = Bytes.make bytes '\000' in
      let rec drain off =
        if off < bytes then drain (off + Unix.write fd buf off (bytes - off))
      in
      drain 0;
      Unix.fsync fd)

type t = {
  dir : string;
  get_db : unit -> Database.t option;
  interval_s : float;
  recover_after : int; (* consecutive healthy probes before clearing *)
  bytes : int;
  mutable healthy_streak : int;
  mutable stop_flag : bool;
  mutable thread : Thread.t option;
}

let tick t =
  match probe_dir ~bytes:t.bytes t.dir with
  | () -> (
    t.healthy_streak <- t.healthy_streak + 1;
    match t.get_db () with
    | Some db
      when Database.is_degraded db && t.healthy_streak >= t.recover_after ->
      Database.exit_degraded db
    | _ -> ())
  | exception e when Sysutil.is_resource_exhaustion e ->
    t.healthy_streak <- 0;
    Counters.bump Counters.resource_errors;
    (match t.get_db () with
     | Some db -> Database.enter_degraded db (Printexc.to_string e)
     | None -> ())
  | exception Fault.Injected_crash _ ->
    (* simulated process death only makes sense under the crash
       harness, which probes synchronously; the background thread just
       stops *)
    t.stop_flag <- true
  | exception _ ->
    (* transient (permissions, injected Fail, ...): not evidence either
       way, but break the healthy streak *)
    t.healthy_streak <- 0

let rec bg_loop t =
  if not t.stop_flag then begin
    tick t;
    (* sleep in short slices so [stop] is prompt *)
    let rec nap left =
      if left > 0.0 && not t.stop_flag then begin
        let d = Float.min 0.05 left in
        Thread.delay d;
        nap (left -. d)
      end
    in
    nap t.interval_s;
    bg_loop t
  end

let start ?(interval_s = 1.0) ?(recover_after = 2) ?(bytes = 8192) ~dir ~get_db
    () =
  let t =
    { dir; get_db; interval_s; recover_after; bytes; healthy_streak = 0;
      stop_flag = false; thread = None }
  in
  t.thread <- Some (Thread.create bg_loop t);
  t

let stop t =
  t.stop_flag <- true;
  match t.thread with
  | None -> ()
  | Some th ->
    t.thread <- None;
    Thread.join th
