(** Write-ahead log (paper §6.4): redo-only page after-images plus
    logical audit records.

    The WAL protocol: a transaction's after-images and its commit
    record are appended and fsynced before commit returns.  Records are
    checksummed; {!read_all} stops at the first torn/corrupt frame, so
    a crash mid-append loses only the unacknowledged tail. *)

type record =
  | Begin of int  (** transaction id *)
  | Image of int * int * Bytes.t  (** txn, page id, after-image *)
  | Commit of int * string option
      (** txn, marshaled catalog when it changed during the txn *)
  | Abort of int
  | Checkpoint
  | Logical of int * string  (** audit record: txn, operation *)

type t

val create : string -> t
(** Create/truncate the log file at this path. *)

val open_existing : string -> t
(** Open for appending (recovery reads via {!read_all}). *)

val append : t -> record -> unit

val append_group : t -> record list -> int
(** Append the records as one contiguous run of frames under the writer
    cursor — concurrent committers cannot interleave within the group —
    and return the position just past them, the position a covering
    {!sync} must reach before the commit is acknowledged. *)

val sync : t -> unit

val read_all : string -> record list
(** All well-formed records from the start of the file; a torn tail is
    silently dropped. *)

val reset : t -> unit
(** Truncate after a checkpoint made the log redundant.  Bumps the
    {!epoch}: positions handed out before the reset are invalid and a
    streaming consumer must re-seed. *)

val size : t -> int
val path : t -> string
val close : t -> unit

(** {1 Streaming (log shipping)}

    Positions are byte offsets at frame boundaries; [0] and any
    position returned by {!read_from} / {!stream_from} are valid.  A
    position is only meaningful together with the log's {!epoch} —
    {!reset} (checkpoint truncation) and {!create} bump the epoch, and
    a consumer holding a position from an older epoch must discard its
    state and re-seed from a full backup. *)

val epoch : t -> int
(** Generation id of the open log. *)

val stable_tip : t -> int * int
(** [(epoch, size)] read under the writer cursor, so no append is
    mid-frame: every byte at or below the returned position is fully
    written to the log file (though not necessarily fsynced).  The
    backup/seed path records this as the resume position {e before}
    copying the log, so a commit racing the copy can only leave the
    copy ahead of the recorded position, never behind it. *)

val read_epoch : string -> int
(** Epoch recorded in the sidecar file next to the log at this path;
    [0] when none exists yet. *)

val read_from : string -> int -> (record * int) list
(** Decoded records from the given frame boundary onward, each paired
    with the position just past its frame (feed back in to resume). *)

val stream_from : string -> pos:int -> max_bytes:int -> string * int * int
(** [(frames, count, pos')]: verbatim bytes of whole checksum-valid
    frames starting at [pos] — at most [max_bytes] unless the first
    frame alone is larger — plus the record count and the position past
    the last included frame.  [count = 0] means no new complete frames
    at this position. *)

val records_of_frames : string -> (record * int) list
(** Decode a batch of raw frames as produced by {!stream_from}; each
    record is paired with the offset just past its frame within the
    batch. *)

val append_raw : t -> string -> unit
(** Append verbatim pre-framed bytes (standby side of log shipping);
    call {!sync} afterwards for durability. *)

(** {1 Trace marks}

    In-memory, bounded observability metadata: a traced statement's
    commit records its trace context against the WAL position just past
    its frames, and the replication sender forwards the marks covered
    by each shipped batch so standby apply spans join the right
    trace. *)

val mark_trace : t -> pos:int -> trace:string -> span:int -> unit
(** Mark [pos] (the cursor returned by {!append_group}, just past the
    commit's frames) as the commit point of this trace. *)

val marks_between : t -> lo:int -> hi:int -> (int * string * int) list
(** Marks with position in (lo, hi], oldest first — the traced commits
    completed by shipping frames [lo, hi). *)
