(* The database data file: a flat array of pages addressed by global
   page id.  Page 0 is the master page.  Free pages are tracked in an
   in-memory free list persisted with the catalog at checkpoint; after
   a crash the free list is rebuilt conservatively (pages past the last
   checkpoint may be re-allocated only after recovery has replayed the
   WAL, which re-establishes their content).

   Every page carries a CRC-32 kept in a sidecar map (<data>.cksum)
   rather than a page trailer, so the 4 KiB page payload stays fully
   usable and pre-checksum files keep opening (their pages adopt a
   checksum on first read).  [read_page] verifies the CRC and surfaces
   a mismatch as [Error.Corrupt_page] — a torn or bit-flipped page is
   detected, never silently served.  The sidecar is persisted in
   [sync], strictly after the data fsync: recovery re-images any page
   whose write raced a crash from its WAL after-image without reading
   it, so a stale sidecar entry can only ever be observed for a page
   whose content is also stale — and both are then overwritten. *)

open Sedna_util

type t = {
  fd : Unix.file_descr;
  path : string;
  mutable page_count : int; (* pages ever allocated, including master *)
  mutable free : int list; (* recycled page ids *)
  mutable cksum : int array; (* per-page CRC-32; meaningful iff known *)
  mutable known : Bytes.t; (* '\001' where cksum.(pid) is recorded *)
}

(* fault-injection sites (crash-safety harness) *)
let write_site = Fault.site "file_store.write"
let sync_site = Fault.site "file_store.sync"

let cksum_path path = path ^ ".cksum"

let zero_page_crc =
  lazy (Bytes_util.crc32 (Bytes.make Page.page_size '\000'))

let grow_cksum t n =
  if n > Array.length t.cksum then begin
    let cap = max n (2 * Array.length t.cksum) in
    let cksum = Array.make cap 0 in
    Array.blit t.cksum 0 cksum 0 (Array.length t.cksum);
    let known = Bytes.make cap '\000' in
    Bytes.blit t.known 0 known 0 (Bytes.length t.known);
    t.cksum <- cksum;
    t.known <- known
  end

let record_cksum t pid crc =
  grow_cksum t (pid + 1);
  t.cksum.(pid) <- crc;
  Bytes.set t.known pid '\001'

(* Sidecar format: [pid 0 .. page_count-1] x ([known:u8][crc:i32]). *)
let serialize_cksum t =
  let b = Bytes.create (5 * t.page_count) in
  for pid = 0 to t.page_count - 1 do
    let known = pid < Bytes.length t.known && Bytes.get t.known pid = '\001' in
    Bytes_util.set_u8 b (5 * pid) (if known then 1 else 0);
    Bytes_util.set_i32 b ((5 * pid) + 1) (if known then t.cksum.(pid) else 0)
  done;
  Bytes.to_string b

let load_cksum t =
  let p = cksum_path t.path in
  if Sys.file_exists p then begin
    let ic = open_in_bin p in
    let len = in_channel_length ic in
    let b = Bytes.create len in
    really_input ic b 0 len;
    close_in ic;
    let entries = min (len / 5) t.page_count in
    grow_cksum t t.page_count;
    for pid = 0 to entries - 1 do
      if Bytes_util.get_u8 b (5 * pid) = 1 then
        (* get_i32 sign-extends; CRCs are unsigned 32-bit *)
        record_cksum t pid (Bytes_util.get_i32 b ((5 * pid) + 1) land 0xFFFFFFFF)
    done
  end

let create path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (* materialize the master page *)
  let zero = Bytes.make Page.page_size '\000' in
  let n = Unix.write fd zero 0 Page.page_size in
  if n <> Page.page_size then
    Error.raise_error Error.Storage_corruption "short write creating %s" path;
  let t =
    { fd; path; page_count = 1; free = [];
      cksum = Array.make 64 0; known = Bytes.make 64 '\000' }
  in
  record_cksum t 0 (Lazy.force zero_page_crc);
  (* the file's directory entry itself must survive a crash *)
  Sysutil.fsync_dir (Filename.dirname path);
  t

let open_existing path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  if size mod Page.page_size <> 0 then
    Error.raise_error Error.Storage_corruption
      "data file %s size %d is not page-aligned" path size;
  let page_count = size / Page.page_size in
  let cap = max 64 page_count in
  let t =
    { fd; path; page_count; free = [];
      cksum = Array.make cap 0; known = Bytes.make cap '\000' }
  in
  load_cksum t;
  t

let page_count t = t.page_count
let path t = t.path

let stored_cksum t pid =
  if pid >= 0 && pid < t.page_count
     && pid < Bytes.length t.known && Bytes.get t.known pid = '\001'
  then Some t.cksum.(pid)
  else None

(* Authoritative CRC check for the scrubber's confirm step: re-read the
   page through the store's own descriptor and compare against the
   sidecar, without adopting and without raising.  Must be called under
   the engine lock (the shared fd's seek+read is not thread-safe and
   the sidecar may be mid-update otherwise). *)
let verify_page t pid =
  if pid < 0 || pid >= t.page_count then `Unknown
  else begin
    let buf = Bytes.create Page.page_size in
    ignore (Unix.lseek t.fd (pid * Page.page_size) Unix.SEEK_SET);
    let rec fill off =
      if off >= Page.page_size then true
      else
        let n = Unix.read t.fd buf off (Page.page_size - off) in
        if n = 0 then false else fill (off + n)
    in
    if not (fill 0) then `Unknown
    else
      match stored_cksum t pid with
      | None -> `Unknown
      | Some crc ->
        if Bytes_util.crc32 ~len:Page.page_size buf = crc then `Ok else `Corrupt
  end

let read_page t pid (dst : Bytes.t) =
  if pid < 0 || pid >= t.page_count then
    Error.raise_error Error.Page_out_of_bounds "read of page %d (of %d)" pid
      t.page_count;
  ignore (Unix.lseek t.fd (pid * Page.page_size) Unix.SEEK_SET);
  let rec fill off =
    if off < Page.page_size then begin
      let n = Unix.read t.fd dst off (Page.page_size - off) in
      if n = 0 then
        Error.raise_error Error.Storage_corruption "short read of page %d" pid;
      fill (off + n)
    end
  in
  fill 0;
  Counters.bump Counters.page_reads;
  let crc = Bytes_util.crc32 ~len:Page.page_size dst in
  if pid < Bytes.length t.known && Bytes.get t.known pid = '\001' then begin
    if t.cksum.(pid) <> crc then begin
      Counters.bump Counters.checksum_fail;
      Trace.emit (Trace.Checksum_failed { pid });
      Error.raise_error Error.Corrupt_page
        "page %d checksum mismatch (stored %08x, computed %08x)" pid
        (t.cksum.(pid) land 0xFFFFFFFF) (crc land 0xFFFFFFFF)
    end;
    Counters.bump Counters.checksum_verify
  end
  else begin
    (* pre-checksum file: adopt on first read *)
    record_cksum t pid crc;
    Counters.bump Counters.checksum_adopt
  end

let write_page t pid (src : Bytes.t) =
  if pid < 0 || pid >= t.page_count then
    Error.raise_error Error.Page_out_of_bounds "write of page %d (of %d)" pid
      t.page_count;
  ignore (Unix.lseek t.fd (pid * Page.page_size) Unix.SEEK_SET);
  (match Fault.hit ~len:Page.page_size write_site with
   | Fault.Proceed -> ()
   | Fault.Short_write k ->
     (* torn write: persist only a prefix, then die *)
     let rec drain off =
       if off < k then drain (off + Unix.write t.fd src off (k - off))
     in
     drain 0;
     Fault.crash write_site);
  let rec drain off =
    if off < Page.page_size then begin
      let n = Unix.write t.fd src off (Page.page_size - off) in
      drain (off + n)
    end
  in
  drain 0;
  record_cksum t pid (Bytes_util.crc32 ~len:Page.page_size src);
  Counters.bump Counters.page_writes

let allocate t =
  match t.free with
  | pid :: rest ->
    t.free <- rest;
    pid
  | [] ->
    let pid = t.page_count in
    t.page_count <- t.page_count + 1;
    (* extend the file so reads of the new page are valid *)
    ignore (Unix.lseek t.fd (pid * Page.page_size) Unix.SEEK_SET);
    let zero = Bytes.make Page.page_size '\000' in
    let rec drain off =
      if off < Page.page_size then
        drain (off + Unix.write t.fd zero off (Page.page_size - off))
    in
    drain 0;
    record_cksum t pid (Lazy.force zero_page_crc);
    pid

let free t pid = t.free <- pid :: t.free

(* Free-list persistence hooks for the catalog. *)
let free_list t = t.free
let set_free_list t l = t.free <- l
let set_page_count t n =
  (* used on recovery: page count from the checkpointed catalog may lag
     the physical file; trust the larger of the two *)
  if n > t.page_count then t.page_count <- n

let sync t =
  Fault.check sync_site;
  Unix.fsync t.fd;
  (* sidecar strictly after the data fsync (see the header comment) *)
  Sysutil.write_file_durable (cksum_path t.path) (serialize_cksum t)

let close t = Unix.close t.fd
