(** Value indexes (DDL: CREATE INDEX): a path of element names below a
    document's root selects the indexed nodes; a second path selects
    the key value under each.  Entries map encoded keys to node
    handles. *)

val create :
  Store.t ->
  name:string ->
  doc:string ->
  path:string list ->
  key_path:string list ->
  kind:Catalog.index_kind ->
  Catalog.index_def
(** Register and build the index (fails if the name exists). *)

val drop : Store.t -> name:string -> unit

val build : Store.t -> Catalog.index_def -> unit
(** (Re)build from the document's current content. *)

val lookup_string : Store.t -> Catalog.index_def -> string -> Xptr.t list
val lookup_number : Store.t -> Catalog.index_def -> float -> Xptr.t list

val range_number :
  Store.t -> Catalog.index_def -> ?lo:float -> ?hi:float -> unit -> Xptr.t list

val range_string :
  Store.t -> Catalog.index_def -> ?lo:string -> ?hi:string -> unit -> Xptr.t list
(** Inclusive lexicographic range over a string index. *)

val entries_for :
  Store.t -> Catalog.index_def -> Node.desc -> (string * Xptr.t) list
(** The (key, handle) pairs a document currently contributes. *)

val subtree_entries :
  Store.t -> Catalog.index_def -> Node.desc -> (string * Xptr.t) list
(** Entries affected by a change at the given node: targets inside its
    subtree plus targets on its ancestor chain (whose keys may derive
    from it). *)

val on_subtree_removed : Store.t -> doc_name:string -> Node.desc -> unit
val on_subtree_added : Store.t -> doc_name:string -> Node.desc -> unit
(** The update executor brackets each mutation with these two calls on
    the same anchor node, so affected entries are removed under the old
    keys and recomputed under the new ones. *)
