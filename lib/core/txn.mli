(** Transaction state (paper §6).  Before-images captured at first
    write give atomicity (abort) and serve snapshot readers; the
    after-images derived from them at commit give durability through
    the WAL.  Lifecycle is driven by {!Database}. *)

type status = Active | Committed | Aborted

type t = {
  id : int;
  read_only : bool;
  snapshot_ts : int;  (** the snapshot a read-only transaction reads *)
  reader_catalog : Catalog.t option;
      (** a reader's private catalog copy, consistent with its snapshot *)
  mutable status : status;
  dirty : (int, Bytes.t) Hashtbl.t;  (** page id -> before-image *)
  mutable logical_ops : string list;
  cat_backup : string;  (** catalog state at begin, for abort *)
  fs_page_count : int;
  fs_free : int list;
}

val make :
  id:int ->
  read_only:bool ->
  snapshot_ts:int ->
  reader_catalog:Catalog.t option ->
  cat_backup:string ->
  fs_page_count:int ->
  fs_free:int list ->
  t
(** Fresh [Active] transaction; emits a [Txn_begin] trace event. *)

val mark_committed : t -> unit
(** Flip to [Committed] and emit [Txn_commit].  State cleanup (WAL,
    locks, versions) stays with {!Database}. *)

val mark_aborted : t -> unit
(** Flip to [Aborted] and emit [Txn_rollback]. *)

val is_active : t -> bool
val touched : t -> int -> bool
val before_image : t -> int -> Bytes.t option
val record_write : t -> pid:int -> image:Bytes.t -> unit
val log_op : t -> string -> unit
val dirty_pages : t -> (int * Bytes.t) list
