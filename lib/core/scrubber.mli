(** Online storage scrubber: background CRC verification of every data
    page at a bounded rate, with online repair of confirmed-corrupt
    pages — from a clean resident frame, the latest committed WAL
    after-image, or a standby's copy (via the injected [fetch] hook),
    in that priority order.  A dirty resident frame defers the repair:
    its flush rewrites the on-disk page anyway.

    The scan reads through the scrubber's own file descriptor (never
    the buffer pool, so the hot set is untouched) and is lock-free;
    every mismatch is re-confirmed under the engine lock before being
    counted or repaired, so a page mid-write by a group commit is never
    a false positive. *)

type t

type stats = {
  mutable checked : int;
  mutable corrupt : int;
  mutable repaired_pool : int;
  mutable repaired_wal : int;
  mutable repaired_standby : int;
  mutable deferred : int;
  mutable failed : int;
}

val create :
  ?pages_per_sec:int ->
  ?fetch:(int -> Bytes.t option) ->
  ?lock:((unit -> unit) -> unit) ->
  Database.t ->
  t
(** [pages_per_sec] throttles the scan (0 = unthrottled, the default).
    [fetch pid] should return a known-good page image from a peer
    (wired to [Wire.Page_request] by the replication layer), already
    epoch-checked.  [lock f] must run [f] under the engine lock;
    the default runs [f] inline (single-threaded embedding only). *)

val run_pass : t -> stats
(** One synchronous full pass over the data file.  Lets
    [Fault.Injected_fault]/[Injected_crash] escape (for the crash
    harness). *)

val start : t -> unit
(** Start the background thread: repeated passes with a small idle gap,
    transient errors logged and survived. *)

val stop : t -> unit
(** Stop and join the background thread (also interrupts an in-flight
    pass at its next page). *)
