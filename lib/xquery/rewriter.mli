(** The optimizing rewriter (paper §5.1, §5.2.1): rule-based rewrites
    over the logical operation tree.

    1. {b DDO removal} (§5.1.1): {!normalize} wraps every path in an
       explicit distinct-document-order operation; the rewriter removes
       the ones whose argument is provably ordered and duplicate-free
       (ordered/disjoint property analysis) and the ones in
       effective-boolean-value positions.
    2. {b //-combining} (§5.1.2): [descendant-or-self::node()/child::x]
       becomes [descendant::x] unless the next step's predicates depend
       on context position or size (the paper's [//para[1]]
       counter-example is preserved).
    3. {b Nested-for laziness} (§5.1.3): for-clause binding sequences
       that do not depend on variables bound before them hoist into a
       let-clause evaluated once.
    4. {b Structural-path extraction} (§5.1.4): paths of descending
       name steps from [doc(...)] become {!Xq_ast.Schema_path}
       operations resolved on the descriptive schema.
    5. {b Virtual constructors} (§5.2.1): constructors whose results
       are never navigated are marked so the executor avoids deep
       copies.
    6. {b Function inlining} (§5.1's reference [11]): calls to
       non-recursive prolog functions become let-bound body copies. *)

type options = {
  remove_ddo : bool;
  combine_descendant : bool;
  extract_structural : bool;
  hoist_for : bool;
  virtual_constructors : bool;
  inline_functions : bool;
  use_indexes : bool;
      (** rule 7: rewrite selective value predicates over structural
          paths into B-tree index probes ({!Xq_ast.Index_probe}) when a
          matching index exists; needs the [?catalog] argument of
          {!rewrite_with} *)
  index_min_count : int;
      (** cardinality gate for rule 7: pushdown only when the candidate
          schema nodes together hold at least this many data nodes *)
}

val default_options : options
(** All rules on. *)

val no_options : options
(** All rules off — the unoptimized plans of benches E8–E11 (DDO
    operations inserted by normalization stay in place). *)

val normalize : Xq_ast.expr -> Xq_ast.expr
(** Insert explicit DDO operations over every path expression. *)

val rewrite_with :
  ?catalog:Sedna_core.Catalog.t -> options -> Xq_ast.expr -> Xq_ast.expr
(** Normalize, then apply the enabled rules.  [catalog] supplies index
    definitions and schema cardinalities for automatic index selection
    (rule 7); without it that rule never fires. *)

val optimize : Xq_ast.expr -> Xq_ast.expr
(** [rewrite_with default_options] (no catalog, so no index
    selection). *)

val inline_functions : Xq_ast.fun_def list -> Xq_ast.expr -> Xq_ast.expr
(** Rule 6, applied before {!rewrite_with} by the session when
    enabled.  Recursive functions (direct or mutual) and bodies using
    the context item are left as calls. *)

(** {1 Analysis helpers (exposed for the executor and tests)} *)

val uses_position : Xq_ast.expr -> bool
(** Does the expression (transitively) depend on [position()]/[last()]
    or contain a numeric literal predicate? *)

val predicate_is_positional : Xq_ast.expr -> bool

val combine_dos_steps : Xq_ast.step list -> Xq_ast.step list
(** Rule 2 on a raw step list. *)

val map_expr : (Xq_ast.expr -> Xq_ast.expr) -> Xq_ast.expr -> Xq_ast.expr
(** One-level structural map over immediate subexpressions. *)

val contains_context : Xq_ast.expr -> bool

val count_ddo : Xq_ast.expr -> int
(** Number of DDO operations in a tree (tests and benches). *)

val count_index_probes : Xq_ast.expr -> int
(** Number of {!Xq_ast.Index_probe} operations in a tree — lets tests
    and benches assert that automatic index selection fired. *)
