(* Recursive-descent parser for the XQuery subset, XUpdate statements
   and DDL.  Operates directly on the source string (single pass, no
   token buffer) because direct element constructors require lexical
   mode switching.

   Comments [(: ... :)] nest, per the XQuery grammar. *)

open Sedna_util
open Xq_ast

type state = { src : string; mutable pos : int }

let fail st fmt =
  Format.kasprintf
    (fun msg ->
      let upto = min st.pos (String.length st.src) in
      let line = ref 1 and col = ref 1 in
      String.iteri
        (fun i c ->
          if i < upto then
            if c = '\n' then begin
              incr line;
              col := 1
            end
            else incr col)
        st.src;
      Error.raise_error Error.Xquery_parse "%s at line %d, column %d" msg !line
        !col)
    fmt

let eof st = st.pos >= String.length st.src
let peek st = if eof st then '\000' else st.src.[st.pos]
let peek_at st k =
  if st.pos + k >= String.length st.src then '\000' else st.src.[st.pos + k]
let advance st = st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

(* whitespace and nested (: comments :) *)
let rec skip_ws st =
  if eof st then ()
  else
    match peek st with
    | ' ' | '\t' | '\n' | '\r' ->
      advance st;
      skip_ws st
    | '(' when peek_at st 1 = ':' ->
      st.pos <- st.pos + 2;
      let depth = ref 1 in
      while !depth > 0 do
        if eof st then fail st "unterminated comment";
        if looking_at st "(:" then begin
          incr depth;
          st.pos <- st.pos + 2
        end
        else if looking_at st ":)" then begin
          decr depth;
          st.pos <- st.pos + 2
        end
        else advance st
      done;
      skip_ws st
    | _ -> ()

let expect st s =
  skip_ws st;
  if looking_at st s then st.pos <- st.pos + String.length s
  else fail st "expected %S" s

let try_sym st s =
  skip_ws st;
  if looking_at st s then begin
    st.pos <- st.pos + String.length s;
    true
  end
  else false

(* a symbol that must not be the prefix of a longer operator *)
let try_sym_notfollowed st s bad =
  skip_ws st;
  if
    looking_at st s
    && not
         (let c = peek_at st (String.length s) in
          String.contains bad c)
  then begin
    st.pos <- st.pos + String.length s;
    true
  end
  else false

let is_name_start c = Xname.is_name_start c
let is_name_char c = Xname.is_name_char c

(* read an NCName at the current position (no whitespace skipping) *)
let read_ncname st =
  if not (is_name_start (peek st)) then fail st "expected a name";
  let start = st.pos in
  while (not (eof st)) && is_name_char (peek st) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let read_qname st =
  skip_ws st;
  let first = read_ncname st in
  if peek st = ':' && is_name_start (peek_at st 1) then begin
    advance st;
    let second = read_ncname st in
    Xname.make ~prefix:first second
  end
  else Xname.make first

(* peek a keyword: an NCName equal to [kw] (whole word) *)
let peek_word st =
  skip_ws st;
  if is_name_start (peek st) then begin
    let save = st.pos in
    let w = read_ncname st in
    st.pos <- save;
    Some w
  end
  else None

let try_kw st kw =
  skip_ws st;
  match peek_word st with
  | Some w when String.equal w kw ->
    st.pos <- st.pos + String.length kw;
    true
  | _ -> false

let expect_kw st kw = if not (try_kw st kw) then fail st "expected %S" kw

(* string literal with doubled-quote escape and predefined entities *)
let read_string_lit st =
  skip_ws st;
  let quote = peek st in
  if quote <> '"' && quote <> '\'' then fail st "expected a string literal";
  advance st;
  let b = Buffer.create 16 in
  let rec go () =
    if eof st then fail st "unterminated string literal";
    let c = peek st in
    if c = quote then begin
      advance st;
      if peek st = quote then begin
        Buffer.add_char b quote;
        advance st;
        go ()
      end
    end
    else if c = '&' then begin
      match String.index_from_opt st.src st.pos ';' with
      | None -> fail st "unterminated entity reference"
      | Some j ->
        let name = String.sub st.src (st.pos + 1) (j - st.pos - 1) in
        (match Sedna_xml.Escape.expand_entity name with
         | Some s -> Buffer.add_string b s
         | None -> fail st "unknown entity &%s;" name);
        st.pos <- j + 1;
        go ()
    end
    else begin
      Buffer.add_char b c;
      advance st;
      go ()
    end
  in
  go ();
  Buffer.contents b

let read_number st =
  skip_ws st;
  let start = st.pos in
  while (not (eof st)) && peek st >= '0' && peek st <= '9' do
    advance st
  done;
  let is_dec = peek st = '.' && peek_at st 1 >= '0' && peek_at st 1 <= '9' in
  if is_dec then begin
    advance st;
    while (not (eof st)) && peek st >= '0' && peek st <= '9' do
      advance st
    done
  end;
  let is_dbl = peek st = 'e' || peek st = 'E' in
  if is_dbl then begin
    advance st;
    if peek st = '+' || peek st = '-' then advance st;
    while (not (eof st)) && peek st >= '0' && peek st <= '9' do
      advance st
    done
  end;
  let text = String.sub st.src start (st.pos - start) in
  if is_dec || is_dbl then Dbl_lit (float_of_string text)
  else Int_lit (int_of_string text)

(* ---- expressions ------------------------------------------------------ *)

let rec parse_expr st : expr =
  let e1 = parse_expr_single st in
  if try_sym st "," then
    let rec more acc =
      let e = parse_expr_single st in
      if try_sym st "," then more (e :: acc) else List.rev (e :: acc)
    in
    Sequence (e1 :: more [])
  else e1

and parse_expr_single st : expr =
  skip_ws st;
  match peek_word st with
  | Some "for" when peek_clause_start st -> parse_flwor st
  | Some "let" when peek_clause_start st -> parse_flwor st
  | Some "if" when peek_after_word st "if" '(' -> parse_if st
  | Some "some" when peek_after_word st "some" '$' ->
    parse_quantified st Some_q
  | Some "every" when peek_after_word st "every" '$' ->
    parse_quantified st Every_q
  | _ -> parse_or st

(* does the word begin a FLWOR clause, i.e. is followed by '$'? *)
and peek_clause_start st =
  let save = st.pos in
  skip_ws st;
  let w = read_ncname st in
  ignore w;
  skip_ws st;
  let ok = peek st = '$' in
  st.pos <- save;
  ok

and peek_after_word st w c =
  let save = st.pos in
  skip_ws st;
  let w' = read_ncname st in
  skip_ws st;
  let ok = String.equal w w' && peek st = c in
  st.pos <- save;
  ok

and parse_var_name st =
  expect st "$";
  read_ncname st

and parse_flwor st : expr =
  let rec clauses acc =
    if try_kw st "for" then begin
      let rec binds acc2 =
        let v = parse_var_name st in
        let pos_var =
          if try_kw st "at" then Some (parse_var_name st) else None
        in
        expect_kw st "in";
        let e = parse_expr_single st in
        if try_sym st "," then binds ((v, pos_var, e) :: acc2)
        else List.rev ((v, pos_var, e) :: acc2)
      in
      clauses (For (binds []) :: acc)
    end
    else if try_kw st "let" then begin
      let rec binds acc2 =
        let v = parse_var_name st in
        expect st ":=";
        let e = parse_expr_single st in
        if try_sym st "," then binds ((v, e) :: acc2)
        else List.rev ((v, e) :: acc2)
      in
      clauses (Let (binds []) :: acc)
    end
    else if try_kw st "where" then
      clauses (Where (parse_expr_single st) :: acc)
    else if try_kw st "stable" || peek_word st = Some "order" then begin
      expect_kw st "order";
      expect_kw st "by";
      let rec keys acc2 =
        let e = parse_expr_single st in
        let dir =
          if try_kw st "descending" then Descending
          else begin
            ignore (try_kw st "ascending");
            Ascending
          end
        in
        if try_sym st "," then keys ((e, dir) :: acc2)
        else List.rev ((e, dir) :: acc2)
      in
      clauses (Order_by (keys []) :: acc)
    end
    else List.rev acc
  in
  let cs = clauses [] in
  expect_kw st "return";
  let ret = parse_expr_single st in
  Flwor (cs, ret)

and parse_if st : expr =
  expect_kw st "if";
  expect st "(";
  let c = parse_expr st in
  expect st ")";
  expect_kw st "then";
  let t = parse_expr_single st in
  expect_kw st "else";
  let e = parse_expr_single st in
  If (c, t, e)

and parse_quantified st q : expr =
  skip_ws st;
  ignore (read_ncname st);
  let rec binds acc =
    let v = parse_var_name st in
    expect_kw st "in";
    let e = parse_expr_single st in
    if try_sym st "," then binds ((v, e) :: acc) else List.rev ((v, e) :: acc)
  in
  let bs = binds [] in
  expect_kw st "satisfies";
  let cond = parse_expr_single st in
  Quantified (q, bs, cond)

and parse_or st : expr =
  let a = parse_and st in
  if try_kw st "or" then Or (a, parse_or st) else a

and parse_and st : expr =
  let a = parse_comparison st in
  if try_kw st "and" then And (a, parse_and st) else a

and parse_comparison st : expr =
  let a = parse_range st in
  let op =
    skip_ws st;
    if try_sym st "!=" then Some Gen_ne
    else if try_sym st "<=" then Some Gen_le
    else if try_sym st ">=" then Some Gen_ge
    else if try_sym_notfollowed st "<" "<" then Some Gen_lt
    else if try_sym_notfollowed st ">" ">" then Some Gen_gt
    else if try_sym st "=" then Some Gen_eq
    else if try_sym st "<<" then Some Precedes
    else if try_sym st ">>" then Some Follows
    else
      match peek_word st with
      | Some "eq" -> ignore (try_kw st "eq"); Some Eq
      | Some "ne" -> ignore (try_kw st "ne"); Some Ne
      | Some "lt" -> ignore (try_kw st "lt"); Some Lt
      | Some "le" -> ignore (try_kw st "le"); Some Le
      | Some "gt" -> ignore (try_kw st "gt"); Some Gt
      | Some "ge" -> ignore (try_kw st "ge"); Some Ge
      | Some "is" -> ignore (try_kw st "is"); Some Is
      | _ -> None
  in
  match op with Some op -> Binop (op, a, parse_range st) | None -> a

and parse_range st : expr =
  let a = parse_additive st in
  if try_kw st "to" then Range (a, parse_additive st) else a

and parse_additive st : expr =
  let rec go a =
    skip_ws st;
    if try_sym st "+" then go (Binop (Add, a, parse_multiplicative st))
    else if
      (* '-' must not eat the start of a name like '-foo' inside names:
         names cannot start with '-', so plain consumption is safe *)
      try_sym st "-"
    then go (Binop (Sub, a, parse_multiplicative st))
    else a
  in
  go (parse_multiplicative st)

and parse_multiplicative st : expr =
  let rec go a =
    skip_ws st;
    if try_sym st "*" then go (Binop (Mul, a, parse_union st))
    else
      match peek_word st with
      | Some "div" -> ignore (try_kw st "div"); go (Binop (Div, a, parse_union st))
      | Some "idiv" -> ignore (try_kw st "idiv"); go (Binop (Idiv, a, parse_union st))
      | Some "mod" -> ignore (try_kw st "mod"); go (Binop (Mod, a, parse_union st))
      | _ -> a
  in
  go (parse_union st)

and parse_union st : expr =
  let rec go a =
    skip_ws st;
    if try_kw st "union" || try_sym_notfollowed st "|" "|" then
      go (Binop (Union, a, parse_intersect st))
    else a
  in
  go (parse_intersect st)

and parse_intersect st : expr =
  let rec go a =
    if try_kw st "intersect" then go (Binop (Intersect, a, parse_typeop st))
    else if try_kw st "except" then go (Binop (Except, a, parse_typeop st))
    else a
  in
  go (parse_typeop st)

and parse_typeop st : expr =
  let a = parse_unary st in
  if try_kw st "instance" then begin
    expect_kw st "of";
    Instance_of (a, parse_sequence_type st)
  end
  else if try_kw st "castable" then begin
    expect_kw st "as";
    Castable (a, parse_sequence_type st)
  end
  else if try_kw st "cast" then begin
    expect_kw st "as";
    Cast (a, parse_sequence_type st)
  end
  else if try_kw st "treat" then begin
    expect_kw st "as";
    Treat_as (a, parse_sequence_type st)
  end
  else a

and parse_sequence_type st : string =
  skip_ws st;
  let n = Xname.to_string (read_qname st) in
  let n = if try_sym st "(" then (expect st ")"; n ^ "()") else n in
  let n =
    if try_sym st "?" then n ^ "?"
    else if try_sym st "*" then n ^ "*"
    else if try_sym st "+" then n ^ "+"
    else n
  in
  n

and parse_unary st : expr =
  skip_ws st;
  if try_sym st "-" then Neg (parse_unary st)
  else if try_sym st "+" then parse_unary st
  else parse_path st

(* ---- paths -------------------------------------------------------------- *)

and parse_path st : expr =
  skip_ws st;
  if looking_at st "//" then begin
    st.pos <- st.pos + 2;
    let steps = parse_relative_steps st in
    Path
      ( Call (Xname.make "root", [ Context_item ]),
        { axis = Descendant_or_self; test = Kind_any; preds = [] } :: steps )
  end
  else if peek st = '/' && peek_at st 1 <> '/' then begin
    advance st;
    skip_ws st;
    (* bare "/" or absolute path *)
    if eof st || not (is_path_start st) then
      Path (Call (Xname.make "root", [ Context_item ]), [])
    else
      let steps = parse_relative_steps st in
      Path (Call (Xname.make "root", [ Context_item ]), steps)
  end
  else begin
    let primary = parse_step_or_postfix st in
    skip_ws st;
    if looking_at st "/" then begin
      let steps = parse_path_continuation st in
      match primary with
      | Path (p, s0) -> Path (p, s0 @ steps)
      | p -> Path (p, steps)
    end
    else primary
  end

and is_path_start st =
  skip_ws st;
  let c = peek st in
  is_name_start c || c = '@' || c = '.' || c = '*'

and parse_path_continuation st : step list =
  let rec go acc =
    skip_ws st;
    if looking_at st "//" then begin
      st.pos <- st.pos + 2;
      let s = parse_axis_step st in
      go (s :: { axis = Descendant_or_self; test = Kind_any; preds = [] } :: acc)
    end
    else if peek st = '/' then begin
      advance st;
      let s = parse_axis_step st in
      go (s :: acc)
    end
    else List.rev acc
  in
  go []

and parse_relative_steps st : step list =
  let s = parse_axis_step st in
  s :: parse_path_continuation st

(* A step in a relative path: an axis step.  (Primary expressions in
   non-initial path positions are not supported.) *)
and parse_axis_step st : step =
  skip_ws st;
  if looking_at st ".." then begin
    st.pos <- st.pos + 2;
    let preds = parse_predicates st in
    { axis = Parent; test = Kind_any; preds }
  end
  else if peek st = '@' then begin
    advance st;
    let test =
      if peek st = '*' then begin
        advance st;
        Kind_attribute None
      end
      else Kind_attribute (Some (read_qname st))
    in
    let preds = parse_predicates st in
    { axis = Attribute_axis; test; preds }
  end
  else begin
    (* explicit axis? *)
    let axis, consumed =
      let save = st.pos in
      if is_name_start (peek st) then begin
        let w = read_ncname st in
        if looking_at st "::" then begin
          st.pos <- st.pos + 2;
          match w with
          | "child" -> (Child, true)
          | "descendant" -> (Descendant, true)
          | "descendant-or-self" -> (Descendant_or_self, true)
          | "self" -> (Self, true)
          | "parent" -> (Parent, true)
          | "ancestor" -> (Ancestor, true)
          | "ancestor-or-self" -> (Ancestor_or_self, true)
          | "following-sibling" -> (Following_sibling, true)
          | "preceding-sibling" -> (Preceding_sibling, true)
          | "following" -> (Following, true)
          | "preceding" -> (Preceding, true)
          | "attribute" -> (Attribute_axis, true)
          | a -> fail st "unknown axis %S" a
        end
        else begin
          st.pos <- save;
          (Child, false)
        end
      end
      else (Child, false)
    in
    ignore consumed;
    let test = parse_node_test st ~axis in
    let preds = parse_predicates st in
    { axis; test; preds }
  end

and parse_node_test st ~axis : node_test =
  skip_ws st;
  if peek st = '*' then begin
    advance st;
    if axis = Attribute_axis then Kind_attribute None else Wildcard
  end
  else begin
    let save = st.pos in
    let name = read_qname st in
    skip_ws st;
    if peek st = '(' then begin
      match Xname.to_string name with
      | "node" ->
        expect st "(";
        expect st ")";
        Kind_any
      | "text" ->
        expect st "(";
        expect st ")";
        Kind_text
      | "comment" ->
        expect st "(";
        expect st ")";
        Kind_comment
      | "processing-instruction" ->
        expect st "(";
        skip_ws st;
        let target =
          if peek st = ')' then None
          else if peek st = '"' || peek st = '\'' then
            Some (read_string_lit st)
          else Some (read_ncname st)
        in
        expect st ")";
        Kind_pi target
      | "element" ->
        expect st "(";
        skip_ws st;
        let n =
          if peek st = ')' || peek st = '*' then begin
            if peek st = '*' then advance st;
            None
          end
          else Some (read_qname st)
        in
        expect st ")";
        Kind_element n
      | "attribute" ->
        expect st "(";
        skip_ws st;
        let n =
          if peek st = ')' || peek st = '*' then begin
            if peek st = '*' then advance st;
            None
          end
          else Some (read_qname st)
        in
        expect st ")";
        Kind_attribute n
      | "document-node" ->
        expect st "(";
        expect st ")";
        Kind_document
      | _ ->
        (* a function call is not a node test: backtrack, caller is a
           step context so this is an error *)
        st.pos <- save;
        fail st "unexpected function call in a path step"
    end
    else if axis = Attribute_axis then Kind_attribute (Some name)
    else Name_test name
  end

and parse_predicates st : expr list =
  let rec go acc =
    skip_ws st;
    if peek st = '[' then begin
      advance st;
      let e = parse_expr st in
      expect st "]";
      go (e :: acc)
    end
    else List.rev acc
  in
  go []

(* Step position: either an axis step, or a postfix (primary +
   predicates) expression. *)
and parse_step_or_postfix st : expr =
  skip_ws st;
  let c = peek st in
  if c = '@' || looking_at st ".." then
    Path (Context_item, [ parse_axis_step st ])
  else if c = '.' && not (peek_at st 1 >= '0' && peek_at st 1 <= '9') then begin
    advance st;
    let preds = parse_predicates st in
    if preds = [] then Context_item else Filter (Context_item, preds)
  end
  else if c = '*' then Path (Context_item, [ parse_axis_step st ])
  else if is_name_start c then begin
    (* QName: could be a function call, a keyword-ish primary, an axis
       step, or a kind test *)
    let save = st.pos in
    let name = read_qname st in
    skip_ws st;
    if peek st = '(' then begin
      st.pos <- save;
      match Xname.to_string name with
      | "node" | "text" | "comment" | "processing-instruction" | "element"
      | "attribute" | "document-node" ->
        Path (Context_item, [ parse_axis_step st ])
      | _ -> parse_postfix st
    end
    else begin
      st.pos <- save;
      (* ordered/unordered blocks *)
      if try_kw st "ordered" && peek st = '{' then begin
        expect st "{";
        let e = parse_expr st in
        expect st "}";
        Ordered e
      end
      else begin
        st.pos <- save;
        if try_kw st "unordered" && (skip_ws st; peek st = '{') then begin
          expect st "{";
          let e = parse_expr st in
          expect st "}";
          Unordered e
        end
        else begin
          st.pos <- save;
          (* computed constructors *)
          match parse_computed_constructor st with
          | Some e -> e
          | None -> Path (Context_item, [ parse_axis_step st ])
        end
      end
    end
  end
  else parse_postfix st

and parse_computed_constructor st : expr option =
  let save = st.pos in
  match peek_word st with
  | Some "element" ->
    ignore (try_kw st "element");
    skip_ws st;
    if peek st = '{' then begin
      expect st "{";
      let n = parse_expr st in
      expect st "}";
      expect st "{";
      let c = if (skip_ws st; peek st = '}') then Empty_seq else parse_expr st in
      expect st "}";
      Some (Comp_elem (n, c))
    end
    else if is_name_start (peek st) then begin
      let n = read_qname st in
      skip_ws st;
      if peek st = '{' then begin
        expect st "{";
        let c =
          if (skip_ws st; peek st = '}') then Empty_seq else parse_expr st
        in
        expect st "}";
        Some (Comp_elem (Str_lit (Xname.to_string n), c))
      end
      else begin
        st.pos <- save;
        None
      end
    end
    else begin
      st.pos <- save;
      None
    end
  | Some "attribute" ->
    ignore (try_kw st "attribute");
    skip_ws st;
    let name_expr =
      if peek st = '{' then begin
        expect st "{";
        let n = parse_expr st in
        expect st "}";
        Some n
      end
      else if is_name_start (peek st) then begin
        let n = read_qname st in
        skip_ws st;
        if peek st = '{' then Some (Str_lit (Xname.to_string n)) else None
      end
      else None
    in
    (match name_expr with
     | Some n ->
       expect st "{";
       let v = if (skip_ws st; peek st = '}') then Empty_seq else parse_expr st in
       expect st "}";
       Some (Comp_attr (n, v))
     | None ->
       st.pos <- save;
       None)
  | Some "text" ->
    ignore (try_kw st "text");
    skip_ws st;
    if peek st = '{' then begin
      expect st "{";
      let v = parse_expr st in
      expect st "}";
      Some (Comp_text v)
    end
    else begin
      st.pos <- save;
      None
    end
  | Some "comment" ->
    ignore (try_kw st "comment");
    skip_ws st;
    if peek st = '{' then begin
      expect st "{";
      let v = parse_expr st in
      expect st "}";
      Some (Comp_comment v)
    end
    else begin
      st.pos <- save;
      None
    end
  | _ -> None

and parse_postfix st : expr =
  let p = parse_primary st in
  let preds = parse_predicates st in
  if preds = [] then p else Filter (p, preds)

and parse_primary st : expr =
  skip_ws st;
  match peek st with
  | '$' -> Var (parse_var_name st)
  | '(' ->
    advance st;
    skip_ws st;
    if peek st = ')' then begin
      advance st;
      Empty_seq
    end
    else begin
      let e = parse_expr st in
      expect st ")";
      e
    end
  | '"' | '\'' -> Str_lit (read_string_lit st)
  | c when c >= '0' && c <= '9' -> read_number st
  | '.' when peek_at st 1 >= '0' && peek_at st 1 <= '9' -> read_number st
  | '<' -> parse_direct_constructor st
  | c when is_name_start c ->
    let name = read_qname st in
    skip_ws st;
    if peek st = '(' then begin
      advance st;
      skip_ws st;
      let args =
        if peek st = ')' then []
        else
          let rec go acc =
            let a = parse_expr_single st in
            if try_sym st "," then go (a :: acc) else List.rev (a :: acc)
          in
          go []
      in
      expect st ")";
      Call (name, args)
    end
    else fail st "unexpected name %S in expression" (Xname.to_string name)
  | c -> fail st "unexpected character %C" c

(* ---- direct constructors ------------------------------------------------- *)

and parse_direct_constructor st : expr =
  expect st "<";
  if looking_at st "!--" then begin
    st.pos <- st.pos + 3;
    let start = st.pos in
    while not (looking_at st "-->") do
      if eof st then fail st "unterminated comment constructor";
      advance st
    done;
    let text = String.sub st.src start (st.pos - start) in
    st.pos <- st.pos + 3;
    Comp_comment (Str_lit text)
  end
  else if peek st = '?' then begin
    advance st;
    let target = read_ncname st in
    let start = st.pos in
    while not (looking_at st "?>") do
      if eof st then fail st "unterminated PI constructor";
      advance st
    done;
    let text = String.trim (String.sub st.src start (st.pos - start)) in
    st.pos <- st.pos + 2;
    Comp_pi (Str_lit target, Str_lit text)
  end
  else begin
    let name = read_qname st in
    let rec attrs acc =
      skip_ws st;
      if is_name_start (peek st) then begin
        let an = read_qname st in
        skip_ws st;
        expect st "=";
        skip_ws st;
        let quote = peek st in
        if quote <> '"' && quote <> '\'' then fail st "expected attribute value";
        advance st;
        let parts = parse_attr_value st quote in
        attrs ({ attr_name = an; attr_value = parts } :: acc)
      end
      else List.rev acc
    in
    let atts = attrs [] in
    skip_ws st;
    if try_sym st "/>" then Elem_constr (name, atts, [])
    else begin
      expect st ">";
      let content = parse_constructor_content st in
      (* closing tag *)
      let close = read_qname st in
      if not (Xname.equal close name || Xname.to_string close = Xname.to_string name)
      then fail st "mismatched constructor end tag </%s>" (Xname.to_string close);
      skip_ws st;
      expect st ">";
      Elem_constr (name, atts, content)
    end
  end

(* attribute value: alternating literal text and {enclosed exprs};
   terminates at the quote character *)
and parse_attr_value st quote : expr list =
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      parts := Str_lit (Buffer.contents buf) :: !parts;
      Buffer.clear buf
    end
  in
  let rec go () =
    if eof st then fail st "unterminated attribute value";
    let c = peek st in
    if c = quote then advance st
    else if c = '{' && peek_at st 1 = '{' then begin
      Buffer.add_char buf '{';
      st.pos <- st.pos + 2;
      go ()
    end
    else if c = '}' && peek_at st 1 = '}' then begin
      Buffer.add_char buf '}';
      st.pos <- st.pos + 2;
      go ()
    end
    else if c = '{' then begin
      flush ();
      advance st;
      let e = parse_expr st in
      expect st "}";
      parts := e :: !parts;
      go ()
    end
    else if c = '&' then begin
      match String.index_from_opt st.src st.pos ';' with
      | None -> fail st "unterminated entity reference"
      | Some j ->
        let name = String.sub st.src (st.pos + 1) (j - st.pos - 1) in
        (match Sedna_xml.Escape.expand_entity name with
         | Some s -> Buffer.add_string buf s
         | None -> fail st "unknown entity &%s;" name);
        st.pos <- j + 1;
        go ()
    end
    else begin
      Buffer.add_char buf c;
      advance st;
      go ()
    end
  in
  go ();
  flush ();
  List.rev !parts

(* element content: text, enclosed exprs, nested constructors; stops
   before the closing tag (consumes "</"). *)
and parse_constructor_content st : expr list =
  let parts = ref [] in
  let buf = Buffer.create 32 in
  let is_ws s =
    let ok = ref true in
    String.iter (fun c -> if not (c = ' ' || c = '\t' || c = '\n' || c = '\r') then ok := false) s;
    !ok
  in
  let flush ~boundary =
    if Buffer.length buf > 0 then begin
      let s = Buffer.contents buf in
      Buffer.clear buf;
      (* strip boundary whitespace (default boundary-space strip) *)
      if not (boundary && is_ws s) then parts := Str_lit s :: !parts
    end
  in
  let rec go () =
    if eof st then fail st "unterminated element constructor";
    if looking_at st "</" then begin
      flush ~boundary:true;
      st.pos <- st.pos + 2
    end
    else if looking_at st "<![CDATA[" then begin
      st.pos <- st.pos + 9;
      let start = st.pos in
      while not (looking_at st "]]>") do
        if eof st then fail st "unterminated CDATA";
        advance st
      done;
      Buffer.add_string buf (String.sub st.src start (st.pos - start));
      st.pos <- st.pos + 3;
      go ()
    end
    else if peek st = '<' then begin
      flush ~boundary:true;
      parts := parse_direct_constructor st :: !parts;
      go ()
    end
    else if peek st = '{' && peek_at st 1 = '{' then begin
      Buffer.add_char buf '{';
      st.pos <- st.pos + 2;
      go ()
    end
    else if peek st = '}' && peek_at st 1 = '}' then begin
      Buffer.add_char buf '}';
      st.pos <- st.pos + 2;
      go ()
    end
    else if peek st = '{' then begin
      flush ~boundary:true;
      advance st;
      let e = parse_expr st in
      expect st "}";
      parts := e :: !parts;
      go ()
    end
    else if peek st = '&' then begin
      match String.index_from_opt st.src st.pos ';' with
      | None -> fail st "unterminated entity reference"
      | Some j ->
        let name = String.sub st.src (st.pos + 1) (j - st.pos - 1) in
        (match Sedna_xml.Escape.expand_entity name with
         | Some s -> Buffer.add_string buf s
         | None -> fail st "unknown entity &%s;" name);
        st.pos <- j + 1;
        go ()
    end
    else begin
      Buffer.add_char buf (peek st);
      advance st;
      go ()
    end
  in
  go ();
  List.rev !parts

(* ---- prolog --------------------------------------------------------------- *)

let parse_prolog st : prolog =
  let ns = ref [] and vars = ref [] and funs = ref [] in
  let boundary = ref false in
  let rec go () =
    skip_ws st;
    if try_kw st "declare" then begin
      if try_kw st "namespace" then begin
        skip_ws st;
        let p = read_ncname st in
        expect st "=";
        let uri = read_string_lit st in
        ns := (p, uri) :: !ns;
        expect st ";";
        go ()
      end
      else if try_kw st "boundary-space" then begin
        if try_kw st "preserve" then boundary := true
        else expect_kw st "strip";
        expect st ";";
        go ()
      end
      else if try_kw st "variable" then begin
        let v = parse_var_name st in
        ignore (try_kw st "as" && (ignore (parse_sequence_type st); true));
        expect st ":=";
        let e = parse_expr_single st in
        vars := (v, e) :: !vars;
        expect st ";";
        go ()
      end
      else if try_kw st "function" then begin
        let name = read_qname st in
        expect st "(";
        skip_ws st;
        let params =
          if peek st = ')' then []
          else
            let rec ps acc =
              let v = parse_var_name st in
              ignore (try_kw st "as" && (ignore (parse_sequence_type st); true));
              if try_sym st "," then ps (v :: acc) else List.rev (v :: acc)
            in
            ps []
        in
        expect st ")";
        ignore (try_kw st "as" && (ignore (parse_sequence_type st); true));
        expect st "{";
        let body = parse_expr st in
        expect st "}";
        expect st ";";
        funs := { fn_name = name; fn_params = params; fn_body = body } :: !funs;
        go ()
      end
      else fail st "unsupported declaration"
    end
  in
  go ();
  {
    namespaces = List.rev !ns;
    variables = List.rev !vars;
    functions = List.rev !funs;
    boundary_space_preserve = !boundary;
  }

(* ---- statements ------------------------------------------------------------ *)

let parse_update_stmt st : update_stmt =
  if try_kw st "insert" then begin
    let src = parse_expr_single st in
    if try_kw st "into" then Insert_into (src, parse_expr st)
    else if try_kw st "preceding" then Insert_preceding (src, parse_expr st)
    else if try_kw st "following" then Insert_following (src, parse_expr st)
    else fail st "expected 'into', 'preceding' or 'following'"
  end
  else if try_kw st "delete_undeep" then Delete_undeep (parse_expr st)
  else if try_kw st "delete" then Delete (parse_expr st)
  else if try_kw st "replace" then begin
    let v = parse_var_name st in
    expect_kw st "in";
    let target = parse_expr_single st in
    expect_kw st "with";
    let repl = parse_expr st in
    Replace (v, target, repl)
  end
  else if try_kw st "rename" then begin
    let target = parse_expr_single st in
    expect_kw st "on";
    let name = read_qname st in
    Rename (target, name)
  end
  else fail st "unknown update statement"

let parse_path_of_names st : string list =
  (* a '/'-separated list of element names, used by CREATE INDEX *)
  let rec go acc =
    skip_ws st;
    if try_sym st "/" then begin
      skip_ws st;
      if peek st = '@' then advance st;
      if is_name_start (peek st) then go (Xname.to_string (read_qname st) :: acc)
      else if looking_at st "text()" then begin
        st.pos <- st.pos + 6;
        List.rev acc
      end
      else List.rev acc
    end
    else List.rev acc
  in
  go []

let parse_ddl st : ddl_stmt option =
  let save = st.pos in
  if try_kw st "CREATE" || try_kw st "create" then begin
    if try_kw st "DOCUMENT" || try_kw st "document" then begin
      let name = read_string_lit st in
      if try_kw st "IN" || try_kw st "in" then begin
        expect_kw st (match peek_word st with Some "COLLECTION" -> "COLLECTION" | _ -> "collection");
        Some (Create_document_in (name, read_string_lit st))
      end
      else Some (Create_document name)
    end
    else if try_kw st "COLLECTION" || try_kw st "collection" then
      Some (Create_collection (read_string_lit st))
    else if try_kw st "INDEX" || try_kw st "index" then begin
      let name = read_string_lit st in
      expect_kw st (match peek_word st with Some "ON" -> "ON" | _ -> "on");
      (* doc("name")/path *)
      expect_kw st "doc";
      expect st "(";
      let doc = read_string_lit st in
      expect st ")";
      let on_path = parse_path_of_names st in
      expect_kw st (match peek_word st with Some "BY" -> "BY" | _ -> "by");
      (* key path is relative: name(/name)* or ./text() style *)
      let by_path =
        let rec go acc =
          skip_ws st;
          if peek st = '.' then begin
            advance st;
            go acc
          end
          else if looking_at st "text()" then begin
            st.pos <- st.pos + 6;
            List.rev acc
          end
          else if peek st = '@' then begin
            advance st;
            (* keep the attribute marker: the index walks attributes,
               not child elements, for this (necessarily last) step *)
            List.rev (("@" ^ Xname.to_string (read_qname st)) :: acc)
          end
          else if is_name_start (peek st) then begin
            let n = Xname.to_string (read_qname st) in
            if try_sym st "/" then go (n :: acc) else List.rev (n :: acc)
          end
          else if try_sym st "/" then go acc
          else List.rev acc
        in
        go []
      in
      expect_kw st (match peek_word st with Some "AS" -> "AS" | _ -> "as");
      skip_ws st;
      let ty = Xname.to_string (read_qname st) in
      Some
        (Create_index { ix_name = name; ix_doc = doc; ix_on = on_path; ix_by = by_path; ix_type = ty })
    end
    else begin
      st.pos <- save;
      None
    end
  end
  else if try_kw st "DROP" || try_kw st "drop" then begin
    if try_kw st "DOCUMENT" || try_kw st "document" then
      Some (Drop_document (read_string_lit st))
    else if try_kw st "COLLECTION" || try_kw st "collection" then
      Some (Drop_collection (read_string_lit st))
    else if try_kw st "INDEX" || try_kw st "index" then
      Some (Drop_index (read_string_lit st))
    else begin
      st.pos <- save;
      None
    end
  end
  else if try_kw st "LOAD" then begin
    skip_ws st;
    let a = read_string_lit st in
    let b = read_string_lit st in
    (* LOAD "file.xml" "docname" *)
    Some (Load_file (a, b))
  end
  else None

let parse_statement (src : string) : statement =
  let st = { src; pos = 0 } in
  skip_ws st;
  match parse_ddl st with
  | Some d ->
    skip_ws st;
    if not (eof st) then fail st "trailing input after statement";
    Ddl d
  | None ->
    let prolog = parse_prolog st in
    skip_ws st;
    if try_kw st "UPDATE" then begin
      let u = parse_update_stmt st in
      skip_ws st;
      if not (eof st) then fail st "trailing input after update statement";
      Update (prolog, u)
    end
    else begin
      let e = parse_expr st in
      skip_ws st;
      if not (eof st) then fail st "trailing input after query";
      Query (prolog, e)
    end

let parse_query (src : string) : prolog * expr =
  match parse_statement src with
  | Query (p, e) -> (p, e)
  | _ ->
    Error.raise_error Error.Xquery_parse "expected a query, found a statement"
