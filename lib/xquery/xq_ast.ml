(* Abstract syntax for the supported XQuery subset, the XUpdate
   extension and the data-definition statements.

   The tree doubles as the paper's "logical representation": the
   normalizer inserts explicit [Ddo] operations (distinct-document-
   order) after path steps, and the optimizing rewriter then removes
   the redundant ones and performs the other §5.1 rewrites. *)

open Sedna_util

type axis =
  | Child
  | Descendant
  | Descendant_or_self
  | Self
  | Parent
  | Ancestor
  | Ancestor_or_self
  | Following_sibling
  | Preceding_sibling
  | Following
  | Preceding
  | Attribute_axis

type node_test =
  | Name_test of Xname.t
  | Wildcard
  | Kind_any (* node() *)
  | Kind_text
  | Kind_comment
  | Kind_pi of string option
  | Kind_element of Xname.t option
  | Kind_attribute of Xname.t option
  | Kind_document

type binop =
  | Add | Sub | Mul | Div | Idiv | Mod
  (* value comparisons *)
  | Eq | Ne | Lt | Le | Gt | Ge
  (* general comparisons *)
  | Gen_eq | Gen_ne | Gen_lt | Gen_le | Gen_gt | Gen_ge
  (* node comparisons *)
  | Is | Precedes | Follows
  (* set operations *)
  | Union | Intersect | Except

type quantifier = Some_q | Every_q

type expr =
  | Int_lit of int
  | Dbl_lit of float
  | Str_lit of string
  | Empty_seq
  | Sequence of expr list (* comma operator *)
  | Range of expr * expr (* e1 to e2 *)
  | Var of string
  | Context_item
  | Binop of binop * expr * expr
  | Neg of expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr (* produced by the rewriter from fn:not *)
  | If of expr * expr * expr
  | Flwor of clause list * expr
  | Quantified of quantifier * (string * expr) list * expr
  | Path of expr * step list (* initial context expr, then steps *)
  | Filter of expr * expr list (* primary expression with predicates *)
  | Call of Xname.t * expr list
  | Elem_constr of Xname.t * attr_constr list * expr list
  | Comp_elem of expr * expr (* computed: element {name-expr} {content} *)
  | Comp_attr of expr * expr
  | Comp_text of expr
  | Comp_comment of expr
  | Comp_pi of expr * expr
  | Ddo of expr (* distinct-document-order, inserted by normalization *)
  | Ordered of expr
  | Unordered of expr
  | Schema_path of string * (axis * Xname.t) list
    (* structural location path resolved against the descriptive schema
       (rewriter §5.1.4): document name + descending name steps *)
  | Index_probe of index_probe
    (* physical plan node produced by the rewriter's automatic index
       selection: a selective value predicate over a structural path is
       answered from a B-tree value index instead of a block-chain scan *)
  | Virtual_constr of expr
    (* a constructor whose result is never navigated against identity /
       parent / order: may reference stored content instead of deep-
       copying it (rewriter §5.2.1) *)
  | Castable of expr * string
  | Cast of expr * string
  | Instance_of of expr * string
  | Treat_as of expr * string

and step = { axis : axis; test : node_test; preds : expr list }

and index_probe = {
  ip_index : string; (* index name in the catalog *)
  ip_doc : string; (* document the index covers (for lock inference) *)
  ip_mode : probe_mode;
  ip_key : expr; (* probe key; context-free by construction *)
  ip_residual : expr;
    (* the original predicate, re-applied to every candidate: filters
       index false positives and enforces strict bounds *)
  ip_fallback : expr;
    (* the unrewritten path, evaluated when the index is unusable at
       run time (dropped, or key of an incompatible atomic kind) *)
}

and probe_mode = Probe_eq | Probe_ge | Probe_le | Probe_gt | Probe_lt

and attr_constr = { attr_name : Xname.t; attr_value : expr list }
(* attribute value template: literal strings and enclosed expressions *)

and clause =
  | For of (string * string option * expr) list (* var, positional var, seq *)
  | Let of (string * expr) list
  | Where of expr
  | Order_by of (expr * order_dir) list

and order_dir = Ascending | Descending

type fun_def = {
  fn_name : Xname.t;
  fn_params : string list;
  fn_body : expr;
}

type prolog = {
  namespaces : (string * string) list;
  variables : (string * expr) list;
  functions : fun_def list;
  boundary_space_preserve : bool;
}

let empty_prolog =
  { namespaces = []; variables = []; functions = []; boundary_space_preserve = false }

(* ---- XUpdate statements (paper §3, syntax close to Lehti's XUpdate) *)

type update_stmt =
  | Insert_into of expr * expr (* source, target *)
  | Insert_preceding of expr * expr
  | Insert_following of expr * expr
  | Delete of expr
  | Delete_undeep of expr (* remove node, lift its children *)
  | Replace of string * expr * expr (* $var in target-expr with new-expr *)
  | Rename of expr * Xname.t

(* ---- data definition statements *)

type ddl_stmt =
  | Create_document of string
  | Create_document_in of string * string (* doc, collection *)
  | Drop_document of string
  | Create_collection of string
  | Drop_collection of string
  | Load_string of string * string (* xml text, doc name: LOAD inline *)
  | Load_file of string * string
  | Create_index of {
      ix_name : string;
      ix_doc : string;
      ix_on : string list; (* element path below root *)
      ix_by : string list; (* key path below indexed node *)
      ix_type : string; (* xs:string / xs:integer / xs:double *)
    }
  | Drop_index of string

type statement =
  | Query of prolog * expr
  | Update of prolog * update_stmt
  | Ddl of ddl_stmt

(* ---- helpers used across the compiler ------------------------------- *)

let rec free_vars (e : expr) : string list =
  let ( @@@ ) a b = List.rev_append a b in
  match e with
  | Int_lit _ | Dbl_lit _ | Str_lit _ | Empty_seq | Context_item -> []
  | Var v -> [ v ]
  | Sequence es -> List.concat_map free_vars es
  | Range (a, b)
  | Binop (_, a, b)
  | And (a, b)
  | Or (a, b)
  | Comp_elem (a, b)
  | Comp_attr (a, b)
  | Comp_pi (a, b) -> free_vars a @@@ free_vars b
  | Neg a | Not a | Ddo a | Ordered a | Unordered a | Comp_text a
  | Comp_comment a | Virtual_constr a
  | Castable (a, _) | Cast (a, _) | Instance_of (a, _) | Treat_as (a, _) ->
    free_vars a
  | Schema_path _ -> []
  | Index_probe p ->
    free_vars p.ip_key @@@ free_vars p.ip_residual @@@ free_vars p.ip_fallback
  | If (c, t, e') -> free_vars c @@@ free_vars t @@@ free_vars e'
  | Call (_, args) -> List.concat_map free_vars args
  | Filter (p, preds) -> free_vars p @@@ List.concat_map free_vars preds
  | Path (p, steps) ->
    free_vars p
    @@@ List.concat_map (fun s -> List.concat_map free_vars s.preds) steps
  | Elem_constr (_, atts, content) ->
    List.concat_map (fun a -> List.concat_map free_vars a.attr_value) atts
    @@@ List.concat_map free_vars content
  | Quantified (_, binds, cond) ->
    let bound = List.map fst binds in
    (List.concat_map (fun (_, e') -> free_vars e') binds
     @@@ List.filter (fun v -> not (List.mem v bound)) (free_vars cond))
  | Flwor (clauses, ret) ->
    let rec go bound acc = function
      | [] ->
        acc @@@ List.filter (fun v -> not (List.mem v bound)) (free_vars ret)
      | For binds :: rest ->
        let acc =
          List.fold_left
            (fun acc (_, _, e') ->
              acc
              @@@ List.filter (fun v -> not (List.mem v bound)) (free_vars e'))
            acc binds
        in
        let bound =
          List.concat_map
            (fun (v, p, _) -> v :: Option.to_list p)
            binds
          @ bound
        in
        go bound acc rest
      | Let binds :: rest ->
        let acc =
          List.fold_left
            (fun acc (_, e') ->
              acc
              @@@ List.filter (fun v -> not (List.mem v bound)) (free_vars e'))
            acc binds
        in
        go (List.map fst binds @ bound) acc rest
      | Where c :: rest ->
        go bound
          (acc @@@ List.filter (fun v -> not (List.mem v bound)) (free_vars c))
          rest
      | Order_by keys :: rest ->
        go bound
          (acc
           @@@ List.concat_map
                 (fun (k, _) ->
                   List.filter (fun v -> not (List.mem v bound)) (free_vars k))
                 keys)
          rest
    in
    go [] [] clauses

let depends_on (e : expr) (vars : string list) =
  List.exists (fun v -> List.mem v vars) (free_vars e)
