(* Static analysis (paper §5): namespace resolution over the query
   prolog, variable-binding checks, and function resolution against the
   built-in library plus prolog-declared functions.  Static errors are
   reported before any data is touched. *)

open Sedna_util
open Xq_ast

let builtin_functions : (string * int list) list =
  (* name, accepted arities; a trailing -1 means "or more" *)
  [
    ("doc", [ 1 ]);
    ("document", [ 1 ]);
    ("collection", [ 1 ]);
    ("root", [ 0; 1 ]);
    ("count", [ 1 ]);
    ("sum", [ 1 ]);
    ("avg", [ 1 ]);
    ("min", [ 1 ]);
    ("max", [ 1 ]);
    ("empty", [ 1 ]);
    ("exists", [ 1 ]);
    ("not", [ 1 ]);
    ("true", [ 0 ]);
    ("false", [ 0 ]);
    ("boolean", [ 1 ]);
    ("string", [ 0; 1 ]);
    ("data", [ 1 ]);
    ("number", [ 0; 1 ]);
    ("string-length", [ 0; 1 ]);
    ("normalize-space", [ 0; 1 ]);
    ("upper-case", [ 1 ]);
    ("lower-case", [ 1 ]);
    ("concat", [ -1 ]);
    ("contains", [ 2 ]);
    ("starts-with", [ 2 ]);
    ("ends-with", [ 2 ]);
    ("substring", [ 2; 3 ]);
    ("substring-before", [ 2 ]);
    ("substring-after", [ 2 ]);
    ("string-join", [ 2 ]);
    ("translate", [ 3 ]);
    ("position", [ 0 ]);
    ("last", [ 0 ]);
    ("name", [ 0; 1 ]);
    ("local-name", [ 0; 1 ]);
    ("namespace-uri", [ 0; 1 ]);
    ("node-name", [ 1 ]);
    ("distinct-values", [ 1 ]);
    ("reverse", [ 1 ]);
    ("subsequence", [ 2; 3 ]);
    ("insert-before", [ 3 ]);
    ("remove", [ 2 ]);
    ("index-of", [ 2 ]);
    ("floor", [ 1 ]);
    ("ceiling", [ 1 ]);
    ("round", [ 1 ]);
    ("abs", [ 1 ]);
    ("zero-or-one", [ 1 ]);
    ("exactly-one", [ 1 ]);
    ("one-or-more", [ 1 ]);
    ("deep-equal", [ 2 ]);
    ("matches", [ 2 ]);
    ("replace", [ 3 ]);
    ("tokenize", [ 2 ]);
    ("id", [ 1 ]);
    ("doc-available", [ 1 ]);
    (* Sedna extensions *)
    ("index-scan", [ 2; 3 ]);
    ("schema", [ 1 ]);
    ("statistics", [ 0 ]);
    ("sedna-schema-path", [ -1 ]);
  ]

type env = {
  prolog : prolog;
  bound_vars : string list;
  functions : (string * int) list; (* declared name/arity *)
}

let fn_uri = "http://www.w3.org/2005/xpath-functions"
let xs_uri = "http://www.w3.org/2001/XMLSchema"

let resolve_name env ?(default_fn = false) (n : Xname.t) : Xname.t =
  if Xname.uri n <> "" then n
  else
    let p = Xname.prefix n in
    if p = "" then
      if default_fn then Xname.make ~uri:fn_uri (Xname.local n) else n
    else
      match List.assoc_opt p env.prolog.namespaces with
      | Some uri -> Xname.make ~prefix:p ~uri (Xname.local n)
      | None -> (
        match p with
        | "fn" -> Xname.make ~prefix:p ~uri:fn_uri (Xname.local n)
        | "xs" -> Xname.make ~prefix:p ~uri:xs_uri (Xname.local n)
        | "local" ->
          Xname.make ~prefix:p
            ~uri:"http://www.w3.org/2005/xquery-local-functions"
            (Xname.local n)
        | "xml" ->
          Xname.make ~prefix:p ~uri:"http://www.w3.org/XML/1998/namespace"
            (Xname.local n)
        | _ ->
          Error.raise_error Error.Xquery_static
            "undeclared namespace prefix %S" p)

let check_function env (n : Xname.t) (arity : int) =
  let local = Xname.local n in
  let is_builtin =
    (Xname.prefix n = "" || Xname.prefix n = "fn")
    &&
    match List.assoc_opt local builtin_functions with
    | Some arities -> List.mem arity arities || List.mem (-1) arities
    | None -> false
  in
  let is_declared = List.mem (local, arity) env.functions in
  let is_constructor_fn =
    (* xs:integer("5") style constructor functions *)
    Xname.prefix n = "xs" && arity = 1
  in
  if not (is_builtin || is_declared || is_constructor_fn) then
    Error.raise_error Error.Xquery_static
      "unknown function %s#%d" (Xname.to_string n) arity

(* Walk the expression, checking names and variable bindings. *)
let rec check env (e : expr) : unit =
  match e with
  | Int_lit _ | Dbl_lit _ | Str_lit _ | Empty_seq | Context_item
  | Schema_path _ -> ()
  | Index_probe p ->
    check env p.ip_key;
    check env p.ip_residual;
    check env p.ip_fallback
  | Var v ->
    if not (List.mem v env.bound_vars) then
      Error.raise_error Error.Xquery_static "unbound variable $%s" v
  | Sequence es -> List.iter (check env) es
  | Range (a, b) | Binop (_, a, b) | And (a, b) | Or (a, b)
  | Comp_elem (a, b) | Comp_attr (a, b) | Comp_pi (a, b) ->
    check env a;
    check env b
  | Neg a | Not a | Ddo a | Ordered a | Unordered a | Comp_text a
  | Comp_comment a | Virtual_constr a
  | Castable (a, _) | Cast (a, _) | Instance_of (a, _) | Treat_as (a, _) ->
    check env a
  | If (c, t, f) ->
    check env c;
    check env t;
    check env f
  | Call (n, args) ->
    check_function env (resolve_name env ~default_fn:true n) (List.length args);
    List.iter (check env) args
  | Filter (p, preds) ->
    check env p;
    List.iter (check env) preds
  | Path (p, steps) ->
    check env p;
    List.iter (fun s -> List.iter (check env) s.preds) steps
  | Elem_constr (_, atts, content) ->
    List.iter (fun a -> List.iter (check env) a.attr_value) atts;
    List.iter (check env) content
  | Quantified (_, binds, cond) ->
    List.iter (fun (_, e') -> check env e') binds;
    check { env with bound_vars = List.map fst binds @ env.bound_vars } cond
  | Flwor (clauses, ret) ->
    let env' =
      List.fold_left
        (fun env' c ->
          match c with
          | For binds ->
            List.iter (fun (_, _, e') -> check env' e') binds;
            {
              env' with
              bound_vars =
                List.concat_map (fun (v, p, _) -> v :: Option.to_list p) binds
                @ env'.bound_vars;
            }
          | Let binds ->
            List.iter (fun (_, e') -> check env' e') binds;
            { env' with bound_vars = List.map fst binds @ env'.bound_vars }
          | Where c' ->
            check env' c';
            env'
          | Order_by keys ->
            List.iter (fun (k, _) -> check env' k) keys;
            env')
        env clauses
    in
    check env' ret

(* Entry point: analyse prolog + body; returns the environment used by
   later phases. *)
let analyse (prolog : prolog) (body : expr) : env =
  let functions =
    List.map
      (fun f -> (Xname.local f.fn_name, List.length f.fn_params))
      prolog.functions
  in
  let env = { prolog; bound_vars = []; functions } in
  (* prolog variables see the ones declared before them *)
  let env =
    List.fold_left
      (fun env (v, e) ->
        check env e;
        { env with bound_vars = v :: env.bound_vars })
      env prolog.variables
  in
  (* function bodies *)
  List.iter
    (fun f ->
      check { env with bound_vars = f.fn_params @ env.bound_vars } f.fn_body)
    prolog.functions;
  check env body;
  env
