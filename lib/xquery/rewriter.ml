(* The optimizing rewriter (paper §5.1, §5.2.1).  Rule-based rewrites
   over the logical operation tree:

   1. DDO insertion + removal (§5.1.1): normalization wraps every path
      in an explicit distinct-document-order operation; the rewriter
      then removes the ones whose argument is provably ordered and
      duplicate-free, and the ones whose consumer needs neither order
      nor duplicates (effective-boolean-value contexts).
   2. Abbreviated descendant-or-self combining (§5.1.2):
      [//para] becomes [/descendant::para] unless the next step's
      predicates depend on context position or size.
   3. Nested-for laziness (§5.1.3): a for-clause binding sequence that
      does not depend on the iteration variables bound before it is
      hoisted into a let-clause evaluated once.
   4. Structural path extraction (§5.1.4): paths from a document node
      consisting solely of descending name steps with no predicates map
      to schema-resolved scans executed against the descriptive schema.
   5. Virtual element constructors (§5.2.1): constructors whose results
      are never navigated against identity/parent/order are marked
      virtual so the executor can avoid deep copies. *)

open Xq_ast

(* ---- position/size dependence (for //-combining and DDO in preds) ---- *)

let rec positional ~numeric (e : expr) : bool =
  match e with
  | Call (n, []) ->
    let l = Sedna_util.Xname.local n in
    l = "position" || l = "last"
  | Int_lit _ | Dbl_lit _ -> numeric (* numeric predicate = positional *)
  | Str_lit _ | Empty_seq | Context_item | Var _ | Schema_path _ -> false
  | Index_probe p ->
    positional ~numeric p.ip_key || positional ~numeric p.ip_residual
    || positional ~numeric p.ip_fallback
  | Sequence es -> List.exists (positional ~numeric) es
  | Range (a, b) | Binop (_, a, b) | And (a, b) | Or (a, b)
  | Comp_elem (a, b) | Comp_attr (a, b) | Comp_pi (a, b) ->
    positional ~numeric a || positional ~numeric b
  | Neg a | Not a | Ddo a | Ordered a | Unordered a | Comp_text a
  | Comp_comment a | Virtual_constr a
  | Castable (a, _) | Cast (a, _) | Instance_of (a, _) | Treat_as (a, _) ->
    positional ~numeric a
  | If (c, t, f) -> positional ~numeric c || positional ~numeric t || positional ~numeric f
  | Call (_, args) -> List.exists (positional ~numeric) args
  | Filter (p, preds) -> positional ~numeric p || List.exists (positional ~numeric) preds
  | Path (p, steps) ->
    positional ~numeric p
    || List.exists (fun s -> List.exists (positional ~numeric) s.preds) steps
  | Elem_constr (_, atts, content) ->
    List.exists (fun a -> List.exists (positional ~numeric) a.attr_value) atts
    || List.exists (positional ~numeric) content
  | Quantified (_, binds, cond) ->
    List.exists (fun (_, e') -> positional ~numeric e') binds || positional ~numeric cond
  | Flwor (clauses, ret) ->
    List.exists
      (function
        | For binds -> List.exists (fun (_, _, e') -> positional ~numeric e') binds
        | Let binds -> List.exists (fun (_, e') -> positional ~numeric e') binds
        | Where c -> positional ~numeric c
        | Order_by keys -> List.exists (fun (k, _) -> positional ~numeric k) keys)
      clauses
    || positional ~numeric ret

let uses_position = positional ~numeric:true

(* Strict variant: only explicit position()/last() calls count, numeric
   literals do not. *)
let calls_position = positional ~numeric:false

(* A whole predicate is positional if it may depend on context position
   or size: numeric-valued predicates select by position.  A predicate
   whose top is a comparison or boolean connective is boolean-valued,
   so only explicit position()/last() calls inside can make it
   positional — numeric literals there are plain values ([n = 50]). *)
let predicate_is_positional (p : expr) =
  match p with
  | Int_lit _ | Dbl_lit _ -> true
  | Binop ((Add | Sub | Mul | Div | Idiv | Mod), _, _) -> true
  | Binop
      ( ( Eq | Ne | Lt | Le | Gt | Ge | Gen_eq | Gen_ne | Gen_lt | Gen_le
        | Gen_gt | Gen_ge ),
        a,
        b ) ->
    calls_position a || calls_position b
  | And (a, b) | Or (a, b) -> calls_position a || calls_position b
  | Not a -> calls_position a
  | _ -> uses_position p

(* ---- rule 2: descendant-or-self combining ----------------------------- *)

let rec combine_dos_steps (steps : step list) : step list =
  match steps with
  | { axis = Descendant_or_self; test = Kind_any; preds = [] }
    :: ({ axis = Child; test; preds } as _next) :: rest
    when not (List.exists predicate_is_positional preds) ->
    combine_dos_steps ({ axis = Descendant; test; preds } :: rest)
  | { axis = Descendant_or_self; test = Kind_any; preds = [] }
    :: ({ axis = Attribute_axis; test; preds } as _next) :: rest
    when not (List.exists predicate_is_positional preds) ->
    (* //@a: descendant-or-self::node()/attribute::a =
       descendant-or-self elements' attributes; keep the pair *)
    { axis = Descendant_or_self; test = Kind_any; preds = [] }
    :: { axis = Attribute_axis; test; preds }
    :: combine_dos_steps rest
  | s :: rest -> s :: combine_dos_steps rest
  | [] -> []

(* ---- rule 4: structural path extraction -------------------------------- *)

let doc_name_of_init (e : expr) : string option =
  match e with
  | Call (n, [ Str_lit d ])
    when let l = Sedna_util.Xname.local n in
         l = "doc" || l = "document" ->
    Some d
  | _ -> None

let structural_steps (steps : step list) : (axis * Sedna_util.Xname.t) list option =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | { axis = (Child | Descendant) as a; test = Name_test n; preds = [] }
      :: rest -> go ((a, n) :: acc) rest
    | _ -> None
  in
  if steps = [] then None else go [] steps

(* ---- ordered/dedup property analysis (rule 1) --------------------------- *)

type props = { in_ddo : bool; disjoint : bool; single : bool }

let atomic_props = { in_ddo = true; disjoint = true; single = true }

type venv = (string * props) list

let rec props_of (env : venv) (e : expr) : props =
  match e with
  | Int_lit _ | Dbl_lit _ | Str_lit _ | Empty_seq | Context_item ->
    atomic_props
  | Var v -> (
    match List.assoc_opt v env with
    | Some p -> p
    | None -> { in_ddo = false; disjoint = false; single = false })
  | Call (n, _) ->
    let l = Sedna_util.Xname.local n in
    if List.mem l [ "doc"; "document"; "root"; "exactly-one"; "zero-or-one" ]
    then atomic_props
    else { in_ddo = false; disjoint = false; single = false }
  | Ddo x ->
    let p = props_of env x in
    { in_ddo = true; disjoint = false; single = p.single }
  | Schema_path _ -> { in_ddo = true; disjoint = false; single = false }
  | Index_probe _ ->
    (* B-tree order, not document order; multi-key probes may duplicate *)
    { in_ddo = false; disjoint = false; single = false }
  | Filter (p, _) -> props_of env p
  | Path (init, steps) ->
    let p0 = props_of env init in
    let state =
      if p0.single then { in_ddo = true; disjoint = true; single = true }
      else p0
    in
    List.fold_left
      (fun s (stp : step) ->
        match stp.axis with
        | Self -> s
        | Child | Attribute_axis ->
          { in_ddo = s.in_ddo && s.disjoint; disjoint = s.disjoint; single = false }
        | Descendant | Descendant_or_self ->
          { in_ddo = s.in_ddo && s.disjoint; disjoint = false; single = false }
        | Parent | Ancestor | Ancestor_or_self | Following_sibling
        | Preceding_sibling | Following | Preceding ->
          { in_ddo = false; disjoint = false; single = false })
      state steps
  | If (_, t, f) ->
    let a = props_of env t and b = props_of env f in
    {
      in_ddo = a.in_ddo && b.in_ddo;
      disjoint = a.disjoint && b.disjoint;
      single = a.single && b.single;
    }
  | Elem_constr _ | Comp_elem _ | Comp_attr _ | Comp_text _ | Comp_comment _
  | Comp_pi _ | Virtual_constr _ ->
    { in_ddo = true; disjoint = true; single = true }
  | Ordered x | Unordered x -> props_of env x
  | Neg _ | Not _ | And _ | Or _ | Binop _ | Range _ | Castable _ | Cast _
  | Instance_of _ | Treat_as _ ->
    { in_ddo = true; disjoint = true; single = true }
    (* scalar results *)
  | Sequence _ | Flwor _ | Quantified _ ->
    { in_ddo = false; disjoint = false; single = false }

(* ---- the main rewrite ----------------------------------------------------- *)

type need = Full | Ebv (* effective boolean value: order and dups ignored *)

let rec contains_context (e : expr) : bool =
  match e with
  | Context_item -> true
  | Int_lit _ | Dbl_lit _ | Str_lit _ | Empty_seq | Var _ | Schema_path _ ->
    false
  | Index_probe p ->
    (* the residual rebinds the context like a predicate does *)
    contains_context p.ip_key || contains_context p.ip_fallback
  | Sequence es -> List.exists contains_context es
  | Range (a, b) | Binop (_, a, b) | And (a, b) | Or (a, b)
  | Comp_elem (a, b) | Comp_attr (a, b) | Comp_pi (a, b) ->
    contains_context a || contains_context b
  | Neg a | Not a | Ddo a | Ordered a | Unordered a | Comp_text a
  | Comp_comment a | Virtual_constr a
  | Castable (a, _) | Cast (a, _) | Instance_of (a, _) | Treat_as (a, _) ->
    contains_context a
  | If (c, t, f) -> contains_context c || contains_context t || contains_context f
  | Call (_, args) -> List.exists contains_context args
  | Filter (p, _) -> contains_context p (* predicates rebind context *)
  | Path (p, _) -> contains_context p
  | Elem_constr (_, atts, content) ->
    List.exists (fun a -> List.exists contains_context a.attr_value) atts
    || List.exists contains_context content
  | Quantified (_, binds, _) ->
    List.exists (fun (_, e') -> contains_context e') binds
  | Flwor (clauses, _) ->
    List.exists
      (function
        | For binds -> List.exists (fun (_, _, e') -> contains_context e') binds
        | Let binds -> List.exists (fun (_, e') -> contains_context e') binds
        | Where c -> contains_context c
        | Order_by keys -> List.exists (fun (k, _) -> contains_context k) keys)
      clauses

let is_worth_hoisting (e : expr) : bool =
  (* hoisting a literal or a variable buys nothing *)
  match e with
  | Int_lit _ | Dbl_lit _ | Str_lit _ | Empty_seq | Var _ -> false
  | _ -> true

(* ---- normalization: insert DDO over paths -------------------------------- *)

let rec normalize (e : expr) : expr =
  match e with
  | Int_lit _ | Dbl_lit _ | Str_lit _ | Empty_seq | Context_item | Var _
  | Schema_path _ | Index_probe _ -> e
  | Path (init, steps) ->
    let steps' =
      List.map (fun s -> { s with preds = List.map normalize s.preds }) steps
    in
    if steps = [] then Path (normalize init, [])
    else Ddo (Path (normalize init, steps'))
  | Filter (p, preds) -> Filter (normalize p, List.map normalize preds)
  | Sequence es -> Sequence (List.map normalize es)
  | Range (a, b) -> Range (normalize a, normalize b)
  | Binop (op, a, b) -> Binop (op, normalize a, normalize b)
  | Neg a -> Neg (normalize a)
  | And (a, b) -> And (normalize a, normalize b)
  | Or (a, b) -> Or (normalize a, normalize b)
  | Not a -> Not (normalize a)
  | If (c, t, f) -> If (normalize c, normalize t, normalize f)
  | Call (n, args) -> Call (n, List.map normalize args)
  | Quantified (q, binds, cond) ->
    Quantified (q, List.map (fun (v, e') -> (v, normalize e')) binds, normalize cond)
  | Flwor (clauses, ret) ->
    Flwor
      ( List.map
          (function
            | For binds ->
              For (List.map (fun (v, p, e') -> (v, p, normalize e')) binds)
            | Let binds -> Let (List.map (fun (v, e') -> (v, normalize e')) binds)
            | Where c -> Where (normalize c)
            | Order_by keys ->
              Order_by (List.map (fun (k, d) -> (normalize k, d)) keys))
          clauses,
        normalize ret )
  | Elem_constr (n, atts, content) ->
    Elem_constr
      ( n,
        List.map (fun a -> { a with attr_value = List.map normalize a.attr_value }) atts,
        List.map normalize content )
  | Comp_elem (a, b) -> Comp_elem (normalize a, normalize b)
  | Comp_attr (a, b) -> Comp_attr (normalize a, normalize b)
  | Comp_text a -> Comp_text (normalize a)
  | Comp_comment a -> Comp_comment (normalize a)
  | Comp_pi (a, b) -> Comp_pi (normalize a, normalize b)
  | Ddo a -> Ddo (normalize a)
  | Ordered a -> Ordered (normalize a)
  | Unordered a -> Unordered (normalize a)
  | Virtual_constr a -> Virtual_constr (normalize a)
  | Castable (a, t) -> Castable (normalize a, t)
  | Cast (a, t) -> Cast (normalize a, t)
  | Instance_of (a, t) -> Instance_of (normalize a, t)
  | Treat_as (a, t) -> Treat_as (normalize a, t)

(* ---- rule 5: virtual constructor marking ---------------------------------- *)

(* [in_output] = the value flows straight to the result (or into another
   constructor's content): identity/parent/order of the construct are
   unobservable, so stored content may be referenced instead of copied. *)
let rec mark_virtual ~in_output (e : expr) : expr =
  match e with
  | Elem_constr (n, atts, content) ->
    let c = Elem_constr (n, atts, List.map (mark_virtual ~in_output:true) content) in
    if in_output then Virtual_constr c else c
  | Comp_elem (a, b) ->
    let c = Comp_elem (a, mark_virtual ~in_output:true b) in
    if in_output then Virtual_constr c else c
  | Sequence es -> Sequence (List.map (mark_virtual ~in_output) es)
  | If (c, t, f) ->
    If (c, mark_virtual ~in_output t, mark_virtual ~in_output f)
  | Flwor (clauses, ret) -> Flwor (clauses, mark_virtual ~in_output ret)
  | Ddo a -> Ddo (mark_virtual ~in_output:false a)
  | e -> e

(* ---- rule 6: user-function inlining (paper §5.1, reference [11]) ----- *)

(* Replace calls to non-recursive prolog functions with a let-bound
   copy of their body: [local:f(E1, E2)] becomes
   [let $p1 := E1, $p2 := E2 return body].  Both evaluate the arguments
   eagerly, so the semantics are preserved; bodies that mention the
   context item are excluded (a function body has no context item, but
   an inlined copy would capture the caller's). *)

let map_expr (f : expr -> expr) (e : expr) : expr =
  (* one-level structural map *)
  match e with
  | Int_lit _ | Dbl_lit _ | Str_lit _ | Empty_seq | Context_item | Var _
  | Schema_path _ -> e
  | Index_probe p ->
    Index_probe
      {
        p with
        ip_key = f p.ip_key;
        ip_residual = f p.ip_residual;
        ip_fallback = f p.ip_fallback;
      }
  | Sequence es -> Sequence (List.map f es)
  | Range (a, b) -> Range (f a, f b)
  | Binop (op, a, b) -> Binop (op, f a, f b)
  | Neg a -> Neg (f a)
  | And (a, b) -> And (f a, f b)
  | Or (a, b) -> Or (f a, f b)
  | Not a -> Not (f a)
  | If (c, t, e') -> If (f c, f t, f e')
  | Call (n, args) -> Call (n, List.map f args)
  | Filter (p, preds) -> Filter (f p, List.map f preds)
  | Path (p, steps) ->
    Path (f p, List.map (fun s -> { s with preds = List.map f s.preds }) steps)
  | Elem_constr (n, atts, content) ->
    Elem_constr
      ( n,
        List.map (fun a -> { a with attr_value = List.map f a.attr_value }) atts,
        List.map f content )
  | Comp_elem (a, b) -> Comp_elem (f a, f b)
  | Comp_attr (a, b) -> Comp_attr (f a, f b)
  | Comp_text a -> Comp_text (f a)
  | Comp_comment a -> Comp_comment (f a)
  | Comp_pi (a, b) -> Comp_pi (f a, f b)
  | Ddo a -> Ddo (f a)
  | Ordered a -> Ordered (f a)
  | Unordered a -> Unordered (f a)
  | Virtual_constr a -> Virtual_constr (f a)
  | Castable (a, t) -> Castable (f a, t)
  | Cast (a, t) -> Cast (f a, t)
  | Instance_of (a, t) -> Instance_of (f a, t)
  | Treat_as (a, t) -> Treat_as (f a, t)
  | Quantified (q, binds, cond) ->
    Quantified (q, List.map (fun (v, e') -> (v, f e')) binds, f cond)
  | Flwor (clauses, ret) ->
    Flwor
      ( List.map
          (function
            | For binds -> For (List.map (fun (v, p, e') -> (v, p, f e')) binds)
            | Let binds -> Let (List.map (fun (v, e') -> (v, f e')) binds)
            | Where c -> Where (f c)
            | Order_by keys -> Order_by (List.map (fun (k, d) -> (f k, d)) keys))
          clauses,
        f ret )

let rec calls_of (e : expr) : string list =
  match e with
  | Call (n, args) ->
    Sedna_util.Xname.local n :: List.concat_map calls_of args
  | e ->
    let acc = ref [] in
    ignore
      (map_expr
         (fun sub ->
           acc := calls_of sub @ !acc;
           sub)
         e);
    !acc

let inline_functions (funs : fun_def list) (e : expr) : expr =
  (* a function is inlinable when it never reaches itself through the
     call graph and its body does not use the context item *)
  let by_name =
    List.map (fun f -> (Sedna_util.Xname.local f.fn_name, f)) funs
  in
  let rec reaches seen from target =
    List.mem target (List.sort_uniq compare (calls_from from))
    || List.exists
         (fun callee ->
           (not (List.mem callee seen))
           && List.mem_assoc callee by_name
           && reaches (callee :: seen) callee target)
         (calls_from from)
  and calls_from name =
    match List.assoc_opt name by_name with
    | Some f -> calls_of f.fn_body
    | None -> []
  in
  let inlinable name =
    match List.assoc_opt name by_name with
    | Some f ->
      (not (reaches [ name ] name name)) && not (contains_context f.fn_body)
    | None -> false
  in
  let rec go depth e =
    if depth = 0 then e
    else
      match e with
      | Call (n, args) when inlinable (Sedna_util.Xname.local n) ->
        let f = List.assoc (Sedna_util.Xname.local n) by_name in
        let args = List.map (go depth) args in
        let body = go (depth - 1) f.fn_body in
        if f.fn_params = [] then body
        else Flwor ([ Let (List.combine f.fn_params args) ], body)
      | e -> map_expr (go depth) e
  in
  go 8 e

(* ---- options and entry point ------------------------------------------------ *)

type options = {
  remove_ddo : bool;
  combine_descendant : bool; (* //-combining *)
  extract_structural : bool;
  hoist_for : bool;
  virtual_constructors : bool;
  inline_functions : bool;
  use_indexes : bool; (* automatic index selection *)
  index_min_count : int;
    (* pushdown only when the candidate schema nodes together hold at
       least this many data nodes — below it a block-chain scan is
       cheaper than a B-tree descent *)
}

let default_options =
  {
    remove_ddo = true;
    combine_descendant = true;
    extract_structural = true;
    hoist_for = true;
    virtual_constructors = true;
    inline_functions = true;
    use_indexes = true;
    index_min_count = 16;
  }

let no_options =
  {
    remove_ddo = false;
    combine_descendant = false;
    extract_structural = false;
    hoist_for = false;
    virtual_constructors = false;
    inline_functions = false;
    use_indexes = false;
    index_min_count = 16;
  }

(* ---- rule 7: automatic index selection ---------------------------------- *)

(* A comparison predicate [path op key] maps to a B-tree probe mode.
   [flipped] = the key is on the left ([key op path]). *)
let probe_mode_of (op : binop) ~flipped : probe_mode option =
  match (op, flipped) with
  | (Eq | Gen_eq), _ -> Some Probe_eq
  | (Ge | Gen_ge), false | (Le | Gen_le), true -> Some Probe_ge
  | (Gt | Gen_gt), false | (Lt | Gen_lt), true -> Some Probe_gt
  | (Le | Gen_le), false | (Ge | Gen_ge), true -> Some Probe_le
  | (Lt | Gen_lt), false | (Gt | Gen_gt), true -> Some Probe_lt
  | _ -> None

(* Numeric comparisons adapt untyped values by parsing them as numbers,
   with NaN for non-numeric text — and NaN compares below every number,
   so [path <= k] holds for non-numeric values that a number index does
   not contain.  Only the modes whose scan semantics agree with the
   index contents are pushed down per key kind. *)
let mode_fits_kind (kind : Sedna_core.Catalog.index_kind) (mode : probe_mode) =
  match kind with
  | Sedna_core.Catalog.String_index -> true
  | Sedna_core.Catalog.Number_index -> (
    match mode with
    | Probe_eq | Probe_ge | Probe_gt -> true
    | Probe_le | Probe_lt -> false)

(* The relative key path of a predicate side: child element name steps,
   optionally ending in an attribute step, with no predicates — the
   shape CREATE INDEX ... BY accepts. *)
let key_path_of (e : expr) : string list option =
  match e with
  | Path (Context_item, steps) when steps <> [] ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | [ { axis = Attribute_axis; test = Kind_attribute (Some n); preds = [] } ]
        -> Some (List.rev (("@" ^ Sedna_util.Xname.local n) :: acc))
      | { axis = Child; test = Name_test n; preds = [] } :: rest ->
        go (Sedna_util.Xname.local n :: acc) rest
      | _ -> None
    in
    go [] steps
  | _ -> None

(* Leading structural steps: descending name steps without predicates. *)
let structural_prefix (steps : step list) :
    (axis * Sedna_util.Xname.t) list option =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | { axis = (Child | Descendant) as a; test = Name_test n; preds = [] }
      :: rest -> go ((a, n) :: acc) rest
    | _ -> None
  in
  go [] steps

(* Try to rewrite [Path (init, steps)] — with steps and predicates
   already rewritten — around an index probe.  Fires when:
   - the path starts at doc("D") with descending predicate-free name
     steps up to the first step that carries predicates;
   - that step carries exactly one predicate, a comparison between a
     relative key path and a context-free key expression;
   - the schema nodes the path reaches at that step hold enough data
     nodes for pushdown to pay (cardinality gate on
     [Catalog.node_count]); and
   - some index on D covers exactly those schema nodes with the same
     key path and a kind compatible with the comparison's probe mode.
   Steps after the predicate step are re-applied on top of the probe.
   The original predicate is kept as a residual filter, and the
   unrewritten path as a runtime fallback, so the probe is always
   semantically safe. *)
let try_index_rewrite (cat : Sedna_core.Catalog.t) (opts : options)
    (init : expr) (steps : step list) : expr option =
  let module C = Sedna_core.Catalog in
  match doc_name_of_init init with
  | None -> None
  | Some doc_name -> (
    (* split at the first step carrying predicates *)
    let rec split acc = function
      | [] -> None
      | ({ preds = []; _ } as s) :: rest -> split (s :: acc) rest
      | s :: rest -> Some (List.rev acc, s, rest)
    in
    match split [] steps with
    | Some
        ( prefix_steps,
          ({ axis = (Child | Descendant) as probe_axis;
             test = Name_test probe_name;
             preds = [ (Binop (op, lhs, rhs) as pred) ];
           } as probe_step),
          suffix ) -> (
      let pick ~flipped path_side value_side =
        match (key_path_of path_side, probe_mode_of op ~flipped) with
        | Some kp, Some mode
          when (not (contains_context value_side))
               && not (calls_position value_side) ->
          Some (kp, mode, value_side)
        | _ -> None
      in
      let candidate =
        match pick ~flipped:false lhs rhs with
        | Some c -> Some c
        | None -> pick ~flipped:true rhs lhs
      in
      match (candidate, structural_prefix prefix_steps) with
      | Some (key_path, mode, key_expr), Some prefix -> (
        match C.find_document cat doc_name with
        | None -> None
        | Some d ->
          let root = C.snode_by_id cat d.C.schema_root_id in
          let qset =
            C.resolve_steps cat ~root
              (List.map
                 (fun (a, n) -> (a = Descendant, n))
                 (prefix @ [ (probe_axis, probe_name) ]))
          in
          if qset = [] then None
          else begin
            let total =
              List.fold_left (fun a (s : C.snode) -> a + s.C.node_count) 0 qset
            in
            if total < opts.index_min_count then None
            else
              let qids = List.map (fun (s : C.snode) -> s.C.id) qset in
              C.indexes_for_document cat doc_name
              |> List.find_map (fun (def : C.index_def) ->
                     if
                       def.C.idx_key_path = key_path
                       && mode_fits_kind def.C.idx_kind mode
                       && List.map
                            (fun (s : C.snode) -> s.C.id)
                            (C.index_target_snodes cat def)
                          = qids
                     then
                       let probe =
                         Index_probe
                           {
                             ip_index = def.C.idx_name;
                             ip_doc = doc_name;
                             ip_mode = mode;
                             ip_key = key_expr;
                             ip_residual = pred;
                             ip_fallback =
                               Path (init, prefix_steps @ [ probe_step ]);
                           }
                       in
                       Some
                         (if suffix = [] then probe else Path (probe, suffix))
                     else None)
          end)
      | _ -> None)
    | _ -> None)

(* A rewrite pass with rules disabled replaces the corresponding
   transformation with identity; normalization (DDO insertion) always
   runs so that un-optimized plans carry their DDO operations.
   [catalog] enables automatic index selection (rule 7): without it the
   rewriter has no index definitions or cardinalities to consult. *)
let rewrite_with ?catalog (opts : options) (e : expr) : expr =
  let e = normalize e in
  (* The main pass is monolithic; options gate each rule inside. *)
  let rec gated env need e =
    match e with
    | Ddo x ->
      let x' = gated env Full x in
      if not opts.remove_ddo then Ddo x'
      else if need = Ebv then x'
      else if (props_of env x').in_ddo then x'
      else Ddo x'
    | Path (init, steps) ->
      let init' = gated env Full init in
      let steps =
        if opts.combine_descendant then combine_dos_steps steps else steps
      in
      let steps =
        List.map
          (fun s ->
            { s with
              preds =
                List.map
                  (fun p ->
                    if predicate_is_positional p then gated env Full p
                    else gated env Ebv p)
                  s.preds })
          steps
      in
      let indexed =
        match catalog with
        | Some cat when opts.use_indexes ->
          try_index_rewrite cat opts init' steps
        | _ -> None
      in
      (match indexed with
       | Some probe -> probe
       | None ->
         if opts.extract_structural then
           match (doc_name_of_init init', structural_steps steps) with
           | Some doc, Some named -> Schema_path (doc, named)
           | _ -> Path (init', steps)
         else Path (init', steps))
    | Flwor (clauses0, ret) ->
      let clauses =
        if not opts.hoist_for then clauses0
        else begin
          let fresh =
            let c = ref 0 in
            fun () ->
              incr c;
              Printf.sprintf "#lazy%d" !c
          in
          let rec hoist bound acc hoisted = function
            | [] -> (List.rev acc, List.rev hoisted)
            | For binds :: rest ->
              let binds', new_hoists =
                List.fold_left
                  (fun (bs, hs) (v, p, e') ->
                    if
                      bound <> []
                      && (not (depends_on e' bound))
                      && (not (contains_context e'))
                      && is_worth_hoisting e'
                    then begin
                      let tmp = fresh () in
                      ((v, p, Var tmp) :: bs, (tmp, e') :: hs)
                    end
                    else ((v, p, e') :: bs, hs))
                  ([], []) binds
              in
              let bound' =
                List.concat_map (fun (v, p, _) -> v :: Option.to_list p) binds
                @ bound
              in
              hoist bound'
                (For (List.rev binds') :: acc)
                (List.rev_append new_hoists hoisted)
                rest
            | (Let binds as c) :: rest ->
              hoist (List.map fst binds @ bound) (c :: acc) hoisted rest
            | c :: rest -> hoist bound (c :: acc) hoisted rest
          in
          let clauses, hoisted = hoist [] [] [] clauses0 in
          if hoisted = [] then clauses else Let hoisted :: clauses
        end
      in
      let env', clauses =
        List.fold_left
          (fun (env, cs) c ->
            match c with
            | For binds ->
              let binds =
                List.map (fun (v, p, e') -> (v, p, gated env Full e')) binds
              in
              let env =
                List.concat_map
                  (fun (v, p, _) ->
                    (v, atomic_props)
                    :: (match p with
                        | Some pv -> [ (pv, atomic_props) ]
                        | None -> []))
                  binds
                @ env
              in
              (env, For binds :: cs)
            | Let binds ->
              let binds = List.map (fun (v, e') -> (v, gated env Full e')) binds in
              let env = List.map (fun (v, e') -> (v, props_of env e')) binds @ env in
              (env, Let binds :: cs)
            | Where c' -> (env, Where (gated env Ebv c') :: cs)
            | Order_by keys ->
              (env, Order_by (List.map (fun (k, d) -> (gated env Full k, d)) keys) :: cs))
          (env, []) clauses
      in
      Flwor (List.rev clauses, gated env' need ret)
    | e -> rewrite_shallow env need e gated
  and rewrite_shallow env need e k =
    (* dispatch structurally, recursing through [k] *)
    match e with
    | Int_lit _ | Dbl_lit _ | Str_lit _ | Empty_seq | Context_item | Var _
    | Schema_path _ | Index_probe _ -> e
    | Sequence es -> Sequence (List.map (k env Full) es)
    | Range (a, b) -> Range (k env Full a, k env Full b)
    | Binop (((Gen_eq | Gen_ne | Gen_lt | Gen_le | Gen_gt | Gen_ge) as op), a, b)
      -> Binop (op, k env Ebv a, k env Ebv b)
    | Binop (op, a, b) -> Binop (op, k env Full a, k env Full b)
    | Neg a -> Neg (k env Full a)
    | And (a, b) -> And (k env Ebv a, k env Ebv b)
    | Or (a, b) -> Or (k env Ebv a, k env Ebv b)
    | Not a -> Not (k env Ebv a)
    | If (c, t, f) -> If (k env Ebv c, k env need t, k env need f)
    | Call (n, args) ->
      let l = Sedna_util.Xname.local n in
      if l = "not" && List.length args = 1 then Not (k env Ebv (List.hd args))
      else if List.mem l [ "boolean"; "exists"; "empty" ] then
        Call (n, List.map (k env Ebv) args)
      else Call (n, List.map (k env Full) args)
    | Filter (p, preds) ->
      Filter
        ( k env Full p,
          List.map
            (fun pr ->
              if predicate_is_positional pr then k env Full pr else k env Ebv pr)
            preds )
    | Quantified (q, binds, cond) ->
      let binds = List.map (fun (v, e') -> (v, k env Ebv e')) binds in
      let env' = List.map (fun (v, _) -> (v, atomic_props)) binds @ env in
      Quantified (q, binds, k env' Ebv cond)
    | Elem_constr (n, atts, content) ->
      Elem_constr
        ( n,
          List.map
            (fun a -> { a with attr_value = List.map (k env Full) a.attr_value })
            atts,
          List.map (k env Full) content )
    | Comp_elem (a, b) -> Comp_elem (k env Full a, k env Full b)
    | Comp_attr (a, b) -> Comp_attr (k env Full a, k env Full b)
    | Comp_text a -> Comp_text (k env Full a)
    | Comp_comment a -> Comp_comment (k env Full a)
    | Comp_pi (a, b) -> Comp_pi (k env Full a, k env Full b)
    | Ordered a -> Ordered (k env need a)
    | Unordered a -> Unordered (k env Ebv a)
    | Virtual_constr a -> Virtual_constr (k env need a)
    | Castable (a, t) -> Castable (k env Full a, t)
    | Cast (a, t) -> Cast (k env Full a, t)
    | Instance_of (a, t) -> Instance_of (k env Full a, t)
    | Treat_as (a, t) -> Treat_as (k env Full a, t)
    | Ddo _ | Path _ | Flwor _ -> assert false
  in
  let e = gated [] Full e in
  if opts.virtual_constructors then mark_virtual ~in_output:true e else e

let optimize e = rewrite_with default_options e

(* count index probes in a tree (tests, benches, \explain) *)
let rec count_index_probes (e : expr) : int =
  match e with
  | Index_probe p ->
    1 + count_index_probes p.ip_key
    + count_index_probes p.ip_residual
    + count_index_probes p.ip_fallback
  | e ->
    let acc = ref 0 in
    ignore
      (map_expr
         (fun sub ->
           acc := !acc + count_index_probes sub;
           sub)
         e);
    !acc

(* count DDO operations remaining in a tree (tests, benches) *)
let rec count_ddo (e : expr) : int =
  match e with
  | Ddo a -> 1 + count_ddo a
  | Int_lit _ | Dbl_lit _ | Str_lit _ | Empty_seq | Context_item | Var _
  | Schema_path _ -> 0
  | Index_probe p ->
    count_ddo p.ip_key + count_ddo p.ip_residual + count_ddo p.ip_fallback
  | Sequence es -> List.fold_left (fun a e' -> a + count_ddo e') 0 es
  | Range (a, b) | Binop (_, a, b) | And (a, b) | Or (a, b)
  | Comp_elem (a, b) | Comp_attr (a, b) | Comp_pi (a, b) ->
    count_ddo a + count_ddo b
  | Neg a | Not a | Ordered a | Unordered a | Comp_text a | Comp_comment a
  | Virtual_constr a
  | Castable (a, _) | Cast (a, _) | Instance_of (a, _) | Treat_as (a, _) ->
    count_ddo a
  | If (c, t, f) -> count_ddo c + count_ddo t + count_ddo f
  | Call (_, args) -> List.fold_left (fun a e' -> a + count_ddo e') 0 args
  | Filter (p, preds) ->
    count_ddo p + List.fold_left (fun a e' -> a + count_ddo e') 0 preds
  | Path (p, steps) ->
    count_ddo p
    + List.fold_left
        (fun a s -> a + List.fold_left (fun a e' -> a + count_ddo e') 0 s.preds)
        0 steps
  | Elem_constr (_, atts, content) ->
    List.fold_left
      (fun a at -> a + List.fold_left (fun a e' -> a + count_ddo e') 0 at.attr_value)
      0 atts
    + List.fold_left (fun a e' -> a + count_ddo e') 0 content
  | Quantified (_, binds, cond) ->
    List.fold_left (fun a (_, e') -> a + count_ddo e') 0 binds + count_ddo cond
  | Flwor (clauses, ret) ->
    List.fold_left
      (fun a c ->
        a
        +
        match c with
        | For binds -> List.fold_left (fun a (_, _, e') -> a + count_ddo e') 0 binds
        | Let binds -> List.fold_left (fun a (_, e') -> a + count_ddo e') 0 binds
        | Where c' -> count_ddo c'
        | Order_by keys -> List.fold_left (fun a (k, _) -> a + count_ddo k) 0 keys)
      0 clauses
    + count_ddo ret
