(* Pretty-printer for the logical operation tree: what the CLI's
   \explain shows.  Makes the rewriter's work visible — DDO operations,
   schema paths, virtual constructors, hoisted lets. *)

open Xq_ast

let axis_name = function
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Self -> "self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Ancestor_or_self -> "ancestor-or-self"
  | Following_sibling -> "following-sibling"
  | Preceding_sibling -> "preceding-sibling"
  | Following -> "following"
  | Preceding -> "preceding"
  | Attribute_axis -> "attribute"

let test_name = function
  | Name_test n -> Sedna_util.Xname.to_string n
  | Wildcard -> "*"
  | Kind_any -> "node()"
  | Kind_text -> "text()"
  | Kind_comment -> "comment()"
  | Kind_pi None -> "processing-instruction()"
  | Kind_pi (Some t) -> Printf.sprintf "processing-instruction(%s)" t
  | Kind_element None -> "element()"
  | Kind_element (Some n) ->
    Printf.sprintf "element(%s)" (Sedna_util.Xname.to_string n)
  | Kind_attribute None -> "attribute()"
  | Kind_attribute (Some n) ->
    Printf.sprintf "attribute(%s)" (Sedna_util.Xname.to_string n)
  | Kind_document -> "document-node()"

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "div" | Idiv -> "idiv"
  | Mod -> "mod"
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"
  | Gen_eq -> "=" | Gen_ne -> "!=" | Gen_lt -> "<" | Gen_le -> "<="
  | Gen_gt -> ">" | Gen_ge -> ">="
  | Is -> "is" | Precedes -> "<<" | Follows -> ">>"
  | Union -> "union" | Intersect -> "intersect" | Except -> "except"

let rec pp ?(indent = 0) buf (e : expr) =
  let pad = String.make (2 * indent) ' ' in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (pad ^ s ^ "\n")) fmt in
  let child e = pp ~indent:(indent + 1) buf e in
  match e with
  | Int_lit i -> line "int %d" i
  | Dbl_lit f -> line "double %g" f
  | Str_lit s -> line "string %S" s
  | Empty_seq -> line "empty-sequence"
  | Context_item -> line "context-item"
  | Var v -> line "var $%s" v
  | Sequence es ->
    line "sequence";
    List.iter child es
  | Range (a, b) ->
    line "range";
    child a;
    child b
  | Binop (op, a, b) ->
    line "op %s" (binop_name op);
    child a;
    child b
  | Neg a ->
    line "negate";
    child a
  | And (a, b) ->
    line "and";
    child a;
    child b
  | Or (a, b) ->
    line "or";
    child a;
    child b
  | Not a ->
    line "not";
    child a
  | If (c, t, f) ->
    line "if";
    child c;
    line "then";
    child t;
    line "else";
    child f
  | Ddo a ->
    line "DDO  (distinct-document-order)";
    child a
  | Ordered a ->
    line "ordered";
    child a
  | Unordered a ->
    line "unordered";
    child a
  | Schema_path (doc, steps) ->
    line "SCHEMA-PATH doc(%S) %s  (resolved on the descriptive schema)" doc
      (String.concat "/"
         (List.map
            (fun (a, n) ->
              Printf.sprintf "%s::%s" (axis_name a) (Sedna_util.Xname.to_string n))
            steps))
  | Index_probe p ->
    line "INDEX-PROBE %S mode=%s  (automatic index selection, doc %S)"
      p.ip_index
      (match p.ip_mode with
       | Probe_eq -> "EQ"
       | Probe_ge -> "GE"
       | Probe_le -> "LE"
       | Probe_gt -> "GT"
       | Probe_lt -> "LT")
      p.ip_doc;
    line "  key";
    pp ~indent:(indent + 2) buf p.ip_key;
    line "  residual";
    pp ~indent:(indent + 2) buf p.ip_residual
  | Path (init, steps) ->
    line "path";
    child init;
    List.iter
      (fun (s : step) ->
        line "  step %s::%s%s" (axis_name s.axis) (test_name s.test)
          (if s.preds = [] then ""
           else Printf.sprintf "  [%d predicate(s)]" (List.length s.preds));
        List.iter (fun p -> pp ~indent:(indent + 2) buf p) s.preds)
      steps
  | Filter (p, preds) ->
    line "filter  [%d predicate(s)]" (List.length preds);
    child p;
    List.iter child preds
  | Call (n, args) ->
    line "call %s#%d" (Sedna_util.Xname.to_string n) (List.length args);
    List.iter child args
  | Quantified (q, binds, cond) ->
    line "%s" (match q with Some_q -> "some" | Every_q -> "every");
    List.iter
      (fun (v, e') ->
        line "  in $%s" v;
        pp ~indent:(indent + 2) buf e')
      binds;
    line "satisfies";
    child cond
  | Flwor (clauses, ret) ->
    line "flwor";
    List.iter
      (function
        | For binds ->
          List.iter
            (fun (v, p, e') ->
              line "  for $%s%s" v
                (match p with Some pv -> Printf.sprintf " at $%s" pv | None -> "");
              pp ~indent:(indent + 2) buf e')
            binds
        | Let binds ->
          List.iter
            (fun (v, e') ->
              line "  let $%s" v;
              pp ~indent:(indent + 2) buf e')
            binds
        | Where c ->
          line "  where";
          pp ~indent:(indent + 2) buf c
        | Order_by keys ->
          line "  order-by";
          List.iter (fun (k, _) -> pp ~indent:(indent + 2) buf k) keys)
      clauses;
    line "return";
    child ret
  | Elem_constr (n, atts, content) ->
    line "element-constructor <%s> (%d attrs)" (Sedna_util.Xname.to_string n)
      (List.length atts);
    List.iter child content
  | Virtual_constr a ->
    line "VIRTUAL  (no deep copies; result not navigated)";
    child a
  | Comp_elem (a, b) ->
    line "computed-element";
    child a;
    child b
  | Comp_attr (a, b) ->
    line "computed-attribute";
    child a;
    child b
  | Comp_text a ->
    line "computed-text";
    child a
  | Comp_comment a ->
    line "computed-comment";
    child a
  | Comp_pi (a, b) ->
    line "computed-pi";
    child a;
    child b
  | Castable (a, t) ->
    line "castable as %s" t;
    child a
  | Cast (a, t) ->
    line "cast as %s" t;
    child a
  | Instance_of (a, t) ->
    line "instance of %s" t;
    child a
  | Treat_as (a, t) ->
    line "treat as %s" t;
    child a

let to_string (e : expr) : string =
  let buf = Buffer.create 256 in
  pp buf e;
  Buffer.contents buf

(* \explain: parse, show the raw logical tree and the optimized one *)
let explain ?catalog ?(options = Rewriter.default_options) (query : string) :
    string =
  let prolog, e = Xq_parser.parse_query query in
  let normalized = Rewriter.normalize e in
  let e' =
    if options.Rewriter.inline_functions then
      Rewriter.inline_functions prolog.functions e
    else e
  in
  let optimized = Rewriter.rewrite_with ?catalog options e' in
  Printf.sprintf
    "-- logical tree (normalized, %d DDO op(s)) --\n%s\n-- after rewriting (%d DDO op(s)) --\n%s"
    (Rewriter.count_ddo normalized)
    (to_string normalized)
    (Rewriter.count_ddo optimized)
    (to_string optimized)
