(* Deterministic network fault injection.

   The wire layer ({!Wire}) calls {!on_send} / {!on_recv} around every
   length-prefixed frame and {!on_accept} for every accepted
   connection.  Like {!Fault}'s crash sites, each call is a cheap
   counter bump until a policy is armed; then the triggering hit
   injects network weather:

     drop        the frame silently vanishes (sender believes it went)
     dup         the frame is transmitted twice
     torn        only a prefix of the frame is written, then the
                 connection is killed — the peer sees EOF mid-frame
     delay=MS    the frame is held for MS milliseconds

   plus *partitions*, which are not per-frame policies but a set of
   directed role pairs: while ["primary" -> "standby"] is partitioned,
   every send on a connection registered with those roles blocks until
   the partition heals — modelling TCP retransmission during a link
   failure rather than byte loss.  Heartbeat timeouts above the wire
   decide when a blocked peer counts as dead.

   Triggers reuse {!Fault.Trigger} (same [@N]/[@N+]/[%P/SEED] grammar,
   same LCG), so a seeded schedule replays identically.  Armed via
   [SEDNA_NETFAULT] or the [\netfaults] CLI. *)

module Trigger = Fault.Trigger

type action = Drop | Dup | Torn | Delay of float (* seconds *)

type policy = { action : action; trigger : Trigger.t }

type verdict = Proceed | Drop_frame | Dup_frame | Torn_frame of int

let action_name = function
  | Drop -> "drop"
  | Dup -> "dup"
  | Torn -> "torn"
  | Delay s -> Printf.sprintf "delay=%g" (s *. 1000.)

let policy_to_string p = action_name p.action ^ Trigger.to_string p.trigger

type site = {
  name : string;
  mutable armed : (policy * Trigger.state) option;
  hits : int ref;
}

let mk name = { name; armed = None; hits = Counters.cell name }

(* the three sites are fixed — no open registry like Fault's *)
let send_site = mk Counters.net_send
let recv_site = mk Counters.net_recv
let accept_site = mk Counters.net_accept
let sites = [ send_site; recv_site; accept_site ]
let injected_cell = Counters.cell Counters.net_injected

let find name = List.find_opt (fun s -> s.name = name) sites

(* ---- connection roles and partitions --------------------------------- *)

(* Every wire connection may register who it is and who it talks to
   ("client" -> "server", "standby" -> "primary", ...).  Partitions
   are directed pairs of roles; a send or recv on a registered fd
   whose direction is partitioned blocks until healed. *)

let mu = Mutex.create ()
let roles : (Unix.file_descr, string * string) Hashtbl.t = Hashtbl.create 16
let parts : (string * string) list ref = ref []

(* fds whose partition-block must end NOW: set by the owner of a
   connection that is being shut down while its direction is
   partitioned (otherwise stop/promote would deadlock waiting on the
   thread parked in {!wait_heal}).  The unblocked I/O then fails at the
   syscall on the shut-down socket, which the wire layer already
   normalizes.  Cleared on (re-)register: fd numbers are reused. *)
let interrupts : (Unix.file_descr, unit) Hashtbl.t = Hashtbl.create 4

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let register fd ~local ~peer =
  locked (fun () ->
      Hashtbl.remove interrupts fd;
      Hashtbl.replace roles fd (local, peer))

let unregister fd =
  locked (fun () ->
      Hashtbl.remove interrupts fd;
      Hashtbl.remove roles fd)

let interrupt fd = locked (fun () -> Hashtbl.replace interrupts fd ())
let interrupted fd = locked (fun () -> Hashtbl.mem interrupts fd)

let partition ?(both = false) ~from_role ~to_role () =
  locked (fun () ->
      let add p = if not (List.mem p !parts) then parts := p :: !parts in
      add (from_role, to_role);
      if both then add (to_role, from_role))

let heal ?(both = false) ~from_role ~to_role () =
  locked (fun () ->
      let dead p =
        p = (from_role, to_role) || (both && p = (to_role, from_role))
      in
      parts := List.filter (fun p -> not (dead p)) !parts)

let heal_all () = locked (fun () -> parts := [])
let partitions () = locked (fun () -> List.rev !parts)

let direction fd = locked (fun () -> Hashtbl.find_opt roles fd)

let blocked dir =
  match dir with
  | None -> false
  | Some d -> locked (fun () -> List.mem d !parts)

(* Block while the fd's direction is partitioned.  5ms poll: coarse
   enough to be cheap, fine enough that a heal is seen promptly. *)
let wait_heal fd =
  let dir = direction fd in
  while blocked dir && not (interrupted fd) do
    Unix.sleepf 0.005
  done

(* ---- arming ----------------------------------------------------------- *)

let arm name policy =
  match find name with
  | None -> invalid_arg (Printf.sprintf "Netfault.arm: unknown site %S" name)
  | Some s -> s.armed <- Some (policy, Trigger.state policy.trigger)

let disarm name = match find name with None -> () | Some s -> s.armed <- None

let disarm_all () =
  List.iter (fun s -> s.armed <- None) sites;
  heal_all ()

let armed_count () =
  List.fold_left (fun acc s -> if s.armed = None then acc else acc + 1) 0 sites
  + List.length !parts

(* action token: everything before the trigger suffix ('@' or '%') *)
let parse_policy spec =
  let cut =
    let n = String.length spec in
    let rec go i = if i >= n then n else match spec.[i] with '@' | '%' -> i | _ -> go (i + 1) in
    go 0
  in
  let tok = String.sub spec 0 cut in
  let rest = String.sub spec cut (String.length spec - cut) in
  let action =
    match tok with
    | "drop" -> Drop
    | "dup" -> Dup
    | "torn" -> Torn
    | _ when String.length tok > 6 && String.sub tok 0 6 = "delay=" ->
      Delay (float_of_string (String.sub tok 6 (String.length tok - 6)) /. 1000.)
    | _ -> invalid_arg (Printf.sprintf "Netfault.parse_policy: bad action in %S" spec)
  in
  { action; trigger = Trigger.parse rest }

(* one SEDNA_NETFAULT item:
     net.send:drop@3        net.recv:delay=50%0.2/7
     part:primary->standby  part:client<->server        *)
let arm_spec spec =
  match String.index_opt spec ':' with
  | None -> invalid_arg (Printf.sprintf "Netfault.arm_spec: missing ':' in %S" spec)
  | Some i ->
    let head = String.sub spec 0 i in
    let body = String.sub spec (i + 1) (String.length spec - i - 1) in
    if head = "part" then begin
      let split sep =
        match
          let n = String.length body and m = String.length sep in
          let rec at j = if j + m > n then None
            else if String.sub body j m = sep then Some j else at (j + 1)
          in
          at 0
        with
        | Some j ->
          Some (String.sub body 0 j, String.sub body (j + String.length sep)
                  (String.length body - j - String.length sep))
        | None -> None
      in
      match split "<->" with
      | Some (a, b) -> partition ~both:true ~from_role:a ~to_role:b ()
      | None -> (
        match split "->" with
        | Some (a, b) -> partition ~from_role:a ~to_role:b ()
        | None ->
          invalid_arg
            (Printf.sprintf "Netfault.arm_spec: bad partition %S" spec))
    end
    else arm head (parse_policy body)

let env_var = "SEDNA_NETFAULT"

let arm_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> ()
  | Some v -> List.iter (fun s -> if s <> "" then arm_spec s) (String.split_on_char ',' v)

(* ---- the injection points -------------------------------------------- *)

let record_fired site action =
  incr injected_cell;
  Counters.bump (Counters.net_injected ^ "." ^ action_name action);
  Trace.emit
    (Trace.Fault_injected { site = site.name; action = action_name action })

(* shared decision: did the armed policy fire on this hit? *)
let fired site =
  match site.armed with
  | None -> None
  | Some (policy, st) ->
    if not (Trigger.fire st policy.trigger) then None
    else begin
      if Trigger.one_shot policy.trigger then site.armed <- None;
      record_fired site policy.action;
      Some policy.action
    end

(* [len] is the frame size about to be written (header + payload) so a
   torn verdict can ask for a strict prefix. *)
let on_send fd ~len : verdict =
  incr send_site.hits;
  wait_heal fd;
  match fired send_site with
  | None -> Proceed
  | Some Drop -> Drop_frame
  | Some Dup -> Dup_frame
  | Some Torn -> Torn_frame (max 1 (len / 2))
  | Some (Delay s) ->
    Unix.sleepf s;
    Proceed

let on_recv fd : verdict =
  incr recv_site.hits;
  wait_heal fd;
  match fired recv_site with
  | None -> Proceed
  | Some Drop -> Drop_frame
  | Some Dup -> Dup_frame (* receive-side dup needs buffering; treated as no-op by Wire *)
  | Some Torn -> Torn_frame 0 (* peer "died" mid-frame: Wire raises Disconnected *)
  | Some (Delay s) ->
    Unix.sleepf s;
    Proceed

(* Accept-site faults: a fired policy of any action simply refuses the
   connection (Wire closes it immediately), modelling a SYN that never
   completes.  Registers the roles on a clean accept. *)
let on_accept fd ~local ~peer =
  incr accept_site.hits;
  match fired accept_site with
  | None ->
    register fd ~local ~peer;
    true
  | Some _ -> false

(* ---- reporting (the [\netfaults] CLI) -------------------------------- *)

let report () =
  List.map
    (fun s ->
      ( s.name,
        !(s.hits),
        match s.armed with
        | None -> None
        | Some (p, _) -> Some (policy_to_string p) ))
    sites
