(** Unified retry: bounded exponential backoff with decorrelated
    jitter, deadline-aware, counter-instrumented.

    Replaces the hand-rolled loops in client connect, standby
    reconnect and lock acquisition.  Jitter draws from the same
    minimal-standard LCG as {!Fault}, so a fixed [seed] makes a whole
    chaos run reproducible. *)

type policy = {
  label : string;  (** counter suffix: sleeps bump [retry.sleeps.<label>] *)
  max_attempts : int;  (** [<= 0] means unbounded *)
  base_s : float;  (** floor (and first) sleep *)
  cap_s : float;  (** per-sleep ceiling *)
  jitter : bool;  (** decorrelated jitter; [false] = pure exponential *)
  seed : int;  (** [0] = self-seed per process (pid + clock) *)
}

val policy :
  ?max_attempts:int ->
  ?base_s:float ->
  ?cap_s:float ->
  ?jitter:bool ->
  ?seed:int ->
  string ->
  policy
(** Defaults: unbounded, base 10ms, cap 1s, jittered, self-seeded. *)

type t
(** One live retry loop: attempt count, previous sleep, PRNG state. *)

val start : policy -> t
val attempt : t -> int
(** Failed attempts recorded so far. *)

val reset : t -> unit
(** Back to a fresh loop — call after a success in long-lived loops
    (standby reconnect) so the next failure starts from [base_s]. *)

val next_sleep : t -> float
(** The sleep the next {!pause} would take (consumes a jitter draw). *)

val pause : t -> bool
(** Record a failed attempt.  [false] once [max_attempts] is spent —
    the caller raises its own error.  Otherwise sleeps (bumping
    [retry.sleeps]) and returns [true].  Raises [Query_timeout] rather
    than sleeping through an armed {!Deadline}. *)

val run : policy -> retry_on:(exn -> bool) -> (unit -> 'a) -> 'a
(** [run p ~retry_on f] retries [f] while it raises an exception
    [retry_on] accepts and budget remains; re-raises otherwise. *)
