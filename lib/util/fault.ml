(* Fault injection for crash-safety testing (cf. the torn-write /
   crash-point discipline of production storage engines).

   The storage layers declare named *sites* at the operations whose
   failure must be survivable: page writes, fsyncs, WAL appends, buffer
   flushes, backup copies.  A site is a cheap hit counter until a
   *policy* is armed on it; then the chosen hit raises either
   [Injected_fault] (an I/O error the engine must turn into a clean
   transaction abort) or [Injected_crash] (a simulated process death
   the crash harness catches, after which the database directory is
   reopened and recovery is exercised).  A [Torn] policy additionally
   asks the caller to persist only a prefix of its buffer before the
   crash, simulating a torn write.

   Probabilistic triggers use a per-site LCG with an explicit seed, so
   every run of the harness is reproducible. *)

exception Injected_fault of string
exception Injected_crash of string

type action = Fail | Crash | Torn | Enospc

(* The trigger half of the policy grammar is shared with the network
   chaos layer ({!Netfault}): same suffix syntax, same deterministic
   LCG, so a seed reproduces the same firing pattern in both worlds. *)
module Trigger = struct
  type t =
    | Nth of int (* fire on the Nth hit after arming (1-based), once *)
    | Every of int (* fire on every Nth hit after arming *)
    | Prob of float * int (* probability per hit, deterministic seed *)

  (* per-armed-policy mutable half: hit count since arming + LCG state *)
  type state = { mutable hits : int; mutable rng : int }

  let state = function
    | Prob (_, seed) -> { hits = 0; rng = (2 * seed) + 1 }
    | _ -> { hits = 0; rng = 1 }

  (* minimal-standard LCG; only the trigger decision consumes it *)
  let next_rng st =
    st.rng <- st.rng * 48271 mod 0x7FFFFFFF;
    st.rng

  (* record one hit against the armed policy and decide whether it
     fires.  [Nth] policies are one-shot: the caller disarms on fire. *)
  let fire st t =
    st.hits <- st.hits + 1;
    match t with
    | Nth n -> st.hits = n
    | Every n -> n > 0 && st.hits mod n = 0
    | Prob (p, _) -> float_of_int (next_rng st) /. 2147483647.0 < p

  let one_shot = function Nth _ -> true | Every _ | Prob _ -> false

  (* the suffix after the action name: "" | "@N" | "@N+" | "%P[/SEED]" *)
  let parse rest =
    if rest = "" then Nth 1
    else if rest.[0] = '@' then begin
      let num = String.sub rest 1 (String.length rest - 1) in
      if num <> "" && num.[String.length num - 1] = '+' then
        Every (int_of_string (String.sub num 0 (String.length num - 1)))
      else Nth (int_of_string num)
    end
    else if rest.[0] = '%' then begin
      let body = String.sub rest 1 (String.length rest - 1) in
      match String.index_opt body '/' with
      | Some i ->
        Prob
          ( float_of_string (String.sub body 0 i),
            int_of_string (String.sub body (i + 1) (String.length body - i - 1)) )
      | None -> Prob (float_of_string body, 1)
    end
    else invalid_arg (Printf.sprintf "Fault.Trigger.parse: bad trigger in %S" rest)

  let to_string = function
    | Nth 1 -> ""
    | Nth n -> Printf.sprintf "@%d" n
    | Every n -> Printf.sprintf "@%d+" n
    | Prob (pr, seed) -> Printf.sprintf "%%%g/%d" pr seed
end

type trigger = Trigger.t =
  | Nth of int
  | Every of int
  | Prob of float * int

type policy = { action : action; trigger : trigger }

type verdict = Proceed | Short_write of int

type site = {
  name : string;
  mutable armed : policy option;
  mutable hits_since_arm : int;
  mutable rng : int; (* LCG state for Prob triggers *)
  hits : int ref; (* total hits, shared with the global counter table *)
}

let registry : (string, site) Hashtbl.t = Hashtbl.create 16

let site name =
  match Hashtbl.find_opt registry name with
  | Some s -> s
  | None ->
    let s =
      {
        name;
        armed = None;
        hits_since_arm = 0;
        rng = 1;
        hits = Counters.cell ("fault.hit." ^ name);
      }
    in
    Hashtbl.add registry name s;
    s

let sites () =
  Hashtbl.fold (fun n _ acc -> n :: acc) registry [] |> List.sort String.compare

let find name = Hashtbl.find_opt registry name
let site_hits s = !(s.hits)
let site_armed s = s.armed

let action_name = function
  | Fail -> "fail"
  | Crash -> "crash"
  | Torn -> "torn"
  | Enospc -> "enospc"

let policy_to_string p = action_name p.action ^ Trigger.to_string p.trigger

let arm name policy =
  let s = site name in
  s.armed <- Some policy;
  s.hits_since_arm <- 0;
  s.rng <- (match policy.trigger with Prob (_, seed) -> (2 * seed) + 1 | _ -> 1)

let disarm name =
  match Hashtbl.find_opt registry name with
  | Some s ->
    s.armed <- None;
    s.hits_since_arm <- 0
  | None -> ()

let disarm_all () = Hashtbl.iter (fun _ s -> s.armed <- None; s.hits_since_arm <- 0) registry

let armed_count () =
  Hashtbl.fold (fun _ s acc -> if s.armed = None then acc else acc + 1) registry 0

(* minimal-standard LCG; only the trigger decision consumes it *)
let next_rng s =
  s.rng <- (s.rng * 48271) mod 0x7FFFFFFF;
  s.rng

let due s policy =
  match policy.trigger with
  | Nth n -> s.hits_since_arm = n
  | Every n -> n > 0 && s.hits_since_arm mod n = 0
  | Prob (p, _) -> float_of_int (next_rng s) /. 2147483647.0 < p

let record_fired s action =
  Counters.bump "fault.injected";
  Counters.bump ("fault.injected." ^ action_name action);
  Trace.emit (Trace.Fault_injected { site = s.name; action = action_name action })

(* Raise the simulated process death; [hit] has already recorded the
   injection, so this is bare (the torn-write caller lands here after
   its partial write). *)
let crash s = raise (Injected_crash s.name)

(* The injection point.  [len] is the size of the buffer about to be
   written, for [Torn] policies; a torn verdict asks the caller to
   write only that prefix and then call {!crash}. *)
let hit ?len s : verdict =
  incr s.hits;
  match s.armed with
  | None -> Proceed
  | Some policy ->
    s.hits_since_arm <- s.hits_since_arm + 1;
    if not (due s policy) then Proceed
    else begin
      (match policy.trigger with Nth _ -> s.armed <- None | _ -> ());
      match (policy.action, len) with
      | Fail, _ ->
        record_fired s Fail;
        raise (Injected_fault s.name)
      | Crash, _ ->
        record_fired s Crash;
        crash s
      | Torn, Some len when len > 1 ->
        record_fired s Torn;
        Short_write (len / 2)
      | Torn, _ ->
        record_fired s Crash;
        crash s
      | Enospc, _ ->
        (* a real errno, not [Injected_fault]: disk-full must flow
           through the same classification path as the genuine error *)
        record_fired s Enospc;
        raise (Unix.Unix_error (Unix.ENOSPC, "write", s.name))
    end

(* [check] for sites with nothing to tear. *)
let check s = ignore (hit s)

(* ---- policy specs ----------------------------------------------------

   Grammar (the SEDNA_FAULT form):   <site>:<action>[@N[+]][%P[/SEED]]
     wal.append:crash@2      crash on the 2nd WAL append
     file_store.write:torn   torn page write on the 1st write
     wal.sync:fail@3+        fsync error on every 3rd sync
     buffer.flush:fail%0.25/7  25% of flushes fail, seed 7              *)

let parse_policy spec =
  let action, rest =
    let take p = String.length spec >= String.length p
                 && String.sub spec 0 (String.length p) = p in
    if take "fail" then (Fail, String.sub spec 4 (String.length spec - 4))
    else if take "crash" then (Crash, String.sub spec 5 (String.length spec - 5))
    else if take "torn" then (Torn, String.sub spec 4 (String.length spec - 4))
    else if take "enospc" then (Enospc, String.sub spec 6 (String.length spec - 6))
    else invalid_arg (Printf.sprintf "Fault.parse_policy: bad action in %S" spec)
  in
  { action; trigger = Trigger.parse rest }

let parse_spec spec =
  match String.index_opt spec ':' with
  | None -> invalid_arg (Printf.sprintf "Fault.parse_spec: missing ':' in %S" spec)
  | Some i ->
    ( String.sub spec 0 i,
      parse_policy (String.sub spec (i + 1) (String.length spec - i - 1)) )

let arm_spec spec =
  let name, policy = parse_spec spec in
  arm name policy

let env_var = "SEDNA_FAULT"

let arm_from_env () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> ()
  | Some v -> List.iter (fun s -> if s <> "" then arm_spec s) (String.split_on_char ',' v)

(* Arm a policy for the duration of a closure (tests). *)
let with_armed name policy f =
  arm name policy;
  Fun.protect ~finally:(fun () -> disarm name) f

(* One line per registered site, for [\faults] and the governor report. *)
let report () =
  List.map
    (fun n ->
      let s = site n in
      ( n,
        !(s.hits),
        match s.armed with None -> None | Some p -> Some (policy_to_string p) ))
    (sites ())
