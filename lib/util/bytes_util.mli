(** Little-endian fixed-width accessors over [Bytes], shared by every
    on-page structure.  Offsets are byte offsets within the page. *)

val get_u8 : Bytes.t -> int -> int
val set_u8 : Bytes.t -> int -> int -> unit
val get_u16 : Bytes.t -> int -> int
val set_u16 : Bytes.t -> int -> int -> unit
val get_i32 : Bytes.t -> int -> int
val set_i32 : Bytes.t -> int -> int -> unit
val get_i64 : Bytes.t -> int -> int64
val set_i64 : Bytes.t -> int -> int64 -> unit
val get_string : Bytes.t -> int -> int -> string
val set_string : Bytes.t -> int -> string -> unit
val zero : Bytes.t -> int -> int -> unit
val get_float : Bytes.t -> int -> float
val set_float : Bytes.t -> int -> float -> unit

val crc32 : ?off:int -> ?len:int -> Bytes.t -> int
(** CRC-32 (IEEE, reflected polynomial) of [len] bytes starting at
    [off] (defaults: the whole buffer).  Result fits in 32 bits. *)
