(** Scoped metric sets, timers and fixed-bucket latency histograms.

    The measurement layer behind [\counters], [\profile], the trace
    subsystem, the governor report and the bench harness.  Counters live
    in named {!set}s arranged in a parent chain: bumping a key in a
    child set also bumps the same key in every ancestor, so per-session
    and global views of the same event share a single bump site.  The
    root {!global} set is backed by the legacy {!Counters} table — both
    APIs observe the same cells. *)

(** {1 JSON}

    A minimal JSON document type shared by metrics snapshots, trace
    events and the bench harness (no external dependency). *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

val json_to_string : json -> string
val json_escape : string -> string

(** {1 Timers} *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]) — for log timestamps
    only; durations should use {!mono}/{!time}. *)

val mono : unit -> float
(** Monotonic seconds ({!Sysutil.monotonic}) — for durations. *)

val time : (unit -> 'a) -> float * 'a
(** [time f] runs [f] and returns [(elapsed_seconds, result)], measured
    on the monotonic clock. *)

(** {1 Scoped counter sets} *)

type set

val global : set
(** Root of every parent chain; shares storage with {!Counters}. *)

val create : ?name:string -> ?parent:set -> unit -> set
val name : set -> string

val bump : ?n:int -> set -> string -> unit
(** Bump [key] in this set and, transitively, in every ancestor. *)

val get : set -> string -> int
(** Value of [key] in this set only (0 if never bumped here). *)

val cell : set -> string -> int ref
(** Pre-resolved cell of [key] in this set.  Bumping the cell directly
    skips parent propagation — reserve it for hot paths. *)

val reset : set -> unit
(** Zero every counter in this set (ancestors keep their totals). *)

val snapshot : ?zeros:bool -> set -> (string * int) list
(** Sorted [(key, value)] pairs; zero cells omitted unless [~zeros]. *)

val diff :
  before:(string * int) list -> after:(string * int) list -> (string * int) list
(** Per-key [after - before], dropping zero deltas. *)

val to_json : set -> json

(** {1 Fixed-bucket histograms} *)

type histogram

val default_buckets : float array
(** 10 µs .. 10 s in a 1 / 2.5 / 5 ladder (seconds). *)

val histogram : ?register:bool -> ?buckets:float array -> string -> histogram
(** Find-or-create the named histogram in the global registry.
    [~register:false] always creates a fresh anonymous one (used for
    per-session latency so names don't collide). *)

val histograms : unit -> histogram list
(** All registered histograms, sorted by name. *)

val observe : histogram -> float -> unit
val hist_name : histogram -> string
val hist_count : histogram -> int
val hist_sum : histogram -> float

val hist_buckets : histogram -> float array * int array
(** [(upper bounds in seconds, per-bucket counts)]; the counts array
    has one extra trailing overflow slot. *)

val hist_mean : histogram -> float
val hist_reset : histogram -> unit

val percentile : histogram -> float -> float
(** [percentile h q] for [q] in [0,1]: the upper bound of the bucket
    holding the q-quantile observation; [infinity] if it overflowed the
    last bucket, [nan] if the histogram is empty. *)

val hist_to_json : histogram -> json
