(** Deterministic network fault injection for the wire layer.

    {!Wire} calls {!on_send} / {!on_recv} around every length-prefixed
    frame and {!on_accept} per accepted connection.  Sites are cheap
    hit counters until a policy is armed (via [SEDNA_NETFAULT] or the
    [\netfaults] CLI); triggers reuse {!Fault.Trigger}'s grammar and
    LCG, so seeded schedules replay identically.

    Spec grammar (comma-separated in the env var):
    {v
      net.send:drop@3          drop the 3rd frame sent
      net.recv:delay=50@2+     hold every 2nd received frame 50ms
      net.send:torn%0.1/7      10% of sends torn (seed 7)
      net.send:dup             duplicate the next frame
      net.accept:drop@1+       refuse every connection
      part:primary->standby    one-way partition by connection role
      part:client<->server     two-way partition
    v} *)

type action = Drop | Dup | Torn | Delay of float  (** seconds *)

type policy = { action : action; trigger : Fault.Trigger.t }

type verdict =
  | Proceed
  | Drop_frame  (** pretend the frame was transmitted *)
  | Dup_frame  (** transmit it twice (send side only) *)
  | Torn_frame of int
      (** send: write only this prefix then kill the connection;
          recv: the peer died mid-frame — surface [Disconnected] *)

val register : Unix.file_descr -> local:string -> peer:string -> unit
(** Declare the connection's direction for partition matching. *)

val unregister : Unix.file_descr -> unit

val interrupt : Unix.file_descr -> unit
(** Unblock any partition wait on this fd: call before shutting the
    socket down, or a thread parked in a partitioned send/recv would
    keep the owner's stop/promote joined on it until the partition
    heals.  The released I/O fails at the syscall instead. *)

val partition : ?both:bool -> from_role:string -> to_role:string -> unit -> unit
(** Block sends (and recvs) on connections registered [from -> to]
    until healed; [both] also blocks the reverse direction. *)

val heal : ?both:bool -> from_role:string -> to_role:string -> unit -> unit
val heal_all : unit -> unit
val partitions : unit -> (string * string) list

val on_send : Unix.file_descr -> len:int -> verdict
(** Called before writing a frame of [len] bytes.  Blocks while the
    fd's direction is partitioned; sleeps for delay policies. *)

val on_recv : Unix.file_descr -> verdict
(** Called before reading a frame. *)

val on_accept : Unix.file_descr -> local:string -> peer:string -> bool
(** Called after [accept].  [false] = refuse (caller closes the fd);
    [true] = proceed (the fd's roles have been registered). *)

val arm : string -> policy -> unit
(** Site is one of ["net.send"], ["net.recv"], ["net.accept"]. *)

val disarm : string -> unit

val disarm_all : unit -> unit
(** Also heals all partitions. *)

val armed_count : unit -> int
(** Armed site policies plus active partition directions. *)

val parse_policy : string -> policy
val arm_spec : string -> unit
val policy_to_string : policy -> string
val action_name : action -> string

val env_var : string
(** ["SEDNA_NETFAULT"] — comma-separated arm specs. *)

val arm_from_env : unit -> unit

val report : unit -> (string * int * string option) list
(** Per site: name, total hits, armed policy if any. *)
