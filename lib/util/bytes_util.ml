(* Little-endian fixed-width accessors over Bytes, shared by every
   on-page structure.  All offsets are byte offsets within the page. *)

let get_u8 b off = Char.code (Bytes.get b off)
let set_u8 b off v = Bytes.set b off (Char.chr (v land 0xff))

let get_u16 b off = Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)

let set_u16 b off v =
  Bytes.set b off (Char.chr (v land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xff))

let get_i32 b off = Int32.to_int (Bytes.get_int32_le b off)
let set_i32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let get_i64 b off = Bytes.get_int64_le b off
let set_i64 b off v = Bytes.set_int64_le b off v

let get_string b off len = Bytes.sub_string b off len
let set_string b off s = Bytes.blit_string s 0 b off (String.length s)

let zero b off len = Bytes.fill b off len '\000'

(* Float stored as IEEE bits. *)
let get_float b off = Int64.float_of_bits (Bytes.get_int64_le b off)
let set_float b off v = Bytes.set_int64_le b off (Int64.bits_of_float v)

(* CRC-32 (IEEE 802.3, reflected 0xEDB88320), table-driven — the page
   checksum of the file store's sidecar map. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF
