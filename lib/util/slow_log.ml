(* Slow-statement log: statements whose total latency crosses a
   configurable threshold leave a structured JSON record — wall
   timestamp, trace ID, session, statement text, plan-cache hit/miss
   and a per-span breakdown — in a bounded in-memory ring, and
   optionally appended as a JSON line to a file.  The ring serves the
   [\slow] CLI command and the governor report; the file is for
   external collectors (and the CI artifact).

   Mutex-protected: server workers record concurrently.  The threshold
   check is done here so call sites stay one function call; when the
   statement is fast the cost is a float compare. *)

type entry = {
  sl_at : float; (* wall clock — log timestamp *)
  sl_trace : string; (* "" when tracing was off *)
  sl_session : int;
  sl_text : string;
  sl_kind : string; (* "query" | "update" | "ddl" | ... *)
  sl_ok : bool;
  sl_cached : bool; (* plan-cache hit *)
  sl_total_ms : float;
  sl_spans : (string * float) list; (* span name, milliseconds *)
}

let mu = Mutex.create ()
let ring : entry Queue.t = Queue.create ()
let ring_capacity = ref 128
let threshold_s = ref 1.0 (* statements slower than this are logged *)
let file : string option ref = ref None
let recorded = ref 0

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* The file sink keeps one out-channel open across records (opening per
   record would dominate the cost of logging) and flushes after every
   line, so `tail -f` and a collector see a record as soon as the slow
   statement finishes and nothing is lost on abnormal exit.  The
   channel is closed at exit and whenever [set_file] changes the
   path.  All under [mu]: records come from concurrent workers. *)
let chan : (string * out_channel) option ref = ref None

let close_chan_unlocked () =
  match !chan with
  | Some (_, oc) ->
    chan := None;
    (try close_out oc with Sys_error _ -> ())
  | None -> ()

let () = at_exit (fun () -> locked close_chan_unlocked)

let set_threshold s = threshold_s := s
let threshold () = !threshold_s

let set_file p =
  locked (fun () ->
      if p <> !file then close_chan_unlocked ();
      file := p)

let set_capacity n = ring_capacity := max 1 n

let entry_to_json e =
  Metrics.Obj
    [
      ("at", Metrics.Float e.sl_at);
      ("trace", Metrics.Str e.sl_trace);
      ("session", Metrics.Int e.sl_session);
      ("text", Metrics.Str e.sl_text);
      ("kind", Metrics.Str e.sl_kind);
      ("ok", Metrics.Bool e.sl_ok);
      ("cached", Metrics.Bool e.sl_cached);
      ("total_ms", Metrics.Float e.sl_total_ms);
      ( "spans",
        Metrics.Obj (List.map (fun (n, ms) -> (n, Metrics.Float ms)) e.sl_spans) );
    ]

let append_to_file_unlocked path line =
  try
    let oc =
      match !chan with
      | Some (p, oc) when p = path -> oc
      | _ ->
        close_chan_unlocked ();
        let oc =
          open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
        in
        chan := Some (path, oc);
        oc
    in
    output_string oc line;
    output_char oc '\n';
    flush oc
  with Sys_error _ -> () (* a broken sink must not fail the statement *)

let observe ~trace ~session ~text ~kind ~ok ~cached ~total_s ~spans =
  if total_s >= !threshold_s then begin
    let e =
      {
        sl_at = Metrics.now ();
        sl_trace = trace;
        sl_session = session;
        sl_text = text;
        sl_kind = kind;
        sl_ok = ok;
        sl_cached = cached;
        sl_total_ms = total_s *. 1000.0;
        sl_spans = spans;
      }
    in
    locked (fun () ->
        incr recorded;
        Queue.push e ring;
        while Queue.length ring > !ring_capacity do
          ignore (Queue.pop ring)
        done;
        match !file with
        | Some path ->
          append_to_file_unlocked path
            (Metrics.json_to_string (entry_to_json e))
        | None -> ())
  end

let dump () = locked (fun () -> List.of_seq (Queue.to_seq ring))
let recorded_total () = !recorded
let clear () = locked (fun () -> Queue.clear ring)

let to_json_lines () =
  String.concat "\n"
    (List.map (fun e -> Metrics.json_to_string (entry_to_json e)) (dump ()))

(* Environment hooks so non-server entry points (bench, one-shot CLI)
   can switch the log on without new flags:
     SEDNA_SLOW_MS   threshold in milliseconds
     SEDNA_SLOW_LOG  file to append JSON lines to *)
let init_from_env () =
  (match Sys.getenv_opt "SEDNA_SLOW_MS" with
   | Some s -> ( match float_of_string_opt s with
     | Some ms -> set_threshold (ms /. 1000.0)
     | None -> ())
   | None -> ());
  match Sys.getenv_opt "SEDNA_SLOW_LOG" with
  | Some p when p <> "" -> set_file (Some p)
  | _ -> ()
