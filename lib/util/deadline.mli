(** Per-statement wall-clock budget.

    The server arms a deadline before a statement enters the engine and
    disarms it afterwards; {!check} calls placed on the engine's choke
    points raise [Error.Sedna_error (Query_timeout, _)] once the budget
    is exhausted.  Single statement at a time by design (the engine is
    serialized by the governor's store lock), so the state is global. *)

val set : float -> unit
(** Arm: the statement may run for this many seconds from now. *)

val clear : unit -> unit
(** Disarm (also done automatically when a deadline fires). *)

val active : unit -> bool

val check : unit -> unit
(** Raise [Query_timeout] if an armed deadline has passed.  Cheap when
    unarmed; samples the clock every 64th call when armed. *)

val check_now : unit -> unit
(** Like {!check} but samples the clock on every call.  Placed at
    span-boundary choke points (lock-wait retry loops, phase
    transitions) where calls are rare but the elapsed time between
    them can be long. *)

type snapshot

val suspend : unit -> snapshot
(** Detach the current statement's budget from the global cell (and
    disarm it), so another statement may own the cell while this one
    waits outside the engine lock — group commit parks here.  Pair with
    {!resume} once the lock is held again. *)

val resume : snapshot -> unit
(** Reattach a budget detached by {!suspend}. *)
