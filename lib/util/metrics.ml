(* Scoped metric sets, wall-clock timers and fixed-bucket latency
   histograms — the measurement layer the benches, the session profiler
   and the governor report are built on.

   A [set] is a named bag of integer counters with an optional parent;
   bumping a counter in a child set also bumps the same name in every
   ancestor, so a per-session "plan.hit" and the global "plan.hit" are
   one bump at one call site and cannot drift.  The root [global] set
   shares storage with the legacy {!Counters} table, so the pre-resolved
   hot-path cells ([Counters.deref_cell] etc., plain [incr]s on the
   storage fast paths) remain visible through this API without being
   routed through it. *)

(* -------------------------------------------------------------- JSON *)

(* A tiny JSON document type + printer: enough for metrics snapshots,
   trace events and bench output without an external dependency. *)
type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec json_to_buf b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string b (Printf.sprintf "%.1f" f)
    else if Float.is_nan f then Buffer.add_string b "null"
    else if f = Float.infinity then Buffer.add_string b "1e999"
    else Buffer.add_string b (Printf.sprintf "%.12g" f)
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (json_escape s);
    Buffer.add_char b '"'
  | List xs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        json_to_buf b x)
      xs;
    Buffer.add_char b ']'
  | Obj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        Buffer.add_string b (json_escape k);
        Buffer.add_string b "\":";
        json_to_buf b v)
      kvs;
    Buffer.add_char b '}'

let json_to_string j =
  let b = Buffer.create 256 in
  json_to_buf b j;
  Buffer.contents b

(* ------------------------------------------------------------ timers *)

let now () = Unix.gettimeofday ()

(* monotonic source for durations — wall time is only for log stamps *)
let mono = Sysutil.monotonic

let time f =
  let t0 = mono () in
  let r = f () in
  (mono () -. t0, r)

(* -------------------------------------------------------------- sets *)

type set = {
  set_name : string;
  cells : (string, int ref) Hashtbl.t;
  parent : set option;
}

let global = { set_name = "global"; cells = Counters.global_table; parent = None }

let create ?(name = "scope") ?parent () =
  { set_name = name; cells = Hashtbl.create 16; parent }

let name t = t.set_name

(* The root set shares storage with the thread-safe {!Counters} table;
   route its accesses through that module's mutex so scoped bumps that
   chain up to the global set cannot race the server threads.  Scoped
   (non-global) sets stay unguarded: they are per-session and only
   touched under the governor's engine lock. *)
let is_global t = t.cells == Counters.global_table

let cell t key =
  if is_global t then Counters.cell key
  else
    match Hashtbl.find_opt t.cells key with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.add t.cells key r;
      r

let rec bump ?(n = 1) t key =
  if is_global t then Counters.bump ~n key
  else begin
    let r = cell t key in
    r := !r + n;
    match t.parent with Some p -> bump ~n p key | None -> ()
  end

let get t key =
  if is_global t then Counters.get key
  else match Hashtbl.find_opt t.cells key with Some r -> !r | None -> 0

let reset t =
  if is_global t then Counters.reset_all ()
  else Hashtbl.iter (fun _ r -> r := 0) t.cells

let snapshot ?(zeros = false) t =
  if is_global t then
    List.filter (fun (_, v) -> zeros || v <> 0) (Counters.snapshot_all ())
  else
    Hashtbl.fold
      (fun k r acc -> if zeros || !r <> 0 then (k, !r) :: acc else acc)
      t.cells []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Per-key [after - before], dropping zero deltas.  Keys present only in
   [before] (a reset happened in between) are reported as negative. *)
let diff ~before ~after =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k (-v)) before;
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt tbl k with
      | Some d -> Hashtbl.replace tbl k (d + v)
      | None -> Hashtbl.add tbl k v)
    after;
  Hashtbl.fold (fun k d acc -> if d <> 0 then (k, d) :: acc else acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_json t = Obj (List.map (fun (k, v) -> (k, Int v)) (snapshot t))

(* --------------------------------------------------------- histograms *)

type histogram = {
  hist_name : string;
  bounds : float array; (* ascending upper bounds, seconds *)
  counts : int array; (* length = Array.length bounds + 1; last = overflow *)
  mutable sum : float;
  mutable total : int;
}

(* 10 µs .. 10 s in a 1 / 2.5 / 5 ladder: fine enough that p50/p95/p99
   of sub-millisecond statement latencies land in distinct buckets. *)
let default_buckets =
  [|
    1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3; 2.5e-3; 5e-3; 1e-2; 2.5e-2;
    5e-2; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0;
  |]

let registry : (string, histogram) Hashtbl.t = Hashtbl.create 8

let histogram ?(register = true) ?(buckets = default_buckets) hist_name =
  match if register then Hashtbl.find_opt registry hist_name else None with
  | Some h -> h
  | None ->
    let h =
      {
        hist_name;
        bounds = Array.copy buckets;
        counts = Array.make (Array.length buckets + 1) 0;
        sum = 0.;
        total = 0;
      }
    in
    if register then Hashtbl.add registry hist_name h;
    h

let histograms () =
  Hashtbl.fold (fun _ h acc -> h :: acc) registry []
  |> List.sort (fun a b -> String.compare a.hist_name b.hist_name)

let observe h v =
  let n = Array.length h.bounds in
  let rec idx i = if i >= n then n else if v <= h.bounds.(i) then i else idx (i + 1) in
  let i = idx 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.total <- h.total + 1

let hist_reset h =
  Array.fill h.counts 0 (Array.length h.counts) 0;
  h.sum <- 0.;
  h.total <- 0

let hist_name h = h.hist_name
let hist_count h = h.total
let hist_sum h = h.sum

(* bucket bounds + per-bucket counts (one extra overflow slot) — the
   Prometheus exposition needs the raw shape, not just percentiles *)
let hist_buckets h = (Array.copy h.bounds, Array.copy h.counts)
let hist_mean h = if h.total = 0 then Float.nan else h.sum /. float_of_int h.total

(* Upper bound of the bucket holding the q-quantile observation
   (rank ceil(q * total), clamped to [1, total]); [infinity] when it
   landed in the overflow bucket, [nan] when the histogram is empty. *)
let percentile h q =
  if h.total = 0 then Float.nan
  else begin
    let rank = int_of_float (ceil (q *. float_of_int h.total)) in
    let rank = max 1 (min rank h.total) in
    let n = Array.length h.bounds in
    let rec go i acc =
      let acc = acc + h.counts.(i) in
      if acc >= rank then if i < n then h.bounds.(i) else Float.infinity
      else go (i + 1) acc
    in
    go 0 0
  end

let hist_to_json h =
  Obj
    [
      ("count", Int h.total);
      ("sum_s", Float h.sum);
      ("mean_s", if h.total = 0 then Null else Float (hist_mean h));
      ("p50_s", if h.total = 0 then Null else Float (percentile h 0.5));
      ("p95_s", if h.total = 0 then Null else Float (percentile h 0.95));
      ("p99_s", if h.total = 0 then Null else Float (percentile h 0.99));
    ]
