(** Error taxonomy for the whole system.  Codes loosely follow Sedna's
    SE-numbering convention for storage and transaction errors, and the
    W3C error codes for query errors. *)

type code =
  | Storage_corruption
  | Corrupt_page  (** page-level CRC mismatch detected on read *)
  | Page_out_of_bounds
  | Block_full
  | No_such_document
  | Document_exists
  | No_such_collection
  | Collection_exists
  | No_such_index
  | Index_exists
  | Xml_parse
  | Xquery_parse  (** XPST0003 *)
  | Xquery_static  (** XPST0008 *)
  | Xquery_type  (** XPTY0004 *)
  | Xquery_dynamic  (** FORG0001 *)
  | Update_conflict
  | Lock_timeout
  | Deadlock
  | Txn_read_only
  | Txn_not_active
  | Recovery_failure
  | Unsupported
  | Overloaded  (** SE-OVERLOADED: admission control rejected the request *)
  | Query_timeout  (** SE-TIMEOUT: statement exceeded its wall-clock budget *)
  | Server_shutdown  (** SE-SHUTDOWN: server draining, no new work accepted *)
  | Standby_read_only
      (** SE-READ-ONLY: write refused by a hot-standby replica *)
  | Failover
      (** SE-FAILOVER: the primary died mid-transaction; the client must
          re-run its transaction against the surviving endpoint *)
  | Fenced
      (** SE-FENCED: this node observed a higher cluster epoch (another
          node was promoted) and refuses writes until re-seeded *)
  | Degraded
      (** SE-DEGRADED: resource exhaustion (disk full, fd limit) put the
          node in degraded read-only mode; writes are shed until the
          watchdog observes the resource recovering *)

exception Sedna_error of code * string

val code_name : code -> string

val raise_error : code -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [raise_error code fmt ...] formats the message and raises
    {!Sedna_error}. *)

val to_string : exn -> string
val pp : Format.formatter -> exn -> unit
