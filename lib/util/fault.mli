(** Fault injection for crash-safety testing.

    Storage layers declare named {e sites} at survivable-failure
    operations (page writes, fsyncs, WAL appends, buffer flushes,
    backup copies).  Hitting a site is a counter bump until a
    {e policy} is armed on it; then the triggering hit raises
    {!Injected_fault} (an I/O error the engine must turn into a clean
    transaction abort) or {!Injected_crash} (a simulated process death
    the crash harness catches before reopening the database), or — for
    [Torn] — asks the caller to persist only a prefix of its buffer
    and then crash. *)

exception Injected_fault of string  (** argument is the site name *)

exception Injected_crash of string
(** Simulated process death.  Must escape to the harness untouched: the
    session layer must not try to abort or otherwise write after it. *)

type action =
  | Fail
  | Crash
  | Torn
  | Enospc
      (** raises a genuine [Unix.Unix_error (ENOSPC, ...)] so disk-full
          takes the same classification path as the real thing *)

(** The trigger half of the policy grammar, shared with {!Netfault}:
    same [@N]/[@N+]/[%P/SEED] suffix syntax, same deterministic LCG. *)
module Trigger : sig
  type t =
    | Nth of int  (** fire on the Nth hit after arming (1-based), once *)
    | Every of int  (** fire on every Nth hit after arming *)
    | Prob of float * int  (** probability per hit, deterministic seed *)

  type state
  (** Mutable firing state: hit count since arming plus LCG state. *)

  val state : t -> state
  val fire : state -> t -> bool
  (** Record one hit; [true] iff the policy fires on it.  One-shot
      [Nth] policies must be disarmed by the caller when they fire. *)

  val one_shot : t -> bool
  val parse : string -> t
  (** The suffix after the action name: [""], ["@N"], ["@N+"], or
      ["%P[/SEED]"].  Raises [Invalid_argument] on garbage. *)

  val to_string : t -> string
end

type trigger = Trigger.t =
  | Nth of int
  | Every of int
  | Prob of float * int

type policy = { action : action; trigger : trigger }
type verdict = Proceed | Short_write of int
type site

val site : string -> site
(** Register (or look up) a site by name.  Layers bind their sites at
    module init so the harness can enumerate them. *)

val sites : unit -> string list
(** All registered site names, sorted. *)

val find : string -> site option
val site_hits : site -> int
val site_armed : site -> policy option

val hit : ?len:int -> site -> verdict
(** The injection point.  Always bumps the site's hit counter.  May
    raise {!Injected_fault} or {!Injected_crash} per the armed policy;
    a [Short_write n] verdict asks the caller to write only the first
    [n] of its [len] bytes and then call {!crash}. *)

val check : site -> unit
(** [hit] for sites with nothing to tear (fsyncs, resets). *)

val crash : site -> 'a
(** Raise {!Injected_crash} for this site (after a torn prefix write). *)

val arm : string -> policy -> unit
val disarm : string -> unit
val disarm_all : unit -> unit
val armed_count : unit -> int

val with_armed : string -> policy -> (unit -> 'a) -> 'a
(** Arm for the duration of a closure, disarming on the way out. *)

val parse_policy : string -> policy
(** [fail | crash | torn | enospc] followed by [@N] (Nth), [@N+] (every
    Nth) or [%P[/SEED]] (probability with deterministic seed). *)

val parse_spec : string -> string * policy
(** ["<site>:<policy>"], the [SEDNA_FAULT] form. *)

val arm_spec : string -> unit

val env_var : string
(** ["SEDNA_FAULT"] — comma-separated arm specs. *)

val arm_from_env : unit -> unit

val policy_to_string : policy -> string
val action_name : action -> string

val report : unit -> (string * int * string option) list
(** Per site: name, total hits, armed policy if any. *)
