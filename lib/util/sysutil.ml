(* Small OS helpers shared by the durability-sensitive layers. *)

(* ---- monotonic clock ------------------------------------------------ *)

(* Durations (span timing, latency histograms, deadlines) must not go
   negative or jump when the wall clock is stepped by NTP or an
   operator.  No monotonic-clock binding is available in this tree, so
   we clamp [Unix.gettimeofday] to be non-decreasing: a backward step
   is absorbed into [skew] and replayed on every later reading, which
   keeps the reported clock moving forward at (roughly) real-time rate.
   Forward jumps still pass through — they inflate at most one interval,
   which is the best a userspace clamp can do.  Mutex-protected because
   server workers and the replication threads all sample it. *)

let mono_mu = Mutex.create ()
let mono_last = ref neg_infinity
let mono_skew = ref 0.0

let monotonic () =
  Mutex.lock mono_mu;
  let raw = Unix.gettimeofday () +. !mono_skew in
  let t =
    if raw < !mono_last then begin
      (* wall clock stepped backwards: fold the step into the skew *)
      mono_skew := !mono_skew +. (!mono_last -. raw);
      !mono_last
    end
    else begin
      mono_last := raw;
      raw
    end
  in
  Mutex.unlock mono_mu;
  t

(* Fsync a directory so a just-created/renamed/truncated entry survives
   a crash (POSIX requires syncing the parent directory for that).
   Some filesystems refuse fsync on directory descriptors; that is a
   loss of durability we cannot fix, so errors are swallowed. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

(* Resource-exhaustion classification, shared by every write/sync call
   site instead of per-site errno matching.  EDQUOT has no constructor
   in [Unix.error]; on Linux it surfaces as [EUNKNOWNERR 122]. *)
let is_resource_exhaustion = function
  | Unix.Unix_error ((Unix.ENOSPC | Unix.EMFILE | Unix.ENFILE), _, _) -> true
  | Unix.Unix_error (Unix.EUNKNOWNERR e, _, _) -> e = 122 (* EDQUOT *)
  | _ -> false

(* Write [data] to [path] atomically-ish: tmp file, fsync, rename,
   fsync the directory.  A crash leaves either the old file or the new
   one, never a torn mix. *)
let write_file_durable path data =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let len = String.length data in
  let buf = Bytes.unsafe_of_string data in
  let rec drain off =
    if off < len then drain (off + Unix.write fd buf off (len - off))
  in
  drain 0;
  Unix.fsync fd;
  Unix.close fd;
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)
