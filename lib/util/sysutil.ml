(* Small OS helpers shared by the durability-sensitive layers. *)

(* Fsync a directory so a just-created/renamed/truncated entry survives
   a crash (POSIX requires syncing the parent directory for that).
   Some filesystems refuse fsync on directory descriptors; that is a
   loss of durability we cannot fix, so errors are swallowed. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

(* Write [data] to [path] atomically-ish: tmp file, fsync, rename,
   fsync the directory.  A crash leaves either the old file or the new
   one, never a torn mix. *)
let write_file_durable path data =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let len = String.length data in
  let buf = Bytes.unsafe_of_string data in
  let rec drain off =
    if off < len then drain (off + Unix.write fd buf off (len - off))
  in
  drain 0;
  Unix.fsync fd;
  Unix.close fd;
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)
