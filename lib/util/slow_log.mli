(** Slow-statement log.

    Statements slower than a configurable threshold leave a structured
    record — wall timestamp, trace ID, session, statement text,
    plan-cache hit/miss, total latency and a per-span breakdown — in a
    bounded in-memory ring ([\slow] dumps it) and, when a file sink is
    set, as an appended JSON line.  Thread-safe. *)

type entry = {
  sl_at : float;  (** wall-clock timestamp *)
  sl_trace : string;  (** trace ID, [""] when tracing was off *)
  sl_session : int;
  sl_text : string;
  sl_kind : string;
  sl_ok : bool;
  sl_cached : bool;  (** plan served from the plan cache *)
  sl_total_ms : float;
  sl_spans : (string * float) list;  (** span name, milliseconds *)
}

val observe :
  trace:string ->
  session:int ->
  text:string ->
  kind:string ->
  ok:bool ->
  cached:bool ->
  total_s:float ->
  spans:(string * float) list ->
  unit
(** Record the statement if [total_s] crosses the threshold; a float
    compare otherwise. *)

val set_threshold : float -> unit
(** Threshold in seconds (default 1.0); [infinity] disables. *)

val threshold : unit -> float

val set_file : string option -> unit
(** Also append each record as a JSON line to this file. *)

val set_capacity : int -> unit
(** Ring capacity (default 128, min 1). *)

val dump : unit -> entry list
(** Retained entries, oldest first. *)

val recorded_total : unit -> int
(** Total records since start, including ones the ring dropped. *)

val clear : unit -> unit
val entry_to_json : entry -> Metrics.json
val to_json_lines : unit -> string

val init_from_env : unit -> unit
(** Read [SEDNA_SLOW_MS] / [SEDNA_SLOW_LOG] and configure accordingly. *)
