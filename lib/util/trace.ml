(* Structured trace events: a bounded global ring buffer of typed
   events emitted from the session pipeline and the storage layers
   (buffer manager, WAL, lock manager, transactions).  The ring keeps
   the most recent [capacity] events; [\trace] in the CLI dumps them as
   JSON lines, and the governor report aggregates them per type.

   Emission sites are off the storage hot paths (statement boundaries,
   page faults/evictions, WAL framing, lock transitions), so a
   timestamp per event is affordable.  Server workers and the
   replication threads emit concurrently, so the seq reservation and
   the slot write happen under one mutex — without it two workers can
   reserve the same seq and [dump] silently loses entries. *)

type event =
  | Statement_start of { session : int; text : string }
  | Statement_end of {
      session : int;
      kind : string; (* "query" | "update" | "ddl" *)
      ok : bool;
      cached : bool; (* plan came from the session plan cache *)
      parse_ms : float;
      analyze_ms : float;
      rewrite_ms : float;
      execute_ms : float;
      total_ms : float;
    }
  | Plan_cache of { session : int; hit : bool }
  | Buffer_evict of { pid : int; dirty : bool }
  | Wal_append of { tag : string; bytes : int }
  | Checkpoint of { pages_flushed : int }
  | Lock_acquire of {
      txn : int;
      doc : string;
      mode : string; (* "shared" | "exclusive" *)
      outcome : string; (* "granted" | "blocked" | "deadlock" *)
    }
  | Lock_release of { txn : int; count : int }
  | Txn_begin of { txn : int; read_only : bool }
  | Txn_commit of { txn : int; dirty_pages : int }
  | Txn_rollback of { txn : int }
  | Fault_injected of { site : string; action : string }
  | Wal_truncated of { bytes : int }
  | Recovery_done of { redo : int; skipped : int }
  | Checksum_failed of { pid : int }
  | Conn_open of { conn : int; session : int }
  | Conn_close of { conn : int; requests : int }
  | Conn_reject of { reason : string }
  | Server_state of { state : string }
  | Repl_state of { role : string; state : string }
  | Repl_batch of { records : int; bytes : int; pos : int }
  | Repl_apply of { txn : int; pages : int }
  | Repl_reseed of { epoch : int }
  | Repl_promote of { epoch : int }
  | Scrub_repair of { pid : int; source : string }
  | Degraded_mode of { entered : bool; reason : string }

type entry = { seq : int; at : float; event : event }

let enabled = ref true
let ring = ref (Array.make 4096 None)
let next_seq = ref 0
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

let set_enabled b = enabled := b
let is_enabled () = !enabled

let clear () =
  locked (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      next_seq := 0)

let set_capacity n =
  locked (fun () ->
      ring := Array.make (max 1 n) None;
      next_seq := 0)

let capacity () = Array.length !ring
let emitted () = !next_seq

let emit event =
  if !enabled then begin
    let at = Metrics.now () in
    locked (fun () ->
        let seq = !next_seq in
        !ring.(seq mod Array.length !ring) <- Some { seq; at; event };
        next_seq := seq + 1)
  end

(* Retained entries, oldest first. *)
let dump () =
  locked (fun () ->
      let n = Array.length !ring in
      let first = max 0 (!next_seq - n) in
      let rec go seq acc =
        if seq < first then acc
        else
          match !ring.(seq mod n) with
          | Some e when e.seq = seq -> go (seq - 1) (e :: acc)
          | _ -> go (seq - 1) acc
      in
      go (!next_seq - 1) [])

let event_name = function
  | Statement_start _ -> "statement.start"
  | Statement_end _ -> "statement.end"
  | Plan_cache _ -> "plan.cache"
  | Buffer_evict _ -> "buffer.evict"
  | Wal_append _ -> "wal.append"
  | Checkpoint _ -> "wal.checkpoint"
  | Lock_acquire _ -> "lock.acquire"
  | Lock_release _ -> "lock.release"
  | Txn_begin _ -> "txn.begin"
  | Txn_commit _ -> "txn.commit"
  | Txn_rollback _ -> "txn.rollback"
  | Fault_injected _ -> "fault.injected"
  | Wal_truncated _ -> "wal.truncated"
  | Recovery_done _ -> "recovery.done"
  | Checksum_failed _ -> "checksum.failed"
  | Conn_open _ -> "conn.open"
  | Conn_close _ -> "conn.close"
  | Conn_reject _ -> "conn.reject"
  | Server_state _ -> "server.state"
  | Repl_state _ -> "repl.state"
  | Repl_batch _ -> "repl.batch"
  | Repl_apply _ -> "repl.apply"
  | Repl_reseed _ -> "repl.reseed"
  | Repl_promote _ -> "repl.promote"
  | Scrub_repair _ -> "scrub.repair"
  | Degraded_mode _ -> "degraded.mode"

let event_fields : event -> (string * Metrics.json) list =
  let open Metrics in
  function
  | Statement_start { session; text } ->
    [ ("session", Int session); ("text", Str text) ]
  | Statement_end
      { session; kind; ok; cached; parse_ms; analyze_ms; rewrite_ms; execute_ms; total_ms }
    ->
    [
      ("session", Int session);
      ("kind", Str kind);
      ("ok", Bool ok);
      ("cached", Bool cached);
      ("parse_ms", Float parse_ms);
      ("analyze_ms", Float analyze_ms);
      ("rewrite_ms", Float rewrite_ms);
      ("execute_ms", Float execute_ms);
      ("total_ms", Float total_ms);
    ]
  | Plan_cache { session; hit } -> [ ("session", Int session); ("hit", Bool hit) ]
  | Buffer_evict { pid; dirty } -> [ ("pid", Int pid); ("dirty", Bool dirty) ]
  | Wal_append { tag; bytes } -> [ ("tag", Str tag); ("bytes", Int bytes) ]
  | Checkpoint { pages_flushed } -> [ ("pages_flushed", Int pages_flushed) ]
  | Lock_acquire { txn; doc; mode; outcome } ->
    [ ("txn", Int txn); ("doc", Str doc); ("mode", Str mode); ("outcome", Str outcome) ]
  | Lock_release { txn; count } -> [ ("txn", Int txn); ("count", Int count) ]
  | Txn_begin { txn; read_only } -> [ ("txn", Int txn); ("read_only", Bool read_only) ]
  | Txn_commit { txn; dirty_pages } ->
    [ ("txn", Int txn); ("dirty_pages", Int dirty_pages) ]
  | Txn_rollback { txn } -> [ ("txn", Int txn) ]
  | Fault_injected { site; action } ->
    [ ("site", Str site); ("action", Str action) ]
  | Wal_truncated { bytes } -> [ ("bytes", Int bytes) ]
  | Recovery_done { redo; skipped } ->
    [ ("redo", Int redo); ("skipped", Int skipped) ]
  | Checksum_failed { pid } -> [ ("pid", Int pid) ]
  | Conn_open { conn; session } -> [ ("conn", Int conn); ("session", Int session) ]
  | Conn_close { conn; requests } ->
    [ ("conn", Int conn); ("requests", Int requests) ]
  | Conn_reject { reason } -> [ ("reason", Str reason) ]
  | Server_state { state } -> [ ("state", Str state) ]
  | Repl_state { role; state } -> [ ("role", Str role); ("state", Str state) ]
  | Repl_batch { records; bytes; pos } ->
    [ ("records", Int records); ("bytes", Int bytes); ("pos", Int pos) ]
  | Repl_apply { txn; pages } -> [ ("txn", Int txn); ("pages", Int pages) ]
  | Repl_reseed { epoch } -> [ ("epoch", Int epoch) ]
  | Repl_promote { epoch } -> [ ("epoch", Int epoch) ]
  | Scrub_repair { pid; source } -> [ ("pid", Int pid); ("source", Str source) ]
  | Degraded_mode { entered; reason } ->
    [ ("entered", Bool entered); ("reason", Str reason) ]

let entry_to_json e =
  Metrics.Obj
    (("seq", Metrics.Int e.seq)
    :: ("at", Metrics.Float e.at)
    :: ("event", Metrics.Str (event_name e.event))
    :: event_fields e.event)

let to_json_lines () =
  String.concat "\n" (List.map (fun e -> Metrics.json_to_string (entry_to_json e)) (dump ()))

(* Retained-event counts per event type, sorted by name — the shape the
   governor aggregate report wants. *)
let counts_by_type () =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let k = event_name e.event in
      Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0))
    (dump ());
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
