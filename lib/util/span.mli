(** Request-scoped distributed tracing spans (Dapper-style).

    One client request = one trace: a 16-hex-char trace ID plus a tree
    of named spans with parent links, monotonic durations and typed
    annotations.  The client generates the trace context, the wire
    protocol carries it, and the server/replication layers add their
    spans under the client's IDs, so [\trace <id>] can show queue wait,
    lock wait, eval, commit fsync and standby apply for one statement.

    When tracing is disabled ({!set_enabled}[ false]) no context is
    ever created and every instrumented site costs one option match. *)

type span = {
  sp_trace : string;
  sp_id : int;
  sp_parent : int;  (** 0 = trace root *)
  sp_name : string;
  sp_wall : float;  (** wall clock at start (log timestamps) *)
  sp_start : float;  (** monotonic clock at start (durations) *)
  mutable sp_dur : float;  (** seconds; -1.0 while open *)
  mutable sp_annots : (string * Metrics.json) list;
}

type ctx
(** One request's span collector.  Owned by one thread at a time. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val gen_trace_id : unit -> string
(** Fresh 16-hex-char trace ID. *)

val make : ?trace:string -> ?parent:int -> unit -> ctx option
(** New context; [trace]/[parent] rebuild a context received over the
    wire.  [None] while tracing is disabled. *)

val trace_id : ctx -> string

val start : ctx -> ?parent:int -> string -> span
(** Open a span.  The parent defaults to the innermost open span, or to
    the context's remote parent at the top level. *)

val finish : ctx -> ?annots:(string * Metrics.json) list -> span -> unit
(** Close a span (idempotent on the duration). *)

val annotate : span -> string -> Metrics.json -> unit

val publish : ctx -> unit
(** Move the context's spans into the global bounded trace store, where
    {!find}/{!render} and [\trace <id>] can see them. *)

val spans : ctx -> span list
(** Spans collected so far, newest first. *)

val current : unit -> ctx option
(** Ambient context.  Set only inside the engine-locked section or in a
    single-threaded harness — the same ownership rule as [Deadline]. *)

val set_current : ctx option -> unit
val with_current : ctx option -> (unit -> 'a) -> 'a

val with_span : string -> (span option -> 'a) -> 'a
(** Run [f] under a span of the ambient context; just runs [f None]
    when no context is ambient. *)

val emit_remote :
  trace:string ->
  parent:int ->
  name:string ->
  dur:float ->
  (string * Metrics.json) list ->
  unit
(** Record an already-completed span straight into the store — for work
    (standby apply) that belongs to a trace published earlier. *)

val wire_of : trace:string -> parent:int -> string
(** ["trace:parent_span_id"] — the wire header encoding. *)

val parse_wire : string -> (string * int) option

val find : string -> span list option
(** All stored spans of a trace, in publish order. *)

val traces : unit -> (string * span list) list
(** Retained traces, newest first. *)

val summaries : ?limit:int -> unit -> (string * int * string * float) list
(** Per-trace [(id, span_count, root_name, total_seconds)] summaries,
    newest first — the governor report's trace section. *)

val render : string -> string option
(** Ascii span tree for [\trace <id>]; [None] for an unknown trace. *)

val span_to_json : span -> Metrics.json

val set_capacity : int -> unit
(** Retain at most this many traces (default 256, min 1). *)

val clear : unit -> unit
