(** OS helpers for the durability-sensitive layers. *)

val monotonic : unit -> float
(** Non-decreasing clock in seconds, for measuring durations and
    deadlines.  Backed by [Unix.gettimeofday] clamped so wall-clock
    steps backwards can never produce negative intervals; use
    {!Metrics.now} when a log needs a real wall timestamp.
    Thread-safe. *)

val fsync_dir : string -> unit
(** Fsync a directory so a created/renamed/truncated entry survives a
    crash.  Errors (filesystems that refuse directory fsync) are
    swallowed. *)

val is_resource_exhaustion : exn -> bool
(** [true] for the errno family meaning "the machine ran out of a
    storage resource" — ENOSPC, EDQUOT (Linux errno 122, which OCaml
    reports as [EUNKNOWNERR]), EMFILE, ENFILE.  These are the errors
    that flip a node into degraded read-only mode rather than aborting
    a single transaction. *)

val write_file_durable : string -> string -> unit
(** Write a file via tmp + fsync + rename + directory fsync, so a crash
    leaves either the old content or the new, never a torn mix. *)
