(* Unified retry with bounded exponential backoff and decorrelated
   jitter.

   Three hand-rolled loops used to live in the tree (client connect,
   standby reconnect, lock acquisition), each with its own backoff
   arithmetic and none with jitter — so every client that lost the
   primary at the same instant retried in lockstep and hammered the
   survivor in waves.  This module centralises the discipline:

     - exponential growth capped at [cap_s];
     - decorrelated jitter (AWS style): each sleep is drawn uniformly
       from [base_s, prev * 3], so consecutive sleeps de-synchronise
       even across processes started at the same time;
     - deterministic when [jitter = false] or under a fixed [seed]
       (tests and the chaos harness need reproducible schedules);
     - deadline-aware: an armed statement deadline fires between
       sleeps rather than being slept through;
     - instrumented: every sleep bumps [retry.sleeps] and
       [retry.sleeps.<label>].

   The jitter PRNG is the same minimal-standard LCG as {!Fault} so a
   seeded chaos run replays byte-identically. *)

type policy = {
  label : string;
  max_attempts : int; (* <= 0 means unbounded *)
  base_s : float;
  cap_s : float;
  jitter : bool;
  seed : int;
}

let policy ?(max_attempts = 0) ?(base_s = 0.01) ?(cap_s = 1.0) ?(jitter = true)
    ?(seed = 0) label =
  { label; max_attempts; base_s; cap_s; jitter; seed }

type t = {
  p : policy;
  mutable attempt : int; (* completed (failed) attempts so far *)
  mutable prev_sleep_s : float;
  mutable rng : int;
}

(* Seed 0 asks for per-process self-seeding: jitter exists to spread
   *distinct* processes apart, so a deterministic default would defeat
   it.  PID + monotonic clock bits is plenty — this is not crypto. *)
let self_seed () =
  let t = int_of_float (Unix.gettimeofday () *. 1e6) in
  (Unix.getpid () * 7919) lxor (t land 0xFFFFFF)

let start p =
  let seed = if p.seed = 0 then self_seed () else p.seed in
  { p; attempt = 0; prev_sleep_s = 0.0; rng = (2 * abs seed) + 1 }

let attempt t = t.attempt
let reset t =
  t.attempt <- 0;
  t.prev_sleep_s <- 0.0

let next_rng t =
  t.rng <- t.rng * 48271 mod 0x7FFFFFFF;
  t.rng

let uniform t lo hi =
  if hi <= lo then lo
  else lo +. (float_of_int (next_rng t) /. 2147483647.0 *. (hi -. lo))

(* the sleep the next [pause] would take, pure of the RNG draw *)
let next_sleep t =
  let p = t.p in
  let expo = p.base_s *. (2.0 ** float_of_int (min t.attempt 16)) in
  let raw =
    if not p.jitter then expo
    else if t.prev_sleep_s <= 0.0 then uniform t p.base_s (expo *. 2.0)
    else uniform t p.base_s (t.prev_sleep_s *. 3.0)
  in
  Float.min t.p.cap_s (Float.max p.base_s raw)

(* Record a failed attempt.  Returns [false] once the budget is spent
   (the caller raises its own error); otherwise sleeps and returns
   [true].  An armed statement deadline is honoured: we never sleep
   past work the engine is no longer allowed to do. *)
let pause t =
  t.attempt <- t.attempt + 1;
  if t.p.max_attempts > 0 && t.attempt >= t.p.max_attempts then false
  else begin
    Deadline.check_now ();
    let s = next_sleep t in
    t.prev_sleep_s <- s;
    Counters.bump Counters.retry_sleeps;
    Counters.bump ("retry.sleeps." ^ t.p.label);
    (try Unix.sleepf s with Unix.Unix_error (Unix.EINTR, _, _) -> ());
    Deadline.check_now ();
    true
  end

(* Run [f] under the policy: retry while [retry_on] accepts the
   exception and [pause] grants budget; re-raise the last failure
   otherwise. *)
let run p ~retry_on f =
  let t = start p in
  let rec go () =
    try f () with
    | e when retry_on e ->
      if pause t then go () else raise e
  in
  go ()
