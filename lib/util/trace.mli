(** Bounded ring buffer of typed trace events.

    The session pipeline and the storage layers emit these at
    interesting transitions (statement boundaries with phase timings,
    plan-cache hits, buffer evictions, WAL appends and checkpoints,
    lock transitions, transaction lifecycle).  The ring keeps the most
    recent {!capacity} events; [\trace] dumps them as JSON lines. *)

type event =
  | Statement_start of { session : int; text : string }
  | Statement_end of {
      session : int;
      kind : string;  (** "query" | "update" | "ddl" *)
      ok : bool;
      cached : bool;  (** plan served from the session plan cache *)
      parse_ms : float;
      analyze_ms : float;
      rewrite_ms : float;
      execute_ms : float;
      total_ms : float;
    }
  | Plan_cache of { session : int; hit : bool }
  | Buffer_evict of { pid : int; dirty : bool }
  | Wal_append of { tag : string; bytes : int }
  | Checkpoint of { pages_flushed : int }
  | Lock_acquire of {
      txn : int;
      doc : string;
      mode : string;  (** "shared" | "exclusive" *)
      outcome : string;  (** "granted" | "blocked" | "deadlock" *)
    }
  | Lock_release of { txn : int; count : int }
  | Txn_begin of { txn : int; read_only : bool }
  | Txn_commit of { txn : int; dirty_pages : int }
  | Txn_rollback of { txn : int }
  | Fault_injected of { site : string; action : string }
      (** an armed fault-injection site fired *)
  | Wal_truncated of { bytes : int }
      (** torn WAL tail dropped at open/recovery *)
  | Recovery_done of { redo : int; skipped : int }
      (** WAL redo finished: images replayed / uncommitted skipped *)
  | Checksum_failed of { pid : int }  (** page checksum mismatch on read *)
  | Conn_open of { conn : int; session : int }
      (** server accepted a client connection and bound it to a session *)
  | Conn_close of { conn : int; requests : int }
      (** server connection ended, with its lifetime request count *)
  | Conn_reject of { reason : string }
      (** admission control refused a connection ("overloaded" | "shutdown") *)
  | Server_state of { state : string }
      (** serving-layer lifecycle: "listening" | "draining" | "stopped" *)
  | Repl_state of { role : string; state : string }
      (** replication lifecycle: role "primary" | "standby", state
          "connected" | "disconnected" | "seeding" | "applying" | ... *)
  | Repl_batch of { records : int; bytes : int; pos : int }
      (** WAL frames shipped to (sender) or received from (receiver) a
          peer; [pos] is the stream position after the batch *)
  | Repl_apply of { txn : int; pages : int }
      (** standby applied one committed transaction's after-images *)
  | Repl_reseed of { epoch : int }
      (** standby discarded its state and re-seeded from a full backup
          because the primary's WAL epoch changed *)
  | Repl_promote of { epoch : int }
      (** standby promoted to primary; [epoch] is its new WAL epoch *)
  | Scrub_repair of { pid : int; source : string }
      (** the scrubber repaired a corrupt page; [source] is
          "pool" | "wal" | "standby" *)
  | Degraded_mode of { entered : bool; reason : string }
      (** the node entered (or left) degraded read-only mode *)

type entry = { seq : int; at : float; event : event }

val emit : event -> unit
(** Append to the ring (drops the oldest entry once full); no-op while
    tracing is disabled.  Safe to call from concurrent server
    workers. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val set_capacity : int -> unit
(** Replace the ring with an empty one of the given capacity (min 1). *)

val capacity : unit -> int

val emitted : unit -> int
(** Total events emitted since the last {!clear}/{!set_capacity},
    including ones the ring has already dropped. *)

val clear : unit -> unit
val dump : unit -> entry list
(** Retained entries, oldest first. *)

val event_name : event -> string
val entry_to_json : entry -> Metrics.json
val to_json_lines : unit -> string
val counts_by_type : unit -> (string * int) list
