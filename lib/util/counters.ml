(* Global event counters used by benches to report block touches, buffer
   faults, pointer dereferences etc.  Kept dead simple: named integer
   cells.  Not thread-safe by design — benches are single-domain. *)

type t = (string, int ref) Hashtbl.t

let global : t = Hashtbl.create 32

let cell name =
  match Hashtbl.find_opt global name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add global name r;
    r

let bump ?(n = 1) name =
  let r = cell name in
  r := !r + n

(* gauge-style assignment: replication lag and other "current value"
   cells are set, not accumulated *)
let set name v =
  let r = cell name in
  r := v

let get name = match Hashtbl.find_opt global name with Some r -> !r | None -> 0

let reset name = match Hashtbl.find_opt global name with Some r -> r := 0 | None -> ()

let reset_all () = Hashtbl.iter (fun _ r -> r := 0) global

(* The hot-path [*_cell] bindings below pre-register their counters at
   module init, so the table always holds some cells that were never
   bumped.  [snapshot] hides those zero rows; [snapshot_all] keeps them
   for callers that care about registration itself. *)
let snapshot_all () =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) global []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () = List.filter (fun (_, v) -> v <> 0) (snapshot_all ())

let global_table = global

(* Well-known counter names, centralised so benches and storage agree. *)
let buffer_fault = "buffer.fault"
let buffer_hit = "buffer.hit"
let vas_fast_hit = "vas.fast_hit"
let block_touch = "block.touch"
let deref = "xptr.deref"
let node_moved = "node.moved"
let fields_updated = "update.fields"
let relabels = "nid.relabel"
let deep_copies = "constructor.deep_copy"
let page_reads = "disk.read"
let page_writes = "disk.write"
let plan_hit = "plan.hit"
let plan_miss = "plan.miss"
let index_probe = "index.probe"
let fault_injected = "fault.injected"
let checksum_verify = "checksum.verify"
let checksum_adopt = "checksum.adopt"
let checksum_fail = "checksum.fail"
let recovery_redo = "recovery.redo"
let recovery_skip = "recovery.skip"
let wal_truncated_bytes = "wal.truncated_bytes"
let lock_retry = "lock.retry"
let conn_accepted = "server.conn.accepted"
let conn_rejected = "server.conn.rejected"
let server_requests = "server.requests"
let query_timeout = "server.query_timeout"
let repl_bytes_shipped = "repl.bytes_shipped"
let repl_records_shipped = "repl.records_shipped"
let repl_txns_applied = "repl.txns_applied"
let repl_pages_applied = "repl.pages_applied"
let repl_heartbeats = "repl.heartbeats"
let repl_reseeds = "repl.reseeds"
let repl_promotions = "repl.promotions"
let repl_lag_bytes = "repl.lag_bytes"
let repl_acked_pos = "repl.acked_pos"
let repl_standby_connected = "repl.standby_connected"
let repl_standby_epoch = "repl.standby_epoch"
let retry_sleeps = "retry.sleeps"
let net_send = "net.send"
let net_recv = "net.recv"
let net_accept = "net.accept"
let net_injected = "net.injected"
let fence_demotions = "fence.demotions"
let fence_rejected_writes = "fence.rejected_writes"
let fence_rejected_pulls = "fence.rejected_pulls"
let cluster_epoch = "cluster.epoch"

(* Pre-resolved cells for the hot-path counters: incrementing these is
   a plain [incr], so instrumentation does not distort the pointer-
   dereference measurements (bench E7).  They share storage with the
   named counters above. *)
let vas_fast_hit_cell = cell vas_fast_hit
let buffer_hit_cell = cell buffer_hit
let buffer_fault_cell = cell buffer_fault
let deref_cell = cell deref
