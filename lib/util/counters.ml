(* Global event counters used by benches, the Prometheus endpoint and
   the observability stack: named integer cells.  The server era bumps
   these from every worker thread plus the replication and listener
   threads while /metrics scrapes them live, so the table and every
   read-modify-write go through one mutex: a bare Hashtbl.add can
   corrupt the table mid-resize, and [r := !r + n] loses increments
   when two threads interleave the read and the write.

   The pre-resolved [*_cell] bindings at the bottom stay plain [int
   ref]s bumped with an unguarded [incr]: those cells are only ever
   incremented from storage-layer hot paths that run under the
   governor's engine lock (statement execution, recovery, the
   standby's apply step), so they are already serialized and the
   mutex would only distort the measurements they exist for. *)

type t = (string, int ref) Hashtbl.t

let global : t = Hashtbl.create 32
let mu = Mutex.create ()

let locked f =
  Mutex.lock mu;
  match f () with
  | v ->
    Mutex.unlock mu;
    v
  | exception e ->
    Mutex.unlock mu;
    raise e

let cell_unlocked name =
  match Hashtbl.find_opt global name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add global name r;
    r

let cell name = locked (fun () -> cell_unlocked name)

let bump ?(n = 1) name =
  locked (fun () ->
      let r = cell_unlocked name in
      r := !r + n)

(* gauge-style assignment: replication lag and other "current value"
   cells are set, not accumulated *)
let set name v =
  locked (fun () ->
      let r = cell_unlocked name in
      r := v)

let get name =
  locked (fun () ->
      match Hashtbl.find_opt global name with Some r -> !r | None -> 0)

let reset name =
  locked (fun () ->
      match Hashtbl.find_opt global name with Some r -> r := 0 | None -> ())

let reset_all () = locked (fun () -> Hashtbl.iter (fun _ r -> r := 0) global)

(* The hot-path [*_cell] bindings below pre-register their counters at
   module init, so the table always holds some cells that were never
   bumped.  [snapshot] hides those zero rows; [snapshot_all] keeps them
   for callers that care about registration itself. *)
let snapshot_all () =
  locked (fun () -> Hashtbl.fold (fun k r acc -> (k, !r) :: acc) global [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () = List.filter (fun (_, v) -> v <> 0) (snapshot_all ())

let global_table = global

(* Well-known counter names, centralised so benches and storage agree. *)
let buffer_fault = "buffer.fault"
let buffer_hit = "buffer.hit"
let vas_fast_hit = "vas.fast_hit"
let block_touch = "block.touch"
let deref = "xptr.deref"
let node_moved = "node.moved"
let fields_updated = "update.fields"
let relabels = "nid.relabel"
let deep_copies = "constructor.deep_copy"
let page_reads = "disk.read"
let page_writes = "disk.write"
let plan_hit = "plan.hit"
let plan_miss = "plan.miss"
let index_probe = "index.probe"
let fault_injected = "fault.injected"
let checksum_verify = "checksum.verify"
let checksum_adopt = "checksum.adopt"
let checksum_fail = "checksum.fail"
let recovery_redo = "recovery.redo"
let recovery_skip = "recovery.skip"
let wal_truncated_bytes = "wal.truncated_bytes"
let wal_syncs = "wal.syncs"
let wal_group_syncs = "wal.group_syncs"
let lock_retry = "lock.retry"
let stmt_lock_restarts = "stmt.lock_restarts"
let conn_accepted = "server.conn.accepted"
let conn_rejected = "server.conn.rejected"
let server_requests = "server.requests"
let query_timeout = "server.query_timeout"
let repl_bytes_shipped = "repl.bytes_shipped"
let repl_records_shipped = "repl.records_shipped"
let repl_txns_applied = "repl.txns_applied"
let repl_pages_applied = "repl.pages_applied"
let repl_heartbeats = "repl.heartbeats"
let repl_reseeds = "repl.reseeds"
let repl_apply_restarts = "repl.apply_restarts"
let repl_batches_pipelined = "repl.batches_pipelined"
let repl_promotions = "repl.promotions"
let repl_lag_bytes = "repl.lag_bytes"
let repl_acked_pos = "repl.acked_pos"
let repl_standby_connected = "repl.standby_connected"
let repl_standby_epoch = "repl.standby_epoch"
let retry_sleeps = "retry.sleeps"
let net_send = "net.send"
let net_recv = "net.recv"
let net_accept = "net.accept"
let net_injected = "net.injected"
let fence_demotions = "fence.demotions"
let fence_rejected_writes = "fence.rejected_writes"
let fence_rejected_pulls = "fence.rejected_pulls"
let cluster_epoch = "cluster.epoch"
let scrub_passes = "scrub.passes"
let scrub_pages_checked = "scrub.pages_checked"
let scrub_corrupt = "scrub.corrupt"
let scrub_repaired_pool = "scrub.repaired_pool"
let scrub_repaired_wal = "scrub.repaired_wal"
let scrub_repaired_standby = "scrub.repaired_standby"
let scrub_deferred = "scrub.deferred"
let scrub_repair_failed = "scrub.repair_failed"
let scrub_progress = "scrub.progress"
let scrub_last_pass_pages = "scrub.last_pass_pages"
let degraded_state = "degraded.state"
let degraded_entered = "degraded.entered"
let degraded_recovered = "degraded.recovered"
let degraded_rejected_writes = "degraded.rejected_writes"
let resource_errors = "store.resource_errors"
let repl_pages_served = "repl.pages_served"

(* Pre-resolved cells for the hot-path counters: incrementing these is
   a plain [incr], so instrumentation does not distort the pointer-
   dereference measurements (bench E7).  They share storage with the
   named counters above. *)
let vas_fast_hit_cell = cell vas_fast_hit
let buffer_hit_cell = cell buffer_hit
let buffer_fault_cell = cell buffer_fault
let deref_cell = cell deref
