(* Error taxonomy for the whole system.  Codes loosely follow Sedna's
   SE-numbering convention: storage errors, query static/dynamic errors,
   transaction errors. *)

type code =
  | Storage_corruption
  | Corrupt_page
  | Page_out_of_bounds
  | Block_full
  | No_such_document
  | Document_exists
  | No_such_collection
  | Collection_exists
  | No_such_index
  | Index_exists
  | Xml_parse
  | Xquery_parse
  | Xquery_static
  | Xquery_type
  | Xquery_dynamic
  | Update_conflict
  | Lock_timeout
  | Deadlock
  | Txn_read_only
  | Txn_not_active
  | Recovery_failure
  | Unsupported
  | Overloaded
  | Query_timeout
  | Server_shutdown
  | Standby_read_only
  | Failover
  | Fenced
  | Degraded

let code_name = function
  | Storage_corruption -> "SE-STORAGE-CORRUPTION"
  | Corrupt_page -> "SE-CORRUPT-PAGE"
  | Page_out_of_bounds -> "SE-PAGE-OOB"
  | Block_full -> "SE-BLOCK-FULL"
  | No_such_document -> "SE-NO-DOCUMENT"
  | Document_exists -> "SE-DOCUMENT-EXISTS"
  | No_such_collection -> "SE-NO-COLLECTION"
  | Collection_exists -> "SE-COLLECTION-EXISTS"
  | No_such_index -> "SE-NO-INDEX"
  | Index_exists -> "SE-INDEX-EXISTS"
  | Xml_parse -> "SE-XML-PARSE"
  | Xquery_parse -> "XPST0003"
  | Xquery_static -> "XPST0008"
  | Xquery_type -> "XPTY0004"
  | Xquery_dynamic -> "FORG0001"
  | Update_conflict -> "SE-UPDATE-CONFLICT"
  | Lock_timeout -> "SE-LOCK-TIMEOUT"
  | Deadlock -> "SE-DEADLOCK"
  | Txn_read_only -> "SE-TXN-READONLY"
  | Txn_not_active -> "SE-TXN-NOT-ACTIVE"
  | Recovery_failure -> "SE-RECOVERY"
  | Unsupported -> "SE-UNSUPPORTED"
  | Overloaded -> "SE-OVERLOADED"
  | Query_timeout -> "SE-TIMEOUT"
  | Server_shutdown -> "SE-SHUTDOWN"
  | Standby_read_only -> "SE-READ-ONLY"
  | Failover -> "SE-FAILOVER"
  | Fenced -> "SE-FENCED"
  | Degraded -> "SE-DEGRADED"

exception Sedna_error of code * string

let raise_error code fmt =
  Format.kasprintf (fun msg -> raise (Sedna_error (code, msg))) fmt

let to_string = function
  | Sedna_error (code, msg) -> Printf.sprintf "%s: %s" (code_name code) msg
  | e -> Printexc.to_string e

let pp ppf e = Format.pp_print_string ppf (to_string e)
