(* Per-statement wall-clock budget (server admission control).

   The engine runs one statement at a time under the governor's store
   lock, so a single global deadline cell is enough: the server arms it
   just before a statement enters the engine and disarms it on the way
   out.  [check] is sprinkled on the engine's universal choke points
   (page dereference, expression dispatch); when unarmed it costs one
   load and a branch, and when armed the clock is only consulted every
   64th call so the instrumentation cannot distort the hot path it
   polices. *)

let armed = ref false
let deadline = ref infinity
let tick = ref 0

let set seconds =
  deadline := Metrics.mono () +. seconds;
  tick := 0;
  armed := true

let clear () =
  armed := false;
  deadline := infinity

let active () = !armed

let expire () =
  (* disarm first: abort paths triggered by the raise below run engine
     code themselves and must not re-trip the same deadline *)
  clear ();
  Counters.bump Counters.query_timeout;
  Error.raise_error Error.Query_timeout
    "statement exceeded its wall-clock budget"

let check () =
  if !armed then begin
    incr tick;
    if !tick land 63 = 0 && Metrics.mono () > !deadline then expire ()
  end

(* Unconditional clock sample — for span-boundary choke points (lock
   retry loops, phase transitions) where ticks accumulate too slowly
   for the every-64th gate to matter but latency between checks can be
   long (a sleeping lock retry never touches [check] at all). *)
let check_now () =
  if !armed && Metrics.mono () > !deadline then expire ()

(* The single-cell design assumes exactly one statement owns the cell
   at a time.  Group commit parks a committing statement *outside* the
   engine lock, during which another statement legitimately enters the
   engine and arms its own deadline — so the parking thread detaches
   its budget first and reattaches it once it holds the lock again.
   The parked wait itself is bounded by the group leader's fsync, not
   by the statement budget. *)
type snapshot = { snap_armed : bool; snap_deadline : float }

let suspend () =
  let s = { snap_armed = !armed; snap_deadline = !deadline } in
  clear ();
  s

let resume s =
  armed := s.snap_armed;
  deadline := s.snap_deadline;
  tick := 0
