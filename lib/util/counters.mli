(** Global event counters: benches and tests read block touches, buffer
    faults, dereference counts, relocation field-writes etc. from here.
    Thread-safe: cell creation and every read-modify-write are guarded
    by a mutex, because the server's worker threads, the replication
    threads and the Prometheus scraper all touch the table live.

    The hot-path counters are exposed as pre-resolved [int ref] cells so
    that incrementing them is a plain (unguarded) [incr] — they are only
    bumped from paths serialized by the governor's engine lock, and the
    instrumentation must not distort the dereference measurements it
    exists to support. *)

val bump : ?n:int -> string -> unit

val set : string -> int -> unit
(** Gauge-style assignment (replication lag etc.): overwrite the cell
    instead of accumulating into it. *)

val get : string -> int
val reset : string -> unit
val reset_all : unit -> unit

val snapshot : unit -> (string * int) list
(** Sorted [(name, value)] pairs for every counter with a non-zero
    value.  Registered-but-never-bumped cells (the hot-path [*_cell]
    bindings register theirs at module init) are omitted. *)

val snapshot_all : unit -> (string * int) list
(** Like {!snapshot} but including zero-valued registered cells. *)

val global_table : (string, int ref) Hashtbl.t
(** The raw storage behind the global counters.  {!Metrics.global}
    wraps this table so scoped metric sets and the legacy [Counters]
    API observe the same cells. *)

val cell : string -> int ref
(** The underlying cell of a named counter (creates it on first use). *)

(** {1 Well-known counter names} *)

val buffer_fault : string
val buffer_hit : string
val vas_fast_hit : string
val block_touch : string
val deref : string
val node_moved : string
val fields_updated : string
val relabels : string
val deep_copies : string
val page_reads : string
val page_writes : string

val plan_hit : string
(** Session plan-cache hit: statement executed without re-compilation. *)

val plan_miss : string
(** Session plan-cache miss: statement parsed, analysed and rewritten. *)

val index_probe : string
(** A value predicate answered from a B-tree index instead of a scan. *)

val fault_injected : string
(** An armed {!Fault} site fired (fail, crash or torn write). *)

val checksum_verify : string
(** Page read whose recorded CRC matched. *)

val checksum_adopt : string
(** Page read with no recorded CRC (legacy file): checksum adopted. *)

val checksum_fail : string
(** Page read whose recorded CRC mismatched — surfaced as Corrupt_page. *)

val recovery_redo : string
(** WAL after-image of a committed transaction replayed at recovery. *)

val recovery_skip : string
(** WAL after-image of an uncommitted transaction skipped at recovery. *)

val wal_truncated_bytes : string
(** Bytes of torn WAL tail dropped by truncation at open/recovery. *)

val wal_syncs : string
(** Physical WAL fsyncs.  Divided into {!wal_group_syncs} when the sync
    covered a parked commit group. *)

val wal_group_syncs : string
(** Coalesced group-commit fsyncs: one covering {!Wal.sync} acknowledged
    one or more parked committers. *)

val lock_retry : string
(** Blocked lock acquisition retried after a bounded backoff. *)

val stmt_lock_restarts : string
(** Auto-commit statement restarted after a lock timeout — typically
    the document lock was held by a commit parked in the group fsync;
    the restart waits outside the engine lock so that commit can
    complete and release. *)

val conn_accepted : string
(** Server connection admitted to the worker pool. *)

val conn_rejected : string
(** Server connection refused by admission control (SE-OVERLOADED) or
    during drain (SE-SHUTDOWN). *)

val server_requests : string
(** Wire-protocol requests served (any opcode). *)

val query_timeout : string
(** Statement aborted by its per-query wall-clock deadline. *)

val repl_bytes_shipped : string
(** WAL bytes shipped to standbys by {!Repl_sender}. *)

val repl_records_shipped : string
(** WAL records shipped to standbys. *)

val repl_txns_applied : string
(** Committed transactions applied by a standby's redo loop. *)

val repl_pages_applied : string
(** Page after-images installed by a standby's redo loop. *)

val repl_heartbeats : string
(** Heartbeat responses (primary had no new WAL for the standby). *)

val repl_reseeds : string
(** Standby re-seeds from a fresh full backup (epoch mismatch). *)

val repl_apply_restarts : string
(** Standby apply-stage failures recovered in place by replaying the
    locally durable WAL (added lag, zero loss). *)

val repl_batches_pipelined : string
(** Pull batches whose raw append/fsync overlapped the apply of an
    earlier batch on the standby. *)

val repl_promotions : string
(** Standby promotions to primary. *)

val repl_lag_bytes : string
(** Gauge: primary WAL bytes not yet acked by the slowest standby. *)

val repl_acked_pos : string
(** Gauge: last WAL position acked by a standby. *)

val repl_standby_connected : string
(** Gauge (standby side): 1 while connected to the primary. *)

val repl_standby_epoch : string
(** Gauge (standby side): WAL epoch the standby is tracking. *)

val retry_sleeps : string
(** A {!Retry} loop slept before re-attempting an operation. *)

val net_send : string
(** Frames offered to the wire by {!Netfault.on_send} (hits, not faults). *)

val net_recv : string
(** Frame reads offered to {!Netfault.on_recv}. *)

val net_accept : string
(** Accepted connections offered to {!Netfault.on_accept}. *)

val net_injected : string
(** A network fault actually fired (also bumped per action). *)

val fence_demotions : string
(** A node demoted itself after observing a higher cluster epoch. *)

val fence_rejected_writes : string
(** Write transactions refused with SE-FENCED. *)

val fence_rejected_pulls : string
(** Replication pulls refused because the peer holds a higher epoch. *)

val cluster_epoch : string
(** Gauge: this node's current cluster (fencing) epoch. *)

val scrub_passes : string
(** Completed full scrub passes over the data file. *)

val scrub_pages_checked : string
(** Pages whose on-disk CRC the scrubber verified. *)

val scrub_corrupt : string
(** Pages the scrubber confirmed corrupt (under the engine lock). *)

val scrub_repaired_pool : string
(** Corrupt pages rewritten from a clean resident buffer-pool frame. *)

val scrub_repaired_wal : string
(** Corrupt pages rewritten from a committed WAL after-image. *)

val scrub_repaired_standby : string
(** Corrupt pages rewritten from a page fetched off a standby. *)

val scrub_deferred : string
(** Corrupt-on-disk pages left alone because a dirty resident frame
    will overwrite them at the next flush anyway. *)

val scrub_repair_failed : string
(** Confirmed-corrupt pages with no repair source available. *)

val scrub_progress : string
(** Gauge: page id the in-flight scrub pass has reached (0 when idle). *)

val scrub_last_pass_pages : string
(** Gauge: pages checked by the last completed full pass. *)

val degraded_state : string
(** Gauge: 1 while the node is in degraded read-only mode. *)

val degraded_entered : string
(** Transitions into degraded mode (resource exhaustion observed). *)

val degraded_recovered : string
(** Transitions out of degraded mode (resource recovered). *)

val degraded_rejected_writes : string
(** Write transactions refused with SE-DEGRADED. *)

val resource_errors : string
(** ENOSPC/EDQUOT/EMFILE-class errors observed at storage call sites. *)

val repl_pages_served : string
(** Single-page repair fetches served to peers ({!Wire} Page_request). *)

(** {1 Pre-resolved hot-path cells (same storage as the names above)} *)

val vas_fast_hit_cell : int ref
val buffer_hit_cell : int ref
val buffer_fault_cell : int ref
val deref_cell : int ref
