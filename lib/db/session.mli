(** A client session (paper §3, Figure 1): owns at most one active
    transaction and runs statements through the full pipeline
    (parse → static analysis → optimizing rewrite → execute).

    Outside an explicit transaction, each statement auto-commits in its
    own transaction: read-only with a snapshot (no locks) for queries;
    updating with S2PL document locks for updates and DDL.  The lock
    set is inferred from the doc()/collection() references in the
    statement. *)

type t

type result =
  | Items of string  (** serialized query result *)
  | Updated of int  (** affected-node count of an update statement *)
  | Message of string  (** DDL confirmation *)

val result_to_string : result -> string

val connect : Sedna_core.Database.t -> t

val set_park : t -> ((unit -> unit) -> unit) -> unit
(** How this session's commits wait for the covering group fsync.  The
    governor installs [Governor.without_engine] here so the engine lock
    is released while the commit parks; the default runs the wait
    inline. *)

val database : t -> Sedna_core.Database.t

val id : t -> int
(** Process-unique session number (used in trace events). *)

val metrics : t -> Sedna_util.Metrics.set
(** The session's scoped counter set; its parent is
    {!Sedna_util.Metrics.global}, so session bumps also appear in the
    global counters. *)

val latency : t -> Sedna_util.Metrics.histogram
(** Statement latency of this session only (all sessions also feed the
    registered ["stmt.latency"] histogram). *)

val set_rewriter_options : t -> Sedna_xquery.Rewriter.options -> unit
(** Per-session optimizer switches (benches/tests use this for
    ablations).  Clears the compiled-plan cache. *)

val plan_cache_stats : t -> int * int
(** [(hits, misses)] of this session's compiled-plan cache.  A hit
    means the statement skipped parse → static analysis → rewrite
    entirely.  Plans are keyed by statement text and invalidated when
    the catalog epoch moves (any DDL) or the rewriter options change. *)

val clear_plan_cache : t -> unit

val begin_txn : ?read_only:bool -> t -> unit
val commit : t -> unit
val rollback : t -> unit
val in_transaction : t -> bool

val execute : t -> string -> result
(** Run one statement string: XQuery query, XUpdate statement or DDL. *)

val execute_string : t -> string -> string

(** {1 Profiling — EXPLAIN ANALYZE} *)

type profiled_plan = {
  pp_statement : string;
  pp_parse_ms : float;
  pp_analyze_ms : float;
  pp_rewrite_ms : float;
  pp_execute_ms : float;
  pp_rows : int;  (** result cardinality = the root operator's rows *)
  pp_result : string;  (** the serialized query result *)
  pp_plan : Sedna_engine.Profiler.op;  (** annotated operator tree *)
}

val profile : t -> string -> profiled_plan
(** Compile (bypassing the plan cache, so phase timings are real) and
    run one query with operator-level profiling attached: per-operator
    elapsed time, rows, buffer hits/faults, xptr dereferences and index
    probes.  Queries only; raises [Unsupported] for updates and DDL. *)

val render_profile : profiled_plan -> string
(** What the CLI's [\profile] prints. *)

val statement_locks :
  Sedna_core.Database.t -> Sedna_xquery.Xq_ast.statement -> (string * Sedna_core.Lock_mgr.mode) list
(** The inferred lock set (exposed for tests). *)
