(* Crash-recovery harness (the systematic half of crash-safety
   hardening).

   One run = one fault spec ("<site>:<policy>").  The harness sets up a
   fresh database, arms the spec, and drives a mutating workload whose
   phases cover every registered site: per-statement auto-commits,
   periodic checkpoints, and a hot backup mid-run.  Wherever the
   injected fault lands:

   - [Injected_crash] simulates process death: the database is dropped
     without flushing ([Database.crash]) and the directory is reopened,
     which runs recovery.  The workload then continues, so appends
     *after* recovery land in the truncated log too (the torn-tail
     regression).
   - [Injected_fault] exercises statement-level abort isolation: the
     statement fails, the transaction aborts cleanly, the session keeps
     working.

   Every run ends with one more simulated death + reopen, then checks
   the two properties that define crash safety here:

     durability — every acknowledged commit is present after recovery
     integrity  — the storage invariants of the document hold

   If the mid-run backup completed, it is also restored into a scratch
   directory and checked (covers the torn-copy-healed-by-log path). *)

open Sedna_util
open Sedna_core

type outcome = {
  spec : string;
  fired : bool;  (* the armed policy actually triggered *)
  crashes : int;  (* injected process deaths (the final one excluded) *)
  attempted : int;  (* statements attempted *)
  acked : int;  (* commits acknowledged to the client *)
  recovered : int;  (* acked entries still present after recovery *)
  backup_verified : bool;
  failures : string list;  (* empty = run passed *)
}

let ok o = o.failures = []

(* each committed entry carries a unique token; durability = every
   acked token is a substring of the document's string value *)
let entry_token i = Printf.sprintf "|%d|" i

(* entries are padded so the document quickly outgrows the small
   buffer pool: page faults then displace resident pages and the
   evict/flush sites stay hot for the whole armed window *)
let entry_text i = entry_token i ^ String.make 1500 'x'

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let rm_rf dir =
  if Sys.file_exists dir then
    ignore (Sys.command ("rm -rf " ^ Filename.quote dir))

exception Dead  (* reopen after a crash failed: abandon the run *)

let run_spec ?(ops = 12) ?(checkpoint_every = 4) ?(backup_at = 8)
    ?(buffer_frames = 2) ~dir spec =
  Fault.disarm_all ();
  let bak = dir ^ ".bak" in
  let restored = dir ^ ".restored" in
  rm_rf dir;
  rm_rf bak;
  rm_rf restored;
  let db = ref (Database.create ~buffer_frames dir) in
  ignore
    (Database.with_txn !db (fun txn st ->
         Database.lock_exn !db txn ~doc:"log" ~mode:Lock_mgr.Exclusive;
         Loader.load_string st ~doc_name:"log" "<log/>"));
  let fired = ref false in
  let crashes = ref 0 in
  let attempted = ref 0 in
  let acked = ref [] in
  let backup_ok = ref false in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  (* simulated process death: drop everything volatile, reopen (= run
     recovery).  The armed policy is NOT re-armed — the tail of the
     workload runs clean over the recovered state. *)
  let reopen ~injected =
    if injected then begin
      fired := true;
      incr crashes
    end;
    Fault.disarm_all ();
    Database.crash !db;
    match Database.open_existing ~buffer_frames dir with
    | fresh -> db := fresh
    | exception e ->
      fail "reopen after crash failed: %s" (Printexc.to_string e);
      raise Dead
  in
  (* run one phase, classifying the injected outcomes *)
  let guarded label f =
    match f () with
    | () -> ()
    | exception Fault.Injected_crash _ -> reopen ~injected:true
    | exception Fault.Injected_fault _ -> fired := true
    | exception Error.Sedna_error (Error.Degraded, _) ->
      (* an [enospc] policy fired on a write path and the database
         entered degraded mode; clear it (the harness plays the role of
         the resource coming back) so the rest of the run proceeds *)
      fired := true;
      Database.exit_degraded !db
    | exception e when Sysutil.is_resource_exhaustion e ->
      fired := true;
      Database.exit_degraded !db
    | exception e -> fail "%s failed: %s" label (Printexc.to_string e)
  in
  (* one write-probe per iteration keeps the [store.enospc] site hot;
     on (injected) exhaustion it mirrors the watchdog — enter degraded —
     then immediately recovers so the workload continues *)
  let resource_probe () =
    match Watchdog.probe_dir ~bytes:512 dir with
    | () -> ()
    | exception e when Sysutil.is_resource_exhaustion e ->
      fired := true;
      Database.enter_degraded !db "probe: resource exhaustion";
      Database.exit_degraded !db
  in
  (* Corrupt the on-disk copy of one committed page, run a scrub pass,
     and check it came back clean.  The XOR flip is undone in a finally
     whenever the repair did not land (armed fault aborted the pass, or
     the page was dirty-resident and repair deferred to the flush) so a
     later reopen never runs recovery over bytes we broke ourselves. *)
  let corrupt_and_scrub () =
    let last_committed_pid () =
      let records = Wal.read_all (Filename.concat dir "wal.sdb") in
      let committed = Hashtbl.create 16 in
      List.iter
        (function
          | Wal.Commit (t, _) -> Hashtbl.replace committed t true
          | Wal.Abort t -> Hashtbl.remove committed t
          | _ -> ())
        records;
      List.fold_left
        (fun acc r ->
          match r with
          | Wal.Image (t, pid, _) when Hashtbl.mem committed t -> Some pid
          | _ -> acc)
        None records
    in
    match last_committed_pid () with
    | None -> ()
    | Some pid ->
      let path = Filename.concat dir "data.sdb" in
      let off = (pid * Page.page_size) + 100 in
      let flip () =
        let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            ignore (Unix.lseek fd off Unix.SEEK_SET);
            let b = Bytes.create 1 in
            ignore (Unix.read fd b 0 1);
            Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
            ignore (Unix.lseek fd off Unix.SEEK_SET);
            ignore (Unix.write fd b 0 1))
      in
      let still_corrupt () =
        File_store.verify_page (Buffer_mgr.store (Database.buffer !db)) pid
        = `Corrupt
      in
      flip ();
      Fun.protect
        ~finally:(fun () -> if still_corrupt () then flip ())
        (fun () -> ignore (Scrubber.run_pass (Scrubber.create !db)))
  in
  Fault.arm_spec spec;
  (try
     for i = 1 to ops do
       incr attempted;
       guarded
         (Printf.sprintf "insert %d" i)
         (fun () ->
           let s = Session.connect !db in
           ignore
             (Session.execute s
                (Printf.sprintf
                   {|UPDATE insert <entry>%s</entry> into doc("log")/log|}
                   (entry_text i)));
           acked := i :: !acked);
       (* a read scan keeps the small buffer pool churning: page faults
          displace resident pages, so the evict/flush sites stay hot *)
       guarded "scan" (fun () ->
           let s = Session.connect !db in
           ignore (Session.execute_string s {|count(doc("log")/log/entry)|}));
       guarded "resource probe" resource_probe;
       if i mod checkpoint_every = 2 then guarded "scrub" corrupt_and_scrub;
       if i mod checkpoint_every = 0 then
         guarded "checkpoint" (fun () -> Database.checkpoint !db);
       if i = backup_at then
         guarded "backup" (fun () ->
             Backup.full !db ~dest:bak;
             backup_ok := true)
     done;
     (* the run always ends in a process death: every spec, including
        the pure-abort ones, exercises recovery *)
     reopen ~injected:false
   with Dead -> ());
  let recovered = ref 0 in
  if !failures = [] then begin
    let s = Session.connect !db in
    (match Session.execute_string s {|string(doc("log")/log)|} with
     | text ->
       List.iter
         (fun i ->
           if contains text (entry_token i) then incr recovered
           else fail "acked entry %d lost after recovery" i)
         !acked
     | exception e ->
       fail "post-recovery read failed: %s" (Printexc.to_string e));
    (match Integrity.check_document (Database.store !db) "log" with
     | [] -> ()
     | es -> List.iter (fail "integrity: %s") es);
    try Database.close !db with e ->
      fail "final close failed: %s" (Printexc.to_string e)
  end
  else (try Database.crash !db with _ -> ());
  (* a completed hot backup must restore to a consistent document: the
     log replay heals any page the copy caught mid-change *)
  if !failures = [] && !backup_ok then begin
    match Backup.restore ~src:bak ~dest:restored () with
    | rdb ->
      (match Integrity.check_document (Database.store rdb) "log" with
       | [] -> ()
       | es -> List.iter (fail "restored backup integrity: %s") es);
      (try Database.close rdb with _ -> ())
    | exception e -> fail "backup restore failed: %s" (Printexc.to_string e)
  end;
  Fault.disarm_all ();
  rm_rf dir;
  rm_rf bak;
  rm_rf restored;
  {
    spec;
    fired = !fired;
    crashes = !crashes;
    attempted = !attempted;
    acked = List.length !acked;
    recovered = !recovered;
    backup_verified = !backup_ok && !failures = [];
    failures = List.rev !failures;
  }

(* The matrix: every registered site crossed with the default policy
   set.  [crash@2] dies on the second hit (so the first hit's code path
   has completed once), [torn@2] dies mid-write leaving a torn
   page/frame/copy, [fail@1] turns the first hit into a clean abort,
   and [enospc@1] turns it into a real ENOSPC — the run must shed the
   write cleanly (degraded mode, no false ack) and carry on. *)
let default_policies = [ "crash@2"; "torn@2"; "fail@1"; "enospc@1" ]

let sanitize s =
  String.map (fun c -> match c with 'a' .. 'z' | '0' .. '9' -> c | _ -> '-')
    (String.lowercase_ascii s)

(* [repl.*] sites register whenever the replication library is linked,
   but they need a live primary/standby pair to ever be hit — they have
   their own harness (Repl_crashkit) and are excluded here by default. *)
let local_sites () =
  List.filter
    (fun s -> not (String.starts_with ~prefix:"repl." s))
    (Fault.sites ())

let run_matrix ?ops ?checkpoint_every ?backup_at ?buffer_frames
    ?(policies = default_policies) ?sites ~dir_prefix () =
  let sites = match sites with Some s -> s | None -> local_sites () in
  List.concat_map
    (fun site ->
      List.map
        (fun pol ->
          let spec = site ^ ":" ^ pol in
          let dir = Printf.sprintf "%s-%s" dir_prefix (sanitize spec) in
          run_spec ?ops ?checkpoint_every ?backup_at ?buffer_frames ~dir spec)
        policies)
    sites

let render o =
  Printf.sprintf "%-28s %-4s fired=%b crashes=%d acked=%d/%d recovered=%d%s%s"
    o.spec
    (if ok o then "ok" else "FAIL")
    o.fired o.crashes o.acked o.attempted o.recovered
    (if o.backup_verified then " backup-ok" else "")
    (match o.failures with
     | [] -> ""
     | es -> "\n    " ^ String.concat "\n    " es)
