(** Crash-recovery harness: drive a mutating workload with one fault
    spec armed, crash wherever it lands, reopen and check that every
    acknowledged commit survived and the storage invariants hold.
    The workload phases (auto-commit statements, periodic checkpoints,
    a mid-run hot backup) cover every registered fault site. *)

type outcome = {
  spec : string;  (** the "<site>:<policy>" that was armed *)
  fired : bool;  (** the armed policy actually triggered *)
  crashes : int;  (** injected process deaths (final clean one excluded) *)
  attempted : int;  (** statements attempted *)
  acked : int;  (** commits acknowledged to the client *)
  recovered : int;  (** acked entries still present after recovery *)
  backup_verified : bool;  (** mid-run backup completed and restored clean *)
  failures : string list;  (** empty = run passed *)
}

val ok : outcome -> bool

val run_spec :
  ?ops:int ->
  ?checkpoint_every:int ->
  ?backup_at:int ->
  ?buffer_frames:int ->
  dir:string ->
  string ->
  outcome
(** Run the workload in a fresh database under [dir] (removed and
    recreated, removed again on the way out) with the given fault spec
    armed.  Never raises: problems land in [failures]. *)

val default_policies : string list
(** [crash@2; torn@2; fail@1]. *)

val run_matrix :
  ?ops:int ->
  ?checkpoint_every:int ->
  ?backup_at:int ->
  ?buffer_frames:int ->
  ?policies:string list ->
  ?sites:string list ->
  dir_prefix:string ->
  unit ->
  outcome list
(** [run_spec] for every site crossed with [policies].  [sites]
    defaults to the registered sites minus the [repl.*] ones, which
    need a live primary/standby pair and have their own harness. *)

val render : outcome -> string
