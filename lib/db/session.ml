(* A client session (paper §3, Figure 1): owns at most one active
   transaction at a time and runs statements through the full pipeline:
   parse -> static analysis -> optimizing rewrite -> execute.

   Auto-commit mode: a statement outside an explicit transaction runs
   in its own transaction — read-only (snapshot, no locks) for queries,
   updating (S2PL document locks) for updates and DDL. *)

open Sedna_util
open Sedna_core
module Ast = Sedna_xquery.Xq_ast

type result =
  | Items of string (* serialized query result *)
  | Updated of int (* affected-node count *)
  | Message of string (* DDL confirmation *)

let result_to_string = function
  | Items s -> s
  | Updated n -> Printf.sprintf "update succeeded (%d nodes)" n
  | Message m -> m

(* A compiled plan: the statement after parse -> static analysis ->
   function inlining -> optimizing rewrite.  Valid while the catalog
   epoch it was compiled under stands — any DDL (index create/drop,
   document load/drop, new schema path) bumps the epoch and the next
   execution recompiles. *)
type plan = {
  c_stmt : Ast.statement;
  c_epoch : int;
  c_opts : Sedna_xquery.Rewriter.options;
}

let plan_cache_capacity = 256

type t = {
  db : Database.t;
  mutable txn : Txn.t option;
  mutable rewriter_options : Sedna_xquery.Rewriter.options;
  plans : (string, plan) Hashtbl.t; (* keyed by statement text *)
  mutable plan_hits : int;
  mutable plan_misses : int;
}

let connect db =
  {
    db;
    txn = None;
    rewriter_options = Sedna_xquery.Rewriter.default_options;
    plans = Hashtbl.create 32;
    plan_hits = 0;
    plan_misses = 0;
  }

let database t = t.db

let set_rewriter_options t o =
  t.rewriter_options <- o;
  (* plans compiled under other options are useless now *)
  Hashtbl.reset t.plans

let plan_cache_stats t = (t.plan_hits, t.plan_misses)

let clear_plan_cache t = Hashtbl.reset t.plans

(* ---- lock-set inference ----------------------------------------------- *)

(* Documents and collections a statement touches, from doc()/collection()
   calls in its tree.  Locking granularity is the document (paper §6.2). *)
let rec doc_refs (e : Ast.expr) : string list =
  match e with
  | Ast.Call (n, [ Ast.Str_lit d ])
    when let l = Xname.local n in
         l = "doc" || l = "document" -> [ d ]
  | Ast.Call (n, [ Ast.Str_lit _c ]) when Xname.local n = "collection" ->
    [] (* collections resolved to documents at lock time, below *)
  | Ast.Schema_path (d, _) -> [ d ]
  | Ast.Index_probe p ->
    (p.Ast.ip_doc :: doc_refs p.Ast.ip_key)
    @ doc_refs p.Ast.ip_residual @ doc_refs p.Ast.ip_fallback
  | Ast.Int_lit _ | Ast.Dbl_lit _ | Ast.Str_lit _ | Ast.Empty_seq
  | Ast.Context_item | Ast.Var _ -> []
  | Ast.Sequence es -> List.concat_map doc_refs es
  | Ast.Range (a, b)
  | Ast.Binop (_, a, b)
  | Ast.And (a, b)
  | Ast.Or (a, b)
  | Ast.Comp_elem (a, b)
  | Ast.Comp_attr (a, b)
  | Ast.Comp_pi (a, b) -> doc_refs a @ doc_refs b
  | Ast.Neg a | Ast.Not a | Ast.Ddo a | Ast.Ordered a | Ast.Unordered a
  | Ast.Comp_text a | Ast.Comp_comment a | Ast.Virtual_constr a
  | Ast.Castable (a, _) | Ast.Cast (a, _) | Ast.Instance_of (a, _)
  | Ast.Treat_as (a, _) -> doc_refs a
  | Ast.If (c, t, f) -> doc_refs c @ doc_refs t @ doc_refs f
  | Ast.Call (_, args) -> List.concat_map doc_refs args
  | Ast.Filter (p, preds) -> doc_refs p @ List.concat_map doc_refs preds
  | Ast.Path (p, steps) ->
    doc_refs p
    @ List.concat_map (fun (s : Ast.step) -> List.concat_map doc_refs s.Ast.preds) steps
  | Ast.Elem_constr (_, atts, content) ->
    List.concat_map
      (fun (a : Ast.attr_constr) -> List.concat_map doc_refs a.Ast.attr_value)
      atts
    @ List.concat_map doc_refs content
  | Ast.Quantified (_, binds, cond) ->
    List.concat_map (fun (_, e') -> doc_refs e') binds @ doc_refs cond
  | Ast.Flwor (clauses, ret) ->
    List.concat_map
      (function
        | Ast.For binds -> List.concat_map (fun (_, _, e') -> doc_refs e') binds
        | Ast.Let binds -> List.concat_map (fun (_, e') -> doc_refs e') binds
        | Ast.Where c -> doc_refs c
        | Ast.Order_by keys -> List.concat_map (fun (k, _) -> doc_refs k) keys)
      clauses
    @ doc_refs ret

let rec collection_refs (e : Ast.expr) : string list =
  match e with
  | Ast.Call (n, [ Ast.Str_lit c ]) when Xname.local n = "collection" -> [ c ]
  | Ast.Sequence es -> List.concat_map collection_refs es
  | Ast.Path (p, _) | Ast.Filter (p, _) -> collection_refs p
  | Ast.Flwor (clauses, ret) ->
    List.concat_map
      (function
        | Ast.For binds ->
          List.concat_map (fun (_, _, e') -> collection_refs e') binds
        | Ast.Let binds -> List.concat_map (fun (_, e') -> collection_refs e') binds
        | _ -> [])
      clauses
    @ collection_refs ret
  | _ -> []

let statement_locks (db : Database.t) (s : Ast.statement) :
    (string * Lock_mgr.mode) list =
  let docs_of_expr e =
    let direct = doc_refs e in
    let colls = collection_refs e in
    let from_colls =
      List.concat_map
        (fun c ->
          match Hashtbl.find_opt (Database.catalog db).Catalog.collections c with
          | Some docs -> docs
          | None -> [])
        colls
    in
    List.sort_uniq compare (direct @ from_colls)
  in
  match s with
  | Ast.Query (prolog, e) ->
    let var_docs = List.concat_map (fun (_, e') -> doc_refs e') prolog.Ast.variables in
    List.map
      (fun d -> (d, Lock_mgr.Shared))
      (List.sort_uniq compare (docs_of_expr e @ var_docs))
  | Ast.Update (_, u) ->
    let exprs =
      match u with
      | Ast.Insert_into (a, b)
      | Ast.Insert_preceding (a, b)
      | Ast.Insert_following (a, b) -> [ a; b ]
      | Ast.Delete a | Ast.Delete_undeep a -> [ a ]
      | Ast.Replace (_, a, b) -> [ a; b ]
      | Ast.Rename (a, _) -> [ a ]
    in
    List.map
      (fun d -> (d, Lock_mgr.Exclusive))
      (List.sort_uniq compare (List.concat_map docs_of_expr exprs))
  | Ast.Ddl d -> (
    match d with
    | Ast.Create_document n | Ast.Drop_document n
    | Ast.Load_string (_, n) | Ast.Load_file (_, n)
    | Ast.Create_document_in (n, _) -> [ (n, Lock_mgr.Exclusive) ]
    | Ast.Create_index { ix_doc; _ } -> [ (ix_doc, Lock_mgr.Exclusive) ]
    | Ast.Drop_index _ | Ast.Create_collection _ | Ast.Drop_collection _ -> [])

(* ---- transaction control ---------------------------------------------- *)

let begin_txn ?(read_only = false) t =
  (match t.txn with
   | Some txn when Txn.is_active txn ->
     Error.raise_error Error.Txn_not_active
       "session already has an active transaction"
   | _ -> ());
  t.txn <- Some (Database.begin_txn ~read_only t.db)

let commit t =
  match t.txn with
  | Some txn when Txn.is_active txn ->
    Database.commit t.db txn;
    t.txn <- None
  | _ -> Error.raise_error Error.Txn_not_active "no active transaction"

let rollback t =
  match t.txn with
  | Some txn when Txn.is_active txn ->
    Database.abort t.db txn;
    t.txn <- None
  | _ -> Error.raise_error Error.Txn_not_active "no active transaction"

let in_transaction t =
  match t.txn with Some txn -> Txn.is_active txn | None -> false

(* ---- statement compilation -------------------------------------------- *)

(* static analysis + function inlining + optimizing rewrite on one
   expression, with the live catalog feeding automatic index selection *)
let optimize_expr t (prolog : Ast.prolog) (e : Ast.expr) : Ast.expr =
  let e =
    if t.rewriter_options.Sedna_xquery.Rewriter.inline_functions then
      Sedna_xquery.Rewriter.inline_functions prolog.Ast.functions e
    else e
  in
  Sedna_xquery.Rewriter.rewrite_with
    ~catalog:(Database.catalog t.db)
    t.rewriter_options e

(* Compile a parsed statement: everything that does not depend on the
   data — so a cached plan skips it all.  Prolog variable initializers
   are rewritten here too; [build_ctx] below only evaluates them. *)
let compile t (stmt : Ast.statement) : Ast.statement =
  match stmt with
  | Ast.Query (prolog, e) ->
    ignore (Sedna_xquery.Static.analyse prolog e);
    let prolog =
      { prolog with
        Ast.variables =
          List.map (fun (v, e') -> (v, optimize_expr t prolog e')) prolog.Ast.variables
      }
    in
    Ast.Query (prolog, optimize_expr t prolog e)
  | Ast.Update (prolog, u) ->
    let opt = optimize_expr t prolog in
    let u =
      match u with
      | Ast.Insert_into (a, b) -> Ast.Insert_into (opt a, opt b)
      | Ast.Insert_preceding (a, b) -> Ast.Insert_preceding (opt a, opt b)
      | Ast.Insert_following (a, b) -> Ast.Insert_following (opt a, opt b)
      | Ast.Delete a -> Ast.Delete (opt a)
      | Ast.Delete_undeep a -> Ast.Delete_undeep (opt a)
      | Ast.Replace (v, a, b) -> Ast.Replace (v, opt a, opt b)
      | Ast.Rename (a, n) -> Ast.Rename (opt a, n)
    in
    let prolog =
      { prolog with
        Ast.variables =
          List.map (fun (v, e') -> (v, optimize_expr t prolog e')) prolog.Ast.variables
      }
    in
    Ast.Update (prolog, u)
  | Ast.Ddl _ -> stmt

(* The compiled-plan cache: parse + compile once per (statement text,
   catalog epoch, rewriter options).  DDL is never cached — it is
   compilation-free and always bumps the epoch anyway. *)
let compiled_statement t (text : string) : Ast.statement =
  let epoch = Catalog.epoch (Database.catalog t.db) in
  match Hashtbl.find_opt t.plans text with
  | Some p when p.c_epoch = epoch && p.c_opts = t.rewriter_options ->
    t.plan_hits <- t.plan_hits + 1;
    Counters.bump Counters.plan_hit;
    p.c_stmt
  | _ ->
    t.plan_misses <- t.plan_misses + 1;
    Counters.bump Counters.plan_miss;
    let stmt = compile t (Sedna_xquery.Xq_parser.parse_statement text) in
    (match stmt with
     | Ast.Ddl _ -> ()
     | Ast.Query _ | Ast.Update _ ->
       if
         Hashtbl.length t.plans >= plan_cache_capacity
         && not (Hashtbl.mem t.plans text)
       then Hashtbl.reset t.plans;
       Hashtbl.replace t.plans text
         { c_stmt = stmt; c_epoch = epoch; c_opts = t.rewriter_options });
    stmt

(* ---- statement execution ----------------------------------------------- *)

let build_ctx _t (st : Store.t) (prolog : Ast.prolog) : Sedna_engine.Executor.ctx =
  let funcs =
    List.map (fun (f : Ast.fun_def) -> (Xname.local f.Ast.fn_name, f)) prolog.Ast.functions
  in
  let ctx0 = Sedna_engine.Executor.initial_ctx ~funcs st in
  (* prolog variables (already rewritten by [compile]) are evaluated
     eagerly, in declaration order *)
  let vars =
    List.fold_left
      (fun vars (v, e) ->
        let ctx = { ctx0 with Sedna_engine.Executor.vars = vars } in
        (v, List.of_seq (Sedna_engine.Executor.eval ctx e)) :: vars)
      [] prolog.Ast.variables
  in
  { ctx0 with Sedna_engine.Executor.vars = vars }

(* Run an already-compiled statement. *)
let run_statement t (stmt : Ast.statement) (txn : Txn.t) : result =
  let st = Database.txn_store t.db txn in
  match stmt with
  | Ast.Query (prolog, e) ->
    let ctx = build_ctx t st prolog in
    Items (Sedna_engine.Xdm.serialize st (Sedna_engine.Executor.eval ctx e))
  | Ast.Update (prolog, u) ->
    if txn.Txn.read_only then
      Error.raise_error Error.Txn_read_only
        "update statement in a read-only transaction";
    let ctx = build_ctx t st prolog in
    Txn.log_op txn "update";
    Updated (Sedna_engine.Update_exec.execute ctx u)
  | Ast.Ddl d ->
    if txn.Txn.read_only then
      Error.raise_error Error.Txn_read_only "DDL in a read-only transaction";
    Txn.log_op txn "ddl";
    Message (Sedna_engine.Ddl_exec.execute st d)

let is_query = function Ast.Query _ -> true | _ -> false

(* Execute one statement string.  Within an explicit transaction the
   statement joins it; otherwise it runs in an auto-commit transaction
   of the appropriate kind. *)
let execute t (text : string) : result =
  let stmt = compiled_statement t text in
  let locks = statement_locks t.db stmt in
  match t.txn with
  | Some txn when Txn.is_active txn ->
    List.iter
      (fun (doc, mode) -> Database.lock_exn t.db txn ~doc ~mode)
      locks;
    Database.run t.db txn (fun () -> run_statement t stmt txn)
  | _ ->
    let read_only = is_query stmt in
    let txn = Database.begin_txn ~read_only t.db in
    (try
       if not read_only then
         List.iter
           (fun (doc, mode) -> Database.lock_exn t.db txn ~doc ~mode)
           locks;
       let r = Database.run t.db txn (fun () -> run_statement t stmt txn) in
       Database.commit t.db txn;
       r
     with e ->
       (if Txn.is_active txn then try Database.abort t.db txn with _ -> ());
       raise e)

let execute_string t text = result_to_string (execute t text)
