(* A client session (paper §3, Figure 1): owns at most one active
   transaction at a time and runs statements through the full pipeline:
   parse -> static analysis -> optimizing rewrite -> execute.

   Auto-commit mode: a statement outside an explicit transaction runs
   in its own transaction — read-only (snapshot, no locks) for queries,
   updating (S2PL document locks) for updates and DDL. *)

open Sedna_util
open Sedna_core
module Ast = Sedna_xquery.Xq_ast

type result =
  | Items of string (* serialized query result *)
  | Updated of int (* affected-node count *)
  | Message of string (* DDL confirmation *)

let result_to_string = function
  | Items s -> s
  | Updated n -> Printf.sprintf "update succeeded (%d nodes)" n
  | Message m -> m

(* A compiled plan: the statement after parse -> static analysis ->
   function inlining -> optimizing rewrite.  Valid while the catalog
   epoch it was compiled under stands — any DDL (index create/drop,
   document load/drop, new schema path) bumps the epoch and the next
   execution recompiles. *)
type plan = {
  c_stmt : Ast.statement;
  c_epoch : int;
  c_opts : Sedna_xquery.Rewriter.options;
}

let plan_cache_capacity = 256

type t = {
  id : int;
  db : Database.t;
  mutable txn : Txn.t option;
  mutable rewriter_options : Sedna_xquery.Rewriter.options;
  plans : (string, plan) Hashtbl.t; (* keyed by statement text *)
  metrics : Metrics.set; (* per-session scope, parent = Metrics.global *)
  latency : Metrics.histogram; (* per-session statement latency *)
  (* how this session's commits wait for the covering group fsync: the
     governor points this at [Governor.without_engine] so the engine
     lock is released while the commit parks; the default runs the
     wait inline (standalone sessions hold no engine lock) *)
  mutable park : (unit -> unit) -> unit;
}

(* All sessions feed one registered latency histogram besides their
   private ones; the governor report reads percentiles from it. *)
let stmt_latency = Metrics.histogram "stmt.latency"

let next_session_id = ref 0

let connect db =
  incr next_session_id;
  let id = !next_session_id in
  {
    id;
    db;
    txn = None;
    rewriter_options = Sedna_xquery.Rewriter.default_options;
    plans = Hashtbl.create 32;
    metrics =
      Metrics.create ~name:(Printf.sprintf "session-%d" id) ~parent:Metrics.global ();
    latency = Metrics.histogram ~register:false "session.latency";
    park = (fun wait -> wait ());
  }

let set_park t f = t.park <- f
let database t = t.db
let id t = t.id
let metrics t = t.metrics
let latency t = t.latency

let set_rewriter_options t o =
  t.rewriter_options <- o;
  (* plans compiled under other options are useless now *)
  Hashtbl.reset t.plans

(* Hits/misses come from the same scoped set whose bumps propagate into
   the global plan.hit / plan.miss counters — one bump site, no way for
   the per-session and global views to drift. *)
let plan_cache_stats t =
  (Metrics.get t.metrics Counters.plan_hit, Metrics.get t.metrics Counters.plan_miss)

let clear_plan_cache t = Hashtbl.reset t.plans

(* ---- lock-set inference ----------------------------------------------- *)

(* Documents and collections a statement touches, from doc()/collection()
   calls in its tree.  Locking granularity is the document (paper §6.2). *)
let rec doc_refs (e : Ast.expr) : string list =
  match e with
  | Ast.Call (n, [ Ast.Str_lit d ])
    when let l = Xname.local n in
         l = "doc" || l = "document" -> [ d ]
  | Ast.Call (n, [ Ast.Str_lit _c ]) when Xname.local n = "collection" ->
    [] (* collections resolved to documents at lock time, below *)
  | Ast.Schema_path (d, _) -> [ d ]
  | Ast.Index_probe p ->
    (p.Ast.ip_doc :: doc_refs p.Ast.ip_key)
    @ doc_refs p.Ast.ip_residual @ doc_refs p.Ast.ip_fallback
  | Ast.Int_lit _ | Ast.Dbl_lit _ | Ast.Str_lit _ | Ast.Empty_seq
  | Ast.Context_item | Ast.Var _ -> []
  | Ast.Sequence es -> List.concat_map doc_refs es
  | Ast.Range (a, b)
  | Ast.Binop (_, a, b)
  | Ast.And (a, b)
  | Ast.Or (a, b)
  | Ast.Comp_elem (a, b)
  | Ast.Comp_attr (a, b)
  | Ast.Comp_pi (a, b) -> doc_refs a @ doc_refs b
  | Ast.Neg a | Ast.Not a | Ast.Ddo a | Ast.Ordered a | Ast.Unordered a
  | Ast.Comp_text a | Ast.Comp_comment a | Ast.Virtual_constr a
  | Ast.Castable (a, _) | Ast.Cast (a, _) | Ast.Instance_of (a, _)
  | Ast.Treat_as (a, _) -> doc_refs a
  | Ast.If (c, t, f) -> doc_refs c @ doc_refs t @ doc_refs f
  | Ast.Call (_, args) -> List.concat_map doc_refs args
  | Ast.Filter (p, preds) -> doc_refs p @ List.concat_map doc_refs preds
  | Ast.Path (p, steps) ->
    doc_refs p
    @ List.concat_map (fun (s : Ast.step) -> List.concat_map doc_refs s.Ast.preds) steps
  | Ast.Elem_constr (_, atts, content) ->
    List.concat_map
      (fun (a : Ast.attr_constr) -> List.concat_map doc_refs a.Ast.attr_value)
      atts
    @ List.concat_map doc_refs content
  | Ast.Quantified (_, binds, cond) ->
    List.concat_map (fun (_, e') -> doc_refs e') binds @ doc_refs cond
  | Ast.Flwor (clauses, ret) ->
    List.concat_map
      (function
        | Ast.For binds -> List.concat_map (fun (_, _, e') -> doc_refs e') binds
        | Ast.Let binds -> List.concat_map (fun (_, e') -> doc_refs e') binds
        | Ast.Where c -> doc_refs c
        | Ast.Order_by keys -> List.concat_map (fun (k, _) -> doc_refs k) keys)
      clauses
    @ doc_refs ret

let rec collection_refs (e : Ast.expr) : string list =
  match e with
  | Ast.Call (n, [ Ast.Str_lit c ]) when Xname.local n = "collection" -> [ c ]
  | Ast.Sequence es -> List.concat_map collection_refs es
  | Ast.Path (p, _) | Ast.Filter (p, _) -> collection_refs p
  | Ast.Flwor (clauses, ret) ->
    List.concat_map
      (function
        | Ast.For binds ->
          List.concat_map (fun (_, _, e') -> collection_refs e') binds
        | Ast.Let binds -> List.concat_map (fun (_, e') -> collection_refs e') binds
        | _ -> [])
      clauses
    @ collection_refs ret
  | _ -> []

let statement_locks (db : Database.t) (s : Ast.statement) :
    (string * Lock_mgr.mode) list =
  let docs_of_expr e =
    let direct = doc_refs e in
    let colls = collection_refs e in
    let from_colls =
      List.concat_map
        (fun c ->
          match Hashtbl.find_opt (Database.catalog db).Catalog.collections c with
          | Some docs -> docs
          | None -> [])
        colls
    in
    List.sort_uniq compare (direct @ from_colls)
  in
  match s with
  | Ast.Query (prolog, e) ->
    let var_docs = List.concat_map (fun (_, e') -> doc_refs e') prolog.Ast.variables in
    List.map
      (fun d -> (d, Lock_mgr.Shared))
      (List.sort_uniq compare (docs_of_expr e @ var_docs))
  | Ast.Update (_, u) ->
    let exprs =
      match u with
      | Ast.Insert_into (a, b)
      | Ast.Insert_preceding (a, b)
      | Ast.Insert_following (a, b) -> [ a; b ]
      | Ast.Delete a | Ast.Delete_undeep a -> [ a ]
      | Ast.Replace (_, a, b) -> [ a; b ]
      | Ast.Rename (a, _) -> [ a ]
    in
    List.map
      (fun d -> (d, Lock_mgr.Exclusive))
      (List.sort_uniq compare (List.concat_map docs_of_expr exprs))
  | Ast.Ddl d -> (
    match d with
    | Ast.Create_document n | Ast.Drop_document n
    | Ast.Load_string (_, n) | Ast.Load_file (_, n)
    | Ast.Create_document_in (n, _) -> [ (n, Lock_mgr.Exclusive) ]
    | Ast.Create_index { ix_doc; _ } -> [ (ix_doc, Lock_mgr.Exclusive) ]
    | Ast.Drop_index _ | Ast.Create_collection _ | Ast.Drop_collection _ -> [])

(* ---- transaction control ---------------------------------------------- *)

let begin_txn ?(read_only = false) t =
  (match t.txn with
   | Some txn when Txn.is_active txn ->
     Error.raise_error Error.Txn_not_active
       "session already has an active transaction"
   | _ -> ());
  t.txn <- Some (Database.begin_txn ~read_only t.db)

let commit t =
  match t.txn with
  | Some txn when Txn.is_active txn ->
    Database.commit ~park:t.park t.db txn;
    t.txn <- None
  | _ -> Error.raise_error Error.Txn_not_active "no active transaction"

let rollback t =
  match t.txn with
  | Some txn when Txn.is_active txn ->
    Database.abort t.db txn;
    t.txn <- None
  | _ -> Error.raise_error Error.Txn_not_active "no active transaction"

let in_transaction t =
  match t.txn with Some txn -> Txn.is_active txn | None -> false

(* ---- statement compilation -------------------------------------------- *)

(* static analysis + function inlining + optimizing rewrite on one
   expression, with the live catalog feeding automatic index selection *)
let optimize_expr t (prolog : Ast.prolog) (e : Ast.expr) : Ast.expr =
  let e =
    if t.rewriter_options.Sedna_xquery.Rewriter.inline_functions then
      Sedna_xquery.Rewriter.inline_functions prolog.Ast.functions e
    else e
  in
  Sedna_xquery.Rewriter.rewrite_with
    ~catalog:(Database.catalog t.db)
    t.rewriter_options e

(* Compile a parsed statement: everything that does not depend on the
   data — so a cached plan skips it all.  Prolog variable initializers
   are rewritten here too; [build_ctx] below only evaluates them.
   Returns the compiled statement plus (analyze, rewrite) seconds for
   the statement trace. *)
let compile t (stmt : Ast.statement) : Ast.statement * float * float =
  match stmt with
  | Ast.Query (prolog, e) ->
    let ta, () =
      Metrics.time (fun () -> ignore (Sedna_xquery.Static.analyse prolog e))
    in
    let tr, stmt =
      Metrics.time (fun () ->
          let prolog =
            { prolog with
              Ast.variables =
                List.map
                  (fun (v, e') -> (v, optimize_expr t prolog e'))
                  prolog.Ast.variables
            }
          in
          Ast.Query (prolog, optimize_expr t prolog e))
    in
    (stmt, ta, tr)
  | Ast.Update (prolog, u) ->
    let tr, stmt =
      Metrics.time (fun () ->
          let opt = optimize_expr t prolog in
          let u =
            match u with
            | Ast.Insert_into (a, b) -> Ast.Insert_into (opt a, opt b)
            | Ast.Insert_preceding (a, b) -> Ast.Insert_preceding (opt a, opt b)
            | Ast.Insert_following (a, b) -> Ast.Insert_following (opt a, opt b)
            | Ast.Delete a -> Ast.Delete (opt a)
            | Ast.Delete_undeep a -> Ast.Delete_undeep (opt a)
            | Ast.Replace (v, a, b) -> Ast.Replace (v, opt a, opt b)
            | Ast.Rename (a, n) -> Ast.Rename (opt a, n)
          in
          let prolog =
            { prolog with
              Ast.variables =
                List.map
                  (fun (v, e') -> (v, optimize_expr t prolog e'))
                  prolog.Ast.variables
            }
          in
          Ast.Update (prolog, u))
    in
    (stmt, 0., tr)
  | Ast.Ddl _ -> (stmt, 0., 0.)

(* Phase timings of one statement's compilation, for the trace. *)
type compile_info = {
  ci_cached : bool;
  ci_parse_s : float;
  ci_analyze_s : float;
  ci_rewrite_s : float;
}

let cached_info = { ci_cached = true; ci_parse_s = 0.; ci_analyze_s = 0.; ci_rewrite_s = 0. }

(* The compiled-plan cache: parse + compile once per (statement text,
   catalog epoch, rewriter options).  DDL is never cached — it is
   compilation-free and always bumps the epoch anyway. *)
let compiled_statement t (text : string) : Ast.statement * compile_info =
  let epoch = Catalog.epoch (Database.catalog t.db) in
  match Hashtbl.find_opt t.plans text with
  | Some p when p.c_epoch = epoch && p.c_opts = t.rewriter_options ->
    Metrics.bump t.metrics Counters.plan_hit;
    Trace.emit (Trace.Plan_cache { session = t.id; hit = true });
    (p.c_stmt, cached_info)
  | _ ->
    Metrics.bump t.metrics Counters.plan_miss;
    Trace.emit (Trace.Plan_cache { session = t.id; hit = false });
    let tp, parsed =
      Metrics.time (fun () -> Sedna_xquery.Xq_parser.parse_statement text)
    in
    let stmt, ta, tr = compile t parsed in
    (match stmt with
     | Ast.Ddl _ -> ()
     | Ast.Query _ | Ast.Update _ ->
       if
         Hashtbl.length t.plans >= plan_cache_capacity
         && not (Hashtbl.mem t.plans text)
       then Hashtbl.reset t.plans;
       Hashtbl.replace t.plans text
         { c_stmt = stmt; c_epoch = epoch; c_opts = t.rewriter_options });
    (stmt, { ci_cached = false; ci_parse_s = tp; ci_analyze_s = ta; ci_rewrite_s = tr })

(* ---- statement execution ----------------------------------------------- *)

let build_ctx _t (st : Store.t) (prolog : Ast.prolog) : Sedna_engine.Executor.ctx =
  let funcs =
    List.map (fun (f : Ast.fun_def) -> (Xname.local f.Ast.fn_name, f)) prolog.Ast.functions
  in
  let ctx0 = Sedna_engine.Executor.initial_ctx ~funcs st in
  (* prolog variables (already rewritten by [compile]) are evaluated
     eagerly, in declaration order *)
  let vars =
    List.fold_left
      (fun vars (v, e) ->
        let ctx = { ctx0 with Sedna_engine.Executor.vars = vars } in
        (v, List.of_seq (Sedna_engine.Executor.eval ctx e)) :: vars)
      [] prolog.Ast.variables
  in
  { ctx0 with Sedna_engine.Executor.vars = vars }

(* Run an already-compiled statement. *)
let run_statement t (stmt : Ast.statement) (txn : Txn.t) : result =
  let st = Database.txn_store t.db txn in
  match stmt with
  | Ast.Query (prolog, e) ->
    let ctx = build_ctx t st prolog in
    Items (Sedna_engine.Xdm.serialize st (Sedna_engine.Executor.eval ctx e))
  | Ast.Update (prolog, u) ->
    if txn.Txn.read_only then
      Error.raise_error Error.Txn_read_only
        "update statement in a read-only transaction";
    let ctx = build_ctx t st prolog in
    Txn.log_op txn "update";
    Updated (Sedna_engine.Update_exec.execute ctx u)
  | Ast.Ddl d ->
    if txn.Txn.read_only then
      Error.raise_error Error.Txn_read_only "DDL in a read-only transaction";
    Txn.log_op txn "ddl";
    Message (Sedna_engine.Ddl_exec.execute st d)

let is_query = function Ast.Query _ -> true | _ -> false

(* Statement-level abort isolation: failures that can leave partial
   storage effects or queued lock requests behind must abort the whole
   transaction (releasing locks, restoring before-images) so the
   session survives cleanly instead of carrying a poisoned transaction.
   Pure statement errors (type errors, read-only violations, parse
   failures) leave the transaction usable. *)
let aborts_transaction = function
  | Fault.Injected_fault _ -> true
  | Error.Sedna_error
      ( ( Error.Lock_timeout | Error.Deadlock | Error.Storage_corruption
        | Error.Corrupt_page | Error.Update_conflict
        (* a fired statement deadline may have left partial update
           effects behind: only the owning transaction dies, its locks
           and before-images are released like any other abort *)
        | Error.Query_timeout
        (* resource exhaustion mid-transaction: the node just entered
           degraded mode and this transaction's writes can no longer be
           made durable — abort it rather than leave it half-applied *)
        | Error.Degraded ),
        _ ) ->
    true
  | e when Sedna_util.Sysutil.is_resource_exhaustion e -> true
  | _ -> false

let statement_kind = function
  | Ast.Query _ -> "query"
  | Ast.Update _ -> "update"
  | Ast.Ddl _ -> "ddl"

(* Execute one statement string.  Within an explicit transaction the
   statement joins it; otherwise it runs in an auto-commit transaction
   of the appropriate kind. *)
let execute t (text : string) : result =
  Trace.emit (Trace.Statement_start { session = t.id; text });
  (* tracing: join the server's request context when one is ambient,
     otherwise root a trace of our own (CLI, tests, bench); [owned]
     remembers which case so we publish and un-install only our own *)
  let owned =
    match Span.current () with
    | Some _ -> None
    | None ->
      let c = Span.make () in
      Span.set_current c;
      c
  in
  let cx = Span.current () in
  let stmt_sp =
    Option.map
      (fun c ->
        let sp = Span.start c "statement" in
        Span.annotate sp "session" (Metrics.Int t.id);
        Span.annotate sp "text" (Metrics.Str text);
        sp)
      cx
  in
  let t0 = Metrics.mono () in
  let ms s = s *. 1000. in
  let finish ~kind ~ok ~ci ~execute_s =
    let total = Metrics.mono () -. t0 in
    Metrics.observe t.latency total;
    Metrics.observe stmt_latency total;
    (match (cx, stmt_sp) with
     | Some c, Some sp ->
       Span.finish c
         ~annots:[ ("kind", Metrics.Str kind); ("ok", Metrics.Bool ok) ]
         sp
     | _ -> ());
    Slow_log.observe
      ~trace:(match cx with Some c -> Span.trace_id c | None -> "")
      ~session:t.id ~text ~kind ~ok ~cached:ci.ci_cached ~total_s:total
      ~spans:
        (match cx with
         | Some c ->
           List.rev_map
             (fun s -> (s.Span.sp_name, Float.max 0.0 s.Span.sp_dur *. 1000.))
             (Span.spans c)
         | None ->
           [
             ("parse", ms ci.ci_parse_s);
             ("analyze", ms ci.ci_analyze_s);
             ("rewrite", ms ci.ci_rewrite_s);
             ("execute", ms execute_s);
           ]);
    (match owned with
     | Some c ->
       Span.publish c;
       Span.set_current None
     | None -> ());
    Trace.emit
      (Trace.Statement_end
         {
           session = t.id;
           kind;
           ok;
           cached = ci.ci_cached;
           parse_ms = ms ci.ci_parse_s;
           analyze_ms = ms ci.ci_analyze_s;
           rewrite_ms = ms ci.ci_rewrite_s;
           execute_ms = ms execute_s;
           total_ms = ms total;
         })
  in
  try
    let stmt, ci =
      Span.with_span "compile" (fun sp ->
          let ((_, ci) as r) = compiled_statement t text in
          (match sp with
           | Some sp -> Span.annotate sp "cached" (Metrics.Bool ci.ci_cached)
           | None -> ());
          r)
    in
    (* span-boundary deadline check: compilation can be slow and never
       passes an executor choke point *)
    Deadline.check_now ();
    let locks = statement_locks t.db stmt in
    let execute_s, r =
      Metrics.time (fun () ->
          match t.txn with
          | Some txn when Txn.is_active txn -> (
            try
              List.iter
                (fun (doc, mode) -> Database.lock_exn t.db txn ~doc ~mode)
                locks;
              Span.with_span "eval" (fun _ ->
                  Database.run t.db txn (fun () -> run_statement t stmt txn))
            with
            | Fault.Injected_crash _ as e ->
              (* simulated process death: nothing may be written after
                 this point, the harness reopens the directory *)
              t.txn <- None;
              raise e
            | e when aborts_transaction e ->
              (if Txn.is_active txn then
                 try Database.abort t.db txn with
                 | Fault.Injected_crash _ as c ->
                   t.txn <- None;
                   raise c
                 | _ -> ());
              t.txn <- None;
              raise e)
          | _ ->
            let read_only = is_query stmt in
            let run_once () =
              let txn = Database.begin_txn ~read_only t.db in
              try
                if not read_only then
                  List.iter
                    (fun (doc, mode) -> Database.lock_exn t.db txn ~doc ~mode)
                    locks;
                let r =
                  Span.with_span "eval" (fun _ ->
                      Database.run t.db txn (fun () -> run_statement t stmt txn))
                in
                Database.commit ~park:t.park t.db txn;
                r
              with
              | Fault.Injected_crash _ as e -> raise e
              | e ->
                (if Txn.is_active txn then
                   try Database.abort t.db txn with
                   | Fault.Injected_crash _ as c -> raise c
                   | _ -> ());
                raise e
            in
            (* Lock timeouts restart the whole auto-commit statement: the
               document lock is typically held by a commit parked in the
               group fsync, and that commit can only complete — and
               release — once this session lets go of the engine lock.
               So the pause between attempts goes through [t.park]
               (engine lock released, like a commit park).  The timed-out
               attempt was fully aborted, and locks are acquired before
               any modification, so the restart is invisible to the
               client.  Explicit transactions are not restarted: their
               abort is the documented statement-failure contract. *)
            let max_attempts = 20 in
            let rec attempt n =
              match run_once () with
              | r -> r
              | exception Error.Sedna_error (Error.Lock_timeout, _)
                when n < max_attempts ->
                Counters.bump Counters.stmt_lock_restarts;
                t.park (fun () ->
                    Unix.sleepf (Float.min 0.008 (0.0005 *. float_of_int (1 lsl n))));
                attempt (n + 1)
            in
            attempt 1)
    in
    finish ~kind:(statement_kind stmt) ~ok:true ~ci ~execute_s;
    r
  with e ->
    finish ~kind:"error" ~ok:false ~ci:cached_info ~execute_s:0.;
    raise e

let execute_string t text = result_to_string (execute t text)

(* ---- profiling (EXPLAIN ANALYZE) --------------------------------------- *)

type profiled_plan = {
  pp_statement : string;
  pp_parse_ms : float;
  pp_analyze_ms : float;
  pp_rewrite_ms : float;
  pp_execute_ms : float;
  pp_rows : int; (* result cardinality = root operator row count *)
  pp_result : string; (* serialized result *)
  pp_plan : Sedna_engine.Profiler.op;
}

(* Profile one query: compile it with per-phase timing (the plan cache
   is deliberately bypassed so the compile phases are real), attach a
   profiler to the executor context, run to completion and return the
   annotated operator tree.  Joins the session's explicit transaction
   if one is active; otherwise runs read-only auto-commit like any
   other query. *)
let profile t (text : string) : profiled_plan =
  let ms s = s *. 1000. in
  let tp, parsed =
    Metrics.time (fun () -> Sedna_xquery.Xq_parser.parse_statement text)
  in
  match parsed with
  | Ast.Update _ | Ast.Ddl _ ->
    Error.raise_error Error.Unsupported "\\profile supports queries only"
  | Ast.Query _ ->
    let stmt, ta, tr = compile t parsed in
    let prolog, body =
      match stmt with
      | Ast.Query (prolog, e) -> (prolog, e)
      | _ -> assert false
    in
    let prof, root = Sedna_engine.Profiler.instrument body in
    let run txn =
      Database.run t.db txn (fun () ->
          let st = Database.txn_store t.db txn in
          let ctx =
            { (build_ctx t st prolog) with Sedna_engine.Executor.prof = Some prof }
          in
          Metrics.time (fun () ->
              Sedna_engine.Xdm.serialize st (Sedna_engine.Executor.eval ctx body)))
    in
    let te, result =
      match t.txn with
      | Some txn when Txn.is_active txn ->
        List.iter
          (fun (doc, mode) -> Database.lock_exn t.db txn ~doc ~mode)
          (statement_locks t.db stmt);
        run txn
      | _ ->
        let txn = Database.begin_txn ~read_only:true t.db in
        (try
           let r = run txn in
           Database.commit t.db txn;
           r
         with e ->
           (if Txn.is_active txn then try Database.abort t.db txn with _ -> ());
           raise e)
    in
    {
      pp_statement = text;
      pp_parse_ms = ms tp;
      pp_analyze_ms = ms ta;
      pp_rewrite_ms = ms tr;
      pp_execute_ms = ms te;
      pp_rows = root.Sedna_engine.Profiler.rows;
      pp_result = result;
      pp_plan = root;
    }

let render_profile (pp : profiled_plan) : string =
  Printf.sprintf
    "profile: %s\n\
     phases (ms): parse %.3f | analyze %.3f | rewrite %.3f | execute %.3f\n\
     %s\n\
     result cardinality: %d item(s)"
    pp.pp_statement pp.pp_parse_ms pp.pp_analyze_ms pp.pp_rewrite_ms
    pp.pp_execute_ms
    (Sedna_engine.Profiler.render pp.pp_plan)
    pp.pp_rows
