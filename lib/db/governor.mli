(** The governor (paper §3, Figure 1): the control centre that keeps
    track of databases and sessions.  In the original system these are
    processes; here they are objects with the same responsibilities —
    components register on creation and deregister on shutdown. *)

type t

val create : unit -> t

val create_database : t -> name:string -> dir:string -> Sedna_core.Database.t
val open_database : t -> name:string -> dir:string -> Sedna_core.Database.t
val find_database : t -> string -> Sedna_core.Database.t option
val get_database : t -> string -> Sedna_core.Database.t

val connect : t -> database:string -> int * Session.t
(** Create a session ("connection component") against a registered
    database; returns its id for {!disconnect}. *)

val disconnect : t -> int -> unit
(** Rolls back the session's open transaction, if any. *)

val session_count : t -> int

val shutdown : t -> unit
(** Disconnect every session and close every database. *)

val observability_report : t -> string
(** Aggregate report across sessions: per-session plan-cache stats and
    latency percentiles, registered histograms, non-zero global
    counters and retained trace-event counts by type. *)
