(** The governor (paper §3, Figure 1): the control centre that keeps
    track of databases and sessions.  In the original system these are
    processes; here they are objects with the same responsibilities —
    components register on creation and deregister on shutdown. *)

type t

(** Admission-control knobs: [max_sessions] bounds concurrent
    connections ({!connect} past it raises SE-OVERLOADED);
    [query_timeout_s] is the per-statement wall-clock budget the
    serving layer enforces (0. = disabled). *)
type limits = { max_sessions : int; query_timeout_s : float }

val default_limits : limits

val create : unit -> t

val limits : t -> limits
val set_limits : t -> limits -> unit

val with_engine : t -> (unit -> 'a) -> 'a
(** The coarse store lock serializing engine access across server
    worker threads.  Held per statement, never across an idle
    transaction: an uncommitted writer keeps its S2PL document locks
    between statements but not this mutex, so snapshot readers run
    without waiting for its commit (paper §6.3).  Not reentrant. *)

val without_engine : t -> (unit -> 'a) -> 'a
(** Release the engine lock around a blocking wait (the group-commit
    park) from inside {!with_engine}, re-acquiring it afterwards even
    on exception.  The statement's [Deadline] budget and ambient [Span]
    context are detached for the duration and restored with the lock,
    so the statement that runs in the window owns both cells cleanly.
    If the calling thread does not hold the engine lock (single-threaded
    tests and benches drive sessions without it), [f] runs inline. *)

val create_database : t -> name:string -> dir:string -> Sedna_core.Database.t
val open_database : t -> name:string -> dir:string -> Sedna_core.Database.t

val register_database : t -> name:string -> Sedna_core.Database.t -> unit
(** Register a database the caller opened itself (e.g. a standby
    restored from a shipped seed).  Raises if the name is taken. *)

val swap_database : t -> name:string -> Sedna_core.Database.t -> unit
(** Replace the registered database under [name] (standby re-seed).
    Sessions bound to the old database are disconnected — their
    snapshots point into the abandoned store.  The old database is not
    closed; the caller owns it.  Takes the engine lock for the
    rollbacks, so do not call while holding it. *)

val find_database : t -> string -> Sedna_core.Database.t option
val get_database : t -> string -> Sedna_core.Database.t

val connect : t -> database:string -> int * Session.t
(** Create a session ("connection component") against a registered
    database; returns its id for {!disconnect}.  Raises
    [Error.Sedna_error (Overloaded, _)] once [max_sessions] sessions
    are registered.  Thread-safe. *)

val disconnect : t -> int -> unit
(** Rolls back the session's open transaction, if any (taking the
    engine lock to do so — do not call while holding it).
    Thread-safe and idempotent. *)

val session_count : t -> int

val shutdown : t -> unit
(** Disconnect every session and close every database. *)

val observability_report : t -> string
(** Aggregate report across sessions: per-session plan-cache stats and
    latency percentiles, registered histograms, non-zero global
    counters and retained trace-event counts by type. *)
