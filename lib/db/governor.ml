(* The governor (paper §3, Figure 1): the control centre that keeps
   track of databases and sessions.  Databases register here on open;
   sessions are created against a registered database.  In the original
   system these are separate processes; here they are objects within
   one process, with the same responsibilities. *)

open Sedna_util
open Sedna_core

(* Admission-control knobs (paper §3: the governor is where global
   resource policy lives).  [max_sessions] bounds concurrent
   connections; [query_timeout_s] is the per-statement wall-clock
   budget the serving layer arms via [Deadline]; 0. disables it. *)
type limits = { max_sessions : int; query_timeout_s : float }

let default_limits = { max_sessions = 64; query_timeout_s = 0. }

type t = {
  databases : (string, Database.t) Hashtbl.t;
  mutable sessions : (int * Session.t) list;
  mutable next_session_id : int;
  mutable limits : limits;
  mu : Mutex.t; (* guards the registry fields above *)
  engine : Mutex.t; (* the coarse store lock: one statement in the engine *)
  mutable engine_owner : int; (* Thread.id of the holder, -1 when free *)
}

let create () =
  {
    databases = Hashtbl.create 4;
    sessions = [];
    next_session_id = 1;
    limits = default_limits;
    mu = Mutex.create ();
    engine = Mutex.create ();
    engine_owner = -1;
  }

let limits t = t.limits
let set_limits t l = t.limits <- l

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* The store lock serializing engine access across server worker
   threads.  Held per *statement*, never across an idle transaction:
   an uncommitted writer keeps its S2PL document locks but not this
   mutex, so snapshot readers slip in between its statements and read
   their version chain without waiting for the commit (paper §6.3). *)
let with_engine t f =
  Mutex.lock t.engine;
  t.engine_owner <- Thread.id (Thread.self ());
  Fun.protect
    ~finally:(fun () ->
      t.engine_owner <- -1;
      Mutex.unlock t.engine)
    f

(* Release the engine lock around a blocking wait — the group-commit
   park.  The caller is mid-statement inside [with_engine]; while it
   waits for the covering fsync, other sessions' statements run.

   Two global single-owner cells ride on "one statement in the engine
   at a time" and must not leak to whoever takes the lock next: the
   statement's [Deadline] budget is detached for the duration (the
   wait is bounded by the group leader's fsync, not by the budget),
   and the ambient [Span] context is cleared so a statement that runs
   while we park cannot attach its spans to our trace.  Both are
   restored after the lock is re-acquired, preserving the single-owner
   invariant on both sides of the wait.

   Callers that never took the engine lock (single-threaded tests and
   benches drive sessions directly) just run [f] inline: with no lock
   held there is nothing to release and no cell to detach. *)
let without_engine t f =
  if t.engine_owner <> Thread.id (Thread.self ()) then f ()
  else begin
    let budget = Deadline.suspend () in
    let cx = Span.current () in
    Span.set_current None;
    t.engine_owner <- -1;
    Mutex.unlock t.engine;
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock t.engine;
        t.engine_owner <- Thread.id (Thread.self ());
        Span.set_current cx;
        Deadline.resume budget)
      f
  end

let create_database t ~name ~dir =
  if Hashtbl.mem t.databases name then
    Error.raise_error Error.Document_exists "database %S already registered" name;
  let db = Database.create dir in
  Hashtbl.add t.databases name db;
  db

let open_database t ~name ~dir =
  if Hashtbl.mem t.databases name then
    Error.raise_error Error.Document_exists "database %S already registered" name;
  let db = Database.open_existing dir in
  Hashtbl.add t.databases name db;
  db

(* Register a database the caller opened itself — the replication
   receiver restores a seed with Backup.restore and opens the result,
   so the create/open helpers above don't fit. *)
let register_database t ~name db =
  if Hashtbl.mem t.databases name then
    Error.raise_error Error.Document_exists "database %S already registered" name;
  Hashtbl.add t.databases name db

let find_database t name = Hashtbl.find_opt t.databases name

let get_database t name =
  match find_database t name with
  | Some db -> db
  | None -> Error.raise_error Error.No_such_document "no database %S" name

(* paper §3: "for each client, the governor creates an instance of the
   connection component and establishes the connection".  Admission
   control lives here: past [max_sessions] the connect is refused with
   SE-OVERLOADED instead of queueing. *)
let connect t ~database : int * Session.t =
  let db = get_database t database in
  locked t.mu (fun () ->
      if List.length t.sessions >= t.limits.max_sessions then begin
        Counters.bump Counters.conn_rejected;
        Trace.emit (Trace.Conn_reject { reason = "overloaded" });
        Error.raise_error Error.Overloaded
          "session limit reached (%d of %d)" (List.length t.sessions)
          t.limits.max_sessions
      end;
      let s = Session.connect db in
      (* governor sessions run statements under the engine lock, so
         their commits may park outside it and let other sessions
         proceed during the group fsync *)
      Session.set_park s (fun wait -> without_engine t wait);
      let id = t.next_session_id in
      t.next_session_id <- id + 1;
      t.sessions <- (id, s) :: t.sessions;
      (id, s))

let disconnect t id =
  let s = locked t.mu (fun () ->
      let s = List.assoc_opt id t.sessions in
      t.sessions <- List.remove_assoc id t.sessions;
      s)
  in
  match s with
  | Some s when Session.in_transaction s ->
    (* the rollback touches the store: take the engine lock like any
       other statement would *)
    with_engine t (fun () -> Session.rollback s)
  | _ -> ()

let session_count t = locked t.mu (fun () -> List.length t.sessions)

(* Replace a registered database in place (standby re-seed: the old
   store is abandoned for a freshly restored one).  Sessions bound to
   the replaced database are disconnected — their snapshots point into
   the store being thrown away. *)
let swap_database t ~name db =
  let old = Hashtbl.find_opt t.databases name in
  Hashtbl.replace t.databases name db;
  match old with
  | None -> ()
  | Some old ->
    let stale =
      locked t.mu (fun () ->
          List.filter (fun (_, s) -> Session.database s == old) t.sessions)
    in
    List.iter (fun (id, _) -> disconnect t id) stale

let shutdown t =
  let sessions = locked t.mu (fun () -> t.sessions) in
  List.iter (fun (id, _) -> disconnect t id) sessions;
  Hashtbl.iter (fun _ db -> Database.close db) t.databases;
  Hashtbl.reset t.databases

(* Aggregate observability report across everything the governor
   manages: per-session plan-cache and latency figures, the registered
   latency histograms, the non-zero global counters and the retained
   trace events by type. *)
let observability_report t =
  let sessions = locked t.mu (fun () -> t.sessions) in
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "=== governor observability report ===";
  line "databases: %d, sessions: %d (max %d, query timeout %s)"
    (Hashtbl.length t.databases)
    (List.length sessions) t.limits.max_sessions
    (if t.limits.query_timeout_s > 0. then
       Printf.sprintf "%.1fs" t.limits.query_timeout_s
     else "off");
  List.iter
    (fun (gid, s) ->
      let hits, misses = Session.plan_cache_stats s in
      let h = Session.latency s in
      line
        "  session %d (governor id %d): %d stmts, plan cache %d hit / %d miss, \
         latency p50 %.3f ms p95 %.3f ms p99 %.3f ms"
        (Session.id s) gid
        (Metrics.hist_count h)
        hits misses
        (Metrics.percentile h 0.5 *. 1000.)
        (Metrics.percentile h 0.95 *. 1000.)
        (Metrics.percentile h 0.99 *. 1000.))
    (List.sort (fun (a, _) (b', _) -> compare a b') sessions);
  line "serving:";
  line "  connections: %d accepted, %d rejected; %d requests; %d query timeouts"
    (Counters.get Counters.conn_accepted)
    (Counters.get Counters.conn_rejected)
    (Counters.get Counters.server_requests)
    (Counters.get Counters.query_timeout);
  (match Metrics.histograms () with
   | [] -> ()
   | hs ->
     line "histograms:";
     List.iter
       (fun h ->
         line "  %-20s count %d mean %.3f ms p50 %.3f ms p95 %.3f ms p99 %.3f ms"
           (Metrics.hist_name h) (Metrics.hist_count h)
           (Metrics.hist_mean h *. 1000.)
           (Metrics.percentile h 0.5 *. 1000.)
           (Metrics.percentile h 0.95 *. 1000.)
           (Metrics.percentile h 0.99 *. 1000.))
       hs);
  line "crash safety:";
  List.iter
    (fun (name, hits, armed) ->
      line "  fault site %-18s %6d hits%s" name hits
        (match armed with Some p -> "  armed: " ^ p | None -> ""))
    (Fault.report ());
  line "  faults injected: %d; checksums: %d verified, %d adopted, %d failed"
    (Counters.get Counters.fault_injected)
    (Counters.get Counters.checksum_verify)
    (Counters.get Counters.checksum_adopt)
    (Counters.get Counters.checksum_fail);
  line "  recovery: %d pages redone, %d skipped; %d torn WAL bytes truncated; %d lock retries"
    (Counters.get Counters.recovery_redo)
    (Counters.get Counters.recovery_skip)
    (Counters.get Counters.wal_truncated_bytes)
    (Counters.get Counters.lock_retry);
  line "self-healing:";
  line "  scrub: %d passes, %d pages checked, %d corrupt; repaired %d pool / %d wal / %d standby; %d deferred, %d failed"
    (Counters.get Counters.scrub_passes)
    (Counters.get Counters.scrub_pages_checked)
    (Counters.get Counters.scrub_corrupt)
    (Counters.get Counters.scrub_repaired_pool)
    (Counters.get Counters.scrub_repaired_wal)
    (Counters.get Counters.scrub_repaired_standby)
    (Counters.get Counters.scrub_deferred)
    (Counters.get Counters.scrub_repair_failed);
  line "  degraded: %s; entered %d, recovered %d; %d writes rejected, %d resource errors"
    (if Counters.get Counters.degraded_state > 0 then "YES" else "no")
    (Counters.get Counters.degraded_entered)
    (Counters.get Counters.degraded_recovered)
    (Counters.get Counters.degraded_rejected_writes)
    (Counters.get Counters.resource_errors);
  line "replication:";
  line "  shipped: %d bytes, %d records; %d heartbeats"
    (Counters.get Counters.repl_bytes_shipped)
    (Counters.get Counters.repl_records_shipped)
    (Counters.get Counters.repl_heartbeats);
  line "  applied: %d txns, %d pages; %d re-seeds, %d promotions"
    (Counters.get Counters.repl_txns_applied)
    (Counters.get Counters.repl_pages_applied)
    (Counters.get Counters.repl_reseeds)
    (Counters.get Counters.repl_promotions);
  line "  lag: %d bytes (acked pos %d)"
    (Counters.get Counters.repl_lag_bytes)
    (Counters.get Counters.repl_acked_pos);
  line "global counters:";
  List.iter (fun (k, v) -> line "  %-24s %d" k v) (Counters.snapshot ());
  line "trace: %d events emitted, %d retained (capacity %d)" (Trace.emitted ())
    (List.length (Trace.dump ()))
    (Trace.capacity ());
  List.iter (fun (k, v) -> line "  %-24s %d" k v) (Trace.counts_by_type ());
  (match Span.summaries () with
   | [] -> ()
   | ts ->
     line "recent traces (newest first; \\trace <id> for the span tree):";
     List.iter
       (fun (id, nspans, root, total_s) ->
         line "  %s  %2d spans  root %-16s %8.3f ms" id nspans root
           (total_s *. 1000.))
       ts);
  (match Slow_log.dump () with
   | [] -> ()
   | es ->
     line "slow statements: %d recorded (threshold %.0f ms; \\slow for details)"
       (Slow_log.recorded_total ())
       (Slow_log.threshold () *. 1000.);
     List.iter
       (fun (e : Slow_log.entry) ->
         line "  %8.3f ms  session %d  %s" e.Slow_log.sl_total_ms
           e.Slow_log.sl_session
           (let t = e.Slow_log.sl_text in
            if String.length t > 60 then String.sub t 0 57 ^ "..." else t))
       es);
  Buffer.contents b
