(* Jepsen-lite network chaos drills.

   {!Repl_crashkit} proves the shipped copy survives process death;
   this module proves the whole distributed stack — primary server,
   hot standby, and a handful of concurrent wire clients — survives
   network weather, including the one scenario crash drills cannot
   produce: a mid-run promotion while the old primary is still alive
   and still acking writes (split brain).

   Each cell of the matrix arms one seeded network fault flavor on the
   {!Sedna_util.Netfault} sites, runs N client threads hammering
   inserts through the real TCP servers, promotes the standby halfway
   through, gossips the new cluster epoch back to the deposed primary
   over the wire (exactly what a failed-over client does), and then
   checks three invariants:

     no acked loss     every insert a client saw succeed is present on
                       at least one survivor (the deposed primary or
                       the promoted standby) — asynchronous shipping
                       means the union, not the new primary alone
     fencing holds     once the deposed primary is observably fenced,
                       no client gets another write acked by it: the
                       divergence window closes at the fence point
     integrity         both survivors pass structural checks

   Every probabilistic trigger carries the run's seed, so a failed
   drill replays identically from the seed printed in its report. *)

open Sedna_util
open Sedna_core
open Sedna_db
open Sedna_server

type outcome = {
  spec : string;  (** the armed SEDNA_NETFAULT spec for this cell *)
  seed : int;
  attempted : int;  (** client ops started *)
  acked : int;  (** ops a client saw succeed *)
  refused : int;  (** clean refusals: SE-READ-ONLY / SE-FENCED / SE-FAILOVER *)
  lost : int;  (** acked ops missing from BOTH survivors *)
  post_fence_acked : int;  (** acked by the deposed primary after its fence *)
  new_primary_acked : int;  (** acked after failover to the promoted standby *)
  injected : int;  (** net.injected delta over the run *)
  fenced : bool;  (** the deposed primary ended up fenced *)
  failures : string list;
}

let ok o = o.failures = [] && o.lost = 0 && o.post_fence_acked = 0 && o.fenced

let render o =
  if ok o then
    Printf.sprintf
      "PASS %-28s seed=%-6d acked %d/%d (refused %d)  lost 0  post-fence 0  \
       new-primary %d  injected %d"
      o.spec o.seed o.acked o.attempted o.refused o.new_primary_acked o.injected
  else
    Printf.sprintf
      "FAIL %-28s seed=%-6d acked %d/%d lost %d post-fence %d fenced %b%s"
      o.spec o.seed o.acked o.attempted o.lost o.post_fence_acked o.fenced
      (String.concat ""
         (List.map (fun f -> "\n       - " ^ f) o.failures))

let entry_token c i = Printf.sprintf "|%d:%d|" c i

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let rm_rf dir =
  if Sys.file_exists dir then
    ignore (Sys.command ("rm -rf " ^ Filename.quote dir))

(* The named fault flavors of the default matrix.  Frame-level [drop]
   is deliberately absent: on a blocking request/response protocol a
   silently vanished frame is an unbounded client hang, so connection-
   level drop (refused accepts) models loss instead.  [torn] kills
   connections mid-frame, [delay] adds latency to every site, and
   [partition] cuts primary<->standby both ways until healed. *)
let default_cells = [ "drop"; "delay"; "torn"; "partition" ]

let spec_of ~seed = function
  | "drop" -> Printf.sprintf "net.accept:drop%%0.3/%d" seed
  | "delay" -> Printf.sprintf "net.recv:delay=2%%0.2/%d" seed
  | "torn" -> Printf.sprintf "net.send:torn%%0.015/%d" seed
  | "partition" -> "part:primary<->standby"
  | s -> s (* raw spec passthrough for custom drills *)

(* a failed-over client re-contacting the deposed primary: open a
   session and send one statement carrying the new cluster epoch in
   the 'E' header — the server folds the epoch in and fences *)
let gossip_epoch ~port ~epoch =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      Wire.write_request fd (Wire.Open "db");
      (match Wire.read_response fd with _ -> ());
      Wire.write_request ~epoch fd (Wire.Execute "1");
      match Wire.read_response fd with _ -> ())

let run_spec ?(clients = 4) ?(ops = 24) ?(seed = 1) ~dir cell : outcome =
  Fault.disarm_all ();
  Netfault.disarm_all ();
  rm_rf dir;
  Unix.mkdir dir 0o755;
  let spec = spec_of ~seed cell in
  let mu = Mutex.create () in
  let failures = ref [] in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Mutex.lock mu;
        failures := m :: !failures;
        Mutex.unlock mu)
      fmt
  in
  let attempted = ref 0 in
  let refused = ref 0 in
  (* acked op: (client, op, start time, port that acked it) *)
  let acked : (int * int * float * int) list ref = ref [] in
  let injected0 = Counters.get Counters.net_injected in
  (* ---- the pair, each half behind its own server ------------------- *)
  let gov_p = Governor.create () in
  let gov_s = Governor.create () in
  let db =
    Governor.create_database gov_p ~name:"db" ~dir:(Filename.concat dir "primary")
  in
  ignore
    (Database.with_txn db (fun txn st ->
         Database.lock_exn db txn ~doc:"log" ~mode:Lock_mgr.Exclusive;
         Loader.load_string st ~doc_name:"log" "<log/>"));
  let sender = Repl_sender.start ~gov:gov_p db in
  let recv =
    Repl_receiver.start ~poll_s:0.005 ~heartbeat_timeout_s:0.5 ~gov:gov_s
      ~name:"db" ~dir:(Filename.concat dir "standby") ~host:"127.0.0.1"
      ~port:(Repl_sender.port sender) ()
  in
  (* a worker serves one connection for its lifetime: size the pools
     so every chaos client AND the fence-gossip probe get a seat, or
     the gossip starves in the accept queue behind the long-lived
     client connections and the fence never propagates *)
  let config = { Server.default_config with Server.pool_size = clients + 2 } in
  let srv_p = Server.start ~config gov_p in
  let srv_s =
    Server.start ~config
      ~on_promote:(fun () -> Repl_receiver.promote recv)
      gov_s
  in
  let p_port = Server.port srv_p and s_port = Server.port srv_s in
  let epoch0 = Wal.epoch (Database.wal db) and pos0 = Wal.size (Database.wal db) in
  if not (Repl_receiver.wait_caught_up recv ~epoch:epoch0 ~pos:pos0) then
    fail "standby never finished the initial seed";
  (* ---- self-healing under chaos ------------------------------------ *)
  (* Corrupt the on-disk copy of one flushed page (checkpoint first so
     it is clean-resident: reads keep hitting the pool frame and never
     the broken disk bytes) and let the background scrubber repair it
     while the clients hammer away.  The cell's existing invariants
     then double as the self-healing check: zero client-visible
     Corrupt_page, and the page verifies clean at teardown. *)
  Database.checkpoint db;
  let scrub_pid =
    let fs = Buffer_mgr.store (Database.buffer db) in
    let pid = File_store.page_count fs - 1 in
    if pid >= 0 then begin
      let fd = Unix.openfile (File_store.path fs) [ Unix.O_RDWR ] 0 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let off = (pid * Page.page_size) + 64 in
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          let b = Bytes.create 1 in
          ignore (Unix.read fd b 0 1);
          Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          ignore (Unix.write fd b 0 1))
    end;
    pid
  in
  let scrubber =
    Scrubber.create ~pages_per_sec:500 ~lock:(Governor.with_engine gov_p) db
  in
  Scrubber.start scrubber;
  (* ---- chaos on, clients in ---------------------------------------- *)
  (try Netfault.arm_spec spec with e -> fail "bad spec %s: %s" spec (Printexc.to_string e));
  let endpoints = [ ("127.0.0.1", p_port); ("127.0.0.1", s_port) ] in
  (* raised once the deposed primary's fence has been confirmed (or
     given up on): releases the workers into the tail phase, whose
     writes all START after the fence point — if the old primary acks
     any of them, the fencing invariant is broken *)
  let tail_go = ref false in
  let tail_ops = 4 in
  let worker c () =
    match
      Server_client.connect ~endpoints ~retries:8 ~backoff_s:0.01 ~port:p_port ()
    with
    | exception e -> fail "client %d never connected: %s" c (Printexc.to_string e)
    | cl ->
      (try ignore (Server_client.open_db cl "db")
       with e -> fail "client %d open failed: %s" c (Printexc.to_string e));
      let one i =
        Mutex.lock mu;
        incr attempted;
        Mutex.unlock mu;
        let t0 = Metrics.mono () in
        (match
           Server_client.execute cl
             (Printf.sprintf
                {|UPDATE insert <entry>%s</entry> into doc("log")/log|}
                (entry_token c i))
         with
         | _ ->
           let port = snd (Server_client.endpoint cl) in
           Mutex.lock mu;
           acked := (c, i, t0, port) :: !acked;
           Mutex.unlock mu
         | exception
             Server_client.Remote_error
               (("SE-READ-ONLY" | "SE-FENCED" | "SE-FAILOVER" | "SE-OVERLOADED"), _)
           ->
           (* clean, honest refusal: the op did not happen anywhere *)
           Mutex.lock mu;
           incr refused;
           Mutex.unlock mu;
           Unix.sleepf 0.005
         | exception e ->
           fail "client %d op %d: %s" c i (Printexc.to_string e));
        Unix.sleepf 0.002
      in
      for i = 1 to ops do one i done;
      let d = Unix.gettimeofday () +. 30. in
      while not !tail_go && Unix.gettimeofday () < d do
        Unix.sleepf 0.01
      done;
      for j = 1 to tail_ops do one (ops + j) done;
      (try Server_client.close cl with _ -> ())
  in
  let threads = List.init clients (fun c -> Thread.create (worker (c + 1)) ()) in
  (* ---- mid-run: promote the standby while the primary lives -------- *)
  let total = clients * ops in
  let deadline = Unix.gettimeofday () +. 30. in
  while
    (Mutex.lock mu;
     let done_ = List.length !acked + !refused in
     Mutex.unlock mu;
     done_ < total / 2)
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.01
  done;
  let dbg fmt =
    Printf.ksprintf
      (fun m ->
        if Sys.getenv_opt "SEDNA_CHAOS_DEBUG" <> None then
          Printf.eprintf "  dbg %.3f %s\n%!" (Metrics.mono ()) m)
      fmt
  in
  dbg "half-done trigger (acked+refused=%d)" (List.length !acked + !refused);
  let fence_seen = ref infinity in
  (match Repl_receiver.promote recv with
   | _msg -> dbg "promoted"
   | exception e -> fail "promote failed: %s" (Printexc.to_string e));
  Netfault.heal_all ();
  (match Repl_receiver.database recv with
   | None -> fail "no standby database after promotion"
   | Some sdb ->
     let epoch = Database.cluster_epoch sdb in
     if epoch <= Database.cluster_epoch db then
       fail "promotion did not raise the cluster epoch (%d vs %d)" epoch
         (Database.cluster_epoch db);
     (* fence gossip may race armed accept/torn faults: keep knocking *)
     let rec knock n =
       if Database.is_fenced db then ()
       else if n = 0 then ()
       else begin
         (try gossip_epoch ~port:p_port ~epoch
          with _ -> Unix.sleepf 0.01);
         Unix.sleepf 0.005;
         knock (n - 1)
       end
     in
     knock 50;
     dbg "knocked";
     let d = Unix.gettimeofday () +. 5. in
     while not (Database.is_fenced db) && Unix.gettimeofday () < d do
       Unix.sleepf 0.005
     done;
     if Database.is_fenced db then fence_seen := Metrics.mono ()
     else fail "deposed primary never fenced");
  tail_go := true;
  List.iter Thread.join threads;
  Netfault.disarm_all ();
  (* ---- invariants --------------------------------------------------- *)
  let acked = List.rev !acked in
  let lost = ref 0 and post_fence = ref 0 and new_primary = ref 0 in
  let read_log which d =
    match
      let s = Session.connect d in
      Session.execute_string s {|string(doc("log")/log)|}
    with
    | text -> text
    | exception e ->
      fail "read on %s failed: %s" which (Printexc.to_string e);
      ""
  in
  (if !failures = [] then
     match Repl_receiver.database recv with
     | None -> ()
     | Some sdb ->
       let old_text = read_log "deposed primary" db in
       let new_text = read_log "promoted standby" sdb in
       if Sys.getenv_opt "SEDNA_CHAOS_DEBUG" <> None then
         List.iter
           (fun (c, i, t0, port) ->
             Printf.eprintf "  dbg ack %d:%d t0-fence=%+.3f port=%d (p=%d s=%d)\n%!"
               c i (t0 -. !fence_seen) port p_port s_port)
           acked;
       List.iter
         (fun (c, i, t0, port) ->
           let tok = entry_token c i in
           if not (contains old_text tok || contains new_text tok) then begin
             incr lost;
             fail "acked entry %s missing from both survivors" tok
           end;
           if port = s_port then incr new_primary
           else if t0 > !fence_seen then begin
             incr post_fence;
             fail "entry %s acked by the deposed primary after its fence" tok
           end)
         acked;
       if !new_primary = 0 then
         fail "no client ever acked a write on the promoted standby";
       (match Integrity.check_document (Database.store sdb) "log" with
        | [] -> ()
        | es -> List.iter (fail "promoted standby integrity: %s") es);
       match Integrity.check_document (Database.store db) "log" with
       | [] -> ()
       | es -> List.iter (fail "deposed primary integrity: %s") es);
  let fenced = Database.is_fenced db in
  (* the page corrupted at the start must have been repaired online *)
  (if scrub_pid >= 0 then begin
     let clean () =
       Governor.with_engine gov_p (fun () ->
           File_store.verify_page
             (Buffer_mgr.store (Database.buffer db))
             scrub_pid
           <> `Corrupt)
     in
     let d = Unix.gettimeofday () +. 5. in
     while (not (clean ())) && Unix.gettimeofday () < d do
       Unix.sleepf 0.02
     done;
     if not (clean ()) then
       fail "scrubber never repaired corrupted page %d" scrub_pid
   end);
  (* ---- teardown ----------------------------------------------------- *)
  Scrubber.stop scrubber;
  Server.stop ~shutdown_governor:false srv_p;
  Server.stop ~shutdown_governor:false srv_s;
  Repl_receiver.stop recv;
  Repl_sender.stop sender;
  (try Governor.shutdown gov_s with _ -> ());
  (try Governor.shutdown gov_p with _ -> ());
  rm_rf dir;
  {
    spec;
    seed;
    attempted = !attempted;
    acked = List.length acked;
    refused = !refused;
    lost = !lost;
    post_fence_acked = !post_fence;
    new_primary_acked = !new_primary;
    injected = Counters.get Counters.net_injected - injected0;
    fenced;
    failures = List.rev !failures;
  }

let run_matrix ?clients ?ops ?(seed = 1) ?(cells = default_cells) ~dir_prefix () =
  List.mapi
    (fun k cell ->
      run_spec ?clients ?ops ~seed:(seed + k)
        ~dir:(Printf.sprintf "%s-%s" dir_prefix cell)
        cell)
    cells
