(** Primary side of WAL-shipping replication: a listener on a
    dedicated replication port serving the pull-based protocol of
    {!Sedna_server.Wire} (Batch / Heartbeat / Hole, plus full-backup
    seeding).  The standby's pull position doubles as its ack, so the
    sender keeps no durable per-standby state.

    Fault sites [repl.send] and [repl.heartbeat] fire just before the
    respective replies; an injected fault severs that replication
    connection only — the standby reconnects and resumes from its acked
    position. *)

type t

val start :
  ?host:string ->
  ?port:int ->
  gov:Sedna_db.Governor.t ->
  Sedna_core.Database.t ->
  t
(** Bind the replication port (0 = ephemeral) and start serving.  The
    governor's engine lock is taken only while cutting a seed backup or
    reading a page image for a repair fetch — streaming reads the WAL
    file without it. *)

val start_source :
  ?host:string ->
  ?port:int ->
  gov:Sedna_db.Governor.t ->
  (unit -> Sedna_core.Database.t option) ->
  t
(** Like {!start} but resolving the database per request: a standby can
    accept page-repair connections before its seed has produced a
    database (requests are refused until the source returns one), and
    keeps serving the *current* database across re-seeds. *)

val port : t -> int
val standby_count : t -> int
(** Currently attached replication connections. *)

val stop : t -> unit
(** Stop listening, sever every replication connection, join the
    serving threads.  Idempotent. *)
