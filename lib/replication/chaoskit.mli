(** Jepsen-lite network chaos drills over a live primary/standby pair.

    Each drill runs concurrent wire clients against the real TCP
    servers under one seeded {!Sedna_util.Netfault} flavor, promotes
    the standby mid-run while the old primary is still alive, gossips
    the new cluster epoch back to it, and asserts:

    - zero acked-commit loss across the union of survivors,
    - zero writes acked by the deposed primary after its fence,
    - structural integrity on both survivors.

    A failed drill replays identically from the seed in its report. *)

type outcome = {
  spec : string;  (** the armed SEDNA_NETFAULT spec for this cell *)
  seed : int;
  attempted : int;  (** client ops started *)
  acked : int;  (** ops a client saw succeed *)
  refused : int;  (** clean refusals: SE-READ-ONLY / SE-FENCED / SE-FAILOVER *)
  lost : int;  (** acked ops missing from BOTH survivors *)
  post_fence_acked : int;  (** acked by the deposed primary after its fence *)
  new_primary_acked : int;  (** acked after failover to the promoted standby *)
  injected : int;  (** net.injected delta over the run *)
  fenced : bool;  (** the deposed primary ended up fenced *)
  failures : string list;
}

val ok : outcome -> bool
val render : outcome -> string

val default_cells : string list
(** ["drop"; "delay"; "torn"; "partition"] — connection-refusal loss,
    per-frame latency, mid-frame connection death, and a two-way
    primary<->standby partition.  Every cell includes the mid-run
    promotion. *)

val spec_of : seed:int -> string -> string
(** Expand a cell name to its seeded [SEDNA_NETFAULT] spec; unknown
    names pass through as raw specs for custom drills. *)

val run_spec :
  ?clients:int -> ?ops:int -> ?seed:int -> dir:string -> string -> outcome
(** Run one cell ([dir] is scratch space, recreated and removed).
    [ops] is per client. *)

val run_matrix :
  ?clients:int ->
  ?ops:int ->
  ?seed:int ->
  ?cells:string list ->
  dir_prefix:string ->
  unit ->
  outcome list
(** One {!run_spec} per cell, seeds derived from [seed] by offset. *)
