(* Replication-channel half of the crash matrix.

   {!Sedna_db.Crashkit} proves the single-node story: crash anywhere,
   recover, keep every acked commit.  This module proves the shipped
   copy under the same discipline, with the three [repl.*] fault sites
   armed one at a time:

     repl.send         primary dies mid-batch (before the reply)
     repl.heartbeat    primary dies instead of heartbeating
     repl.apply        standby dies after receiving a batch, before it
                       is persisted or acked
     repl.batch_apply  standby apply stage dies after the batch is
                       durable and acked, before it is applied

   A fired fault at the first three sites severs the replication
   connection; the receiver reconnects and re-pulls from its acked
   position.  At [repl.batch_apply] the batch is already durable in
   the standby's own WAL, so the receiver recovers in place (reopen,
   replay the local log, resume from the persisted boundary).  The
   required outcome is always the same: the standby ends caught up and
   holding every entry the primary acked — added lag, zero loss.

   Each run also checkpoints the primary mid-workload, bumping the WAL
   epoch under live traffic so the Hole → re-seed path is exercised in
   every cell of the matrix, not just in dedicated tests. *)

open Sedna_util
open Sedna_core
open Sedna_db

let entry_token i = Printf.sprintf "|%d|" i
let entry_text i = entry_token i ^ String.make 1500 'x'

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let rm_rf dir =
  if Sys.file_exists dir then
    ignore (Sys.command ("rm -rf " ^ Filename.quote dir))

let repl_sites = [ "repl.send"; "repl.heartbeat"; "repl.apply"; "repl.batch_apply" ]

let run_spec ?(ops = 10) ?(reseed_at = 5) ~dir spec : Crashkit.outcome =
  Fault.disarm_all ();
  rm_rf dir;
  Unix.mkdir dir 0o755;
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let attempted = ref 0 in
  let acked = ref [] in
  let recovered = ref 0 in
  let fired = ref false in
  let reseeds0 = Counters.get Counters.repl_reseeds in
  (* primary and standby live in one process but behind separate
     governors, exactly as two sedna_cli server processes would be *)
  let gov_p = Governor.create () in
  let gov_s = Governor.create () in
  let db = Governor.create_database gov_p ~name:"db" ~dir:(Filename.concat dir "primary") in
  ignore
    (Database.with_txn db (fun txn st ->
         Database.lock_exn db txn ~doc:"log" ~mode:Lock_mgr.Exclusive;
         Loader.load_string st ~doc_name:"log" "<log/>"));
  let sender = Repl_sender.start ~gov:gov_p db in
  let recv =
    Repl_receiver.start ~heartbeat_timeout_s:0.5 ~gov:gov_s ~name:"db"
      ~dir:(Filename.concat dir "standby") ~host:"127.0.0.1"
      ~port:(Repl_sender.port sender) ()
  in
  let wal_tip () = (Wal.epoch (Database.wal db), Wal.size (Database.wal db)) in
  let epoch0, pos0 = wal_tip () in
  if not (Repl_receiver.wait_caught_up recv ~epoch:epoch0 ~pos:pos0) then
    fail "standby never finished the initial seed";
  let injected0 = Counters.get Counters.fault_injected in
  Fault.arm_spec spec;
  if !failures = [] then begin
    for i = 1 to ops do
      incr attempted;
      (match
         Governor.with_engine gov_p (fun () ->
             let s = Session.connect db in
             ignore
               (Session.execute s
                  (Printf.sprintf
                     {|UPDATE insert <entry>%s</entry> into doc("log")/log|}
                     (entry_text i))))
       with
       | () -> acked := i :: !acked
       | exception e -> fail "insert %d failed: %s" i (Printexc.to_string e));
      (* pace the workload to shipping: without this the whole loop can
         finish inside one poll interval, the post-checkpoint re-seed
         delivers every entry wholesale, and the batch-path sites
         (repl.send, repl.apply) are never exercised *)
      (let e, p = wal_tip () in
       ignore (Repl_receiver.wait_caught_up ~timeout_s:5. recv ~epoch:e ~pos:p));
      if i = reseed_at then
        (* live epoch bump: truncates the primary WAL under the
           standby's feet and forces a Hole → re-seed mid-workload *)
        match Governor.with_engine gov_p (fun () -> Database.checkpoint db) with
        | () -> ()
        | exception e -> fail "checkpoint failed: %s" (Printexc.to_string e)
    done;
    let epoch, pos = wal_tip () in
    if not (Repl_receiver.wait_caught_up ~timeout_s:20. recv ~epoch ~pos) then begin
      let te, tp = Repl_receiver.tracked recv in
      fail "standby never caught up: tracking (%d,%d), primary at (%d,%d)" te tp
        epoch pos
    end
  end;
  (* heartbeat-site policies only trip on idle polls, which may lag the
     workload slightly: give the armed fault a bounded grace period *)
  let deadline = Unix.gettimeofday () +. 2.0 in
  while
    Counters.get Counters.fault_injected <= injected0
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.01
  done;
  fired := Counters.get Counters.fault_injected > injected0;
  Fault.disarm_all ();
  (* the moment of truth: promote the standby and check it holds every
     entry the primary acknowledged *)
  if !failures = [] then begin
    (match Repl_receiver.promote recv with
     | _msg -> ()
     | exception e -> fail "promote failed: %s" (Printexc.to_string e));
    match Repl_receiver.database recv with
    | None -> fail "no standby database after promotion"
    | Some sdb ->
      (match
         let s = Session.connect sdb in
         Session.execute_string s {|string(doc("log")/log)|}
       with
       | text ->
         List.iter
           (fun i ->
             if contains text (entry_token i) then incr recovered
             else fail "acked entry %d missing on promoted standby" i)
           !acked
       | exception e ->
         fail "read on promoted standby failed: %s" (Printexc.to_string e));
      (match Integrity.check_document (Database.store sdb) "log" with
       | [] -> ()
       | es -> List.iter (fail "standby integrity: %s") es);
      match Integrity.check_document (Database.store db) "log" with
      | [] -> ()
      | es -> List.iter (fail "primary integrity: %s") es
  end;
  (* at least one re-seed must have happened (the initial seed counts;
     the mid-run checkpoint forces another) *)
  let reseeded = Counters.get Counters.repl_reseeds - reseeds0 >= 2 in
  if !failures = [] && not reseeded then
    fail "mid-run checkpoint did not force a re-seed";
  Repl_receiver.stop recv;
  Repl_sender.stop sender;
  (try Governor.shutdown gov_s with _ -> ());
  (try Governor.shutdown gov_p with _ -> ());
  rm_rf dir;
  {
    Crashkit.spec;
    fired = !fired;
    crashes = 0;
    attempted = !attempted;
    acked = List.length !acked;
    recovered = !recovered;
    backup_verified = reseeded;
    failures = List.rev !failures;
  }

let sanitize s =
  String.map (fun c -> match c with 'a' .. 'z' | '0' .. '9' -> c | _ -> '-')
    (String.lowercase_ascii s)

let run_matrix ?ops ?(policies = Crashkit.default_policies) ~dir_prefix () =
  List.concat_map
    (fun site ->
      List.map
        (fun pol ->
          let spec = site ^ ":" ^ pol in
          let dir = Printf.sprintf "%s-%s" dir_prefix (sanitize spec) in
          run_spec ?ops ~dir spec)
        policies)
    repl_sites
