(** Standby side of WAL-shipping replication: continuous redo,
    pipelined.

    A pull thread tails the primary's WAL over the replication port,
    appends the shipped frames to the standby's own WAL and fsyncs
    (durability first), then acknowledges and pulls the next batch
    while a separate apply thread redoes complete transactions under
    the governor's engine lock — batch N+1's receive/fsync overlaps
    batch N's apply, so lag stays bounded by the slower stage rather
    than their sum.  The resume position is persisted at durably
    shipped transaction boundaries; restart recovery replays the local
    WAL, so a durable-but-unapplied transaction is never lost.  The
    standby database is registered in the governor under the given
    name and accepts [BEGIN READ ONLY] sessions; writes are refused
    with [SE-READ-ONLY].

    An epoch mismatch (the primary checkpointed and truncated its log)
    triggers an automatic re-seed from a full backup shipped over the
    same connection; the database directory path stays stable across
    re-seeds.

    Fault site [repl.apply] fires after a batch is received but before
    it is persisted or acknowledged: an injected fault costs the
    connection only, the batch is pulled again on reconnect.  Fault
    site [repl.batch_apply] fires in the apply thread, after the batch
    is durable and acknowledged: an injected fault there costs an
    in-place recovery (reopen the directory, replay the local WAL,
    resume from the persisted boundary) — added lag, zero loss. *)

type t

val start :
  ?poll_s:float ->
  ?heartbeat_timeout_s:float ->
  ?max_batch:int ->
  gov:Sedna_db.Governor.t ->
  name:string ->
  dir:string ->
  host:string ->
  port:int ->
  unit ->
  t
(** Start (or resume, if [dir] holds a previously stopped standby with
    a [repl.state] file) pulling from the primary's replication port.
    [heartbeat_timeout_s] bounds every response wait: a silent primary
    is treated as disconnected and the standby reconnects with
    backoff. *)

val database : t -> Sedna_core.Database.t option
(** [None] until the first seed completes. *)

val is_connected : t -> bool

val healthy : t -> bool
(** Connected and heard from the primary within the heartbeat
    timeout. *)

val tracked : t -> int * int
(** Current (epoch, next pull position). *)

val caught_up : t -> epoch:int -> pos:int -> bool
(** True when the standby tracks this epoch, has pulled at least to
    [pos], and has no transaction mid-flight. *)

val wait_caught_up : ?timeout_s:float -> t -> epoch:int -> pos:int -> bool
(** Poll {!caught_up}; [false] on timeout. *)

val promote : t -> string
(** Stop pulling and turn the standby into an ordinary read-write
    primary: incomplete shipped transactions are discarded (they lack
    commit records, exactly as crash recovery would discard them) and a
    checkpoint fixates the state under a fresh WAL epoch.  Idempotent;
    returns a human-readable status line.  Raises if the standby never
    finished its initial seed. *)

val stop : t -> unit
(** Stop the pull thread without promoting; the database (if any)
    stays registered and read-only. *)
