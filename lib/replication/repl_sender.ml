(* Primary side of WAL-shipping replication: a listener on a dedicated
   replication port, one serving thread per attached standby.

   The protocol is pull-based and the standby drives it: each Pull
   names the (epoch, position) the standby wants next, which doubles as
   the acknowledgement of everything before it — the sender keeps no
   per-standby durable state at all.  Three replies are possible:

     Batch      raw checksum-valid WAL frames from that position
     Heartbeat  nothing new yet (also proves the primary is alive)
     Hole       the position is gone — a checkpoint truncated the log
                and bumped its epoch; the standby must re-seed

   Re-seeding ships a full hot backup over the same connection
   (Seed_file per file, then Seed_done with the (epoch, position)
   streaming resumes from).  The resume position is captured under the
   WAL writer cursor *before* the files are copied, so the shipped log
   always covers it — see the ordering argument at {!serve_seed}.

   Reading the live WAL file concurrently with appends is safe without
   the engine lock: only whole checksum-valid frames are shipped, so a
   frame mid-append is simply not included yet (same reasoning as the
   torn-tail rule at recovery). *)

open Sedna_util
open Sedna_core
open Sedna_db
open Sedna_server

(* fault-injection sites: a fired policy severs the replication
   connection; the standby reconnects and resumes from its acked
   position, so the only effect is added lag *)
let send_site = Fault.site "repl.send"
let heartbeat_site = Fault.site "repl.heartbeat"

type t = {
  gov : Governor.t;
  (* resolved per request: a CLI standby only has a database once its
     seed completes, yet must accept page-repair connections from boot *)
  source : unit -> Database.t option;
  listen_fd : Unix.file_descr;
  bound_port : int;
  mutable stopping : bool;
  mutable listener : Thread.t option;
  mutable serving : Thread.t list;
  conns : (int, Unix.file_descr) Hashtbl.t;
  mu : Mutex.t;
  mutable next_conn : int;
}

let port t = t.bound_port

let rm_rf dir =
  if Sys.file_exists dir then
    ignore (Sys.command ("rm -rf " ^ Filename.quote dir))

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  data

(* Ship a transaction-consistent full backup.

   The resume position is captured *before* the files are copied — the
   copy order, not a lock, is what makes the seed safe.  Embedded
   sessions commit without holding the engine lock, so a commit can
   always land during the copy; with position-first ordering the copied
   log can only be *ahead* of the recorded position (the standby
   replays its local log on open and re-pulls from the position — apply
   is idempotent, so being ahead is harmless).  The reverse order loses
   the slid commit on the standby forever: the position covers it but
   the shipped log does not, so it is never pulled and never applied.
   A checkpoint truncating the log mid-copy invalidates the captured
   position; the epoch re-check catches that and retries. *)
let serve_seed t db conn_id fd =
  Trace.emit (Trace.Repl_state { role = "primary"; state = "seeding" });
  let tmp = Database.directory db ^ Printf.sprintf ".seed%d" conn_id in
  let rec consistent_backup attempts =
    rm_rf tmp;
    let epoch, pos = Wal.stable_tip (Database.wal db) in
    Governor.with_engine t.gov (fun () -> Backup.full db ~dest:tmp);
    if Wal.epoch (Database.wal db) = epoch then (epoch, pos)
    else if attempts <= 1 then
      Error.raise_error Error.Recovery_failure
        "seed backup kept racing checkpoint log truncations; giving up"
    else consistent_backup (attempts - 1)
  in
  let epoch, pos = consistent_backup 5 in
  Fun.protect
    ~finally:(fun () -> rm_rf tmp)
    (fun () ->
      List.iter
        (fun name ->
          let p = Filename.concat tmp name in
          if Sys.file_exists p then
            Wire.write_repl_response fd (Wire.Seed_file { name; data = read_file p }))
        [ "data.sdb"; "wal.sdb"; "catalog.sdb" ];
      Wire.write_repl_response fd
        (Wire.Seed_done { cluster = Database.cluster_epoch db; epoch; pos }))

let serve_pull db fd ~cluster ~epoch ~pos ~max_bytes =
  (* Fencing gate: a pull carrying a higher cluster epoch means the
     standby (or whoever re-seeded it) was promoted past us.  Demote
     before serving anything, and tell the puller the link is dead —
     a deposed primary must never ship WAL as if it were current. *)
  Database.observe_epoch db cluster;
  if cluster > 0 && Database.is_fenced db then begin
    Counters.bump Counters.fence_rejected_pulls;
    Wire.write_repl_response fd
      (Wire.Fenced { cluster = Database.cluster_epoch db })
  end
  else begin
  let my_cluster = Database.cluster_epoch db in
  let wal = Database.wal db in
  let cur_epoch = Wal.epoch wal in
  if epoch <> cur_epoch || pos > Wal.size wal then
    Wire.write_repl_response fd
      (Wire.Hole { cluster = my_cluster; epoch = cur_epoch })
  else begin
    let max_bytes = max 1 (min max_bytes (Wire.max_frame / 2)) in
    let frames, count, next_pos = Wal.stream_from (Wal.path wal) ~pos ~max_bytes in
    if Wal.epoch wal <> cur_epoch then
      (* a checkpoint truncated the log while we were reading it *)
      Wire.write_repl_response fd
        (Wire.Hole { cluster = my_cluster; epoch = Wal.epoch wal })
    else if count = 0 then begin
      Fault.check heartbeat_site;
      Counters.bump Counters.repl_heartbeats;
      Wire.write_repl_response fd
        (Wire.Heartbeat { cluster = my_cluster; epoch = cur_epoch; pos = Wal.size wal })
    end
    else begin
      Fault.check send_site;
      Counters.bump ~n:(String.length frames) Counters.repl_bytes_shipped;
      Counters.bump ~n:count Counters.repl_records_shipped;
      Trace.emit
        (Trace.Repl_batch
           { records = count; bytes = String.length frames; pos = next_pos });
      (* forward the trace marks of the commits this batch completes,
         so the standby's apply spans join the statements' traces *)
      let marks =
        List.map
          (fun (mk_pos, mk_trace, mk_span) -> { Wire.mk_pos; mk_trace; mk_span })
          (Wal.marks_between wal ~lo:pos ~hi:next_pos)
      in
      Wire.write_repl_response fd
        (Wire.Batch { cluster = my_cluster; epoch = cur_epoch; next_pos; frames; marks })
    end;
    (* the pull position acknowledges everything before it *)
    Counters.set Counters.repl_acked_pos pos;
    Counters.set Counters.repl_lag_bytes (max 0 (Wal.size wal - pos))
  end
  end

(* Serve one page to a peer's scrubber.  Same fencing gate as pulls: a
   deposed node must never hand out pages as if it were current.  The
   image is read under the engine lock from the pool (hitting the
   buffer here is fine — the serving node is a standby or an idle
   primary, and one page per repair is not a hot-set threat). *)
let serve_page t db fd ~cluster ~pid =
  Database.observe_epoch db cluster;
  let my_cluster = Database.cluster_epoch db in
  if cluster > 0 && (not (Database.is_standby db)) && Database.is_fenced db
  then begin
    Counters.bump Counters.fence_rejected_pulls;
    Wire.write_repl_response fd (Wire.Fenced { cluster = my_cluster })
  end
  else begin
    let page =
      try
        Governor.with_engine t.gov (fun () ->
            let bm = Database.buffer db in
            if pid >= 0 && pid < File_store.page_count (Buffer_mgr.store bm)
            then Some (Bytes.to_string (Buffer_mgr.page_image bm pid))
            else None)
      with _ -> None (* corrupt here too, or out of range: can't help *)
    in
    if page <> None then Counters.bump Counters.repl_pages_served;
    Wire.write_repl_response fd (Wire.Page_reply { cluster = my_cluster; pid; page })
  end

let serve_conn t conn_id fd =
  let rec loop () =
    if not t.stopping then begin
      (match (Wire.read_repl_request fd, t.source ()) with
       | _, None ->
         (* no database yet (standby waiting on its seed): nothing to
            serve on this connection *)
         raise End_of_file
       | Wire.Pull { cluster; epoch; pos; max_bytes }, Some db ->
         serve_pull db fd ~cluster ~epoch ~pos ~max_bytes
       | Wire.Seed_request, Some db -> serve_seed t db conn_id fd
       | Wire.Page_request { cluster; pid }, Some db ->
         serve_page t db fd ~cluster ~pid);
      loop ()
    end
  in
  (try loop () with
   | End_of_file | Unix.Unix_error _ | Wire.Protocol_error _
   | Wire.Disconnected _ -> ()
   | Fault.Injected_fault _ | Fault.Injected_crash _ ->
     (* an injected replication fault costs the connection, nothing
        more: the standby reconnects and re-pulls from its acked
        position *)
     ());
  Mutex.lock t.mu;
  Hashtbl.remove t.conns conn_id;
  Mutex.unlock t.mu;
  Netfault.unregister fd;
  try Unix.close fd with _ -> ()

let listener_main t () =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _addr when not (Netfault.on_accept fd ~local:"primary" ~peer:"standby") ->
      (try Unix.close fd with _ -> ());
      loop ()
    | fd, _addr ->
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      Mutex.lock t.mu;
      let id = t.next_conn in
      t.next_conn <- id + 1;
      Hashtbl.replace t.conns id fd;
      let th = Thread.create (fun () -> serve_conn t id fd) () in
      t.serving <- th :: t.serving;
      Mutex.unlock t.mu;
      loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
      when t.stopping ->
      ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

let start_source ?(host = "127.0.0.1") ?(port = 0) ~gov
    (source : unit -> Database.t option) : t =
  (* a standby tearing down mid-stream must surface as EPIPE on our
     write, not as a process-killing signal; the TCP server does the
     same, but replication can run without one (embedded, tests) *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let addr = Unix.inet_addr_of_string host in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (addr, port));
  Unix.listen listen_fd 8;
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t =
    {
      gov;
      source;
      listen_fd;
      bound_port;
      stopping = false;
      listener = None;
      serving = [];
      conns = Hashtbl.create 4;
      mu = Mutex.create ();
      next_conn = 1;
    }
  in
  t.listener <- Some (Thread.create (listener_main t) ());
  Logs.info (fun m -> m "replication sender listening on %s:%d" host bound_port);
  t

let start ?host ?port ~gov (db : Database.t) : t =
  start_source ?host ?port ~gov (fun () -> Some db)

let standby_count t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.conns in
  Mutex.unlock t.mu;
  n

let stop t =
  if not t.stopping then begin
    t.stopping <- true;
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with _ -> ());
    (* poke the listener out of accept(2) *)
    (try
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try
          Unix.connect fd
            (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", t.bound_port))
        with _ -> ());
       Unix.close fd
     with _ -> ());
    (match t.listener with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with _ -> ());
    Mutex.lock t.mu;
    let fds = Hashtbl.fold (fun _ fd acc -> fd :: acc) t.conns [] in
    let serving = t.serving in
    t.serving <- [];
    Mutex.unlock t.mu;
    List.iter
      (fun fd ->
        Netfault.interrupt fd;
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
      fds;
    List.iter Thread.join serving
  end
