(** Failover-aware client helpers on top of
    {!Sedna_server.Server_client}. *)

val connect :
  ?retries:int ->
  ?backoff_s:float ->
  ?fetch_chunk:int ->
  (string * int) list ->
  Sedna_server.Server_client.t
(** Connect to the first reachable endpoint of the list (primary
    first); the returned client fails over between them transparently
    for reads and surfaces [SE-FAILOVER] for interrupted writes.
    Raises [Invalid_argument] on an empty list. *)

val fetch_page :
  host:string -> port:int -> cluster:int -> pid:int -> int * Bytes.t option
(** One-shot page fetch from a peer's replication port
    ([Wire.Page_request]); returns the peer's cluster epoch and the
    page if it could serve one.  [cluster] is the requester's epoch,
    so a fenced peer refuses and a stale requester gets demoted. *)

val page_fetcher :
  host:string -> port:int -> Sedna_core.Database.t -> int -> Bytes.t option
(** {!Sedna_core.Scrubber} [fetch] hook bound to one endpoint, with the
    requester-side epoch gate: a page is only returned when the peer
    answered at exactly this database's cluster epoch and this node is
    not fenced.  Swallows connection errors ([None]). *)

val promote : host:string -> port:int -> database:string -> string
(** Ask the server at exactly this endpoint to promote its standby
    database to primary; returns the server's status line.  Raises
    {!Sedna_server.Server_client.Remote_error} if the server is not a
    standby. *)
