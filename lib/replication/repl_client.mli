(** Failover-aware client helpers on top of
    {!Sedna_server.Server_client}. *)

val connect :
  ?retries:int ->
  ?backoff_s:float ->
  ?fetch_chunk:int ->
  (string * int) list ->
  Sedna_server.Server_client.t
(** Connect to the first reachable endpoint of the list (primary
    first); the returned client fails over between them transparently
    for reads and surfaces [SE-FAILOVER] for interrupted writes.
    Raises [Invalid_argument] on an empty list. *)

val promote : host:string -> port:int -> database:string -> string
(** Ask the server at exactly this endpoint to promote its standby
    database to primary; returns the server's status line.  Raises
    {!Sedna_server.Server_client.Remote_error} if the server is not a
    standby. *)
