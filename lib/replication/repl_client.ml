(* Convenience entry points for failover-aware clients.

   The heavy lifting lives in {!Sedna_server.Server_client}: it owns
   the endpoint list, reconnect backoff and the retry/SE-FAILOVER
   decision per statement.  This module just packages the common
   call shapes. *)

open Sedna_server

(* One-shot page fetch against a peer's replication port, for the
   scrubber's standby-assisted repair.  Returns the peer's cluster
   epoch alongside the page so the caller can epoch-check before
   installing (a Fenced reply or a connection error is (epoch, None)). *)
let fetch_page ~host ~port ~cluster ~pid =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      Wire.write_repl_request fd (Wire.Page_request { cluster; pid });
      match Wire.read_repl_response fd with
      | Wire.Page_reply { cluster = c; page; _ } ->
        (c, Option.map Bytes.of_string page)
      | Wire.Fenced { cluster = c } -> (c, None)
      | _ -> (cluster, None))

(* A [Scrubber.create ~fetch] hook bound to one peer endpoint, with the
   requester-side epoch gate: the fetched page is installed only if the
   peer answered at exactly our cluster epoch and we are not fenced —
   pages must never cross a promotion boundary in either direction. *)
let page_fetcher ~host ~port (db : Sedna_core.Database.t) : int -> Bytes.t option =
  fun pid ->
    let open Sedna_core in
    if Database.is_fenced db then None
    else
      match
        fetch_page ~host ~port ~cluster:(Database.cluster_epoch db) ~pid
      with
      | exception _ -> None
      | peer_cluster, page ->
        Database.observe_epoch db peer_cluster;
        if
          peer_cluster = Database.cluster_epoch db
          && not (Database.is_fenced db)
        then page
        else None

let connect ?retries ?backoff_s ?fetch_chunk endpoints =
  match endpoints with
  | [] -> invalid_arg "Repl_client.connect: empty endpoint list"
  | (host, port) :: _ ->
    Server_client.connect ~host ~endpoints ?retries ?backoff_s ?fetch_chunk
      ~port ()

(* Issue the PROMOTE admin statement against one specific endpoint —
   failover-on-connect would defeat the point of targeting the
   standby. *)
let promote ~host ~port ~database =
  let c = Server_client.connect ~host ~port ~retries:3 () in
  Fun.protect
    ~finally:(fun () -> try Server_client.close c with _ -> ())
    (fun () ->
      ignore (Server_client.open_db c database);
      match Server_client.execute c "PROMOTE" with
      | Sedna_db.Session.Message m -> m
      | other -> Sedna_db.Session.result_to_string other)
