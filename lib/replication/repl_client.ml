(* Convenience entry points for failover-aware clients.

   The heavy lifting lives in {!Sedna_server.Server_client}: it owns
   the endpoint list, reconnect backoff and the retry/SE-FAILOVER
   decision per statement.  This module just packages the common
   call shapes. *)

open Sedna_server

let connect ?retries ?backoff_s ?fetch_chunk endpoints =
  match endpoints with
  | [] -> invalid_arg "Repl_client.connect: empty endpoint list"
  | (host, port) :: _ ->
    Server_client.connect ~host ~endpoints ?retries ?backoff_s ?fetch_chunk
      ~port ()

(* Issue the PROMOTE admin statement against one specific endpoint —
   failover-on-connect would defeat the point of targeting the
   standby. *)
let promote ~host ~port ~database =
  let c = Server_client.connect ~host ~port ~retries:3 () in
  Fun.protect
    ~finally:(fun () -> try Server_client.close c with _ -> ())
    (fun () ->
      ignore (Server_client.open_db c database);
      match Server_client.execute c "PROMOTE" with
      | Sedna_db.Session.Message m -> m
      | other -> Sedna_db.Session.result_to_string other)
