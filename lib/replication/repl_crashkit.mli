(** Replication-channel crash matrix: {!Sedna_db.Crashkit} discipline
    applied to the [repl.send] / [repl.heartbeat] / [repl.apply] fault
    sites.  Each run stands up a live primary + standby pair, arms one
    spec, drives acked inserts with a mid-run checkpoint (forcing the
    Hole → re-seed path), then promotes the standby and verifies it
    holds every acknowledged entry with clean storage invariants.
    In an outcome, [backup_verified] records that the forced mid-run
    re-seed happened; [crashes] is always 0 — injected replication
    faults cost a connection, not the process. *)

val repl_sites : string list

val run_spec :
  ?ops:int -> ?reseed_at:int -> dir:string -> string -> Sedna_db.Crashkit.outcome
(** Never raises: problems land in [failures]. *)

val run_matrix :
  ?ops:int ->
  ?policies:string list ->
  dir_prefix:string ->
  unit ->
  Sedna_db.Crashkit.outcome list
(** {!run_spec} for every [repl.*] site crossed with [policies]
    (default {!Sedna_db.Crashkit.default_policies}). *)
