(* Standby side of WAL-shipping replication: continuous redo,
   pipelined across two threads.

   The pull thread drives the sender: connect, seed if necessary, then
   Pull in a loop.  Each received batch goes through a strict
   durability order —

     1. (pull thread) append the raw frames to the standby's own WAL
        and fsync: ordinary recovery can now finish the work if we die
        mid-apply, so the batch may be acknowledged and the next Pull
        issued immediately
     2. (apply thread) redo the complete transactions in the batch
        ({!Database.apply_txn} under the engine lock, so concurrent
        BEGIN READ ONLY sessions keep their consistent snapshots)
     3. (pull thread) advance the durable resume state (repl.state) —
        but only to transaction boundaries: a batch may end inside a
        transaction whose commit record is still on the wire, and
        restarting from a mid-transaction position would strand its
        page images

   The pipeline is the point: while the apply thread redoes batch N,
   the pull thread fsyncs batch N+1's raw append, so at a group-commit
   primary's write rate the standby's lag is bounded by the slower of
   the two stages instead of their sum.  A bounded queue (backpressure)
   keeps the durable-but-unapplied window small.

   Restart safety: on restart the local WAL is checkpoint-truncated by
   recovery, and pulling resumes from the persisted boundary, so the
   frames of any half-shipped transaction are simply received again.
   Applies are idempotent (absolute page images), so every step above
   may be repeated after a lost ack.  The same property covers an
   apply-stage failure: the batch is already durable in the local WAL,
   so the standby recovers *in place* — reopen the directory, replay
   the log, resume pulling from the persisted boundary.  Added lag,
   zero loss.

   Epochs: the primary bumps its WAL epoch at every checkpoint
   truncation.  A Pull naming a stale epoch (or a position past the
   log) is answered with Hole, and the standby re-seeds from a fresh
   full backup shipped over the same connection.

   Promotion joins both threads first, which is why the serving layer
   must invoke it OUTSIDE the engine lock: the apply stage takes that
   lock, and a promote waiting on the join while holding it would
   deadlock. *)

open Sedna_util
open Sedna_core
open Sedna_db
open Sedna_server

(* fires before a received batch is persisted or acked: an injected
   fault drops the connection and the batch is simply pulled again *)
let apply_site = Fault.site "repl.apply"

(* fires in the apply thread, after the batch is durably appended and
   acknowledged: an injected fault here must cost an in-place recovery
   (the local WAL already holds the bytes), never an acked commit *)
let batch_apply_site = Fault.site "repl.batch_apply"

exception Heartbeat_timeout

(* apply stage died; carried to the pull thread / its caller *)
exception Apply_stage_failed of exn

(* one durably appended, acknowledged batch awaiting redo *)
type batch = {
  b_frames : string; (* raw bytes, for span annotations *)
  b_records : (Wal.record * int) list; (* decoded once, in the pull thread *)
  b_marks : Wire.trace_mark list;
}

(* backpressure: bound the durable-but-unapplied window *)
let max_apply_queue = 4

type t = {
  gov : Governor.t;
  name : string; (* database name in the governor *)
  dir : string; (* standby database directory (stable across re-seeds) *)
  host : string;
  port : int;
  poll_s : float;
  heartbeat_timeout_s : float;
  max_batch : int;
  mu : Mutex.t;
  mutable db : Database.t option;
  mutable cluster : int; (* highest cluster (fencing) epoch seen *)
  mutable epoch : int; (* primary WAL epoch being tracked *)
  mutable pos : int; (* next primary WAL position to pull *)
  mutable boundary : int; (* last txn-boundary position (durable resume point) *)
  pending : (int, (int * Bytes.t) list ref) Hashtbl.t;
  (* txn -> rev images; owned by the apply thread (reset only while it
     is drained or joined) *)
  shipped_open : (int, unit) Hashtbl.t;
  (* txns whose Begin was durably appended but whose Commit/Abort was
     not yet: owned by the pull thread, drives the boundary *)
  mutable stopping : bool;
  mutable promoted : bool;
  mutable connected : bool;
  mutable last_contact : float;
  mutable fd : Unix.file_descr option;
  mutable thread : Thread.t option;
  (* ---- apply pipeline (stage 2) ---- *)
  apply_q : batch Queue.t;
  apply_mu : Mutex.t; (* guards apply_q / apply_busy / apply_exn *)
  apply_cv : Condition.t; (* work available, or stopping *)
  apply_done_cv : Condition.t; (* a batch finished, or poison *)
  mutable apply_busy : bool;
  mutable apply_exn : exn option; (* poison: apply stage died *)
  mutable apply_thread : Thread.t option;
}

let rm_rf dir =
  if Sys.file_exists dir then
    ignore (Sys.command ("rm -rf " ^ Filename.quote dir))

let state_path dir = Filename.concat dir "repl.state"

(* third field (cluster epoch) added later: absent in state files
   written by older standbys, so reading tolerates both forms *)
let persist_state t =
  Sysutil.write_file_durable (state_path t.dir)
    (Printf.sprintf "%d %d %d\n" t.epoch t.boundary t.cluster)

let read_state dir =
  let p = state_path dir in
  if not (Sys.file_exists p) then None
  else begin
    let ic = open_in_bin p in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    match String.split_on_char ' ' (String.trim line) with
    | [ e; pos ] -> (
      match (int_of_string_opt e, int_of_string_opt pos) with
      | Some e, Some pos -> Some (e, pos, 0)
      | _ -> None)
    | [ e; pos; c ] -> (
      match (int_of_string_opt e, int_of_string_opt pos, int_of_string_opt c) with
      | Some e, Some pos, Some c -> Some (e, pos, c)
      | _ -> None)
    | _ -> None
  end

(* A response from the primary carried its cluster epoch: track it (the
   standby's own database adopts it too, so a promotion here mints a
   strictly higher one even after restarts). *)
let note_cluster t c =
  if c > t.cluster then begin
    t.cluster <- c;
    (match t.db with Some db -> Database.set_cluster_epoch db c | None -> ());
    persist_state t
  end

(* ---- wire helpers ----------------------------------------------------- *)

(* A silent primary is indistinguishable from a dead one: bound every
   response wait by the heartbeat timeout and treat expiry as a
   disconnect. *)
let read_response_timed t fd =
  let rec wait () =
    match Unix.select [ fd ] [] [] t.heartbeat_timeout_s with
    | [], _, _ ->
      t.connected <- false;
      raise Heartbeat_timeout
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  wait ();
  let r = Wire.read_repl_response fd in
  t.last_contact <- Unix.gettimeofday ();
  r

(* ---- seeding ---------------------------------------------------------- *)

(* Swap in a freshly shipped full backup.  The directory path stays
   stable across re-seeds: the new store is staged next to it, the old
   database is dropped without flushing (its state is abandoned by
   design), and a rename moves the stage into place. *)
let install_seed t files =
  let stage = t.dir ^ ".seed" in
  rm_rf stage;
  Unix.mkdir stage 0o755;
  List.iter
    (fun (name, data) ->
      if Filename.basename name <> name then
        raise (Wire.Protocol_error "seed file name escapes the directory");
      Sysutil.write_file_durable (Filename.concat stage name) data)
    files;
  (match t.db with
   | Some old -> ( try Database.crash old with _ -> ())
   | None -> ());
  rm_rf t.dir;
  Unix.rename stage t.dir;
  Sysutil.fsync_dir (Filename.dirname t.dir);
  (* opening replays the shipped WAL, giving the exact state the
     primary recorded the resume position against *)
  let ndb = Database.open_existing t.dir in
  Database.set_standby ndb true;
  (match Governor.find_database t.gov t.name with
   | None -> Governor.register_database t.gov ~name:t.name ndb
   | Some _ -> Governor.swap_database t.gov ~name:t.name ndb);
  t.db <- Some ndb

let seed t fd =
  Trace.emit (Trace.Repl_state { role = "standby"; state = "seeding" });
  Wire.write_repl_request fd Wire.Seed_request;
  let rec recv files =
    match read_response_timed t fd with
    | Wire.Seed_file { name; data } -> recv ((name, data) :: files)
    | Wire.Seed_done { cluster; epoch; pos } -> (List.rev files, cluster, epoch, pos)
    | Wire.Fenced _ -> raise (Wire.Disconnected "seeding primary is fenced")
    | Wire.Batch _ | Wire.Heartbeat _ | Wire.Hole _ | Wire.Page_reply _ ->
      raise (Wire.Protocol_error "unexpected response during seed")
  in
  let files, cluster, epoch, pos = recv [] in
  install_seed t files;
  note_cluster t cluster;
  (* count the install before publishing epoch/pos: anyone who waited
     for the new epoch to appear must also see this seed counted *)
  Counters.bump Counters.repl_reseeds;
  Trace.emit (Trace.Repl_reseed { epoch });
  Hashtbl.reset t.pending;
  Hashtbl.reset t.shipped_open;
  t.epoch <- epoch;
  Counters.set Counters.repl_standby_epoch epoch;
  t.pos <- pos;
  t.boundary <- pos;
  persist_state t

(* ---- continuous apply (stage 2: the apply thread) --------------------- *)

let apply_batch t db records =
  List.iter
    (fun (r, _end_off) ->
      match r with
      | Wal.Begin id -> Hashtbl.replace t.pending id (ref [])
      | Wal.Image (id, pid, img) -> (
        match Hashtbl.find_opt t.pending id with
        | Some l -> l := (pid, img) :: !l
        | None -> ())
      | Wal.Logical _ -> ()
      | Wal.Commit (id, catalog_blob) ->
        let images =
          match Hashtbl.find_opt t.pending id with
          | Some l -> List.rev !l
          | None -> []
        in
        Hashtbl.remove t.pending id;
        Governor.with_engine t.gov (fun () ->
            Database.apply_txn db ~txn_id:id ~images ~catalog_blob)
      | Wal.Abort id -> Hashtbl.remove t.pending id
      | Wal.Checkpoint -> ())
    records

let apply_one t b =
  let db = Option.get t.db in
  (* fires after the batch was durably appended and acked: an injected
     fault here must cost lag only, never an acked commit *)
  Fault.check batch_apply_site;
  let t0 = Metrics.mono () in
  apply_batch t db b.b_records;
  (* hang one apply span per traced commit in the batch under the
     primary-side fsync span it was marked with.  The duration is the
     redo stage only — the raw append/fsync happened earlier, in the
     pull thread, possibly overlapped with another batch's redo — so
     the span stays truthful under pipelining. *)
  if b.b_marks <> [] && Span.is_enabled () then begin
    let dur = Metrics.mono () -. t0 in
    List.iter
      (fun { Wire.mk_pos; mk_trace; mk_span } ->
        Span.emit_remote ~trace:mk_trace ~parent:mk_span ~name:"standby.apply"
          ~dur
          [
            ("pos", Metrics.Int mk_pos);
            ("batch_bytes", Metrics.Int (String.length b.b_frames));
          ])
      b.b_marks
  end

let apply_loop t () =
  Mutex.lock t.apply_mu;
  let rec go () =
    if not (Queue.is_empty t.apply_q) then begin
      let b = Queue.pop t.apply_q in
      t.apply_busy <- true;
      Mutex.unlock t.apply_mu;
      let failure = try apply_one t b; None with e -> Some e in
      Mutex.lock t.apply_mu;
      t.apply_busy <- false;
      (match failure with
       | Some e when t.apply_exn = None ->
         t.apply_exn <- Some e;
         Queue.clear t.apply_q;
         (* kick the pull thread out of a blocking response wait so the
            in-place recovery starts promptly *)
         (match t.fd with
          | Some fd -> ( try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
          | None -> ())
       | _ -> ());
      Condition.broadcast t.apply_done_cv;
      go ()
    end
    else if t.stopping then Mutex.unlock t.apply_mu
    else begin
      Condition.wait t.apply_cv t.apply_mu;
      go ()
    end
  in
  go ()

(* Hand a durable, acked batch to the apply thread.  Blocks while the
   queue is full (backpressure); raises if the apply stage died. *)
let enqueue_batch t b =
  Mutex.lock t.apply_mu;
  let rec wait_room () =
    match t.apply_exn with
    | Some e ->
      Mutex.unlock t.apply_mu;
      raise (Apply_stage_failed e)
    | None ->
      if Queue.length t.apply_q >= max_apply_queue then begin
        Condition.wait t.apply_done_cv t.apply_mu;
        wait_room ()
      end
  in
  wait_room ();
  if t.apply_busy || not (Queue.is_empty t.apply_q) then
    (* this batch's append/fsync genuinely overlapped another's redo *)
    Counters.bump Counters.repl_batches_pipelined;
  Queue.push b t.apply_q;
  Condition.signal t.apply_cv;
  Mutex.unlock t.apply_mu

(* Wait until every enqueued batch has been redone (seed is about to
   abandon the store; promote is about to take writes).  Raises if the
   apply stage died instead. *)
let drain_applies t =
  Mutex.lock t.apply_mu;
  let rec wait () =
    if t.apply_exn = None && ((not (Queue.is_empty t.apply_q)) || t.apply_busy)
    then begin
      Condition.wait t.apply_done_cv t.apply_mu;
      wait ()
    end
  in
  wait ();
  let poison = t.apply_exn in
  Mutex.unlock t.apply_mu;
  match poison with Some e -> raise (Apply_stage_failed e) | None -> ()

(* ---- pull loop (stage 1) ---------------------------------------------- *)

let pull_loop t fd =
  while not t.stopping do
    (match t.apply_exn with
     | Some e -> raise (Apply_stage_failed e)
     | None -> ());
    Wire.write_repl_request fd
      (Wire.Pull
         { cluster = t.cluster; epoch = t.epoch; pos = t.pos; max_bytes = t.max_batch });
    match read_response_timed t fd with
    | Wire.Fenced { cluster } ->
      (* the sender demoted itself in response to our (higher) epoch:
         this link is dead, there is nothing to pull here any more *)
      note_cluster t cluster;
      raise (Wire.Disconnected "primary fenced")
    | Wire.Batch { cluster; epoch; next_pos; frames; marks } when epoch = t.epoch ->
      note_cluster t cluster;
      (* fires before anything is persisted or acked: safe to re-pull *)
      Fault.check apply_site;
      let db = Option.get t.db in
      let wal = Database.wal db in
      Wal.append_raw wal frames;
      Wal.sync wal;
      (* durable in our local WAL: acknowledge (the next Pull's pos)
         and hand the redo to the apply thread, overlapping it with the
         next batch's receive+fsync *)
      let records = Wal.records_of_frames frames in
      Trace.emit
        (Trace.Repl_batch
           {
             records = List.length records;
             bytes = String.length frames;
             pos = next_pos;
           });
      List.iter
        (fun (r, _) ->
          match r with
          | Wal.Begin id -> Hashtbl.replace t.shipped_open id ()
          | Wal.Commit (id, _) | Wal.Abort id -> Hashtbl.remove t.shipped_open id
          | _ -> ())
        records;
      enqueue_batch t { b_frames = frames; b_records = records; b_marks = marks };
      t.pos <- next_pos;
      (* the boundary tracks *durably shipped* transaction boundaries,
         not applied ones: restart recovery replays the local WAL, so
         everything before the boundary is reconstructible even if the
         apply thread never got to it *)
      if Hashtbl.length t.shipped_open = 0 && t.boundary <> next_pos then begin
        t.boundary <- next_pos;
        persist_state t
      end
    | Wire.Batch _ | Wire.Hole _ ->
      (* wrong or bumped epoch: our position is meaningless now *)
      drain_applies t;
      seed t fd
    | Wire.Heartbeat { cluster; epoch = _; pos = _ } ->
      note_cluster t cluster;
      if not t.stopping then Unix.sleepf t.poll_s
    | Wire.Seed_file _ | Wire.Seed_done _ | Wire.Page_reply _ ->
      raise (Wire.Protocol_error "unsolicited seed frame")
  done

(* ---- connection management -------------------------------------------- *)

let connect_primary t =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string t.host, t.port));
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    Netfault.register fd ~local:"standby" ~peer:"primary";
    fd
  with e ->
    (try Unix.close fd with _ -> ());
    raise e

(* The apply stage failed after its batches were durably appended and
   acknowledged.  Recover exactly as a standby restart would: drop the
   in-memory state and reopen the directory — recovery replays the
   whole local WAL, including every durable-but-unapplied transaction —
   then resume pulling from the persisted boundary.  Cost: added lag.
   Loss: none.  Called from the session (pull) thread with the apply
   thread idle (it only poisons from its top-level loop). *)
let recover_in_place t =
  Mutex.lock t.apply_mu;
  Queue.clear t.apply_q;
  t.apply_exn <- None;
  Condition.broadcast t.apply_done_cv;
  Mutex.unlock t.apply_mu;
  Hashtbl.reset t.pending;
  Hashtbl.reset t.shipped_open;
  match t.db with
  | None -> ()
  | Some db -> (
    (try Database.crash db with _ -> ());
    match Database.open_existing t.dir with
    | ndb ->
      Database.set_standby ndb true;
      (match Governor.find_database t.gov t.name with
       | None -> Governor.register_database t.gov ~name:t.name ndb
       | Some _ -> Governor.swap_database t.gov ~name:t.name ndb);
      t.db <- Some ndb;
      t.pos <- t.boundary;
      Counters.bump Counters.repl_apply_restarts;
      Trace.emit (Trace.Repl_state { role = "standby"; state = "apply-restart" });
      Logs.warn (fun m ->
          m "standby %s: apply stage failed; recovered in place from the local \
             WAL (resuming at %d)"
            t.name t.boundary)
    | exception _ ->
      (* unusable remains: force a full re-seed on the next connection *)
      t.db <- None;
      t.pos <- 0;
      t.boundary <- 0)

let session_loop t () =
  (* unbounded: a standby outlives arbitrary primary outages.  Jittered
     so several standbys severed by the same event don't stampede the
     recovering primary; reset after each successful connection. *)
  let retry = Retry.start (Retry.policy ~base_s:0.01 ~cap_s:1.0 "repl.reconnect") in
  while not t.stopping do
    match connect_primary t with
    | exception _ -> ignore (Retry.pause retry : bool)
    | fd ->
      Retry.reset retry;
      t.fd <- Some fd;
      t.connected <- true;
      Counters.set Counters.repl_standby_connected 1;
      t.last_contact <- Unix.gettimeofday ();
      Trace.emit (Trace.Repl_state { role = "standby"; state = "connected" });
      (try
         if t.db = None then seed t fd;
         pull_loop t fd
       with
       | Heartbeat_timeout | End_of_file | Unix.Unix_error _
       | Wire.Protocol_error _ | Wire.Disconnected _ ->
         ()
       | Apply_stage_failed _ ->
         (* handled below, outside the connection *)
         ()
       | Fault.Injected_fault _ | Fault.Injected_crash _ ->
         (* injected replication fault: treated as a channel death —
            reconnect and re-pull; nothing was acked *)
         ());
      t.connected <- false;
      Counters.set Counters.repl_standby_connected 0;
      t.fd <- None;
      Netfault.unregister fd;
      (try Unix.close fd with _ -> ());
      if t.apply_exn <> None && not t.stopping then recover_in_place t;
      if not t.stopping then begin
        Trace.emit (Trace.Repl_state { role = "standby"; state = "disconnected" });
        Unix.sleepf t.poll_s
      end
  done

let start ?(poll_s = 0.01) ?(heartbeat_timeout_s = 2.0) ?(max_batch = 1 lsl 22)
    ~gov ~name ~dir ~host ~port () : t =
  (* a primary vanishing mid-request must surface as EPIPE on our
     write, not as a process-killing signal (see Repl_sender.start) *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let t =
    {
      gov;
      name;
      dir;
      host;
      port;
      poll_s;
      heartbeat_timeout_s;
      max_batch;
      mu = Mutex.create ();
      db = None;
      cluster = 0;
      epoch = 0;
      pos = 0;
      boundary = 0;
      pending = Hashtbl.create 4;
      shipped_open = Hashtbl.create 4;
      stopping = false;
      promoted = false;
      connected = false;
      last_contact = 0.;
      fd = None;
      thread = None;
      apply_q = Queue.create ();
      apply_mu = Mutex.create ();
      apply_cv = Condition.create ();
      apply_done_cv = Condition.create ();
      apply_busy = false;
      apply_exn = None;
      apply_thread = None;
    }
  in
  (* resume a standby that was stopped cleanly: recovery applies
     whatever committed work the local WAL already holds, and pulling
     restarts from the persisted transaction boundary *)
  (match read_state dir with
   | Some (epoch, pos, cluster)
     when Sys.file_exists (Filename.concat dir "catalog.sdb") -> (
     match Database.open_existing dir with
     | db ->
       Database.set_standby db true;
       (match Governor.find_database gov name with
        | None -> Governor.register_database gov ~name db
        | Some _ -> Governor.swap_database gov ~name db);
       t.db <- Some db;
       t.cluster <- max cluster (Database.cluster_epoch db);
       t.epoch <- epoch;
       Counters.set Counters.repl_standby_epoch epoch;
       t.pos <- pos;
       t.boundary <- pos
     | exception _ -> t.db <- None (* unusable remains: fall back to a seed *))
   | _ -> ());
  t.apply_thread <- Some (Thread.create (apply_loop t) ());
  t.thread <- Some (Thread.create (session_loop t) ());
  t

let database t = t.db
let is_connected t = t.connected
let tracked t = (t.epoch, t.pos)

let healthy t =
  t.connected && Unix.gettimeofday () -. t.last_contact < t.heartbeat_timeout_s

(* "Caught up" now also means the apply pipeline is drained: a batch
   can be durably shipped (pos advanced) while its redo is still
   queued, and callers of this predicate are about to read the applied
   state. *)
let caught_up t ~epoch ~pos =
  t.epoch = epoch && t.pos >= pos
  && Hashtbl.length t.shipped_open = 0
  && Hashtbl.length t.pending = 0
  &&
  (Mutex.lock t.apply_mu;
   let drained =
     Queue.is_empty t.apply_q && (not t.apply_busy) && t.apply_exn = None
   in
   Mutex.unlock t.apply_mu;
   drained)

let wait_caught_up ?(timeout_s = 10.) t ~epoch ~pos =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if caught_up t ~epoch ~pos then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.yield ();
      Unix.sleepf 0.002;
      go ()
    end
  in
  go ()

let join_pull_thread t =
  t.stopping <- true;
  (match t.fd with
   | Some fd ->
     (* the pull thread may be parked in a partitioned send/recv;
        release it or this join deadlocks until the partition heals *)
     Netfault.interrupt fd;
     (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
   | None -> ());
  (match t.thread with Some th -> Thread.join th | None -> ());
  t.thread <- None

(* The apply loop drains whatever is still queued before exiting (its
   queue check precedes the stopping check), so a join here leaves no
   durable-but-unapplied work behind unless the stage was poisoned. *)
let join_apply_thread t =
  t.stopping <- true;
  Mutex.lock t.apply_mu;
  Condition.broadcast t.apply_cv;
  Mutex.unlock t.apply_mu;
  (match t.apply_thread with Some th -> Thread.join th | None -> ());
  t.apply_thread <- None

let stop t =
  join_pull_thread t;
  join_apply_thread t

(* Promotion: stop pulling, drain the apply pipeline, then turn the
   standby into an ordinary primary.  Every durably shipped complete
   transaction gets applied (by the drain, or by in-place recovery if
   the apply stage died); whatever is left in [pending] lacks its
   commit record and is discarded exactly as recovery would discard
   it.  The closing checkpoint fixates the state and bumps the local
   WAL epoch, so future standbys of the NEW primary can never confuse
   its log with the old timeline.  Idempotent. *)
let promote t =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      if t.promoted then "already promoted"
      else begin
        join_pull_thread t;
        (* joining the apply thread drains the queue: every durably
           shipped (= acknowledged) transaction is applied before the
           checkpoint below truncates the local WAL *)
        join_apply_thread t;
        (* unless the stage was poisoned — then the queued redo work
           is only in the local WAL: replay it by reopening before
           taking writes; promotion must surface every acked commit *)
        if t.apply_exn <> None then recover_in_place t;
        match t.db with
        | None ->
          Error.raise_error Error.Recovery_failure
            "cannot promote: the standby never finished seeding"
        | Some db ->
          Hashtbl.reset t.pending;
          Hashtbl.reset t.shipped_open;
          Database.set_standby db false;
          (* Fencing: mint a cluster epoch strictly above everything
             this node has ever seen — on the wire or persisted — and
             durably record it BEFORE accepting writes.  Every response
             this node now sends carries the new epoch, so the deposed
             primary fences itself on first contact with any client or
             standby that has talked to us. *)
          let cluster = max t.cluster (Database.cluster_epoch db) + 1 in
          t.cluster <- cluster;
          Database.set_cluster_epoch db cluster;
          Database.unfence db;
          (try Governor.with_engine t.gov (fun () -> Database.checkpoint db)
           with Error.Sedna_error (Error.Txn_not_active, _) ->
             (* read-only sessions still open: skip the checkpoint, the
                WAL already holds everything *)
             ());
          t.promoted <- true;
          Counters.bump Counters.repl_promotions;
          let epoch = Wal.epoch (Database.wal db) in
          persist_state t;
          Trace.emit (Trace.Repl_promote { epoch });
          Logs.info (fun m ->
              m "standby %s promoted to primary (wal epoch %d, cluster epoch %d)"
                t.name epoch cluster);
          Printf.sprintf "promoted to primary (epoch %d, cluster %d)" epoch cluster
      end)
