(* Standby side of WAL-shipping replication: continuous redo.

   A pull thread drives the sender: connect, seed if necessary, then
   Pull in a loop.  Each received batch goes through a strict
   durability order —

     1. append the raw frames to the standby's own WAL and fsync
        (ordinary recovery can now finish the work if we die mid-apply)
     2. apply the complete transactions in the batch
        ({!Database.apply_txn} under the engine lock, so concurrent
        BEGIN READ ONLY sessions keep their consistent snapshots)
     3. advance the durable resume state (repl.state) — but only to
        transaction boundaries: a batch may end inside a transaction
        whose commit record is still on the wire, and restarting from a
        mid-transaction position would strand its page images

   Restart safety: on restart the local WAL is checkpoint-truncated by
   recovery, and pulling resumes from the persisted boundary, so the
   frames of any half-shipped transaction are simply received again.
   Applies are idempotent (absolute page images), so every step above
   may be repeated after a lost ack.

   Epochs: the primary bumps its WAL epoch at every checkpoint
   truncation.  A Pull naming a stale epoch (or a position past the
   log) is answered with Hole, and the standby re-seeds from a fresh
   full backup shipped over the same connection.

   Promotion joins this thread first, which is why the serving layer
   must invoke it OUTSIDE the engine lock: the apply step above takes
   that lock, and a promote waiting on the join while holding it would
   deadlock. *)

open Sedna_util
open Sedna_core
open Sedna_db
open Sedna_server

(* fires before a received batch is persisted or acked: an injected
   fault drops the connection and the batch is simply pulled again *)
let apply_site = Fault.site "repl.apply"

exception Heartbeat_timeout

type t = {
  gov : Governor.t;
  name : string; (* database name in the governor *)
  dir : string; (* standby database directory (stable across re-seeds) *)
  host : string;
  port : int;
  poll_s : float;
  heartbeat_timeout_s : float;
  max_batch : int;
  mu : Mutex.t;
  mutable db : Database.t option;
  mutable cluster : int; (* highest cluster (fencing) epoch seen *)
  mutable epoch : int; (* primary WAL epoch being tracked *)
  mutable pos : int; (* next primary WAL position to pull *)
  mutable boundary : int; (* last txn-boundary position (durable resume point) *)
  pending : (int, (int * Bytes.t) list ref) Hashtbl.t; (* txn -> rev images *)
  mutable stopping : bool;
  mutable promoted : bool;
  mutable connected : bool;
  mutable last_contact : float;
  mutable fd : Unix.file_descr option;
  mutable thread : Thread.t option;
}

let rm_rf dir =
  if Sys.file_exists dir then
    ignore (Sys.command ("rm -rf " ^ Filename.quote dir))

let state_path dir = Filename.concat dir "repl.state"

(* third field (cluster epoch) added later: absent in state files
   written by older standbys, so reading tolerates both forms *)
let persist_state t =
  Sysutil.write_file_durable (state_path t.dir)
    (Printf.sprintf "%d %d %d\n" t.epoch t.boundary t.cluster)

let read_state dir =
  let p = state_path dir in
  if not (Sys.file_exists p) then None
  else begin
    let ic = open_in_bin p in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    match String.split_on_char ' ' (String.trim line) with
    | [ e; pos ] -> (
      match (int_of_string_opt e, int_of_string_opt pos) with
      | Some e, Some pos -> Some (e, pos, 0)
      | _ -> None)
    | [ e; pos; c ] -> (
      match (int_of_string_opt e, int_of_string_opt pos, int_of_string_opt c) with
      | Some e, Some pos, Some c -> Some (e, pos, c)
      | _ -> None)
    | _ -> None
  end

(* A response from the primary carried its cluster epoch: track it (the
   standby's own database adopts it too, so a promotion here mints a
   strictly higher one even after restarts). *)
let note_cluster t c =
  if c > t.cluster then begin
    t.cluster <- c;
    (match t.db with Some db -> Database.set_cluster_epoch db c | None -> ());
    persist_state t
  end

(* ---- wire helpers ----------------------------------------------------- *)

(* A silent primary is indistinguishable from a dead one: bound every
   response wait by the heartbeat timeout and treat expiry as a
   disconnect. *)
let read_response_timed t fd =
  let rec wait () =
    match Unix.select [ fd ] [] [] t.heartbeat_timeout_s with
    | [], _, _ ->
      t.connected <- false;
      raise Heartbeat_timeout
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  wait ();
  let r = Wire.read_repl_response fd in
  t.last_contact <- Unix.gettimeofday ();
  r

(* ---- seeding ---------------------------------------------------------- *)

(* Swap in a freshly shipped full backup.  The directory path stays
   stable across re-seeds: the new store is staged next to it, the old
   database is dropped without flushing (its state is abandoned by
   design), and a rename moves the stage into place. *)
let install_seed t files =
  let stage = t.dir ^ ".seed" in
  rm_rf stage;
  Unix.mkdir stage 0o755;
  List.iter
    (fun (name, data) ->
      if Filename.basename name <> name then
        raise (Wire.Protocol_error "seed file name escapes the directory");
      Sysutil.write_file_durable (Filename.concat stage name) data)
    files;
  (match t.db with
   | Some old -> ( try Database.crash old with _ -> ())
   | None -> ());
  rm_rf t.dir;
  Unix.rename stage t.dir;
  Sysutil.fsync_dir (Filename.dirname t.dir);
  (* opening replays the shipped WAL, giving the exact state the
     primary recorded the resume position against *)
  let ndb = Database.open_existing t.dir in
  Database.set_standby ndb true;
  (match Governor.find_database t.gov t.name with
   | None -> Governor.register_database t.gov ~name:t.name ndb
   | Some _ -> Governor.swap_database t.gov ~name:t.name ndb);
  t.db <- Some ndb

let seed t fd =
  Trace.emit (Trace.Repl_state { role = "standby"; state = "seeding" });
  Wire.write_repl_request fd Wire.Seed_request;
  let rec recv files =
    match read_response_timed t fd with
    | Wire.Seed_file { name; data } -> recv ((name, data) :: files)
    | Wire.Seed_done { cluster; epoch; pos } -> (List.rev files, cluster, epoch, pos)
    | Wire.Fenced _ -> raise (Wire.Disconnected "seeding primary is fenced")
    | Wire.Batch _ | Wire.Heartbeat _ | Wire.Hole _ ->
      raise (Wire.Protocol_error "unexpected response during seed")
  in
  let files, cluster, epoch, pos = recv [] in
  install_seed t files;
  note_cluster t cluster;
  (* count the install before publishing epoch/pos: anyone who waited
     for the new epoch to appear must also see this seed counted *)
  Counters.bump Counters.repl_reseeds;
  Trace.emit (Trace.Repl_reseed { epoch });
  Hashtbl.reset t.pending;
  t.epoch <- epoch;
  Counters.set Counters.repl_standby_epoch epoch;
  t.pos <- pos;
  t.boundary <- pos;
  persist_state t

(* ---- continuous apply ------------------------------------------------- *)

let apply_batch t db frames =
  List.iter
    (fun (r, _end_off) ->
      match r with
      | Wal.Begin id -> Hashtbl.replace t.pending id (ref [])
      | Wal.Image (id, pid, img) -> (
        match Hashtbl.find_opt t.pending id with
        | Some l -> l := (pid, img) :: !l
        | None -> ())
      | Wal.Logical _ -> ()
      | Wal.Commit (id, catalog_blob) ->
        let images =
          match Hashtbl.find_opt t.pending id with
          | Some l -> List.rev !l
          | None -> []
        in
        Hashtbl.remove t.pending id;
        Governor.with_engine t.gov (fun () ->
            Database.apply_txn db ~txn_id:id ~images ~catalog_blob)
      | Wal.Abort id -> Hashtbl.remove t.pending id
      | Wal.Checkpoint -> ())
    (Wal.records_of_frames frames)

let pull_loop t fd =
  while not t.stopping do
    Wire.write_repl_request fd
      (Wire.Pull
         { cluster = t.cluster; epoch = t.epoch; pos = t.pos; max_bytes = t.max_batch });
    match read_response_timed t fd with
    | Wire.Fenced { cluster } ->
      (* the sender demoted itself in response to our (higher) epoch:
         this link is dead, there is nothing to pull here any more *)
      note_cluster t cluster;
      raise (Wire.Disconnected "primary fenced")
    | Wire.Batch { cluster; epoch; next_pos; frames; marks } when epoch = t.epoch ->
      note_cluster t cluster;
      (* fires before anything is persisted or acked: safe to re-pull *)
      Fault.check apply_site;
      let db = Option.get t.db in
      let wal = Database.wal db in
      let apply_t0 = Metrics.mono () in
      Wal.append_raw wal frames;
      Wal.sync wal;
      Trace.emit
        (Trace.Repl_batch
           {
             records = List.length (Wal.records_of_frames frames);
             bytes = String.length frames;
             pos = next_pos;
           });
      apply_batch t db frames;
      (* hang one apply span per traced commit in the batch under the
         primary-side fsync span it was marked with; the duration is
         the whole batch's persist+apply time (they share it) *)
      (if marks <> [] && Span.is_enabled () then
         let dur = Metrics.mono () -. apply_t0 in
         List.iter
           (fun { Wire.mk_pos; mk_trace; mk_span } ->
             Span.emit_remote ~trace:mk_trace ~parent:mk_span ~name:"standby.apply"
               ~dur
               [
                 ("pos", Metrics.Int mk_pos);
                 ("batch_bytes", Metrics.Int (String.length frames));
               ])
           marks);
      t.pos <- next_pos;
      if Hashtbl.length t.pending = 0 && t.boundary <> next_pos then begin
        t.boundary <- next_pos;
        persist_state t
      end
    | Wire.Batch _ | Wire.Hole _ ->
      (* wrong or bumped epoch: our position is meaningless now *)
      seed t fd
    | Wire.Heartbeat { cluster; epoch = _; pos = _ } ->
      note_cluster t cluster;
      if not t.stopping then Unix.sleepf t.poll_s
    | Wire.Seed_file _ | Wire.Seed_done _ ->
      raise (Wire.Protocol_error "unsolicited seed frame")
  done

(* ---- connection management -------------------------------------------- *)

let connect_primary t =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string t.host, t.port));
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    Netfault.register fd ~local:"standby" ~peer:"primary";
    fd
  with e ->
    (try Unix.close fd with _ -> ());
    raise e

let session_loop t () =
  (* unbounded: a standby outlives arbitrary primary outages.  Jittered
     so several standbys severed by the same event don't stampede the
     recovering primary; reset after each successful connection. *)
  let retry = Retry.start (Retry.policy ~base_s:0.01 ~cap_s:1.0 "repl.reconnect") in
  while not t.stopping do
    match connect_primary t with
    | exception _ -> ignore (Retry.pause retry : bool)
    | fd ->
      Retry.reset retry;
      t.fd <- Some fd;
      t.connected <- true;
      Counters.set Counters.repl_standby_connected 1;
      t.last_contact <- Unix.gettimeofday ();
      Trace.emit (Trace.Repl_state { role = "standby"; state = "connected" });
      (try
         if t.db = None then seed t fd;
         pull_loop t fd
       with
       | Heartbeat_timeout | End_of_file | Unix.Unix_error _
       | Wire.Protocol_error _ | Wire.Disconnected _ ->
         ()
       | Fault.Injected_fault _ | Fault.Injected_crash _ ->
         (* injected replication fault: treated as a channel death —
            reconnect and re-pull; nothing was acked *)
         ());
      t.connected <- false;
      Counters.set Counters.repl_standby_connected 0;
      t.fd <- None;
      Netfault.unregister fd;
      (try Unix.close fd with _ -> ());
      if not t.stopping then begin
        Trace.emit (Trace.Repl_state { role = "standby"; state = "disconnected" });
        Unix.sleepf t.poll_s
      end
  done

let start ?(poll_s = 0.01) ?(heartbeat_timeout_s = 2.0) ?(max_batch = 1 lsl 20)
    ~gov ~name ~dir ~host ~port () : t =
  let t =
    {
      gov;
      name;
      dir;
      host;
      port;
      poll_s;
      heartbeat_timeout_s;
      max_batch;
      mu = Mutex.create ();
      db = None;
      cluster = 0;
      epoch = 0;
      pos = 0;
      boundary = 0;
      pending = Hashtbl.create 4;
      stopping = false;
      promoted = false;
      connected = false;
      last_contact = 0.;
      fd = None;
      thread = None;
    }
  in
  (* resume a standby that was stopped cleanly: recovery applies
     whatever committed work the local WAL already holds, and pulling
     restarts from the persisted transaction boundary *)
  (match read_state dir with
   | Some (epoch, pos, cluster)
     when Sys.file_exists (Filename.concat dir "catalog.sdb") -> (
     match Database.open_existing dir with
     | db ->
       Database.set_standby db true;
       (match Governor.find_database gov name with
        | None -> Governor.register_database gov ~name db
        | Some _ -> Governor.swap_database gov ~name db);
       t.db <- Some db;
       t.cluster <- max cluster (Database.cluster_epoch db);
       t.epoch <- epoch;
       Counters.set Counters.repl_standby_epoch epoch;
       t.pos <- pos;
       t.boundary <- pos
     | exception _ -> t.db <- None (* unusable remains: fall back to a seed *))
   | _ -> ());
  t.thread <- Some (Thread.create (session_loop t) ());
  t

let database t = t.db
let is_connected t = t.connected
let tracked t = (t.epoch, t.pos)

let healthy t =
  t.connected && Unix.gettimeofday () -. t.last_contact < t.heartbeat_timeout_s

let caught_up t ~epoch ~pos =
  t.epoch = epoch && t.pos >= pos && Hashtbl.length t.pending = 0

let wait_caught_up ?(timeout_s = 10.) t ~epoch ~pos =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if caught_up t ~epoch ~pos then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.yield ();
      Unix.sleepf 0.002;
      go ()
    end
  in
  go ()

let join_pull_thread t =
  t.stopping <- true;
  (match t.fd with
   | Some fd ->
     (* the pull thread may be parked in a partitioned send/recv;
        release it or this join deadlocks until the partition heals *)
     Netfault.interrupt fd;
     (try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
   | None -> ());
  (match t.thread with Some th -> Thread.join th | None -> ());
  t.thread <- None

let stop t = join_pull_thread t

(* Promotion: stop pulling, then turn the standby into an ordinary
   primary.  Complete shipped transactions were applied inline as they
   arrived; whatever is left in [pending] lacks its commit record and
   is discarded exactly as recovery would discard it.  The closing
   checkpoint fixates the state and bumps the local WAL epoch, so
   future standbys of the NEW primary can never confuse its log with
   the old timeline.  Idempotent. *)
let promote t =
  Mutex.lock t.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mu)
    (fun () ->
      if t.promoted then "already promoted"
      else begin
        join_pull_thread t;
        match t.db with
        | None ->
          Error.raise_error Error.Recovery_failure
            "cannot promote: the standby never finished seeding"
        | Some db ->
          Hashtbl.reset t.pending;
          Database.set_standby db false;
          (* Fencing: mint a cluster epoch strictly above everything
             this node has ever seen — on the wire or persisted — and
             durably record it BEFORE accepting writes.  Every response
             this node now sends carries the new epoch, so the deposed
             primary fences itself on first contact with any client or
             standby that has talked to us. *)
          let cluster = max t.cluster (Database.cluster_epoch db) + 1 in
          t.cluster <- cluster;
          Database.set_cluster_epoch db cluster;
          Database.unfence db;
          (try Governor.with_engine t.gov (fun () -> Database.checkpoint db)
           with Error.Sedna_error (Error.Txn_not_active, _) ->
             (* read-only sessions still open: skip the checkpoint, the
                WAL already holds everything *)
             ());
          t.promoted <- true;
          Counters.bump Counters.repl_promotions;
          let epoch = Wal.epoch (Database.wal db) in
          persist_state t;
          Trace.emit (Trace.Repl_promote { epoch });
          Logs.info (fun m ->
              m "standby %s promoted to primary (wal epoch %d, cluster epoch %d)"
                t.name epoch cluster);
          Printf.sprintf "promoted to primary (epoch %d, cluster %d)" epoch cluster
      end)
