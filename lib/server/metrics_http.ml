(* The monitoring listener: a tiny HTTP/1.1 server on its own port
   (--metrics-port) exposing

     GET /metrics   Prometheus text exposition of every global counter,
                    every registered histogram, and a set of gauges the
                    embedding process supplies (buffer-pool occupancy,
                    active sessions, WAL size, replication lag, ...)
     GET /health    readiness probe: 200 with the role ("ok primary" /
                    "ok standby") while serving, 503 while draining,
                    fenced (a deposed primary must drop out of the LB)
                    or degraded (resource exhaustion: shedding writes)

   One accept thread, one request per connection (Connection: close) —
   a scrape every few seconds is the design load, so no pool.  The
   handler never takes the engine lock: counters are plain int refs,
   histograms are read racily (a torn scrape is one sample off), and
   the gauge closures are required to be lock-free reads too. *)

open Sedna_util

type gauge = { g_name : string; g_help : string; g_read : unit -> int }

type t = {
  fd : Unix.file_descr;
  port : int;
  gauges : gauge list;
  health : unit -> bool * string; (* ready?, role line *)
  mutable stopped : bool;
  mutable thread : Thread.t option;
}

(* ---- Prometheus text exposition ------------------------------------- *)

(* metric names must match [a-zA-Z_:][a-zA-Z0-9_:]* — our counter names
   use dots and dashes, so sanitize and prefix *)
let prom_name name =
  let b = Buffer.create (String.length name + 6) in
  Buffer.add_string b "sedna_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let prom_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

(* counters that are really gauges: their value moves both ways.  The
   cluster epoch is here so the series exists from the first scrape —
   an alert on a fencing event compares epochs across nodes and must
   not find the series missing on a node that was never promoted. *)
let gauge_counters =
  [ Counters.repl_lag_bytes; Counters.repl_acked_pos; Counters.cluster_epoch;
    (* self-healing: scrub progress/pass-size move both ways, and the
       degraded flag must exist from the first scrape so the alert rule
       never finds the series missing *)
    Counters.scrub_progress; Counters.scrub_last_pass_pages;
    Counters.degraded_state ]

let render_metrics gauges =
  let b = Buffer.create 4096 in
  let meta name typ = Printf.ksprintf (Buffer.add_string b) "# TYPE %s %s\n" name typ in
  (* the replication gauges are exported even before anything touches
     them — a scraper alerting on lag must not see the series vanish *)
  List.iter
    (fun name ->
      let pn = prom_name name in
      meta pn "gauge";
      Printf.ksprintf (Buffer.add_string b) "%s %d\n" pn (Counters.get name))
    gauge_counters;
  (* global counters *)
  List.iter
    (fun (name, v) ->
      if not (List.mem name gauge_counters) then begin
        let pn = prom_name name in
        meta pn "counter";
        Printf.ksprintf (Buffer.add_string b) "%s %d\n" pn v
      end)
    (Counters.snapshot_all ());
  (* supplied gauges *)
  List.iter
    (fun g ->
      let pn = prom_name g.g_name in
      if g.g_help <> "" then
        Printf.ksprintf (Buffer.add_string b) "# HELP %s %s\n" pn g.g_help;
      meta pn "gauge";
      Printf.ksprintf (Buffer.add_string b) "%s %d\n" pn (g.g_read ()))
    gauges;
  (* registered histograms, in seconds with cumulative le buckets *)
  List.iter
    (fun h ->
      let pn = prom_name (Metrics.hist_name h) ^ "_seconds" in
      meta pn "histogram";
      let bounds, counts = Metrics.hist_buckets h in
      let acc = ref 0 in
      Array.iteri
        (fun i bound ->
          acc := !acc + counts.(i);
          Printf.ksprintf (Buffer.add_string b) "%s_bucket{le=\"%s\"} %d\n" pn
            (prom_float bound) !acc)
        bounds;
      Printf.ksprintf (Buffer.add_string b) "%s_bucket{le=\"+Inf\"} %d\n" pn
        (Metrics.hist_count h);
      Printf.ksprintf (Buffer.add_string b) "%s_sum %s\n" pn
        (prom_float (Metrics.hist_sum h));
      Printf.ksprintf (Buffer.add_string b) "%s_count %d\n" pn
        (Metrics.hist_count h))
    (Metrics.histograms ());
  Buffer.contents b

(* ---- http ------------------------------------------------------------ *)

let http_respond fd ~status ~content_type body =
  let head =
    Printf.sprintf
      "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
       close\r\n\r\n"
      status content_type (String.length body)
  in
  let out = head ^ body in
  let buf = Bytes.unsafe_of_string out in
  let rec go off len =
    if len > 0 then
      match Unix.write fd buf off len with
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
  in
  go 0 (String.length out)

(* read until the blank line ending the request head (we ignore bodies:
   every endpoint is a GET), bounded so garbage can't balloon *)
let read_request_head fd =
  let b = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length b > 8192 then Buffer.contents b
    else
      let seen =
        let s = Buffer.contents b in
        let has sub =
          let n = String.length s and m = String.length sub in
          let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
          at 0
        in
        has "\r\n\r\n" || has "\n\n"
      in
      if seen then Buffer.contents b
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> Buffer.contents b
        | n ->
          Buffer.add_subbytes b chunk 0 n;
          go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let handle t fd =
  let head = read_request_head fd in
  let path =
    match String.split_on_char ' ' (List.hd (String.split_on_char '\n' head)) with
    | _meth :: path :: _ -> path
    | _ -> "/"
  in
  match path with
  | "/metrics" ->
    http_respond fd ~status:"200 OK"
      ~content_type:"text/plain; version=0.0.4; charset=utf-8"
      (render_metrics t.gauges)
  | "/health" ->
    let ready, role = t.health () in
    (* belt-and-braces: a draining or fenced node is never ready, even
       if the embedder's closure forgot to flip the bool — an LB
       routing writes to a fenced ex-primary is exactly the split-brain
       the fence exists to stop *)
    let ready = ready && role <> "draining" && role <> "fenced" && role <> "degraded" in
    if ready then
      http_respond fd ~status:"200 OK" ~content_type:"text/plain" ("ok " ^ role ^ "\n")
    else
      http_respond fd ~status:"503 Service Unavailable" ~content_type:"text/plain"
        (role ^ "\n")
  | _ ->
    http_respond fd ~status:"404 Not Found" ~content_type:"text/plain" "not found\n"

let accept_loop t () =
  let rec loop () =
    match Unix.accept t.fd with
    | fd, _ ->
      (try handle t fd with _ -> ());
      (try Unix.close fd with _ -> ());
      loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
      when t.stopped ->
      ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

let start ?(host = "127.0.0.1") ?(gauges = []) ?(health = fun () -> (true, "primary"))
    ~port () =
  let addr = Unix.inet_addr_of_string host in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 8;
  let bound =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  let t = { fd; port = bound; gauges; health; stopped = false; thread = None } in
  t.thread <- Some (Thread.create (accept_loop t) ());
  Logs.info (fun m -> m "metrics endpoint on %s:%d" host bound);
  t

let port t = t.port

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with _ -> ());
    (try
       (* unblock accept on platforms where shutdown doesn't *)
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, t.port))
        with _ -> ());
       Unix.close fd
     with _ -> ());
    (match t.thread with Some th -> Thread.join th | None -> ());
    try Unix.close t.fd with _ -> ()
  end
