(** Length-prefixed binary wire protocol between {!Server_client} and
    {!Server}: a u32 frame length, then an opcode byte and its body.
    See wire.ml for the exact frame grammar. *)

type request =
  | Open of string  (** open a session against the named database *)
  | Execute of string  (** run one statement (query / update / DDL / BEGIN…) *)
  | Fetch of int  (** next result chunk, at most this many bytes *)
  | Close

type response =
  | Opened of int  (** session id *)
  | Updated of int  (** affected-node count of an update *)
  | Message of string  (** DDL / transaction-control confirmation *)
  | Result_ready of int  (** query done; result of this many bytes awaits fetch *)
  | Chunk of { last : bool; data : string }
  | Bye
  | Err of { code : string; msg : string }

(** {1 Replication extension}

    Spoken on the primary's dedicated replication port.  The standby
    drives a pull loop: each {!repl_request.Pull} names the WAL epoch
    and frame-boundary position it wants next — thereby acknowledging
    everything before it. *)

type repl_request =
  | Pull of { cluster : int; epoch : int; pos : int; max_bytes : int }
      (** [cluster] is the standby's fencing epoch: a deposed primary
          learns of its deposition from the very next pull *)
  | Seed_request  (** ship a full backup (the standby must re-seed) *)
  | Page_request of { cluster : int; pid : int }
      (** single-page repair fetch for the scrubber; [cluster] is the
          requester's fencing epoch, checked on both ends so a fenced
          node never serves (or installs) repairs across a promotion *)

type trace_mark = { mk_pos : int; mk_trace : string; mk_span : int }
(** A traced commit inside a batch: WAL position right after the
    commit, the statement's trace ID and the parent span the standby's
    apply span should hang under. *)

type repl_response =
  | Batch of {
      cluster : int;
      epoch : int;
      next_pos : int;
      frames : string;
      marks : trace_mark list;
    }
      (** raw WAL frames [pos, next_pos) of the requested epoch *)
  | Heartbeat of { cluster : int; epoch : int; pos : int }
      (** no new frames; [pos] is the primary's current WAL end *)
  | Hole of { cluster : int; epoch : int }
      (** the requested (epoch, pos) is no longer servable — the log
          was truncated by a checkpoint; the standby must re-seed *)
  | Seed_file of { name : string; data : string }
  | Seed_done of { cluster : int; epoch : int; pos : int }
      (** seed complete; resume streaming from (epoch, pos) *)
  | Fenced of { cluster : int }
      (** the pull carried a higher cluster epoch than the sender held:
          the sender has demoted itself; this link is dead *)
  | Page_reply of { cluster : int; pid : int; page : string option }
      (** answer to {!repl_request.Page_request}; [None] when the page
          is out of range or unreadable on the serving side *)

val max_frame : int

exception Protocol_error of string

exception Disconnected of string
(** The peer died mid-conversation: [ECONNRESET], [EPIPE], EOF inside
    a frame — all normalized to this one exception so retry
    classification upstream never matches errno lists. *)

val write_request : ?trace:string -> ?epoch:int -> Unix.file_descr -> request -> unit
(** [trace] is a ["trace_id:parent_span_id"] context header
    ({!Sedna_util.Span.wire_of}); [epoch] the sender's highest observed
    cluster epoch.  Both ride in the same frame. *)

val read_request : Unix.file_descr -> string option * int option * request
(** Returns the trace-context and cluster-epoch headers, if the client
    sent them, alongside the request.
    @raise End_of_file on a cleanly closed peer. *)

val write_response : ?epoch:int -> Unix.file_descr -> response -> unit
val read_response : Unix.file_descr -> int option * response

val write_repl_request : Unix.file_descr -> repl_request -> unit
val read_repl_request : Unix.file_descr -> repl_request
val write_repl_response : Unix.file_descr -> repl_response -> unit
val read_repl_response : Unix.file_descr -> repl_response
