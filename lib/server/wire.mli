(** Length-prefixed binary wire protocol between {!Server_client} and
    {!Server}: a u32 frame length, then an opcode byte and its body.
    See wire.ml for the exact frame grammar. *)

type request =
  | Open of string  (** open a session against the named database *)
  | Execute of string  (** run one statement (query / update / DDL / BEGIN…) *)
  | Fetch of int  (** next result chunk, at most this many bytes *)
  | Close

type response =
  | Opened of int  (** session id *)
  | Updated of int  (** affected-node count of an update *)
  | Message of string  (** DDL / transaction-control confirmation *)
  | Result_ready of int  (** query done; result of this many bytes awaits fetch *)
  | Chunk of { last : bool; data : string }
  | Bye
  | Err of { code : string; msg : string }

val max_frame : int

exception Protocol_error of string

val write_request : Unix.file_descr -> request -> unit
val read_request : Unix.file_descr -> request
(** @raise End_of_file on a cleanly closed peer. *)

val write_response : Unix.file_descr -> response -> unit
val read_response : Unix.file_descr -> response
