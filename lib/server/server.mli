(** The network serving layer (paper §3: governor / listener /
    per-session processes, here a listener thread plus a bounded worker
    pool): accepts TCP connections speaking the {!Wire} protocol and
    drives one {!Sedna_db.Session} per connection.

    Admission control refuses work with SE-OVERLOADED at two gates —
    queue-depth backpressure at accept, and the governor's session
    limit at [Open].  Statements run under the governor's coarse store
    lock, taken per statement and never held across an idle
    transaction, so snapshot readers complete while a writer
    transaction on another connection is still uncommitted (§6.3). *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; read it back with {!port} *)
  pool_size : int;  (** worker threads *)
  max_queue : int;  (** accepted-but-unserved connections before SE-OVERLOADED *)
  fetch_chunk : int;  (** default fetch-batch size in bytes *)
}

val default_config : config
(** 127.0.0.1, ephemeral port, 4 workers, queue of 16, 64 KiB chunks. *)

type t

val start :
  ?config:config -> ?on_promote:(unit -> string) -> Sedna_db.Governor.t -> t
(** Bind, spawn the listener and the worker pool, return immediately.
    Databases must already be registered with the governor; clients
    name one in their [Open] request.

    [on_promote], when given, handles the [PROMOTE] admin statement.
    It runs {e outside} the engine lock (promotion joins the
    replication apply thread, which takes that lock itself); without it
    [PROMOTE] answers SE-UNSUPPORTED. *)

val port : t -> int
(** The actually bound port (useful with [port = 0]). *)

val is_draining : t -> bool
(** True once {!stop}/{!kill} has begun — the [/health] readiness
    probe reports draining from here. *)

val stop : ?shutdown_governor:bool -> t -> unit
(** Graceful shutdown: stop accepting, refuse queued-but-unstarted
    connections with SE-SHUTDOWN, let in-flight statements finish and
    deliver their responses, roll back transactions left open by their
    connections, then (unless [shutdown_governor] is [false])
    checkpoint every database and close its WAL via
    {!Sedna_db.Governor.shutdown}.  Idempotent; blocks until drained. *)

val kill : t -> unit
(** Hard stop simulating SIGKILL: sever every connection without
    rollbacks, checkpoints or governor shutdown.  In-flight clients see
    their connection reset.  Follow with {!Sedna_core.Database.crash}
    on the databases to complete the simulation. *)
