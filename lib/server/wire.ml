(* The wire protocol: length-prefixed binary frames over a byte stream
   (paper §3: clients speak to their session through a socket pair).

     frame    := u32_be payload_length, payload
     payload  := opcode byte, body
     str      := u32_be byte_length, bytes

   Requests (client -> server):
     'O' str database          open a session against a database
     'X' str statement         execute one statement
     'F' u32 max_bytes         fetch the next chunk of a query result
     'C'                       close the session

   Any request or response may be prefixed (inside the same frame) with
   in-frame headers, so old-style bare messages remain valid:
     'T' str "trace_id:parent_span_id"   trace context (requests)
     'E' u32 cluster_epoch               fencing epoch (both directions):
                                         each side stamps the highest
                                         cluster epoch it has observed,
                                         so epochs gossip along every
                                         existing exchange

   Responses (server -> client):
     'o' u32 session_id        session opened
     'u' u32 count             update statement done (affected nodes)
     'm' str message           DDL / transaction-control done
     'r' u32 total_bytes       query result ready; fetch-batch to stream
     'c' u8 last, str data     one result chunk ([last] = final one)
     'b'                       session closed, connection ends
     'e' str code, str msg     error (code = SE-*/W3C error name)

   Replication extension (spoken on the primary's replication port;
   the standby drives a pull loop, so its Pull doubles as the ack of
   everything before [pos]):

   Repl requests (standby -> primary):
     'P' u32 cluster, u32 epoch, u32 pos, u32 max_bytes
                                              pull frames from (epoch,pos);
                                              cluster is the standby's fencing
                                              epoch, so a deposed primary
                                              learns of its deposition from
                                              the very next pull
     'S'                                      request a full seed (backup)

   Repl responses (primary -> standby), all carrying the primary's
   cluster (fencing) epoch as their first field:
     'B' u32 cluster, u32 epoch, u32 next_pos, str frames
        u32 nmarks, nmarks * (u32 pos, str trace, u32 span)
                                              raw WAL frames [pos,next_pos);
                                              trace marks: commits inside the
                                              batch whose statement was traced,
                                              so the standby can hang its apply
                                              span under the right parent
     'h' u32 cluster, u32 epoch, u32 pos      heartbeat: no new frames; pos =
                                              primary WAL end
     'H' u32 cluster, u32 epoch               hole: (epoch,pos) not servable
                                              (checkpoint truncation) — re-seed
     'f' str name, str data                   one file of a full backup
     'd' u32 cluster, u32 epoch, u32 pos      seed complete; stream from here
     'x' u32 cluster                          fenced: the pull carried a higher
                                              cluster epoch than the sender's —
                                              the sender has demoted itself and
                                              this link is dead *)

type request =
  | Open of string
  | Execute of string
  | Fetch of int
  | Close

type response =
  | Opened of int
  | Updated of int
  | Message of string
  | Result_ready of int
  | Chunk of { last : bool; data : string }
  | Bye
  | Err of { code : string; msg : string }

type repl_request =
  | Pull of { cluster : int; epoch : int; pos : int; max_bytes : int }
  | Seed_request
  | Page_request of { cluster : int; pid : int }

(* commit position, trace id, parent span id — see the 'B' frame *)
type trace_mark = { mk_pos : int; mk_trace : string; mk_span : int }

type repl_response =
  | Batch of {
      cluster : int;
      epoch : int;
      next_pos : int;
      frames : string;
      marks : trace_mark list;
    }
  | Heartbeat of { cluster : int; epoch : int; pos : int }
  | Hole of { cluster : int; epoch : int }
  | Seed_file of { name : string; data : string }
  | Seed_done of { cluster : int; epoch : int; pos : int }
  | Fenced of { cluster : int }
  | Page_reply of { cluster : int; pid : int; page : string option }

(* Frames larger than this are a protocol violation, not a payload:
   reject before allocating. *)
let max_frame = 64 * 1024 * 1024

exception Protocol_error of string

exception Disconnected of string
(* The peer died: ECONNRESET / EPIPE / unexpected EOF mid-frame, all
   normalized here so retry classification upstream matches one
   exception instead of errno lists. *)

let perror fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt

let disconnected fmt = Printf.ksprintf (fun m -> raise (Disconnected m)) fmt

(* ---- byte-level helpers -------------------------------------------- *)

(* Partial reads/writes are retried; EINTR (signal delivery) restarts
   the call, and EAGAIN/EWOULDBLOCK (socket briefly non-ready, e.g.
   spurious readiness after select) waits for the descriptor instead of
   spinning.  Without the EINTR loop a SIGCHLD from a forked bench
   worker aborts a perfectly healthy connection mid-frame. *)

let rec wait_readable fd =
  match Unix.select [ fd ] [] [] (-1.0) with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable fd

let rec wait_writable fd =
  match Unix.select [] [ fd ] [] (-1.0) with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_writable fd

(* errnos that mean "the peer is gone", normalized to {!Disconnected}
   so no caller has to pattern-match this list again *)
let peer_death = function
  | Unix.ECONNRESET | Unix.EPIPE | Unix.ECONNABORTED | Unix.ENOTCONN
  | Unix.ESHUTDOWN | Unix.ETIMEDOUT ->
    true
  | _ -> false

let really_read fd buf off len =
  let rec go off len =
    if len > 0 then begin
      match Unix.read fd buf off len with
      | 0 -> raise End_of_file
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        wait_readable fd;
        go off len
      | exception Unix.Unix_error (e, _, _) when peer_death e ->
        disconnected "read: %s" (Unix.error_message e)
    end
  in
  go off len

let really_write fd buf off len =
  let rec go off len =
    if len > 0 then begin
      match Unix.write fd buf off len with
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        wait_writable fd;
        go off len
      | exception Unix.Unix_error (e, _, _) when peer_death e ->
        disconnected "write: %s" (Unix.error_message e)
    end
  in
  go off len

let add_u32 b n =
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (n land 0xff))

let add_u8 b n = Buffer.add_char b (Char.chr (n land 0xff))

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

type reader = { bytes : Bytes.t; mutable pos : int }

let get_u8 r =
  if r.pos >= Bytes.length r.bytes then perror "truncated frame";
  let v = Char.code (Bytes.get r.bytes r.pos) in
  r.pos <- r.pos + 1;
  v

let get_u32 r =
  let a = get_u8 r in
  let b = get_u8 r in
  let c = get_u8 r in
  let d = get_u8 r in
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let get_str r =
  let len = get_u32 r in
  if r.pos + len > Bytes.length r.bytes then perror "truncated string";
  let s = Bytes.sub_string r.bytes r.pos len in
  r.pos <- r.pos + len;
  s

(* ---- framing -------------------------------------------------------- *)

open Sedna_util

(* Every frame passes a {!Netfault} site on the way out and in.  The
   injected weather lives entirely below the message codecs: a dropped
   send never reaches the socket, a torn send kills the connection
   after a prefix, a dropped recv silently reads the next frame — the
   codecs above see either a whole frame or {!Disconnected}. *)

let write_frame fd (payload : Buffer.t) =
  let len = Buffer.length payload in
  let b = Bytes.create (4 + len) in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (len land 0xff));
  Bytes.blit_string (Buffer.contents payload) 0 b 4 len;
  match Netfault.on_send fd ~len:(4 + len) with
  | Proceed -> really_write fd b 0 (4 + len)
  | Drop_frame -> () (* the sender believes it went *)
  | Dup_frame ->
    really_write fd b 0 (4 + len);
    really_write fd b 0 (4 + len)
  | Torn_frame n ->
    (* a strict prefix hits the wire, then the connection dies: the
       peer sees EOF mid-frame *)
    really_write fd b 0 (min n (4 + len - 1));
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    disconnected "torn frame injected"

let rec read_frame fd : reader =
  let verdict = Netfault.on_recv fd in
  (match verdict with
   | Torn_frame _ ->
     (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
     disconnected "torn read injected"
   | _ -> ());
  let hdr = Bytes.create 4 in
  (* EOF on the first header byte is a clean close (End_of_file);
     anywhere later the peer died mid-frame *)
  (let rec go off =
     if off < 4 then begin
       match Unix.read fd hdr off (4 - off) with
       | 0 -> if off = 0 then raise End_of_file else disconnected "EOF mid-frame"
       | n -> go (off + n)
       | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
       | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
         wait_readable fd;
         go off
       | exception Unix.Unix_error (e, _, _) when peer_death e ->
         disconnected "read: %s" (Unix.error_message e)
     end
   in
   go 0);
  let len =
    (Char.code (Bytes.get hdr 0) lsl 24)
    lor (Char.code (Bytes.get hdr 1) lsl 16)
    lor (Char.code (Bytes.get hdr 2) lsl 8)
    lor Char.code (Bytes.get hdr 3)
  in
  if len > max_frame then perror "frame of %d bytes exceeds the limit" len;
  let payload = Bytes.create len in
  (try really_read fd payload 0 len
   with End_of_file -> disconnected "EOF mid-frame");
  match verdict with
  | Drop_frame -> read_frame fd (* the frame vanishes; deliver the next one *)
  | _ -> { bytes = payload; pos = 0 }

(* ---- requests -------------------------------------------------------- *)

let write_request ?trace ?epoch fd (req : request) =
  let b = Buffer.create 64 in
  (match trace with
   | Some t ->
     Buffer.add_char b 'T';
     add_str b t
   | None -> ());
  (match epoch with
   | Some e ->
     Buffer.add_char b 'E';
     add_u32 b e
   | None -> ());
  (match req with
   | Open db ->
     Buffer.add_char b 'O';
     add_str b db
   | Execute text ->
     Buffer.add_char b 'X';
     add_str b text
   | Fetch max_bytes ->
     Buffer.add_char b 'F';
     add_u32 b max_bytes
   | Close -> Buffer.add_char b 'C');
  write_frame fd b

(* consume any in-frame headers ('T' trace, 'E' epoch) before the
   opcode proper; either may be absent, order free *)
let read_headers r =
  let trace = ref None and epoch = ref None in
  let rec go opcode =
    match opcode with
    | 'T' ->
      trace := Some (get_str r);
      go (Char.chr (get_u8 r))
    | 'E' ->
      epoch := Some (get_u32 r);
      go (Char.chr (get_u8 r))
    | c -> c
  in
  let opcode = go (Char.chr (get_u8 r)) in
  (!trace, !epoch, opcode)

(* returns the trace-context and epoch headers (if the client sent
   them) alongside the request proper *)
let read_request fd : string option * int option * request =
  let r = read_frame fd in
  let trace, epoch, opcode = read_headers r in
  let req =
    match opcode with
    | 'O' -> Open (get_str r)
    | 'X' -> Execute (get_str r)
    | 'F' -> Fetch (get_u32 r)
    | 'C' -> Close
    | c -> perror "unknown request opcode %C" c
  in
  (trace, epoch, req)

(* ---- responses ------------------------------------------------------- *)

let write_response ?epoch fd (resp : response) =
  let b = Buffer.create 64 in
  (match epoch with
   | Some e ->
     Buffer.add_char b 'E';
     add_u32 b e
   | None -> ());
  (match resp with
   | Opened id ->
     Buffer.add_char b 'o';
     add_u32 b id
   | Updated n ->
     Buffer.add_char b 'u';
     add_u32 b n
   | Message m ->
     Buffer.add_char b 'm';
     add_str b m
   | Result_ready total ->
     Buffer.add_char b 'r';
     add_u32 b total
   | Chunk { last; data } ->
     Buffer.add_char b 'c';
     Buffer.add_char b (if last then '\001' else '\000');
     add_str b data
   | Bye -> Buffer.add_char b 'b'
   | Err { code; msg } ->
     Buffer.add_char b 'e';
     add_str b code;
     add_str b msg);
  write_frame fd b

let read_response fd : int option * response =
  let r = read_frame fd in
  let _trace, epoch, opcode = read_headers r in
  let resp =
    match opcode with
    | 'o' -> Opened (get_u32 r)
    | 'u' -> Updated (get_u32 r)
    | 'm' -> Message (get_str r)
    | 'r' -> Result_ready (get_u32 r)
    | 'c' ->
      let last = get_u8 r <> 0 in
      Chunk { last; data = get_str r }
    | 'b' -> Bye
    | 'e' ->
      let code = get_str r in
      Err { code; msg = get_str r }
    | c -> perror "unknown response opcode %C" c
  in
  (epoch, resp)

(* ---- replication ----------------------------------------------------- *)

let write_repl_request fd (req : repl_request) =
  let b = Buffer.create 16 in
  (match req with
   | Pull { cluster; epoch; pos; max_bytes } ->
     Buffer.add_char b 'P';
     add_u32 b cluster;
     add_u32 b epoch;
     add_u32 b pos;
     add_u32 b max_bytes
   | Seed_request -> Buffer.add_char b 'S'
   | Page_request { cluster; pid } ->
     Buffer.add_char b 'G';
     add_u32 b cluster;
     add_u32 b pid);
  write_frame fd b

let read_repl_request fd : repl_request =
  let r = read_frame fd in
  match Char.chr (get_u8 r) with
  | 'P' ->
    let cluster = get_u32 r in
    let epoch = get_u32 r in
    let pos = get_u32 r in
    Pull { cluster; epoch; pos; max_bytes = get_u32 r }
  | 'S' -> Seed_request
  | 'G' ->
    let cluster = get_u32 r in
    Page_request { cluster; pid = get_u32 r }
  | c -> perror "unknown replication request opcode %C" c

let write_repl_response fd (resp : repl_response) =
  let b = Buffer.create 64 in
  (match resp with
   | Batch { cluster; epoch; next_pos; frames; marks } ->
     Buffer.add_char b 'B';
     add_u32 b cluster;
     add_u32 b epoch;
     add_u32 b next_pos;
     add_str b frames;
     add_u32 b (List.length marks);
     List.iter
       (fun { mk_pos; mk_trace; mk_span } ->
         add_u32 b mk_pos;
         add_str b mk_trace;
         add_u32 b mk_span)
       marks
   | Heartbeat { cluster; epoch; pos } ->
     Buffer.add_char b 'h';
     add_u32 b cluster;
     add_u32 b epoch;
     add_u32 b pos
   | Hole { cluster; epoch } ->
     Buffer.add_char b 'H';
     add_u32 b cluster;
     add_u32 b epoch
   | Seed_file { name; data } ->
     Buffer.add_char b 'f';
     add_str b name;
     add_str b data
   | Seed_done { cluster; epoch; pos } ->
     Buffer.add_char b 'd';
     add_u32 b cluster;
     add_u32 b epoch;
     add_u32 b pos
   | Fenced { cluster } ->
     Buffer.add_char b 'x';
     add_u32 b cluster
   | Page_reply { cluster; pid; page } ->
     Buffer.add_char b 'g';
     add_u32 b cluster;
     add_u32 b pid;
     (match page with
      | None -> add_u8 b 0
      | Some p ->
        add_u8 b 1;
        add_str b p));
  write_frame fd b

let read_repl_response fd : repl_response =
  let r = read_frame fd in
  match Char.chr (get_u8 r) with
  | 'B' ->
    let cluster = get_u32 r in
    let epoch = get_u32 r in
    let next_pos = get_u32 r in
    let frames = get_str r in
    let nmarks = get_u32 r in
    if nmarks > 65536 then perror "implausible trace-mark count %d" nmarks;
    let marks =
      List.init nmarks (fun _ ->
          let mk_pos = get_u32 r in
          let mk_trace = get_str r in
          { mk_pos; mk_trace; mk_span = get_u32 r })
    in
    Batch { cluster; epoch; next_pos; frames; marks }
  | 'h' ->
    let cluster = get_u32 r in
    let epoch = get_u32 r in
    Heartbeat { cluster; epoch; pos = get_u32 r }
  | 'H' ->
    let cluster = get_u32 r in
    Hole { cluster; epoch = get_u32 r }
  | 'f' ->
    let name = get_str r in
    Seed_file { name; data = get_str r }
  | 'd' ->
    let cluster = get_u32 r in
    let epoch = get_u32 r in
    Seed_done { cluster; epoch; pos = get_u32 r }
  | 'x' -> Fenced { cluster = get_u32 r }
  | 'g' ->
    let cluster = get_u32 r in
    let pid = get_u32 r in
    let page = if get_u8 r = 1 then Some (get_str r) else None in
    Page_reply { cluster; pid; page }
  | c -> perror "unknown replication response opcode %C" c
