(* The wire protocol: length-prefixed binary frames over a byte stream
   (paper §3: clients speak to their session through a socket pair).

     frame    := u32_be payload_length, payload
     payload  := opcode byte, body
     str      := u32_be byte_length, bytes

   Requests (client -> server):
     'O' str database          open a session against a database
     'X' str statement         execute one statement
     'F' u32 max_bytes         fetch the next chunk of a query result
     'C'                       close the session

   Any request may be prefixed (inside the same frame) with a trace
   context header, so old-style un-traced requests remain valid:
     'T' str "trace_id:parent_span_id", then the request as above

   Responses (server -> client):
     'o' u32 session_id        session opened
     'u' u32 count             update statement done (affected nodes)
     'm' str message           DDL / transaction-control done
     'r' u32 total_bytes       query result ready; fetch-batch to stream
     'c' u8 last, str data     one result chunk ([last] = final one)
     'b'                       session closed, connection ends
     'e' str code, str msg     error (code = SE-*/W3C error name)

   Replication extension (spoken on the primary's replication port;
   the standby drives a pull loop, so its Pull doubles as the ack of
   everything before [pos]):

   Repl requests (standby -> primary):
     'P' u32 epoch, u32 pos, u32 max_bytes    pull frames from (epoch,pos)
     'S'                                      request a full seed (backup)

   Repl responses (primary -> standby):
     'B' u32 epoch, u32 next_pos, str frames  raw WAL frames [pos,next_pos),
        u32 nmarks, nmarks * (u32 pos, str trace, u32 span)
                                              trace marks: commits inside the
                                              batch whose statement was traced,
                                              so the standby can hang its apply
                                              span under the right parent
     'h' u32 epoch, u32 pos                   heartbeat: no new frames; pos =
                                              primary WAL end
     'H' u32 epoch                            hole: (epoch,pos) not servable
                                              (checkpoint truncation) — re-seed
     'f' str name, str data                   one file of a full backup
     'd' u32 epoch, u32 pos                   seed complete; stream from here *)

type request =
  | Open of string
  | Execute of string
  | Fetch of int
  | Close

type response =
  | Opened of int
  | Updated of int
  | Message of string
  | Result_ready of int
  | Chunk of { last : bool; data : string }
  | Bye
  | Err of { code : string; msg : string }

type repl_request =
  | Pull of { epoch : int; pos : int; max_bytes : int }
  | Seed_request

(* commit position, trace id, parent span id — see the 'B' frame *)
type trace_mark = { mk_pos : int; mk_trace : string; mk_span : int }

type repl_response =
  | Batch of {
      epoch : int;
      next_pos : int;
      frames : string;
      marks : trace_mark list;
    }
  | Heartbeat of { epoch : int; pos : int }
  | Hole of { epoch : int }
  | Seed_file of { name : string; data : string }
  | Seed_done of { epoch : int; pos : int }

(* Frames larger than this are a protocol violation, not a payload:
   reject before allocating. *)
let max_frame = 64 * 1024 * 1024

exception Protocol_error of string

let perror fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt

(* ---- byte-level helpers -------------------------------------------- *)

(* Partial reads/writes are retried; EINTR (signal delivery) restarts
   the call, and EAGAIN/EWOULDBLOCK (socket briefly non-ready, e.g.
   spurious readiness after select) waits for the descriptor instead of
   spinning.  Without the EINTR loop a SIGCHLD from a forked bench
   worker aborts a perfectly healthy connection mid-frame. *)

let rec wait_readable fd =
  match Unix.select [ fd ] [] [] (-1.0) with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable fd

let rec wait_writable fd =
  match Unix.select [] [ fd ] [] (-1.0) with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_writable fd

let really_read fd buf off len =
  let rec go off len =
    if len > 0 then begin
      match Unix.read fd buf off len with
      | 0 -> raise End_of_file
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        wait_readable fd;
        go off len
    end
  in
  go off len

let really_write fd buf off len =
  let rec go off len =
    if len > 0 then begin
      match Unix.write fd buf off len with
      | n -> go (off + n) (len - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off len
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        wait_writable fd;
        go off len
    end
  in
  go off len

let add_u32 b n =
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (n land 0xff))

let add_str b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

type reader = { bytes : Bytes.t; mutable pos : int }

let get_u8 r =
  if r.pos >= Bytes.length r.bytes then perror "truncated frame";
  let v = Char.code (Bytes.get r.bytes r.pos) in
  r.pos <- r.pos + 1;
  v

let get_u32 r =
  let a = get_u8 r in
  let b = get_u8 r in
  let c = get_u8 r in
  let d = get_u8 r in
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let get_str r =
  let len = get_u32 r in
  if r.pos + len > Bytes.length r.bytes then perror "truncated string";
  let s = Bytes.sub_string r.bytes r.pos len in
  r.pos <- r.pos + len;
  s

(* ---- framing -------------------------------------------------------- *)

let write_frame fd (payload : Buffer.t) =
  let len = Buffer.length payload in
  let b = Bytes.create (4 + len) in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (len land 0xff));
  Bytes.blit_string (Buffer.contents payload) 0 b 4 len;
  really_write fd b 0 (4 + len)

let read_frame fd : reader =
  let hdr = Bytes.create 4 in
  really_read fd hdr 0 4;
  let len =
    (Char.code (Bytes.get hdr 0) lsl 24)
    lor (Char.code (Bytes.get hdr 1) lsl 16)
    lor (Char.code (Bytes.get hdr 2) lsl 8)
    lor Char.code (Bytes.get hdr 3)
  in
  if len > max_frame then perror "frame of %d bytes exceeds the limit" len;
  let payload = Bytes.create len in
  really_read fd payload 0 len;
  { bytes = payload; pos = 0 }

(* ---- requests -------------------------------------------------------- *)

let write_request ?trace fd (req : request) =
  let b = Buffer.create 64 in
  (match trace with
   | Some t ->
     Buffer.add_char b 'T';
     add_str b t
   | None -> ());
  (match req with
   | Open db ->
     Buffer.add_char b 'O';
     add_str b db
   | Execute text ->
     Buffer.add_char b 'X';
     add_str b text
   | Fetch max_bytes ->
     Buffer.add_char b 'F';
     add_u32 b max_bytes
   | Close -> Buffer.add_char b 'C');
  write_frame fd b

(* returns the trace-context header (if the client sent one) alongside
   the request proper *)
let read_request fd : string option * request =
  let r = read_frame fd in
  let opcode = Char.chr (get_u8 r) in
  let trace, opcode =
    if opcode = 'T' then
      let t = get_str r in
      (Some t, Char.chr (get_u8 r))
    else (None, opcode)
  in
  let req =
    match opcode with
    | 'O' -> Open (get_str r)
    | 'X' -> Execute (get_str r)
    | 'F' -> Fetch (get_u32 r)
    | 'C' -> Close
    | c -> perror "unknown request opcode %C" c
  in
  (trace, req)

(* ---- responses ------------------------------------------------------- *)

let write_response fd (resp : response) =
  let b = Buffer.create 64 in
  (match resp with
   | Opened id ->
     Buffer.add_char b 'o';
     add_u32 b id
   | Updated n ->
     Buffer.add_char b 'u';
     add_u32 b n
   | Message m ->
     Buffer.add_char b 'm';
     add_str b m
   | Result_ready total ->
     Buffer.add_char b 'r';
     add_u32 b total
   | Chunk { last; data } ->
     Buffer.add_char b 'c';
     Buffer.add_char b (if last then '\001' else '\000');
     add_str b data
   | Bye -> Buffer.add_char b 'b'
   | Err { code; msg } ->
     Buffer.add_char b 'e';
     add_str b code;
     add_str b msg);
  write_frame fd b

let read_response fd : response =
  let r = read_frame fd in
  match Char.chr (get_u8 r) with
  | 'o' -> Opened (get_u32 r)
  | 'u' -> Updated (get_u32 r)
  | 'm' -> Message (get_str r)
  | 'r' -> Result_ready (get_u32 r)
  | 'c' ->
    let last = get_u8 r <> 0 in
    Chunk { last; data = get_str r }
  | 'b' -> Bye
  | 'e' ->
    let code = get_str r in
    Err { code; msg = get_str r }
  | c -> perror "unknown response opcode %C" c

(* ---- replication ----------------------------------------------------- *)

let write_repl_request fd (req : repl_request) =
  let b = Buffer.create 16 in
  (match req with
   | Pull { epoch; pos; max_bytes } ->
     Buffer.add_char b 'P';
     add_u32 b epoch;
     add_u32 b pos;
     add_u32 b max_bytes
   | Seed_request -> Buffer.add_char b 'S');
  write_frame fd b

let read_repl_request fd : repl_request =
  let r = read_frame fd in
  match Char.chr (get_u8 r) with
  | 'P' ->
    let epoch = get_u32 r in
    let pos = get_u32 r in
    Pull { epoch; pos; max_bytes = get_u32 r }
  | 'S' -> Seed_request
  | c -> perror "unknown replication request opcode %C" c

let write_repl_response fd (resp : repl_response) =
  let b = Buffer.create 64 in
  (match resp with
   | Batch { epoch; next_pos; frames; marks } ->
     Buffer.add_char b 'B';
     add_u32 b epoch;
     add_u32 b next_pos;
     add_str b frames;
     add_u32 b (List.length marks);
     List.iter
       (fun { mk_pos; mk_trace; mk_span } ->
         add_u32 b mk_pos;
         add_str b mk_trace;
         add_u32 b mk_span)
       marks
   | Heartbeat { epoch; pos } ->
     Buffer.add_char b 'h';
     add_u32 b epoch;
     add_u32 b pos
   | Hole { epoch } ->
     Buffer.add_char b 'H';
     add_u32 b epoch
   | Seed_file { name; data } ->
     Buffer.add_char b 'f';
     add_str b name;
     add_str b data
   | Seed_done { epoch; pos } ->
     Buffer.add_char b 'd';
     add_u32 b epoch;
     add_u32 b pos);
  write_frame fd b

let read_repl_response fd : repl_response =
  let r = read_frame fd in
  match Char.chr (get_u8 r) with
  | 'B' ->
    let epoch = get_u32 r in
    let next_pos = get_u32 r in
    let frames = get_str r in
    let nmarks = get_u32 r in
    if nmarks > 65536 then perror "implausible trace-mark count %d" nmarks;
    let marks =
      List.init nmarks (fun _ ->
          let mk_pos = get_u32 r in
          let mk_trace = get_str r in
          { mk_pos; mk_trace; mk_span = get_u32 r })
    in
    Batch { epoch; next_pos; frames; marks }
  | 'h' ->
    let epoch = get_u32 r in
    Heartbeat { epoch; pos = get_u32 r }
  | 'H' -> Hole { epoch = get_u32 r }
  | 'f' ->
    let name = get_str r in
    Seed_file { name; data = get_str r }
  | 'd' ->
    let epoch = get_u32 r in
    Seed_done { epoch; pos = get_u32 r }
  | c -> perror "unknown replication response opcode %C" c
