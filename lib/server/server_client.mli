(** Blocking client for the {!Wire} protocol — what benches, tests and
    the CLI's --connect mode use instead of a local session. *)

exception Remote_error of string * string
(** [(code, message)] — the server-side error, e.g.
    ["SE-OVERLOADED"], ["SE-TIMEOUT"], ["XPTY0004"]. *)

type t

val connect : ?host:string -> ?fetch_chunk:int -> port:int -> unit -> t

val open_db : t -> string -> int
(** Open a session against the named database; returns the session id. *)

val execute : t -> string -> Sedna_db.Session.result
(** Run one statement; query results are reassembled from
    fetch-batches.  ["BEGIN"], ["BEGIN READ ONLY"], ["COMMIT"] and
    ["ROLLBACK"] are transaction control. *)

val execute_string : t -> string -> string

val request : t -> Wire.request -> Wire.response
(** Raw round trip (tests use this to observe protocol-level replies). *)

val close : t -> unit
(** Send [Close], then close the socket.  Idempotent. *)
