(** Blocking client for the {!Wire} protocol — what benches, tests and
    the CLI's --connect mode use instead of a local session.

    Failover: the client holds an endpoint list (primary first).  When
    the connection drops it reconnects to the next live endpoint with
    bounded exponential backoff and re-opens the session; statements
    outside any explicit transaction that are plain reads (or [BEGIN])
    are retried transparently, everything else raises {!Remote_error}
    with code ["SE-FAILOVER"]. *)

exception Remote_error of string * string
(** [(code, message)] — the server-side error, e.g.
    ["SE-OVERLOADED"], ["SE-TIMEOUT"], ["SE-FAILOVER"], ["XPTY0004"]. *)

type t

val connect :
  ?host:string ->
  ?fetch_chunk:int ->
  ?endpoints:(string * int) list ->
  ?retries:int ->
  ?backoff_s:float ->
  port:int ->
  unit ->
  t
(** [endpoints] is the failover list, tried in order; it defaults to
    [[(host, port)]].  A refused/reset initial connection is retried
    [retries] extra rounds over the whole list, sleeping
    [backoff_s * 2^round] between rounds (default: no retries). *)

val endpoint : t -> string * int
(** The endpoint currently connected (changes after a failover). *)

val in_transaction : t -> bool
(** True between a successful [BEGIN] and its [COMMIT]/[ROLLBACK]. *)

val open_db : t -> string -> int
(** Open a session against the named database; returns the session id. *)

val execute : t -> string -> Sedna_db.Session.result
(** Run one statement; query results are reassembled from
    fetch-batches.  ["BEGIN"], ["BEGIN READ ONLY"], ["COMMIT"] and
    ["ROLLBACK"] are transaction control. *)

val execute_string : t -> string -> string

val request : ?trace:string -> t -> Wire.request -> Wire.response
(** Raw round trip (tests use this to observe protocol-level replies).
    [trace] is a pre-encoded {!Sedna_util.Span.wire_of} context. *)

val last_trace_id : t -> string option
(** Trace ID generated for the most recent traced operation — feed to
    [\trace <id>] or {!Sedna_util.Span.find}. *)

val close : t -> unit
(** Send [Close], then close the socket.  Idempotent. *)
