(** Monitoring listener ([--metrics-port]): a minimal HTTP server
    exposing [GET /metrics] — Prometheus text exposition of all global
    {!Sedna_util.Counters}, all registered {!Sedna_util.Metrics}
    histograms (cumulative [le] buckets, seconds) and caller-supplied
    gauges — and [GET /health], a readiness probe answering
    [200 "ok <role>"] while serving and [503] while draining.

    The handler never takes the engine lock; gauge closures must be
    lock-free reads as well. *)

type gauge = {
  g_name : string;  (** counter-style dotted name, e.g. ["buffer.occupancy"] *)
  g_help : string;  (** one-line HELP text; [""] omits it *)
  g_read : unit -> int;
}

type t

val start :
  ?host:string ->
  ?gauges:gauge list ->
  ?health:(unit -> bool * string) ->
  port:int ->
  unit ->
  t
(** Bind and spawn the accept thread.  [health] returns
    [(ready, role)]; default always-ready ["primary"].  [port = 0]
    picks an ephemeral port — read it back with {!port}. *)

val port : t -> int
val stop : t -> unit

val render_metrics : gauge list -> string
(** The [/metrics] body (exposed for tests and one-shot dumps). *)

val prom_name : string -> string
(** ["wal.fsync-ms"] -> ["sedna_wal_fsync_ms"]. *)
