(* The serving layer (paper §3: governor / listener / per-session trn
   processes — here a listener thread plus a bounded worker pool inside
   one process).

   A listener thread accepts TCP connections and hands each one to a
   worker through a bounded queue; admission control refuses work at
   two gates with a clean SE-OVERLOADED: the queue itself (depth
   backpressure, checked at accept) and the governor's session limit
   (checked at Open).  Workers speak the {!Wire} protocol and drive an
   ordinary {!Sedna_db.Session}.

   Concurrency model: engine access is serialized by the governor's
   coarse store lock, taken per *statement* — never held across an
   idle transaction.  An uncommitted writer therefore keeps its S2PL
   document locks between statements but not the store lock, so
   snapshot readers (which take no document locks at all) run and
   finish while the writer is still open: the paper's §6.3 claim across
   real connections.  Query results are materialized under the lock
   but streamed to clients in fetch-batches without it.

   Graceful shutdown drains: the listener stops accepting, queued but
   unstarted connections are refused with SE-SHUTDOWN, in-flight
   statements run to completion and deliver their responses, and only
   then are the databases checkpointed and their WALs closed. *)

open Sedna_util
open Sedna_db

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; read it back with {!port} *)
  pool_size : int;  (** worker threads *)
  max_queue : int;  (** accepted-but-unserved connections before SE-OVERLOADED *)
  fetch_chunk : int;  (** default fetch-batch size in bytes *)
}

let default_config =
  { host = "127.0.0.1"; port = 0; pool_size = 4; max_queue = 16; fetch_chunk = 64 * 1024 }

type t = {
  gov : Governor.t;
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  (* accepted fd + monotonic enqueue time, so the worker that picks the
     connection up can report its accept-queue wait as a span *)
  queue : (Unix.file_descr * float) Queue.t;
  qmu : Mutex.t;
  qcond : Condition.t;
  mutable draining : bool;
  mutable killed : bool; (* hard stop: skip the graceful disconnects *)
  mutable listener : Thread.t option;
  mutable workers : Thread.t list;
  (* conn id -> fd of connections currently owned by a worker, so stop
     can wake the ones idling in a read *)
  active : (int, Unix.file_descr) Hashtbl.t;
  amu : Mutex.t;
  mutable next_conn : int;
  (* PROMOTE handler, set when this server fronts a hot standby *)
  on_promote : (unit -> string) option;
}

let port t = t.bound_port
let is_draining t = t.draining

(* Per-connection worker state. *)
type conn = {
  fd : Unix.file_descr;
  conn_id : int;
  mutable gov_id : int option;
  mutable session : Session.t option;
  mutable pending : string;  (* materialized query result awaiting fetches *)
  mutable sent : int;  (* bytes of [pending] already delivered *)
  mutable requests : int;
  queue_wait_s : float;  (* time spent in the accept queue *)
  mutable queue_wait_reported : bool;  (* span emitted on first traced request *)
}

(* Every response is stamped with the session database's cluster epoch
   ('E' header), so fencing epochs gossip to clients on traffic they
   already exchange; the client folds them into later requests. *)
let send conn resp =
  let epoch =
    match conn.session with
    | Some s ->
      let e = Sedna_core.Database.cluster_epoch (Session.database s) in
      if e > 0 then Some e else None
    | None -> None
  in
  Wire.write_response ?epoch conn.fd resp

let err_of_exn = function
  | Error.Sedna_error (code, msg) ->
    Wire.Err { code = Error.code_name code; msg }
  | Wire.Protocol_error msg -> Wire.Err { code = "SE-PROTOCOL"; msg }
  | e -> Wire.Err { code = "SE-INTERNAL"; msg = Printexc.to_string e }

let reject fd ~code ~msg ~reason =
  Counters.bump Counters.conn_rejected;
  Trace.emit (Trace.Conn_reject { reason });
  (try Wire.write_response fd (Wire.Err { code; msg }) with _ -> ());
  Netfault.unregister fd;
  try Unix.close fd with _ -> ()

(* ---- statement handling ---------------------------------------------- *)

(* Transaction control comes over the wire as plain statements, so an
   uncommitted transaction can span many request/response round trips
   (which is what the §6.3 cross-connection tests exercise). *)
let txn_control (s : Session.t) (text : string) : string option =
  match String.lowercase_ascii (String.trim text) with
  | "begin" ->
    Session.begin_txn s;
    Some "transaction started"
  | "begin read only" ->
    Session.begin_txn ~read_only:true s;
    Some "read-only transaction started"
  | "commit" ->
    Session.commit s;
    Some "committed"
  | "rollback" ->
    Session.rollback s;
    Some "rolled back"
  | _ -> None

let run_execute t cx (s : Session.t) (text : string) : Wire.response * string option =
  (* one statement inside the store lock; the per-query wall-clock
     budget is armed only for the locked section.  The request's span
     context becomes ambient only inside the locked section — the same
     single-statement ownership rule the Deadline cell relies on —
     and "engine.wait" measures the admission wait for that lock. *)
  let wait_sp = Option.map (fun c -> Span.start c "engine.wait") cx in
  let result =
    Governor.with_engine t.gov (fun () ->
        (match (cx, wait_sp) with
         | Some c, Some sp -> Span.finish c sp
         | _ -> ());
        Span.with_current cx (fun () ->
            let timeout = (Governor.limits t.gov).Governor.query_timeout_s in
            if timeout > 0. then Deadline.set timeout;
            Fun.protect
              ~finally:(fun () -> Deadline.clear ())
              (fun () ->
                match txn_control s text with
                | Some msg -> Session.Message msg
                | None -> Session.execute s text)))
  in
  match result with
  | Session.Items body -> (Wire.Result_ready (String.length body), Some body)
  | Session.Updated n -> (Wire.Updated n, None)
  | Session.Message m -> (Wire.Message m, None)

let handle_request t (conn : conn) cx (req : Wire.request) : bool (* keep going *) =
  Counters.bump Counters.server_requests;
  match req with
  | Wire.Open database -> (
    match conn.session with
    | Some _ ->
      send conn (Wire.Err { code = "SE-PROTOCOL"; msg = "session already open" });
      true
    | None -> (
      match Governor.connect t.gov ~database with
      | gid, s ->
        conn.gov_id <- Some gid;
        conn.session <- Some s;
        Trace.emit (Trace.Conn_open { conn = conn.conn_id; session = Session.id s });
        send conn (Wire.Opened (Session.id s));
        true
      | exception e ->
        send conn (err_of_exn e);
        true))
  | Wire.Execute text when String.uppercase_ascii (String.trim text) = "PROMOTE" ->
    (* promotion is handled OUTSIDE the engine lock: it must join the
       replication apply thread, which itself takes the engine lock for
       each transaction it installs — going through [run_execute] here
       would deadlock *)
    (match t.on_promote with
     | None ->
       send conn
         (Wire.Err
            {
              code = "SE-UNSUPPORTED";
              msg = "this server is not a standby: nothing to promote";
            })
     | Some promote -> (
       match promote () with
       | msg -> send conn (Wire.Message msg)
       | exception e -> send conn (err_of_exn e)));
    true
  | Wire.Execute text -> (
    match conn.session with
    | None ->
      send conn (Wire.Err { code = "SE-PROTOCOL"; msg = "no open session" });
      true
    | Some s ->
      (match run_execute t cx s text with
       | resp, body ->
         conn.pending <- Option.value body ~default:"";
         conn.sent <- 0;
         send conn resp
       | exception e ->
         conn.pending <- "";
         conn.sent <- 0;
         send conn (err_of_exn e));
      true)
  | Wire.Fetch max_bytes ->
    (* stream the materialized result without the store lock *)
    let max_bytes =
      if max_bytes <= 0 then t.cfg.fetch_chunk else min max_bytes (Wire.max_frame / 2)
    in
    let remaining = String.length conn.pending - conn.sent in
    let n = min max_bytes remaining in
    let data = String.sub conn.pending conn.sent n in
    conn.sent <- conn.sent + n;
    let last = conn.sent >= String.length conn.pending in
    if last then begin
      conn.pending <- "";
      conn.sent <- 0
    end;
    send conn (Wire.Chunk { last; data });
    true
  | Wire.Close ->
    (* deregister before replying: a client that saw Bye must be able
       to count on its session slot being free (admission control) *)
    (match conn.gov_id with
     | Some gid ->
       (try Governor.disconnect t.gov gid with _ -> ());
       conn.gov_id <- None;
       conn.session <- None
     | None -> ());
    send conn Wire.Bye;
    false

let close_conn t (conn : conn) =
  Mutex.lock t.amu;
  Hashtbl.remove t.active conn.conn_id;
  Mutex.unlock t.amu;
  (* rolls back any open transaction; takes the store lock itself.  A
     killed server skips this: a SIGKILLed process would not have
     written abort records either, and recovery handles the rest *)
  (match conn.gov_id with
   | Some gid when not t.killed -> (
     try Governor.disconnect t.gov gid with _ -> ())
   | _ -> ());
  Trace.emit (Trace.Conn_close { conn = conn.conn_id; requests = conn.requests });
  Netfault.unregister conn.fd;
  try Unix.close conn.fd with _ -> ()

(* One traced request: rebuild the client's span context, surface the
   accept-queue wait (once per connection, under the client's request
   span so it sorts before any server work), wrap the request in a
   server-side span and publish the lot when the response is out. *)
let handle_traced t (conn : conn) trace_hdr (req : Wire.request) : bool =
  match
    if Span.is_enabled () then Option.bind trace_hdr Span.parse_wire else None
  with
  | None -> handle_request t conn None req
  | Some (trace, parent) -> (
    (* charge the accept-queue wait to the first traced *statement*:
       that is the trace a user pulls up, and the open handshake's
       trace would otherwise swallow it *)
    (match req with
     | Wire.Execute _ when not conn.queue_wait_reported ->
       conn.queue_wait_reported <- true;
       Span.emit_remote ~trace ~parent ~name:"queue.wait" ~dur:conn.queue_wait_s
         [ ("conn", Metrics.Int conn.conn_id) ]
     | _ -> ());
    match Span.make ~trace ~parent () with
    | None -> handle_request t conn None req
    | Some cx ->
      let name =
        match req with
        | Wire.Open _ -> "server.open"
        | Wire.Execute _ -> "server.execute"
        | Wire.Fetch _ -> "server.fetch"
        | Wire.Close -> "server.close"
      in
      let sp = Span.start cx name in
      Fun.protect
        ~finally:(fun () ->
          Span.finish cx sp;
          Span.publish cx)
        (fun () -> handle_request t conn (Some cx) req))

let handle_conn t fd queue_wait_s =
  let conn_id =
    Mutex.lock t.amu;
    let id = t.next_conn in
    t.next_conn <- id + 1;
    Hashtbl.replace t.active id fd;
    Mutex.unlock t.amu;
    id
  in
  let conn =
    {
      fd;
      conn_id;
      gov_id = None;
      session = None;
      pending = "";
      sent = 0;
      requests = 0;
      queue_wait_s;
      queue_wait_reported = false;
    }
  in
  let rec loop () =
    match Wire.read_request fd with
    | trace_hdr, epoch_hdr, req ->
      conn.requests <- conn.requests + 1;
      (* a client relaying a higher cluster epoch fences us before the
         request runs: its write must not be acked past the fence *)
      (match (epoch_hdr, conn.session) with
       | Some e, Some s -> Sedna_core.Database.observe_epoch (Session.database s) e
       | _ -> ());
      let keep = try handle_traced t conn trace_hdr req with _ -> false in
      (* a drain lets the in-flight request finish and deliver its
         response, then ends the connection *)
      if keep && not t.draining then loop ()
    | exception (End_of_file | Unix.Unix_error _ | Wire.Disconnected _) -> ()
    | exception Wire.Protocol_error msg ->
      (try send conn (Wire.Err { code = "SE-PROTOCOL"; msg }) with _ -> ())
  in
  Fun.protect ~finally:(fun () -> close_conn t conn) loop

(* ---- threads --------------------------------------------------------- *)

let worker_main t () =
  let rec next () =
    Mutex.lock t.qmu;
    while Queue.is_empty t.queue && not t.draining do
      Condition.wait t.qcond t.qmu
    done;
    let job = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
    Mutex.unlock t.qmu;
    match job with
    | None -> () (* draining and nothing queued: worker retires *)
    | Some (fd, enqueued_at) ->
      if t.draining then
        (* accepted but never started: refuse rather than run work the
           shutdown would have to wait arbitrarily long for *)
        reject fd ~code:"SE-SHUTDOWN" ~msg:"server shutting down" ~reason:"shutdown"
      else begin
        Counters.bump Counters.conn_accepted;
        handle_conn t fd (Metrics.mono () -. enqueued_at)
      end;
      next ()
  in
  next ()

let listener_main t () =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _addr when not (Netfault.on_accept fd ~local:"server" ~peer:"client") ->
      (* injected accept fault: the SYN never completed *)
      (try Unix.close fd with _ -> ());
      loop ()
    | fd, _addr ->
      let decision =
        Mutex.lock t.qmu;
        let d =
          if t.draining then `Shutdown
          else if Queue.length t.queue >= t.cfg.max_queue then `Overloaded
          else begin
            Queue.push (fd, Metrics.mono ()) t.queue;
            Condition.signal t.qcond;
            `Queued
          end
        in
        Mutex.unlock t.qmu;
        d
      in
      (match decision with
       | `Queued -> ()
       | `Overloaded ->
         reject fd ~code:"SE-OVERLOADED"
           ~msg:
             (Printf.sprintf "connection queue full (%d waiting)" t.cfg.max_queue)
           ~reason:"overloaded"
       | `Shutdown ->
         reject fd ~code:"SE-SHUTDOWN" ~msg:"server shutting down" ~reason:"shutdown");
      loop ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
      when t.draining ->
      () (* stop() closed the listen socket *)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
  in
  loop ()

(* ---- lifecycle ------------------------------------------------------- *)

(* a peer that disappears mid-write must surface as EPIPE on the
   write, not kill the whole process *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let start ?(config = default_config) ?on_promote (gov : Governor.t) : t =
  ignore_sigpipe ();
  let addr = Unix.inet_addr_of_string config.host in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (addr, config.port));
  Unix.listen listen_fd (max 8 config.max_queue);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let t =
    {
      gov;
      cfg = config;
      listen_fd;
      bound_port;
      queue = Queue.create ();
      qmu = Mutex.create ();
      qcond = Condition.create ();
      draining = false;
      killed = false;
      listener = None;
      workers = [];
      active = Hashtbl.create 16;
      amu = Mutex.create ();
      next_conn = 1;
      on_promote;
    }
  in
  t.workers <- List.init (max 1 config.pool_size) (fun _ -> Thread.create (worker_main t) ());
  t.listener <- Some (Thread.create (listener_main t) ());
  Trace.emit (Trace.Server_state { state = "listening" });
  Logs.info (fun m -> m "server listening on %s:%d" config.host bound_port);
  t

let stop ?(shutdown_governor = true) t =
  Mutex.lock t.qmu;
  let was_draining = t.draining in
  t.draining <- true;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qmu;
  if not was_draining then begin
    Trace.emit (Trace.Server_state { state = "draining" });
    (* wake the listener out of accept(2) *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with _ -> ());
    (try
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try
          Unix.connect fd
            (Unix.ADDR_INET (Unix.inet_addr_of_string t.cfg.host, t.bound_port))
        with _ -> ());
       Unix.close fd
     with _ -> ());
    (match t.listener with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with _ -> ());
    (* wake connections idling in a read; their in-flight statements
       (if any) complete first because SHUTDOWN_RECEIVE leaves the
       response direction open *)
    Mutex.lock t.amu;
    let fds = Hashtbl.fold (fun _ fd acc -> fd :: acc) t.active [] in
    Mutex.unlock t.amu;
    List.iter
      (fun fd ->
        Netfault.interrupt fd;
        try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ())
      fds;
    List.iter Thread.join t.workers;
    t.workers <- [];
    (* every session is now disconnected (open transactions rolled
       back); checkpoint and close the stores cleanly *)
    if shutdown_governor then Governor.shutdown t.gov;
    Trace.emit (Trace.Server_state { state = "stopped" })
  end

(* Hard stop simulating SIGKILL: no drain, no rollbacks, no checkpoint,
   no governor shutdown.  Connections are severed mid-whatever; the
   databases keep their volatile state until the test calls
   [Database.crash] on them and re-opens through recovery. *)
let kill t =
  Mutex.lock t.qmu;
  let was_down = t.draining in
  t.draining <- true;
  t.killed <- true;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qmu;
  if not was_down then begin
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with _ -> ());
    (try
       let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
       (try
          Unix.connect fd
            (Unix.ADDR_INET (Unix.inet_addr_of_string t.cfg.host, t.bound_port))
        with _ -> ());
       Unix.close fd
     with _ -> ());
    (match t.listener with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with _ -> ());
    Mutex.lock t.amu;
    let fds = Hashtbl.fold (fun _ fd acc -> fd :: acc) t.active [] in
    Mutex.unlock t.amu;
    List.iter
      (fun fd ->
        Netfault.interrupt fd;
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
      fds;
    List.iter Thread.join t.workers;
    t.workers <- [];
    Trace.emit (Trace.Server_state { state = "killed" })
  end
