(* Client side of the wire protocol: a blocking connection that the
   benches, tests and the CLI's --connect mode drive like a local
   session.  Query results arrive in fetch-batches and are reassembled
   here.

   The client knows about failover: it holds a list of endpoints
   (primary first, standbys after) and, when the connection drops, it
   reconnects to the next live endpoint with bounded exponential
   backoff and re-opens the session.  Idempotent work — a statement
   outside any explicit transaction that is not an update — is retried
   transparently; everything else surfaces SE-FAILOVER, because the
   client cannot know whether the lost statement took effect. *)

open Sedna_db
module Span = Sedna_util.Span
module Metrics = Sedna_util.Metrics
module Retry = Sedna_util.Retry
module Netfault = Sedna_util.Netfault

exception Remote_error of string * string

let () =
  Printexc.register_printer (function
    | Remote_error (code, msg) -> Some (Printf.sprintf "%s: %s" code msg)
    | _ -> None)

type t = {
  mutable fd : Unix.file_descr;
  fetch_chunk : int;
  mutable closed : bool;
  endpoints : (string * int) array; (* failover order; element [cur] is live *)
  mutable cur : int;
  retries : int;
  backoff_s : float;
  mutable database : string option; (* re-opened after a failover *)
  mutable in_txn : bool; (* inside an explicit BEGIN ... COMMIT *)
  mutable last_trace : string option; (* trace id of the last traced request *)
  mutable seen_epoch : int; (* highest cluster epoch seen on any response *)
}

let try_connect host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    Netfault.register fd ~local:"client" ~peer:"server";
    fd
  with e ->
    (try Unix.close fd with _ -> ());
    raise e

let close_fd fd =
  Netfault.unregister fd;
  try Unix.close fd with _ -> ()

(* Connection attempts that mean "not up (yet / any more)" — worth
   retrying against the same or another endpoint.  Anything else
   (EACCES, bad address...) propagates immediately. *)
let transient_connect_error = function
  | Unix.Unix_error
      ( (Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ECONNABORTED
        | Unix.ENETUNREACH | Unix.EHOSTUNREACH | Unix.ETIMEDOUT),
        _,
        _ ) ->
    true
  | _ -> false

(* Walk the endpoint list starting at [start]; between full rounds,
   sleep under {!Retry}'s decorrelated jitter — after a primary kill
   every failed-over client lands here at the same instant, and the
   old deterministic backoff made them all reconnect in lockstep
   (thundering herd on the survivor).  [retries] counts extra rounds
   after the first. *)
let connect_any ~endpoints ~start ~retries ~backoff_s =
  let n = Array.length endpoints in
  let r =
    Retry.start
      (Retry.policy ~max_attempts:(retries + 1) ~base_s:backoff_s
         ~cap_s:(backoff_s *. 256.) "connect")
  in
  let rec round last_exn =
    let rec ep i last_exn =
      if i >= n then
        if Retry.pause r then round last_exn
        else
          raise
            (Option.value last_exn
               ~default:(Unix.Unix_error (Unix.ECONNREFUSED, "connect", "")))
      else begin
        let host, port = endpoints.((start + i) mod n) in
        match try_connect host port with
        | fd -> (fd, (start + i) mod n)
        | exception e when transient_connect_error e -> ep (i + 1) (Some e)
      end
    in
    ep 0 last_exn
  in
  round None

let connect ?(host = "127.0.0.1") ?(fetch_chunk = 64 * 1024) ?endpoints
    ?(retries = 0) ?(backoff_s = 0.05) ~port () : t =
  (* a server that closed the connection must surface as EPIPE on our
     next write, not kill the client process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let endpoints =
    Array.of_list
      (match endpoints with Some (_ :: _ as l) -> l | _ -> [ (host, port) ])
  in
  let fd, cur = connect_any ~endpoints ~start:0 ~retries ~backoff_s in
  {
    fd;
    fetch_chunk;
    closed = false;
    endpoints;
    cur;
    retries;
    backoff_s;
    database = None;
    in_txn = false;
    last_trace = None;
    seen_epoch = 0;
  }

let endpoint t = t.endpoints.(t.cur)
let in_transaction t = t.in_txn
let last_trace_id t = t.last_trace

(* One request/response round trip; servers only ever push a frame in
   response to one of ours, so this is the whole protocol.  The client
   relays the highest cluster epoch it has seen on every request and
   folds in whatever the response carries: after a failover to a
   promoted standby, the client itself becomes the messenger that
   fences the deposed primary on its next contact. *)
let request ?trace (t : t) (req : Wire.request) : Wire.response =
  let epoch = if t.seen_epoch > 0 then Some t.seen_epoch else None in
  Wire.write_request ?trace ?epoch t.fd req;
  let e, resp = Wire.read_response t.fd in
  (match e with
   | Some e when e > t.seen_epoch -> t.seen_epoch <- e
   | _ -> ());
  resp

let fail_err = function
  | Wire.Err { code; msg } -> raise (Remote_error (code, msg))
  | r -> r

(* Root a fresh trace around one client-visible operation.  [f] gets
   the wire context header to send; the root span is finished and the
   trace published (client-side spans only — the server publishes its
   own half into the same trace id) when [f] returns. *)
let with_trace (t : t) name f =
  match Span.make () with
  | None -> f None
  | Some c ->
    let sp = Span.start c name in
    t.last_trace <- Some (Span.trace_id c);
    Fun.protect
      ~finally:(fun () ->
        Span.finish c sp;
        Span.publish c)
      (fun () ->
        f (Some (Span.wire_of ~trace:(Span.trace_id c) ~parent:sp.Span.sp_id)))

let fetch_all ?trace (t : t) (total : int) : string =
  let b = Buffer.create total in
  let rec go () =
    match fail_err (request ?trace t (Wire.Fetch t.fetch_chunk)) with
    | Wire.Chunk { last; data } ->
      Buffer.add_string b data;
      if not last then go ()
    | _ -> raise (Wire.Protocol_error "unexpected response to Fetch")
  in
  go ();
  Buffer.contents b

(* ---- failover -------------------------------------------------------- *)

(* The connection itself died (as opposed to the server answering with
   an error frame).  Wire normalizes all the peer-death errnos into
   [Disconnected], so there is no errno list to maintain here. *)
let connection_failure = function
  | End_of_file | Wire.Disconnected _ -> true
  | _ -> false

let statement_kind text =
  let u = String.uppercase_ascii (String.trim text) in
  if String.starts_with ~prefix:"BEGIN" u then `Begin
  else if u = "COMMIT" then `Commit
  else if u = "ROLLBACK" then `Rollback
  else if
    List.exists
      (fun p -> String.starts_with ~prefix:p u)
      [ "UPDATE"; "CREATE"; "DROP"; "LOAD"; "PROMOTE" ]
  then `Write
  else `Read

(* Reconnect to the next endpoint in the list and re-open the session.
   Whatever transaction was open on the old connection is gone. *)
let reconnect t =
  close_fd t.fd;
  t.in_txn <- false;
  let n = Array.length t.endpoints in
  let fd, cur =
    connect_any ~endpoints:t.endpoints ~start:((t.cur + 1) mod n)
      ~retries:(max 1 t.retries) ~backoff_s:t.backoff_s
  in
  t.fd <- fd;
  t.cur <- cur;
  match t.database with
  | Some db -> (
    match fail_err (request t (Wire.Open db)) with
    | Wire.Opened _ -> ()
    | _ -> raise (Wire.Protocol_error "unexpected response to Open"))
  | None -> ()

(* Opening a session is idempotent (nothing exists on the server until
   it succeeds), so a connection lost mid-open just means: reconnect —
   possibly to the next endpoint — and ask again. *)
let open_db (t : t) (database : string) : int =
  let attempt () =
    with_trace t "client.open" (fun trace ->
        match fail_err (request ?trace t (Wire.Open database)) with
        | Wire.Opened id ->
          t.database <- Some database;
          id
        | _ -> raise (Wire.Protocol_error "unexpected response to Open"))
  in
  let rec go n =
    match attempt () with
    | id -> id
    | exception e when connection_failure e && n > 0 ->
      if (try reconnect t; true with _ -> false) then go (n - 1) else raise e
  in
  go (max 1 t.retries)

let execute (t : t) (text : string) : Session.result =
  let kind = statement_kind text in
  let run () =
    (* one statement = one trace; the fetches of its result ride the
       same context so server-side fetch spans join the tree *)
    with_trace t "client.request" (fun trace ->
        match fail_err (request ?trace t (Wire.Execute text)) with
        | Wire.Updated n -> Session.Updated n
        | Wire.Message m -> Session.Message m
        | Wire.Result_ready total -> Session.Items (fetch_all ?trace t total)
        | _ -> raise (Wire.Protocol_error "unexpected response to Execute"))
  in
  let track r =
    (match kind with
     | `Begin -> t.in_txn <- true
     | `Commit | `Rollback -> t.in_txn <- false
     | `Read | `Write -> ());
    r
  in
  (* [budget] bounds the failover hops of one statement, so a retry
     that itself dies (or lands on a second fenced node) still ends in
     a clean refusal instead of leaking a raw connection error *)
  let rec attempt budget =
    match run () with
    | r -> track r
    | exception (Remote_error ("SE-FENCED", _) as e) when not t.in_txn ->
      (* A fenced node refuses before doing anything, so unlike a lost
         connection the refusal is definitive: failing over to the next
         endpoint and re-running is safe even for writes. *)
      if budget > 0 && (try reconnect t; true with _ -> false) then
        attempt (budget - 1)
      else raise e
    | exception e when connection_failure e ->
      let was_in_txn = t.in_txn in
      (* [BEGIN] is safe to replay (no transaction existed yet anywhere);
         a read outside a transaction is idempotent; anything else may
         have half-happened on the dead server *)
      let retryable =
        (not was_in_txn) && match kind with `Read | `Begin -> true | _ -> false
      in
      let reconnected =
        budget > 0 && (try reconnect t; true with _ -> false)
      in
      if retryable && reconnected then attempt (budget - 1)
      else if retryable then raise e
      else
        raise
          (Remote_error
             ( "SE-FAILOVER",
               "connection to the server was lost; the transaction (if any) is \
                gone and the statement may not have been applied — re-run \
                against the surviving endpoint" ))
  in
  attempt 2

let execute_string t text = Session.result_to_string (execute t text)

let close (t : t) =
  if not t.closed then begin
    t.closed <- true;
    (try
       with_trace t "client.close" (fun trace ->
           match request ?trace t Wire.Close with
           | Wire.Bye | _ -> ())
     with _ -> ());
    close_fd t.fd
  end
