(* Client side of the wire protocol: a blocking connection that the
   benches, tests and the CLI's --connect mode drive like a local
   session.  Query results arrive in fetch-batches and are reassembled
   here. *)

open Sedna_db

exception Remote_error of string * string

let () =
  Printexc.register_printer (function
    | Remote_error (code, msg) -> Some (Printf.sprintf "%s: %s" code msg)
    | _ -> None)

type t = { fd : Unix.file_descr; fetch_chunk : int; mutable closed : bool }

let connect ?(host = "127.0.0.1") ?(fetch_chunk = 64 * 1024) ~port () : t =
  (* a server that closed the connection must surface as EPIPE on our
     next write, not kill the client process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  { fd; fetch_chunk; closed = false }

(* one request/response round trip; servers only ever push a frame in
   response to one of ours, so this is the whole protocol *)
let request (t : t) (req : Wire.request) : Wire.response =
  Wire.write_request t.fd req;
  Wire.read_response t.fd

let fail_err = function
  | Wire.Err { code; msg } -> raise (Remote_error (code, msg))
  | r -> r

let open_db (t : t) (database : string) : int =
  match fail_err (request t (Wire.Open database)) with
  | Wire.Opened id -> id
  | _ -> raise (Wire.Protocol_error "unexpected response to Open")

let fetch_all (t : t) (total : int) : string =
  let b = Buffer.create total in
  let rec go () =
    match fail_err (request t (Wire.Fetch t.fetch_chunk)) with
    | Wire.Chunk { last; data } ->
      Buffer.add_string b data;
      if not last then go ()
    | _ -> raise (Wire.Protocol_error "unexpected response to Fetch")
  in
  go ();
  Buffer.contents b

let execute (t : t) (text : string) : Session.result =
  match fail_err (request t (Wire.Execute text)) with
  | Wire.Updated n -> Session.Updated n
  | Wire.Message m -> Session.Message m
  | Wire.Result_ready total -> Session.Items (fetch_all t total)
  | _ -> raise (Wire.Protocol_error "unexpected response to Execute")

let execute_string t text = Session.result_to_string (execute t text)

let close (t : t) =
  if not t.closed then begin
    t.closed <- true;
    (try
       match request t Wire.Close with
       | Wire.Bye | _ -> ()
     with _ -> ());
    try Unix.close t.fd with _ -> ()
  end
