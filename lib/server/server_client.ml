(* Client side of the wire protocol: a blocking connection that the
   benches, tests and the CLI's --connect mode drive like a local
   session.  Query results arrive in fetch-batches and are reassembled
   here.

   The client knows about failover: it holds a list of endpoints
   (primary first, standbys after) and, when the connection drops, it
   reconnects to the next live endpoint with bounded exponential
   backoff and re-opens the session.  Idempotent work — a statement
   outside any explicit transaction that is not an update — is retried
   transparently; everything else surfaces SE-FAILOVER, because the
   client cannot know whether the lost statement took effect. *)

open Sedna_db
module Span = Sedna_util.Span
module Metrics = Sedna_util.Metrics

exception Remote_error of string * string

let () =
  Printexc.register_printer (function
    | Remote_error (code, msg) -> Some (Printf.sprintf "%s: %s" code msg)
    | _ -> None)

type t = {
  mutable fd : Unix.file_descr;
  fetch_chunk : int;
  mutable closed : bool;
  endpoints : (string * int) array; (* failover order; element [cur] is live *)
  mutable cur : int;
  retries : int;
  backoff_s : float;
  mutable database : string option; (* re-opened after a failover *)
  mutable in_txn : bool; (* inside an explicit BEGIN ... COMMIT *)
  mutable last_trace : string option; (* trace id of the last traced request *)
}

let try_connect host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    fd
  with e ->
    (try Unix.close fd with _ -> ());
    raise e

(* Connection attempts that mean "not up (yet / any more)" — worth
   retrying against the same or another endpoint.  Anything else
   (EACCES, bad address...) propagates immediately. *)
let transient_connect_error = function
  | Unix.Unix_error
      ( (Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ECONNABORTED
        | Unix.ENETUNREACH | Unix.EHOSTUNREACH | Unix.ETIMEDOUT),
        _,
        _ ) ->
    true
  | _ -> false

(* Walk the endpoint list starting at [start]; between full rounds,
   sleep with exponential backoff.  [retries] counts extra rounds after
   the first. *)
let connect_any ~endpoints ~start ~retries ~backoff_s =
  let n = Array.length endpoints in
  let rec round attempt last_exn =
    let rec ep i last_exn =
      if i >= n then
        if attempt >= retries then
          raise
            (Option.value last_exn
               ~default:(Unix.Unix_error (Unix.ECONNREFUSED, "connect", "")))
        else begin
          Unix.sleepf (backoff_s *. float_of_int (1 lsl min attempt 8));
          round (attempt + 1) last_exn
        end
      else begin
        let host, port = endpoints.((start + i) mod n) in
        match try_connect host port with
        | fd -> (fd, (start + i) mod n)
        | exception e when transient_connect_error e -> ep (i + 1) (Some e)
      end
    in
    ep 0 last_exn
  in
  round 0 None

let connect ?(host = "127.0.0.1") ?(fetch_chunk = 64 * 1024) ?endpoints
    ?(retries = 0) ?(backoff_s = 0.05) ~port () : t =
  (* a server that closed the connection must surface as EPIPE on our
     next write, not kill the client process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let endpoints =
    Array.of_list
      (match endpoints with Some (_ :: _ as l) -> l | _ -> [ (host, port) ])
  in
  let fd, cur = connect_any ~endpoints ~start:0 ~retries ~backoff_s in
  {
    fd;
    fetch_chunk;
    closed = false;
    endpoints;
    cur;
    retries;
    backoff_s;
    database = None;
    in_txn = false;
    last_trace = None;
  }

let endpoint t = t.endpoints.(t.cur)
let in_transaction t = t.in_txn
let last_trace_id t = t.last_trace

(* one request/response round trip; servers only ever push a frame in
   response to one of ours, so this is the whole protocol *)
let request ?trace (t : t) (req : Wire.request) : Wire.response =
  Wire.write_request ?trace t.fd req;
  Wire.read_response t.fd

let fail_err = function
  | Wire.Err { code; msg } -> raise (Remote_error (code, msg))
  | r -> r

(* Root a fresh trace around one client-visible operation.  [f] gets
   the wire context header to send; the root span is finished and the
   trace published (client-side spans only — the server publishes its
   own half into the same trace id) when [f] returns. *)
let with_trace (t : t) name f =
  match Span.make () with
  | None -> f None
  | Some c ->
    let sp = Span.start c name in
    t.last_trace <- Some (Span.trace_id c);
    Fun.protect
      ~finally:(fun () ->
        Span.finish c sp;
        Span.publish c)
      (fun () ->
        f (Some (Span.wire_of ~trace:(Span.trace_id c) ~parent:sp.Span.sp_id)))

let open_db (t : t) (database : string) : int =
  with_trace t "client.open" (fun trace ->
      match fail_err (request ?trace t (Wire.Open database)) with
      | Wire.Opened id ->
        t.database <- Some database;
        id
      | _ -> raise (Wire.Protocol_error "unexpected response to Open"))

let fetch_all ?trace (t : t) (total : int) : string =
  let b = Buffer.create total in
  let rec go () =
    match fail_err (request ?trace t (Wire.Fetch t.fetch_chunk)) with
    | Wire.Chunk { last; data } ->
      Buffer.add_string b data;
      if not last then go ()
    | _ -> raise (Wire.Protocol_error "unexpected response to Fetch")
  in
  go ();
  Buffer.contents b

(* ---- failover -------------------------------------------------------- *)

(* The connection itself died (as opposed to the server answering with
   an error frame). *)
let connection_failure = function
  | End_of_file -> true
  | Unix.Unix_error
      ((Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNREFUSED | Unix.ECONNABORTED), _, _)
    ->
    true
  | _ -> false

let statement_kind text =
  let u = String.uppercase_ascii (String.trim text) in
  if String.starts_with ~prefix:"BEGIN" u then `Begin
  else if u = "COMMIT" then `Commit
  else if u = "ROLLBACK" then `Rollback
  else if
    List.exists
      (fun p -> String.starts_with ~prefix:p u)
      [ "UPDATE"; "CREATE"; "DROP"; "LOAD"; "PROMOTE" ]
  then `Write
  else `Read

(* Reconnect to the next endpoint in the list and re-open the session.
   Whatever transaction was open on the old connection is gone. *)
let reconnect t =
  (try Unix.close t.fd with _ -> ());
  t.in_txn <- false;
  let n = Array.length t.endpoints in
  let fd, cur =
    connect_any ~endpoints:t.endpoints ~start:((t.cur + 1) mod n)
      ~retries:(max 1 t.retries) ~backoff_s:t.backoff_s
  in
  t.fd <- fd;
  t.cur <- cur;
  match t.database with
  | Some db -> (
    match fail_err (request t (Wire.Open db)) with
    | Wire.Opened _ -> ()
    | _ -> raise (Wire.Protocol_error "unexpected response to Open"))
  | None -> ()

let execute (t : t) (text : string) : Session.result =
  let kind = statement_kind text in
  let run () =
    (* one statement = one trace; the fetches of its result ride the
       same context so server-side fetch spans join the tree *)
    with_trace t "client.request" (fun trace ->
        match fail_err (request ?trace t (Wire.Execute text)) with
        | Wire.Updated n -> Session.Updated n
        | Wire.Message m -> Session.Message m
        | Wire.Result_ready total -> Session.Items (fetch_all ?trace t total)
        | _ -> raise (Wire.Protocol_error "unexpected response to Execute"))
  in
  let track r =
    (match kind with
     | `Begin -> t.in_txn <- true
     | `Commit | `Rollback -> t.in_txn <- false
     | `Read | `Write -> ());
    r
  in
  match run () with
  | r -> track r
  | exception e when connection_failure e ->
    let was_in_txn = t.in_txn in
    (* [BEGIN] is safe to replay (no transaction existed yet anywhere);
       a read outside a transaction is idempotent; anything else may
       have half-happened on the dead server *)
    let retryable =
      (not was_in_txn) && match kind with `Read | `Begin -> true | _ -> false
    in
    let reconnected = try reconnect t; true with _ -> false in
    if retryable && reconnected then track (run ())
    else if retryable then raise e
    else
      raise
        (Remote_error
           ( "SE-FAILOVER",
             "connection to the server was lost; the transaction (if any) is \
              gone and the statement may not have been applied — re-run \
              against the surviving endpoint" ))

let execute_string t text = Session.result_to_string (execute t text)

let close (t : t) =
  if not t.closed then begin
    t.closed <- true;
    (try
       with_trace t "client.close" (fun trace ->
           match request ?trace t Wire.Close with
           | Wire.Bye | _ -> ())
     with _ -> ());
    try Unix.close t.fd with _ -> ()
  end
