(* A catalogue application on the paper's library schema at a realistic
   size: bulk load, a value index, reporting queries and maintenance
   updates — the workload the schema-driven clustering is built for.

     dune exec examples/library_catalog.exe *)

open Sedna_core

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "sedna-catalog" in
  if Sys.file_exists dir then ignore (Sys.command ("rm -rf " ^ Filename.quote dir));
  let db = Database.create dir in
  let session = Sedna_db.Session.connect db in
  let run ?(show = true) q =
    let r = Sedna_db.Session.execute_string session q in
    if show then Printf.printf "sedna> %s\n%s\n\n" q r
  in

  (* bulk load 500 books through the loader API (faster than LOAD for
     generated event streams) *)
  let events = Sedna_workloads.Generators.library ~books:500 () in
  Database.with_txn db (fun txn st ->
      Database.lock_exn db txn ~doc:"catalog" ~mode:Lock_mgr.Exclusive;
      let _, n = Loader.load_events st ~doc_name:"catalog" events in
      Printf.printf "loaded %d nodes\n\n" n);

  (* the descriptive schema was built incrementally during the load *)
  let cat = Database.catalog db in
  let doc = Catalog.get_document cat "catalog" in
  let root = Catalog.snode_by_id cat doc.Catalog.schema_root_id in
  Printf.printf "descriptive schema has %d nodes for %d XML nodes\n\n"
    (Catalog.schema_size root)
    (List.fold_left
       (fun acc s -> acc + s.Catalog.node_count)
       root.Catalog.node_count
       (Catalog.schema_descendants root));

  (* a value index over titles *)
  run {|CREATE INDEX "title-idx" ON doc("catalog")/library/book BY title AS xs:string|};

  (* reporting *)
  run {|count(doc("catalog")/library/book)|};
  run {|avg(doc("catalog")//price)|};
  run
    {|for $b in doc("catalog")/library/book
      where $b/price > 95
      order by string($b/title)
      return <expensive title="{string($b/title)}" price="{string($b/price)}"/>|};
  run
    {|let $years := distinct-values(doc("catalog")/library/book/@year)
      return count($years)|};
  run
    {|for $p in doc("catalog")/library/paper
      return string($p/title)|};

  (* maintenance: price increase on old books, catalogue cleanup *)
  run {|UPDATE replace $p in doc("catalog")//book[@year < 1980]/price
        with <price>{xs:integer(string($p)) + 5}</price>|};
  run {|UPDATE delete doc("catalog")//book[price < 15]|};
  run {|count(doc("catalog")/library/book)|};

  (* the index keeps working after updates *)
  run {|index-scan("title-idx", string(doc("catalog")/library/book[1]/title))|};

  Database.close db;
  print_endline "library_catalog: done"
