(* Transactions, snapshots and recovery (paper §6) on a small "bank"
   document: a read-only transaction keeps seeing its snapshot while an
   updater commits; an aborted transaction leaves no trace; a crash
   loses nothing committed; hot backup restores to a fresh directory.

     dune exec examples/versioned_bank.exe *)

open Sedna_core

let accounts = {|<bank><account id="a1"><owner>alice</owner><balance>100</balance></account><account id="a2"><owner>bob</owner><balance>50</balance></account></bank>|}

let balance_query = {|string(doc("bank")//account[@id="a1"]/balance)|}

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "sedna-bank" in
  let backup = dir ^ "-backup" in
  let restored = dir ^ "-restored" in
  List.iter
    (fun d ->
      if Sys.file_exists d then ignore (Sys.command ("rm -rf " ^ Filename.quote d)))
    [ dir; backup; restored ];

  let db = Database.create dir in
  let session = Sedna_db.Session.connect db in
  let exec q = Sedna_db.Session.execute_string session q in
  ignore (exec (Printf.sprintf "LOAD \"%s\" \"bank\""
                  (let f = Filename.temp_file "bank" ".xml" in
                   let oc = open_out f in
                   output_string oc accounts;
                   close_out oc;
                   f)));
  Printf.printf "initial balance of a1: %s\n" (exec balance_query);

  (* --- snapshot isolation: a reader does not see a later commit ---- *)
  let reader = Database.begin_txn ~read_only:true db in
  let read_balance () =
    Database.run db reader (fun () ->
        let st = Database.txn_store db reader in
        let ctx = Sedna_engine.Executor.initial_ctx st in
        let q, e = Sedna_xquery.Xq_parser.parse_query balance_query in
        ignore q;
        Sedna_engine.Xdm.serialize st
          (Sedna_engine.Executor.eval ctx (Sedna_xquery.Rewriter.optimize e)))
  in
  Printf.printf "reader snapshot sees: %s\n" (read_balance ());

  (* updater commits a withdrawal while the reader is open *)
  ignore
    (exec
       {|UPDATE replace $b in doc("bank")//account[@id="a1"]/balance
         with <balance>80</balance>|});
  Printf.printf "after commit, new sessions see: %s\n" (exec balance_query);
  Printf.printf "reader still sees its snapshot: %s\n" (read_balance ());
  Database.commit db reader;

  (* --- abort: an uncommitted update leaves no trace ------------------ *)
  Sedna_db.Session.begin_txn session;
  ignore
    (exec
       {|UPDATE replace $b in doc("bank")//account[@id="a1"]/balance
         with <balance>0</balance>|});
  Sedna_db.Session.rollback session;
  Printf.printf "after rollback: %s\n" (exec balance_query);

  (* --- hot backup while running -------------------------------------- *)
  Backup.full db ~dest:backup;

  (* --- crash and recover --------------------------------------------- *)
  ignore
    (exec
       {|UPDATE replace $b in doc("bank")//account[@id="a2"]/balance
         with <balance>999</balance>|});
  Database.crash db;
  let db2 = Database.open_existing dir in
  let s2 = Sedna_db.Session.connect db2 in
  Printf.printf "after crash+recovery, a2 = %s (expected 999)\n"
    (Sedna_db.Session.execute_string s2 {|string(doc("bank")//account[@id="a2"]/balance)|});
  Database.close db2;

  (* --- restore the hot backup into a fresh directory ------------------ *)
  let db3 = Backup.restore ~src:backup ~dest:restored () in
  let s3 = Sedna_db.Session.connect db3 in
  Printf.printf "restored backup, a1 = %s (expected 80), a2 = %s (expected 50)\n"
    (Sedna_db.Session.execute_string s3 balance_query)
    (Sedna_db.Session.execute_string s3
       {|string(doc("bank")//account[@id="a2"]/balance)|});
  Database.close db3;
  print_endline "versioned_bank: done"
