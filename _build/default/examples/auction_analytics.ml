(* Analytics over an XMark-style auction document: value joins across
   subtrees through FLWOR, aggregation, and the descendant-axis
   queries that the schema-driven storage accelerates.

     dune exec examples/auction_analytics.exe *)

open Sedna_core

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "sedna-auction" in
  if Sys.file_exists dir then ignore (Sys.command ("rm -rf " ^ Filename.quote dir));
  let db = Database.create dir in
  let session = Sedna_db.Session.connect db in
  let run q =
    Printf.printf "sedna> %s\n%s\n\n" q (Sedna_db.Session.execute_string session q)
  in

  let events =
    Sedna_workloads.Generators.auction ~items:120 ~people:80 ~auctions:100 ()
  in
  Database.with_txn db (fun txn st ->
      Database.lock_exn db txn ~doc:"auction" ~mode:Lock_mgr.Exclusive;
      let _, n = Loader.load_events st ~doc_name:"auction" events in
      Printf.printf "loaded %d nodes\n\n" n);

  (* Q1 (XMark flavour): how many items are listed *)
  run {|count(doc("auction")/site/regions/namerica/item)|};

  (* Q2: auctions with many bidders, ordered by activity *)
  run
    {|for $a in doc("auction")/site/open_auctions/open_auction
      let $n := count($a/bidder)
      where $n >= 5
      order by $n descending
      return <busy auction="{string($a/@id)}" bidders="{$n}"/>|};

  (* Q3: join auctions to the items they sell *)
  run
    {|for $a in doc("auction")/site/open_auctions/open_auction[current > 100]
      for $i in doc("auction")//item[@id = string($a/itemref)]
      return <sale item="{string($i/name)}" current="{string($a/current)}"/>|};

  (* Q4: people with an address, grouped output *)
  run
    {|<directory>{
        for $p in doc("auction")/site/people/person[address]
        return <entry name="{string($p/name)}" city="{string($p/address/city)}"/>
      }</directory>|};

  (* Q5: the '//' axis over a deep document — the rewriter turns this
     into a schema-resolved descendant scan *)
  run {|count(doc("auction")//listitem)|};
  run {|sum(doc("auction")//increase)|};

  (* Q6: quantified search *)
  run
    {|some $a in doc("auction")/site/open_auctions/open_auction
      satisfies count($a/bidder) >= 6|};

  (* Q7: positional access *)
  run {|string(doc("auction")/site/people/person[10]/name)|};

  Database.close db;
  print_endline "auction_analytics: done"
