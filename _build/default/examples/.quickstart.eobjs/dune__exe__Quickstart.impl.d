examples/quickstart.ml: Database Filename Printf Sedna_core Sedna_db Sys
