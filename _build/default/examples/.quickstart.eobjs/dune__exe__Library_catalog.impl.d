examples/library_catalog.ml: Catalog Database Filename List Loader Lock_mgr Printf Sedna_core Sedna_db Sedna_workloads Sys
