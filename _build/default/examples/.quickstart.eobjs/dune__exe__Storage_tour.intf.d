examples/storage_tour.mli:
