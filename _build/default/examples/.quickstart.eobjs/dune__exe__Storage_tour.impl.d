examples/storage_tour.ml: Catalog Database Filename Integrity List Loader Lock_mgr Printf Sedna_core Sedna_db Sedna_util Sedna_workloads Sedna_xquery String Sys
