examples/versioned_bank.ml: Backup Database Filename List Printf Sedna_core Sedna_db Sedna_engine Sedna_xquery Sys
