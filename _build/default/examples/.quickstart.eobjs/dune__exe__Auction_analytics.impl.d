examples/auction_analytics.ml: Database Filename Loader Lock_mgr Printf Sedna_core Sedna_db Sedna_workloads Sys
