examples/quickstart.mli:
