examples/versioned_bank.mli:
