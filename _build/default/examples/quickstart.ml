(* Quickstart: create a database, load the paper's Figure-2 document,
   query it, update it, and read it back.

     dune exec examples/quickstart.exe *)

open Sedna_core

let figure2 =
  {|<library>
  <book><title>Foundations of Databases</title>
        <author>Abiteboul</author><author>Hull</author><author>Vianu</author></book>
  <book><title>An Introduction to Database Systems</title><author>Date</author>
        <issue><publisher>Addison-Wesley</publisher><year>2004</year></issue></book>
  <paper><title>A Relational Model for Large Shared Data Banks</title>
         <author>Codd</author></paper>
</library>|}

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "sedna-quickstart" in
  if Sys.file_exists dir then ignore (Sys.command ("rm -rf " ^ Filename.quote dir));

  (* 1. create a database and connect a session *)
  let db = Database.create dir in
  let session = Sedna_db.Session.connect db in
  let run q =
    Printf.printf "sedna> %s\n%s\n\n" q (Sedna_db.Session.execute_string session q)
  in

  (* 2. load a document (DDL statement) *)
  Printf.printf "%s\n\n"
    (Sedna_db.Session.execute_string session
       (Printf.sprintf "LOAD \"%s\" \"library\""
          (let f = Filename.temp_file "fig2" ".xml" in
           let oc = open_out f in
           output_string oc figure2;
           close_out oc;
           f)));

  (* 3. query it: XPath, FLWOR, aggregation, constructors *)
  run {|doc("library")/library/book/title|};
  run {|count(doc("library")//author)|};
  run {|for $b in doc("library")/library/book
        where count($b/author) > 1
        return string($b/title)|};
  run {|<authors>{for $a in doc("library")//author
                  order by string($a)
                  return <name>{string($a)}</name>}</authors>|};

  (* 4. update it: XUpdate statements *)
  run {|UPDATE insert <book><title>Sedna Internals</title><author>ISPRAS</author></book>
        into doc("library")/library|};
  run {|doc("library")/library/book[last()]|};
  run {|UPDATE delete doc("library")//paper|};
  run {|count(doc("library")/library/*)|};

  (* 5. everything is transactional: an explicit transaction *)
  Sedna_db.Session.begin_txn session;
  ignore
    (Sedna_db.Session.execute session
       {|UPDATE insert <author>Added In Txn</author> into doc("library")/library/book[1]|});
  Sedna_db.Session.rollback session;
  run {|count(doc("library")/library/book[1]/author)|};

  Database.close db;
  print_endline "quickstart: done"
