(* A tour of the paper's internals through the public API: the
   descriptive schema, the rewriter's plans, the storage counters, and
   the consistency checker.

     dune exec examples/storage_tour.exe *)

open Sedna_core

let () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "sedna-tour" in
  if Sys.file_exists dir then ignore (Sys.command ("rm -rf " ^ Filename.quote dir));
  let db = Database.create dir in
  let session = Sedna_db.Session.connect db in
  let exec q = Sedna_db.Session.execute_string session q in

  let events = Sedna_workloads.Generators.library ~books:200 () in
  Database.with_txn db (fun txn st ->
      Database.lock_exn db txn ~doc:"lib" ~mode:Lock_mgr.Exclusive;
      ignore (Loader.load_events st ~doc_name:"lib" events));

  (* 1. the descriptive schema, queryable as XML (paper §4.1) *)
  print_endline "== descriptive schema (sedna:schema) ==";
  print_endline (exec {|schema("lib")|});

  (* 2. what the optimizing rewriter does to a query (paper §5.1) *)
  print_endline "\n== \\explain of a // query ==";
  print_endline
    (Sedna_xquery.Xq_pp.explain {|for $b in doc("lib")//book where $b/price > 90 return $b/title|});

  (* 3. the storage counters behind a query (paper §4.2) *)
  print_endline "== counters for one descendant query ==";
  Sedna_util.Counters.reset_all ();
  ignore (exec {|count(doc("lib")//author)|});
  List.iter
    (fun name ->
      Printf.printf "  %-18s %d\n" name (Sedna_util.Counters.get name))
    [ Sedna_util.Counters.deref; Sedna_util.Counters.vas_fast_hit;
      Sedna_util.Counters.buffer_fault; Sedna_util.Counters.block_touch ];

  (* 4. per-schema-node block statistics *)
  print_endline "\n== block chains per schema node ==";
  let cat = Database.catalog db in
  let doc = Catalog.get_document cat "lib" in
  let root = Catalog.snode_by_id cat doc.Catalog.schema_root_id in
  List.iter
    (fun (s : Catalog.snode) ->
      Printf.printf "  %-28s %6d nodes in %3d block(s)\n"
        (String.concat "/" (Catalog.schema_path cat s))
        s.Catalog.node_count s.Catalog.block_count)
    (Catalog.schema_descendants root);

  (* 5. structural consistency after some churn *)
  ignore (exec {|UPDATE delete doc("lib")//book[price < 20]|});
  ignore (exec {|UPDATE insert <book><title>fresh</title><price>42</price></book>
                 into doc("lib")/library|});
  print_endline "\n== integrity check after updates ==";
  (match Integrity.check_all (Database.store db) with
   | [] -> print_endline "  all documents structurally consistent"
   | problems ->
     List.iter
       (fun (d, errs) ->
         Printf.printf "  %s: %d problem(s)\n" d (List.length errs))
       problems);

  Database.close db;
  print_endline "\nstorage_tour: done"
