(* Numbering scheme tests (paper §4.1.1): unit cases plus the property
   suite that pins down the no-relabeling guarantee. *)

open Sedna_nid

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* a generator of random tree shapes expressed as label-creation
   scripts: each action either appends a child to a random known node
   or inserts between two adjacent siblings *)

let test_root_children () =
  let a = Nid.child_between ~parent:Nid.root ~left:None ~right:None in
  let b = Nid.child_between ~parent:Nid.root ~left:(Some a) ~right:None in
  let c = Nid.child_between ~parent:Nid.root ~left:(Some a) ~right:(Some b) in
  check "a < c" true (Nid.compare a c < 0);
  check "c < b" true (Nid.compare c b < 0);
  check "root anc a" true (Nid.is_ancestor ~ancestor:Nid.root a);
  check "a not anc b" false (Nid.is_ancestor ~ancestor:a b);
  checki "depth" 1 (Nid.depth a)

let test_nesting () =
  let a = Nid.child_between ~parent:Nid.root ~left:None ~right:None in
  let b = Nid.child_between ~parent:a ~left:None ~right:None in
  let c = Nid.child_between ~parent:b ~left:None ~right:None in
  check "a anc c" true (Nid.is_ancestor ~ancestor:a c);
  check "b anc c" true (Nid.is_ancestor ~ancestor:b c);
  check "c desc-or-self c" true (Nid.is_descendant_or_self ~ancestor:c c);
  check "c not anc a" false (Nid.is_ancestor ~ancestor:c a);
  check "doc order a < b < c" true (Nid.compare a b < 0 && Nid.compare b c < 0)

let test_sibling_subtree_order () =
  (* all descendants of an earlier sibling precede the later sibling *)
  let a = Nid.child_between ~parent:Nid.root ~left:None ~right:None in
  let b = Nid.child_between ~parent:Nid.root ~left:(Some a) ~right:None in
  let deep = ref a in
  for _ = 1 to 50 do
    deep := Nid.child_between ~parent:!deep ~left:None ~right:None
  done;
  check "deep desc of a < b" true (Nid.compare !deep b < 0);
  check "b not ancestor of deep" false (Nid.is_ancestor ~ancestor:b !deep)

let test_ordinal_matches_between () =
  let kids = List.init 300 (fun i -> Nid.ordinal_child ~parent:Nid.root i) in
  let rec adjacent = function
    | a :: (b :: _ as rest) ->
      check "ordinal order" true (Nid.compare a b < 0);
      (* between-insertion works in every gap *)
      let m = Nid.child_between ~parent:Nid.root ~left:(Some a) ~right:(Some b) in
      check "between in gap" true (Nid.compare a m < 0 && Nid.compare m b < 0);
      adjacent rest
    | _ -> ()
  in
  adjacent kids

let test_repeated_middle_insert () =
  (* the paper's claim: inserting never relabels — here: between
     always succeeds, thousands of times into the same shrinking gap *)
  let a = Nid.ordinal_child ~parent:Nid.root 0 in
  let b = Nid.ordinal_child ~parent:Nid.root 1 in
  let lo = ref a and hi = ref b in
  for i = 0 to 3000 do
    let m = Nid.child_between ~parent:Nid.root ~left:(Some !lo) ~right:(Some !hi) in
    check "strictly between" true (Nid.compare !lo m < 0 && Nid.compare m !hi < 0);
    if i mod 2 = 0 then lo := m else hi := m
  done

let test_pair_formulation () =
  (* the (id, d) predicates of the paper hold literally *)
  let a = Nid.child_between ~parent:Nid.root ~left:None ~right:None in
  let b = Nid.child_between ~parent:a ~left:None ~right:None in
  let c = Nid.child_between ~parent:a ~left:(Some b) ~right:None in
  check "pair anc" true (Nid.pair_is_ancestor (Nid.pair a) (Nid.pair b));
  check "pair anc 2" true (Nid.pair_is_ancestor (Nid.pair a) (Nid.pair c));
  check "pair sibling not anc" false (Nid.pair_is_ancestor (Nid.pair b) (Nid.pair c));
  check "pair reverse not anc" false (Nid.pair_is_ancestor (Nid.pair b) (Nid.pair a))

let test_of_raw_validation () =
  let a = Nid.child_between ~parent:Nid.root ~left:None ~right:None in
  let same = Nid.of_raw (Nid.to_raw a) in
  check "round trip" true (Nid.equal a same);
  (* unterminated segment *)
  Alcotest.check_raises "garbage rejected"
    (Invalid_argument "Nid.of_raw: malformed label") (fun () ->
      ignore (Nid.of_raw "\x02"));
  (* a segment whose digits end with the minimal digit is malformed *)
  Alcotest.check_raises "trailing-min rejected"
    (Invalid_argument "Nid.of_raw: malformed label") (fun () ->
      ignore (Nid.of_raw "\x02\x01"));
  (* the delimiter byte can never appear in a label *)
  Alcotest.check_raises "delimiter byte rejected"
    (Invalid_argument "Nid.of_raw: malformed label") (fun () ->
      ignore (Nid.of_raw "\xff"))

let test_misuse_rejected () =
  let a = Nid.child_between ~parent:Nid.root ~left:None ~right:None in
  let b = Nid.child_between ~parent:a ~left:None ~right:None in
  (* b is not a child of root: passing it as a sibling must fail *)
  Alcotest.check_raises "wrong parent"
    (Invalid_argument "Nid.child_between: sibling is not a direct child")
    (fun () ->
      ignore (Nid.child_between ~parent:Nid.root ~left:(Some b) ~right:None))

(* ---- properties ------------------------------------------------------- *)

(* random tree scripts: maintain a list of (label, children labels) *)
let tree_gen =
  QCheck.Gen.(
    let action = int_range 0 2 in
    list_size (int_range 1 120) (pair action (pair small_nat small_nat)))

let arb_tree = QCheck.make tree_gen

let run_script script =
  (* nodes.(i) = (label, parent label); root at index 0 *)
  let nodes = ref [| (Nid.root, None) |] in
  let add lbl parent =
    nodes := Array.append !nodes [| (lbl, Some parent) |]
  in
  List.iter
    (fun (action, (i, j)) ->
      let n = Array.length !nodes in
      let parent_idx = i mod n in
      let parent, _ = !nodes.(parent_idx) in
      let children =
        Array.to_list !nodes
        |> List.filter_map (fun (l, p) ->
               match p with
               | Some pl when Nid.equal pl parent -> Some l
               | _ -> None)
        |> List.sort Nid.compare
      in
      match action with
      | 0 ->
        (* append last *)
        let left =
          match List.rev children with [] -> None | l :: _ -> Some l
        in
        add (Nid.child_between ~parent ~left ~right:None) parent
      | 1 ->
        (* insert first *)
        let right = match children with [] -> None | r :: _ -> Some r in
        add (Nid.child_between ~parent ~left:None ~right) parent
      | _ -> (
        (* insert in the middle *)
        match children with
        | a :: b :: _ when j mod 2 = 0 ->
          add (Nid.child_between ~parent ~left:(Some a) ~right:(Some b)) parent
        | _ ->
          let left =
            match List.rev children with [] -> None | l :: _ -> Some l
          in
          add (Nid.child_between ~parent ~left ~right:None) parent))
    script;
  !nodes

let prop_labels_unique script =
  let nodes = run_script script in
  let labels = Array.to_list nodes |> List.map fst |> List.map Nid.to_raw in
  List.length (List.sort_uniq compare labels) = List.length labels

let prop_ancestor_iff_path script =
  let nodes = run_script script in
  (* reconstruct ancestry from parent pointers and compare with labels *)
  let arr = nodes in
  let parent_of l =
    let found = ref None in
    Array.iter (fun (l', p) -> if Nid.equal l' l then found := p) arr;
    !found
  in
  let rec is_anc_path a l =
    match parent_of l with
    | None -> false
    | Some p -> Nid.equal p a || is_anc_path a p
  in
  Array.for_all
    (fun (a, _) ->
      Array.for_all
        (fun (b, _) ->
          Nid.equal a b
          || Bool.equal (Nid.is_ancestor ~ancestor:a b) (is_anc_path a b))
        arr)
    arr

let prop_well_formed script =
  let nodes = run_script script in
  Array.for_all
    (fun (l, _) ->
      match Nid.of_raw (Nid.to_raw l) with
      | _ -> true
      | exception Invalid_argument _ -> false)
    nodes

let suite =
  [
    Alcotest.test_case "root children" `Quick test_root_children;
    Alcotest.test_case "nesting" `Quick test_nesting;
    Alcotest.test_case "sibling subtree order" `Quick test_sibling_subtree_order;
    Alcotest.test_case "ordinal vs between" `Quick test_ordinal_matches_between;
    Alcotest.test_case "repeated middle insert" `Quick test_repeated_middle_insert;
    Alcotest.test_case "paper pair formulation" `Quick test_pair_formulation;
    Alcotest.test_case "of_raw validation" `Quick test_of_raw_validation;
    Alcotest.test_case "misuse rejected" `Quick test_misuse_rejected;
    Test_util.qcheck_case "labels unique" arb_tree prop_labels_unique;
    Test_util.qcheck_case ~count:60 "ancestor iff tree path" arb_tree
      prop_ancestor_iff_path;
    Test_util.qcheck_case "labels well-formed" arb_tree prop_well_formed;
  ]
