(* Shared fixtures: throw-away databases, loading helpers, a query
   runner, and a storage invariant checker used by the structural
   tests. *)

open Sedna_core

let counter = ref 0

let fresh_dir () =
  incr counter;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sedna-test-%d-%d" (Unix.getpid ()) !counter)
  in
  if Sys.file_exists dir then ignore (Sys.command ("rm -rf " ^ Filename.quote dir));
  dir

let with_db ?buffer_frames f =
  let dir = fresh_dir () in
  let db = Database.create ?buffer_frames dir in
  Fun.protect
    ~finally:(fun () -> try Database.close db with _ -> ())
    (fun () -> f db)

(* load an XML string as [name] inside its own transaction *)
let load db name xml =
  Database.with_txn db (fun txn st ->
      Database.lock_exn db txn ~doc:name ~mode:Lock_mgr.Exclusive;
      Loader.load_string st ~doc_name:name xml)

let load_events db name events =
  Database.with_txn db (fun txn st ->
      Database.lock_exn db txn ~doc:name ~mode:Lock_mgr.Exclusive;
      Loader.load_events st ~doc_name:name events)

(* run one statement in auto-commit mode *)
let exec db q =
  let s = Sedna_db.Session.connect db in
  Sedna_db.Session.execute_string s q

(* a database pre-loaded with one document; returns a query runner *)
let with_doc xml f =
  with_db (fun db ->
      ignore (load db "d" xml);
      f db (fun q -> exec db q))

let doc_desc (st : Store.t) name =
  let doc = Catalog.get_document st.Store.cat name in
  Indirection.get st.Store.bm doc.Catalog.doc_indir

(* ---- storage invariant checker ------------------------------------- *)

(* the canonical checker lives in the library: Sedna_core.Integrity *)
let check_invariants (st : Store.t) name =
  match Integrity.check_document st name with
  | [] -> ()
  | es -> Alcotest.failf "invariant violations:\n%s" (String.concat "\n" es)

(* naive reference model built from the same XML, for axis testing *)
type ref_node = {
  rkind : Catalog.kind;
  rname : string;
  rvalue : string;
  rchildren : ref_node list;
}

let rec ref_of_tree (t : Sedna_xml.Xml_parser.tree) : ref_node =
  match t with
  | Sedna_xml.Xml_parser.Element (n, atts, kids) ->
    {
      rkind = Catalog.Element;
      rname = Sedna_util.Xname.to_string n;
      rvalue = "";
      rchildren =
        List.map
          (fun { Sedna_xml.Xml_event.name; value } ->
            {
              rkind = Catalog.Attribute;
              rname = Sedna_util.Xname.to_string name;
              rvalue = value;
              rchildren = [];
            })
          atts
        @ List.map ref_of_tree kids;
    }
  | Sedna_xml.Xml_parser.Tree_text s ->
    { rkind = Catalog.Text; rname = ""; rvalue = s; rchildren = [] }
  | Sedna_xml.Xml_parser.Tree_comment s ->
    { rkind = Catalog.Comment; rname = ""; rvalue = s; rchildren = [] }
  | Sedna_xml.Xml_parser.Tree_pi (t', d) ->
    { rkind = Catalog.Pi; rname = t'; rvalue = d; rchildren = [] }

let qcheck_case ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name gen prop)
