(* Baseline implementations must be *correct* so the benches compare
   like for like: each baseline is validated against the engine. *)

open Sedna_baselines

let events = Sedna_workloads.Generators.library ~books:50 ()

let test_subtree_store_counts () =
  let t = Subtree_store.of_events events in
  Test_util.with_db (fun db ->
      ignore (Test_util.load_events db "lib" events);
      let engine_titles = Test_util.exec db {|count(doc("lib")//title)|} in
      let lib = Option.get (Subtree_store.find_first_named t "library") in
      let baseline = Subtree_store.scan_descendants_named t lib "title" in
      Alcotest.(check string) "title counts agree" engine_titles
        (string_of_int (List.length baseline)))

let test_subtree_store_reconstruction () =
  let t = Subtree_store.of_events events in
  let lib = Option.get (Subtree_store.find_first_named t "book") in
  let s = Subtree_store.subtree_string t lib in
  Alcotest.(check bool) "serialization looks right" true
    (String.length s > 10 && String.sub s 0 5 = "<book");
  (* reconstruction of one subtree touches few pages *)
  Subtree_store.reset_touches t;
  ignore (Subtree_store.subtree_string t lib);
  Alcotest.(check bool) "one book fits a couple of pages" true
    (Subtree_store.touches t <= 3)

let test_edge_rel_against_engine () =
  let t = Edge_rel.of_events events in
  Test_util.with_db (fun db ->
      ignore (Test_util.load_events db "lib" events);
      let check_path name steps query =
        let rel = List.length (Edge_rel.eval_path t steps) in
        let eng = int_of_string (Test_util.exec db query) in
        Alcotest.(check int) name eng rel
      in
      check_path "child path"
        [ Edge_rel.Child_step "library"; Edge_rel.Child_step "book";
          Edge_rel.Child_step "title" ]
        {|count(doc("lib")/library/book/title)|};
      check_path "descendant"
        [ Edge_rel.Desc_step "author" ]
        {|count(doc("lib")//author)|};
      check_path "descendant under child"
        [ Edge_rel.Child_step "library"; Edge_rel.Desc_step "year" ]
        {|count(doc("lib")/library//year)|})

let test_edge_rel_containment_join () =
  let t = Edge_rel.of_events events in
  (* books containing issues: join book x publisher *)
  let books = Edge_rel.rows_named t "book" in
  let pubs = Edge_rel.rows_named t "publisher" in
  let inside = Edge_rel.containment_join t books pubs in
  Alcotest.(check int) "publishers are inside books" (List.length pubs)
    (List.length inside)

let test_xiss_relabels () =
  (* appends fit, but repeated middle insertion exhausts gaps *)
  let t = Xiss.create ~initial_range:(1 lsl 12) () in
  for _ = 1 to 50 do
    Xiss.append t
  done;
  Alcotest.(check bool) "sorted" true (Xiss.is_sorted t);
  for _ = 1 to 500 do
    Xiss.insert_between t 0
  done;
  Alcotest.(check bool) "still sorted" true (Xiss.is_sorted t);
  Alcotest.(check bool) "relabeling happened" true (Xiss.relabels t > 0);
  Alcotest.(check bool) "relabeled nodes accumulate" true
    (Xiss.relabeled_nodes t > Xiss.count t);
  (* Sedna's scheme performs the same workload with zero relabels —
     pinned here as the contrast E5 measures *)
  let a = Sedna_nid.Nid.ordinal_child ~parent:Sedna_nid.Nid.root 0 in
  let b = Sedna_nid.Nid.ordinal_child ~parent:Sedna_nid.Nid.root 1 in
  let hi = ref b in
  for _ = 1 to 500 do
    hi := Sedna_nid.Nid.child_between ~parent:Sedna_nid.Nid.root ~left:(Some a) ~right:(Some !hi)
  done;
  Alcotest.(check int) "nid never relabels" 0
    (Sedna_util.Counters.get Sedna_util.Counters.relabels)

let test_swizzle_chase () =
  let t, start = Swizzle.build 1000 in
  let c1 = Swizzle.chase t start 5000 in
  let c2 = Swizzle.chase t start 5000 in
  Alcotest.(check int64) "deterministic" c1 c2;
  Alcotest.(check bool) "nonzero" true (c1 <> 0L)

let suite =
  [
    Alcotest.test_case "subtree counts" `Quick test_subtree_store_counts;
    Alcotest.test_case "subtree reconstruction" `Quick test_subtree_store_reconstruction;
    Alcotest.test_case "edge-rel vs engine" `Quick test_edge_rel_against_engine;
    Alcotest.test_case "containment join" `Quick test_edge_rel_containment_join;
    Alcotest.test_case "xiss relabels / nid does not" `Quick test_xiss_relabels;
    Alcotest.test_case "swizzle chase" `Quick test_swizzle_chase;
  ]
