(* B-tree tests: unit cases plus a qcheck property comparing against a
   reference map. *)

open Sedna_core

let with_bt f =
  Test_util.with_db (fun db ->
      Database.with_txn db (fun txn st ->
          Database.lock_exn db txn ~doc:"x" ~mode:Lock_mgr.Exclusive;
          let bt = Btree.create st.Store.bm in
          f st bt))

let v i = Xptr.make ~layer:9 ~addr:(i * 8)

let test_insert_lookup () =
  with_bt (fun _st bt ->
      for i = 0 to 999 do
        Btree.insert bt ~key:(Printf.sprintf "key%04d" i) ~value:(v i)
      done;
      Alcotest.(check int) "entries" 1000 (Btree.entry_count bt);
      for i = 0 to 999 do
        match Btree.lookup bt (Printf.sprintf "key%04d" i) with
        | [ x ] ->
          if not (Xptr.equal x (v i)) then Alcotest.failf "wrong value at %d" i
        | l -> Alcotest.failf "key%04d: %d hits" i (List.length l)
      done;
      Alcotest.(check (list string)) "missing key" []
        (List.map (fun _ -> "x") (Btree.lookup bt "nokey"));
      Alcotest.(check bool) "tree grew" true (Btree.height bt bt.Btree.root > 1))

let test_duplicates () =
  with_bt (fun _st bt ->
      for i = 0 to 9 do
        Btree.insert bt ~key:"dup" ~value:(v i)
      done;
      Alcotest.(check int) "ten values" 10 (List.length (Btree.lookup bt "dup"));
      Alcotest.(check bool) "delete one" true
        (Btree.delete bt ~key:"dup" ~value:(v 3));
      Alcotest.(check int) "nine left" 9 (List.length (Btree.lookup bt "dup"));
      Alcotest.(check bool) "delete absent" false
        (Btree.delete bt ~key:"dup" ~value:(v 99)))

let test_range () =
  with_bt (fun _st bt ->
      List.iter
        (fun i -> Btree.insert bt ~key:(Printf.sprintf "%03d" i) ~value:(v i))
        [ 5; 1; 9; 3; 7; 2; 8; 4; 6 ];
      let keys ?lo ?hi () = List.map fst (Btree.range bt ?lo ?hi ()) in
      Alcotest.(check (list string)) "full" [ "001"; "002"; "003"; "004"; "005"; "006"; "007"; "008"; "009" ] (keys ());
      Alcotest.(check (list string)) "mid" [ "003"; "004"; "005" ]
        (keys ~lo:"003" ~hi:"005" ());
      Alcotest.(check (list string)) "upper open" [ "008"; "009" ] (keys ~lo:"008" ())
  )

let test_long_keys_split () =
  with_bt (fun _st bt ->
      (* long keys force splits quickly and exercise compaction *)
      for i = 0 to 300 do
        Btree.insert bt
          ~key:(Printf.sprintf "%04d-%s" i (String.make 150 'k'))
          ~value:(v i)
      done;
      for i = 0 to 300 do
        Alcotest.(check int)
          (Printf.sprintf "hit %d" i)
          1
          (List.length
             (Btree.lookup bt (Printf.sprintf "%04d-%s" i (String.make 150 'k'))))
      done)

let test_duplicates_across_splits () =
  (* heavy duplication forces key runs to span leaf splits: the reads
     must descend left-biased and scan across leaves *)
  with_bt (fun _st bt ->
      let per_key = 200 in
      for i = 0 to (10 * per_key) - 1 do
        Btree.insert bt ~key:(Printf.sprintf "dup%d" (i mod 10)) ~value:(v i)
      done;
      for k = 0 to 9 do
        Alcotest.(check int)
          (Printf.sprintf "all duplicates found for key %d" k)
          per_key
          (List.length (Btree.lookup bt (Printf.sprintf "dup%d" k)))
      done;
      (* delete a specific (key, value) pair buried mid-run *)
      Alcotest.(check bool) "targeted delete" true
        (Btree.delete bt ~key:"dup3" ~value:(v 53));
      Alcotest.(check int) "one fewer" (per_key - 1)
        (List.length (Btree.lookup bt "dup3")))

let test_number_encoding () =
  let values =
    [ Float.neg_infinity; -1e300; -123.456; -1.0; -0.0001; 0.0; 0.0001; 1.0;
      42.0; 123.456; 1e300; Float.infinity ]
  in
  let encoded = List.map Btree.encode_number values in
  let sorted = List.sort String.compare encoded in
  Alcotest.(check (list string)) "byte order = numeric order" encoded sorted;
  List.iter
    (fun f ->
      Alcotest.(check (float 1e-9)) "roundtrip" f
        (Btree.decode_number (Btree.encode_number f)))
    (List.filter Float.is_finite values)

(* property: btree lookup agrees with a reference association list *)
let arb_ops =
  QCheck.make
    QCheck.Gen.(
      list_size (int_range 1 400)
        (pair bool (pair (int_range 0 50) (int_range 0 1000))))

let prop_matches_reference ops =
  let result = ref true in
  Test_util.with_db (fun db ->
      Database.with_txn db (fun txn st ->
          Database.lock_exn db txn ~doc:"x" ~mode:Lock_mgr.Exclusive;
          let bt = Btree.create st.Store.bm in
          let reference = Hashtbl.create 64 in
          List.iter
            (fun (is_insert, (k, value)) ->
              let key = Printf.sprintf "k%02d" k in
              if is_insert then begin
                Btree.insert bt ~key ~value:(v value);
                Hashtbl.add reference key value
              end
              else begin
                let existing = Hashtbl.find_all reference key in
                if List.mem value existing then begin
                  ignore (Btree.delete bt ~key ~value:(v value));
                  (* drop exactly one occurrence from the reference *)
                  let rec remove_one = function
                    | [] -> []
                    | x :: r -> if x = value then r else x :: remove_one r
                  in
                  let rest = remove_one existing in
                  while Hashtbl.mem reference key do
                    Hashtbl.remove reference key
                  done;
                  List.iter (fun x -> Hashtbl.add reference key x) (List.rev rest)
                end
              end)
            ops;
          for k = 0 to 50 do
            let key = Printf.sprintf "k%02d" k in
            let expect = List.sort compare (Hashtbl.find_all reference key) in
            let got =
              List.sort compare
                (List.map (fun p -> Xptr.addr p / 8) (Btree.lookup bt key))
            in
            if expect <> got then result := false
          done));
  !result

let suite =
  [
    Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
    Alcotest.test_case "duplicates" `Quick test_duplicates;
    Alcotest.test_case "range" `Quick test_range;
    Alcotest.test_case "long keys" `Quick test_long_keys_split;
    Alcotest.test_case "duplicates across splits" `Quick
      test_duplicates_across_splits;
    Alcotest.test_case "number encoding" `Quick test_number_encoding;
    Test_util.qcheck_case ~count:30 "matches reference" arb_ops
      prop_matches_reference;
  ]
