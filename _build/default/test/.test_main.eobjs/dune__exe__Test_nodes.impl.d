test/test_nodes.ml: Alcotest Catalog Database List Lock_mgr Node Node_ser Printf Sedna_core Sedna_util Sedna_workloads Sedna_xml Store String Test_util Traverse Update_ops Xptr
