test/test_baselines.ml: Alcotest Edge_rel List Option Sedna_baselines Sedna_nid Sedna_util Sedna_workloads String Subtree_store Swizzle Test_util Xiss
