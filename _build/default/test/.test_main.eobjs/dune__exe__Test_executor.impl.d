test/test_executor.ml: Alcotest List Sedna_db Sedna_util Sedna_xquery Test_util
