test/test_scale.ml: Alcotest Catalog Database List Lock_mgr Printf Sedna_core Sedna_workloads Test_util
