test/test_nid.ml: Alcotest Array Bool List Nid QCheck Sedna_nid Test_util
