test/test_axes.ml: Database Hashtbl List Lock_mgr Node Printf QCheck Sedna_core Sedna_util Seq String Test_util Traverse Xptr
