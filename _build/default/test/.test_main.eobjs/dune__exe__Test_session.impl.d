test/test_session.ml: Alcotest Catalog Database Sedna_core Sedna_db Sedna_util Sedna_workloads Test_util
