test/test_updates.ml: Alcotest Database Lock_mgr Sedna_core Sedna_workloads Test_util
