test/test_executor2.ml: Alcotest Database List Lock_mgr Node Printf Sedna_core Sedna_nid Sedna_util Sedna_workloads Sedna_xml String Test_util Traverse Update_ops
