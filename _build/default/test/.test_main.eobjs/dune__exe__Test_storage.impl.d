test/test_storage.ml: Alcotest Buffer_mgr Bytes Char Database File_store Filename Fun Indirection List Lock_mgr Page Printf QCheck Sedna_core Sedna_util Store String Test_util Text_store Unix Xptr
