test/test_xquery.ml: Alcotest List Sedna_db Sedna_util Sedna_xquery String Test_util
