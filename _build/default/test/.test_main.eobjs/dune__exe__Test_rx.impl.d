test/test_rx.ml: Alcotest Sedna_engine Sedna_util Test_util
