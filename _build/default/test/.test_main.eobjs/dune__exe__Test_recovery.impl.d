test/test_recovery.ml: Alcotest Backup Bytes Char Database Filename List Lock_mgr Page Printf Sedna_core Sedna_db Sedna_workloads Test_util Unix Wal
