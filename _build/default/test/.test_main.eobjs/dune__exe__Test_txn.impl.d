test/test_txn.ml: Alcotest Catalog Database List Lock_mgr Node Node_ser Printf Sedna_core Sedna_db Sedna_util Test_util Txn Versions
