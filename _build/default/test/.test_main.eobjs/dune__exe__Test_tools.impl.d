test/test_tools.ml: Alcotest List Sedna_xquery String Test_util
