test/test_xml.ml: Alcotest Escape List QCheck Sedna_util Sedna_xml Serializer String Test_util Xml_event Xml_parser
