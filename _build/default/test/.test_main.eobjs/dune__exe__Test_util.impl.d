test/test_util.ml: Alcotest Catalog Database Filename Fun Indirection Integrity List Loader Lock_mgr Printf QCheck QCheck_alcotest Sedna_core Sedna_db Sedna_util Sedna_xml Store String Sys Unix
