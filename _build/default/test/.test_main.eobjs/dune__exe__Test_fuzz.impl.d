test/test_fuzz.ml: Array Buffer Catalog Database List Lock_mgr Node Node_ser Printf QCheck Sedna_core Sedna_util Sedna_xml Store String Test_util Traverse Update_ops
