test/test_btree.ml: Alcotest Btree Database Float Hashtbl List Lock_mgr Printf QCheck Sedna_core Store String Test_util Xptr
