test/test_hier_lock.ml: Alcotest Hier_lock List Sedna_core Sedna_nid
