(* Second executor battery: namespaces, mixed node kinds (comments,
   processing instructions), deep labels spilling to the text store,
   serializer options, and miscellaneous edge cases. *)

open Sedna_core

let ns_fixture =
  {|<cat:root xmlns:cat="urn:catalog" xmlns="urn:default"><cat:entry n="1"/><entry n="2"/><plain/></cat:root>|}

let test_namespace_queries () =
  Test_util.with_doc ns_fixture (fun _db run ->
      (* unprefixed name tests match by local name when the query has
         no namespace context for them *)
      Alcotest.(check string) "local-name match crosses ns" "2"
        (run {|count(doc("d")//entry)|});
      Alcotest.(check string) "namespace-uri accessible" "urn:catalog"
        (run {|namespace-uri((doc("d")//*)[1])|});
      Alcotest.(check string) "prefixed name fn" "cat:root"
        (run {|name((doc("d")//*)[1])|}))

let mixed_fixture =
  {|<doc><!--intro--><?format page?><p>one</p><!--mid--><p>two</p></doc>|}

let test_mixed_kinds () =
  Test_util.with_doc mixed_fixture (fun _db run ->
      Alcotest.(check string) "comments" "2"
        (run {|count(doc("d")/doc/comment())|});
      Alcotest.(check string) "pi" "1"
        (run {|count(doc("d")/doc/processing-instruction())|});
      Alcotest.(check string) "pi by target" "1"
        (run {|count(doc("d")/doc/processing-instruction("format"))|});
      Alcotest.(check string) "pi target mismatch" "0"
        (run {|count(doc("d")/doc/processing-instruction("other"))|});
      Alcotest.(check string) "all node kinds" "5"
        (run {|count(doc("d")/doc/node())|});
      Alcotest.(check string) "comment content" "intro"
        (run {|string((doc("d")//comment())[1])|}))

let test_deep_labels_overflow () =
  (* depth ~40 exceeds the 15-byte inline label area: labels overflow
     into the text store and navigation keeps working *)
  Test_util.with_db (fun db ->
      let events = Sedna_workloads.Generators.deep ~depth:40 () in
      ignore (Test_util.load_events db "deep" events);
      Database.with_txn db (fun txn st ->
          Database.lock_exn db txn ~doc:"deep" ~mode:Lock_mgr.Exclusive;
          Test_util.check_invariants st "deep";
          let dd = Test_util.doc_desc st "deep" in
          let leaf =
            List.of_seq
              (Traverse.descendants_schema st
                 ~test:(Traverse.element_test (Some (Sedna_util.Xname.make "leaf")))
                 dd)
            |> List.hd
          in
          let lbl = Node.label st leaf in
          Alcotest.(check bool) "label long enough to overflow" true
            (String.length (Sedna_nid.Nid.to_raw lbl) > 15);
          (* ancestor tests still work through the overflow *)
          let root_elem = List.hd (Node.children st dd) in
          Alcotest.(check bool) "ancestor across overflow" true
            (Sedna_nid.Nid.is_ancestor
               ~ancestor:(Node.label st root_elem) lbl);
          (* delete the deep chain: overflow labels are released without
             corrupting the text store *)
          Update_ops.delete_node st (Node.handle st (List.hd (Node.children st root_elem)));
          Test_util.check_invariants st "deep"));
  ()

let test_serializer_options () =
  let events = Sedna_xml.Xml_parser.events "<a><b>x</b><c/></a>" in
  let plain = Sedna_xml.Serializer.to_string events in
  Alcotest.(check string) "compact" "<a><b>x</b><c/></a>" plain;
  let opts = { Sedna_xml.Serializer.indent = true; xml_declaration = true } in
  let pretty = Sedna_xml.Serializer.to_string ~options:opts events in
  Alcotest.(check bool) "declaration" true
    (String.length pretty > 5 && String.sub pretty 0 5 = "<?xml");
  Alcotest.(check bool) "indented" true (String.contains pretty '\n')

let test_empty_document_queries () =
  Test_util.with_db (fun db ->
      ignore (Test_util.exec db {|CREATE DOCUMENT "empty"|});
      Alcotest.(check string) "no children" "0"
        (Test_util.exec db {|count(doc("empty")/*)|});
      Alcotest.(check string) "descendants" "0"
        (Test_util.exec db {|count(doc("empty")//node())|});
      (* and it can be filled afterwards *)
      ignore (Test_util.exec db {|UPDATE insert <late/> into doc("empty")|});
      Alcotest.(check string) "filled" "1"
        (Test_util.exec db {|count(doc("empty")/late)|}))

let test_long_text_values_via_query () =
  Test_util.with_db (fun db ->
      let big = String.make 30_000 'q' in
      ignore (Test_util.load db "d" (Printf.sprintf "<a><t>%s</t></a>" big));
      Alcotest.(check string) "length through the engine" "30000"
        (Test_util.exec db {|string-length(string(doc("d")/a/t))|});
      ignore
        (Test_util.exec db {|UPDATE replace $t in doc("d")/a/t with <t>small</t>|});
      Alcotest.(check string) "replaced" "small"
        (Test_util.exec db {|string(doc("d")/a/t)|}))

let test_multi_document_queries () =
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "d1" "<r><x>1</x></r>");
      ignore (Test_util.load db "d2" "<r><x>2</x></r>");
      Alcotest.(check string) "cross-document sequence" "1 2"
        (Test_util.exec db
           {|for $x in (doc("d1")//x, doc("d2")//x) return string($x)|});
      Alcotest.(check string) "union across documents" "2"
        (Test_util.exec db {|count(doc("d1")//x | doc("d2")//x)|});
      Alcotest.(check string) "no cross-document identity" "false"
        (Test_util.exec db {|doc("d1")//x[1] is doc("d2")//x[1]|}))

let test_where_multiple_clauses () =
  Test_util.with_doc {|<r><i a="1" b="x"/><i a="2" b="y"/><i a="3" b="x"/></r>|}
    (fun _db run ->
      Alcotest.(check string) "two wheres" "3"
        (run
           {|for $i in doc("d")//i where $i/@a > 1 where $i/@b = "x"
             return string($i/@a)|});
      Alcotest.(check string) "let between fors" "2 6"
        (run
           {|for $i in doc("d")//i[@b = "x"]
             let $v := xs:integer(string($i/@a)) * 2
             return $v|}))

let test_constructor_in_predicate_is_materialized () =
  (* constructors inside predicates are NOT marked virtual: identity
     and navigation must behave *)
  Test_util.with_doc {|<r><x>1</x></r>|} (fun _db run ->
      Alcotest.(check string) "nav into constructed" "ok"
        (run {|if ((<w><i>5</i></w>)/i = 5) then "ok" else "bad"|}))

let test_comment_pi_updates () =
  Test_util.with_doc {|<r><a/></r>|} (fun db run ->
      ignore db;
      ignore (run {|UPDATE insert <!--note--> into doc("d")/r|});
      Alcotest.(check string) "comment inserted" "1"
        (run {|count(doc("d")/r/comment())|});
      ignore (run {|UPDATE delete doc("d")/r/comment()|});
      Alcotest.(check string) "comment deleted" "0"
        (run {|count(doc("d")/r/comment())|}))

let suite =
  [
    Alcotest.test_case "namespaces" `Quick test_namespace_queries;
    Alcotest.test_case "mixed node kinds" `Quick test_mixed_kinds;
    Alcotest.test_case "deep labels overflow" `Quick test_deep_labels_overflow;
    Alcotest.test_case "serializer options" `Quick test_serializer_options;
    Alcotest.test_case "empty document" `Quick test_empty_document_queries;
    Alcotest.test_case "long text values" `Quick test_long_text_values_via_query;
    Alcotest.test_case "multi-document" `Quick test_multi_document_queries;
    Alcotest.test_case "where chains" `Quick test_where_multiple_clauses;
    Alcotest.test_case "constructor in predicate" `Quick
      test_constructor_in_predicate_is_materialized;
    Alcotest.test_case "comment/pi updates" `Quick test_comment_pi_updates;
  ]
