(* Introspection tooling: the sedna:schema() function and the \explain
   plan printer. *)

let fixture = {|<shop><item id="1"><name>apple</name></item><item id="2"><name>pear</name></item><note>hi</note></shop>|}

let test_schema_function () =
  Test_util.with_doc fixture (fun _db run ->
      let s = run {|schema("d")|} in
      (* the descriptive schema has exactly one path per distinct
         document path *)
      let count_sub needle hay =
        let n = String.length needle and h = String.length hay in
        let c = ref 0 in
        for i = 0 to h - n do
          if String.sub hay i n = needle then incr c
        done;
        !c
      in
      Alcotest.(check int) "one item schema node" 1
        (count_sub {|name="item"|} s);
      Alcotest.(check int) "item population is 2" 1 (count_sub {|name="item" count="2"|} s);
      Alcotest.(check int) "one note schema node" 1 (count_sub {|name="note"|} s);
      (* schema queries compose with path expressions *)
      Alcotest.(check string) "countable" "1"
        (run {|count(schema("d")/element[@name="shop"])|}))

let test_statistics_function () =
  Test_util.with_doc fixture (fun db run ->
      ignore
        (Test_util.exec db
           {|CREATE INDEX "byname" ON doc("d")/shop/item BY name AS xs:string|});
      Alcotest.(check string) "one document row" "1"
        (run {|count(statistics()/document)|});
      Alcotest.(check string) "node count plausible" "true"
        (run {|statistics()/document[@name="d"]/@nodes > 5|});
      Alcotest.(check string) "index row present" "1"
        (run {|count(statistics()/index[@name="byname"])|}))

let test_explain () =
  let out =
    Sedna_xquery.Xq_pp.explain {|for $x in doc("d")//item return $x/name|}
  in
  let contains needle =
    let n = String.length needle and h = String.length out in
    let rec go i = i + n <= h && (String.sub out i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "shows normalized DDOs" true (contains "DDO");
  Alcotest.(check bool) "shows schema path after rewrite" true
    (contains "SCHEMA-PATH");
  Alcotest.(check bool) "DDOs removed" true (contains "(0 DDO op(s))")

let test_explain_keeps_ddo_when_needed () =
  let out = Sedna_xquery.Xq_pp.explain {|doc("d")//name/..|} in
  let contains needle =
    let n = String.length needle and h = String.length out in
    let rec go i = i + n <= h && (String.sub out i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "parent path keeps its DDO" true
    (contains "after rewriting (1 DDO op(s))")

let test_plan_printer_total () =
  (* the printer must handle every construct without raising *)
  List.iter
    (fun q -> ignore (Sedna_xquery.Xq_pp.explain q))
    [
      {|1 + 2 * 3|};
      {|if (1 < 2) then "a" else "b"|};
      {|some $x in (1,2) satisfies $x > 1|};
      {|<a b="{1}">{2}</a>|};
      {|element x { attribute y { 1 }, text { "t" } }|};
      {|for $a at $i in (1,2) let $b := $a where $b > 0 order by $b descending return ($b, $i)|};
      {|doc("d")//x[position() = last()]|};
      {|(1,2) = (2,3) and not(true())|};
      {|"5" cast as xs:integer|};
      {|$u instance of xs:string|} |> String.map (fun c -> if c = '$' then 'v' else c);
      {|(//a, .//b)[1]|};
    ]

let suite =
  [
    Alcotest.test_case "schema()" `Quick test_schema_function;
    Alcotest.test_case "statistics()" `Quick test_statistics_function;
    Alcotest.test_case "explain" `Quick test_explain;
    Alcotest.test_case "explain keeps needed DDO" `Quick
      test_explain_keeps_ddo_when_needed;
    Alcotest.test_case "plan printer total" `Quick test_plan_printer_total;
  ]
