(* XUpdate statement tests, each validated against the storage
   invariant checker. *)

open Sedna_core

let fixture = {|<inv><item sku="a"><qty>5</qty></item><item sku="b"><qty>3</qty></item></inv>|}

let with_inv f =
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "inv" fixture);
      f db (fun q -> Test_util.exec db q);
      Database.with_txn db (fun txn st ->
          Database.lock_exn db txn ~doc:"inv" ~mode:Lock_mgr.Shared;
          Test_util.check_invariants st "inv"))

let test_insert_into () =
  with_inv (fun _db run ->
      ignore (run {|UPDATE insert <item sku="c"><qty>9</qty></item> into doc("inv")/inv|});
      Alcotest.(check string) "appended last" "c"
        (run {|string(doc("inv")/inv/item[last()]/@sku)|});
      Alcotest.(check string) "count" "3" (run {|count(doc("inv")//item)|}))

let test_insert_preceding_following () =
  with_inv (fun _db run ->
      ignore (run {|UPDATE insert <item sku="x"/> preceding doc("inv")/inv/item[1]|});
      Alcotest.(check string) "first" "x" (run {|string(doc("inv")/inv/item[1]/@sku)|});
      ignore (run {|UPDATE insert <item sku="y"/> following doc("inv")/inv/item[@sku="a"]|});
      Alcotest.(check string) "order" "x a y b"
        (run {|string-join(for $i in doc("inv")/inv/item return string($i/@sku), " ")|}))

let test_insert_multiple_items () =
  with_inv (fun _db run ->
      ignore (run {|UPDATE insert (<note>one</note>, "two", <note>three</note>) into doc("inv")/inv/item[1]|});
      Alcotest.(check string) "notes" "2" (run {|count(doc("inv")//item[1]/note)|});
      (* string value concatenates every descendant text node in order *)
      Alcotest.(check string) "text item too" "5onetwothree"
        (run {|string(doc("inv")/inv/item[1])|}))

let test_insert_computed_content () =
  with_inv (fun _db run ->
      ignore
        (run
           {|UPDATE insert <total>{sum(doc("inv")//qty)}</total> into doc("inv")/inv|});
      Alcotest.(check string) "computed total" "8"
        (run {|string(doc("inv")/inv/total)|}))

let test_delete () =
  with_inv (fun _db run ->
      ignore (run {|UPDATE delete doc("inv")//item[@sku="a"]|});
      Alcotest.(check string) "one left" "1" (run {|count(doc("inv")//item)|});
      Alcotest.(check string) "b remains" "b"
        (run {|string(doc("inv")/inv/item[1]/@sku)|}))

let test_delete_all_matching () =
  with_inv (fun _db run ->
      ignore (run {|UPDATE delete doc("inv")//qty|});
      Alcotest.(check string) "no qty" "0" (run {|count(doc("inv")//qty)|});
      Alcotest.(check string) "items intact" "2" (run {|count(doc("inv")//item)|}))

let test_delete_undeep () =
  with_inv (fun _db run ->
      (* remove the item wrapper, keep its children *)
      ignore (run {|UPDATE delete_undeep doc("inv")/inv/item[@sku="a"]|});
      Alcotest.(check string) "qty lifted to inv" "5"
        (run {|string(doc("inv")/inv/qty[1])|});
      Alcotest.(check string) "one item left" "1" (run {|count(doc("inv")//item)|}))

let test_replace () =
  with_inv (fun _db run ->
      ignore
        (run
           {|UPDATE replace $q in doc("inv")//qty
             with <qty>{xs:integer(string($q)) * 10}</qty>|});
      Alcotest.(check string) "both scaled" "50 30"
        (run {|string-join(for $q in doc("inv")//qty return string($q), " ")|}))

let test_rename () =
  with_inv (fun _db run ->
      ignore (run {|UPDATE rename doc("inv")//item on product|});
      Alcotest.(check string) "renamed" "2" (run {|count(doc("inv")//product)|});
      Alcotest.(check string) "none left" "0" (run {|count(doc("inv")//item)|});
      (* content and attributes survive the rename *)
      Alcotest.(check string) "attrs survive" "a b"
        (run {|string-join(for $p in doc("inv")//product return string($p/@sku), " ")|});
      Alcotest.(check string) "content survives" "5 3"
        (run {|string-join(for $p in doc("inv")//product return string($p/qty), " ")|}))

let test_rename_attribute () =
  with_inv (fun _db run ->
      ignore (run {|UPDATE rename doc("inv")//item[1]/@sku on code|});
      Alcotest.(check string) "new attr" "a"
        (run {|string(doc("inv")/inv/item[1]/@code)|});
      Alcotest.(check string) "old gone" ""
        (run {|string(doc("inv")/inv/item[1]/@sku)|}))

let test_update_with_moved_targets () =
  (* many targets selected up front; handles stay valid while earlier
     updates relocate descriptors (paper §5.2) *)
  Test_util.with_db (fun db ->
      let events = Sedna_workloads.Generators.wide ~kinds:1 ~children:300 () in
      ignore (Test_util.load_events db "w" events);
      ignore
        (Test_util.exec db
           {|UPDATE insert <mark/> into doc("w")/root/kind0|});
      Alcotest.(check string) "all 300 updated" "300"
        (Test_util.exec db {|count(doc("w")//mark)|});
      Database.with_txn db (fun txn st ->
          Database.lock_exn db txn ~doc:"w" ~mode:Lock_mgr.Shared;
          Test_util.check_invariants st "w"))

let test_update_copies_not_aliases () =
  with_inv (fun _db run ->
      (* inserting an existing node inserts a copy: the original stays *)
      ignore (run {|UPDATE insert doc("inv")/inv/item[1]/qty into doc("inv")/inv/item[2]|});
      Alcotest.(check string) "copied" "2" (run {|count(doc("inv")/inv/item[2]/qty)|});
      Alcotest.(check string) "original intact" "1"
        (run {|count(doc("inv")/inv/item[1]/qty)|}))

let suite =
  [
    Alcotest.test_case "insert into" `Quick test_insert_into;
    Alcotest.test_case "insert preceding/following" `Quick test_insert_preceding_following;
    Alcotest.test_case "insert sequence" `Quick test_insert_multiple_items;
    Alcotest.test_case "insert computed" `Quick test_insert_computed_content;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "delete all matching" `Quick test_delete_all_matching;
    Alcotest.test_case "delete_undeep" `Quick test_delete_undeep;
    Alcotest.test_case "replace" `Quick test_replace;
    Alcotest.test_case "rename element" `Quick test_rename;
    Alcotest.test_case "rename attribute" `Quick test_rename_attribute;
    Alcotest.test_case "many targets" `Quick test_update_with_moved_targets;
    Alcotest.test_case "insert copies" `Quick test_update_copies_not_aliases;
  ]
