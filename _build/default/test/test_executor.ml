(* Query execution tests: a table of queries with expected serialized
   results over fixture documents, plus targeted cases for constructor
   copy semantics and the schema-path operator. *)

let fixture =
  {|<site><people><person id="p1" age="30"><name>alice</name><city>zurich</city></person><person id="p2" age="25"><name>bob</name><city>moscow</city></person><person id="p3" age="35"><name>carol</name><city>zurich</city></person></people><nums><n>3</n><n>1</n><n>2</n></nums><mixed>head<b>bold</b>tail</mixed></site>|}

(* (name, query, expected) *)
let cases =
  [
    ("path child", {|doc("d")/site/people/person[2]/name|}, "<name>bob</name>");
    ("path attr", {|string(doc("d")/site/people/person[1]/@id)|}, "p1");
    ("descendant", {|count(doc("d")//person)|}, "3");
    ("wildcard", {|count(doc("d")/site/people/*)|}, "3");
    ("text test", {|doc("d")//person[1]/name/text()|}, "alice");
    ("parent axis", {|string(doc("d")//name[.="bob"]/../@id)|}, "p2");
    ("ancestor", {|count((doc("d")//name)[1]/ancestor::*)|}, "3");
    ("anc-or-self", {|count((doc("d")//name)[1]/ancestor-or-self::node())|}, "5");
    ("self", {|count(doc("d")//person/self::person)|}, "3");
    ("following-sibling", {|count(doc("d")/site/people/following-sibling::*)|}, "2");
    ("preceding-sibling", {|string(doc("d")/site/mixed/preceding-sibling::*[1]/n[1])|}, "3");
    ("following", {|count(doc("d")/site/people/following::n)|}, "3");
    ("preceding", {|count(doc("d")/site/nums/preceding::person)|}, "3");
    ("pred value", {|count(doc("d")//person[city="zurich"])|}, "2");
    ("pred attr num", {|string(doc("d")//person[@age > 28][1]/name)|}, "alice");
    ("pred position", {|string(doc("d")//person[position() = 3]/name)|}, "carol");
    ("pred last", {|string(doc("d")//person[last()]/name)|}, "carol");
    ("pred chain", {|string(doc("d")//person[city="zurich"][2]/name)|}, "carol");
    ("arith", "2 + 3 * 4 - 1", "13");
    ("idiv mod", "(7 idiv 2, 7 mod 2)", "3 1");
    ("div", "7 div 2", "3.5");
    ("neg", "-(2 + 3)", "-5");
    ("range", "count(1 to 100)", "100");
    ("empty range", "count(5 to 1)", "0");
    ("value cmp", "(1 eq 1, 1 lt 2, 2 le 1)", "true true false");
    ("gen cmp existential", {|(1, 2, 3) = (3, 5)|}, "true");
    ("gen cmp false", {|(1, 2) = (4, 5)|}, "false");
    ("gen untyped num", {|doc("d")//n = 2|}, "true");
    ("and or", "(1 = 1 and 2 = 3, 1 = 1 or 2 = 3)", "false true");
    ("if", "if (1 < 2) then \"yes\" else \"no\"", "yes");
    ("flwor order by", {|for $n in doc("d")//n order by number($n) return string($n)|}, "1 2 3");
    ("flwor order desc", {|for $n in doc("d")//n order by number($n) descending return string($n)|}, "3 2 1");
    ("flwor where", {|for $p in doc("d")//person where $p/@age >= 30 return string($p/name)|}, "alice carol");
    ("flwor at", {|for $n at $i in doc("d")//n return $i * 10|}, "10 20 30");
    ("flwor let", {|let $p := doc("d")//person return count($p)|}, "3");
    ("nested flwor", {|for $c in distinct-values(doc("d")//city) order by $c return <g city="{$c}">{count(doc("d")//person[city = $c])}</g>|}, {|<g city="moscow">1</g><g city="zurich">2</g>|});
    ("quantified some", {|some $p in doc("d")//person satisfies $p/@age > 33|}, "true");
    ("quantified every", {|every $p in doc("d")//person satisfies $p/@age > 26|}, "false");
    ("union", {|count(doc("d")//name | doc("d")//city)|}, "6");
    ("union dedup", {|count(doc("d")//person | doc("d")//person)|}, "3");
    ("intersect", {|count(doc("d")//person intersect doc("d")//person[city="zurich"])|}, "2");
    ("except", {|count(doc("d")//person except doc("d")//person[1])|}, "2");
    ("node is", {|doc("d")//person[1] is doc("d")//person[1]|}, "true");
    ("node precedes", {|doc("d")//person[1] << doc("d")//person[2]|}, "true");
    ("count", {|count(doc("d")//person/name)|}, "3");
    ("sum", {|sum(doc("d")//n)|}, "6");
    ("avg", {|avg(doc("d")//n)|}, "2");
    ("min max", {|(min(doc("d")//n), max(doc("d")//n))|}, "1 3");
    ("string fn", {|string(doc("d")//person[1])|}, "alicezurich");
    ("string-length", {|string-length("hello")|}, "5");
    ("concat", {|concat("a", "b", 1)|}, "ab1");
    ("contains", {|(contains("banana", "nan"), contains("banana", "xyz"))|}, "true false");
    ("starts ends", {|(starts-with("abc", "ab"), ends-with("abc", "bc"))|}, "true true");
    ("substring", {|substring("hello world", 7)|}, "world");
    ("substring len", {|substring("hello", 2, 3)|}, "ell");
    ("substring-before/after", {|(substring-before("a=b", "="), substring-after("a=b", "="))|}, "a b");
    ("normalize-space", {|normalize-space("  a   b  ")|}, "a b");
    ("upper lower", {|(upper-case("aBc"), lower-case("aBc"))|}, "ABC abc");
    ("translate", {|translate("bar", "abc", "ABC")|}, "BAr");
    ("string-join", {|string-join(("a", "b", "c"), "-")|}, "a-b-c");
    ("name fns", {|(name(doc("d")//person[1]), local-name(doc("d")//person[1]))|}, "person person");
    ("number", {|number("3.5") + 1|}, "4.5");
    ("number nan", {|string(number("abc"))|}, "NaN");
    ("boolean ebv", {|(boolean(doc("d")//person), boolean(""), boolean("x"), boolean(0))|},
     "true false true false");
    ("not", {|not(doc("d")//person[@age > 99])|}, "true");
    ("empty exists", {|(empty(doc("d")//ghost), exists(doc("d")//person))|}, "true true");
    ("distinct-values", {|count(distinct-values(doc("d")//city))|}, "2");
    ("reverse", {|reverse((1, 2, 3))|}, "3 2 1");
    ("subsequence", {|subsequence((1,2,3,4,5), 2, 3)|}, "2 3 4");
    ("insert-before", {|insert-before((1,2), 2, 99)|}, "1 99 2");
    ("remove", {|remove((1,2,3), 2)|}, "1 3");
    ("index-of", {|index-of((10, 20, 10), 10)|}, "1 3");
    ("floor ceiling round abs", {|(floor(1.7), ceiling(1.2), round(1.5), abs(-3))|}, "1 2 2 3");
    ("zero-or-one ok", {|zero-or-one(doc("d")//mixed)|}, "<mixed>head<b>bold</b>tail</mixed>");
    ("exactly-one", {|exactly-one(5)|}, "5");
    ("deep-equal", {|deep-equal(doc("d")//person[1], doc("d")//person[1])|}, "true");
    ("root fn", {|count(root(doc("d")//name[1])//person)|}, "3");
    ("doc-available", {|(doc-available("d"), doc-available("nope"))|}, "true false");
    ("cast integer", {|xs:integer("42") + 1|}, "43");
    ("cast double", {|xs:double("1.5") * 2|}, "3");
    ("cast string", {|xs:string(42)|}, "42");
    ("castable", {|("12" castable as xs:integer, "ab" castable as xs:integer)|}, "true false");
    ("instance of", {|(5 instance of xs:integer, "x" instance of xs:integer)|}, "true false");
    ("constructor direct", {|<p a="{1+1}">x{2+3}y</p>|}, {|<p a="2">x5y</p>|});
    ("constructor nested", {|<o><i>{string(doc("d")//name[1])}</i></o>|}, "<o><i>alice</i></o>");
    ("computed elem", {|element note { attribute lang { "en" }, "hi" }|}, {|<note lang="en">hi</note>|});
    ("computed dynamic name", {|element { concat("a", "b") } { 1 }|}, "<ab>1</ab>");
    ("text constructor", {|<t>{text { "plain" }}</t>|}, "<t>plain</t>");
    ("comment constructor", {|<t><!--remark--></t>|}, "<t><!--remark--></t>");
    ("atomics spaced in constructor", {|<s>{1, 2, 3}</s>|}, "<s>1 2 3</s>");
    ("mixed content query", {|string(doc("d")/site/mixed)|}, "headboldtail");
    ("predicate on filter", {|(1, 2, 3, 4)[. > 2]|}, "3 4");
    ("filter positional", {|(10, 20, 30)[2]|}, "20");
    ("declared function", {|declare function local:sq($x) { $x * $x }; local:sq(7)|}, "49");
    ("recursive function",
     {|declare function local:fact($n) { if ($n <= 1) then 1 else $n * local:fact($n - 1) };
       local:fact(6)|}, "720");
    ("function over nodes",
     {|declare function local:names($p) { for $x in $p return string($x/name) };
       local:names(doc("d")//person[city="zurich"])|}, "alice carol");
    ("prolog variable", {|declare variable $limit := 28; count(doc("d")//person[@age > $limit])|}, "2");
    ("comma sequence", "(1, (2, 3), ())", "1 2 3");
    ("kind test element", {|count(doc("d")//element(person))|}, "3");
    ("kind test node", {|count(doc("d")/site/mixed/node())|}, "3");
    ("attribute axis wildcard", {|count(doc("d")//person[1]/@*)|}, "2");
  ]

let runner () =
  Test_util.with_doc fixture (fun _db run ->
      List.iter
        (fun (name, q, expected) ->
          match run q with
          | got -> Alcotest.(check string) name expected got
          | exception e ->
            Alcotest.failf "%s: raised %s" name (Sedna_util.Error.to_string e))
        cases)

(* every case must ALSO produce identical results with the optimizer
   disabled: the rewrites are semantics-preserving *)
let runner_unoptimized () =
  Test_util.with_doc fixture (fun db _run ->
      let s = Sedna_db.Session.connect db in
      Sedna_db.Session.set_rewriter_options s Sedna_xquery.Rewriter.no_options;
      List.iter
        (fun (name, q, expected) ->
          match Sedna_db.Session.execute_string s q with
          | got -> Alcotest.(check string) (name ^ " [noopt]") expected got
          | exception e ->
            Alcotest.failf "%s [noopt]: raised %s" name
              (Sedna_util.Error.to_string e))
        cases)

let test_virtual_constructor_avoids_copies () =
  Test_util.with_doc fixture (fun db run ->
      ignore db;
      Sedna_util.Counters.reset Sedna_util.Counters.deep_copies;
      ignore (run {|<wrap>{doc("d")//person}</wrap>|});
      Alcotest.(check int) "no deep copies at top level" 0
        (Sedna_util.Counters.get Sedna_util.Counters.deep_copies);
      (* navigating into a constructor forces materialization *)
      Sedna_util.Counters.reset Sedna_util.Counters.deep_copies;
      ignore (run {|count((<wrap>{doc("d")//person}</wrap>)/person)|});
      Alcotest.(check bool) "navigation forces copies" true
        (Sedna_util.Counters.get Sedna_util.Counters.deep_copies > 0))

let test_schema_path_results () =
  Test_util.with_doc fixture (fun db run ->
      ignore db;
      (* the same query with and without structural extraction *)
      let s = Sedna_db.Session.connect db in
      let q = {|doc("d")/site/people/person/name|} in
      let optimized = run q in
      Sedna_db.Session.set_rewriter_options s Sedna_xquery.Rewriter.no_options;
      Alcotest.(check string) "schema path = plain path" optimized
        (Sedna_db.Session.execute_string s q))

let test_dynamic_errors () =
  Test_util.with_doc fixture (fun _db run ->
      (match run "1 idiv 0" with
       | exception Sedna_util.Error.Sedna_error (Sedna_util.Error.Xquery_dynamic, _) -> ()
       | r -> Alcotest.failf "idiv by zero returned %s" r);
      (match run {|exactly-one(doc("d")//person)|} with
       | exception Sedna_util.Error.Sedna_error (Sedna_util.Error.Xquery_type, _) -> ()
       | r -> Alcotest.failf "exactly-one returned %s" r);
      match run {|("a", "b") + 1|} with
      | exception Sedna_util.Error.Sedna_error (Sedna_util.Error.Xquery_type, _) -> ()
      | r -> Alcotest.failf "multi-item arith returned %s" r)

let suite =
  [
    Alcotest.test_case "query table (optimized)" `Quick runner;
    Alcotest.test_case "query table (unoptimized)" `Quick runner_unoptimized;
    Alcotest.test_case "virtual constructors" `Quick test_virtual_constructor_avoids_copies;
    Alcotest.test_case "schema path equivalence" `Quick test_schema_path_results;
    Alcotest.test_case "dynamic errors" `Quick test_dynamic_errors;
  ]
