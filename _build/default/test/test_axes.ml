(* Property-based axis testing: random documents are loaded into the
   store, and every axis is compared node-by-node against a trivial
   reference DOM implementation. *)

open Sedna_core

(* ---- random document generator ---------------------------------------- *)

type rtree = Elem of string * rtree list | Txt of string

let rec rtree_to_xml = function
  | Txt s -> s
  | Elem (n, kids) ->
    Printf.sprintf "<%s>%s</%s>" n
      (String.concat "" (List.map rtree_to_xml kids))
      n

let doc_gen =
  QCheck.Gen.(
    let name = oneofl [ "a"; "b"; "c"; "d" ] in
    let rec tree depth =
      if depth = 0 then map (fun n -> Elem (n, [])) name
      else
        frequency
          [
            (1, map (fun n -> Elem (n, [])) name);
            (1, return (Txt "t"));
            ( 3,
              map2
                (fun n kids -> Elem (n, kids))
                name
                (list_size (int_range 0 4) (tree (depth - 1))) );
          ]
    in
    map2 (fun n kids -> Elem (n, kids)) name (list_size (int_range 1 5) (tree 3)))

(* adjacent text siblings would merge on reparse: normalize them away
   so the reference and the loaded document agree node-for-node *)
let rec merge_texts (t : rtree) : rtree =
  match t with
  | Txt _ -> t
  | Elem (n, kids) ->
    let rec go = function
      | Txt a :: Txt b :: rest -> go (Txt (a ^ b) :: rest)
      | k :: rest -> merge_texts k :: go rest
      | [] -> []
    in
    Elem (n, go kids)

let arb_doc =
  QCheck.make ~print:(fun t -> rtree_to_xml t)
    (QCheck.Gen.map merge_texts doc_gen)

(* ---- reference axes ------------------------------------------------------ *)

(* nodes identified by their preorder index over the whole tree *)
let flatten (root : rtree) : (int * rtree) list =
  let out = ref [] in
  let ctr = ref 0 in
  let rec go t =
    let id = !ctr in
    incr ctr;
    out := (id, t) :: !out;
    match t with Elem (_, kids) -> List.iter go kids | Txt _ -> ()
  in
  go root;
  List.rev !out

let parent_map (root : rtree) : (int, int) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  let ctr = ref 0 in
  let rec go parent t =
    let id = !ctr in
    incr ctr;
    (match parent with Some p -> Hashtbl.add tbl id p | None -> ());
    match t with Elem (_, kids) -> List.iter (go (Some id)) kids | Txt _ -> ()
  in
  go None root;
  tbl

let ref_axis_counts (root : rtree) :
    (int * int * int * int * int * int) list =
  (* per node (preorder id order):
     children, descendants, ancestors, foll-siblings, following, preceding *)
  let nodes = flatten root in
  let parents = parent_map root in
  let n = List.length nodes in
  let subtree_size = Hashtbl.create 64 in
  let rec size t =
    match t with
    | Txt _ -> 1
    | Elem (_, kids) -> 1 + List.fold_left (fun a k -> a + size k) 0 kids
  in
  List.iter (fun (id, t) -> Hashtbl.add subtree_size id (size t)) nodes;
  let ancestors id =
    let rec go id acc =
      match Hashtbl.find_opt parents id with
      | Some p -> go p (p :: acc)
      | None -> acc
    in
    List.length (go id [])
  in
  List.map
    (fun (id, t) ->
      let kids = match t with Elem (_, k) -> List.length k | Txt _ -> 0 in
      let desc = Hashtbl.find subtree_size id - 1 in
      let anc = ancestors id in
      (* following siblings: siblings with a greater preorder id *)
      let fsib =
        match Hashtbl.find_opt parents id with
        | None -> 0
        | Some p ->
          List.length
            (List.filter
               (fun (cid, _) ->
                 cid > id && Hashtbl.find_opt parents cid = Some p)
               nodes)
      in
      (* following: nodes after id in document order, minus descendants *)
      let following = n - id - 1 - desc in
      (* preceding: nodes before id, minus ancestors *)
      let preceding = id - anc in
      (id, kids) |> fun (id, kids) -> (kids, desc, anc, fsib, following, preceding) |> fun x -> ignore id; x)
    nodes

let prop_axes_match (root : rtree) : bool =
  let ok = ref true in
  Test_util.with_db (fun db ->
      let xml = rtree_to_xml root in
      (* text nodes "t" between elements survive because they are not
         whitespace *)
      ignore (Test_util.load db "d" xml);
      Database.with_txn db (fun txn st ->
          Database.lock_exn db txn ~doc:"d" ~mode:Lock_mgr.Shared;
          let dd = Test_util.doc_desc st "d" in
          let stored =
            List.hd (Node.children st dd)
            :: List.of_seq
                 (Traverse.descendants_walk st (List.hd (Node.children st dd)))
          in
          let expected = ref_axis_counts root in
          if List.length stored <> List.length expected then ok := false
          else
            List.iter2
              (fun d (kids, desc, anc, fsib, following, preceding) ->
                let len seq = Seq.length seq in
                let checks =
                  [
                    ("children", List.length (Node.children st d), kids);
                    ("descendants", len (Traverse.descendants_walk st d), desc);
                    (* the stored tree has a document node above the
                       root element: one extra ancestor *)
                    ("ancestors", len (Traverse.ancestors st d), anc + 1);
                    ("fsib", len (Traverse.following_siblings st d), fsib);
                    ("following", len (Traverse.following st d), following);
                    ("preceding", len (Traverse.preceding st d), preceding);
                  ]
                in
                List.iter
                  (fun (name, got, want) ->
                    if got <> want then begin
                      Printf.printf "axis %s: got %d want %d (doc %s)\n" name
                        got want xml;
                      ok := false
                    end)
                  checks)
              stored expected));
  !ok

(* schema-driven descendant scans agree with walks on random docs *)
let prop_schema_scan_agrees (root : rtree) : bool =
  let ok = ref true in
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "d" (rtree_to_xml root));
      Database.with_txn db (fun txn st ->
          Database.lock_exn db txn ~doc:"d" ~mode:Lock_mgr.Shared;
          let dd = Test_util.doc_desc st "d" in
          List.iter
            (fun nm ->
              let test = Traverse.element_test (Some (Sedna_util.Xname.make nm)) in
              let a =
                List.of_seq (Traverse.descendants_schema st ~test dd)
                |> List.map (fun d -> Node.handle st d)
              in
              let b =
                List.of_seq
                  (Traverse.filter_test st test (Traverse.descendants_walk st dd))
                |> List.map (fun d -> Node.handle st d)
              in
              if not (List.length a = List.length b && List.for_all2 Xptr.equal a b)
              then ok := false)
            [ "a"; "b"; "c"; "d" ]));
  !ok

let suite =
  [
    Test_util.qcheck_case ~count:60 "axes match reference DOM" arb_doc
      prop_axes_match;
    Test_util.qcheck_case ~count:60 "schema scan = walk on random docs" arb_doc
      prop_schema_scan_agrees;
  ]
