(* Node storage tests: bulk loading, navigation, schema-driven scans,
   and structural updates — each followed by the full invariant check
   of Test_util. *)

open Sedna_core

let fig2 =
  {|<library><book><title>Foundations of Databases</title><author>Abiteboul</author><author>Hull</author><author>Vianu</author></book><book><title>An Introduction to Database Systems</title><author>Date</author><issue><publisher>Addison-Wesley</publisher><year>2004</year></issue></book><paper><title>A Relational Model for Large Shared Data Banks</title><author>Codd</author></paper></library>|}

let with_fig2 f =
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "d" fig2);
      Database.with_txn db (fun txn st ->
          Database.lock_exn db txn ~doc:"d" ~mode:Lock_mgr.Exclusive;
          f st))

let names st ds =
  List.map
    (fun d ->
      match Node.name st d with
      | Some n -> Sedna_util.Xname.to_string n
      | None -> Catalog.kind_name (Node.kind st d))
    ds

let test_load_structure () =
  with_fig2 (fun st ->
      Test_util.check_invariants st "d";
      let dd = Test_util.doc_desc st "d" in
      let lib = List.hd (Node.children st dd) in
      Alcotest.(check (list string)) "library children"
        [ "book"; "book"; "paper" ]
        (names st (Node.children st lib));
      let b1 = List.hd (Node.children st lib) in
      Alcotest.(check (list string)) "book1 children"
        [ "title"; "author"; "author"; "author" ]
        (names st (Node.children st b1)))

let test_schema_shape () =
  with_fig2 (fun st ->
      let doc = Catalog.get_document st.Store.cat "d" in
      let root = Catalog.snode_by_id st.Store.cat doc.Catalog.schema_root_id in
      (* descriptive schema: every distinct path appears exactly once *)
      let lib = List.hd root.Catalog.children in
      Alcotest.(check int) "library has 2 element children in schema" 2
        (List.length
           (List.filter
              (fun (s : Catalog.snode) -> s.Catalog.kind = Catalog.Element)
              lib.Catalog.children));
      let book =
        List.find
          (fun (s : Catalog.snode) ->
            match s.Catalog.name with
            | Some n -> Sedna_util.Xname.local n = "book"
            | None -> false)
          lib.Catalog.children
      in
      Alcotest.(check int) "book snode population" 2 book.Catalog.node_count)

let test_schema_scan_order () =
  with_fig2 (fun st ->
      let doc = Catalog.get_document st.Store.cat "d" in
      let root = Catalog.snode_by_id st.Store.cat doc.Catalog.schema_root_id in
      let authors =
        List.find_opt
          (fun (s : Catalog.snode) ->
            match s.Catalog.name with
            | Some n -> Sedna_util.Xname.local n = "author"
            | None -> false)
          (Catalog.schema_descendants root)
      in
      match authors with
      | None -> Alcotest.fail "no author schema node"
      | Some s ->
        let vals =
          List.of_seq (Traverse.scan_snode st s)
          |> List.map (fun d -> Node_ser.string_value st d)
        in
        (* nodes of one schema node come out in document order even
           though they live under different parents *)
        Alcotest.(check (list string)) "authors doc order"
          [ "Abiteboul"; "Hull"; "Vianu"; "Date" ]
          vals)

let test_descendants_schema_vs_walk () =
  (* the schema-driven descendant scan and the pointer walk agree *)
  Test_util.with_db (fun db ->
      let events =
        Sedna_workloads.Generators.auction ~items:30 ~people:20 ~auctions:15 ()
      in
      ignore (Test_util.load_events db "a" events);
      Database.with_txn db (fun txn st ->
          Database.lock_exn db txn ~doc:"a" ~mode:Lock_mgr.Exclusive;
          let dd = Test_util.doc_desc st "a" in
          List.iter
            (fun nm ->
              let test =
                Traverse.element_test (Some (Sedna_util.Xname.make nm))
              in
              let via_schema =
                List.of_seq (Traverse.descendants_schema st ~test dd)
              in
              let via_walk =
                List.of_seq
                  (Traverse.filter_test st test (Traverse.descendants_walk st dd))
              in
              Alcotest.(check int)
                (nm ^ " counts agree")
                (List.length via_walk) (List.length via_schema);
              List.iter2
                (fun a b ->
                  Alcotest.(check bool) "same node" true
                    (Xptr.equal (Node.handle st a) (Node.handle st b)))
                via_schema via_walk)
            [ "item"; "bidder"; "name"; "listitem" ]))

let test_middle_insert_order () =
  with_fig2 (fun st ->
      let dd = Test_util.doc_desc st "d" in
      let lib = List.hd (Node.children st dd) in
      let kids = Node.children st lib in
      let b1 = List.nth kids 0 and b2 = List.nth kids 1 in
      (* insert 50 books between book1 and book2 *)
      let left = ref (Node.handle st b1) in
      let right = Node.handle st b2 in
      for i = 1 to 50 do
        let h =
          Update_ops.insert_child st ~parent_handle:(Node.handle st lib)
            ~left:(Some !left) ~right:(Some right) ~kind:Catalog.Element
            ~name:(Some (Sedna_util.Xname.make "book"))
            ~value:None
        in
        ignore i;
        left := h
      done;
      Test_util.check_invariants st "d";
      let lib = List.hd (Node.children st (Test_util.doc_desc st "d")) in
      Alcotest.(check int) "children" 53 (List.length (Node.children st lib)))

let test_block_split_preserves_order () =
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "d" "<root><x>0</x><x>1</x></root>");
      Database.with_txn db (fun txn st ->
          Database.lock_exn db txn ~doc:"d" ~mode:Lock_mgr.Exclusive;
          let root () =
            List.hd (Node.children st (Test_util.doc_desc st "d"))
          in
          (* repeatedly insert right after the first x: forces splits in
             the middle of the chain *)
          let first () = List.hd (Node.children st (root ())) in
          for i = 0 to 400 do
            let f = first () in
            ignore
              (Update_ops.insert_child st
                 ~parent_handle:(Node.handle st (root ()))
                 ~left:(Some (Node.handle st f))
                 ~right:None ~kind:Catalog.Element
                 ~name:(Some (Sedna_util.Xname.make "x"))
                 ~value:None);
            if i mod 100 = 0 then Test_util.check_invariants st "d"
          done;
          Test_util.check_invariants st "d";
          Alcotest.(check int) "children" 403
            (List.length (Node.children st (root ())))))

let test_widening () =
  Test_util.with_db (fun db ->
      (* a parent acquires children of many new schema kinds after load:
         each new kind forces the delayed widening relocation *)
      ignore (Test_util.load db "d" "<root><p/><p/><p/></root>");
      Database.with_txn db (fun txn st ->
          Database.lock_exn db txn ~doc:"d" ~mode:Lock_mgr.Exclusive;
          let root = List.hd (Node.children st (Test_util.doc_desc st "d")) in
          (* capture handles, not descriptor addresses: relocations
             during widening invalidate direct pointers (paper §4.1.2) *)
          let phs = List.map (Node.handle st) (Node.children st root) in
          List.iteri
            (fun pi ph ->
              for k = 0 to 9 do
                let prev =
                  match List.rev (Node.children st (Node.by_handle st ph)) with
                  | [] -> None
                  | last :: _ -> Some (Node.handle st last)
                in
                ignore
                  (Update_ops.insert_child st ~parent_handle:ph ~left:prev
                     ~right:None ~kind:Catalog.Element
                     ~name:(Some (Sedna_util.Xname.make (Printf.sprintf "k%d%d" pi k)))
                     ~value:None)
              done)
            phs;
          Test_util.check_invariants st "d";
          List.iter
            (fun p ->
              Alcotest.(check int) "10 children" 10
                (List.length (Node.children st p)))
            (Node.children st (List.hd (Node.children st (Test_util.doc_desc st "d"))))))

let test_relocation_counts () =
  (* relocation = O(1) descriptor fields, independent of fan-out *)
  Test_util.with_db (fun db ->
      let mk_events fanout =
        (* two child kinds fill the root's slots: the insertion of a
           third kind below forces the widening relocation *)
        Sedna_workloads.Generators.wide ~kinds:2 ~children:fanout ()
      in
      let fields_for fanout =
        let name = Printf.sprintf "w%d" fanout in
        ignore (Test_util.load_events db name (mk_events fanout));
        Database.with_txn db (fun txn st ->
            Database.lock_exn db txn ~doc:name ~mode:Lock_mgr.Exclusive;
            let root = List.hd (Node.children st (Test_util.doc_desc st name)) in
            Sedna_util.Counters.reset Sedna_util.Counters.fields_updated;
            Sedna_util.Counters.reset Sedna_util.Counters.node_moved;
            ignore
              (Update_ops.insert_child st ~parent_handle:(Node.handle st root)
                 ~left:None ~right:None ~kind:Catalog.Element
                 ~name:(Some (Sedna_util.Xname.make "brandnew"))
                 ~value:None);
            let moved = Sedna_util.Counters.get Sedna_util.Counters.node_moved in
            let fields = Sedna_util.Counters.get Sedna_util.Counters.fields_updated in
            Alcotest.(check bool)
              (Printf.sprintf "widening relocated the root (fanout %d)" fanout)
              true (moved > 0);
            fields / moved)
      in
      let small = fields_for 5 in
      let large = fields_for 500 in
      Alcotest.(check int) "per-move fields independent of fan-out" small large;
      Alcotest.(check bool) "constant and small" true (small <= 4))

let test_delete_subtree () =
  with_fig2 (fun st ->
      let dd = Test_util.doc_desc st "d" in
      let lib = List.hd (Node.children st dd) in
      let kids = Node.children st lib in
      let b2 = List.nth kids 1 in
      Update_ops.delete_node st (Node.handle st b2);
      Test_util.check_invariants st "d";
      let lib = List.hd (Node.children st (Test_util.doc_desc st "d")) in
      Alcotest.(check (list string)) "after delete" [ "book"; "paper" ]
        (names st (Node.children st lib)))

let test_set_text_value () =
  with_fig2 (fun st ->
      let dd = Test_util.doc_desc st "d" in
      let title =
        List.of_seq
          (Traverse.descendants_schema st
             ~test:(Traverse.element_test (Some (Sedna_util.Xname.make "title")))
             dd)
        |> List.hd
      in
      let text = List.hd (Node.children st title) in
      Update_ops.set_text_value st (Node.handle st text) "New Title Text";
      Alcotest.(check string) "updated" "New Title Text"
        (Node_ser.string_value st title);
      (* grow it past the inline page capacity *)
      let big = String.make 50_000 'z' in
      Update_ops.set_text_value st (Node.handle st text) big;
      Alcotest.(check string) "big value" big (Node_ser.string_value st title);
      Test_util.check_invariants st "d")

let test_serializer_roundtrip () =
  Test_util.with_db (fun db ->
      let src = Sedna_workloads.Generators.library ~books:40 () in
      ignore (Test_util.load_events db "d" src);
      Database.with_txn db (fun txn st ->
          Database.lock_exn db txn ~doc:"d" ~mode:Lock_mgr.Shared;
          let dd = Test_util.doc_desc st "d" in
          let out = Node_ser.to_string st dd in
          let expect = Sedna_xml.Serializer.to_string src in
          Alcotest.(check string) "store round trip" expect out))

let test_axes_vs_reference () =
  with_fig2 (fun st ->
      let dd = Test_util.doc_desc st "d" in
      let all = List.of_seq (Traverse.descendants_walk st dd) in
      (* following/preceding partition the document for any node *)
      List.iter
        (fun n ->
          let f = List.of_seq (Traverse.following st n) in
          let p = List.of_seq (Traverse.preceding st n) in
          let anc = List.of_seq (Traverse.ancestors st n) in
          let desc = List.of_seq (Traverse.descendants_walk st n) in
          let total =
            List.length f + List.length p + List.length anc + List.length desc
            + 1
          in
          Alcotest.(check int) "partition" (List.length all + 1) total)
        (List.filteri (fun i _ -> i mod 3 = 0) all))

let test_deep_document () =
  Test_util.with_db (fun db ->
      let events = Sedna_workloads.Generators.deep ~depth:120 () in
      ignore (Test_util.load_events db "deep" events);
      Database.with_txn db (fun txn st ->
          Database.lock_exn db txn ~doc:"deep" ~mode:Lock_mgr.Shared;
          Test_util.check_invariants st "deep";
          let dd = Test_util.doc_desc st "deep" in
          let leafs =
            List.of_seq
              (Traverse.descendants_schema st
                 ~test:(Traverse.element_test (Some (Sedna_util.Xname.make "leaf")))
                 dd)
          in
          Alcotest.(check int) "one leaf" 1 (List.length leafs);
          let leaf = List.hd leafs in
          Alcotest.(check int) "ancestors" 122
            (List.length (List.of_seq (Traverse.ancestors st leaf)))))

let suite =
  [
    Alcotest.test_case "load structure" `Quick test_load_structure;
    Alcotest.test_case "schema shape" `Quick test_schema_shape;
    Alcotest.test_case "schema scan order" `Quick test_schema_scan_order;
    Alcotest.test_case "schema scan = walk" `Quick test_descendants_schema_vs_walk;
    Alcotest.test_case "middle insert order" `Quick test_middle_insert_order;
    Alcotest.test_case "block split order" `Quick test_block_split_preserves_order;
    Alcotest.test_case "delayed widening" `Quick test_widening;
    Alcotest.test_case "relocation O(1) fields" `Quick test_relocation_counts;
    Alcotest.test_case "delete subtree" `Quick test_delete_subtree;
    Alcotest.test_case "set text value" `Quick test_set_text_value;
    Alcotest.test_case "serializer roundtrip" `Quick test_serializer_roundtrip;
    Alcotest.test_case "axis partition" `Quick test_axes_vs_reference;
    Alcotest.test_case "deep document" `Quick test_deep_document;
  ]
