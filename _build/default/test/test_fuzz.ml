(* Randomized structural-update fuzzing: a script of inserts, deletes
   and value updates runs both against the page store and against a
   trivial in-memory reference DOM; after every script the serialized
   documents must match and the storage invariants must hold.

   This is the deepest correctness net in the suite: it exercises block
   splits, widening relocations, sibling rewiring, label allocation and
   text-store churn in combinations no hand-written test covers. *)

open Sedna_core

(* ---- reference DOM ------------------------------------------------- *)

type rnode = {
  mutable rname : string;
  mutable rtext : string option; (* Some = text node *)
  mutable rkids : rnode list;
}

let rec rserialize (n : rnode) : string =
  match n.rtext with
  | Some t -> Sedna_xml.Escape.escape_text t
  | None ->
    Printf.sprintf "<%s>%s</%s>" n.rname
      (String.concat "" (List.map rserialize n.rkids))
      n.rname

(* ---- scripts --------------------------------------------------------- *)

type op =
  | Insert_elem of int * int * int (* parent pick, position pick, name pick *)
  | Insert_text of int * int * int (* parent pick, position pick, value pick *)
  | Delete of int (* node pick (never the root) *)
  | Set_text of int * int (* text-node pick, value pick *)

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map3 (fun a b c -> Insert_elem (a, b, c)) small_nat small_nat (int_range 0 5));
        (3, map3 (fun a b c -> Insert_text (a, b, c)) small_nat small_nat (int_range 0 7));
        (2, map (fun a -> Delete a) small_nat);
        (2, map2 (fun a b -> Set_text (a, b)) small_nat (int_range 0 7));
      ])

let arb_script =
  QCheck.make
    ~print:(fun ops -> Printf.sprintf "<script of %d ops>" (List.length ops))
    QCheck.Gen.(list_size (int_range 1 60) op_gen)

let names = [| "a"; "b"; "c"; "d"; "e"; "f" |]
let texts = [| "x"; "hello"; "42"; ""; "some longer text value"; "<&>"; "t"; "zz" |]

(* ---- applying a script to both stores --------------------------------- *)

(* enumerate reference element nodes in document order (root first) *)
let rec relements (n : rnode) : rnode list =
  if n.rtext <> None then []
  else n :: List.concat_map relements n.rkids

let rec rtexts (n : rnode) : rnode list =
  match n.rtext with
  | Some _ -> [ n ]
  | None -> List.concat_map rtexts n.rkids

(* find-and-remove a node from its reference parent *)
let rec rdelete (root : rnode) (target : rnode) : bool =
  if List.memq target root.rkids then begin
    root.rkids <- List.filter (fun k -> k != target) root.rkids;
    true
  end
  else List.exists (fun k -> rdelete k target) root.rkids

(* storage-side node enumeration in document order *)
let stored_elements st root_desc =
  root_desc :: List.of_seq (Traverse.descendants_walk st root_desc)
  |> List.filter (fun d -> Node.kind st d = Catalog.Element)

let stored_texts st root_desc =
  List.of_seq (Traverse.descendants_walk st root_desc)
  |> List.filter (fun d -> Node.kind st d = Catalog.Text)

let apply_op (st : Store.t) (rroot : rnode) (sroot : unit -> Node.desc)
    (op : op) : unit =
  match op with
  | Insert_elem (ppick, pos, npick) ->
    let relems = relements rroot in
    let parent_idx = ppick mod List.length relems in
    let rparent = List.nth relems parent_idx in
    let sparent = List.nth (stored_elements st (sroot ())) parent_idx in
    let kids = rparent.rkids in
    let pos = pos mod (List.length kids + 1) in
    let name = names.(npick mod Array.length names) in
    let fresh = { rname = name; rtext = None; rkids = [] } in
    rparent.rkids <-
      (let rec ins i = function
         | rest when i = 0 -> fresh :: rest
         | [] -> [ fresh ]
         | k :: rest -> k :: ins (i - 1) rest
       in
       ins pos kids);
    (* storage side: left = (pos-1)-th child, right = pos-th *)
    let skids = Node.children st sparent in
    let left = if pos = 0 then None else Some (Node.handle st (List.nth skids (pos - 1))) in
    let right =
      if pos < List.length skids then Some (Node.handle st (List.nth skids pos))
      else None
    in
    ignore
      (Update_ops.insert_child st ~parent_handle:(Node.handle st sparent)
         ~left ~right ~kind:Catalog.Element
         ~name:(Some (Sedna_util.Xname.make name))
         ~value:None)
  | Insert_text (ppick, pos, vpick) ->
    let relems = relements rroot in
    let parent_idx = ppick mod List.length relems in
    let rparent = List.nth relems parent_idx in
    let sparent = List.nth (stored_elements st (sroot ())) parent_idx in
    (* avoid adjacent text nodes: the storage does not merge them, and
       neither does the reference, but serialization would differ from
       a reparse; keep them — both sides serialize the same way *)
    let kids = rparent.rkids in
    let pos = pos mod (List.length kids + 1) in
    let value = texts.(vpick mod Array.length texts) in
    if value <> "" then begin
      let fresh = { rname = ""; rtext = Some value; rkids = [] } in
      rparent.rkids <-
        (let rec ins i = function
           | rest when i = 0 -> fresh :: rest
           | [] -> [ fresh ]
           | k :: rest -> k :: ins (i - 1) rest
         in
         ins pos kids);
      let skids = Node.children st sparent in
      let left =
        if pos = 0 then None else Some (Node.handle st (List.nth skids (pos - 1)))
      in
      let right =
        if pos < List.length skids then Some (Node.handle st (List.nth skids pos))
        else None
      in
      ignore
        (Update_ops.insert_child st ~parent_handle:(Node.handle st sparent)
           ~left ~right ~kind:Catalog.Text ~name:None ~value:(Some value))
    end
  | Delete pick ->
    let relems = relements rroot in
    if List.length relems > 1 then begin
      let idx = 1 + (pick mod (List.length relems - 1)) in
      let rtarget = List.nth relems idx in
      let starget = List.nth (stored_elements st (sroot ())) idx in
      ignore (rdelete rroot rtarget);
      Update_ops.delete_node st (Node.handle st starget)
    end
  | Set_text (pick, vpick) ->
    let rts = rtexts rroot in
    if rts <> [] then begin
      let idx = pick mod List.length rts in
      let rtarget = List.nth rts idx in
      let starget = List.nth (stored_texts st (sroot ())) idx in
      let value = texts.(vpick mod Array.length texts) in
      let value = if value = "" then "nonempty" else value in
      rtarget.rtext <- Some value;
      Update_ops.set_text_value st (Node.handle st starget) value
    end

(* expand "<a/>" to "<a></a>" so both serializations compare equal;
   the fuzz documents carry no attributes, so the tag body is a name *)
let normalize (s : string) : string =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '<' then
       match String.index_from_opt s !i '>' with
       | Some j when j > !i + 1 && s.[j - 1] = '/' ->
         let name = String.sub s (!i + 1) (j - !i - 2) in
         Buffer.add_string buf ("<" ^ name ^ "></" ^ name ^ ">");
         i := j + 1
       | _ ->
         Buffer.add_char buf s.[!i];
         incr i
     else begin
       Buffer.add_char buf s.[!i];
       incr i
     end)
  done;
  Buffer.contents buf

let prop_script_matches_reference (ops : op list) : bool =
  let result = ref true in
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "f" "<root></root>");
      Database.with_txn db (fun txn st ->
          Database.lock_exn db txn ~doc:"f" ~mode:Lock_mgr.Exclusive;
          let rroot = { rname = "root"; rtext = None; rkids = [] } in
          let sroot () =
            List.hd (Node.children st (Test_util.doc_desc st "f"))
          in
          List.iter (fun op -> apply_op st rroot sroot op) ops;
          Test_util.check_invariants st "f";
          let stored = normalize (Node_ser.to_string st (sroot ())) in
          let expected = normalize (rserialize rroot) in
          if stored <> expected then begin
            Printf.printf "MISMATCH\n  stored:   %s\n  expected: %s\n" stored
              expected;
            result := false
          end));
  !result

let suite =
  [
    Test_util.qcheck_case ~count:80 "random update scripts match reference DOM"
      arb_script prop_script_matches_reference;
  ]
