(* Session, governor, DDL, collections and index tests. *)

open Sedna_core

let test_autocommit_isolation () =
  Test_util.with_db (fun db ->
      ignore (Test_util.exec db {|CREATE DOCUMENT "d"|});
      ignore (Test_util.exec db {|UPDATE insert <a><b>1</b></a> into doc("d")|});
      Alcotest.(check string) "visible" "1" (Test_util.exec db {|string(doc("d")//b)|}))

let test_collections () =
  Test_util.with_db (fun db ->
      ignore (Test_util.exec db {|CREATE COLLECTION "col"|});
      ignore (Test_util.exec db {|CREATE DOCUMENT "d1" IN COLLECTION "col"|});
      ignore (Test_util.exec db {|CREATE DOCUMENT "d2" IN COLLECTION "col"|});
      ignore (Test_util.exec db {|UPDATE insert <x>1</x> into doc("d1")|});
      ignore (Test_util.exec db {|UPDATE insert <x>2</x> into doc("d2")|});
      Alcotest.(check string) "collection()" "2"
        (Test_util.exec db {|count(collection("col")//x)|});
      ignore (Test_util.exec db {|DROP COLLECTION "col"|});
      Alcotest.(check bool) "docs gone" true
        (Catalog.find_document (Database.catalog db) "d1" = None))

let test_drop_document () =
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "d" "<a><b/></a>");
      let before = Catalog.schema_size
          (Catalog.snode_by_id (Database.catalog db)
             (Catalog.get_document (Database.catalog db) "d").Catalog.schema_root_id)
      in
      Alcotest.(check bool) "schema built" true (before >= 3);
      ignore (Test_util.exec db {|DROP DOCUMENT "d"|});
      Alcotest.(check bool) "document gone" true
        (Catalog.find_document (Database.catalog db) "d" = None);
      (match Test_util.exec db {|doc("d")|} with
       | exception Sedna_util.Error.Sedna_error (Sedna_util.Error.No_such_document, _) -> ()
       | r -> Alcotest.failf "doc() on dropped document returned %s" r))

let test_governor () =
  let g = Sedna_db.Governor.create () in
  let dir = Test_util.fresh_dir () in
  ignore (Sedna_db.Governor.create_database g ~name:"main" ~dir);
  let _id, s = Sedna_db.Governor.connect g ~database:"main" in
  ignore (Sedna_db.Session.execute s {|CREATE DOCUMENT "d"|});
  Alcotest.(check int) "one session" 1 (Sedna_db.Governor.session_count g);
  let id2, s2 = Sedna_db.Governor.connect g ~database:"main" in
  Sedna_db.Session.begin_txn s2;
  (* disconnecting rolls back the open transaction *)
  Sedna_db.Governor.disconnect g id2;
  Alcotest.(check int) "one session again" 1 (Sedna_db.Governor.session_count g);
  (match Sedna_db.Governor.connect g ~database:"nope" with
   | exception Sedna_util.Error.Sedna_error (Sedna_util.Error.No_such_document, _) -> ()
   | _ -> Alcotest.fail "connect to unknown database succeeded");
  Sedna_db.Governor.shutdown g;
  Alcotest.(check int) "no sessions" 0 (Sedna_db.Governor.session_count g)

let test_multi_statement_txn () =
  Test_util.with_db (fun db ->
      ignore (Test_util.load db "d" "<a><n>0</n></a>");
      let s = Sedna_db.Session.connect db in
      Sedna_db.Session.begin_txn s;
      ignore (Sedna_db.Session.execute s {|UPDATE replace $n in doc("d")/a/n with <n>1</n>|});
      (* the same transaction reads its own write *)
      Alcotest.(check string) "read own write" "1"
        (Sedna_db.Session.execute_string s {|string(doc("d")/a/n)|});
      ignore (Sedna_db.Session.execute s {|UPDATE insert <m/> into doc("d")/a|});
      Sedna_db.Session.commit s;
      Alcotest.(check string) "both applied" "1 1"
        (Test_util.exec db {|(string(doc("d")/a/n), count(doc("d")/a/m))|}))

(* ---- indexes ---------------------------------------------------------- *)

let test_index_lifecycle () =
  Test_util.with_db (fun db ->
      let events = Sedna_workloads.Generators.library ~books:80 () in
      ignore (Test_util.load_events db "lib" events);
      ignore
        (Test_util.exec db
           {|CREATE INDEX "price" ON doc("lib")/library/book BY price AS xs:integer|});
      (* point lookup returns the same books as a scan *)
      let via_scan =
        Test_util.exec db {|count(doc("lib")/library/book[price = 50])|}
      in
      let via_index = Test_util.exec db {|count(index-scan("price", 50))|} in
      Alcotest.(check string) "index agrees with scan" via_scan via_index;
      (* range scan *)
      let ge90_scan = Test_util.exec db {|count(doc("lib")//book[price >= 90])|} in
      let ge90_idx = Test_util.exec db {|count(index-scan("price", 90, "GE"))|} in
      Alcotest.(check string) "range agrees" ge90_scan ge90_idx;
      ignore (Test_util.exec db {|DROP INDEX "price"|});
      match Test_util.exec db {|index-scan("price", 50)|} with
      | exception Sedna_util.Error.Sedna_error (Sedna_util.Error.No_such_index, _) -> ()
      | r -> Alcotest.failf "dropped index still answered: %s" r)

let test_index_maintenance () =
  Test_util.with_db (fun db ->
      ignore
        (Test_util.load db "s"
           {|<shop><it><nm>apple</nm></it><it><nm>pear</nm></it></shop>|});
      ignore
        (Test_util.exec db
           {|CREATE INDEX "nm" ON doc("s")/shop/it BY nm AS xs:string|});
      Alcotest.(check string) "initial" "1"
        (Test_util.exec db {|count(index-scan("nm", "apple"))|});
      (* insert a new item: the index sees it *)
      ignore
        (Test_util.exec db {|UPDATE insert <it><nm>apple</nm></it> into doc("s")/shop|});
      Alcotest.(check string) "after insert" "2"
        (Test_util.exec db {|count(index-scan("nm", "apple"))|});
      (* delete one: entry removed *)
      ignore (Test_util.exec db {|UPDATE delete doc("s")/shop/it[1]|});
      Alcotest.(check string) "after delete" "1"
        (Test_util.exec db {|count(index-scan("nm", "apple"))|});
      Alcotest.(check string) "pear untouched" "1"
        (Test_util.exec db {|count(index-scan("nm", "pear"))|}))

let test_index_survives_restart () =
  let dir = Test_util.fresh_dir () in
  let db = Database.create dir in
  ignore (Test_util.load db "s" {|<shop><it><nm>kiwi</nm></it></shop>|});
  ignore
    (Test_util.exec db {|CREATE INDEX "nm" ON doc("s")/shop/it BY nm AS xs:string|});
  Database.close db;
  let db2 = Database.open_existing dir in
  Alcotest.(check string) "index after restart" "1"
    (Test_util.exec db2 {|count(index-scan("nm", "kiwi"))|});
  Database.close db2

let suite =
  [
    Alcotest.test_case "autocommit" `Quick test_autocommit_isolation;
    Alcotest.test_case "collections" `Quick test_collections;
    Alcotest.test_case "drop document" `Quick test_drop_document;
    Alcotest.test_case "governor" `Quick test_governor;
    Alcotest.test_case "multi-statement txn" `Quick test_multi_statement_txn;
    Alcotest.test_case "index lifecycle" `Quick test_index_lifecycle;
    Alcotest.test_case "index maintenance" `Quick test_index_maintenance;
    Alcotest.test_case "index survives restart" `Quick test_index_survives_restart;
  ]
