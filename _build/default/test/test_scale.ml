(* A moderate-scale integration pass: tens of thousands of nodes,
   mixed queries, updates, persistence across close/reopen, and a final
   integrity check — the whole stack under one roof. *)

open Sedna_core

let test_scale () =
  let dir = Test_util.fresh_dir () in
  let db = Database.create ~buffer_frames:512 dir in
  let events =
    Sedna_workloads.Generators.auction ~items:500 ~people:400 ~auctions:300 ()
  in
  let _, nodes = Test_util.load_events db "a" events in
  Alcotest.(check bool) "tens of thousands of nodes" true (nodes > 20_000);
  (* the document spans many pages and several layers' worth of blocks *)
  let exec q = Test_util.exec db q in
  let items = exec {|count(doc("a")/site/regions/namerica/item)|} in
  Alcotest.(check string) "items" "500" items;
  let bidders = int_of_string (exec {|count(doc("a")//bidder)|}) in
  Alcotest.(check bool) "bidders populated" true (bidders > 300);
  (* index over a numeric field *)
  ignore
    (exec
       {|CREATE INDEX "qty" ON doc("a")/site/regions/namerica/item BY quantity AS xs:integer|});
  let by_scan = exec {|count(doc("a")//item[quantity = 3])|} in
  let by_index = exec {|count(index-scan("qty", 3))|} in
  Alcotest.(check string) "index agrees at scale" by_scan by_index;
  (* a batch of updates *)
  ignore (exec {|UPDATE delete doc("a")//item[quantity = 1]|});
  Alcotest.(check string) "index reflects the deletions" "0"
    (exec {|count(index-scan("qty", 1))|});
  let left = exec {|count(doc("a")//item)|} in
  ignore
    (exec {|UPDATE insert <audited/> into doc("a")/site/open_auctions/open_auction[bidder]|});
  (* persistence across close/reopen *)
  Database.close db;
  let db2 = Database.open_existing ~buffer_frames:512 dir in
  Alcotest.(check string) "item count stable" left
    (Test_util.exec db2 {|count(doc("a")//item)|});
  let audited = int_of_string (Test_util.exec db2 {|count(doc("a")//audited)|}) in
  Alcotest.(check bool) "audited inserted everywhere" true (audited > 200);
  Database.with_txn db2 (fun txn st ->
      Database.lock_exn db2 txn ~doc:"a" ~mode:Lock_mgr.Shared;
      Test_util.check_invariants st "a");
  Database.close db2

let test_many_documents () =
  Test_util.with_db (fun db ->
      for i = 1 to 40 do
        ignore
          (Test_util.load db
             (Printf.sprintf "doc%02d" i)
             (Printf.sprintf "<d n=\"%d\"><v>%d</v></d>" i (i * i)))
      done;
      Alcotest.(check int) "catalog holds all" 40
        (List.length (Catalog.document_names (Database.catalog db)));
      Alcotest.(check string) "query across picks the right one" "625"
        (Test_util.exec db {|string(doc("doc25")//v)|});
      ignore (Test_util.exec db {|DROP DOCUMENT "doc13"|});
      Alcotest.(check int) "one fewer" 39
        (List.length (Catalog.document_names (Database.catalog db)));
      (* the others are untouched *)
      Alcotest.(check string) "neighbours fine" "144 196"
        (Test_util.exec db
           {|(string(doc("doc12")//v), string(doc("doc14")//v))|}))

let suite =
  [
    Alcotest.test_case "auction at scale" `Slow test_scale;
    Alcotest.test_case "many documents" `Quick test_many_documents;
  ]
