(* Regex engine tests (fn:matches / fn:replace / fn:tokenize). *)

module Rx = Sedna_engine.Rx

let m pattern s = Rx.matches ~pattern s

let test_literals () =
  Alcotest.(check bool) "substring" true (m "ana" "banana");
  Alcotest.(check bool) "absent" false (m "xyz" "banana");
  Alcotest.(check bool) "empty pattern matches" true (m "" "anything")

let test_anchors () =
  Alcotest.(check bool) "^ hit" true (m "^ban" "banana");
  Alcotest.(check bool) "^ miss" false (m "^ana" "banana");
  Alcotest.(check bool) "$ hit" true (m "ana$" "banana");
  Alcotest.(check bool) "$ miss" false (m "ban$" "banana");
  Alcotest.(check bool) "full anchor" true (m "^banana$" "banana")

let test_classes () =
  Alcotest.(check bool) "digit" true (m "\\d+" "abc123");
  Alcotest.(check bool) "no digit" false (m "\\d" "abcdef");
  Alcotest.(check bool) "word" true (m "^\\w+$" "ab_9");
  Alcotest.(check bool) "space" true (m "\\s" "a b");
  Alcotest.(check bool) "range" true (m "^[a-f]+$" "cafe");
  Alcotest.(check bool) "range miss" false (m "^[a-f]+$" "cafeX");
  Alcotest.(check bool) "negated" true (m "^[^0-9]+$" "hello");
  Alcotest.(check bool) "negated miss" false (m "^[^0-9]+$" "hel1o");
  Alcotest.(check bool) "class with escape" true (m "^[\\d-]+$" "12-34")

let test_quantifiers () =
  Alcotest.(check bool) "star empty" true (m "^a*$" "");
  Alcotest.(check bool) "star many" true (m "^a*$" "aaaa");
  Alcotest.(check bool) "plus needs one" false (m "^a+$" "");
  Alcotest.(check bool) "opt" true (m "^colou?r$" "color");
  Alcotest.(check bool) "opt 2" true (m "^colou?r$" "colour");
  Alcotest.(check bool) "bounded exact" true (m "^a{3}$" "aaa");
  Alcotest.(check bool) "bounded miss" false (m "^a{3}$" "aa");
  Alcotest.(check bool) "bounded range" true (m "^a{2,4}$" "aaa");
  Alcotest.(check bool) "bounded open" true (m "^a{2,}$" "aaaaa");
  Alcotest.(check bool) "dot" true (m "^a.c$" "abc")

let test_alternation_groups () =
  Alcotest.(check bool) "alt" true (m "^(cat|dog)$" "dog");
  Alcotest.(check bool) "alt miss" false (m "^(cat|dog)$" "cow");
  Alcotest.(check bool) "group repeat" true (m "^(ab)+$" "ababab");
  Alcotest.(check bool) "nested" true (m "^(a(b|c))+$" "abacab")

let test_replace () =
  let r p rep s = Rx.replace ~pattern:p ~replacement:rep s in
  Alcotest.(check string) "simple" "bXnXnX" (r "a" "X" "banana");
  Alcotest.(check string) "digits" "n-n" (r "[0-9]+" "n" "12-345");
  Alcotest.(check string) "group ref" "[b]anana" (r "^(b)" "[$1]" "banana");
  Alcotest.(check string) "swap" "world hello"
    (r "^(\\w+) (\\w+)$" "$2 $1" "hello world");
  Alcotest.(check string) "no match" "same" (r "zz" "yy" "same")

let test_tokenize () =
  let t p s = Rx.tokenize ~pattern:p s in
  Alcotest.(check (list string)) "csv" [ "a"; "b"; "c" ] (t "," "a,b,c");
  Alcotest.(check (list string)) "ws" [ "the"; "quick"; "fox" ]
    (t "\\s+" "the  quick\tfox");
  Alcotest.(check (list string)) "empty fields" [ "a"; ""; "b" ] (t "," "a,,b");
  Alcotest.(check (list string)) "no separator" [ "abc" ] (t "," "abc");
  Alcotest.(check (list string)) "empty input" [] (t "," "")

let test_errors () =
  (match m "(unclosed" "x" with
   | exception Sedna_util.Error.Sedna_error (Sedna_util.Error.Xquery_dynamic, _) -> ()
   | _ -> Alcotest.fail "unclosed group accepted");
  match m "*bad" "x" with
  | exception Sedna_util.Error.Sedna_error (Sedna_util.Error.Xquery_dynamic, _) -> ()
  | _ -> Alcotest.fail "leading * accepted"

let test_via_xquery () =
  Test_util.with_doc {|<r><w>apple pie</w><w>banana</w></r>|} (fun _db run ->
      Alcotest.(check string) "matches in query" "1"
        (run {|count(doc("d")//w[matches(., "^a")])|});
      Alcotest.(check string) "replace in query" "APPLE pie"
        (run {|replace(string(doc("d")//w[1]), "apple", "APPLE")|});
      Alcotest.(check string) "tokenize in query" "apple pie"
        (run {|string-join(tokenize(string(doc("d")//w[1]), "\s+"), " ")|}))

let suite =
  [
    Alcotest.test_case "literals" `Quick test_literals;
    Alcotest.test_case "anchors" `Quick test_anchors;
    Alcotest.test_case "classes" `Quick test_classes;
    Alcotest.test_case "quantifiers" `Quick test_quantifiers;
    Alcotest.test_case "alternation/groups" `Quick test_alternation_groups;
    Alcotest.test_case "replace" `Quick test_replace;
    Alcotest.test_case "tokenize" `Quick test_tokenize;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "via xquery" `Quick test_via_xquery;
  ]
