(* Timing and reporting helpers shared by all experiments.

   Wall-clock measurements use repeated runs with a warmup and report
   the median; counter-based measurements (disk reads, buffer faults,
   fields updated) come from Sedna_util.Counters and are exact. *)

let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  (t1 -. t0, r)

(* median wall time over [runs] executions (after one warmup) *)
let time_median ?(runs = 5) f =
  ignore (f ());
  let samples =
    List.init runs (fun _ ->
        let d, _ = time_once f in
        d)
  in
  let sorted = List.sort compare samples in
  List.nth sorted (runs / 2)

let ms t = t *. 1000.0

let pf = Printf.printf

let header title claim =
  pf "\n==============================================================\n";
  pf "%s\n" title;
  pf "  claim: %s\n" claim;
  pf "--------------------------------------------------------------\n"

let row3 a b c = pf "  %-34s %14s %14s\n" a b c
let row4 a b c d = pf "  %-26s %12s %12s %14s\n" a b c d

let fresh_db ?(buffer_frames = 1024) () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sedna-bench-%d-%f" (Unix.getpid ()) (Unix.gettimeofday ()))
  in
  if Sys.file_exists dir then ignore (Sys.command ("rm -rf " ^ Filename.quote dir));
  Sedna_core.Database.create ~buffer_frames dir

let load_events db name events =
  Sedna_core.Database.with_txn db (fun txn st ->
      Sedna_core.Database.lock_exn db txn ~doc:name
        ~mode:Sedna_core.Lock_mgr.Exclusive;
      Sedna_core.Loader.load_events st ~doc_name:name events)

let session ?opts db =
  let s = Sedna_db.Session.connect db in
  (match opts with
   | Some o -> Sedna_db.Session.set_rewriter_options s o
   | None -> ());
  s

let exec s q = Sedna_db.Session.execute_string s q

(* run under a cold buffer: drop every frame first, count disk reads *)
let cold_reads db f =
  Sedna_core.Buffer_mgr.flush_all (Sedna_core.Database.buffer db);
  Sedna_core.Buffer_mgr.drop_all (Sedna_core.Database.buffer db);
  Sedna_util.Counters.reset Sedna_util.Counters.page_reads;
  let r = f () in
  (Sedna_util.Counters.get Sedna_util.Counters.page_reads, r)

let counter_during name f =
  Sedna_util.Counters.reset name;
  let r = f () in
  (Sedna_util.Counters.get name, r)
