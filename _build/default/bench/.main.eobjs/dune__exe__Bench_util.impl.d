bench/bench_util.ml: Filename List Printf Sedna_core Sedna_db Sedna_util Sys Unix
