bench/main.mli:
