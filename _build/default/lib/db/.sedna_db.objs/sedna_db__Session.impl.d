lib/db/session.ml: Catalog Database Error Hashtbl List Lock_mgr Printf Sedna_core Sedna_engine Sedna_util Sedna_xquery Store Txn Xname
