lib/db/session.mli: Sedna_core Sedna_xquery
