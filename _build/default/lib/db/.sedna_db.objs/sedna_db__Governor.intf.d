lib/db/governor.mli: Sedna_core Session
