lib/db/governor.ml: Database Error Hashtbl List Sedna_core Sedna_util Session
