(** Recursive-descent parser for the XQuery subset, the XUpdate
    statements (paper §3, syntactically close to Lehti's XUpdate) and
    the data-definition statements.

    Conventions: abbreviated steps expand during parsing ([//] to a
    [descendant-or-self::node()] step, [@x] to the attribute axis,
    [..] to [parent::node()]); direct constructors switch the lexer
    into XML mode; [(: ... :)] comments nest.  Errors carry
    line/column positions and raise with code XPST0003. *)

val parse_statement : string -> Xq_ast.statement
(** A full statement: query with optional prolog, [UPDATE ...], or DDL
    ([CREATE/DROP DOCUMENT|COLLECTION|INDEX], [LOAD]). *)

val parse_query : string -> Xq_ast.prolog * Xq_ast.expr
(** A query only; raises if the statement is an update or DDL. *)
