(** Static analysis (paper §5): namespace resolution against the query
    prolog, variable-binding checks, and function resolution against
    the built-in library plus the prolog's declared functions.  Static
    errors (XPST0008 etc.) are raised before any data is touched. *)

type env = {
  prolog : Xq_ast.prolog;
  bound_vars : string list;
  functions : (string * int) list;  (** declared (name, arity) *)
}

val builtin_functions : (string * int list) list
(** Built-in names with their accepted arities ([-1] = variadic). *)

val resolve_name :
  env -> ?default_fn:bool -> Sedna_util.Xname.t -> Sedna_util.Xname.t
(** Resolve a prefix through the prolog declarations and the predefined
    bindings (fn, xs, xml, local).  [default_fn] applies the default
    function namespace to unprefixed names. *)

val check : env -> Xq_ast.expr -> unit

val analyse : Xq_ast.prolog -> Xq_ast.expr -> env
(** Full static phase over prolog variables, function bodies and the
    query body. *)
