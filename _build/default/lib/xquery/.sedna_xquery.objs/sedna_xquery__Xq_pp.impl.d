lib/xquery/xq_pp.ml: Buffer List Printf Rewriter Sedna_util String Xq_ast Xq_parser
