lib/xquery/xq_parser.ml: Buffer Error Format List Sedna_util Sedna_xml String Xname Xq_ast
