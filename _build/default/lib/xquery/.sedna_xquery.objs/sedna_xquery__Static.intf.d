lib/xquery/static.mli: Sedna_util Xq_ast
