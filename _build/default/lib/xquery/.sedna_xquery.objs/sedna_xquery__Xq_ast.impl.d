lib/xquery/xq_ast.ml: List Option Sedna_util Xname
