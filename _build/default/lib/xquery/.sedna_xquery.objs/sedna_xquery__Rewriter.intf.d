lib/xquery/rewriter.mli: Xq_ast
