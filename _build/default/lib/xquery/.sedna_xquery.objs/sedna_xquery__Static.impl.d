lib/xquery/static.ml: Error List Option Sedna_util Xname Xq_ast
