lib/xquery/rewriter.ml: List Option Printf Sedna_util Xq_ast
