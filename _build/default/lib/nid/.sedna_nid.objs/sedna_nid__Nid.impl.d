lib/nid/nid.ml: Bytes Char Format Option String
