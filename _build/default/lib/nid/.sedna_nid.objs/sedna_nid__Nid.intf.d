lib/nid/nid.mli: Format
