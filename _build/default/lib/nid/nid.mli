(** Sedna's numbering scheme (paper §4.1.1).

    A label is conceptually a pair [(id, d)] of a string prefix and a
    delimiter character such that:

    - node [x] is an ancestor of [y] iff [id_x < id_y < id_x ^ d_x];
    - [x] precedes [y] in document order iff [id_x < id_y]
      (lexicographic byte order).

    Inserting a node never requires relabeling any other node: for any
    two labels there is a label strictly between them.

    Our instantiation: prefixes are sequences of {e segments}, one per
    tree level.  A segment is a non-empty string of digit bytes
    [0x02..0xFE] followed by the terminator byte [0x01]; the delimiter
    is always [0xFF].  Because the terminator is smaller than every
    digit and occurs only at segment ends, a label is an ancestor's
    label iff it extends it by whole segments, and lexicographic order
    on labels is exactly document (pre)order. *)

type t = private string
(** A label.  The document node has the empty label. *)

val root : t
(** Label of the document node. *)

val of_raw : string -> t
(** Unsafe injection for deserialization of labels previously produced
    by this module.  Raises [Invalid_argument] on malformed input. *)

val to_raw : t -> string

val compare : t -> t -> int
(** Document order.  [compare x y < 0] iff x precedes y. *)

val equal : t -> t -> bool

val is_ancestor : ancestor:t -> t -> bool
(** [is_ancestor ~ancestor:x y] — strict: a node is not its own
    ancestor. *)

val is_descendant_or_self : ancestor:t -> t -> bool

val depth : t -> int
(** Number of segments = tree depth below the document node. *)

val child_between : parent:t -> left:t option -> right:t option -> t
(** Allocate a label for a new child of [parent] lying strictly between
    the adjacent siblings [left] and [right] (both children of
    [parent], when present).  Never relabels; always succeeds.
    Raises [Invalid_argument] if [left]/[right] are not children of
    [parent] or are mis-ordered. *)

val ordinal_child : parent:t -> int -> t
(** [ordinal_child ~parent i] — compact label for the [i]-th child
    (0-based) during bulk load.  Produces shorter labels than repeated
    [child_between ~right:None] and is order-consistent with it. *)

val delimiter : char
(** The constant delimiter [d] of the pair formulation. *)

val pair : t -> string * char
(** The paper's [(id, d)] view of a label. *)

val pair_is_ancestor : string * char -> string * char -> bool
(** Literal implementation of the paper's predicate
    [id1 < id2 < id1 ^ d1]; used by tests to check the instantiation
    agrees with {!is_ancestor}. *)

val pp : Format.formatter -> t -> unit
(** Hex rendering for diagnostics. *)
