(* See nid.mli for the scheme.  Digit alphabet is [d_min..d_max]; the
   terminator ends every segment; the delimiter is the maximal byte.
   Invariant maintained everywhere: a segment's digit string never ends
   with d_min, which guarantees [mid] below can always find room. *)

type t = string

let terminator = '\x01'
let delimiter = '\xff'
let d_min = 0x02
let d_max = 0xfe

let root = ""

let to_raw t = t

let is_well_formed s =
  (* Segments of digits in [d_min..d_max], each closed by terminator;
     digit runs non-empty and not ending with d_min. *)
  let n = String.length s in
  let rec seg i =
    if i = n then true
    else
      let rec digits j =
        if j = n then false (* unterminated segment *)
        else
          let c = Char.code s.[j] in
          if c = Char.code terminator then
            j > i && Char.code s.[j - 1] <> d_min && seg (j + 1)
          else if c >= d_min && c <= d_max then digits (j + 1)
          else false
      in
      digits i
  in
  seg 0

let of_raw s =
  if is_well_formed s then s
  else invalid_arg "Nid.of_raw: malformed label"

let compare = String.compare
let equal = String.equal

let is_prefix p s =
  String.length p < String.length s
  && String.equal p (String.sub s 0 (String.length p))

let is_ancestor ~ancestor y = is_prefix ancestor y

let is_descendant_or_self ~ancestor y =
  String.equal ancestor y || is_prefix ancestor y

let depth t =
  let d = ref 0 in
  String.iter (fun c -> if c = terminator then incr d) t;
  !d

(* ------------------------------------------------------------------ *)
(* [mid a b]: a digit string strictly between [a] and [b] in the label
   order induced by appending the terminator (which coincides with
   plain string order on digit strings).  [b = None] means +infinity.
   Preconditions: a < b; neither ends with d_min.  Postcondition: the
   result does not end with d_min. *)

let tl s = String.sub s 1 (String.length s - 1)

let rec mid (a : string) (b : string option) : string =
  match b with
  | Some bs when bs <> "" && a <> "" && a.[0] = bs.[0] ->
    String.make 1 a.[0] ^ mid (tl a) (Some (tl bs))
  | _ ->
    let da = if a = "" then d_min - 1 else Char.code a.[0] in
    let db =
      match b with
      | None -> d_max + 1
      | Some "" -> invalid_arg "Nid.mid: bounds not ordered"
      | Some bs -> Char.code bs.[0]
    in
    if da >= db then invalid_arg "Nid.mid: bounds not ordered";
    if db - da > 1 then begin
      (* Room for a fresh digit between the two. *)
      let m = (da + db) / 2 in
      let m = if m = d_min && db - da > 2 then d_min + 1 else m in
      if m = d_min then
        (* Only d_min fits (da = 1, db = 3): extend below to keep the
           no-trailing-d_min invariant. *)
        String.make 1 (Char.chr d_min) ^ mid "" None
      else String.make 1 (Char.chr m)
    end
    else if a <> "" then
      (* Adjacent first digits: extend along a, unbounded above. *)
      String.make 1 a.[0] ^ mid (tl a) None
    else
      (* a exhausted and b starts with d_min: descend along b.  b has
         more characters because it does not end with d_min. *)
      let bs = match b with Some bs -> bs | None -> assert false in
      String.make 1 bs.[0] ^ mid "" (Some (tl bs))

(* ------------------------------------------------------------------ *)
(* Segment accessors on full labels. *)

let parent_of_child ~parent child =
  (* The final segment's digit string of [child], checked against
     [parent]. *)
  let lp = String.length parent and lc = String.length child in
  if lc <= lp || not (String.equal parent (String.sub child 0 lp)) then
    invalid_arg "Nid.child_between: sibling is not a child of parent";
  if child.[lc - 1] <> terminator then
    invalid_arg "Nid.child_between: malformed sibling label";
  let seg = String.sub child lp (lc - lp - 1) in
  if String.contains seg terminator then
    invalid_arg "Nid.child_between: sibling is not a direct child";
  seg

let child_between ~parent ~left ~right =
  let lo = Option.map (parent_of_child ~parent) left in
  let hi = Option.map (parent_of_child ~parent) right in
  (match lo, hi with
   | Some a, Some b when String.compare a b >= 0 ->
     invalid_arg "Nid.child_between: left >= right"
   | _ -> ());
  let seg = mid (Option.value lo ~default:"") hi in
  parent ^ seg ^ String.make 1 terminator

(* Compact bulk-load labels: the i-th child's digit string encodes i in
   base [ord_base] with digit bytes [ord_zero ..], using [ord_mark]
   bytes as a length prefix so that longer encodings sort after all
   shorter ones.  Digit bytes stay clear of d_min so the no-trailing-
   d_min invariant holds. *)

let ord_base = 124
let ord_zero = 0x03
let ord_mark = Char.chr 0x7f

let ord_digits i =
  if i < 0 then invalid_arg "Nid.ordinal_child: negative index";
  (* Find the encoding length k: values < 124^k use length k. *)
  let rec width k cap floor =
    if i < floor + cap then (k, floor)
    else width (k + 1) (cap * ord_base) (floor + cap)
  in
  let k, floor = width 1 ord_base 0 in
  let v = i - floor in
  let buf = Bytes.make (2 * k - 1) ord_mark in
  (* digit bytes occupy positions k-1 .. 2k-2; marker bytes 0 .. k-2 *)
  let rec fill_digits pos v =
    if pos >= k - 1 then begin
      Bytes.set buf pos (Char.chr (ord_zero + (v mod ord_base)));
      fill_digits (pos - 1) (v / ord_base)
    end
  in
  fill_digits (2 * k - 2) v;
  Bytes.to_string buf

let ordinal_child ~parent i = parent ^ ord_digits i ^ String.make 1 terminator

(* ------------------------------------------------------------------ *)

let pair t = (t, delimiter)

let pair_is_ancestor (id1, d1) (id2, _d2) =
  String.compare id1 id2 < 0
  && String.compare id2 (id1 ^ String.make 1 d1) < 0

let pp ppf t =
  Format.pp_print_string ppf "0x";
  String.iter (fun c -> Format.fprintf ppf "%02x" (Char.code c)) t
