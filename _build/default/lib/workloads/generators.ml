(* Synthetic XML workloads used by tests, examples and benches.

   [auction] is an XMark-style document (the de-facto standard XML
   benchmark family): a site with regions/items, people, and open
   auctions with bidder lists — mixed fan-outs, text-heavy description
   fields and id-based references, which exercise both clustering
   strategies in opposite ways.

   All generators are deterministic for a given seed. *)

open Sedna_util
module E = Sedna_xml.Xml_event

let el name = Xname.make name
let attr name value = { E.name = Xname.make name; value }

let start_el ?(atts = []) name = E.Start_element (el name, atts)
let end_el = E.End_element
let text s = E.Text s

let words =
  [| "quick"; "brown"; "fox"; "lazy"; "dog"; "data"; "base"; "query";
     "index"; "storage"; "schema"; "pointer"; "page"; "buffer"; "commit";
     "version"; "snapshot"; "xml"; "element"; "cluster" |]

let sentence rng n =
  String.concat " "
    (List.init n (fun _ -> words.(Random.State.int rng (Array.length words))))

(* ---- library: the paper's running example (Figure 2) ------------------- *)

let library ?(seed = 7) ~books () : E.t list =
  let rng = Random.State.make [| seed |] in
  let book i =
    [ start_el ~atts:[ attr "year" (string_of_int (1970 + (i mod 50))) ] "book";
      start_el "title" ] @
    [ text (Printf.sprintf "Title %04d: %s" i (sentence rng 3)) ] @
    [ end_el ] @
    List.concat_map
      (fun j ->
        [ start_el "author"; text (Printf.sprintf "Author%d_%d" i j); end_el ])
      (List.init (1 + (i mod 3)) Fun.id) @
    [ start_el "price"; text (string_of_int (10 + Random.State.int rng 90)); end_el ] @
    (if i mod 4 = 0 then
       [ start_el "issue";
         start_el "publisher"; text (sentence rng 2); end_el;
         start_el "year"; text (string_of_int (2000 + (i mod 20))); end_el;
         end_el ]
     else []) @
    [ end_el ]
  in
  let paper i =
    [ start_el "paper";
      start_el "title"; text (Printf.sprintf "Paper %04d" i); end_el;
      start_el "author"; text (Printf.sprintf "PAuthor%d" i); end_el;
      end_el ]
  in
  [ E.Start_document; start_el "library" ]
  @ List.concat_map
      (fun i -> if i mod 10 = 9 then book i @ paper i else book i)
      (List.init books Fun.id)
  @ [ end_el; E.End_document ]

(* ---- auction: XMark-like --------------------------------------------------- *)

let auction ?(seed = 11) ~items ~people ~auctions () : E.t list =
  let rng = Random.State.make [| seed |] in
  let item i =
    [ start_el ~atts:[ attr "id" (Printf.sprintf "item%d" i) ] "item";
      start_el "name"; text (Printf.sprintf "Item %d %s" i (sentence rng 2)); end_el;
      start_el "category"; text (Printf.sprintf "cat%d" (i mod 17)); end_el;
      start_el "quantity"; text (string_of_int (1 + (i mod 5))); end_el;
      start_el "description";
      start_el "parlist" ] @
    List.concat_map
      (fun _ -> [ start_el "listitem"; text (sentence rng 8); end_el ])
      (List.init (1 + (i mod 3)) Fun.id) @
    [ end_el; end_el;
      start_el "payment"; text "Cash, Creditcard"; end_el;
      end_el ]
  in
  let person i =
    [ start_el ~atts:[ attr "id" (Printf.sprintf "person%d" i) ] "person";
      start_el "name"; text (Printf.sprintf "Person %d" i); end_el;
      start_el "emailaddress"; text (Printf.sprintf "mailto:p%d@example.org" i); end_el ] @
    (if i mod 2 = 0 then
       [ start_el "phone"; text (Printf.sprintf "+%08d" (Random.State.int rng 99999999)); end_el ]
     else []) @
    (if i mod 3 = 0 then
       [ start_el "address";
         start_el "street"; text (sentence rng 2); end_el;
         start_el "city"; text (Printf.sprintf "City%d" (i mod 29)); end_el;
         start_el "country"; text (Printf.sprintf "Country%d" (i mod 7)); end_el;
         end_el ]
     else []) @
    [ end_el ]
  in
  let open_auction i =
    [ start_el ~atts:[ attr "id" (Printf.sprintf "auction%d" i) ] "open_auction";
      start_el "initial"; text (Printf.sprintf "%d.%02d" (1 + (i mod 200)) (i mod 100)); end_el ] @
    List.concat_map
      (fun b ->
        [ start_el "bidder";
          start_el "date"; text (Printf.sprintf "2026-%02d-%02d" (1 + (b mod 12)) (1 + (b mod 28))); end_el;
          start_el "personref";
          text (Printf.sprintf "person%d" (Random.State.int rng (max 1 people)));
          end_el;
          start_el "increase"; text (Printf.sprintf "%d.00" (1 + (b mod 30))); end_el;
          end_el ])
      (List.init (1 + (i mod 6)) Fun.id) @
    [ start_el "itemref";
      text (Printf.sprintf "item%d" (Random.State.int rng (max 1 items)));
      end_el;
      start_el "current"; text (Printf.sprintf "%d.00" (10 + (i mod 500))); end_el;
      end_el ]
  in
  [ E.Start_document; start_el "site";
    start_el "regions"; start_el "namerica" ]
  @ List.concat_map item (List.init items Fun.id)
  @ [ end_el; end_el; start_el "people" ]
  @ List.concat_map person (List.init people Fun.id)
  @ [ end_el; start_el "open_auctions" ]
  @ List.concat_map open_auction (List.init auctions Fun.id)
  @ [ end_el; end_el; E.End_document ]

(* ---- deep: a narrow, deep chain (stresses labels and ancestors) --------- *)

let deep ~depth () : E.t list =
  let rec open_chain d acc =
    if d = 0 then acc
    else open_chain (d - 1) (start_el (Printf.sprintf "level%d" (d mod 10)) :: acc)
  in
  let opens = List.rev (open_chain depth []) in
  let closes = List.init depth (fun _ -> end_el) in
  [ E.Start_document; start_el "root" ]
  @ opens
  @ [ start_el "leaf"; text "bottom"; end_el ]
  @ closes
  @ [ end_el; E.End_document ]

(* ---- wide: many children under one parent ------------------------------- *)

let wide ?(kinds = 8) ~children () : E.t list =
  [ E.Start_document; start_el "root" ]
  @ List.concat_map
      (fun i ->
        [ start_el (Printf.sprintf "kind%d" (i mod kinds));
          text (string_of_int i); end_el ])
      (List.init children Fun.id)
  @ [ end_el; E.End_document ]

let to_xml_string (events : E.t list) : string =
  Sedna_xml.Serializer.to_string events
