lib/workloads/generators.ml: Array Fun List Printf Random Sedna_util Sedna_xml String Xname
