lib/workloads/generators.mli: Random Sedna_xml
