(** Deterministic synthetic XML workloads for tests, examples and
    benches.  [auction] is XMark-flavoured (regions/items, people,
    open auctions with bidder lists): mixed fan-outs, text-heavy
    description fields and id references exercise both clustering
    strategies in opposite directions. *)

val library : ?seed:int -> books:int -> unit -> Sedna_xml.Xml_event.t list
(** The paper's Figure-2 library document at scale: books with titles,
    authors, prices, occasional issues, interleaved papers. *)

val auction :
  ?seed:int -> items:int -> people:int -> auctions:int -> unit ->
  Sedna_xml.Xml_event.t list

val deep : depth:int -> unit -> Sedna_xml.Xml_event.t list
(** A narrow chain: stresses labels, ancestors, and stack depths. *)

val wide : ?kinds:int -> children:int -> unit -> Sedna_xml.Xml_event.t list
(** One parent with many children spread over [kinds] element names:
    stresses fan-out, child slots and relocation. *)

val to_xml_string : Sedna_xml.Xml_event.t list -> string

val sentence : Random.State.t -> int -> string
