(** Baseline for bench E2: subtree-based clustering (the Natix/TIMBER
    strategy of paper §2) — nodes pack into pages in depth-first order
    so an element sits with its sub-elements.  An in-memory simulation
    that counts page touches, the quantity the clustering argument is
    about; record size matches the Sedna descriptor scale. *)

type t

val create : ?record_size:int -> ?page_size:int -> unit -> t

val of_events : Sedna_xml.Xml_event.t list -> t
(** Build the store and assign DFS page placement. *)

val reset_touches : t -> unit
val touches : t -> int
(** Distinct pages touched since the last reset. *)

val children : t -> int -> int list

val scan_descendants_named : t -> int -> string -> int list
(** All descendant elements with this name — a full subtree walk, the
    cost the schema-clustered store avoids. *)

val subtree_string : t -> int -> string
(** Whole-element reconstruction — the operation subtree clustering is
    good at. *)

val find_first_named : t -> string -> int option
val page_count : t -> int
val node_count : t -> int
