(* Baseline for E3: the relational approach of paper §2 — nodes in an
   edge table, containment decided by structural joins over interval
   labels (à la Al-Khalifa et al.).  Path steps are evaluated with
   joins rather than pointer traversal. *)

open Sedna_util

type row = {
  r_id : int;
  r_parent : int;
  r_kind : Sedna_core.Catalog.kind;
  r_name : string; (* local name; "" for unnamed kinds *)
  r_value : string;
  r_start : int; (* interval label: start *)
  r_end : int; (* interval label: end *)
  r_level : int;
}

type t = {
  mutable rows : row array; (* ordered by r_start = document order *)
  mutable count : int;
  by_name : (string, int list ref) Hashtbl.t; (* name -> row indexes, doc order *)
  by_parent : (int, int list ref) Hashtbl.t; (* parent id -> children indexes *)
  touched : (int, unit) Hashtbl.t; (* page-touch accounting (~64 rows/page) *)
}

let rows_per_page = Sedna_core.Page.page_size / 64

let create () =
  {
    rows = [||];
    count = 0;
    by_name = Hashtbl.create 64;
    by_parent = Hashtbl.create 256;
    touched = Hashtbl.create 64;
  }

(* reading a row's fields touches the page holding it; rows are packed
   in document order, as a clustered relational table would be *)
let touch t i = Hashtbl.replace t.touched (i / rows_per_page) ()
let reset_touches t = Hashtbl.reset t.touched
let touches t = Hashtbl.length t.touched

let of_events (events : Sedna_xml.Xml_event.t list) : t =
  let rows = ref [] in
  let counter = ref 0 in
  let next_id = ref 0 in
  let fresh_pre () =
    incr counter;
    !counter
  in
  let rec build parent level (evs : Sedna_xml.Xml_event.t list) :
      Sedna_xml.Xml_event.t list =
    match evs with
    | [] -> []
    | Sedna_xml.Xml_event.Start_document :: rest
    | Sedna_xml.Xml_event.End_document :: rest -> build parent level rest
    | Sedna_xml.Xml_event.Start_element (name, atts) :: rest ->
      let id = !next_id in
      incr next_id;
      let start = fresh_pre () in
      List.iter
        (fun { Sedna_xml.Xml_event.name = an; value } ->
          let aid = !next_id in
          incr next_id;
          let s = fresh_pre () in
          rows :=
            {
              r_id = aid;
              r_parent = id;
              r_kind = Sedna_core.Catalog.Attribute;
              r_name = Xname.local an;
              r_value = value;
              r_start = s;
              r_end = s;
              r_level = level + 1;
            }
            :: !rows)
        atts;
      let rest = build id (level + 1) rest in
      let stop = fresh_pre () in
      rows :=
        {
          r_id = id;
          r_parent = parent;
          r_kind = Sedna_core.Catalog.Element;
          r_name = Xname.local name;
          r_value = "";
          r_start = start;
          r_end = stop;
          r_level = level;
        }
        :: !rows;
      build parent level rest
    | Sedna_xml.Xml_event.End_element :: rest -> rest
    | Sedna_xml.Xml_event.Text s :: rest ->
      let id = !next_id in
      incr next_id;
      let p = fresh_pre () in
      rows :=
        {
          r_id = id;
          r_parent = parent;
          r_kind = Sedna_core.Catalog.Text;
          r_name = "";
          r_value = s;
          r_start = p;
          r_end = p;
          r_level = level;
        }
        :: !rows;
      build parent level rest
    | Sedna_xml.Xml_event.Comment _ :: rest
    | Sedna_xml.Xml_event.Processing_instruction _ :: rest ->
      build parent level rest
  in
  let leftover = build (-1) 0 events in
  ignore leftover;
  let t = create () in
  let arr = Array.of_list !rows in
  Array.sort (fun a b -> compare a.r_start b.r_start) arr;
  t.rows <- arr;
  t.count <- Array.length arr;
  Array.iteri
    (fun i r ->
      if r.r_kind = Sedna_core.Catalog.Element then begin
        let cell =
          match Hashtbl.find_opt t.by_name r.r_name with
          | Some c -> c
          | None ->
            let c = ref [] in
            Hashtbl.add t.by_name r.r_name c;
            c
        in
        cell := i :: !cell
      end;
      let pc =
        match Hashtbl.find_opt t.by_parent r.r_parent with
        | Some c -> c
        | None ->
          let c = ref [] in
          Hashtbl.add t.by_parent r.r_parent c;
          c
      in
      pc := i :: !pc)
    arr;
  Hashtbl.iter (fun _ c -> c := List.rev !c) t.by_name;
  Hashtbl.iter (fun _ c -> c := List.rev !c) t.by_parent;
  t

let rows_named t name : int list =
  match Hashtbl.find_opt t.by_name name with Some c -> !c | None -> []

(* Structural containment join: ancestors x descendants, both lists in
   document (r_start) order; stack-based merge (the ICDE'02 stack-tree
   join).  Returns descendant row indexes with an ancestor above them. *)
let containment_join t (ancs : int list) (descs : int list) : int list =
  let result = ref [] in
  let stack = ref [] in
  let rec go ancs descs =
    match (ancs, descs) with
    | [], [] -> ()
    | a :: arest, d :: drest ->
      touch t a;
      touch t d;
      let ra = t.rows.(a) and rd = t.rows.(d) in
      if ra.r_start < rd.r_start then begin
        (* push ancestor after popping finished ones *)
        stack := List.filter (fun s -> t.rows.(s).r_end > ra.r_start) !stack;
        stack := a :: !stack;
        go arest descs
      end
      else begin
        stack := List.filter (fun s -> t.rows.(s).r_end > rd.r_start) !stack;
        if !stack <> [] then result := d :: !result;
        go ancs drest
      end
    | [], d :: drest ->
      touch t d;
      let rd = t.rows.(d) in
      stack := List.filter (fun s -> t.rows.(s).r_end > rd.r_start) !stack;
      if !stack <> [] then result := d :: !result;
      go [] drest
    | _ :: _, [] -> ()
  in
  go ancs descs;
  List.rev !result

(* child step via parent-id join *)
let child_join t (parents : int list) (name : string) : int list =
  let wanted = Hashtbl.create 64 in
  List.iter
    (fun i ->
      touch t i;
      Hashtbl.replace wanted t.rows.(i).r_id ())
    parents;
  rows_named t name
  |> List.filter (fun i ->
         touch t i;
         Hashtbl.mem wanted t.rows.(i).r_parent)

(* evaluate a path of (axis, name) steps from the document root *)
type step = Child_step of string | Desc_step of string

let eval_path t (steps : step list) : int list =
  let root_ids = [] in
  ignore root_ids;
  let rec go current steps =
    match steps with
    | [] -> current
    | Child_step n :: rest ->
      let next =
        match current with
        | None -> (* from root: elements at level 0 *)
          rows_named t n
          |> List.filter (fun i ->
                 touch t i;
                 t.rows.(i).r_level = 0)
        | Some cur -> child_join t cur n
      in
      go (Some next) rest
    | Desc_step n :: rest ->
      let cands = rows_named t n in
      let next =
        match current with
        | None ->
          List.iter (fun i -> touch t i) cands;
          cands
        | Some cur -> containment_join t cur cands
      in
      go (Some next) rest
  in
  match go None steps with None -> [] | Some r -> r

let string_value t i =
  let r = t.rows.(i) in
  if r.r_kind <> Sedna_core.Catalog.Element then r.r_value
  else begin
    (* concatenate text rows within the interval *)
    let b = Buffer.create 32 in
    Array.iter
      (fun row ->
        if
          row.r_kind = Sedna_core.Catalog.Text
          && row.r_start > r.r_start && row.r_end < r.r_end
        then Buffer.add_string b row.r_value)
      t.rows;
    Buffer.contents b
  end

let row_count t = t.count
