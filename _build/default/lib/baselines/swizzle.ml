(* Baseline for E7: pointer dereferencing through a swizzling /
   translation table (paper §2, "Memory management"): the database
   pointer representation differs from the in-memory one, so every
   dereference pays a table lookup to convert.  Sedna's layer-equality
   mapping makes the two representations identical.

   The experiment: build a linked chain of records spread over pages;
   chase it N times, dereferencing each hop through (a) a hash-table
   translation (this module) vs (b) the buffer manager's VAS fast path
   (Buffer_mgr with use_vas = true) vs (c) the buffer manager's hash
   table only (use_vas = false). *)

type t = {
  table : (int64, int) Hashtbl.t; (* DAS pointer -> in-memory index *)
  memory : int64 array; (* each cell holds the DAS pointer of the next hop *)
}

(* Build a chain of [n] cells whose DAS addresses are sparse (page-like
   spacing), linked in a shuffled order. *)
let build ?(seed = 42) n : t * int64 =
  let rng = Random.State.make [| seed |] in
  let order = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  let das_of i = Int64.of_int ((i * 4096) + 64) in
  let table = Hashtbl.create (2 * n) in
  let memory = Array.make n 0L in
  Array.iteri (fun mem_idx i -> Hashtbl.replace table (das_of i) mem_idx) order
  |> ignore;
  (* link cell order.(k) -> order.(k+1) *)
  for k = 0 to n - 1 do
    let cur = order.(k) in
    let next = order.((k + 1) mod n) in
    let mem_idx = Hashtbl.find table (das_of cur) in
    memory.(mem_idx) <- das_of next
  done;
  ({ table; memory }, das_of order.(0))

(* chase [hops] dereferences; returns a checksum so the loop is not
   optimized away *)
let chase (t : t) (start : int64) (hops : int) : int64 =
  let p = ref start in
  let acc = ref 0L in
  for _ = 1 to hops do
    let mem_idx = Hashtbl.find t.table !p in
    p := t.memory.(mem_idx);
    acc := Int64.add !acc !p
  done;
  !acc
