(* Baseline for E2: a subtree-based clustering storage (the strategy of
   Natix/TIMBER discussed in paper §2): nodes are packed into pages in
   depth-first subtree order, so an element and its sub-elements sit
   together.

   The store is an in-memory simulation that counts page touches — the
   quantity the clustering argument is about.  Record size matches the
   Sedna descriptor scale so page capacities are comparable. *)

open Sedna_util

type node = {
  id : int;
  kind : Sedna_core.Catalog.kind;
  name : Xname.t option;
  value : string;
  mutable parent : int; (* -1 = none *)
  mutable first_child : int;
  mutable next_sibling : int;
  mutable page : int; (* page this node's record lives in *)
}

type t = {
  mutable nodes : node array;
  mutable count : int;
  record_size : int;
  page_size : int;
  mutable page_count : int;
  mutable touched : (int, unit) Hashtbl.t; (* page-touch tracking *)
}

let create ?(record_size = 80) ?(page_size = Sedna_core.Page.page_size) () =
  {
    nodes = Array.make 1024 (Obj.magic None);
    count = 0;
    record_size;
    page_size;
    page_count = 0;
    touched = Hashtbl.create 64;
  }

let node t id = t.nodes.(id)

let touch t page = Hashtbl.replace t.touched page ()

let reset_touches t = Hashtbl.reset t.touched

let touches t = Hashtbl.length t.touched

let add_node t ~kind ~name ~value ~parent =
  if t.count = Array.length t.nodes then begin
    let bigger = Array.make (2 * Array.length t.nodes) t.nodes.(0) in
    Array.blit t.nodes 0 bigger 0 t.count;
    t.nodes <- bigger
  end;
  let id = t.count in
  t.count <- id + 1;
  t.nodes.(id) <-
    {
      id;
      kind;
      name;
      value;
      parent;
      first_child = -1;
      next_sibling = -1;
      page = -1;
    };
  (* link into the parent *)
  if parent >= 0 then begin
    let p = t.nodes.(parent) in
    if p.first_child < 0 then p.first_child <- id
    else begin
      let rec last c =
        if t.nodes.(c).next_sibling < 0 then c else last t.nodes.(c).next_sibling
      in
      t.nodes.(last p.first_child).next_sibling <- id
    end
  end;
  id

(* Pack records into pages in depth-first order: subtree clustering. *)
let assign_pages t =
  let per_page = t.page_size / t.record_size in
  let next = ref 0 in
  let used = ref 0 in
  let place n =
    if !used = per_page then begin
      incr next;
      used := 0
    end;
    n.page <- !next;
    incr used
  in
  let rec dfs id =
    if id >= 0 then begin
      place t.nodes.(id);
      let rec kids c =
        if c >= 0 then begin
          dfs c;
          kids t.nodes.(c).next_sibling
        end
      in
      kids t.nodes.(id).first_child
    end
  in
  if t.count > 0 then dfs 0;
  t.page_count <- !next + 1

(* Build from an XML event stream. *)
let of_events (events : Sedna_xml.Xml_event.t list) : t =
  let t = create () in
  let root = add_node t ~kind:Sedna_core.Catalog.Document ~name:None ~value:"" ~parent:(-1) in
  let stack = ref [ root ] in
  List.iter
    (fun (e : Sedna_xml.Xml_event.t) ->
      match e with
      | Sedna_xml.Xml_event.Start_document | Sedna_xml.Xml_event.End_document ->
        ()
      | Sedna_xml.Xml_event.Start_element (name, atts) ->
        let parent = List.hd !stack in
        let id =
          add_node t ~kind:Sedna_core.Catalog.Element ~name:(Some name)
            ~value:"" ~parent
        in
        List.iter
          (fun { Sedna_xml.Xml_event.name = an; value } ->
            ignore
              (add_node t ~kind:Sedna_core.Catalog.Attribute ~name:(Some an)
                 ~value ~parent:id))
          atts;
        stack := id :: !stack
      | Sedna_xml.Xml_event.End_element -> stack := List.tl !stack
      | Sedna_xml.Xml_event.Text s ->
        ignore
          (add_node t ~kind:Sedna_core.Catalog.Text ~name:None ~value:s
             ~parent:(List.hd !stack))
      | Sedna_xml.Xml_event.Comment s ->
        ignore
          (add_node t ~kind:Sedna_core.Catalog.Comment ~name:None ~value:s
             ~parent:(List.hd !stack))
      | Sedna_xml.Xml_event.Processing_instruction (target, data) ->
        ignore
          (add_node t ~kind:Sedna_core.Catalog.Pi ~name:(Some (Xname.make target))
             ~value:data ~parent:(List.hd !stack)))
    events;
  assign_pages t;
  t

(* ---- operations (each touch counts the containing page) ---------------- *)

let children t id =
  touch t (node t id).page;
  let rec go acc c =
    if c < 0 then List.rev acc
    else begin
      touch t (node t c).page;
      go (c :: acc) (node t c).next_sibling
    end
  in
  go [] (node t id).first_child

(* all descendants with a given element name, document order *)
let scan_descendants_named t id (name : string) : int list =
  let acc = ref [] in
  let rec dfs c =
    if c >= 0 then begin
      touch t (node t c).page;
      let n = node t c in
      (match (n.kind, n.name) with
       | Sedna_core.Catalog.Element, Some nm when Xname.local nm = name ->
         acc := c :: !acc
       | _ -> ());
      let rec kids k =
        if k >= 0 then begin
          dfs k;
          kids (node t k).next_sibling
        end
      in
      kids n.first_child
    end
  in
  let rec kids k =
    if k >= 0 then begin
      dfs k;
      kids (node t k).next_sibling
    end
  in
  touch t (node t id).page;
  kids (node t id).first_child;
  List.rev !acc

(* reconstruct a whole element (serialize its subtree) *)
let rec subtree_string t id : string =
  let n = node t id in
  touch t n.page;
  match n.kind with
  | Sedna_core.Catalog.Text -> n.value
  | Sedna_core.Catalog.Attribute -> ""
  | _ ->
    let b = Buffer.create 64 in
    (match n.name with
     | Some nm ->
       Buffer.add_char b '<';
       Buffer.add_string b (Xname.to_string nm)
     | None -> ());
    let rec attrs c =
      if c >= 0 then begin
        let cn = node t c in
        if cn.kind = Sedna_core.Catalog.Attribute then begin
          touch t cn.page;
          Buffer.add_char b ' ';
          (match cn.name with
           | Some nm -> Buffer.add_string b (Xname.to_string nm)
           | None -> ());
          Buffer.add_string b "=\"";
          Buffer.add_string b cn.value;
          Buffer.add_char b '"'
        end;
        attrs cn.next_sibling
      end
    in
    attrs n.first_child;
    if n.name <> None then Buffer.add_char b '>';
    let rec content c =
      if c >= 0 then begin
        let cn = node t c in
        if cn.kind <> Sedna_core.Catalog.Attribute then
          Buffer.add_string b (subtree_string t c);
        content cn.next_sibling
      end
    in
    content n.first_child;
    (match n.name with
     | Some nm ->
       Buffer.add_string b "</";
       Buffer.add_string b (Xname.to_string nm);
       Buffer.add_char b '>'
     | None -> ());
    Buffer.contents b

let find_first_named t name =
  let rec go i =
    if i >= t.count then None
    else
      let n = node t i in
      match (n.kind, n.name) with
      | Sedna_core.Catalog.Element, Some nm when Xname.local nm = name -> Some i
      | _ -> go (i + 1)
  in
  go 0

let page_count t = t.page_count
let node_count t = t.count
