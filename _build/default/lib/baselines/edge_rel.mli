(** Baseline for bench E3: the relational strategy of paper §2 — an
    edge table with (pre, post) interval labels; path steps evaluate as
    joins (hash join on parent ids for child steps, a stack-based
    structural containment join for descendant steps).

    Rows pack into pages in document order; reading a row's fields
    touches its page, giving the page-I/O comparison the bench
    reports. *)

type t

val of_events : Sedna_xml.Xml_event.t list -> t

type step = Child_step of string | Desc_step of string

val eval_path : t -> step list -> int list
(** Evaluate a path of steps from the document root; returns row
    indexes of the result nodes in document order. *)

val rows_named : t -> string -> int list
(** The element-name index (doc-order row list). *)

val containment_join : t -> int list -> int list -> int list
(** Stack-tree structural join: descendants (2nd list) having an
    ancestor in the 1st; both inputs in document order. *)

val child_join : t -> int list -> string -> int list

val string_value : t -> int -> string

val reset_touches : t -> unit
val touches : t -> int
val row_count : t -> int
