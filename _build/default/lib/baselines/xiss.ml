(* Baseline for E5: an XISS-style numbering scheme (paper §4.1.1's
   "main drawback" reference): each node carries an integer pair
   (order, size); a child fits inside its parent's range, and sibling
   gaps allow some insertions — but when a gap is exhausted, labels
   must be reconstructed (relabeling), which is exactly what Sedna's
   string-based scheme avoids.

   The simulation tracks sibling gap consumption at one level: nodes
   are (order) integers inside a parent range; inserting between two
   adjacent nodes with no room left triggers a relabel of the whole
   level (counted, with its size). *)

type t = {
  mutable orders : int array; (* sorted orders of current siblings *)
  mutable count : int;
  mutable range : int; (* parent's range: orders live in [1, range] *)
  mutable relabels : int;
  mutable relabeled_nodes : int;
}

let create ?(initial_range = 1 lsl 20) () =
  {
    orders = Array.make 16 0;
    count = 0;
    range = initial_range;
    relabels = 0;
    relabeled_nodes = 0;
  }

let count t = t.count
let relabels t = t.relabels
let relabeled_nodes t = t.relabeled_nodes

let ensure_capacity t =
  if t.count = Array.length t.orders then begin
    let bigger = Array.make (2 * Array.length t.orders) 0 in
    Array.blit t.orders 0 bigger 0 t.count;
    t.orders <- bigger
  end

(* spread existing nodes uniformly over the (possibly doubled) range *)
let relabel t =
  t.relabels <- t.relabels + 1;
  t.relabeled_nodes <- t.relabeled_nodes + t.count;
  if t.range / (t.count + 1) < 2 then t.range <- t.range * 2;
  let gap = t.range / (t.count + 1) in
  for i = 0 to t.count - 1 do
    t.orders.(i) <- (i + 1) * gap
  done

(* append after the current last sibling *)
let rec append t =
  ensure_capacity t;
  let last = if t.count = 0 then 0 else t.orders.(t.count - 1) in
  let order =
    if last + 1 > t.range then (
      relabel t;
      let last = if t.count = 0 then 0 else t.orders.(t.count - 1) in
      last + ((t.range - last) / 2))
    else last + ((t.range - last + 1) / 2)
  in
  let order = if order <= last then last + 1 else order in
  if order > t.range then begin
    relabel t;
    append_after_relabel t
  end
  else begin
    t.orders.(t.count) <- order;
    t.count <- t.count + 1
  end

and append_after_relabel t =
  ensure_capacity t;
  let last = if t.count = 0 then 0 else t.orders.(t.count - 1) in
  let order = last + ((t.range - last + 1) / 2) in
  let order = if order <= last then last + 1 else order in
  t.orders.(t.count) <- order;
  t.count <- t.count + 1

(* insert between positions i and i+1 (0-based); i = -1 inserts first *)
let insert_between t i =
  ensure_capacity t;
  let lo = if i < 0 then 0 else t.orders.(i) in
  let hi = if i + 1 >= t.count then t.range + 1 else t.orders.(i + 1) in
  let order =
    if hi - lo <= 1 then begin
      relabel t;
      (* after relabeling, recompute the spot *)
      let lo = if i < 0 then 0 else t.orders.(i) in
      let hi = if i + 1 >= t.count then t.range + 1 else t.orders.(i + 1) in
      lo + ((hi - lo) / 2)
    end
    else lo + ((hi - lo) / 2)
  in
  (* shift right *)
  Array.blit t.orders (i + 1) t.orders (i + 2) (t.count - i - 1);
  t.orders.(i + 1) <- order;
  t.count <- t.count + 1

let is_sorted t =
  let ok = ref true in
  for i = 1 to t.count - 1 do
    if t.orders.(i) <= t.orders.(i - 1) then ok := false
  done;
  !ok
