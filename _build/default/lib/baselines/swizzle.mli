(** Baseline for bench E7: dereferencing through a swizzling /
    translation table (paper §2): the database pointer representation
    differs from the in-memory one, so every dereference pays a table
    lookup.  Build a shuffled chain of cells and chase it. *)

type t

val build : ?seed:int -> int -> t * int64
(** [build n] — a chain of [n] cells at sparse page-like DAS
    addresses; returns the store and the chain's entry pointer. *)

val chase : t -> int64 -> int -> int64
(** [chase t start hops] — follow the chain [hops] times through the
    translation table; returns a checksum so the loop is not optimized
    away. *)
