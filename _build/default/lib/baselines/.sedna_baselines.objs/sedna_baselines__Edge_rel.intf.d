lib/baselines/edge_rel.mli: Sedna_xml
