lib/baselines/swizzle.mli:
