lib/baselines/xiss.ml: Array
