lib/baselines/xiss.mli:
