lib/baselines/swizzle.ml: Array Hashtbl Int64 Random
