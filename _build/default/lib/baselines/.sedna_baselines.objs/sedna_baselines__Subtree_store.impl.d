lib/baselines/subtree_store.ml: Array Buffer Hashtbl List Obj Sedna_core Sedna_util Sedna_xml Xname
