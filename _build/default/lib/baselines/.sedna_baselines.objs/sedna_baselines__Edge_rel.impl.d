lib/baselines/edge_rel.ml: Array Buffer Hashtbl List Sedna_core Sedna_util Sedna_xml Xname
