lib/baselines/subtree_store.mli: Sedna_xml
