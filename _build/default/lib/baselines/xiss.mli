(** Baseline for bench E5: an XISS-style integer numbering scheme —
    the "main drawback" reference of paper §4.1.1.  Sibling orders are
    integers in a parent range; when the gap between two adjacent
    siblings is exhausted, the whole level is relabeled (counted along
    with how many labels each relabeling rewrites). *)

type t

val create : ?initial_range:int -> unit -> t

val append : t -> unit
(** Add a sibling after the current last one. *)

val insert_between : t -> int -> unit
(** Insert between positions i and i+1 (0-based; -1 = before the
    first); relabels the level when the gap is gone. *)

val count : t -> int
val relabels : t -> int
val relabeled_nodes : t -> int
(** Total labels rewritten across all relabelings — the work Sedna's
    string scheme never does. *)

val is_sorted : t -> bool
