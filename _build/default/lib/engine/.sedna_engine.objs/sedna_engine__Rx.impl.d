lib/engine/rx.ml: Array Buffer Char Error List Sedna_util String
