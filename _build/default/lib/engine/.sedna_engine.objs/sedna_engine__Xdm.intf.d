lib/engine/xdm.mli: Sedna_core Sedna_util Sedna_xml Seq
