lib/engine/executor.ml: Buffer Catalog Counters Error Float Hashtbl Index_mgr Indirection Lazy List Rx Sedna_core Sedna_util Sedna_xquery Seq Store String Traverse Xdm Xname
