lib/engine/xdm.ml: Buffer Catalog Counters Error Float List Node Node_ser Option Printf Sedna_core Sedna_nid Sedna_util Sedna_xml Seq String Xname Xptr
