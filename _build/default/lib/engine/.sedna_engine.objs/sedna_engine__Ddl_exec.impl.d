lib/engine/ddl_exec.ml: Catalog Error Hashtbl Index_mgr List Loader Printf Sedna_core Sedna_util Sedna_xquery Store Update_ops
