lib/engine/update_exec.mli: Executor Sedna_core Sedna_xquery Xdm
