lib/engine/update_exec.ml: Catalog Error Executor Hashtbl Index_mgr Indirection List Node Node_block Option Sedna_core Sedna_util Sedna_xquery Store Update_ops Xdm Xptr
