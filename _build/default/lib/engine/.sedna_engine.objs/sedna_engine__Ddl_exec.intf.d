lib/engine/ddl_exec.mli: Sedna_core Sedna_xquery
