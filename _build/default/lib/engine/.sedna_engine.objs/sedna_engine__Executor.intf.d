lib/engine/executor.mli: Lazy Sedna_core Sedna_xquery Seq Xdm
