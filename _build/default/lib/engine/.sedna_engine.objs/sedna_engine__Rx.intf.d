lib/engine/rx.mli:
