(* A small backtracking regular-expression engine for the XQuery string
   functions fn:matches / fn:replace / fn:tokenize.

   Supported syntax (the commonly used XML-Schema-regex subset):
     literals, '.' (any char), escapes \d \D \w \W \s \S \. \\ etc.,
     character classes [abc], [a-z0-9], negated [^...],
     anchors ^ and $, alternation |, groups ( ), quantifiers * + ?
     and bounded {n}, {n,}, {n,m} (greedy).

   Groups capture for fn:replace's $1..$9 references. *)

open Sedna_util

type node =
  | Lit of char
  | Any
  | Class of (char -> bool)
  | Start
  | End
  | Seq of node list
  | Alt of node * node
  | Repeat of node * int * int option (* min, max *)
  | Group of int * node

type t = { prog : node; group_count : int }

let parse_error fmt = Error.raise_error Error.Xquery_dynamic fmt

(* ---- parser ------------------------------------------------------------- *)

let escape_class c : (char -> bool) option =
  match c with
  | 'd' -> Some (fun ch -> ch >= '0' && ch <= '9')
  | 'D' -> Some (fun ch -> not (ch >= '0' && ch <= '9'))
  | 'w' ->
    Some
      (fun ch ->
        (ch >= 'a' && ch <= 'z')
        || (ch >= 'A' && ch <= 'Z')
        || (ch >= '0' && ch <= '9')
        || ch = '_')
  | 'W' ->
    Some
      (fun ch ->
        not
          ((ch >= 'a' && ch <= 'z')
          || (ch >= 'A' && ch <= 'Z')
          || (ch >= '0' && ch <= '9')
          || ch = '_'))
  | 's' -> Some (fun ch -> ch = ' ' || ch = '\t' || ch = '\n' || ch = '\r')
  | 'S' -> Some (fun ch -> not (ch = ' ' || ch = '\t' || ch = '\n' || ch = '\r'))
  | _ -> None

let compile (pattern : string) : t =
  let pos = ref 0 in
  let n = String.length pattern in
  let group_counter = ref 0 in
  let peek () = if !pos < n then Some pattern.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    if peek () = Some c then advance ()
    else parse_error "regex: expected %C in %S" c pattern
  in
  let parse_class () =
    (* after '[' *)
    let negated = peek () = Some '^' in
    if negated then advance ();
    let ranges = ref [] in
    let add_single c = ranges := (c, c) :: !ranges in
    let rec go first =
      match peek () with
      | None -> parse_error "regex: unterminated class in %S" pattern
      | Some ']' when not first -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some e ->
           advance ();
           (match escape_class e with
            | Some f ->
              (* materialize predicate escapes (\d, \w, ...) as ranges *)
              for i = 0 to 255 do
                if f (Char.chr i) then add_single (Char.chr i)
              done
            | None -> add_single e)
         | None -> parse_error "regex: dangling backslash in %S" pattern);
        go false
      | Some c ->
        advance ();
        if peek () = Some '-' && !pos + 1 < n && pattern.[!pos + 1] <> ']'
        then begin
          advance ();
          match peek () with
          | Some hi ->
            advance ();
            ranges := (c, hi) :: !ranges;
            go false
          | None -> parse_error "regex: bad range in %S" pattern
        end
        else begin
          add_single c;
          go false
        end
    in
    go true;
    let rs = !ranges in
    let test ch = List.exists (fun (lo, hi) -> ch >= lo && ch <= hi) rs in
    Class (if negated then fun ch -> not (test ch) else test)
  in
  let parse_int () =
    let start = !pos in
    while (match peek () with Some c when c >= '0' && c <= '9' -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then None
    else Some (int_of_string (String.sub pattern start (!pos - start)))
  in
  let rec parse_alt () =
    let a = parse_seq () in
    if peek () = Some '|' then begin
      advance ();
      Alt (a, parse_alt ())
    end
    else a
  and parse_seq () =
    let items = ref [] in
    let rec go () =
      match peek () with
      | None | Some '|' | Some ')' -> ()
      | Some _ ->
        items := parse_quantified () :: !items;
        go ()
    in
    go ();
    match !items with [ one ] -> one | items -> Seq (List.rev items)
  and parse_quantified () =
    let atom = parse_atom () in
    match peek () with
    | Some '*' ->
      advance ();
      Repeat (atom, 0, None)
    | Some '+' ->
      advance ();
      Repeat (atom, 1, None)
    | Some '?' ->
      advance ();
      Repeat (atom, 0, Some 1)
    | Some '{' ->
      advance ();
      let lo = match parse_int () with Some i -> i | None -> parse_error "regex: bad {}" in
      let hi =
        if peek () = Some ',' then begin
          advance ();
          parse_int ()
        end
        else Some lo
      in
      expect '}';
      Repeat (atom, lo, hi)
    | _ -> atom
  and parse_atom () =
    match peek () with
    | None -> parse_error "regex: unexpected end of %S" pattern
    | Some '(' ->
      advance ();
      incr group_counter;
      let idx = !group_counter in
      let inner = parse_alt () in
      expect ')';
      Group (idx, inner)
    | Some '[' ->
      advance ();
      parse_class ()
    | Some '.' ->
      advance ();
      Any
    | Some '^' ->
      advance ();
      Start
    | Some '$' ->
      advance ();
      End
    | Some '\\' ->
      advance ();
      (match peek () with
       | Some e ->
         advance ();
         (match escape_class e with Some f -> Class f | None -> Lit e)
       | None -> parse_error "regex: dangling backslash in %S" pattern)
    | Some (('*' | '+' | '?' | ')' | '{' | '}') as c) ->
      parse_error "regex: unexpected %C in %S" c pattern
    | Some c ->
      advance ();
      Lit c
  in
  let prog = parse_alt () in
  if !pos <> n then parse_error "regex: trailing input in %S" pattern;
  { prog; group_count = !group_counter }

(* ---- matcher -------------------------------------------------------------- *)

(* continuation-passing backtracking matcher; groups record (start,end) *)
let exec (re : t) (s : string) (start : int) :
    (int * (int * int) option array) option =
  let n = String.length s in
  let groups = Array.make (re.group_count + 1) None in
  let rec m (node : node) (i : int) (k : int -> bool) : bool =
    match node with
    | Lit c -> i < n && s.[i] = c && k (i + 1)
    | Any -> i < n && k (i + 1)
    | Class f -> i < n && f s.[i] && k (i + 1)
    | Start -> i = 0 && k i
    | End -> i = n && k i
    | Seq items ->
      let rec chain items i =
        match items with
        | [] -> k i
        | x :: rest -> m x i (fun j -> chain rest j)
      in
      chain items i
    | Alt (a, b) -> m a i k || m b i k
    | Group (idx, inner) ->
      let saved = groups.(idx) in
      m inner i (fun j ->
          groups.(idx) <- Some (i, j);
          k j || (groups.(idx) <- saved; false))
    | Repeat (inner, lo, hi) ->
      (* greedy with backtracking; guard against empty-match loops *)
      let rec go count i =
        let can_more = match hi with Some h -> count < h | None -> true in
        if can_more then
          m inner i (fun j -> if j = i then (count + 1 >= lo && k j) else go (count + 1) j)
          || (count >= lo && k i)
        else count >= lo && k i
      in
      go 0 i
  in
  let final = ref (-1) in
  if m re.prog start (fun j -> final := j; true) then
    Some (!final, Array.copy groups)
  else None

(* find the first match at or after [start] *)
let search (re : t) (s : string) (start : int) :
    (int * int * (int * int) option array) option =
  let n = String.length s in
  let rec go i =
    if i > n then None
    else
      match exec re s i with
      | Some (j, groups) -> Some (i, j, groups)
      | None -> go (i + 1)
  in
  go start

(* ---- the three F&O operations --------------------------------------------- *)

let matches ~pattern (s : string) : bool =
  search (compile pattern) s 0 <> None

let replace ~pattern ~replacement (s : string) : string =
  let re = compile pattern in
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let expand groups (i0 : int) (j0 : int) =
    ignore i0;
    ignore j0;
    let rn = String.length replacement in
    let k = ref 0 in
    while !k < rn do
      (if replacement.[!k] = '$' && !k + 1 < rn
          && replacement.[!k + 1] >= '0' && replacement.[!k + 1] <= '9'
       then begin
         let g = Char.code replacement.[!k + 1] - Char.code '0' in
         (if g <= re.group_count then
            match groups.(g) with
            | Some (a, b) -> Buffer.add_string buf (String.sub s a (b - a))
            | None -> ());
         k := !k + 2
       end
       else if replacement.[!k] = '\\' && !k + 1 < rn then begin
         Buffer.add_char buf replacement.[!k + 1];
         k := !k + 2
       end
       else begin
         Buffer.add_char buf replacement.[!k];
         incr k
       end)
    done
  in
  let rec go i =
    if i > n then ()
    else
      match search re s i with
      | None -> Buffer.add_string buf (String.sub s i (n - i))
      | Some (a, b, groups) ->
        Buffer.add_string buf (String.sub s i (a - i));
        expand groups a b;
        if b = a then begin
          (* zero-length match: copy one char and continue *)
          if a < n then Buffer.add_char buf s.[a];
          go (a + 1)
        end
        else go b
  in
  go 0;
  Buffer.contents buf

let tokenize ~pattern (s : string) : string list =
  if s = "" then []
  else begin
    let re = compile pattern in
    let n = String.length s in
    let out = ref [] in
    let rec go i seg_start =
      if i > n then ()
      else
        match search re s i with
        | None ->
          out := String.sub s seg_start (n - seg_start) :: !out
        | Some (a, b, _) when b > a ->
          out := String.sub s seg_start (a - seg_start) :: !out;
          go b b
        | Some (a, _, _) ->
          (* zero-length separator: avoid infinite loop *)
          ignore a;
          go (i + 1) seg_start
    in
    go 0 0;
    List.rev !out
  end
