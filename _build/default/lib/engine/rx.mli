(** A small backtracking regular-expression engine for the XQuery
    string functions fn:matches / fn:replace / fn:tokenize.

    Supported: literals, [.], escapes ([\d \D \w \W \s \S] and literal
    escapes), character classes with ranges and negation, anchors
    [^ $], alternation, groups (capturing, for [$1..$9] in
    replacements), and the quantifiers [* + ?] and [{n} {n,} {n,m}]
    (greedy).  Malformed patterns raise the dynamic-error code the
    F&O spec assigns. *)

type t

val compile : string -> t

val matches : pattern:string -> string -> bool
(** True when the pattern matches a substring (anchor explicitly for
    whole-string matching). *)

val replace : pattern:string -> replacement:string -> string -> string
(** Replace every non-overlapping match; [$1..$9] in the replacement
    refer to capture groups; [\x] escapes a literal character. *)

val tokenize : pattern:string -> string -> string list
(** Split around matches of the separator pattern; [""] input gives
    the empty sequence, adjacent separators give empty tokens. *)
