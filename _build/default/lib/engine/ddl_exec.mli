(** Data-definition statements: documents, collections, indexes, bulk
    load.  Dropping a document also prunes its descriptive-schema
    subtree from the catalog and drops its dependent indexes. *)

val execute : Sedna_core.Store.t -> Sedna_xquery.Xq_ast.ddl_stmt -> string
(** Returns a human-readable confirmation message. *)

val drop_document : Sedna_core.Store.t -> string -> unit

val index_kind_of_type : string -> Sedna_core.Catalog.index_kind
(** Maps "xs:string" / "xs:integer" / "xs:double" to the index kind. *)
