(* Data-definition statement execution: documents, collections,
   indexes, bulk load. *)

open Sedna_util
open Sedna_core
module Ast = Sedna_xquery.Xq_ast

(* Remove a document's schema subtree from the catalog. *)
let prune_schema (cat : Catalog.t) (root_id : int) =
  let root = Catalog.snode_by_id cat root_id in
  List.iter
    (fun (s : Catalog.snode) -> Hashtbl.remove cat.Catalog.snodes s.Catalog.id)
    (root :: Catalog.schema_descendants root);
  Catalog.mark_dirty cat

let drop_document (st : Store.t) name =
  let doc = Catalog.get_document st.Store.cat name in
  (* drop dependent indexes first *)
  List.iter
    (fun (d : Catalog.index_def) ->
      Catalog.remove_index st.Store.cat d.Catalog.idx_name)
    (Catalog.indexes_for_document st.Store.cat name);
  Update_ops.delete_node st doc.Catalog.doc_indir;
  prune_schema st.Store.cat doc.Catalog.schema_root_id;
  Catalog.remove_document st.Store.cat name

let index_kind_of_type = function
  | "xs:string" -> Catalog.String_index
  | "xs:integer" | "xs:double" | "xs:decimal" | "xs:float" ->
    Catalog.Number_index
  | t -> Error.raise_error Error.Unsupported "unsupported index type %s" t

(* Returns a human-readable confirmation message. *)
let execute (st : Store.t) (d : Ast.ddl_stmt) : string =
  match d with
  | Ast.Create_document name ->
    ignore (Loader.create_empty st ~doc_name:name);
    Printf.sprintf "document %S created" name
  | Ast.Create_document_in (name, coll) ->
    ignore (Loader.create_empty st ~doc_name:name);
    Catalog.add_document_to_collection st.Store.cat ~collection:coll ~doc:name;
    Printf.sprintf "document %S created in collection %S" name coll
  | Ast.Drop_document name ->
    drop_document st name;
    Printf.sprintf "document %S dropped" name
  | Ast.Create_collection name ->
    Catalog.add_collection st.Store.cat name;
    Printf.sprintf "collection %S created" name
  | Ast.Drop_collection name ->
    List.iter (fun d -> drop_document st d)
      (Catalog.collection_documents st.Store.cat name);
    Hashtbl.remove st.Store.cat.Catalog.collections name;
    Catalog.mark_dirty st.Store.cat;
    Printf.sprintf "collection %S dropped" name
  | Ast.Load_string (xml, name) ->
    let _, n = Loader.load_string st ~doc_name:name xml in
    Printf.sprintf "document %S loaded (%d nodes)" name n
  | Ast.Load_file (path, name) ->
    let ic = open_in_bin path in
    let xml = really_input_string ic (in_channel_length ic) in
    close_in ic;
    let _, n = Loader.load_string st ~doc_name:name xml in
    Printf.sprintf "document %S loaded from %s (%d nodes)" name path n
  | Ast.Create_index { ix_name; ix_doc; ix_on; ix_by; ix_type } ->
    let kind = index_kind_of_type ix_type in
    ignore
      (Index_mgr.create st ~name:ix_name ~doc:ix_doc ~path:ix_on
         ~key_path:ix_by ~kind);
    Printf.sprintf "index %S created on document %S" ix_name ix_doc
  | Ast.Drop_index name ->
    Index_mgr.drop st ~name;
    Printf.sprintf "index %S dropped" name
