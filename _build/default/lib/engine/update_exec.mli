(** XUpdate execution (paper §3, §5.2): the plan's first part selects
    the target nodes, the second updates them.  Selected targets are
    converted to node handles before any mutation starts — direct
    pointers are invalidated by the relocations updates perform.

    Inserted content is always a copy (XQuery constructor semantics);
    virtual constructor results are serialized into the store without
    an intermediate deep copy.  Around every mutation the affected
    index region is refreshed (removed under old keys, recomputed). *)

val execute : Executor.ctx -> Sedna_xquery.Xq_ast.update_stmt -> int
(** Returns the number of target nodes affected. *)

val insert_item :
  Sedna_core.Store.t ->
  parent_handle:Sedna_core.Xptr.t ->
  left_handle:Sedna_core.Xptr.t option ->
  Xdm.item ->
  Sedna_core.Xptr.t
(** Insert one item (atomics become text nodes) after [left_handle];
    returns the new node's handle. *)

val insert_node_copy :
  Sedna_core.Store.t ->
  parent_handle:Sedna_core.Xptr.t ->
  left_handle:Sedna_core.Xptr.t option ->
  Xdm.node ->
  Sedna_core.Xptr.t

val doc_name_of_node :
  Sedna_core.Store.t -> Sedna_core.Node.desc -> string option
