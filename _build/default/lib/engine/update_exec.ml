(* XUpdate execution (paper §3, §5.2).

   The execution plan of an update statement has two parts: the first
   selects the target nodes, the second updates them.  Targets selected
   by the query part are direct pointers; since direct pointers are
   invalidated by node moves, the set of target nodes is converted to
   node handles before any modification starts (paper §5.2). *)

open Sedna_util
open Sedna_core
module Ast = Sedna_xquery.Xq_ast

let dynamic_error fmt = Error.raise_error Error.Xquery_dynamic fmt

(* evaluate an expression to the handles of the stored nodes it selects *)
let stored_handles (ctx : Executor.ctx) (e : Ast.expr) : Xptr.t list =
  List.of_seq (Executor.eval ctx e)
  |> List.map (function
       | Xdm.N (Xdm.Stored d) -> Node.handle ctx.Executor.st d
       | Xdm.N (Xdm.Temp _) ->
         dynamic_error "update target must be a stored node"
       | Xdm.A _ -> dynamic_error "update target must be a node")

let doc_name_of_node (st : Store.t) (d : Node.desc) : string option =
  let rec up d = match Node.parent st d with Some p -> up p | None -> d in
  let root = up d in
  let h = Node.handle st root in
  let found = ref None in
  Hashtbl.iter
    (fun name (doc : Catalog.doc) ->
      if Xptr.equal doc.Catalog.doc_indir h then found := Some name)
    st.Store.cat.Catalog.documents;
  !found

(* ---- inserting evaluated content into the store ------------------------- *)

(* Insert one XDM item as a node under [parent_handle], after
   [left_handle]; returns the new node's handle. *)
let rec insert_item (st : Store.t) ~parent_handle ~left_handle (it : Xdm.item) :
    Xptr.t =
  match it with
  | Xdm.A a ->
    Update_ops.insert_child st ~parent_handle ~left:left_handle ~right:None
      ~kind:Catalog.Text ~name:None
      ~value:(Some (Xdm.string_of_atomic a))
  | Xdm.N n -> insert_node_copy st ~parent_handle ~left_handle n

and insert_node_copy (st : Store.t) ~parent_handle ~left_handle (n : Xdm.node) :
    Xptr.t =
  let kind = Xdm.node_kind st n in
  match kind with
  | Catalog.Element | Catalog.Document ->
    let name = Xdm.node_name st n in
    let kind = if kind = Catalog.Document then Catalog.Element else kind in
    let h =
      Update_ops.insert_child st ~parent_handle ~left:left_handle ~right:None
        ~kind ~name ~value:None
    in
    (* attributes first, then children *)
    let last = ref None in
    List.iter
      (fun a ->
        let ah =
          Update_ops.insert_child st ~parent_handle:h ~left:!last ~right:None
            ~kind:Catalog.Attribute ~name:(Xdm.node_name st a)
            ~value:(Some (Xdm.node_string_value st a))
        in
        last := Some ah)
      (Xdm.node_attributes st n);
    List.iter
      (fun c ->
        let ch = insert_node_copy st ~parent_handle:h ~left_handle:!last c in
        last := Some ch)
      (Xdm.node_children st n);
    h
  | Catalog.Attribute | Catalog.Text | Catalog.Comment | Catalog.Pi ->
    Update_ops.insert_child st ~parent_handle ~left:left_handle ~right:None
      ~kind ~name:(Xdm.node_name st n)
      ~value:(Some (Xdm.node_string_value st n))

(* Insert a sequence of items as the last children of [parent];
   returns the handles of the inserted top-level nodes. *)
let insert_into (st : Store.t) ~parent_handle (items : Xdm.item list) :
    Xptr.t list =
  let pd = Indirection.get st.Store.bm parent_handle in
  (* the insertion point is after the last node in the sibling chain,
     attributes included (attributes precede other children) *)
  let last_child =
    let rec last = function
      | [] -> None
      | [ x ] -> Some (Node.handle st x)
      | _ :: rest -> last rest
    in
    last (Node.attributes st pd @ Node.children st pd)
  in
  let left = ref last_child in
  List.map
    (fun it ->
      let h = insert_item st ~parent_handle ~left_handle:!left it in
      left := Some h;
      h)
    items

(* Insert items as following siblings of [target]. *)
let insert_following_h (st : Store.t) ~target_handle (items : Xdm.item list) :
    Xptr.t list =
  let td = Indirection.get st.Store.bm target_handle in
  let parent_handle =
    let p = Node_block.parent_indir st.Store.bm td in
    if Xptr.is_null p then dynamic_error "cannot insert a sibling of a root node"
    else p
  in
  let left = ref (Some target_handle) in
  List.map
    (fun it ->
      let h = insert_item st ~parent_handle ~left_handle:!left it in
      left := Some h;
      h)
    items

(* Insert items as preceding siblings of [target]. *)
let insert_preceding_h (st : Store.t) ~target_handle (items : Xdm.item list) :
    Xptr.t list =
  let td = Indirection.get st.Store.bm target_handle in
  let parent_handle =
    let p = Node_block.parent_indir st.Store.bm td in
    if Xptr.is_null p then dynamic_error "cannot insert a sibling of a root node"
    else p
  in
  let left_sib = Node.left_sibling st td in
  let left = ref (Option.map (Node.handle st) left_sib) in
  List.map
    (fun it ->
      let h = insert_item st ~parent_handle ~left_handle:!left it in
      left := Some h;
      h)
    items

(* ---- the statement executor ---------------------------------------------- *)

(* Index maintenance: entries in the region around [anchor_handle]
   (its subtree plus its ancestors' entries, whose keys may derive from
   it) are removed before the mutation and recomputed after it.  The
   anchor must survive the mutation — callers pass the parent of the
   nodes being changed. *)
let with_index_refresh (st : Store.t) (anchor_handle : Xptr.t) f =
  let d = Indirection.get st.Store.bm anchor_handle in
  match doc_name_of_node st d with
  | None -> f ()
  | Some doc_name ->
    let defs = Catalog.indexes_for_document st.Store.cat doc_name in
    if defs = [] then f ()
    else begin
      Index_mgr.on_subtree_removed st ~doc_name d;
      let r = f () in
      Index_mgr.on_subtree_added st ~doc_name
        (Indirection.get st.Store.bm anchor_handle);
      r
    end

let parent_handle_of (st : Store.t) (h : Xptr.t) : Xptr.t =
  Node_block.parent_indir st.Store.bm (Indirection.get st.Store.bm h)

(* Returns the number of affected target nodes. *)
let execute (ctx : Executor.ctx) (u : Ast.update_stmt) : int =
  let st = ctx.Executor.st in
  let eval_src src =
    List.of_seq (Executor.eval { ctx with Executor.virtual_ok = true } src)
  in
  match u with
  | Ast.Insert_into (src, target) ->
    let targets = stored_handles ctx target in
    let items = eval_src src in
    List.iter
      (fun th ->
        with_index_refresh st th (fun () ->
            ignore (insert_into st ~parent_handle:th items)))
      targets;
    List.length targets
  | Ast.Insert_following (src, target) ->
    let targets = stored_handles ctx target in
    let items = eval_src src in
    List.iter
      (fun th ->
        with_index_refresh st (parent_handle_of st th) (fun () ->
            ignore (insert_following_h st ~target_handle:th items)))
      targets;
    List.length targets
  | Ast.Insert_preceding (src, target) ->
    let targets = stored_handles ctx target in
    let items = eval_src src in
    List.iter
      (fun th ->
        with_index_refresh st (parent_handle_of st th) (fun () ->
            ignore (insert_preceding_h st ~target_handle:th items)))
      targets;
    List.length targets
  | Ast.Delete target ->
    let targets = stored_handles ctx target in
    List.iter
      (fun th ->
        let anchor = parent_handle_of st th in
        if Xptr.is_null anchor then Update_ops.delete_node st th
        else
          with_index_refresh st anchor (fun () -> Update_ops.delete_node st th))
      targets;
    List.length targets
  | Ast.Delete_undeep target ->
    let targets = stored_handles ctx target in
    List.iter
      (fun th ->
        let anchor = parent_handle_of st th in
        let lift () =
          (* copy the children out as preceding siblings, then delete
             the wrapper with whatever remains inside *)
          let d = Indirection.get st.Store.bm th in
          let children = Xdm.node_children st (Xdm.Stored d) in
          ignore
            (insert_preceding_h st ~target_handle:th
               (List.map (fun c -> Xdm.N c) children));
          Update_ops.delete_node st th
        in
        if Xptr.is_null anchor then dynamic_error "cannot undeep a root node"
        else with_index_refresh st anchor lift)
      targets;
    List.length targets
  | Ast.Replace (v, target, with_e) ->
    let targets = stored_handles ctx target in
    List.iter
      (fun th ->
        let anchor = parent_handle_of st th in
        let replace () =
          let d = Indirection.get st.Store.bm th in
          let ctx' =
            {
              ctx with
              Executor.vars = (v, [ Xdm.N (Xdm.Stored d) ]) :: ctx.Executor.vars;
              Executor.virtual_ok = true;
            }
          in
          let items = List.of_seq (Executor.eval ctx' with_e) in
          ignore (insert_following_h st ~target_handle:th items);
          Update_ops.delete_node st th
        in
        if Xptr.is_null anchor then dynamic_error "cannot replace a root node"
        else with_index_refresh st anchor replace)
      targets;
    List.length targets
  | Ast.Rename (target, new_name) ->
    let targets = stored_handles ctx target in
    List.iter
      (fun th ->
        let anchor = parent_handle_of st th in
        let rename () =
          let d = Indirection.get st.Store.bm th in
          match Node.kind st d with
          | Catalog.Attribute ->
            let v = Node.text_value st d in
            let parent =
              match Node.parent st d with
              | Some p -> Node.handle st p
              | None -> dynamic_error "cannot rename a parentless attribute"
            in
            Update_ops.delete_node st th;
            ignore
              (Update_ops.insert_child st ~parent_handle:parent ~left:None
                 ~right:None ~kind:Catalog.Attribute ~name:(Some new_name)
                 ~value:(Some v))
          | Catalog.Element ->
            (* renaming moves the subtree to a different schema node:
               rebuild it under the new name next to the original *)
            let atts = Xdm.node_attributes st (Xdm.Stored d) in
            let kids = Xdm.node_children st (Xdm.Stored d) in
            let parent_handle =
              let p = Node_block.parent_indir st.Store.bm d in
              if Xptr.is_null p then dynamic_error "cannot rename a root node"
              else p
            in
            let h =
              Update_ops.insert_child st ~parent_handle ~left:(Some th)
                ~right:None ~kind:Catalog.Element ~name:(Some new_name)
                ~value:None
            in
            let last = ref None in
            List.iter
              (fun a ->
                let ah =
                  Update_ops.insert_child st ~parent_handle:h ~left:!last
                    ~right:None ~kind:Catalog.Attribute
                    ~name:(Xdm.node_name st a)
                    ~value:(Some (Xdm.node_string_value st a))
                in
                last := Some ah)
              atts;
            List.iter
              (fun c ->
                let ch = insert_node_copy st ~parent_handle:h ~left_handle:!last c in
                last := Some ch)
              kids;
            Update_ops.delete_node st th
          | _ -> dynamic_error "rename applies to elements and attributes"
        in
        if Xptr.is_null anchor then dynamic_error "cannot rename a root node"
        else with_index_refresh st anchor rename)
      targets;
    List.length targets
