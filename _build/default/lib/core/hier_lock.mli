(** Finer-granularity hierarchical locking — the future work announced
    in paper §6.2 ("locking the whole XML document is excessive").

    Two levels: intention locks (IS/IX) or full locks (S/X) on
    documents, and S/X locks on subtrees identified by the numbering-
    scheme label of their root.  Subtree locks conflict only when one
    subtree contains the other (label prefix test), so updaters in
    disjoint subtrees of one document run concurrently.  Deadlocks are
    detected on the shared wait-for graph; waiting is cooperative. *)

type mode = IS | IX | S | X
type t
type outcome = Granted | Blocked of int list | Deadlock_detected

val create : unit -> t

val mode_name : mode -> string
val compatible : mode -> mode -> bool
(** The classic hierarchical compatibility matrix. *)

val acquire_doc : t -> txn:int -> doc:string -> mode:mode -> outcome
(** Document-level lock (including intention modes).  Whole-document
    S/X also conflicts with other transactions' subtree locks. *)

val acquire_subtree :
  t -> txn:int -> doc:string -> label:Sedna_nid.Nid.t -> exclusive:bool ->
  outcome
(** Takes the matching intention lock on the document first, then the
    S/X subtree lock. *)

val release_all : t -> txn:int -> unit

val doc_holders : t -> string -> (int * mode) list
val subtree_locks : t -> string -> (int * Sedna_nid.Nid.t * mode) list
