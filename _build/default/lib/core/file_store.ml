(* The database data file: a flat array of pages addressed by global
   page id.  Page 0 is the master page.  Free pages are tracked in an
   in-memory free list persisted with the catalog at checkpoint; after
   a crash the free list is rebuilt conservatively (pages past the last
   checkpoint may be re-allocated only after recovery has replayed the
   WAL, which re-establishes their content). *)

open Sedna_util

type t = {
  fd : Unix.file_descr;
  path : string;
  mutable page_count : int; (* pages ever allocated, including master *)
  mutable free : int list; (* recycled page ids *)
}

let create path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  (* materialize the master page *)
  let zero = Bytes.make Page.page_size '\000' in
  let n = Unix.write fd zero 0 Page.page_size in
  if n <> Page.page_size then
    Error.raise_error Error.Storage_corruption "short write creating %s" path;
  { fd; path; page_count = 1; free = [] }

let open_existing path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let size = (Unix.fstat fd).Unix.st_size in
  if size mod Page.page_size <> 0 then
    Error.raise_error Error.Storage_corruption
      "data file %s size %d is not page-aligned" path size;
  { fd; path; page_count = size / Page.page_size; free = [] }

let page_count t = t.page_count

let read_page t pid (dst : Bytes.t) =
  if pid < 0 || pid >= t.page_count then
    Error.raise_error Error.Page_out_of_bounds "read of page %d (of %d)" pid
      t.page_count;
  ignore (Unix.lseek t.fd (pid * Page.page_size) Unix.SEEK_SET);
  let rec fill off =
    if off < Page.page_size then begin
      let n = Unix.read t.fd dst off (Page.page_size - off) in
      if n = 0 then
        Error.raise_error Error.Storage_corruption "short read of page %d" pid;
      fill (off + n)
    end
  in
  fill 0;
  Counters.bump Counters.page_reads

let write_page t pid (src : Bytes.t) =
  if pid < 0 || pid >= t.page_count then
    Error.raise_error Error.Page_out_of_bounds "write of page %d (of %d)" pid
      t.page_count;
  ignore (Unix.lseek t.fd (pid * Page.page_size) Unix.SEEK_SET);
  let rec drain off =
    if off < Page.page_size then begin
      let n = Unix.write t.fd src off (Page.page_size - off) in
      drain (off + n)
    end
  in
  drain 0;
  Counters.bump Counters.page_writes

let allocate t =
  match t.free with
  | pid :: rest ->
    t.free <- rest;
    pid
  | [] ->
    let pid = t.page_count in
    t.page_count <- t.page_count + 1;
    (* extend the file so reads of the new page are valid *)
    ignore (Unix.lseek t.fd (pid * Page.page_size) Unix.SEEK_SET);
    let zero = Bytes.make Page.page_size '\000' in
    let rec drain off =
      if off < Page.page_size then
        drain (off + Unix.write t.fd zero off (Page.page_size - off))
    in
    drain 0;
    pid

let free t pid = t.free <- pid :: t.free

(* Free-list persistence hooks for the catalog. *)
let free_list t = t.free
let set_free_list t l = t.free <- l
let set_page_count t n =
  (* used on recovery: page count from the checkpointed catalog may lag
     the physical file; trust the larger of the two *)
  if n > t.page_count then t.page_count <- n

let sync t = Unix.fsync t.fd

let close t = Unix.close t.fd
