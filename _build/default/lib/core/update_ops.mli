(** Node-level update operations (paper §4.1).

    The data organization makes every update touch a constant number of
    fields per affected node: fixed-size descriptors with slot free
    lists, an indirect parent pointer (relocation never touches the
    children), and partial ordering (insertions shift nothing).

    All entry points take and return {e node handles}: descriptor
    addresses are invalidated by the relocations these operations may
    perform. *)

val ensure_child_slots : Store.t -> Node.desc -> need_slots:int -> Node.desc
(** Make sure the descriptor lives in a block with at least
    [need_slots] child slots, relocating it (and its in-block
    successors, preserving the partial order) into a wider block when
    necessary — the paper's delayed per-block widening.  Returns the
    (possibly new) descriptor address. *)

val split_block : Store.t -> Catalog.snode -> Xptr.t -> Xptr.t
(** Split a full block: the upper half of its order chain moves to a
    fresh block inserted right after it.  Returns the new block. *)

val locate_predecessor :
  Store.t -> Catalog.snode -> Sedna_nid.Nid.t -> Node.desc option
(** The descriptor with the greatest label strictly below the given
    one, within the schema node's chain ([None] = new first). *)

val append_child :
  Store.t ->
  parent_handle:Xptr.t ->
  prev_handle:Xptr.t option ->
  kind:Catalog.kind ->
  name:Sedna_util.Xname.t option ->
  value:string option ->
  ordinal:int ->
  Xptr.t
(** Bulk-load fast path: append as the last child using a compact
    ordinal label; no label comparisons, always appends to the schema
    node's last block.  Returns the new node's handle. *)

val insert_child :
  Store.t ->
  parent_handle:Xptr.t ->
  left:Xptr.t option ->
  right:Xptr.t option ->
  kind:Catalog.kind ->
  name:Sedna_util.Xname.t option ->
  value:string option ->
  Xptr.t
(** General insertion between the sibling handles [left] and [right]
    (both optional; [None]/[None] inserts as first child).  Splits the
    target block when full; never relabels existing nodes.  Returns
    the new node's handle. *)

val delete_node : Store.t -> Xptr.t -> unit
(** Delete the node and its whole subtree: unlink siblings, fix the
    parent's per-schema first-child pointer, release text values,
    labels, slots, emptied blocks, and indirection cells. *)

val set_text_value : Store.t -> Xptr.t -> string -> unit
(** Replace the string value of a text-carrying node: a constant-field
    update (the text slot may move; one descriptor field changes). *)

val write_fresh_desc :
  Store.t ->
  snode:Catalog.snode ->
  block:Xptr.t ->
  order_after:int option ->
  lbl:Sedna_nid.Nid.t ->
  parent_handle:Xptr.t ->
  value:string option ->
  Node.desc
(** Low-level descriptor initialization (used by the loader for the
    document node); most callers want {!insert_child}. *)
