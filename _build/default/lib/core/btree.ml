(* B+-tree value indexes over node handles.

   Node handles are what index entries refer to (paper §4.1.2: "node
   handle is used to refer to an XML node from index structures"),
   precisely because handles survive descriptor relocation.

   Layout of a B-tree page:
     0  magic u16
     2  kind  u8 (btree block)
     3  is_leaf u8
     4  count u16
     6  data_start u16 (keys grow downward from page end)
     8  extra i64: leftmost child (internal) / next leaf (leaf)
     16 slot directory: per entry key_off u16, key_len u16, ptr i64
   Keys are byte strings compared lexicographically; numeric keys are
   encoded order-preservingly by {!encode_number}.  Duplicate keys are
   allowed (one entry per (key, handle) pair).  Deletion is by entry
   removal without rebalancing (documented simplification). *)

open Sedna_util

let magic = 0xb7ee
let header_size = 16
let slot_size = 12

let off_magic = 0
let off_kind = 2
let off_is_leaf = 3
let off_count = 4
let off_data_start = 6
let off_extra = 8

let slot_addr page i = Xptr.add page (header_size + (i * slot_size))

(* Order-preserving encoding of a float into 8 bytes. *)
let encode_number (f : float) : string =
  let bits = Int64.bits_of_float f in
  let bits =
    if Int64.compare bits 0L >= 0 then Int64.logor bits Int64.min_int
    else Int64.lognot bits
  in
  let b = Bytes.create 8 in
  (* big-endian so that byte order = numeric order *)
  Bytes.set_int64_be b 0 bits;
  Bytes.to_string b

let decode_number (s : string) : float =
  let bits = Bytes.get_int64_be (Bytes.of_string s) 0 in
  let bits =
    if Int64.compare bits 0L < 0 then Int64.logand bits Int64.max_int
    else Int64.lognot bits
  in
  Int64.float_of_bits bits

(* ---- page primitives -------------------------------------------------- *)

let init_page bm ~is_leaf =
  let page = Buffer_mgr.allocate_page bm in
  Buffer_mgr.write_u16 bm (Xptr.add page off_magic) magic;
  Buffer_mgr.write_u8 bm (Xptr.add page off_kind)
    (Page.block_kind_code Page.Btree_block);
  Buffer_mgr.write_u8 bm (Xptr.add page off_is_leaf) (if is_leaf then 1 else 0);
  Buffer_mgr.write_u16 bm (Xptr.add page off_count) 0;
  Buffer_mgr.write_u16 bm (Xptr.add page off_data_start) Page.page_size;
  Buffer_mgr.write_i64 bm (Xptr.add page off_extra) 0L;
  page

let is_leaf bm page = Buffer_mgr.read_u8 bm (Xptr.add page off_is_leaf) = 1
let count bm page = Buffer_mgr.read_u16 bm (Xptr.add page off_count)
let extra bm page = Buffer_mgr.read_xptr bm (Xptr.add page off_extra)
let set_extra bm page v = Buffer_mgr.write_xptr bm (Xptr.add page off_extra) v

let key_at bm page i =
  let sa = slot_addr page i in
  let off = Buffer_mgr.read_u16 bm sa in
  let len = Buffer_mgr.read_u16 bm (Xptr.add sa 2) in
  Buffer_mgr.read_string bm (Xptr.add page off) len

let ptr_at bm page i = Buffer_mgr.read_xptr bm (Xptr.add (slot_addr page i) 4)

let free_space bm page =
  let c = count bm page in
  let ds = Buffer_mgr.read_u16 bm (Xptr.add page off_data_start) in
  ds - (header_size + (c * slot_size))

(* first index i with key_at i >= key (binary search) *)
let lower_bound bm page key =
  let c = count bm page in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if String.compare (key_at bm page mid) key < 0 then go (mid + 1) hi
      else go lo mid
  in
  go 0 c

(* first index i with key_at i > key *)
let upper_bound bm page key =
  let c = count bm page in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if String.compare (key_at bm page mid) key <= 0 then go (mid + 1) hi
      else go lo mid
  in
  go 0 c

(* insert (key, ptr) at slot index i, shifting the directory *)
let insert_at bm page i key ptr =
  let c = count bm page in
  let ds = Buffer_mgr.read_u16 bm (Xptr.add page off_data_start) in
  let klen = String.length key in
  let new_ds = ds - klen in
  Buffer_mgr.write_string bm (Xptr.add page new_ds) key;
  Buffer_mgr.write_u16 bm (Xptr.add page off_data_start) new_ds;
  (* shift slots [i..c) up by one *)
  Buffer_mgr.with_page ~rw:true bm page (fun bytes ->
      let src = header_size + (i * slot_size) in
      let len = (c - i) * slot_size in
      if len > 0 then Bytes.blit bytes src bytes (src + slot_size) len);
  let sa = slot_addr page i in
  Buffer_mgr.write_u16 bm sa new_ds;
  Buffer_mgr.write_u16 bm (Xptr.add sa 2) klen;
  Buffer_mgr.write_xptr bm (Xptr.add sa 4) ptr;
  Buffer_mgr.write_u16 bm (Xptr.add page off_count) (c + 1)

let remove_at bm page i =
  let c = count bm page in
  Buffer_mgr.with_page ~rw:true bm page (fun bytes ->
      let src = header_size + ((i + 1) * slot_size) in
      let len = (c - i - 1) * slot_size in
      if len > 0 then
        Bytes.blit bytes src bytes (src - slot_size) len);
  Buffer_mgr.write_u16 bm (Xptr.add page off_count) (c - 1)
(* key bytes become garbage; reclaimed on compaction below *)

let compact bm page =
  Buffer_mgr.with_page ~rw:true bm page (fun bytes ->
      let c = Bytes_util.get_u16 bytes off_count in
      let keys =
        List.init c (fun i ->
            let so = header_size + (i * slot_size) in
            let off = Bytes_util.get_u16 bytes so in
            let len = Bytes_util.get_u16 bytes (so + 2) in
            Bytes.sub_string bytes off len)
      in
      let ds = ref Page.page_size in
      List.iteri
        (fun i k ->
          let len = String.length k in
          ds := !ds - len;
          Bytes.blit_string k 0 bytes !ds len;
          Bytes_util.set_u16 bytes (header_size + (i * slot_size)) !ds;
          Bytes_util.set_u16 bytes (header_size + (i * slot_size) + 2) len)
        keys;
      Bytes_util.set_u16 bytes off_data_start !ds)

(* ---- operations -------------------------------------------------------- *)

type t = { bm : Buffer_mgr.t; mutable root : Xptr.t }

let create bm =
  let root = init_page bm ~is_leaf:true in
  { bm; root }

let of_root bm root = { bm; root }
let root t = t.root

(* split [page], returning (separator key, right page) *)
let split t page =
  let bm = t.bm in
  let leaf = is_leaf bm page in
  let c = count bm page in
  let mid = c / 2 in
  let right = init_page bm ~is_leaf:leaf in
  if leaf then begin
    (* leaf: right gets entries [mid..c); separator = first right key *)
    for i = mid to c - 1 do
      insert_at bm right (i - mid) (key_at bm page i) (ptr_at bm page i)
    done;
    let sep = key_at bm page mid in
    Buffer_mgr.write_u16 bm (Xptr.add page off_count) mid;
    compact bm page;
    (* leaf chain *)
    set_extra bm right (extra bm page);
    set_extra bm page right;
    (sep, right)
  end
  else begin
    (* internal: key[mid] moves up; right gets [mid+1..c) with
       leftmost child = child of key[mid] *)
    let sep = key_at bm page mid in
    set_extra bm right (ptr_at bm page mid);
    for i = mid + 1 to c - 1 do
      insert_at bm right (i - mid - 1) (key_at bm page i) (ptr_at bm page i)
    done;
    Buffer_mgr.write_u16 bm (Xptr.add page off_count) mid;
    compact bm page;
    (sep, right)
  end

let need_room bm page key =
  free_space bm page < String.length key + slot_size

(* child page to descend into for [key] (right-biased: equal keys go
   right — used by insertion) *)
let child_for bm page key =
  let i = upper_bound bm page key in
  if i = 0 then extra bm page else ptr_at bm page (i - 1)

(* left-biased descent: duplicates equal to a separator may remain in
   the left sibling after a split, so reads must start there and scan
   forward along the leaf chain *)
let child_for_left bm page key =
  let i = lower_bound bm page key in
  if i = 0 then extra bm page else ptr_at bm page (i - 1)

let rec insert_rec t page key ptr : (string * Xptr.t) option =
  let bm = t.bm in
  if is_leaf bm page then begin
    if need_room bm page key then begin
      compact bm page;
      if need_room bm page key then begin
        let sep, right = split t page in
        if String.compare key sep < 0 then ignore (insert_rec t page key ptr)
        else ignore (insert_rec t right key ptr);
        Some (sep, right)
      end
      else begin
        insert_at bm page (lower_bound bm page key) key ptr;
        None
      end
    end
    else begin
      insert_at bm page (lower_bound bm page key) key ptr;
      None
    end
  end
  else begin
    let child = child_for bm page key in
    match insert_rec t child key ptr with
    | None -> None
    | Some (sep, right) ->
      if need_room bm page sep then begin
        compact bm page;
        if need_room bm page sep then begin
          let psep, pright = split t page in
          let target = if String.compare sep psep < 0 then page else pright in
          insert_at bm target (lower_bound bm target sep) sep
            (Xptr.of_int64 (Xptr.to_int64 right));
          Some (psep, pright)
        end
        else begin
          insert_at bm page (lower_bound bm page sep) sep right;
          None
        end
      end
      else begin
        insert_at bm page (lower_bound bm page sep) sep right;
        None
      end
  end

let insert t ~key ~value =
  match insert_rec t t.root key value with
  | None -> ()
  | Some (sep, right) ->
    let new_root = init_page t.bm ~is_leaf:false in
    set_extra t.bm new_root t.root;
    insert_at t.bm new_root 0 sep right;
    t.root <- new_root

let rec find_leaf t page key =
  if is_leaf t.bm page then page
  else find_leaf t (child_for_left t.bm page key) key

(* all values for [key] *)
let lookup t key : Xptr.t list =
  let bm = t.bm in
  let rec collect page acc =
    if Xptr.is_null page then List.rev acc
    else begin
      let c = count bm page in
      let i0 = lower_bound bm page key in
      let rec scan i acc =
        if i >= c then
          (* key run may continue on the next leaf *)
          collect (extra bm page) acc
        else if String.equal (key_at bm page i) key then
          scan (i + 1) (ptr_at bm page i :: acc)
        else List.rev acc
      in
      scan i0 acc
    end
  in
  collect (find_leaf t t.root key) []

(* inclusive range scan; [lo]/[hi] = None for open ends *)
let range t ?lo ?hi () : (string * Xptr.t) list =
  let bm = t.bm in
  let start_leaf =
    match lo with
    | Some k -> find_leaf t t.root k
    | None ->
      let rec leftmost page =
        if is_leaf bm page then page else leftmost (extra bm page)
      in
      leftmost t.root
  in
  let ok_lo k = match lo with None -> true | Some l -> String.compare k l >= 0 in
  let ok_hi k = match hi with None -> true | Some h -> String.compare k h <= 0 in
  let rec walk page acc =
    if Xptr.is_null page then List.rev acc
    else begin
      let c = count bm page in
      let rec scan i acc stop =
        if i >= c then (acc, stop)
        else
          let k = key_at bm page i in
          if not (ok_hi k) then (acc, true)
          else if ok_lo k then scan (i + 1) ((k, ptr_at bm page i) :: acc) stop
          else scan (i + 1) acc stop
      in
      let acc, stop = scan 0 acc false in
      if stop then List.rev acc else walk (extra bm page) acc
    end
  in
  walk start_leaf []

(* remove one (key, value) pair; returns whether an entry was removed *)
let delete t ~key ~value =
  let bm = t.bm in
  let rec try_leaf page =
    if Xptr.is_null page then false
    else begin
      let c = count bm page in
      let i0 = lower_bound bm page key in
      let rec scan i =
        if i >= c then try_leaf (extra bm page)
        else if String.equal (key_at bm page i) key then
          if Xptr.equal (ptr_at bm page i) value then begin
            remove_at bm page i;
            true
          end
          else scan (i + 1)
        else false
      in
      scan i0
    end
  in
  try_leaf (find_leaf t t.root key)

let rec height t page = if is_leaf t.bm page then 1 else 1 + height t (extra t.bm page)

let entry_count t =
  let bm = t.bm in
  let rec leftmost page =
    if is_leaf bm page then page else leftmost (extra bm page)
  in
  let rec walk page acc =
    if Xptr.is_null page then acc
    else walk (extra bm page) (acc + count bm page)
  in
  walk (leftmost t.root) 0
