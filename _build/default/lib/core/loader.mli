(** Bulk loading (paper §4.1): document-order loading appends at the
    tail of every schema node's block chain, assigns compact ordinal
    labels, and grows the descriptive schema incrementally. *)

type state

val start_document : Store.t -> doc_name:string -> state
(** Register the document, materialize its document node and schema
    root, and return a loader positioned inside it. *)

val feed : state -> Sedna_xml.Xml_event.t -> unit
(** Push one parser event.  Adjacent text events coalesce into one text
    node. *)

val finish : state -> Xptr.t * int
(** Close the load; returns the document node's handle and the number
    of nodes created.  Raises if elements are left open. *)

val load_string :
  Store.t -> doc_name:string -> ?options:Sedna_xml.Xml_parser.options ->
  string -> Xptr.t * int
(** Parse and load an XML string as one document. *)

val load_events :
  Store.t -> doc_name:string -> Sedna_xml.Xml_event.t list -> Xptr.t * int

val create_empty : Store.t -> doc_name:string -> Xptr.t
(** DDL 'CREATE DOCUMENT': a document node with no children. *)
