(** Axis evaluation over the storage (paper §4.1, §5).

    Two styles coexist: pointer traversal (direct sibling/child
    pointers, indirect parent), and schema-driven scans for descending
    axes — locate the matching schema nodes first, then scan only their
    block chains, filtering with the numbering-scheme ancestor test.
    Sequences are lazy so the executor can pipeline. *)

type test = {
  t_kind : Catalog.kind option;  (** [None] = any principal kind *)
  t_name : Sedna_util.Xname.t option;  (** [None] = wildcard *)
}

val any_test : test
val element_test : Sedna_util.Xname.t option -> test

val snode_matches : test -> Catalog.snode -> bool
val node_matches : Store.t -> test -> Node.desc -> bool

(** {1 Pointer axes} *)

val self : Store.t -> Node.desc -> Node.desc Seq.t
val parent : Store.t -> Node.desc -> Node.desc Seq.t
val ancestors : Store.t -> Node.desc -> Node.desc Seq.t
val ancestor_or_self : Store.t -> Node.desc -> Node.desc Seq.t
val children : Store.t -> Node.desc -> Node.desc Seq.t
val attributes : Store.t -> Node.desc -> Node.desc Seq.t
val following_siblings : Store.t -> Node.desc -> Node.desc Seq.t

val preceding_siblings : Store.t -> Node.desc -> Node.desc Seq.t
(** In reverse document order, as the axis requires. *)

val descendants_walk : Store.t -> Node.desc -> Node.desc Seq.t
(** Subtree walk in document order (the naive strategy benches E9
    compare against). *)

val descendant_or_self_walk : Store.t -> Node.desc -> Node.desc Seq.t

val following : Store.t -> Node.desc -> Node.desc Seq.t
val preceding : Store.t -> Node.desc -> Node.desc Seq.t

(** {1 Schema-driven scans} *)

val scan_snode : Store.t -> Catalog.snode -> Node.desc Seq.t
(** All descriptors of one schema node; block-chain order = document
    order. *)

val merge_by_doc_order :
  Store.t -> Node.desc Seq.t list -> Node.desc Seq.t
(** k-way merge of document-ordered sequences by label. *)

val descendants_schema :
  Store.t -> ?test:test -> Node.desc -> Node.desc Seq.t
(** The descendant axis via the descriptive schema: scans only matching
    schema nodes' chains, filters by the label ancestor test, merges.
    Nodes that cannot match are never fetched (paper §4.1: the schema
    is "a naturally built index"). *)

val children_schema : Store.t -> ?test:test -> Node.desc -> Node.desc Seq.t

val next_in_document : Store.t -> Node.desc -> Node.desc option

val filter_test : Store.t -> test -> Node.desc Seq.t -> Node.desc Seq.t
