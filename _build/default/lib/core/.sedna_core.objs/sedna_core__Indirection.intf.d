lib/core/indirection.mli: Buffer_mgr Catalog Xptr
