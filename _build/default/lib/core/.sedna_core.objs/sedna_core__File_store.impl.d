lib/core/file_store.ml: Bytes Counters Error Page Sedna_util Unix
