lib/core/node.ml: Catalog Counters Format Indirection List Node_block Sedna_nid Sedna_util Store Text_store Xname Xptr
