lib/core/node.mli: Catalog Format Sedna_nid Sedna_util Store Xptr
