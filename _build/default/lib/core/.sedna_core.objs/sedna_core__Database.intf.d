lib/core/database.mli: Buffer_mgr Catalog Lock_mgr Store Txn Versions
