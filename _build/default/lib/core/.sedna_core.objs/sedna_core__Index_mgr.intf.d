lib/core/index_mgr.mli: Catalog Node Store Xptr
