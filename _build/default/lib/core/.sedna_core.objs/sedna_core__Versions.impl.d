lib/core/versions.ml: Bytes Hashtbl List Option
