lib/core/lock_mgr.mli: Format
