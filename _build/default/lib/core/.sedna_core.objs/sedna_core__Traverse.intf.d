lib/core/traverse.mli: Catalog Node Sedna_util Seq Store
