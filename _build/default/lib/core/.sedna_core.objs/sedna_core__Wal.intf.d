lib/core/wal.mli: Bytes
