lib/core/traverse.ml: Catalog List Node Node_block Sedna_nid Sedna_util Seq Store Xname
