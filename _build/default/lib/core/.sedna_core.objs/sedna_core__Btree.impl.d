lib/core/btree.ml: Buffer_mgr Bytes Bytes_util Int64 List Page Sedna_util String Xptr
