lib/core/catalog.ml: Error Hashtbl List Marshal Option Sedna_util Xname Xptr
