lib/core/hier_lock.ml: Hashtbl List Option Sedna_nid
