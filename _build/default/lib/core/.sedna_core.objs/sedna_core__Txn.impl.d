lib/core/txn.ml: Bytes Catalog Hashtbl
