lib/core/indirection.ml: Buffer_mgr Catalog Error Int64 Page Sedna_util Xptr
