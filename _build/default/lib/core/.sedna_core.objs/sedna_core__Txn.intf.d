lib/core/txn.mli: Bytes Catalog Hashtbl
