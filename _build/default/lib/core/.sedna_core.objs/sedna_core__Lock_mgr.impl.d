lib/core/lock_mgr.ml: Format Hashtbl List Option
