lib/core/store.mli: Buffer_mgr Catalog
