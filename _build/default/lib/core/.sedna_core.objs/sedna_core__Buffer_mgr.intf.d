lib/core/buffer_mgr.mli: Bytes File_store Xptr
