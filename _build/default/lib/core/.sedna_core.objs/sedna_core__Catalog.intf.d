lib/core/catalog.mli: Hashtbl Sedna_util Xptr
