lib/core/loader.mli: Sedna_xml Store Xptr
