lib/core/loader.ml: Buffer Catalog Error List Node Node_block Sedna_nid Sedna_util Sedna_xml Store String Update_ops Xname Xptr
