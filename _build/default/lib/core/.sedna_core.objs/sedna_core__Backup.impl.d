lib/core/backup.ml: Bytes Database Error Filename Printf Sedna_util Sys Unix
