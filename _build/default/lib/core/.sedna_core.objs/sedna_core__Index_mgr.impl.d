lib/core/index_mgr.ml: Btree Catalog Indirection List Node Node_ser Option Sedna_nid Sedna_util Seq Store String Traverse Xname Xptr
