lib/core/buffer_mgr.ml: Array Bytes Bytes_util Counters File_store Fun Hashtbl Page Sedna_util Xptr
