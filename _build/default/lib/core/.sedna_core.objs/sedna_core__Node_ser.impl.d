lib/core/node_ser.ml: Catalog List Node Sedna_util Sedna_xml Store String Xname
