lib/core/node_block.ml: Buffer_mgr Bytes_util Catalog Counters Error Page Sedna_nid Sedna_util String Text_store Xptr
