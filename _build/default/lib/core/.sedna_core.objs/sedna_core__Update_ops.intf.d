lib/core/update_ops.mli: Catalog Node Sedna_nid Sedna_util Store Xptr
