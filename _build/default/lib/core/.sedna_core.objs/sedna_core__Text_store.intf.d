lib/core/text_store.mli: Buffer_mgr Catalog Xptr
