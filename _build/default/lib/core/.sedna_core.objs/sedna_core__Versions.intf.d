lib/core/versions.mli: Bytes
