lib/core/xptr.mli: Format
