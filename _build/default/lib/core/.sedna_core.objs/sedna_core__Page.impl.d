lib/core/page.ml:
