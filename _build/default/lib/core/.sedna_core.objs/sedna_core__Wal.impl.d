lib/core/wal.ml: Bytes Bytes_util Char List Option Sedna_util String Sys Unix
