lib/core/page.mli:
