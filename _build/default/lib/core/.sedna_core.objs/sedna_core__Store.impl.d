lib/core/store.ml: Buffer_mgr Catalog
