lib/core/file_store.mli: Bytes
