lib/core/text_store.ml: Buffer Buffer_mgr Bytes Bytes_util Catalog Error List Page Sedna_util String Xptr
