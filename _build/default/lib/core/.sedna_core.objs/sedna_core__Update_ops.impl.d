lib/core/update_ops.ml: Catalog Counters Indirection List Node Node_block Option Sedna_nid Sedna_util Store String Text_store Xname Xptr
