lib/core/hier_lock.mli: Sedna_nid
