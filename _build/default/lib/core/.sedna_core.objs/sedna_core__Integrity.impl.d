lib/core/integrity.ml: Catalog Format Indirection List Node Node_block Sedna_nid Seq Store Traverse Xptr
