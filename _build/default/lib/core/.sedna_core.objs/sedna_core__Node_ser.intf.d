lib/core/node_ser.mli: Node Sedna_xml Store
