lib/core/btree.mli: Buffer_mgr Xptr
