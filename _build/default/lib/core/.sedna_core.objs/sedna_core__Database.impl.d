lib/core/database.ml: Buffer_mgr Bytes Catalog Error File_store Filename Fun Hashtbl List Lock_mgr Logs Sedna_util Store Sys Txn Unix Versions Wal
