lib/core/xptr.ml: Format Int64 Page
