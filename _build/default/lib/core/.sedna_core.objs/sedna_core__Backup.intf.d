lib/core/backup.mli: Database
