(** B+-trees over node handles, the backing structure of value indexes.

    Index entries refer to nodes by handle (paper §4.1.2) precisely
    because handles survive descriptor relocation.  Keys are byte
    strings compared lexicographically; {!encode_number} maps floats to
    order-preserving byte strings so numeric indexes reuse the same
    tree.  Duplicate keys are allowed (one entry per (key, value)
    pair); deletion removes entries without rebalancing (documented
    simplification). *)

type t = { bm : Buffer_mgr.t; mutable root : Xptr.t }

val create : Buffer_mgr.t -> t
(** A fresh empty tree (one leaf page). *)

val of_root : Buffer_mgr.t -> Xptr.t -> t
(** Re-open a tree from its persisted root pointer. *)

val root : t -> Xptr.t
(** Persist this after inserts: splits can move the root. *)

val insert : t -> key:string -> value:Xptr.t -> unit

val delete : t -> key:string -> value:Xptr.t -> bool
(** Remove one (key, value) entry; [false] when absent. *)

val lookup : t -> string -> Xptr.t list
(** All values for a key, crossing leaf boundaries for long runs. *)

val range : t -> ?lo:string -> ?hi:string -> unit -> (string * Xptr.t) list
(** Inclusive range scan over the leaf chain; open ends by omission. *)

val encode_number : float -> string
(** Order-preserving 8-byte encoding ([a < b] iff encodings compare
    the same way, including negatives and infinities). *)

val decode_number : string -> float

val height : t -> Xptr.t -> int
val entry_count : t -> int
