(** Serialization of stored subtrees back to XML. *)

val events_of_node : Store.t -> Node.desc -> Sedna_xml.Xml_event.t list

val to_string :
  ?options:Sedna_xml.Serializer.options -> Store.t -> Node.desc -> string

val string_value : Store.t -> Node.desc -> string
(** The XDM typed string value: concatenation of descendant text. *)
