(** Typed view over stored node descriptors.

    A {!handle} (the node's indirection-cell address) is the stable
    identity of a node (paper §4.1.2): it survives descriptor
    relocation.  A {!desc} (descriptor address) is the node's current
    physical location — valid only until the next relocation, which is
    why update code re-derives descriptors from handles. *)

type desc = Xptr.t
type handle = Xptr.t

val snode : Store.t -> desc -> Catalog.snode
(** The descriptive-schema node governing this descriptor (from its
    block header). *)

val kind : Store.t -> desc -> Catalog.kind
val name : Store.t -> desc -> Sedna_util.Xname.t option

val handle : Store.t -> desc -> handle
val by_handle : Store.t -> handle -> desc

val label : Store.t -> desc -> Sedna_nid.Nid.t

val parent : Store.t -> desc -> desc option
(** Follows the indirect parent pointer through the indirection table. *)

val left_sibling : Store.t -> desc -> desc option
val right_sibling : Store.t -> desc -> desc option

val text_value : Store.t -> desc -> string
(** Value of a text-carrying node (text/attribute/comment/PI); [""]
    when absent. *)

val first_child_any : Store.t -> desc -> desc option
(** First node of the sibling chain, attributes included. *)

val first_child : Store.t -> desc -> desc option
(** First non-attribute child. *)

val next_sibling_no_attr : Store.t -> desc -> desc option

val children : Store.t -> desc -> desc list
(** All children in document order, attributes excluded. *)

val attributes : Store.t -> desc -> desc list

val first_child_of_schema : Store.t -> desc -> Catalog.snode -> desc option
(** The per-schema first-child pointer — the schema-driven fast path. *)

val children_of_schema : Store.t -> desc -> Catalog.snode -> desc list
(** Children under one schema node, via the first-child pointer and the
    next-in-block chain (contiguous in the schema node's sequence). *)

val relocate_desc :
  Store.t -> src:desc -> dst_block:Xptr.t -> order_after:int option -> desc
(** Move a descriptor to a fresh slot.  Updates exactly: the indirection
    cell, the two sibling neighbours, and at most one parent child-slot
    pointer — the paper's constant-field relocation.  The caller must
    have unlinked [src] from its in-block order chain and must free its
    slot afterwards. *)

val document_order : Store.t -> desc -> desc -> int
val is_ancestor_node : Store.t -> ancestor:desc -> desc -> bool

val pp : Store.t -> Format.formatter -> desc -> unit
