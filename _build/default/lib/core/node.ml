(* Typed view over node descriptors: kinds and names come from the
   descriptive schema (the block header identifies the schema node),
   values come from the text store, and navigation follows the direct
   sibling/child pointers and the indirect parent pointer.

   A [handle] (the node's indirection-cell xptr) is the stable identity
   of a node; a [desc] (descriptor xptr) is its current physical
   address, valid until the next descriptor relocation. *)

open Sedna_util

type desc = Xptr.t
type handle = Xptr.t

let snode (st : Store.t) (d : desc) : Catalog.snode =
  let block = Node_block.block_of_desc d in
  Node_block.check st.Store.bm block;
  Catalog.snode_by_id st.Store.cat (Node_block.schema_id st.Store.bm block)

let kind st d = (snode st d).Catalog.kind
let name st d = (snode st d).Catalog.name

let handle (st : Store.t) (d : desc) : handle = Node_block.indir st.Store.bm d

let by_handle (st : Store.t) (h : handle) : desc =
  Indirection.get st.Store.bm h

let label (st : Store.t) (d : desc) = Node_block.label st.Store.bm d

let parent (st : Store.t) (d : desc) : desc option =
  let p = Node_block.parent_indir st.Store.bm d in
  if Xptr.is_null p then None else Some (by_handle st p)

let left_sibling (st : Store.t) (d : desc) : desc option =
  let s = Node_block.left_sibling st.Store.bm d in
  if Xptr.is_null s then None else Some s

let right_sibling (st : Store.t) (d : desc) : desc option =
  let s = Node_block.right_sibling st.Store.bm d in
  if Xptr.is_null s then None else Some s

(* String value of a text-carrying node; the empty string when the
   value reference is null. *)
let text_value (st : Store.t) (d : desc) : string =
  let r = Node_block.text_ref st.Store.bm d in
  if Xptr.is_null r then "" else Text_store.read st.Store.bm r

(* ---- children --------------------------------------------------------- *)

(* First child in document order: among the per-schema first-child
   pointers, the one with no left sibling.  Attributes are part of the
   sibling chain (they precede other children); [include_attributes]
   controls whether they are visible. *)
let first_child_any (st : Store.t) (d : desc) : desc option =
  let s = snode st d in
  match s.Catalog.kind with
  | Catalog.Element | Catalog.Document ->
    let bm = st.Store.bm in
    let slots = List.length s.Catalog.children in
    let rec scan k =
      if k >= slots then None
      else
        let c = Node_block.child bm d k in
        if Xptr.is_null c then scan (k + 1)
        else begin
          (* walk left to the very first sibling: cheaper in the common
             case than comparing labels across slots *)
          let rec leftmost n =
            let l = Node_block.left_sibling bm n in
            if Xptr.is_null l then n else leftmost l
          in
          Some (leftmost c)
        end
    in
    scan 0
  | _ -> None

let rec skip_attributes st = function
  | None -> None
  | Some d ->
    if kind st d = Catalog.Attribute then
      skip_attributes st (right_sibling st d)
    else Some d

let first_child st d = skip_attributes st (first_child_any st d)

let next_sibling_no_attr st d = skip_attributes st (right_sibling st d)

(* All children in document order (excluding attributes). *)
let children (st : Store.t) (d : desc) : desc list =
  let rec go acc = function
    | None -> List.rev acc
    | Some c -> go (c :: acc) (next_sibling_no_attr st c)
  in
  go [] (first_child st d)

let attributes (st : Store.t) (d : desc) : desc list =
  let rec go acc = function
    | None -> List.rev acc
    | Some c ->
      if kind st c = Catalog.Attribute then go (c :: acc) (right_sibling st c)
      else List.rev acc
  in
  go [] (first_child_any st d)

(* First child belonging to a specific child schema node, using the
   parent's per-schema child pointer — the schema-driven fast path. *)
let first_child_of_schema (st : Store.t) (d : desc) (child_snode : Catalog.snode)
    : desc option =
  let c = Node_block.child st.Store.bm d child_snode.Catalog.child_slot in
  if Xptr.is_null c then None else Some c

(* Children of [d] under schema node [cs], via the first-child pointer
   and the next-in-block chain filtered by parent (paper §4.1): all
   children of one parent and one schema node are contiguous in the
   snode sequence. *)
let children_of_schema (st : Store.t) (d : desc) (cs : Catalog.snode) :
    desc list =
  match first_child_of_schema st d cs with
  | None -> []
  | Some c ->
    let my = handle st d in
    let rec go acc cur =
      match Node_block.next_desc st.Store.bm cur with
      | Some n when Xptr.equal (Node_block.parent_indir st.Store.bm n) my ->
        go (n :: acc) n
      | _ -> List.rev acc
    in
    go [ c ] c

(* ---- relocation -------------------------------------------------------- *)

(* Move the descriptor at [src] into [dst_block] at a fresh slot,
   appending at the given order position.  This is the paper's
   constant-field update: besides copying the descriptor we touch
   (1) the indirection cell, (2) the two sibling neighbours, and
   (3) at most one parent child-slot pointer.  Children are untouched —
   their parent pointer is the indirection cell.

   Returns the new descriptor address.  The caller is responsible for
   having already unlinked [src] from its in-block order chain and for
   freeing its slot. *)
let relocate_desc (st : Store.t) ~(src : desc) ~(dst_block : Xptr.t)
    ~(order_after : int option) : desc =
  let bm = st.Store.bm in
  let slot = Node_block.alloc_slot bm dst_block in
  let dst = Node_block.desc_addr bm dst_block slot in
  let fields = ref 0 in
  (* copy common fields *)
  Node_block.copy_label_area bm ~src ~dst;
  Node_block.set_indir bm dst (Node_block.indir bm src);
  Node_block.set_parent_indir bm dst (Node_block.parent_indir bm src);
  Node_block.set_left_sibling bm dst (Node_block.left_sibling bm src);
  Node_block.set_right_sibling bm dst (Node_block.right_sibling bm src);
  (* payload *)
  let src_block = Node_block.block_of_desc src in
  let s = Catalog.snode_by_id st.Store.cat (Node_block.schema_id bm src_block) in
  (match s.Catalog.kind with
   | Catalog.Element | Catalog.Document ->
     let src_slots = Node_block.child_slots bm src_block in
     let dst_slots = Node_block.child_slots bm dst_block in
     for k = 0 to min src_slots dst_slots - 1 do
       Node_block.set_child bm dst k (Node_block.child bm src k)
     done
   | _ ->
     Node_block.set_text_ref bm dst (Node_block.text_ref bm src);
     Node_block.set_text_len bm dst (Node_block.text_len bm src));
  Node_block.link_in_order bm dst_block ~slot ~after:order_after;
  (* (1) the node handle *)
  Indirection.set bm (Node_block.indir bm dst) dst;
  incr fields;
  (* (2) sibling neighbours *)
  let l = Node_block.left_sibling bm dst in
  if not (Xptr.is_null l) then begin
    Node_block.set_right_sibling bm l dst;
    incr fields
  end;
  let r = Node_block.right_sibling bm dst in
  if not (Xptr.is_null r) then begin
    Node_block.set_left_sibling bm r dst;
    incr fields
  end;
  (* (3) the parent's per-schema first-child pointer, if it aimed here *)
  let p = Node_block.parent_indir bm dst in
  if not (Xptr.is_null p) then begin
    let pd = Indirection.get bm p in
    if Xptr.equal (Node_block.child bm pd s.Catalog.child_slot) src then begin
      Node_block.set_child bm pd s.Catalog.child_slot dst;
      incr fields
    end
  end;
  Counters.bump Counters.node_moved;
  Counters.bump ~n:!fields Counters.fields_updated;
  dst

(* ---- misc -------------------------------------------------------------- *)

let document_order (st : Store.t) a b =
  Sedna_nid.Nid.compare (label st a) (label st b)

let is_ancestor_node (st : Store.t) ~ancestor d =
  Sedna_nid.Nid.is_ancestor ~ancestor:(label st ancestor) (label st d)

let pp (st : Store.t) ppf (d : desc) =
  let s = snode st d in
  match s.Catalog.kind with
  | Catalog.Element ->
    Format.fprintf ppf "element(%s)"
      (match s.Catalog.name with Some n -> Xname.to_string n | None -> "?")
  | Catalog.Document -> Format.fprintf ppf "document"
  | Catalog.Attribute ->
    Format.fprintf ppf "attribute(%s=%S)"
      (match s.Catalog.name with Some n -> Xname.to_string n | None -> "?")
      (text_value st d)
  | Catalog.Text -> Format.fprintf ppf "text(%S)" (text_value st d)
  | Catalog.Comment -> Format.fprintf ppf "comment(%S)" (text_value st d)
  | Catalog.Pi ->
    Format.fprintf ppf "pi(%s)"
      (match s.Catalog.name with Some n -> Xname.to_string n | None -> "?")
