(* Axis evaluation over the storage (paper §4.1, §5).

   Two evaluation styles coexist:

   - pointer traversal: follow direct child/sibling pointers and the
     indirect parent pointer (the paper's fast path for navigation);
   - schema-driven scans: for descending axes, locate the matching
     schema nodes first, then scan only their block chains, filtering
     by the numbering-scheme ancestor test — unnecessary nodes are
     never fetched ("naturally built index", paper §4.1).

   Sequences are lazy ([Seq.t]) so the executor can pipeline. *)

open Sedna_util

type test = {
  t_kind : Catalog.kind option; (* None = any principal kind *)
  t_name : Xname.t option; (* None = wildcard *)
}

let any_test = { t_kind = None; t_name = None }
let element_test name = { t_kind = Some Catalog.Element; t_name = name }

let snode_matches (test : test) (s : Catalog.snode) =
  (match test.t_kind with
   | Some k -> s.Catalog.kind = k
   | None ->
     (* principal node kinds for non-attribute axes *)
     s.Catalog.kind <> Catalog.Attribute && s.Catalog.kind <> Catalog.Document)
  &&
  match test.t_name with
  | None -> true
  | Some n -> (
    match s.Catalog.name with Some m -> Xname.equal n m | None -> false)

let node_matches (st : Store.t) (test : test) (d : Node.desc) =
  snode_matches test (Node.snode st d)

(* ---- simple pointer axes --------------------------------------------- *)

let self (_st : Store.t) d : Node.desc Seq.t = Seq.return d

let parent (st : Store.t) d : Node.desc Seq.t =
  match Node.parent st d with None -> Seq.empty | Some p -> Seq.return p

let rec ancestors (st : Store.t) d : Node.desc Seq.t =
  match Node.parent st d with
  | None -> Seq.empty
  | Some p -> fun () -> Seq.Cons (p, ancestors st p)

let ancestor_or_self st d : Node.desc Seq.t =
  Seq.cons d (ancestors st d)

let children (st : Store.t) d : Node.desc Seq.t =
  let rec from c () =
    match c with
    | None -> Seq.Nil
    | Some c -> Seq.Cons (c, from (Node.next_sibling_no_attr st c))
  in
  from (Node.first_child st d)

let attributes (st : Store.t) d : Node.desc Seq.t =
  List.to_seq (Node.attributes st d)

let following_siblings (st : Store.t) d : Node.desc Seq.t =
  let rec from c () =
    match c with
    | None -> Seq.Nil
    | Some c -> Seq.Cons (c, from (Node.next_sibling_no_attr st c))
  in
  from (Node.next_sibling_no_attr st d)

let preceding_siblings (st : Store.t) d : Node.desc Seq.t =
  (* reverse document order, as the axis requires *)
  let rec from c () =
    match c with
    | None -> Seq.Nil
    | Some c ->
      if Node.kind st c = Catalog.Attribute then Seq.Nil
      else Seq.Cons (c, from (Node.left_sibling st c))
  in
  from (Node.left_sibling st d)

(* Subtree walk in document order (excluding attributes). *)
let rec descendants_walk (st : Store.t) d : Node.desc Seq.t =
  Seq.concat_map
    (fun c -> Seq.cons c (descendants_walk st c))
    (children st d)

let descendant_or_self_walk st d = Seq.cons d (descendants_walk st d)

(* ---- schema-driven scans ---------------------------------------------- *)

(* All descriptors of one schema node, block-chain order = doc order. *)
let scan_snode (st : Store.t) (s : Catalog.snode) : Node.desc Seq.t =
  let bm = st.Store.bm in
  let rec from d () =
    match d with
    | None -> Seq.Nil
    | Some d -> Seq.Cons (d, from (Node_block.next_desc bm d))
  in
  from (Node_block.first_desc bm s)

(* k-way merge of document-ordered descriptor sequences, by label. *)
let merge_by_doc_order (st : Store.t) (seqs : Node.desc Seq.t list) :
    Node.desc Seq.t =
  let key d = Node.label st d in
  let rec go (heads : (Sedna_nid.Nid.t * Node.desc * Node.desc Seq.t) list) () =
    match heads with
    | [] -> Seq.Nil
    | _ ->
      let best =
        List.fold_left
          (fun acc h ->
            match acc with
            | None -> Some h
            | Some (bk, _, _) ->
              let k, _, _ = h in
              if Sedna_nid.Nid.compare k bk < 0 then Some h else acc)
          None heads
      in
      (match best with
       | None -> Seq.Nil
       | Some ((bk, bd, brest) as b) ->
         ignore bk;
         let heads = List.filter (fun h -> h != b) heads in
         let heads =
           match brest () with
           | Seq.Nil -> heads
           | Seq.Cons (d, rest) -> (key d, d, rest) :: heads
         in
         Seq.Cons (bd, go heads))
  in
  let heads =
    List.filter_map
      (fun s ->
        match s () with
        | Seq.Nil -> None
        | Seq.Cons (d, rest) -> Some (key d, d, rest))
      seqs
  in
  go heads

(* Descendant axis via the descriptive schema: scan only matching
   schema nodes' chains, filter by the label ancestor test, merge. *)
let descendants_schema (st : Store.t) ?(test = any_test) (d : Node.desc) :
    Node.desc Seq.t =
  let s = Node.snode st d in
  let targets = List.filter (snode_matches test) (Catalog.schema_descendants s) in
  let anchor = Node.label st d in
  let filter seq =
    Seq.filter
      (fun n -> Sedna_nid.Nid.is_ancestor ~ancestor:anchor (Node.label st n))
      seq
  in
  (* When [d] is the only instance of its schema node (e.g. the
     document node), every node in the target chains is a descendant:
     no label filtering is needed.  Detect the cheap common case. *)
  let sole_instance = s.Catalog.node_count = 1 && s.Catalog.parent_id = -1 in
  let seqs =
    List.map
      (fun t ->
        let seq = scan_snode st t in
        if sole_instance then seq else filter seq)
      targets
  in
  match seqs with [ one ] -> one | seqs -> merge_by_doc_order st seqs

(* Children via the schema: follow the per-schema first-child pointers
   of matching child schema nodes. *)
let children_schema (st : Store.t) ?(test = any_test) (d : Node.desc) :
    Node.desc Seq.t =
  let s = Node.snode st d in
  let targets = List.filter (snode_matches test) s.Catalog.children in
  let seqs =
    List.map (fun cs -> List.to_seq (Node.children_of_schema st d cs)) targets
  in
  match seqs with
  | [] -> Seq.empty
  | [ one ] -> one
  | seqs -> merge_by_doc_order st seqs

(* ---- document-order successors, and the long axes ---------------------- *)

(* next node in global document order, subtree-walk style *)
let next_in_document (st : Store.t) d : Node.desc option =
  match Node.first_child st d with
  | Some c -> Some c
  | None ->
    let rec up n =
      match Node.next_sibling_no_attr st n with
      | Some s -> Some s
      | None -> (
        match Node.parent st n with None -> None | Some p -> up p)
    in
    up d

let following (st : Store.t) d : Node.desc Seq.t =
  (* subtrees of following siblings of self and of each ancestor *)
  Seq.concat_map
    (fun anc ->
      Seq.concat_map (fun s -> descendant_or_self_walk st s)
        (following_siblings st anc))
    (ancestor_or_self st d)

let preceding (st : Store.t) d : Node.desc Seq.t =
  (* nodes before d in doc order, excluding ancestors; evaluated in
     reverse document order per XPath *)
  let anc = List.of_seq (ancestor_or_self st d) in
  let before_subtrees =
    List.concat_map
      (fun a -> List.of_seq (preceding_siblings st a) |> List.concat_map
          (fun s -> List.rev (List.of_seq (descendant_or_self_walk st s))))
      anc
  in
  List.to_seq before_subtrees

(* ---- filtering helper --------------------------------------------------- *)

let filter_test (st : Store.t) (test : test) (seq : Node.desc Seq.t) =
  Seq.filter (node_matches st test) seq
