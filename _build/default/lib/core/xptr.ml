(* Database pointers (paper §4.2): a 64-bit address in the Sedna
   Address Space.  The high 32 bits are the layer number, the low 32
   bits the byte address within the layer.  The same representation is
   used in main and secondary memory, which is what eliminates pointer
   swizzling.

   The zero address (layer 0, offset 0) is reserved for the master page
   and doubles as the null pointer. *)

type t = int64

let null : t = 0L

let is_null (t : t) = Int64.equal t 0L

let make ~layer ~addr : t =
  Int64.logor
    (Int64.shift_left (Int64.of_int layer) 32)
    (Int64.of_int (addr land 0xFFFFFFFF))

let layer (t : t) = Int64.to_int (Int64.shift_right_logical t 32)
let addr (t : t) = Int64.to_int (Int64.logand t 0xFFFFFFFFL)

(* Global page index across the whole SAS: used as the key for the
   buffer table, the page file, the WAL and the version store. *)
let page_id (t : t) = (layer t * Page.pages_per_layer) + (addr t / Page.page_size)

let page_offset (t : t) = addr t mod Page.page_size

(* Address of the first byte of the page containing [t]. *)
let page_start (t : t) =
  make ~layer:(layer t) ~addr:(addr t / Page.page_size * Page.page_size)

let of_page_id pid =
  make ~layer:(pid / Page.pages_per_layer)
    ~addr:(pid mod Page.pages_per_layer * Page.page_size)

let add (t : t) n = Int64.add t (Int64.of_int n)

let equal = Int64.equal
let compare = Int64.compare
let hash (t : t) = Int64.to_int t land max_int

let to_int64 (t : t) : int64 = t
let of_int64 (i : int64) : t = i

let pp ppf t =
  if is_null t then Format.pp_print_string ppf "<null>"
  else Format.fprintf ppf "L%d:%06x" (layer t) (addr t)
