(* Serialization of stored subtrees back to XML events / text. *)

open Sedna_util

let rec events_of_node (st : Store.t) (d : Node.desc) : Sedna_xml.Xml_event.t list =
  match Node.kind st d with
  | Catalog.Document ->
    List.concat_map (events_of_node st) (Node.children st d)
  | Catalog.Element ->
    let name =
      match Node.name st d with
      | Some n -> n
      | None -> Xname.make "unnamed"
    in
    let atts =
      List.map
        (fun a ->
          {
            Sedna_xml.Xml_event.name =
              (match Node.name st a with
               | Some n -> n
               | None -> Xname.make "unnamed");
            value = Node.text_value st a;
          })
        (Node.attributes st d)
    in
    (Sedna_xml.Xml_event.Start_element (name, atts)
     :: List.concat_map (events_of_node st) (Node.children st d))
    @ [ Sedna_xml.Xml_event.End_element ]
  | Catalog.Text -> [ Sedna_xml.Xml_event.Text (Node.text_value st d) ]
  | Catalog.Comment -> [ Sedna_xml.Xml_event.Comment (Node.text_value st d) ]
  | Catalog.Pi ->
    [ Sedna_xml.Xml_event.Processing_instruction
        ((match Node.name st d with
          | Some n -> Xname.local n
          | None -> "pi"),
         Node.text_value st d) ]
  | Catalog.Attribute ->
    (* a bare attribute serializes as its value, per XQuery serialization *)
    [ Sedna_xml.Xml_event.Text (Node.text_value st d) ]

let to_string ?options (st : Store.t) (d : Node.desc) =
  Sedna_xml.Serializer.to_string ?options (events_of_node st d)

(* typed string value of a node: concatenation of descendant text *)
let rec string_value (st : Store.t) (d : Node.desc) : string =
  match Node.kind st d with
  | Catalog.Text | Catalog.Attribute | Catalog.Comment | Catalog.Pi ->
    Node.text_value st d
  | Catalog.Element | Catalog.Document ->
    String.concat "" (List.map (string_value st) (Node.children st d))
