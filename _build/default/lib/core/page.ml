(* Page geometry.  The Sedna Address Space (SAS) is divided into layers
   of equal size; a layer consists of pages (paper §4.2).  These
   constants define the geometry for the whole database. *)

let page_size = 4096
let pages_per_layer = 1024
let layer_size = page_size * pages_per_layer

(* Block kinds, stored in every page header so that corruption is
   detectable and tooling can classify pages. *)
type block_kind = Node_block | Text_block | Indirection_block | Btree_block | Meta_block

let block_kind_code = function
  | Node_block -> 1
  | Text_block -> 2
  | Indirection_block -> 3
  | Btree_block -> 4
  | Meta_block -> 5

let block_kind_of_code = function
  | 1 -> Some Node_block
  | 2 -> Some Text_block
  | 3 -> Some Indirection_block
  | 4 -> Some Btree_block
  | 5 -> Some Meta_block
  | _ -> None
