(* The storage context threaded through node-level operations: the
   buffer manager plus the catalog.  One per open database. *)

type t = { bm : Buffer_mgr.t; cat : Catalog.t }

let create bm cat = { bm; cat }
