(** Storage for text values (paper §4.1): node string content lives
    apart from the fixed-size descriptors, in slotted pages.

    A value reference is the address of its 4-byte slot-directory
    entry; values move within their page under compaction but the slot
    stays put.  Values longer than a page go to chained overflow pages
    behind a 12-byte long-descriptor. *)

val insert : Buffer_mgr.t -> Catalog.t -> string -> Xptr.t
(** Store a value; returns its stable slot reference. *)

val read : Buffer_mgr.t -> Xptr.t -> string

val length : Buffer_mgr.t -> Xptr.t -> int
(** Value length without materializing overflow chains. *)

val delete : Buffer_mgr.t -> Catalog.t -> Xptr.t -> unit
(** Release the value (and any overflow chain); compacts the page. *)

val update : Buffer_mgr.t -> Catalog.t -> Xptr.t -> string -> Xptr.t
(** Replace a value; the slot may move — the caller stores the returned
    reference (a single-field descriptor update). *)

val free_bytes : Buffer_mgr.t -> Xptr.t -> int
(** Free space in a text page (diagnostics / tests). *)

val max_short : int
(** Values longer than this go to overflow chains. *)
