(* Finer-granularity locking (paper §6.2's future work: "locking the
   whole XML document is excessive and leads to a decrease in
   concurrency; we are working on a finer-granularity locking scheme").

   A classic two-level hierarchical scheme: transactions take an
   intention lock (IS/IX) on the document, then an S/X lock on a
   subtree identified by the numbering-scheme label of its root.  Two
   subtree locks conflict only when one subtree contains the other
   (label prefix test) and their modes are incompatible — so updaters
   working in disjoint subtrees of one document proceed concurrently,
   which document-level S2PL forbids.

   Whole-document S/X locks remain available (DDL, bulk load); they
   conflict with intention modes as usual. *)

type mode = IS | IX | S | X

let mode_name = function IS -> "IS" | IX -> "IX" | S -> "S" | X -> "X"

(* classic compatibility matrix *)
let compatible a b =
  match (a, b) with
  | IS, (IS | IX | S) | (IX | S), IS -> true
  | IX, IX -> true
  | S, S -> true
  | _ -> false

type subtree_lock = {
  sl_txn : int;
  sl_label : Sedna_nid.Nid.t;
  sl_mode : mode; (* S or X *)
}

type doc_entry = {
  mutable d_holders : (int * mode) list; (* document-level locks *)
  mutable d_subtrees : subtree_lock list;
}

type t = {
  docs : (string, doc_entry) Hashtbl.t;
  wait_for : (int, int list) Hashtbl.t;
}

type outcome = Granted | Blocked of int list | Deadlock_detected

let create () = { docs = Hashtbl.create 16; wait_for = Hashtbl.create 16 }

let entry t doc =
  match Hashtbl.find_opt t.docs doc with
  | Some e -> e
  | None ->
    let e = { d_holders = []; d_subtrees = [] } in
    Hashtbl.add t.docs doc e;
    e

let overlap a b =
  Sedna_nid.Nid.equal a b
  || Sedna_nid.Nid.is_ancestor ~ancestor:a b
  || Sedna_nid.Nid.is_ancestor ~ancestor:b a

(* strongest document-level mode a transaction holds *)
let doc_mode_of e txn =
  List.fold_left
    (fun acc (h, m) ->
      if h <> txn then acc
      else
        match (acc, m) with
        | Some X, _ | _, X -> Some X
        | Some S, (IS | IX) -> Some S
        | _, m -> (
          match acc with
          | Some IX when m = IS -> Some IX
          | _ -> Some m))
    None e.d_holders

let creates_cycle t ~waiter ~blockers =
  let rec reachable seen from target =
    if from = target then true
    else if List.mem from seen then false
    else
      let next = Option.value (Hashtbl.find_opt t.wait_for from) ~default:[] in
      List.exists (fun n -> reachable (from :: seen) n target) next
  in
  List.exists (fun b -> reachable [] b waiter) blockers

let classify t ~txn ~blockers =
  if blockers = [] then Granted
  else if creates_cycle t ~waiter:txn ~blockers then Deadlock_detected
  else begin
    Hashtbl.replace t.wait_for txn blockers;
    Blocked blockers
  end

(* Acquire a document-level lock (including the intention modes). *)
let acquire_doc t ~txn ~doc ~mode : outcome =
  let e = entry t doc in
  (* already at least as strong? *)
  let stronger held want =
    match (held, want) with
    | X, _ -> true
    | S, (S | IS) -> true
    | IX, (IX | IS) -> true
    | IS, IS -> true
    | _ -> false
  in
  match doc_mode_of e txn with
  | Some held when stronger held mode -> Granted
  | _ ->
    let blockers =
      List.filter_map
        (fun (h, m) ->
          if h <> txn && not (compatible mode m) then Some h else None)
        e.d_holders
      |> List.sort_uniq compare
    in
    (* a whole-document S/X also conflicts with existing subtree locks
       of other transactions *)
    let blockers =
      match mode with
      | S | X ->
        List.sort_uniq compare
          (blockers
          @ List.filter_map
              (fun sl ->
                if sl.sl_txn <> txn
                   && not
                        (compatible mode
                           (match sl.sl_mode with S -> S | m -> m))
                then Some sl.sl_txn
                else None)
              e.d_subtrees)
      | _ -> blockers
    in
    (match classify t ~txn ~blockers with
     | Granted ->
       e.d_holders <- (txn, mode) :: e.d_holders;
       Granted
     | r -> r)

(* Acquire an S/X lock on the subtree rooted at [label]. *)
let acquire_subtree t ~txn ~doc ~label ~exclusive : outcome =
  let want = if exclusive then X else S in
  (* intention lock on the document first *)
  match acquire_doc t ~txn ~doc ~mode:(if exclusive then IX else IS) with
  | Granted ->
    let e = entry t doc in
    let blockers =
      (* conflicting whole-document S/X locks; other transactions'
         intention locks coexist — their conflicts are resolved at the
         subtree level below *)
      List.filter_map
        (fun (h, m) ->
          match m with
          | S | X when h <> txn && not (compatible want m) -> Some h
          | _ -> None)
        e.d_holders
      @ (* conflicting overlapping subtree locks *)
      List.filter_map
        (fun sl ->
          if
            sl.sl_txn <> txn
            && overlap sl.sl_label label
            && not (compatible want sl.sl_mode)
          then Some sl.sl_txn
          else None)
        e.d_subtrees
      |> List.sort_uniq compare
    in
    (match classify t ~txn ~blockers with
     | Granted ->
       e.d_subtrees <-
         { sl_txn = txn; sl_label = label; sl_mode = want } :: e.d_subtrees;
       Granted
     | r -> r)
  | r -> r

let release_all t ~txn =
  Hashtbl.remove t.wait_for txn;
  Hashtbl.iter
    (fun _ e ->
      e.d_holders <- List.filter (fun (h, _) -> h <> txn) e.d_holders;
      e.d_subtrees <- List.filter (fun sl -> sl.sl_txn <> txn) e.d_subtrees)
    t.docs;
  (* waiters retry on their own (cooperative), but their wait-for edges
     towards the released transaction are stale now *)
  Hashtbl.iter
    (fun w blockers ->
      Hashtbl.replace t.wait_for w (List.filter (( <> ) txn) blockers))
    (Hashtbl.copy t.wait_for)

let doc_holders t doc =
  match Hashtbl.find_opt t.docs doc with
  | Some e -> e.d_holders
  | None -> []

let subtree_locks t doc =
  match Hashtbl.find_opt t.docs doc with
  | Some e -> List.map (fun sl -> (sl.sl_txn, sl.sl_label, sl.sl_mode)) e.d_subtrees
  | None -> []
