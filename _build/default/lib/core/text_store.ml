(* Storage for text values (paper §4.1): string properties of nodes —
   text-node content, attribute string values — have unrestricted
   length and are therefore kept apart from the fixed-size node
   descriptors, in slotted pages ("slotted-page structure method").

   A value reference is the xptr of its 4-byte slot-directory entry;
   the entry holds (offset, len) within the page.  Values move inside
   their page on compaction, but the slot entry stays put, so the
   reference stored in a node descriptor never changes unless the value
   itself is replaced.

   Values longer than [max_short] go to a chain of overflow pages; the
   slot then holds a 12-byte long-descriptor (total length + first
   overflow page). *)

open Sedna_util

let magic = 0x7e47
let overflow_magic = 0x0f10
let header_size = 16
let slot_size = 4
let tombstone = 0xffff
let long_sentinel = 0xfffe
let long_desc_size = 12
let overflow_header = 16
let overflow_capacity = Page.page_size - overflow_header
let max_short = 3000

(* header fields *)
let off_magic = 0
let off_kind = 2
let off_count = 4
let off_data_start = 6

let slot_addr page slot = Xptr.add page (header_size + (slot * slot_size))

let init_page bm page =
  Buffer_mgr.write_u16 bm (Xptr.add page off_magic) magic;
  Buffer_mgr.write_u8 bm (Xptr.add page off_kind)
    (Page.block_kind_code Page.Text_block);
  Buffer_mgr.write_u16 bm (Xptr.add page off_count) 0;
  Buffer_mgr.write_u16 bm (Xptr.add page off_data_start) Page.page_size

let check_page bm page =
  if Buffer_mgr.read_u16 bm (Xptr.add page off_magic) <> magic then
    Error.raise_error Error.Storage_corruption "not a text page at %a" Xptr.pp
      page

let free_bytes bm page =
  let count = Buffer_mgr.read_u16 bm (Xptr.add page off_count) in
  let data_start = Buffer_mgr.read_u16 bm (Xptr.add page off_data_start) in
  data_start - (header_size + (count * slot_size))

(* find a reusable tombstone slot *)
let find_free_slot bm page =
  let count = Buffer_mgr.read_u16 bm (Xptr.add page off_count) in
  let rec go i =
    if i >= count then None
    else if Buffer_mgr.read_u16 bm (slot_addr page i) = tombstone then Some i
    else go (i + 1)
  in
  go 0

(* ---- overflow chains ------------------------------------------------ *)

let write_overflow_chain bm (s : string) =
  let n = String.length s in
  let rec go pos =
    if pos >= n then Xptr.null
    else begin
      let page = Buffer_mgr.allocate_page bm in
      let chunk = min overflow_capacity (n - pos) in
      Buffer_mgr.write_u16 bm (Xptr.add page 0) overflow_magic;
      Buffer_mgr.write_u8 bm (Xptr.add page 2)
        (Page.block_kind_code Page.Text_block);
      Buffer_mgr.write_u16 bm (Xptr.add page 4) chunk;
      let next = go (pos + chunk) in
      Buffer_mgr.write_i64 bm (Xptr.add page 8) (Xptr.to_int64 next);
      Buffer_mgr.write_string bm (Xptr.add page overflow_header)
        (String.sub s pos chunk);
      page
    end
  in
  go 0

let read_overflow_chain bm first total =
  let buf = Buffer.create total in
  let rec go page =
    if not (Xptr.is_null page) then begin
      let used = Buffer_mgr.read_u16 bm (Xptr.add page 4) in
      Buffer.add_string buf
        (Buffer_mgr.read_string bm (Xptr.add page overflow_header) used);
      go (Xptr.of_int64 (Buffer_mgr.read_i64 bm (Xptr.add page 8)))
    end
  in
  go first;
  Buffer.contents buf

let free_overflow_chain bm first =
  let rec go page =
    if not (Xptr.is_null page) then begin
      let next = Xptr.of_int64 (Buffer_mgr.read_i64 bm (Xptr.add page 8)) in
      Buffer_mgr.free_page bm page;
      go next
    end
  in
  go first

(* ---- short values ---------------------------------------------------- *)

(* Raw insert of [data] into [page]; assumes room was checked. *)
let insert_into_page bm cat page (data : string) =
  let len = String.length data in
  let data_start = Buffer_mgr.read_u16 bm (Xptr.add page off_data_start) in
  let new_start = data_start - len in
  Buffer_mgr.write_string bm (Xptr.add page new_start) data;
  Buffer_mgr.write_u16 bm (Xptr.add page off_data_start) new_start;
  let slot =
    match find_free_slot bm page with
    | Some s -> s
    | None ->
      let count = Buffer_mgr.read_u16 bm (Xptr.add page off_count) in
      Buffer_mgr.write_u16 bm (Xptr.add page off_count) (count + 1);
      count
  in
  let sa = slot_addr page slot in
  Buffer_mgr.write_u16 bm sa new_start;
  Buffer_mgr.write_u16 bm (Xptr.add sa 2) len;
  Catalog.text_space_set cat page (free_bytes bm page);
  sa

(* Compact a page in place: close the holes left by tombstoned and
   relocated values.  Slot entries keep their indexes. *)
let compact bm page =
  Buffer_mgr.with_page ~rw:true bm page (fun bytes ->
      let count = Bytes_util.get_u16 bytes off_count in
      (* collect live slots sorted by offset, highest first *)
      let live = ref [] in
      for i = 0 to count - 1 do
        let so = header_size + (i * slot_size) in
        let off = Bytes_util.get_u16 bytes so in
        if off <> tombstone then
          let len = Bytes_util.get_u16 bytes (so + 2) in
          let len = if len = long_sentinel then long_desc_size else len in
          live := (i, off, len) :: !live
      done;
      let live =
        List.sort (fun (_, a, _) (_, b, _) -> compare b a) !live
      in
      let data_start = ref Page.page_size in
      List.iter
        (fun (i, off, len) ->
          let target = !data_start - len in
          if target <> off then begin
            let tmp = Bytes.sub bytes off len in
            Bytes.blit tmp 0 bytes target len
          end;
          Bytes_util.set_u16 bytes (header_size + (i * slot_size)) target;
          data_start := target)
        live;
      Bytes_util.set_u16 bytes off_data_start !data_start)

(* ---- public API ------------------------------------------------------ *)

(* Encode a long value as a chain plus an in-page long-descriptor. *)
let insert bm cat (s : string) : Xptr.t =
  let data, mark_long, chain =
    if String.length s <= max_short then (s, false, Xptr.null)
    else begin
      let chain = write_overflow_chain bm s in
      let b = Bytes.create long_desc_size in
      Bytes_util.set_i32 b 0 (String.length s);
      Bytes_util.set_i64 b 4 (Xptr.to_int64 chain);
      (Bytes.to_string b, true, chain)
    end
  in
  ignore chain;
  let need = String.length data + slot_size in
  let page =
    match Catalog.text_space_find cat ~need with
    | Some p -> p
    | None ->
      let p = Buffer_mgr.allocate_page bm in
      init_page bm p;
      Catalog.text_space_set cat p (free_bytes bm p);
      p
  in
  check_page bm page;
  (* the free map may be conservative: re-check and compact if needed *)
  if free_bytes bm page < need then compact bm page;
  let sa = insert_into_page bm cat page data in
  if mark_long then Buffer_mgr.write_u16 bm (Xptr.add sa 2) long_sentinel;
  sa

let page_of_slot (sa : Xptr.t) = Xptr.page_start sa

let read bm (sa : Xptr.t) : string =
  let page = page_of_slot sa in
  check_page bm page;
  let off = Buffer_mgr.read_u16 bm sa in
  let len = Buffer_mgr.read_u16 bm (Xptr.add sa 2) in
  if off = tombstone then
    Error.raise_error Error.Storage_corruption "read of deleted text value";
  if len = long_sentinel then begin
    let total = Buffer_mgr.read_i32 bm (Xptr.add page off) in
    let first = Xptr.of_int64 (Buffer_mgr.read_i64 bm (Xptr.add page (off + 4))) in
    read_overflow_chain bm first total
  end
  else Buffer_mgr.read_string bm (Xptr.add page off) len

let length bm (sa : Xptr.t) : int =
  let page = page_of_slot sa in
  let off = Buffer_mgr.read_u16 bm sa in
  let len = Buffer_mgr.read_u16 bm (Xptr.add sa 2) in
  if len = long_sentinel then Buffer_mgr.read_i32 bm (Xptr.add page off)
  else len

let delete bm cat (sa : Xptr.t) =
  let page = page_of_slot sa in
  check_page bm page;
  let off = Buffer_mgr.read_u16 bm sa in
  let len = Buffer_mgr.read_u16 bm (Xptr.add sa 2) in
  if off <> tombstone then begin
    if len = long_sentinel then begin
      let first =
        Xptr.of_int64 (Buffer_mgr.read_i64 bm (Xptr.add page (off + 4)))
      in
      free_overflow_chain bm first
    end;
    Buffer_mgr.write_u16 bm sa tombstone;
    compact bm page;
    Catalog.text_space_set cat page (free_bytes bm page)
  end

(* Replace a value: the slot may move; the caller stores the returned
   reference (a single-field update in the owning descriptor). *)
let update bm cat (sa : Xptr.t) (s : string) : Xptr.t =
  delete bm cat sa;
  insert bm cat s
