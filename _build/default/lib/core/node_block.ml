(* Node blocks and node descriptors (paper §4.1, Figure 3).

   A block stores descriptors of exactly one schema node.  Blocks of a
   schema node form a doubly-linked list ordered by document order;
   within a block descriptors are unordered on disk, with document
   order reconstructed from the next/prev-in-block chain.

   Descriptors are fixed-size within a block.  Element descriptors
   carry one child pointer per child *schema* node ("first child by
   schema"); the number of child slots is kept in the block header and
   may differ across blocks of the same schema node — the paper's
   delayed per-block widening after schema evolution.

   Descriptor layout (offsets in bytes):
     0   label: len byte + <= 15 inline bytes, or 0xFF + overflow xptr
         at offset 8 (a slot in the text store)
     16  indir        xptr of this node's indirection cell (node handle)
     24  parent       xptr of the PARENT's indirection cell (indirect!)
     32  left-sibling  direct xptr to the left sibling's descriptor
     40  right-sibling direct xptr
     48  next-in-block u16 slot, 50 prev-in-block u16 slot
     52  flags u32
     56  payload:
         element/document: child_slots * 8 bytes of first-child xptrs
         text/attribute/comment/pi: value xptr (8) + value length i32 *)

open Sedna_util

let magic = 0xb10c
let header_size = 64
let nil_slot = 0xffff
let common_size = 56
let label_inline_max = 15
let label_overflow = 0xff

(* header offsets *)
let h_magic = 0
let h_kind = 2
let h_schema_id = 4
let h_desc_size = 8
let h_child_slots = 10
let h_count = 12
let h_capacity = 14
let h_free_head = 16
let h_first_slot = 18
let h_last_slot = 20
let h_next_block = 24
let h_prev_block = 32

(* descriptor field offsets *)
let d_label = 0
let d_label_overflow_ptr = 8
let d_indir = 16
let d_parent = 24
let d_left_sib = 32
let d_right_sib = 40
let d_next_in_block = 48
let d_prev_in_block = 50
let d_payload = 56

let desc_size_for ~(kind : Catalog.kind) ~child_slots =
  match kind with
  | Catalog.Element | Catalog.Document -> common_size + (8 * child_slots)
  | Catalog.Attribute | Catalog.Text | Catalog.Comment | Catalog.Pi ->
    common_size + 16

(* ---- block header accessors ---------------------------------------- *)

let block_of_desc (d : Xptr.t) = Xptr.page_start d

let schema_id bm block = Buffer_mgr.read_i32 bm (Xptr.add block h_schema_id)
let desc_size bm block = Buffer_mgr.read_u16 bm (Xptr.add block h_desc_size)
let child_slots bm block = Buffer_mgr.read_u16 bm (Xptr.add block h_child_slots)
let count bm block = Buffer_mgr.read_u16 bm (Xptr.add block h_count)
let capacity bm block = Buffer_mgr.read_u16 bm (Xptr.add block h_capacity)

let next_block bm block = Buffer_mgr.read_xptr bm (Xptr.add block h_next_block)
let prev_block bm block = Buffer_mgr.read_xptr bm (Xptr.add block h_prev_block)
let set_next_block bm block v = Buffer_mgr.write_xptr bm (Xptr.add block h_next_block) v
let set_prev_block bm block v = Buffer_mgr.write_xptr bm (Xptr.add block h_prev_block) v

let first_slot bm block =
  let s = Buffer_mgr.read_u16 bm (Xptr.add block h_first_slot) in
  if s = nil_slot then None else Some s

let last_slot bm block =
  let s = Buffer_mgr.read_u16 bm (Xptr.add block h_last_slot) in
  if s = nil_slot then None else Some s

let check bm block =
  if Buffer_mgr.read_u16 bm (Xptr.add block h_magic) <> magic then
    Error.raise_error Error.Storage_corruption "not a node block at %a"
      Xptr.pp block

let desc_addr bm block slot =
  Xptr.add block (header_size + (slot * desc_size bm block))

let slot_of_desc bm (d : Xptr.t) =
  let block = block_of_desc d in
  (Xptr.page_offset d - header_size) / desc_size bm block

(* ---- block creation -------------------------------------------------- *)

(* Create an empty block for [snode] and link it into the schema node's
   block chain right after [after] ([None] = append at the tail). *)
let create_block bm (cat : Catalog.t) (snode : Catalog.snode) ~child_slots:cs
    ~(after : Xptr.t option) : Xptr.t =
  let dsz = desc_size_for ~kind:snode.Catalog.kind ~child_slots:cs in
  let cap = (Page.page_size - header_size) / dsz in
  let block = Buffer_mgr.allocate_page bm in
  Buffer_mgr.write_u16 bm (Xptr.add block h_magic) magic;
  Buffer_mgr.write_u8 bm (Xptr.add block h_kind)
    (Page.block_kind_code Page.Node_block);
  Buffer_mgr.write_i32 bm (Xptr.add block h_schema_id) snode.Catalog.id;
  Buffer_mgr.write_u16 bm (Xptr.add block h_desc_size) dsz;
  Buffer_mgr.write_u16 bm (Xptr.add block h_child_slots) cs;
  Buffer_mgr.write_u16 bm (Xptr.add block h_count) 0;
  Buffer_mgr.write_u16 bm (Xptr.add block h_capacity) cap;
  Buffer_mgr.write_u16 bm (Xptr.add block h_first_slot) nil_slot;
  Buffer_mgr.write_u16 bm (Xptr.add block h_last_slot) nil_slot;
  (* thread the free list through the slots *)
  Buffer_mgr.write_u16 bm (Xptr.add block h_free_head) 0;
  for i = 0 to cap - 1 do
    let next = if i = cap - 1 then nil_slot else i + 1 in
    Buffer_mgr.write_u16 bm (Xptr.add block (header_size + (i * dsz))) next
  done;
  (* link into the chain *)
  let prev, next =
    match after with
    | Some a -> (a, next_block bm a)
    | None -> (snode.Catalog.last_block, Xptr.null)
  in
  Buffer_mgr.write_xptr bm (Xptr.add block h_prev_block) prev;
  Buffer_mgr.write_xptr bm (Xptr.add block h_next_block) next;
  if Xptr.is_null prev then snode.Catalog.first_block <- block
  else set_next_block bm prev block;
  if Xptr.is_null next then snode.Catalog.last_block <- block
  else set_prev_block bm next block;
  snode.Catalog.block_count <- snode.Catalog.block_count + 1;
  Catalog.mark_dirty cat;
  block

(* Unlink an empty block from the chain and release its page. *)
let destroy_block bm (cat : Catalog.t) (snode : Catalog.snode) block =
  let prev = prev_block bm block and next = next_block bm block in
  if Xptr.is_null prev then snode.Catalog.first_block <- next
  else set_next_block bm prev next;
  if Xptr.is_null next then snode.Catalog.last_block <- prev
  else set_prev_block bm next prev;
  snode.Catalog.block_count <- snode.Catalog.block_count - 1;
  Buffer_mgr.free_page bm block;
  Catalog.mark_dirty cat

(* ---- slot management -------------------------------------------------- *)

let has_room bm block = count bm block < capacity bm block

let alloc_slot bm block : int =
  let free = Buffer_mgr.read_u16 bm (Xptr.add block h_free_head) in
  if free = nil_slot then
    Error.raise_error Error.Block_full "node block %a is full" Xptr.pp block;
  let dsz = desc_size bm block in
  let next = Buffer_mgr.read_u16 bm (Xptr.add block (header_size + (free * dsz))) in
  Buffer_mgr.write_u16 bm (Xptr.add block h_free_head) next;
  Buffer_mgr.write_u16 bm (Xptr.add block h_count) (count bm block + 1);
  (* zero the descriptor *)
  let d = desc_addr bm block free in
  Buffer_mgr.with_page ~rw:true bm d (fun bytes ->
      Bytes_util.zero bytes (Xptr.page_offset d) dsz);
  Buffer_mgr.write_u16 bm (Xptr.add d d_next_in_block) nil_slot;
  Buffer_mgr.write_u16 bm (Xptr.add d d_prev_in_block) nil_slot;
  free

let free_slot bm block slot =
  let dsz = desc_size bm block in
  let head = Buffer_mgr.read_u16 bm (Xptr.add block h_free_head) in
  Buffer_mgr.write_u16 bm (Xptr.add block (header_size + (slot * dsz))) head;
  Buffer_mgr.write_u16 bm (Xptr.add block h_free_head) slot;
  Buffer_mgr.write_u16 bm (Xptr.add block h_count) (count bm block - 1)

(* ---- in-block document-order chain ------------------------------------ *)

let next_in_block bm (d : Xptr.t) =
  let s = Buffer_mgr.read_u16 bm (Xptr.add d d_next_in_block) in
  if s = nil_slot then None else Some s

let prev_in_block bm (d : Xptr.t) =
  let s = Buffer_mgr.read_u16 bm (Xptr.add d d_prev_in_block) in
  if s = nil_slot then None else Some s

(* Insert [slot] into the order chain right after [after]
   ([None] = becomes the first descriptor). *)
let link_in_order bm block ~slot ~after =
  let d = desc_addr bm block slot in
  (match after with
   | None ->
     let old_first = Buffer_mgr.read_u16 bm (Xptr.add block h_first_slot) in
     Buffer_mgr.write_u16 bm (Xptr.add d d_next_in_block) old_first;
     Buffer_mgr.write_u16 bm (Xptr.add d d_prev_in_block) nil_slot;
     if old_first <> nil_slot then
       Buffer_mgr.write_u16 bm
         (Xptr.add (desc_addr bm block old_first) d_prev_in_block)
         slot
     else Buffer_mgr.write_u16 bm (Xptr.add block h_last_slot) slot;
     Buffer_mgr.write_u16 bm (Xptr.add block h_first_slot) slot
   | Some a ->
     let ad = desc_addr bm block a in
     let a_next = Buffer_mgr.read_u16 bm (Xptr.add ad d_next_in_block) in
     Buffer_mgr.write_u16 bm (Xptr.add d d_prev_in_block) a;
     Buffer_mgr.write_u16 bm (Xptr.add d d_next_in_block) a_next;
     Buffer_mgr.write_u16 bm (Xptr.add ad d_next_in_block) slot;
     if a_next <> nil_slot then
       Buffer_mgr.write_u16 bm
         (Xptr.add (desc_addr bm block a_next) d_prev_in_block)
         slot
     else Buffer_mgr.write_u16 bm (Xptr.add block h_last_slot) slot)

let unlink_in_order bm block slot =
  let d = desc_addr bm block slot in
  let p = Buffer_mgr.read_u16 bm (Xptr.add d d_prev_in_block) in
  let n = Buffer_mgr.read_u16 bm (Xptr.add d d_next_in_block) in
  (if p = nil_slot then Buffer_mgr.write_u16 bm (Xptr.add block h_first_slot) n
   else
     Buffer_mgr.write_u16 bm (Xptr.add (desc_addr bm block p) d_next_in_block) n);
  if n = nil_slot then Buffer_mgr.write_u16 bm (Xptr.add block h_last_slot) p
  else
    Buffer_mgr.write_u16 bm (Xptr.add (desc_addr bm block n) d_prev_in_block) p

(* ---- descriptor fields ------------------------------------------------ *)

let label_raw bm (d : Xptr.t) : string =
  let len = Buffer_mgr.read_u8 bm (Xptr.add d d_label) in
  if len = label_overflow then
    Text_store.read bm
      (Buffer_mgr.read_xptr bm (Xptr.add d d_label_overflow_ptr))
  else Buffer_mgr.read_string bm (Xptr.add d (d_label + 1)) len

let label bm (d : Xptr.t) : Sedna_nid.Nid.t = Sedna_nid.Nid.of_raw (label_raw bm d)

let set_label bm cat (d : Xptr.t) (nid : Sedna_nid.Nid.t) =
  let raw = Sedna_nid.Nid.to_raw nid in
  if String.length raw <= label_inline_max then begin
    Buffer_mgr.write_u8 bm (Xptr.add d d_label) (String.length raw);
    if raw <> "" then Buffer_mgr.write_string bm (Xptr.add d (d_label + 1)) raw
  end
  else begin
    let slot = Text_store.insert bm cat raw in
    Buffer_mgr.write_u8 bm (Xptr.add d d_label) label_overflow;
    Buffer_mgr.write_xptr bm (Xptr.add d d_label_overflow_ptr) slot
  end

(* Free an overflow label when a node is deleted (a moved node keeps
   its overflow entry: only the 16 label bytes are copied). *)
let release_label bm cat (d : Xptr.t) =
  if Buffer_mgr.read_u8 bm (Xptr.add d d_label) = label_overflow then
    Text_store.delete bm cat
      (Buffer_mgr.read_xptr bm (Xptr.add d d_label_overflow_ptr))

let indir bm d = Buffer_mgr.read_xptr bm (Xptr.add d d_indir)
let set_indir bm d v = Buffer_mgr.write_xptr bm (Xptr.add d d_indir) v

let parent_indir bm d = Buffer_mgr.read_xptr bm (Xptr.add d d_parent)
let set_parent_indir bm d v = Buffer_mgr.write_xptr bm (Xptr.add d d_parent) v

let left_sibling bm d = Buffer_mgr.read_xptr bm (Xptr.add d d_left_sib)
let set_left_sibling bm d v = Buffer_mgr.write_xptr bm (Xptr.add d d_left_sib) v

let right_sibling bm d = Buffer_mgr.read_xptr bm (Xptr.add d d_right_sib)
let set_right_sibling bm d v = Buffer_mgr.write_xptr bm (Xptr.add d d_right_sib) v

(* child slot k: first child of the k-th child schema node.  Blocks
   created before the schema grew may be narrower than the schema: a
   missing slot reads as null. *)
let child bm (d : Xptr.t) k : Xptr.t =
  let block = block_of_desc d in
  if k < child_slots bm block then
    Buffer_mgr.read_xptr bm (Xptr.add d (d_payload + (8 * k)))
  else Xptr.null

let set_child bm (d : Xptr.t) k (v : Xptr.t) =
  let block = block_of_desc d in
  if k >= child_slots bm block then
    Error.raise_error Error.Storage_corruption
      "descriptor at %a has no child slot %d (block has %d)" Xptr.pp d k
      (child_slots bm block);
  Buffer_mgr.write_xptr bm (Xptr.add d (d_payload + (8 * k))) v

(* text payload for text/attribute/comment/pi descriptors *)
let text_ref bm d = Buffer_mgr.read_xptr bm (Xptr.add d d_payload)
let set_text_ref bm d v = Buffer_mgr.write_xptr bm (Xptr.add d d_payload) v
let text_len bm d = Buffer_mgr.read_i32 bm (Xptr.add d (d_payload + 8))
let set_text_len bm d v = Buffer_mgr.write_i32 bm (Xptr.add d (d_payload + 8)) v

(* ---- document-order iteration within one schema node ------------------ *)

(* first descriptor of the schema node's block chain *)
let rec first_desc_from bm block =
  if Xptr.is_null block then None
  else
    match first_slot bm block with
    | Some s -> Some (desc_addr bm block s)
    | None -> first_desc_from bm (next_block bm block)

let rec last_desc_from bm block =
  if Xptr.is_null block then None
  else
    match last_slot bm block with
    | Some s -> Some (desc_addr bm block s)
    | None -> last_desc_from bm (prev_block bm block)

let first_desc bm (snode : Catalog.snode) =
  first_desc_from bm snode.Catalog.first_block

let last_desc bm (snode : Catalog.snode) =
  last_desc_from bm snode.Catalog.last_block

(* successor in document order among nodes of the same schema node *)
let next_desc bm (d : Xptr.t) =
  let block = block_of_desc d in
  Counters.bump Counters.block_touch;
  match next_in_block bm d with
  | Some s -> Some (desc_addr bm block s)
  | None -> first_desc_from bm (next_block bm block)

let prev_desc bm (d : Xptr.t) =
  let block = block_of_desc d in
  match prev_in_block bm d with
  | Some s -> Some (desc_addr bm block s)
  | None -> last_desc_from bm (prev_block bm block)

(* raw 16-byte label area copy, used during relocation *)
let copy_label_area bm ~src ~dst =
  let v0 = Buffer_mgr.read_i64 bm (Xptr.add src d_label) in
  let v1 = Buffer_mgr.read_i64 bm (Xptr.add src (d_label + 8)) in
  Buffer_mgr.write_i64 bm (Xptr.add dst d_label) v0;
  Buffer_mgr.write_i64 bm (Xptr.add dst (d_label + 8)) v1
