(* Bulk loading of an XML event stream into the storage (paper §4.1).

   Loading proceeds in document order, so every insertion appends at
   the tail of its schema node's block chain: labels are compact
   ordinal children, no label comparisons are needed, and the partial
   order invariant holds by construction.  The descriptive schema is
   built incrementally as elements are first encountered.

   Stack frames reference nodes by handle, not by descriptor address:
   a parent acquiring its first child of a new schema type may be
   relocated into a wider block mid-load. *)

open Sedna_util

type frame = {
  f_handle : Xptr.t;
  mutable f_last_child : Xptr.t option; (* handle of the last child *)
  mutable f_ordinal : int;
  mutable f_text_pending : Buffer.t option; (* coalesce adjacent text *)
}

type state = {
  st : Store.t;
  mutable stack : frame list;
  mutable doc_handle : Xptr.t;
  mutable node_count : int;
}

let add_child state ~kind ~name ~value =
  match state.stack with
  | [] -> Error.raise_error Error.Xml_parse "loader: content outside document"
  | frame :: _ ->
    let h =
      Update_ops.append_child state.st ~parent_handle:frame.f_handle
        ~prev_handle:frame.f_last_child ~kind ~name ~value
        ~ordinal:frame.f_ordinal
    in
    frame.f_last_child <- Some h;
    frame.f_ordinal <- frame.f_ordinal + 1;
    state.node_count <- state.node_count + 1;
    h

let flush_text state =
  match state.stack with
  | { f_text_pending = Some buf; _ } :: _ when Buffer.length buf > 0 ->
    let frame = List.hd state.stack in
    frame.f_text_pending <- None;
    ignore
      (add_child state ~kind:Catalog.Text ~name:None
         ~value:(Some (Buffer.contents buf)))
  | frame :: _ -> frame.f_text_pending <- None
  | [] -> ()

let feed state (e : Sedna_xml.Xml_event.t) =
  match e with
  | Sedna_xml.Xml_event.Start_document | Sedna_xml.Xml_event.End_document -> ()
  | Sedna_xml.Xml_event.Start_element (name, atts) ->
    flush_text state;
    let h =
      add_child state ~kind:Catalog.Element ~name:(Some name) ~value:None
    in
    let frame =
      { f_handle = h; f_last_child = None; f_ordinal = 0; f_text_pending = None }
    in
    state.stack <- frame :: state.stack;
    List.iter
      (fun { Sedna_xml.Xml_event.name = an; value } ->
        ignore
          (add_child state ~kind:Catalog.Attribute ~name:(Some an)
             ~value:(Some value)))
      atts
  | Sedna_xml.Xml_event.End_element ->
    flush_text state;
    (match state.stack with
     | _ :: rest -> state.stack <- rest
     | [] -> Error.raise_error Error.Xml_parse "loader: unbalanced end element")
  | Sedna_xml.Xml_event.Text s ->
    (match state.stack with
     | frame :: _ ->
       let buf =
         match frame.f_text_pending with
         | Some b -> b
         | None ->
           let b = Buffer.create (String.length s) in
           frame.f_text_pending <- Some b;
           b
       in
       Buffer.add_string buf s
     | [] -> Error.raise_error Error.Xml_parse "loader: text outside document")
  | Sedna_xml.Xml_event.Comment s ->
    flush_text state;
    ignore (add_child state ~kind:Catalog.Comment ~name:None ~value:(Some s))
  | Sedna_xml.Xml_event.Processing_instruction (target, data) ->
    flush_text state;
    ignore
      (add_child state ~kind:Catalog.Pi
         ~name:(Some (Xname.make target))
         ~value:(Some data))

(* Create the document node and its schema root; returns the loader
   state positioned inside the document. *)
let start_document (st : Store.t) ~doc_name =
  let cat = st.Store.cat in
  let schema_root = Catalog.new_snode cat ~parent:None ~kind:Catalog.Document ~name:None in
  let doc = Catalog.add_document cat ~name:doc_name ~schema_root_id:schema_root.Catalog.id in
  (* materialize the document node descriptor *)
  let block =
    Node_block.create_block st.Store.bm cat schema_root ~child_slots:2 ~after:None
  in
  let d =
    Update_ops.write_fresh_desc st ~snode:schema_root ~block ~order_after:None
      ~lbl:Sedna_nid.Nid.root ~parent_handle:Xptr.null ~value:None
  in
  let h = Node.handle st d in
  doc.Catalog.doc_indir <- h;
  Catalog.mark_dirty cat;
  {
    st;
    stack = [ { f_handle = h; f_last_child = None; f_ordinal = 0; f_text_pending = None } ];
    doc_handle = h;
    node_count = 1;
  }

let finish state =
  flush_text state;
  (match state.stack with
   | [ _doc ] -> ()
   | _ ->
     Error.raise_error Error.Xml_parse "loader: unclosed elements at end of load");
  (state.doc_handle, state.node_count)

(* Load a whole XML string as document [doc_name]. *)
let load_string (st : Store.t) ~doc_name ?options (xml : string) =
  let state = start_document st ~doc_name in
  List.iter (feed state) (Sedna_xml.Xml_parser.events ?options xml);
  finish state

(* Load from a pre-parsed event list (workload generators). *)
let load_events (st : Store.t) ~doc_name (evs : Sedna_xml.Xml_event.t list) =
  let state = start_document st ~doc_name in
  List.iter (feed state) evs;
  finish state

(* Create an empty document (DDL 'CREATE DOCUMENT'). *)
let create_empty (st : Store.t) ~doc_name =
  let state = start_document st ~doc_name in
  fst (finish state)
